// Reproduces Figure 6 (a, b, c): percentage improvement of SQE_C (M),
// SQE_C (A) and QL_X over the best QL baseline at each cutoff, for all
// three datasets.
//
// Paper shapes: SQE_C (M) >= SQE_C (A) > 0 everywhere; QL_X mostly
// negative (expansion features alone hurt); improvements consistent across
// datasets.
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/report.h"

namespace {

void RunDataset(const sqe::synth::World& world,
                const sqe::synth::DatasetSpec& spec, char label) {
  using namespace sqe;
  bench::DatasetRuns runs = bench::ComputeAllRuns(world, spec);

  std::vector<eval::NamedRun> systems;
  systems.push_back({"QL_Q", runs.ql_q, true, false});
  systems.push_back({"QL_E (M)", runs.ql_e_m, true, false});
  systems.push_back({"QL_E (A)", runs.ql_e_a, true, false});
  systems.push_back({"QL_Q&E (M)", runs.ql_qe_m, true, false});
  systems.push_back({"QL_Q&E (A)", runs.ql_qe_a, true, false});
  systems.push_back({"QL_X", runs.ql_x, false, false});
  systems.push_back({"SQE_C (M)", runs.sqe_c_m, false, false});
  systems.push_back({"SQE_C (A)", runs.sqe_c_a, false, false});

  eval::PrecisionTable table =
      eval::EvaluateTable(systems, runs.dataset.query_set.qrels);
  const std::vector<size_t> baselines = {0, 1, 2, 3, 4};

  std::printf("Figure 6%c — %s: %% improvement over best QL baseline\n",
              label, runs.dataset.name.c_str());
  std::printf("%-10s", "");
  for (size_t top : eval::kDefaultTops) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "P@%zu", top);
    std::printf("%9s", buf);
  }
  std::printf("\n");
  for (size_t row : {6, 7, 5}) {  // SQE_C (M), SQE_C (A), QL_X
    auto imp = eval::PercentImprovementOverBest(table, baselines, row);
    std::printf("%-10s", table.row_names[row].c_str());
    for (double v : imp) std::printf("%8.1f%%", v);
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  RunDataset(world, synth::ImageClefSpec(), 'a');
  RunDataset(world, synth::Chic2012Spec(), 'b');
  RunDataset(world, synth::Chic2013Spec(), 'c');
  return 0;
}
