// Reproduces Table 4: wall-clock time spent building the query graphs
// (motif traversal) per dataset and motif configuration, against the total
// pipeline time — single-threaded, no auxiliary indexes, exactly the
// paper's measurement discipline.
//
// Paper shapes: time(T&S) ≈ time(T) + time(S); expansion is a small
// fraction of the end-to-end pipeline (14% worst case); absolute times are
// sub-second per 50-query batch.
#include <cstdio>

#include "bench/bench_util.h"

namespace {

void RunDataset(const sqe::synth::World& world,
                const sqe::synth::DatasetSpec& spec) {
  using namespace sqe;
  bench::DatasetRuns runs = bench::ComputeAllRuns(world, spec);
  std::printf("%-16s %10.2f %10.2f %10.2f %12.2f  (%4.1f%% of total)\n",
              runs.dataset.name.c_str(), runs.motif_ms_t, runs.motif_ms_ts,
              runs.motif_ms_s, runs.total_pipeline_ms,
              100.0 *
                  (runs.motif_ms_t + runs.motif_ms_ts + runs.motif_ms_s) /
                  runs.total_pipeline_ms);
}

}  // namespace

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  std::printf("Table 4 — query-graph construction time, milliseconds summed "
              "over 50 queries\n");
  std::printf("%-16s %10s %10s %10s %12s\n", "", "SQE_T", "SQE_T&S", "SQE_S",
              "Total Time");
  RunDataset(world, synth::ImageClefSpec());
  RunDataset(world, synth::Chic2012Spec());
  RunDataset(world, synth::Chic2013Spec());
  std::printf("(paper, on 2012 Wikipedia with 9.5M articles: 47-178 ms per "
              "configuration; total pipeline 1.4-8.9 s; expansion <= 14%% "
              "of total)\n");
  return 0;
}
