// Serving front-end latency: what the async front-end adds on top of a bare
// SqeEngine::RunSqe, plus its behavior at overload.
//
// Three sections, all over the synthetic workload:
//   1. bare      — RunSqe called directly in a loop (no queue, no threads):
//                  the per-query floor.
//   2. frontend  — the same queries submitted one-at-a-time (closed loop,
//                  one in flight) through a 2-worker ServingFrontend: the
//                  p50/p95/p99 gap vs bare is the queue + wakeup + response
//                  overhead a lightly-loaded deployment pays.
//   3. overload  — 10x queue capacity submitted at once: reports the
//                  completed/rejected/expired split and the completed-side
//                  percentiles. Rejections must be ResourceExhausted and the
//                  counters must sum back to submitted (exit 1 otherwise).
//
// Emits BENCH_serving.json and the same figures on stdout.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "serving/frontend.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

struct LatencyStat {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  size_t count = 0;
};

LatencyStat Summarize(std::vector<double> latencies_ms) {
  LatencyStat stat;
  if (latencies_ms.empty()) return stat;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  stat.count = latencies_ms.size();
  stat.p50_ms = latencies_ms[latencies_ms.size() / 2];
  stat.p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];
  stat.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                      latencies_ms.size() * 99 / 100)];
  return stat;
}

std::vector<serving::ServingRequest> MakeRequests(
    const synth::Dataset& dataset, size_t target_size) {
  std::vector<serving::ServingRequest> requests;
  requests.reserve(target_size);
  const auto& queries = dataset.query_set.queries;
  for (size_t i = 0; i < target_size; ++i) {
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    serving::ServingRequest request;
    request.text = q.text;
    request.query_nodes = q.true_entities;
    request.k = 100;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main() {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  const size_t kWorkload = 256;
  std::vector<serving::ServingRequest> requests =
      MakeRequests(dataset, kWorkload);

  // ---- 1. bare engine ------------------------------------------------------
  engine.RunSqe(requests[0].text, requests[0].query_nodes,
                expansion::MotifConfig::Both(), 100);  // warm-up
  std::vector<double> bare_ms;
  bare_ms.reserve(requests.size());
  for (const serving::ServingRequest& r : requests) {
    Timer timer;
    engine.RunSqe(r.text, r.query_nodes, r.motifs, r.k);
    bare_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  LatencyStat bare = Summarize(std::move(bare_ms));

  // ---- 2. frontend, closed loop (one request in flight) --------------------
  LatencyStat closed;
  {
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    serving::ServingFrontend frontend(&engine, frontend_config);
    frontend.Submit(requests[0])->Wait();  // warm-up
    std::vector<double> closed_ms;
    closed_ms.reserve(requests.size());
    for (const serving::ServingRequest& r : requests) {
      std::shared_ptr<serving::ServingCall> call = frontend.Submit(r);
      const serving::ServingResponse& response = call->Wait();
      if (!response.status.ok()) {
        std::fprintf(stderr, "closed-loop request failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
      closed_ms.push_back(response.total_ms);
    }
    closed = Summarize(std::move(closed_ms));
    frontend.Shutdown();
  }

  // ---- 3. overload: 10x capacity submitted at once -------------------------
  const size_t kCapacity = 16;
  serving::ServingStats overload_stats;
  LatencyStat overload;
  {
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    frontend_config.queue_capacity = kCapacity;
    serving::ServingFrontend frontend(&engine, frontend_config);
    std::vector<std::shared_ptr<serving::ServingCall>> calls;
    calls.reserve(10 * kCapacity);
    for (size_t i = 0; i < 10 * kCapacity; ++i) {
      calls.push_back(frontend.Submit(requests[i % requests.size()]));
    }
    std::vector<double> completed_ms;
    for (const auto& call : calls) {
      const serving::ServingResponse& response = call->Wait();
      if (response.status.ok()) {
        completed_ms.push_back(response.total_ms);
      } else if (!response.status.IsResourceExhausted()) {
        std::fprintf(stderr, "overload rejection had wrong status: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
    }
    frontend.Shutdown();
    overload = Summarize(std::move(completed_ms));
    overload_stats = frontend.Stats();
    if (overload_stats.resolved() != overload_stats.submitted ||
        overload_stats.submitted != calls.size()) {
      std::fprintf(stderr, "overload accounting mismatch: %s\n",
                   overload_stats.ToString().c_str());
      return 1;
    }
  }

  std::printf("serving_latency: %zu queries\n", kWorkload);
  std::printf("  bare      p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms\n",
              bare.p50_ms, bare.p95_ms, bare.p99_ms);
  std::printf("  frontend  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  "
              "(+%.3f ms p50 overhead)\n",
              closed.p50_ms, closed.p95_ms, closed.p99_ms,
              closed.p50_ms - bare.p50_ms);
  std::printf("  overload  completed=%llu rejected=%llu expired=%llu  "
              "completed p50 %7.3f ms  p95 %7.3f ms\n",
              static_cast<unsigned long long>(overload_stats.completed),
              static_cast<unsigned long long>(overload_stats.rejected()),
              static_cast<unsigned long long>(overload_stats.expired),
              overload.p50_ms, overload.p95_ms);
  std::printf("  %s\n", overload_stats.ToString().c_str());

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n  \"benchmark\": \"serving_latency\",\n"
      "  \"num_queries\": %zu,\n"
      "  \"bare\": {\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f},\n"
      "  \"frontend\": {\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
      "\"p99_ms\": %.4f},\n"
      "  \"overload\": {\"capacity\": %zu, \"submitted\": %llu, "
      "\"completed\": %llu, \"rejected\": %llu, \"expired\": %llu, "
      "\"completed_p50_ms\": %.4f, \"completed_p95_ms\": %.4f}\n}\n",
      kWorkload, bare.p50_ms, bare.p95_ms, bare.p99_ms, closed.p50_ms,
      closed.p95_ms, closed.p99_ms, kCapacity,
      static_cast<unsigned long long>(overload_stats.submitted),
      static_cast<unsigned long long>(overload_stats.completed),
      static_cast<unsigned long long>(overload_stats.rejected()),
      static_cast<unsigned long long>(overload_stats.expired), overload.p50_ms,
      overload.p95_ms);

  const char* out_path = "BENCH_serving.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
