// Serving front-end latency: what the async front-end adds on top of a bare
// SqeEngine::RunSqe, plus its behavior at overload.
//
// Three sections, all over the synthetic workload:
//   1. bare      — RunSqe called directly in a loop (no queue, no threads):
//                  the per-query floor.
//   2. frontend  — the same queries submitted one-at-a-time (closed loop,
//                  one in flight) through a 2-worker ServingFrontend: the
//                  p50/p95/p99 gap vs bare is the queue + wakeup + response
//                  overhead a lightly-loaded deployment pays.
//   3. overload  — 10x queue capacity submitted at once: reports the
//                  completed/rejected/expired split and the completed-side
//                  percentiles. Rejections must be ResourceExhausted and the
//                  counters must sum back to submitted (exit 1 otherwise).
//   4. hot swap  — the same front-end behind a SnapshotRegistry: reports the
//                  Publish() latency (validate + engine build + swap) and
//                  the completed-request p95 while three publishes land
//                  mid-burst vs the registry-backed steady state. Responses
//                  during the swap must all complete on a published epoch
//                  and the superseded generations must retire (exit 1
//                  otherwise).
//
// Emits BENCH_serving.json and the same figures on stdout.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/timer.h"
#include "index/inverted_index.h"
#include "kb/knowledge_base.h"
#include "serving/frontend.h"
#include "serving/snapshot_registry.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

struct LatencyStat {
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  size_t count = 0;
};

LatencyStat Summarize(std::vector<double> latencies_ms) {
  LatencyStat stat;
  if (latencies_ms.empty()) return stat;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  stat.count = latencies_ms.size();
  stat.p50_ms = latencies_ms[latencies_ms.size() / 2];
  stat.p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];
  stat.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                      latencies_ms.size() * 99 / 100)];
  return stat;
}

std::vector<serving::ServingRequest> MakeRequests(
    const synth::Dataset& dataset, size_t target_size) {
  std::vector<serving::ServingRequest> requests;
  requests.reserve(target_size);
  const auto& queries = dataset.query_set.queries;
  for (size_t i = 0; i < target_size; ++i) {
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    serving::ServingRequest request;
    request.text = q.text;
    request.query_nodes = q.true_entities;
    request.k = 100;
    requests.push_back(std::move(request));
  }
  return requests;
}

}  // namespace

int main() {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  const size_t kWorkload = 256;
  std::vector<serving::ServingRequest> requests =
      MakeRequests(dataset, kWorkload);

  // ---- 1. bare engine ------------------------------------------------------
  engine.RunSqe(requests[0].text, requests[0].query_nodes,
                expansion::MotifConfig::Both(), 100);  // warm-up
  std::vector<double> bare_ms;
  bare_ms.reserve(requests.size());
  for (const serving::ServingRequest& r : requests) {
    Timer timer;
    engine.RunSqe(r.text, r.query_nodes, r.motifs, r.k);
    bare_ms.push_back(timer.ElapsedSeconds() * 1e3);
  }
  LatencyStat bare = Summarize(std::move(bare_ms));

  // ---- 2. frontend, closed loop (one request in flight) --------------------
  LatencyStat closed;
  {
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    serving::ServingFrontend frontend(&engine, frontend_config);
    frontend.Submit(requests[0])->Wait();  // warm-up
    std::vector<double> closed_ms;
    closed_ms.reserve(requests.size());
    for (const serving::ServingRequest& r : requests) {
      std::shared_ptr<serving::ServingCall> call = frontend.Submit(r);
      const serving::ServingResponse& response = call->Wait();
      if (!response.status.ok()) {
        std::fprintf(stderr, "closed-loop request failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
      closed_ms.push_back(response.total_ms);
    }
    closed = Summarize(std::move(closed_ms));
    frontend.Shutdown();
  }

  // ---- 3. overload: 10x capacity submitted at once -------------------------
  const size_t kCapacity = 16;
  serving::ServingStats overload_stats;
  LatencyStat overload;
  {
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    frontend_config.queue_capacity = kCapacity;
    serving::ServingFrontend frontend(&engine, frontend_config);
    std::vector<std::shared_ptr<serving::ServingCall>> calls;
    calls.reserve(10 * kCapacity);
    for (size_t i = 0; i < 10 * kCapacity; ++i) {
      calls.push_back(frontend.Submit(requests[i % requests.size()]));
    }
    std::vector<double> completed_ms;
    for (const auto& call : calls) {
      const serving::ServingResponse& response = call->Wait();
      if (response.status.ok()) {
        completed_ms.push_back(response.total_ms);
      } else if (!response.status.IsResourceExhausted()) {
        std::fprintf(stderr, "overload rejection had wrong status: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
    }
    frontend.Shutdown();
    overload = Summarize(std::move(completed_ms));
    overload_stats = frontend.Stats();
    if (overload_stats.resolved() != overload_stats.submitted ||
        overload_stats.submitted != calls.size()) {
      std::fprintf(stderr, "overload accounting mismatch: %s\n",
                   overload_stats.ToString().c_str());
      return 1;
    }
  }

  // ---- 4. hot swap: publishes landing mid-burst ----------------------------
  const std::string kb_image = world.kb.SerializeToString();
  const std::string index_image = dataset.index.SerializeToString();
  auto make_parts = [&](uint64_t epoch) {
    serving::SnapshotParts parts;
    auto kb = kb::KnowledgeBase::FromSnapshotString(kb_image);
    auto index = index::InvertedIndex::FromSnapshotString(index_image);
    if (!kb.ok() || !index.ok()) {
      std::fprintf(stderr, "snapshot round-trip failed\n");
      std::exit(1);
    }
    parts.kb = std::make_unique<kb::KnowledgeBase>(std::move(kb).value());
    parts.index =
        std::make_unique<index::InvertedIndex>(std::move(index).value());
    parts.engine_config = config;
    // Perturb the smoothing per generation so each publish builds a
    // genuinely distinct engine, as a re-ingest would.
    parts.engine_config.retriever.mu =
        dataset.retrieval_mu * (1.0 + 0.01 * static_cast<double>(epoch));
    return parts;
  };

  const size_t kSwapPublishes = 3;
  std::vector<double> publish_ms;
  LatencyStat swap_steady;
  LatencyStat during_swap;
  serving::SnapshotRegistryStats registry_stats;
  {
    serving::SnapshotRegistryOptions registry_options;
    registry_options.shared_cache.enabled = true;
    serving::SnapshotRegistry registry(registry_options);
    {
      Timer timer;
      if (!registry.Publish(make_parts(1)).ok()) {
        std::fprintf(stderr, "initial publish failed\n");
        return 1;
      }
      publish_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    frontend_config.queue_capacity = 2 * requests.size();
    serving::ServingFrontend frontend(&registry, frontend_config);

    // Registry-backed steady state: the lease acquire/release overhead.
    frontend.Submit(requests[0])->Wait();  // warm-up
    std::vector<double> steady_ms;
    steady_ms.reserve(requests.size());
    for (const serving::ServingRequest& r : requests) {
      const serving::ServingResponse& response = frontend.Submit(r)->Wait();
      if (!response.status.ok() || response.epoch != 1) {
        std::fprintf(stderr, "steady-state request failed\n");
        return 1;
      }
      steady_ms.push_back(response.total_ms);
    }
    swap_steady = Summarize(std::move(steady_ms));

    // Open-loop burst with kSwapPublishes publishes landing mid-flight.
    std::vector<std::shared_ptr<serving::ServingCall>> calls;
    calls.reserve(requests.size());
    const size_t chunk = requests.size() / (kSwapPublishes + 1);
    for (size_t i = 0; i < requests.size(); ++i) {
      if (i > 0 && i % chunk == 0 &&
          publish_ms.size() < kSwapPublishes + 1) {
        Timer timer;
        if (!registry.Publish(make_parts(publish_ms.size() + 1)).ok()) {
          std::fprintf(stderr, "mid-burst publish failed\n");
          return 1;
        }
        publish_ms.push_back(timer.ElapsedSeconds() * 1e3);
      }
      calls.push_back(frontend.Submit(requests[i]));
    }
    std::vector<double> swap_ms_samples;
    swap_ms_samples.reserve(calls.size());
    for (const auto& call : calls) {
      const serving::ServingResponse& response = call->Wait();
      if (!response.status.ok() || response.epoch < 1 ||
          response.epoch > kSwapPublishes + 1) {
        std::fprintf(stderr, "swap-burst request failed: %s\n",
                     response.status.ToString().c_str());
        return 1;
      }
      swap_ms_samples.push_back(response.total_ms);
    }
    frontend.Shutdown();
    during_swap = Summarize(std::move(swap_ms_samples));
    registry_stats = registry.Stats();
    if (registry_stats.published != kSwapPublishes + 1 ||
        registry_stats.live_epochs() != 1) {
      std::fprintf(stderr,
                   "registry lifecycle mismatch: published=%llu retired=%llu\n",
                   static_cast<unsigned long long>(registry_stats.published),
                   static_cast<unsigned long long>(registry_stats.retired));
      return 1;
    }
  }
  LatencyStat publish_stat = Summarize(publish_ms);
  double publish_max_ms = 0.0;
  for (double ms : publish_ms) publish_max_ms = std::max(publish_max_ms, ms);

  std::printf("serving_latency: %zu queries\n", kWorkload);
  std::printf("  bare      p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms\n",
              bare.p50_ms, bare.p95_ms, bare.p99_ms);
  std::printf("  frontend  p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms  "
              "(+%.3f ms p50 overhead)\n",
              closed.p50_ms, closed.p95_ms, closed.p99_ms,
              closed.p50_ms - bare.p50_ms);
  std::printf("  overload  completed=%llu rejected=%llu expired=%llu  "
              "completed p50 %7.3f ms  p95 %7.3f ms\n",
              static_cast<unsigned long long>(overload_stats.completed),
              static_cast<unsigned long long>(overload_stats.rejected()),
              static_cast<unsigned long long>(overload_stats.expired),
              overload.p50_ms, overload.p95_ms);
  std::printf("  %s\n", overload_stats.ToString().c_str());
  std::printf("  hot-swap  publish p50 %7.3f ms  max %7.3f ms  (%zu publishes)\n",
              publish_stat.p50_ms, publish_max_ms, publish_ms.size());
  std::printf("  hot-swap  steady p95 %7.3f ms  during-swap p95 %7.3f ms  "
              "(published=%llu retired=%llu)\n",
              swap_steady.p95_ms, during_swap.p95_ms,
              static_cast<unsigned long long>(registry_stats.published),
              static_cast<unsigned long long>(registry_stats.retired));

  char json[2048];
  std::snprintf(
      json, sizeof(json),
      "{\n  \"benchmark\": \"serving_latency\",\n"
      "  \"num_queries\": %zu,\n"
      "  \"bare\": {\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f},\n"
      "  \"frontend\": {\"p50_ms\": %.4f, \"p95_ms\": %.4f, "
      "\"p99_ms\": %.4f},\n"
      "  \"overload\": {\"capacity\": %zu, \"submitted\": %llu, "
      "\"completed\": %llu, \"rejected\": %llu, \"expired\": %llu, "
      "\"completed_p50_ms\": %.4f, \"completed_p95_ms\": %.4f},\n"
      "  \"hot_swap\": {\"publishes\": %zu, \"publish_p50_ms\": %.4f, "
      "\"publish_max_ms\": %.4f, \"steady_p95_ms\": %.4f, "
      "\"during_swap_p95_ms\": %.4f, \"published\": %llu, "
      "\"retired\": %llu}\n}\n",
      kWorkload, bare.p50_ms, bare.p95_ms, bare.p99_ms, closed.p50_ms,
      closed.p95_ms, closed.p99_ms, kCapacity,
      static_cast<unsigned long long>(overload_stats.submitted),
      static_cast<unsigned long long>(overload_stats.completed),
      static_cast<unsigned long long>(overload_stats.rejected()),
      static_cast<unsigned long long>(overload_stats.expired), overload.p50_ms,
      overload.p95_ms, publish_ms.size(), publish_stat.p50_ms, publish_max_ms,
      swap_steady.p95_ms, during_swap.p95_ms,
      static_cast<unsigned long long>(registry_stats.published),
      static_cast<unsigned long long>(registry_stats.retired));

  const char* out_path = "BENCH_serving.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json, f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
