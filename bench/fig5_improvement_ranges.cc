// Reproduces Figure 5: percentage improvement of SQE_T, SQE_T&S and SQE_S
// over the best of {QL_Q, QL_E, QL_Q&E} at each precision cutoff, on the
// ImageCLEF-like dataset — the three-range structure behind SQE_C's
// configuration (T for the smallest tops, T&S in the middle, S deep).
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/report.h"

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  bench::DatasetRuns runs =
      bench::ComputeAllRuns(world, synth::ImageClefSpec());

  std::vector<eval::NamedRun> systems;
  systems.push_back({"QL_Q", runs.ql_q, true, false});
  systems.push_back({"QL_E", runs.ql_e_m, true, false});
  systems.push_back({"QL_Q&E", runs.ql_qe_m, true, false});
  systems.push_back({"SQE_T", runs.sqe_t, false, false});
  systems.push_back({"SQE_T&S", runs.sqe_ts, false, false});
  systems.push_back({"SQE_S", runs.sqe_s, false, false});

  eval::PrecisionTable table =
      eval::EvaluateTable(systems, runs.dataset.query_set.qrels);
  const std::vector<size_t> baselines = {0, 1, 2};

  std::printf("Figure 5 — %% improvement over best QL baseline "
              "(ImageCLEF-like)\n%-10s", "");
  for (size_t top : eval::kDefaultTops) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "P@%zu", top);
    std::printf("%9s", buf);
  }
  std::printf("\n");

  size_t best_rows[eval::kDefaultTops.size()] = {};
  for (size_t row = 3; row <= 5; ++row) {
    auto imp = eval::PercentImprovementOverBest(table, baselines, row);
    std::printf("%-10s", table.row_names[row].c_str());
    for (size_t t = 0; t < imp.size(); ++t) {
      std::printf("%8.1f%%", imp[t]);
      if (table.means[row][t] > table.means[3 + best_rows[t]][t]) {
        best_rows[t] = row - 3;
      }
    }
    std::printf("\n");
  }

  static const char* kNames[] = {"SQE_T", "SQE_T&S", "SQE_S"};
  std::printf("\nbest configuration per range:\n");
  for (size_t t = 0; t < eval::kDefaultTops.size(); ++t) {
    std::printf("  P@%-5zu -> %s\n", eval::kDefaultTops[t],
                kNames[best_rows[t]]);
  }
  std::printf("(paper: SQE_T up to P@5, SQE_T&S for P@5..P@100, SQE_S "
              "beyond; SQE_C stitches ranks 1-5 / 6-200 / 201+)\n");
  return 0;
}
