// Batch query pipeline throughput: queries/sec of SqeEngine::RunBatch at 1,
// 4, and hardware-concurrency worker threads over the synthetic workload.
//
// Emits BENCH_batch.json (and the same figures on stdout) so CI can track
// scaling. On an N-core machine the 4-thread row should approach min(4, N)×
// the 1-thread row: workers share the immutable KB/index and touch only
// per-worker scratch, so there is no synchronization on the hot path.
//
// A second, cache-enabled engine then replays the same workload twice (cold
// fill, then a 100%-repeated warm pass served from the query-graph/result
// cache) and reports warm-vs-cold and warm-vs-uncached speedups plus the hit
// rate. The default throughput rows above run with caching off, so their
// numbers are untouched by this addition.
#include <cstdio>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

struct RunStat {
  size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
};

std::vector<expansion::BatchQueryInput> MakeWorkload(
    const synth::Dataset& dataset, size_t target_size) {
  std::vector<expansion::BatchQueryInput> batch;
  batch.reserve(target_size);
  const auto& queries = dataset.query_set.queries;
  for (size_t i = 0; i < target_size; ++i) {
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    batch.push_back({q.text, q.true_entities});
  }
  return batch;
}

RunStat TimeBatch(const expansion::SqeEngine& engine,
                  const std::vector<expansion::BatchQueryInput>& batch,
                  size_t threads) {
  // A pool of `threads` workers does all the work; the calling thread only
  // blocks. threads == 1 is the sequential baseline with pool overhead
  // included, which is what a serving front-end would actually pay.
  ThreadPool pool(threads);
  // Warm-up: fault in per-worker scratch and caches outside the timed run.
  engine.RunBatch(
      std::vector<expansion::BatchQueryInput>(batch.begin(),
                                              batch.begin() + 1),
      expansion::MotifConfig::Both(), 100, &pool);

  Timer timer;
  auto results =
      engine.RunBatch(batch, expansion::MotifConfig::Both(), 100, &pool);
  RunStat stat;
  stat.threads = threads;
  stat.seconds = timer.ElapsedSeconds();
  stat.qps = static_cast<double>(results.size()) / stat.seconds;
  return stat;
}

}  // namespace

int main() {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());

  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  const size_t kBatchSize = 512;
  const auto batch = MakeWorkload(dataset, kBatchSize);

  std::vector<size_t> thread_counts = {1, 4};
  const size_t hw = ThreadPool::HardwareConcurrency();
  if (hw != 1 && hw != 4) thread_counts.push_back(hw);

  std::printf("batch_throughput: %zu queries, hardware_concurrency=%zu\n",
              batch.size(), hw);
  std::vector<RunStat> stats;
  for (size_t t : thread_counts) {
    RunStat stat = TimeBatch(engine, batch, t);
    stats.push_back(stat);
    std::printf("  threads=%-2zu  %8.3f s  %10.1f queries/sec  (%.2fx vs 1)\n",
                stat.threads, stat.seconds, stat.qps,
                stat.qps / stats.front().qps);
  }

  // ---- cache-enabled replay: cold fill vs 100%-repeated warm pass ----------
  expansion::SqeEngineConfig cached_config = config;
  cached_config.cache.enabled = true;
  expansion::SqeEngine cached_engine(&world.kb, &dataset.index,
                                     dataset.linker.get(), &dataset.analyzer(),
                                     cached_config);
  ThreadPool cache_pool(1);
  Timer cold_timer;
  cached_engine.RunBatch(batch, expansion::MotifConfig::Both(), 100,
                         &cache_pool);
  const double cold_seconds = cold_timer.ElapsedSeconds();
  Timer warm_timer;
  cached_engine.RunBatch(batch, expansion::MotifConfig::Both(), 100,
                         &cache_pool);
  const double warm_seconds = warm_timer.ElapsedSeconds();
  const double cold_qps = static_cast<double>(batch.size()) / cold_seconds;
  const double warm_qps = static_cast<double>(batch.size()) / warm_seconds;
  const double uncached_qps = stats.front().qps;  // 1-thread, caching off
  const expansion::SqeCacheStats cache_stats = cached_engine.cache_stats();
  std::printf("cache (1 thread): cold %8.3f s %10.1f q/s, warm %8.3f s "
              "%10.1f q/s (%.1fx vs cold, %.1fx vs uncached)\n",
              cold_seconds, cold_qps, warm_seconds, warm_qps,
              warm_qps / cold_qps, warm_qps / uncached_qps);
  std::printf("%s\n", cache_stats.ToString().c_str());

  std::string json = "{\n  \"benchmark\": \"batch_throughput\",\n";
  json += "  \"num_queries\": " + std::to_string(batch.size()) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "    {\"threads\": %zu, \"seconds\": %.6f, \"qps\": %.2f}%s\n",
                  stats[i].threads, stats[i].seconds, stats[i].qps,
                  i + 1 < stats.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  {
    char block[512];
    std::snprintf(
        block, sizeof(block),
        "  \"cache\": {\"cold_seconds\": %.6f, \"cold_qps\": %.2f, "
        "\"warm_seconds\": %.6f, \"warm_qps\": %.2f, "
        "\"warm_vs_cold\": %.2f, \"warm_vs_uncached\": %.2f, "
        "\"result_hit_rate\": %.4f, \"graph_hit_rate\": %.4f}\n",
        cold_seconds, cold_qps, warm_seconds, warm_qps, warm_qps / cold_qps,
        warm_qps / uncached_qps, cache_stats.result.HitRate(),
        cache_stats.graph.HitRate());
    json += block;
  }
  json += "}\n";

  const char* out_path = "BENCH_batch.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
