// Batch query pipeline throughput: queries/sec of SqeEngine::RunBatch at 1,
// 4, and hardware-concurrency worker threads over the synthetic workload.
//
// Emits BENCH_batch.json (and the same figures on stdout) so CI can track
// scaling. On an N-core machine the 4-thread row should approach min(4, N)×
// the 1-thread row: workers share the immutable KB/index and touch only
// per-worker scratch, so there is no synchronization on the hot path.
//
// A second, cache-enabled engine then replays the same workload twice (cold
// fill, then a 100%-repeated warm pass served from the query-graph/result
// cache) and reports warm-vs-cold and warm-vs-uncached speedups plus the hit
// rate. The default throughput rows above run with caching off, so their
// numbers are untouched by this addition.
//
// A third section measures intra-query sharded scoring at S = 1, 2, 4 and
// hardware-concurrency shards: single-query-in-flight latency (one RunSqe at
// a time fanned across the pool — the latency a lightly-loaded front-end
// sees) and full-batch throughput (the three-phase query × shard grid). All
// shard counts must produce the same ranking digest — that equality is the
// determinism contract and is asserted here. NOTE: on a 1-core container
// (hardware_concurrency == 1, the CI case) the fan-out cannot run
// concurrently, so the interesting figure is the *overhead* of sharding —
// the S=4 per-query latency should stay within ~10% of S=1 — not a speedup;
// multi-core speedups are only observable on real hardware.
//
// A fourth section measures Block-Max WAND dynamic pruning on wide term-only
// queries (atom counts 4, 16, 48 — see wide_queries.h for why the SQE batch
// itself cannot exercise the pruned path): exhaustive vs pruned ns/query,
// the fraction of in-range postings the pruned scorer never decoded, and a
// digest-equality assert — pruning is exact, so a mismatch is a correctness
// bug and fails the binary.
// A fifth section measures the posting codec: the pruning corpus is
// round-tripped through a v3 (raw arrays) and a v4 (bit-packed blocks)
// snapshot, and both loaded indexes run the wide-query workload under the
// exhaustive and the pruned scorer. All four paths are digest-compared —
// the codec contract is bit-identical rankings — and the section reports
// the packed-vs-raw per-query cost next to the compression ratio
// (ComputePostingsStats), so "smaller region, same speed" is one table.
// A sixth section measures cold start at scale: a million-document corpus is
// streamed (synth::StreamCollection — constant memory) straight into the
// index builder, saved as BOTH a v3 (raw) and a v4 (packed) snapshot, and
// reloaded by four child processes — {heap, mapped} × {raw, packed} — each
// reporting its load time and VmRSS/VmHWM from /proc/self/status plus a
// probe-query digest. Child processes keep the RSS accounting honest: the
// load modes never share an address space, so one row's memory figure
// cannot inherit another's high-water mark. All digests must match; the
// mapped loads must come in below heap, and the packed snapshot (and its
// mapped cold RSS) below raw, for the v4 region to be paying its way.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "io/snapshot_format.h"
#include "retrieval/retriever.h"
#include "retrieval/wand_retriever.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"
#include "text/analyzer.h"
#include "wide_queries.h"

namespace {

using namespace sqe;

struct RunStat {
  size_t threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  // Per-query end-to-end latency (SqeRunResult::total_ms) percentiles over
  // the batch: the distribution a serving front-end inherits per request.
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

std::vector<expansion::BatchQueryInput> MakeWorkload(
    const synth::Dataset& dataset, size_t target_size) {
  std::vector<expansion::BatchQueryInput> batch;
  batch.reserve(target_size);
  const auto& queries = dataset.query_set.queries;
  for (size_t i = 0; i < target_size; ++i) {
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    batch.push_back({q.text, q.true_entities});
  }
  return batch;
}

RunStat TimeBatch(const expansion::SqeEngine& engine,
                  const std::vector<expansion::BatchQueryInput>& batch,
                  size_t threads) {
  // A pool of `threads` workers does all the work; the calling thread only
  // blocks. threads == 1 is the sequential baseline with pool overhead
  // included, which is what a serving front-end would actually pay.
  ThreadPool pool(threads);
  // Warm-up: fault in per-worker scratch and caches outside the timed run.
  engine.RunBatch(
      std::vector<expansion::BatchQueryInput>(batch.begin(),
                                              batch.begin() + 1),
      expansion::MotifConfig::Both(), 100, &pool);

  Timer timer;
  auto results =
      engine.RunBatch(batch, expansion::MotifConfig::Both(), 100, &pool);
  RunStat stat;
  stat.threads = threads;
  stat.seconds = timer.ElapsedSeconds();
  stat.qps = static_cast<double>(results.size()) / stat.seconds;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(results.size());
  for (const expansion::SqeRunResult& r : results) {
    latencies_ms.push_back(r.total_ms);
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  stat.p50_ms = latencies_ms[latencies_ms.size() / 2];
  stat.p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];
  stat.p99_ms = latencies_ms[std::min(latencies_ms.size() - 1,
                                      latencies_ms.size() * 99 / 100)];
  return stat;
}

// FNV-1a over the concatenated ranked doc ids: bit-identical rankings ⇒
// identical digests, so shard counts can be diffed.
uint64_t RankingDigest(const std::vector<expansion::SqeRunResult>& results) {
  uint64_t digest = 1469598103934665603ull;
  for (const expansion::SqeRunResult& r : results) {
    for (const retrieval::ScoredDoc& sd : r.results) {
      digest = (digest ^ sd.doc) * 1099511628211ull;
    }
  }
  return digest;
}

struct ShardStat {
  size_t shards = 0;
  double batch_seconds = 0.0;
  double batch_qps = 0.0;
  double single_p50_ms = 0.0;
  double single_p95_ms = 0.0;
  // Pool-less RunSqe on the sharded engine. Its overhead vs S=1 is what a
  // sharded deployment pays per query when no fan-out happens (the engine
  // full-scans then, since exact top-k under the total order is unique) —
  // the figure the ≤10% 1-core overhead bar applies to. The pooled columns
  // show the true fan-out, whose thread wakeups are pure overhead on one
  // core but amortize on real multi-core hosts.
  double seq_p50_ms = 0.0;
  uint64_t digest = 0;
};

// One engine per shard count over the same immutable dataset. The batch row
// exercises the (query × shard) grid; the single-query rows issue one
// RunSqe(..., pool) at a time, so all pool workers belong to that query.
ShardStat TimeSharded(const kb::KnowledgeBase& kb,
                      const synth::Dataset& dataset,
                      const expansion::SqeEngineConfig& base_config,
                      const std::vector<expansion::BatchQueryInput>& batch,
                      size_t num_shards, size_t pool_threads) {
  expansion::SqeEngineConfig config = base_config;
  config.sharding.num_shards = num_shards;
  expansion::SqeEngine engine(&kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);
  ThreadPool pool(pool_threads);

  ShardStat stat;
  stat.shards = num_shards;

  // Single query in flight: per-query latency distribution across repeats
  // of the query set.
  const size_t kRepeats = 16;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(kRepeats * batch.size());
  engine.RunSqe(batch[0].text, batch[0].query_nodes,
                expansion::MotifConfig::Both(), 100, &pool);  // warm-up
  for (size_t r = 0; r < kRepeats; ++r) {
    for (const expansion::BatchQueryInput& q : batch) {
      Timer timer;
      engine.RunSqe(q.text, q.query_nodes, expansion::MotifConfig::Both(),
                    100, &pool);
      latencies_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
  }
  std::sort(latencies_ms.begin(), latencies_ms.end());
  stat.single_p50_ms = latencies_ms[latencies_ms.size() / 2];
  stat.single_p95_ms = latencies_ms[latencies_ms.size() * 95 / 100];

  // Same queries without the pool: sequential sweep over shards + merge.
  std::vector<double> seq_ms;
  seq_ms.reserve(kRepeats * batch.size());
  for (size_t r = 0; r < kRepeats; ++r) {
    for (const expansion::BatchQueryInput& q : batch) {
      Timer timer;
      engine.RunSqe(q.text, q.query_nodes, expansion::MotifConfig::Both(),
                    100);
      seq_ms.push_back(timer.ElapsedSeconds() * 1e3);
    }
  }
  std::sort(seq_ms.begin(), seq_ms.end());
  stat.seq_p50_ms = seq_ms[seq_ms.size() / 2];

  // Full batch: threads split across queries and shards via the grid.
  Timer timer;
  auto results =
      engine.RunBatch(batch, expansion::MotifConfig::Both(), 100, &pool);
  stat.batch_seconds = timer.ElapsedSeconds();
  stat.batch_qps = static_cast<double>(results.size()) / stat.batch_seconds;
  stat.digest = RankingDigest(results);
  return stat;
}

struct PruneStat {
  size_t atoms = 0;
  double exhaustive_ns = 0.0;
  double wand_ns = 0.0;
  double skip_fraction = 0.0;
  bool digests_match = false;
};

uint64_t ResultDigest(const retrieval::ResultList& results) {
  uint64_t digest = 1469598103934665603ull;
  for (const retrieval::ScoredDoc& sd : results) {
    digest = (digest ^ sd.doc) * 1099511628211ull;
  }
  return digest;
}

// Exhaustive vs Block-Max WAND over wide term-only queries at one atom
// count. Every pruned ranking is digest-compared against the exhaustive one
// — the timing rows are only meaningful if the two paths agree bit for bit.
PruneStat TimePruning(const retrieval::Retriever& retriever,
                      const retrieval::WandRetriever& wand, size_t num_atoms) {
  const size_t kNumQueries = 16;
  const size_t kRepeats = 40;
  const size_t kTopK = 10;
  const auto queries = bench::MakeWideTermQueries(retriever.index(), num_atoms,
                                                  kNumQueries);
  retrieval::RetrieverScratch scratch;

  PruneStat stat;
  stat.atoms = num_atoms;
  stat.digests_match = true;
  // Correctness + warm-up pass (also faults in postings before timing).
  for (const retrieval::Query& q : queries) {
    const uint64_t exhaustive = ResultDigest(retriever.Retrieve(q, kTopK,
                                                                &scratch));
    const uint64_t pruned = ResultDigest(wand.Retrieve(q, kTopK, &scratch));
    stat.digests_match &= exhaustive == pruned;
  }

  Timer exhaustive_timer;
  for (size_t r = 0; r < kRepeats; ++r) {
    for (const retrieval::Query& q : queries) {
      retriever.Retrieve(q, kTopK, &scratch);
    }
  }
  const double exhaustive_seconds = exhaustive_timer.ElapsedSeconds();

  const retrieval::WandStats before = wand.Stats();
  Timer wand_timer;
  for (size_t r = 0; r < kRepeats; ++r) {
    for (const retrieval::Query& q : queries) {
      wand.Retrieve(q, kTopK, &scratch);
    }
  }
  const double wand_seconds = wand_timer.ElapsedSeconds();
  const retrieval::WandStats after = wand.Stats();

  const double per_query = static_cast<double>(kRepeats * kNumQueries);
  stat.exhaustive_ns = exhaustive_seconds * 1e9 / per_query;
  stat.wand_ns = wand_seconds * 1e9 / per_query;
  const uint64_t total = after.postings_total - before.postings_total;
  const uint64_t scored = after.postings_scored - before.postings_scored;
  stat.skip_fraction =
      total == 0 ? 0.0
                 : 1.0 - static_cast<double>(scored) /
                             static_cast<double>(total);
  // Term-only queries must never take the phrase fallback; a fallback here
  // would time the exhaustive scorer twice and report a fake 1.0x.
  stat.digests_match &= after.fallbacks == before.fallbacks;
  return stat;
}

// ---- codec: raw vs packed postings ------------------------------------------

struct CodecStat {
  size_t atoms = 0;
  double raw_exhaustive_ns = 0.0;
  double packed_exhaustive_ns = 0.0;
  double raw_wand_ns = 0.0;
  double packed_wand_ns = 0.0;
  bool digests_match = false;
};

// The same wide-query workload against the v3-raw and v4-packed loads of
// one index, all four (codec × scorer) paths digest-compared per query.
CodecStat TimeCodec(const retrieval::Retriever& raw,
                    const retrieval::WandRetriever& raw_wand,
                    const retrieval::Retriever& packed,
                    const retrieval::WandRetriever& packed_wand,
                    size_t num_atoms) {
  const size_t kNumQueries = 16;
  const size_t kRepeats = 40;
  const size_t kTopK = 10;
  const auto queries =
      bench::MakeWideTermQueries(raw.index(), num_atoms, kNumQueries);
  retrieval::RetrieverScratch scratch;

  CodecStat stat;
  stat.atoms = num_atoms;
  stat.digests_match = true;
  // Correctness + warm-up pass: every path must rank identically.
  for (const retrieval::Query& q : queries) {
    const uint64_t want = ResultDigest(raw.Retrieve(q, kTopK, &scratch));
    stat.digests_match &=
        want == ResultDigest(raw_wand.Retrieve(q, kTopK, &scratch));
    stat.digests_match &=
        want == ResultDigest(packed.Retrieve(q, kTopK, &scratch));
    stat.digests_match &=
        want == ResultDigest(packed_wand.Retrieve(q, kTopK, &scratch));
  }

  const auto time_path = [&](const auto& retriever) {
    Timer timer;
    for (size_t r = 0; r < kRepeats; ++r) {
      for (const retrieval::Query& q : queries) {
        retriever.Retrieve(q, kTopK, &scratch);
      }
    }
    return timer.ElapsedSeconds() * 1e9 /
           static_cast<double>(kRepeats * kNumQueries);
  };
  stat.raw_exhaustive_ns = time_path(raw);
  stat.packed_exhaustive_ns = time_path(packed);
  stat.raw_wand_ns = time_path(raw_wand);
  stat.packed_wand_ns = time_path(packed_wand);
  return stat;
}

// ---- cold start ------------------------------------------------------------

// "VmRSS" / "VmHWM" in kB from /proc/self/status (0 if unavailable).
size_t ReadProcStatusKb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      kb = std::strtoull(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// Deterministic ranking digest over a handful of wide probe queries: the
// heap and mapped children must agree bit for bit.
uint64_t ColdStartProbeDigest(const index::InvertedIndex& index) {
  retrieval::Retriever retriever(&index, {.mu = 300.0});
  retrieval::RetrieverScratch scratch;
  uint64_t digest = 1469598103934665603ull;
  for (const retrieval::Query& q :
       bench::MakeWideTermQueries(index, 8, 4)) {
    for (const retrieval::ScoredDoc& sd :
         retriever.Retrieve(q, 10, &scratch)) {
      digest = (digest ^ sd.doc) * 1099511628211ull;
    }
  }
  return digest;
}

// Child-process entry: load the snapshot in the requested mode, probe it,
// report one machine-parseable line.
int ColdStartChild(const char* mode_name, const char* path) {
  const io::LoadMode mode = std::strcmp(mode_name, "mapped") == 0
                                ? io::LoadMode::kZeroCopy
                                : io::LoadMode::kHeap;
  Timer timer;
  auto index_or = index::InvertedIndex::FromSnapshotFile(path, mode);
  if (!index_or.ok()) {
    std::fprintf(stderr, "coldstart child: %s\n",
                 index_or.status().ToString().c_str());
    return 2;
  }
  const double load_seconds = timer.ElapsedSeconds();
  const uint64_t digest = ColdStartProbeDigest(index_or.value());
  std::printf("coldstart mode=%s load_seconds=%.6f rss_kb=%zu hwm_kb=%zu "
              "num_docs=%zu digest=%016llx\n",
              mode_name, load_seconds, ReadProcStatusKb("VmRSS"),
              ReadProcStatusKb("VmHWM"), index_or->NumDocuments(),
              static_cast<unsigned long long>(digest));
  return 0;
}

struct ColdStartStat {
  bool ok = false;
  double load_seconds = 0.0;
  size_t rss_kb = 0;
  size_t hwm_kb = 0;
  uint64_t digest = 0;
};

ColdStartStat RunColdStartChild(const char* self, const char* mode,
                                const std::string& path) {
  ColdStartStat stat;
  const std::string command =
      std::string(self) + " --coldstart-child " + mode + " " + path;
  std::FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return stat;
  char line[512];
  while (std::fgets(line, sizeof(line), pipe) != nullptr) {
    char parsed_mode[16];
    double load_seconds = 0.0;
    size_t rss_kb = 0, hwm_kb = 0, num_docs = 0;
    unsigned long long digest = 0;
    if (std::sscanf(line,
                    "coldstart mode=%15s load_seconds=%lf rss_kb=%zu "
                    "hwm_kb=%zu num_docs=%zu digest=%llx",
                    parsed_mode, &load_seconds, &rss_kb, &hwm_kb, &num_docs,
                    &digest) == 6) {
      stat.ok = true;
      stat.load_seconds = load_seconds;
      stat.rss_kb = rss_kb;
      stat.hwm_kb = hwm_kb;
      stat.digest = digest;
    }
  }
  if (::pclose(pipe) != 0) stat.ok = false;
  return stat;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4 && std::strcmp(argv[1], "--coldstart-child") == 0) {
    return ColdStartChild(argv[2], argv[3]);
  }
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());

  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  const size_t kBatchSize = 512;
  const auto batch = MakeWorkload(dataset, kBatchSize);

  std::vector<size_t> thread_counts = {1, 4};
  const size_t hw = ThreadPool::HardwareConcurrency();
  if (hw != 1 && hw != 4) thread_counts.push_back(hw);

  std::printf("batch_throughput: %zu queries, hardware_concurrency=%zu\n",
              batch.size(), hw);
  std::vector<RunStat> stats;
  for (size_t t : thread_counts) {
    RunStat stat = TimeBatch(engine, batch, t);
    stats.push_back(stat);
    std::printf("  threads=%-2zu  %8.3f s  %10.1f queries/sec  (%.2fx vs 1)  "
                "per-query p50 %7.3f ms  p95 %7.3f ms  p99 %7.3f ms\n",
                stat.threads, stat.seconds, stat.qps,
                stat.qps / stats.front().qps, stat.p50_ms, stat.p95_ms,
                stat.p99_ms);
  }

  // ---- cache-enabled replay: cold fill vs 100%-repeated warm pass ----------
  expansion::SqeEngineConfig cached_config = config;
  cached_config.cache.enabled = true;
  expansion::SqeEngine cached_engine(&world.kb, &dataset.index,
                                     dataset.linker.get(), &dataset.analyzer(),
                                     cached_config);
  ThreadPool cache_pool(1);
  Timer cold_timer;
  cached_engine.RunBatch(batch, expansion::MotifConfig::Both(), 100,
                         &cache_pool);
  const double cold_seconds = cold_timer.ElapsedSeconds();
  Timer warm_timer;
  cached_engine.RunBatch(batch, expansion::MotifConfig::Both(), 100,
                         &cache_pool);
  const double warm_seconds = warm_timer.ElapsedSeconds();
  const double cold_qps = static_cast<double>(batch.size()) / cold_seconds;
  const double warm_qps = static_cast<double>(batch.size()) / warm_seconds;
  const double uncached_qps = stats.front().qps;  // 1-thread, caching off
  const expansion::SqeCacheStats cache_stats = cached_engine.cache_stats();
  std::printf("cache (1 thread): cold %8.3f s %10.1f q/s, warm %8.3f s "
              "%10.1f q/s (%.1fx vs cold, %.1fx vs uncached)\n",
              cold_seconds, cold_qps, warm_seconds, warm_qps,
              warm_qps / cold_qps, warm_qps / uncached_qps);
  std::printf("%s\n", cache_stats.ToString().c_str());

  // ---- intra-query sharded scoring: S = 1, 2, 4, hw --------------------------
  std::vector<size_t> shard_counts = {1, 2, 4};
  if (hw != 1 && hw != 2 && hw != 4) shard_counts.push_back(hw);
  const size_t shard_pool_threads = std::max<size_t>(hw, 2);
  std::printf("sharded scoring (%zu pool threads; on 1-core hosts expect "
              "overhead, not speedup):\n",
              shard_pool_threads);
  std::vector<ShardStat> shard_stats;
  for (size_t s : shard_counts) {
    ShardStat stat = TimeSharded(world.kb, dataset, config, batch, s,
                                 shard_pool_threads);
    shard_stats.push_back(stat);
    std::printf("  shards=%-2zu  single-query p50 %7.3f ms  p95 %7.3f ms  "
                "(seq %7.3f ms)  |  batch %8.3f s  %10.1f q/s  "
                "digest %016llx\n",
                stat.shards, stat.single_p50_ms, stat.single_p95_ms,
                stat.seq_p50_ms, stat.batch_seconds, stat.batch_qps,
                static_cast<unsigned long long>(stat.digest));
  }
  const ShardStat* s4 = nullptr;
  for (const ShardStat& s : shard_stats) {
    if (s.shards == 4) s4 = &s;
  }
  if (s4 != nullptr) {
    std::printf("  sequential S=4 overhead vs S=1: %+.1f%%\n",
                (s4->seq_p50_ms / shard_stats.front().seq_p50_ms - 1.0) *
                    100.0);
  }
  bool shard_digests_match = true;
  for (const ShardStat& s : shard_stats) {
    shard_digests_match &= s.digest == shard_stats.front().digest;
  }
  std::printf("  shard digests %s\n",
              shard_digests_match ? "MATCH (bit-identical rankings)"
                                  : "MISMATCH — determinism contract broken");
  if (!shard_digests_match) return 1;

  // ---- Block-Max WAND pruning: wide term-only queries, 4/16/48 atoms -------
  // Over the dedicated long-posting-list corpus (see wide_queries.h) — the
  // regime the pruned scorer targets; the TinyWorld lists above are a few
  // entries long and would only measure fixed overhead.
  const index::InvertedIndex prune_index = bench::MakePruningIndex(20000);
  retrieval::Retriever prune_retriever(&prune_index, {.mu = 300.0});
  retrieval::WandRetriever prune_wand(&prune_retriever);
  std::printf("pruning (wide term queries, k=10; exact — digests asserted):\n");
  std::vector<PruneStat> prune_stats;
  bool prune_digests_match = true;
  for (size_t atoms : {4, 16, 48}) {
    PruneStat stat = TimePruning(prune_retriever, prune_wand, atoms);
    prune_stats.push_back(stat);
    prune_digests_match &= stat.digests_match;
    std::printf("  atoms=%-2zu  exhaustive %9.0f ns/query  wand %9.0f "
                "ns/query  (%.2fx)  postings skipped %5.1f%%\n",
                stat.atoms, stat.exhaustive_ns, stat.wand_ns,
                stat.exhaustive_ns / stat.wand_ns, stat.skip_fraction * 100.0);
  }
  std::printf("  pruning digests %s\n",
              prune_digests_match ? "MATCH (bit-identical rankings)"
                                  : "MISMATCH — pruning is not exact");
  if (!prune_digests_match) return 1;

  // ---- codec: v3 raw vs v4 packed postings at memory-bound scale -----------
  // 200k docs puts the raw postings region (~70 MB) well past the LLC while
  // the packed one (~5 MB) largely fits inside it — the regime the codec
  // exists for. At cache-resident corpus sizes raw array probes are
  // near-free and the comparison only measures decode overhead, which is
  // not the production trade. Scoped so the ~400 MB of corpus + images +
  // loaded indexes is gone before the cold-start children measure RSS.
  const size_t kCodecDocs = 200000;
  index::InvertedIndex::PostingsStats codec_stats;
  double codec_ratio = 0.0;
  size_t codec_v3_bytes = 0;
  size_t codec_v4_bytes = 0;
  std::vector<CodecStat> codec_stats_runs;
  bool codec_digests_match = true;
  {
    const index::InvertedIndex codec_index =
        bench::MakePruningIndex(kCodecDocs);
    std::string codec_v3_image =
        codec_index.SerializeToString(io::kAlignedSnapshotVersion);
    std::string codec_v4_image = codec_index.SerializeToString();
    codec_v3_bytes = codec_v3_image.size();
    codec_v4_bytes = codec_v4_image.size();
    auto codec_raw_or =
        index::InvertedIndex::FromSnapshotString(std::move(codec_v3_image));
    auto codec_packed_or =
        index::InvertedIndex::FromSnapshotString(std::move(codec_v4_image));
    if (!codec_raw_or.ok() || !codec_packed_or.ok()) {
      std::fprintf(stderr, "codec round trip failed\n");
      return 1;
    }
    codec_stats = codec_index.ComputePostingsStats();
    codec_ratio = static_cast<double>(codec_stats.packed_bytes) /
                  static_cast<double>(codec_stats.raw_bytes);
    retrieval::Retriever codec_raw_retriever(&codec_raw_or.value(),
                                             {.mu = 300.0});
    retrieval::WandRetriever codec_raw_wand(&codec_raw_retriever);
    retrieval::Retriever codec_packed_retriever(&codec_packed_or.value(),
                                                {.mu = 300.0});
    retrieval::WandRetriever codec_packed_wand(&codec_packed_retriever);
    std::printf(
        "codec (raw v3 vs packed v4, %zu docs, k=10; digests asserted): "
        "postings region %llu -> %llu bytes (%.3fx), snapshot %zu -> %zu "
        "bytes\n",
        kCodecDocs, static_cast<unsigned long long>(codec_stats.raw_bytes),
        static_cast<unsigned long long>(codec_stats.packed_bytes), codec_ratio,
        codec_v3_bytes, codec_v4_bytes);
    for (size_t atoms : {16, 48}) {
      CodecStat stat =
          TimeCodec(codec_raw_retriever, codec_raw_wand,
                    codec_packed_retriever, codec_packed_wand, atoms);
      codec_stats_runs.push_back(stat);
      codec_digests_match &= stat.digests_match;
      std::printf("  atoms=%-2zu  exhaustive raw %9.0f ns  packed %9.0f ns "
                  "(%.2fx)  |  wand raw %9.0f ns  packed %9.0f ns (%.2fx)\n",
                  stat.atoms, stat.raw_exhaustive_ns, stat.packed_exhaustive_ns,
                  stat.packed_exhaustive_ns / stat.raw_exhaustive_ns,
                  stat.raw_wand_ns, stat.packed_wand_ns,
                  stat.packed_wand_ns / stat.raw_wand_ns);
    }
    std::printf("  codec digests %s\n",
                codec_digests_match ? "MATCH (bit-identical rankings)"
                                    : "MISMATCH — packed decode changed "
                                      "rankings");
    if (!codec_digests_match) return 1;
  }

  // ---- cold start: 1M-doc streamed corpus, {heap, mapped} x {raw, packed} --
  const size_t kColdStartDocs = 1'000'000;
  const std::string cold_path_raw = "/tmp/sqe_coldstart_index_v3.snap";
  const std::string cold_path_packed = "/tmp/sqe_coldstart_index_v4.snap";
  double cold_build_seconds = 0.0;
  uint64_t cold_total_tokens = 0;
  size_t cold_raw_bytes = 0;
  size_t cold_packed_bytes = 0;
  {
    // Scoped so the builder's index is destroyed before the children run —
    // their RSS should measure the load path, not compete with the parent's
    // copy for memory.
    synth::CollectionOptions cs_options;
    cs_options.num_docs = kColdStartDocs;
    cs_options.min_doc_tokens = 10;
    cs_options.max_doc_tokens = 24;
    text::Analyzer analyzer;
    index::IndexBuilder builder;
    Timer build_timer;
    synth::StreamCollection(
        world, cs_options, [&](synth::GeneratedDoc doc, size_t /*d*/) {
          builder.AddDocument(std::move(doc.external_id),
                              analyzer.Analyze(doc.text));
        });
    index::InvertedIndex cold_index = std::move(builder).Build();
    cold_build_seconds = build_timer.ElapsedSeconds();
    cold_total_tokens = cold_index.TotalTokens();
    Status saved =
        cold_index.SaveToFile(cold_path_raw, io::kAlignedSnapshotVersion);
    if (saved.ok()) saved = cold_index.SaveToFile(cold_path_packed);
    if (!saved.ok()) {
      std::fprintf(stderr, "coldstart save: %s\n", saved.ToString().c_str());
      return 1;
    }
    std::error_code ec;
    cold_raw_bytes =
        static_cast<size_t>(std::filesystem::file_size(cold_path_raw, ec));
    cold_packed_bytes = static_cast<size_t>(
        std::filesystem::file_size(cold_path_packed, ec));
  }
  std::printf("cold start (%zu docs, %llu tokens, streamed build %.1f s, "
              "snapshot raw %zu MB / packed %zu MB = %.3fx):\n",
              kColdStartDocs,
              static_cast<unsigned long long>(cold_total_tokens),
              cold_build_seconds, cold_raw_bytes >> 20,
              cold_packed_bytes >> 20,
              static_cast<double>(cold_packed_bytes) /
                  static_cast<double>(cold_raw_bytes));
  struct ColdRow {
    const char* label;
    const char* mode;
    const std::string* path;
    ColdStartStat stat;
  };
  ColdRow cold_rows[] = {
      {"heap/raw", "heap", &cold_path_raw, {}},
      {"mapped/raw", "mapped", &cold_path_raw, {}},
      {"heap/packed", "heap", &cold_path_packed, {}},
      {"mapped/packed", "mapped", &cold_path_packed, {}},
  };
  bool cold_ok = true;
  for (ColdRow& row : cold_rows) {
    row.stat = RunColdStartChild(argv[0], row.mode, *row.path);
    cold_ok &= row.stat.ok;
  }
  std::remove(cold_path_raw.c_str());
  std::remove(cold_path_packed.c_str());
  if (!cold_ok) {
    std::fprintf(stderr, "coldstart child failed\n");
    return 1;
  }
  bool cold_digests_match = true;
  for (const ColdRow& row : cold_rows) {
    cold_digests_match &= row.stat.digest == cold_rows[0].stat.digest;
    std::printf("  %-13s  load %8.3f s  rss %7zu MB  peak %7zu MB  "
                "digest %016llx\n",
                row.label, row.stat.load_seconds, row.stat.rss_kb >> 10,
                row.stat.hwm_kb >> 10,
                static_cast<unsigned long long>(row.stat.digest));
  }
  std::printf("  mapped/packed vs mapped/raw: %.2fx load time, %.2fx cold "
              "RSS; digests %s\n",
              cold_rows[3].stat.load_seconds / cold_rows[1].stat.load_seconds,
              static_cast<double>(cold_rows[3].stat.rss_kb) /
                  static_cast<double>(cold_rows[1].stat.rss_kb),
              cold_digests_match ? "MATCH" : "MISMATCH — codec or load mode "
                                            "changed the rankings");
  if (!cold_digests_match) return 1;

  std::string json = "{\n  \"benchmark\": \"batch_throughput\",\n";
  json += "  \"num_queries\": " + std::to_string(batch.size()) + ",\n";
  json += "  \"hardware_concurrency\": " + std::to_string(hw) + ",\n";
  json += "  \"runs\": [\n";
  for (size_t i = 0; i < stats.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    {\"threads\": %zu, \"seconds\": %.6f, \"qps\": %.2f, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
                  stats[i].threads, stats[i].seconds, stats[i].qps,
                  stats[i].p50_ms, stats[i].p95_ms, stats[i].p99_ms,
                  i + 1 < stats.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  {
    char block[512];
    std::snprintf(
        block, sizeof(block),
        "  \"cache\": {\"cold_seconds\": %.6f, \"cold_qps\": %.2f, "
        "\"warm_seconds\": %.6f, \"warm_qps\": %.2f, "
        "\"warm_vs_cold\": %.2f, \"warm_vs_uncached\": %.2f, "
        "\"result_hit_rate\": %.4f, \"graph_hit_rate\": %.4f}\n",
        cold_seconds, cold_qps, warm_seconds, warm_qps, warm_qps / cold_qps,
        warm_qps / uncached_qps, cache_stats.result.HitRate(),
        cache_stats.graph.HitRate());
    json += block;
  }
  json += ",\n  \"shard\": {\n    \"pool_threads\": " +
          std::to_string(shard_pool_threads) + ",\n    \"digests_match\": " +
          (shard_digests_match ? "true" : "false") + ",\n    \"runs\": [\n";
  for (size_t i = 0; i < shard_stats.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "      {\"shards\": %zu, \"single_query_p50_ms\": %.4f, "
                  "\"single_query_p95_ms\": %.4f, "
                  "\"sequential_p50_ms\": %.4f, \"batch_seconds\": %.6f, "
                  "\"batch_qps\": %.2f}%s\n",
                  shard_stats[i].shards, shard_stats[i].single_p50_ms,
                  shard_stats[i].single_p95_ms, shard_stats[i].seq_p50_ms,
                  shard_stats[i].batch_seconds, shard_stats[i].batch_qps,
                  i + 1 < shard_stats.size() ? "," : "");
    json += line;
  }
  json += "    ]\n  },\n";
  json += "  \"pruning\": {\n    \"top_k\": 10,\n    \"digests_match\": ";
  json += prune_digests_match ? "true" : "false";
  json += ",\n    \"runs\": [\n";
  for (size_t i = 0; i < prune_stats.size(); ++i) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "      {\"atoms\": %zu, \"exhaustive_ns_per_query\": %.0f, "
                  "\"wand_ns_per_query\": %.0f, \"speedup\": %.2f, "
                  "\"postings_skipped\": %.4f}%s\n",
                  prune_stats[i].atoms, prune_stats[i].exhaustive_ns,
                  prune_stats[i].wand_ns,
                  prune_stats[i].exhaustive_ns / prune_stats[i].wand_ns,
                  prune_stats[i].skip_fraction,
                  i + 1 < prune_stats.size() ? "," : "");
    json += line;
  }
  json += "    ]\n  },\n";
  {
    char block[512];
    std::snprintf(
        block, sizeof(block),
        "  \"codec\": {\"num_docs\": %zu, \"raw_region_bytes\": %zu, "
        "\"packed_region_bytes\": %zu, \"compression_ratio\": %.4f, "
        "\"v3_snapshot_bytes\": %zu, \"v4_snapshot_bytes\": %zu, "
        "\"digests_match\": %s,\n    \"runs\": [\n",
        kCodecDocs, codec_stats.raw_bytes, codec_stats.packed_bytes,
        codec_ratio, codec_v3_bytes, codec_v4_bytes,
        codec_digests_match ? "true" : "false");
    json += block;
  }
  for (size_t i = 0; i < codec_stats_runs.size(); ++i) {
    const CodecStat& cs = codec_stats_runs[i];
    char line[384];
    std::snprintf(line, sizeof(line),
                  "      {\"atoms\": %zu, \"raw_exhaustive_ns\": %.0f, "
                  "\"packed_exhaustive_ns\": %.0f, \"raw_wand_ns\": %.0f, "
                  "\"packed_wand_ns\": %.0f}%s\n",
                  cs.atoms, cs.raw_exhaustive_ns, cs.packed_exhaustive_ns,
                  cs.raw_wand_ns, cs.packed_wand_ns,
                  i + 1 < codec_stats_runs.size() ? "," : "");
    json += line;
  }
  json += "    ]\n  },\n";
  {
    char block[1024];
    std::snprintf(
        block, sizeof(block),
        "  \"cold_start\": {\"num_docs\": %zu, \"total_tokens\": %llu, "
        "\"build_seconds\": %.3f, \"raw_snapshot_bytes\": %zu, "
        "\"packed_snapshot_bytes\": %zu, \"digests_match\": %s,\n",
        kColdStartDocs, static_cast<unsigned long long>(cold_total_tokens),
        cold_build_seconds, cold_raw_bytes, cold_packed_bytes,
        cold_digests_match ? "true" : "false");
    json += block;
  }
  for (size_t i = 0; i < 4; ++i) {
    const ColdRow& row = cold_rows[i];
    char line[256];
    std::snprintf(line, sizeof(line),
                  "    \"%s\": {\"load_seconds\": %.6f, \"rss_kb\": %zu, "
                  "\"hwm_kb\": %zu}%s\n",
                  row.label, row.stat.load_seconds, row.stat.rss_kb,
                  row.stat.hwm_kb, i + 1 < 4 ? "," : "}");
    json += line;
  }
  json += "}\n";

  const char* out_path = "BENCH_batch.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", out_path);
  } else {
    std::fprintf(stderr, "could not write %s\n", out_path);
    return 1;
  }
  return 0;
}
