// Reproduces Table 2 (a, b, c): the combined SQE_C strategy with manual (M)
// and automatic (A) entity selection against all baselines, on all three
// datasets.
//
// Paper shapes this harness should reproduce:
//   * SQE_C (M) and SQE_C (A) significantly beat every QL baseline on all
//     three datasets.
//   * Manual >= automatic; QL_E(A) < QL_E(M).
//   * QL_X alone is *worse* than the best baseline.
//   * Absolute precision: ImageCLEF-like > CHiC-2013-like > CHiC-2012-like
//     (collection size, avg relevant per query, zero-relevant queries).
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/report.h"

namespace {

void RunDataset(const sqe::synth::World& world,
                const sqe::synth::DatasetSpec& spec, char label) {
  using namespace sqe;
  bench::DatasetRuns runs = bench::ComputeAllRuns(world, spec);

  std::vector<eval::NamedRun> systems;
  systems.push_back({"QL_Q", runs.ql_q, true, false});
  systems.push_back({"QL_E (M)", runs.ql_e_m, true, false});
  systems.push_back({"QL_E (A)", runs.ql_e_a, true, false});
  systems.push_back({"QL_Q&E (M)", runs.ql_qe_m, true, false});
  systems.push_back({"QL_Q&E (A)", runs.ql_qe_a, true, false});
  systems.push_back({"QL_X", runs.ql_x, false, false});
  systems.push_back({"SQE_C (M)", runs.sqe_c_m, false, false});
  systems.push_back({"SQE_C (A)", runs.sqe_c_a, false, false});

  eval::PrecisionTable table =
      eval::EvaluateTable(systems, runs.dataset.query_set.qrels);
  std::printf("%s\n",
              table
                  .ToString(std::string("Table 2") + label + " — " +
                            runs.dataset.name +
                            " (+ marks p<0.05 vs all QL baselines)")
                  .c_str());
  std::printf(
      "dataset stats: %zu docs, avg relevant/query %.2f, zero-relevant "
      "queries %zu, auto-linking precision %.1f%%\n\n",
      runs.dataset.collection.docs.size(),
      runs.dataset.query_set.qrels.AverageRelevantPerQuery(),
      runs.dataset.query_set.qrels.NumQueriesWithoutRelevant(),
      100.0 * bench::AutoLinkingPrecision(runs));
}

}  // namespace

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  RunDataset(world, synth::ImageClefSpec(), 'a');
  RunDataset(world, synth::Chic2012Spec(), 'b');
  RunDataset(world, synth::Chic2013Spec(), 'c');
  return 0;
}
