// Shared harness for the table/figure reproduction binaries.
//
// Builds the paper's world + datasets once and runs every system the
// evaluation section compares, producing named per-query result lists that
// the individual bench binaries slice into their tables and figures.
#ifndef SQE_BENCH_BENCH_UTIL_H_
#define SQE_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "eval/report.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe::bench {

/// All per-query runs for one dataset, named as in the paper.
struct DatasetRuns {
  synth::Dataset dataset;
  std::unique_ptr<expansion::SqeEngine> engine;

  // Baselines (M = manual query nodes, A = automatic entity linking).
  std::vector<retrieval::ResultList> ql_q;
  std::vector<retrieval::ResultList> ql_e_m;
  std::vector<retrieval::ResultList> ql_e_a;
  std::vector<retrieval::ResultList> ql_qe_m;
  std::vector<retrieval::ResultList> ql_qe_a;
  std::vector<retrieval::ResultList> ql_x;

  // Single motif configurations (manual query nodes).
  std::vector<retrieval::ResultList> sqe_t;
  std::vector<retrieval::ResultList> sqe_ts;
  std::vector<retrieval::ResultList> sqe_s;
  // Ground-truth upper bound.
  std::vector<retrieval::ResultList> sqe_ub;

  // Rank-range combined runs.
  std::vector<retrieval::ResultList> sqe_c_m;
  std::vector<retrieval::ResultList> sqe_c_a;

  // Automatic query nodes per query (for linking-precision reporting).
  std::vector<std::vector<kb::ArticleId>> auto_nodes;

  // Table 4 timings: summed motif-traversal milliseconds across queries.
  double motif_ms_t = 0.0;
  double motif_ms_ts = 0.0;
  double motif_ms_s = 0.0;
  double total_pipeline_ms = 0.0;

  // Average expansion features per query, per configuration (Sec. 4.1).
  double avg_features_t = 0.0;
  double avg_features_ts = 0.0;
  double avg_features_s = 0.0;
};

/// Retrieval depth: everything is evaluated down to P@1000.
inline constexpr size_t kRetrievalDepth = 1000;

/// Builds the shared world (cached per process).
const synth::World& PaperWorld();

/// Runs every system on one dataset. Expensive (tens of seconds).
DatasetRuns ComputeAllRuns(const synth::World& world,
                           const synth::DatasetSpec& spec);

/// Fraction of queries whose automatically linked nodes contain the true
/// intent article (the linker-precision figure quoted in Section 3).
double AutoLinkingPrecision(const DatasetRuns& runs);

}  // namespace sqe::bench

#endif  // SQE_BENCH_BENCH_UTIL_H_
