// Micro-benchmarks (google-benchmark) for the core kernels: motif
// matching, query-graph construction, retrieval, phrase matching, index
// construction and snapshot round-trips. Not a paper table — an ablation
// aid for the design choices DESIGN.md calls out (sorted-CSR membership
// tests, doc-at-a-time scoring, rank-range fusion).
#include <benchmark/benchmark.h>

#include "kb/kb_builder.h"
#include "retrieval/phrase_matcher.h"
#include "sqe/combiner.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

const synth::World& BenchWorld() {
  static const synth::World& world = *new synth::World(
      synth::World::Generate(synth::PaperWorldOptions()));
  return world;
}

synth::Dataset& BenchDataset() {
  static synth::Dataset& ds = *new synth::Dataset(
      synth::BuildDataset(BenchWorld(), synth::ImageClefSpec()));
  return ds;
}

expansion::SqeEngine& BenchEngine() {
  static expansion::SqeEngine& engine = *[] {
    synth::Dataset& ds = BenchDataset();
    expansion::SqeEngineConfig config;
    config.retriever.mu = ds.retrieval_mu;
    return new expansion::SqeEngine(&BenchWorld().kb, &ds.index,
                                    ds.linker.get(), &ds.analyzer(), config);
  }();
  return engine;
}

void BM_TriangularMotif(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    kb::ArticleId q = queries[qi++ % queries.size()].true_entities[0];
    benchmark::DoNotOptimize(finder.FindTriangular(q));
  }
}
BENCHMARK(BM_TriangularMotif);

void BM_SquareMotif(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    kb::ArticleId q = queries[qi++ % queries.size()].true_entities[0];
    benchmark::DoNotOptimize(finder.FindSquare(q));
  }
}
BENCHMARK(BM_SquareMotif);

void BM_BuildQueryGraph(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  const expansion::MotifConfig config = expansion::MotifConfig::Both();
  size_t qi = 0;
  for (auto _ : state) {
    const auto& nodes = queries[qi++ % queries.size()].true_entities;
    benchmark::DoNotOptimize(finder.BuildQueryGraph(nodes, config));
  }
}
BENCHMARK(BM_BuildQueryGraph);

void BM_RetrieveExpanded(benchmark::State& state) {
  expansion::SqeEngine& engine = BenchEngine();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    const auto& query = queries[qi++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.RunSqe(query.text, query.true_entities,
                      expansion::MotifConfig::Both(),
                      static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RetrieveExpanded)->Arg(10)->Arg(1000);

void BM_PhraseMatch(benchmark::State& state) {
  synth::Dataset& ds = BenchDataset();
  const synth::World& world = BenchWorld();
  // Pick a two-word title and match it as a phrase.
  std::vector<text::TermId> ids;
  for (const synth::Concept& cpt : world.concepts) {
    if (cpt.name_terms.size() == 2) {
      ids = {ds.index.LookupTerm(cpt.name_terms[0]),
             ds.index.LookupTerm(cpt.name_terms[1])};
      if (ids[0] != text::kInvalidTermId && ids[1] != text::kInvalidTermId) {
        break;
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::MatchPhrase(ds.index, ids));
  }
}
BENCHMARK(BM_PhraseMatch);

void BM_CombineSqeC(benchmark::State& state) {
  expansion::SqeEngine& engine = BenchEngine();
  const auto& query = BenchDataset().query_set.queries[0];
  auto t = engine.RunSqe(query.text, query.true_entities,
                         expansion::MotifConfig::Triangular(), 1000);
  auto ts = engine.RunSqe(query.text, query.true_entities,
                          expansion::MotifConfig::Both(), 1000);
  auto s = engine.RunSqe(query.text, query.true_entities,
                         expansion::MotifConfig::Square(), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expansion::CombineSqeC(t.results, ts.results, s.results, 1000));
  }
}
BENCHMARK(BM_CombineSqeC);

void BM_KbSnapshotRoundTrip(benchmark::State& state) {
  const kb::KnowledgeBase& kb = BenchWorld().kb;
  for (auto _ : state) {
    std::string image = kb.SerializeToString();
    auto loaded = kb::KnowledgeBase::FromSnapshotString(std::move(image));
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_KbSnapshotRoundTrip);

}  // namespace

BENCHMARK_MAIN();
