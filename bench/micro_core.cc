// Micro-benchmarks (google-benchmark) for the core kernels: motif
// matching, query-graph construction, retrieval, phrase matching, index
// construction and snapshot round-trips. Not a paper table — an ablation
// aid for the design choices DESIGN.md calls out (sorted-CSR membership
// tests, doc-at-a-time scoring, rank-range fusion).
#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "common/cpu_dispatch.h"
#include "index/postings_codec.h"
#include "kb/kb_builder.h"
#include "retrieval/phrase_matcher.h"
#include "retrieval/retriever.h"
#include "retrieval/wand_retriever.h"
#include "sqe/combiner.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"
#include "wide_queries.h"

namespace {

using namespace sqe;

const synth::World& BenchWorld() {
  static const synth::World& world = *new synth::World(
      synth::World::Generate(synth::PaperWorldOptions()));
  return world;
}

synth::Dataset& BenchDataset() {
  static synth::Dataset& ds = *new synth::Dataset(
      synth::BuildDataset(BenchWorld(), synth::ImageClefSpec()));
  return ds;
}

expansion::SqeEngine& BenchEngine() {
  static expansion::SqeEngine& engine = *[] {
    synth::Dataset& ds = BenchDataset();
    expansion::SqeEngineConfig config;
    config.retriever.mu = ds.retrieval_mu;
    return new expansion::SqeEngine(&BenchWorld().kb, &ds.index,
                                    ds.linker.get(), &ds.analyzer(), config);
  }();
  return engine;
}

void BM_TriangularMotif(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    kb::ArticleId q = queries[qi++ % queries.size()].true_entities[0];
    benchmark::DoNotOptimize(finder.FindTriangular(q));
  }
}
BENCHMARK(BM_TriangularMotif);

void BM_SquareMotif(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    kb::ArticleId q = queries[qi++ % queries.size()].true_entities[0];
    benchmark::DoNotOptimize(finder.FindSquare(q));
  }
}
BENCHMARK(BM_SquareMotif);

void BM_BuildQueryGraph(benchmark::State& state) {
  const expansion::MotifFinder& finder = BenchEngine().motif_finder();
  const auto& queries = BenchDataset().query_set.queries;
  const expansion::MotifConfig config = expansion::MotifConfig::Both();
  size_t qi = 0;
  for (auto _ : state) {
    const auto& nodes = queries[qi++ % queries.size()].true_entities;
    benchmark::DoNotOptimize(finder.BuildQueryGraph(nodes, config));
  }
}
BENCHMARK(BM_BuildQueryGraph);

void BM_RetrieveExpanded(benchmark::State& state) {
  expansion::SqeEngine& engine = BenchEngine();
  const auto& queries = BenchDataset().query_set.queries;
  size_t qi = 0;
  for (auto _ : state) {
    const auto& query = queries[qi++ % queries.size()];
    benchmark::DoNotOptimize(
        engine.RunSqe(query.text, query.true_entities,
                      expansion::MotifConfig::Both(),
                      static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_RetrieveExpanded)->Arg(10)->Arg(1000);

void BM_PhraseMatch(benchmark::State& state) {
  synth::Dataset& ds = BenchDataset();
  const synth::World& world = BenchWorld();
  // Pick a two-word title and match it as a phrase.
  std::vector<text::TermId> ids;
  for (const synth::Concept& cpt : world.concepts) {
    if (cpt.name_terms.size() == 2) {
      ids = {ds.index.LookupTerm(cpt.name_terms[0]),
             ds.index.LookupTerm(cpt.name_terms[1])};
      if (ids[0] != text::kInvalidTermId && ids[1] != text::kInvalidTermId) {
        break;
      }
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(retrieval::MatchPhrase(ds.index, ids));
  }
}
BENCHMARK(BM_PhraseMatch);

void BM_CombineSqeC(benchmark::State& state) {
  expansion::SqeEngine& engine = BenchEngine();
  const auto& query = BenchDataset().query_set.queries[0];
  auto t = engine.RunSqe(query.text, query.true_entities,
                         expansion::MotifConfig::Triangular(), 1000);
  auto ts = engine.RunSqe(query.text, query.true_entities,
                          expansion::MotifConfig::Both(), 1000);
  auto s = engine.RunSqe(query.text, query.true_entities,
                         expansion::MotifConfig::Square(), 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        expansion::CombineSqeC(t.results, ts.results, s.results, 1000));
  }
}
BENCHMARK(BM_CombineSqeC);

// ---- scoring kernels: exhaustive vs Block-Max WAND -------------------------
// Wide term-only queries (the shape structural expansion produces; see
// wide_queries.h) at 4/16/48 atoms, top-10 over the long-posting-list
// pruning corpus. The pair BM_ScoreExhaustive/BM_ScoreWand at the same atom
// count is the pruning speedup; BM_ScoreWand also reports the fraction of
// in-range postings the pruned scorer skipped. Both paths are bit-identical
// (gated in tests/wand_test.cc and CI), so this is a pure cost comparison.

const index::InvertedIndex& PruningIndex() {
  static const index::InvertedIndex& idx =
      *new index::InvertedIndex(bench::MakePruningIndex(60000));
  return idx;
}

const retrieval::Retriever& BenchRetriever() {
  static const retrieval::Retriever& r =
      *new retrieval::Retriever(&PruningIndex(), {.mu = 300.0});
  return r;
}

const std::vector<retrieval::Query>& WideQueries(size_t num_atoms) {
  static auto& cache =
      *new std::map<size_t, std::vector<retrieval::Query>>();
  auto it = cache.find(num_atoms);
  if (it == cache.end()) {
    it = cache.emplace(num_atoms, bench::MakeWideTermQueries(
                                      PruningIndex(), num_atoms, 16))
             .first;
  }
  return it->second;
}

void BM_ScoreExhaustive(benchmark::State& state) {
  const retrieval::Retriever& retriever = BenchRetriever();
  const auto& queries = WideQueries(static_cast<size_t>(state.range(0)));
  retrieval::RetrieverScratch scratch;
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        retriever.Retrieve(queries[qi++ % queries.size()], 10, &scratch));
  }
}
BENCHMARK(BM_ScoreExhaustive)->Arg(4)->Arg(16)->Arg(48);

void BM_ScoreWand(benchmark::State& state) {
  static const retrieval::WandRetriever& wand =
      *new retrieval::WandRetriever(&BenchRetriever());
  const auto& queries = WideQueries(static_cast<size_t>(state.range(0)));
  retrieval::RetrieverScratch scratch;
  const retrieval::WandStats before = wand.Stats();
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wand.Retrieve(queries[qi++ % queries.size()], 10, &scratch));
  }
  const retrieval::WandStats after = wand.Stats();
  const uint64_t total = after.postings_total - before.postings_total;
  const uint64_t scored = after.postings_scored - before.postings_scored;
  state.counters["postings_skipped"] = benchmark::Counter(
      total == 0 ? 0.0
                 : 1.0 - static_cast<double>(scored) /
                             static_cast<double>(total));
  const double iters = static_cast<double>(state.iterations());
  state.counters["docs_eval"] = benchmark::Counter(
      static_cast<double>(after.docs_evaluated - before.docs_evaluated) /
      iters);
  state.counters["blk_skips"] = benchmark::Counter(
      static_cast<double>(after.block_skips - before.block_skips) / iters);
  state.counters["post_total"] = benchmark::Counter(
      static_cast<double>(total) / iters);
}
BENCHMARK(BM_ScoreWand)->Arg(4)->Arg(16)->Arg(48);

void BM_KbSnapshotRoundTrip(benchmark::State& state) {
  const kb::KnowledgeBase& kb = BenchWorld().kb;
  for (auto _ : state) {
    std::string image = kb.SerializeToString();
    auto loaded = kb::KnowledgeBase::FromSnapshotString(std::move(image));
    benchmark::DoNotOptimize(loaded);
  }
}
BENCHMARK(BM_KbSnapshotRoundTrip);

// Packed posting-block decode: scalar kernel vs the runtime-dispatched one
// (SSE2/AVX2 on x86). The block is built so every doc gap needs exactly
// `doc_bits` bits — the per-width cost is what the WAND cursor pays when it
// crosses a block boundary.
std::string PackedBlockAtWidth(uint32_t doc_bits) {
  uint32_t docs[index::codec::kBlockLen];
  uint32_t freqs[index::codec::kBlockLen];
  const uint32_t widest = doc_bits == 1 ? 1u : 1u << (doc_bits - 1);
  uint32_t next = 0;
  for (size_t i = 0; i < index::codec::kBlockLen; ++i) {
    docs[i] = next + (i == 0 ? widest : (i * 37) % widest);
    next = docs[i] + 1;
    freqs[i] = 1 + i % 3;
  }
  std::string enc;
  index::codec::EncodeBlock(docs, freqs, index::codec::kBlockLen,
                            /*prev_plus1=*/0, &enc);
  SQE_CHECK(static_cast<uint32_t>(enc[0]) == doc_bits);
  return enc;
}

void BM_UnpackBlockScalar(benchmark::State& state) {
  const std::string enc = PackedBlockAtWidth(
      static_cast<uint32_t>(state.range(0)));
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(enc.data());
  uint32_t out[index::codec::kBlockLen];
  for (auto _ : state) {
    index::codec::internal::UnpackVerticalScalar(
        payload + index::codec::kBlockHeaderBytes,
        static_cast<uint32_t>(payload[0]), out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_UnpackBlockScalar)->Arg(4)->Arg(8)->Arg(13)->Arg(20);

void BM_UnpackBlockSimd(benchmark::State& state) {
  const std::string enc = PackedBlockAtWidth(
      static_cast<uint32_t>(state.range(0)));
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(enc.data());
  const index::codec::internal::UnpackFn unpack =
      index::codec::internal::ActiveUnpackFn();
  uint32_t out[index::codec::kBlockLen];
  for (auto _ : state) {
    unpack(payload + index::codec::kBlockHeaderBytes,
           static_cast<uint32_t>(payload[0]), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel(SimdLevelName(DetectSimdLevel()));
}
BENCHMARK(BM_UnpackBlockSimd)->Arg(4)->Arg(8)->Arg(13)->Arg(20);

// Full block decode (header parse + doc unpack + prefix-sum + freq unpack)
// — the unit of work a cursor does on each block crossing.
void BM_DecodeBlock(benchmark::State& state) {
  const std::string enc = PackedBlockAtWidth(
      static_cast<uint32_t>(state.range(0)));
  const uint8_t* payload = reinterpret_cast<const uint8_t*>(enc.data());
  uint32_t docs[index::codec::kBlockLen];
  uint32_t freqs[index::codec::kBlockLen];
  for (auto _ : state) {
    index::codec::DecodeBlock(payload, index::codec::kBlockLen,
                              /*prev_plus1=*/0, docs, freqs);
    benchmark::DoNotOptimize(docs);
    benchmark::DoNotOptimize(freqs);
  }
}
BENCHMARK(BM_DecodeBlock)->Arg(4)->Arg(8)->Arg(13)->Arg(20);

}  // namespace

BENCHMARK_MAIN();
