// Reproduces Table 1: precision of the QL baselines, the three SQE motif
// configurations and the ground-truth upper bound on the ImageCLEF-like
// dataset, with paired-t-test significance daggers (rendered as '+').
//
// Paper shapes this harness should reproduce:
//   * SQE_T / SQE_T&S / SQE_S significantly beat QL_Q, QL_E, QL_Q&E
//     at every cutoff.
//   * SQE_T leads at P@5; SQE_T&S leads the mid-range; SQE_S leads the
//     large tops.
//   * SQE^UB dominates everything (it uses the ground-truth graphs).
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/report.h"

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  bench::DatasetRuns runs =
      bench::ComputeAllRuns(world, synth::ImageClefSpec());

  std::vector<eval::NamedRun> systems;
  systems.push_back({"QL_Q", runs.ql_q, /*is_baseline=*/true, false});
  systems.push_back({"QL_E", runs.ql_e_m, /*is_baseline=*/true, false});
  systems.push_back({"QL_Q&E", runs.ql_qe_m, /*is_baseline=*/true, false});
  systems.push_back({"SQE_T", runs.sqe_t, false, false});
  systems.push_back({"SQE_T&S", runs.sqe_ts, false, false});
  systems.push_back({"SQE_S", runs.sqe_s, false, false});
  systems.push_back({"SQE_UB", runs.sqe_ub, false, /*skip_significance=*/true});

  eval::PrecisionTable table =
      eval::EvaluateTable(systems, runs.dataset.query_set.qrels);
  std::printf("%s\n", table.ToString(
                          "Table 1 — ImageCLEF-like precision "
                          "(+ marks p<0.05 vs all QL baselines)")
                          .c_str());

  // The paper's headline ratios: SQE vs upper bound.
  double ratio_sum = 0.0;
  size_t ratio_count = 0;
  double worst_ratio = 1.0;
  for (size_t row = 3; row <= 5; ++row) {  // the three SQE rows
    for (size_t t = 0; t < eval::kDefaultTops.size(); ++t) {
      double ub = table.means[6][t];
      if (ub > 0.0) {
        double ratio = table.means[row][t] / ub;
        ratio_sum += ratio;
        ++ratio_count;
        worst_ratio = std::min(worst_ratio, ratio);
      }
    }
  }
  std::printf("SQE vs upper bound: average %.1f%% of SQE^UB "
              "(worst case %.1f%%; paper: 85.9%% / 71.4%%)\n",
              100.0 * ratio_sum / static_cast<double>(ratio_count),
              100.0 * worst_ratio);
  std::printf("avg expansion features/query: T=%.2f T&S=%.2f S=%.2f "
              "(paper: 0.76 / 20.96 / 20.48)\n",
              runs.avg_features_t, runs.avg_features_ts, runs.avg_features_s);
  return 0;
}
