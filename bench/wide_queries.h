// Wide term-only query workload for the dynamic-pruning benchmarks.
//
// The SQE batch queries all contain multi-word title phrases, and phrase
// atoms (whose postings are assembled per query, without block-max tables)
// route the whole query to the exhaustive scorer by design. To exercise the
// WAND path itself the pruning benchmarks therefore build synthetic *term*
// queries with the shape of an expanded query: a few dominant atoms plus a
// long tail of low-weight expansion atoms (weights 1/(1+i)), over terms
// spanning the document-frequency range. Deterministic — no RNG — so every
// run and every binary sees the same workload.
#ifndef SQE_BENCH_WIDE_QUERIES_H_
#define SQE_BENCH_WIDE_QUERIES_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/inverted_index.h"
#include "retrieval/query.h"

namespace sqe::bench {

/// Dedicated corpus for the pruning benchmarks: `num_docs` documents of
/// 12–35 tokens drawn Zipf(0.9) from a 1200-term vocabulary. The paper's
/// synthetic collections model short diverse captions, which keeps even the
/// most frequent terms' posting lists a few hundred entries long — too
/// short for any skip machinery to amortize, and not the regime the pruned
/// scorer exists for. This corpus gives the frequent terms stopword-like
/// multi-thousand-entry lists (many 128-posting blocks each), i.e. the
/// long-list regime wide expanded queries actually hit on real indexes.
/// Deterministic: fixed seed, no time or global state.
inline index::InvertedIndex MakePruningIndex(size_t num_docs) {
  Rng rng(0x57414E44);  // "WAND"
  const size_t kVocab = 1200;
  ZipfSampler zipf(kVocab, 0.9);
  index::IndexBuilder builder;
  std::vector<std::string> terms;
  for (size_t d = 0; d < num_docs; ++d) {
    const size_t len = 12 + rng.NextBounded(24);
    terms.clear();
    terms.reserve(len + 1);
    for (size_t i = 0; i < len; ++i) {
      // Caption-like term usage: a document repeats a word at most twice.
      // Unchecked Zipf draws give the head terms outlier within-doc
      // frequencies (max tf ~20), which hands every tail atom an
      // anchor-sized term bound and buries the signal the pruned scorer
      // exploits; real short captions don't do that.
      std::string t = "pt" + std::to_string(zipf.Sample(rng));
      if (std::count(terms.begin(), terms.end(), t) >= 2) {
        t = "pt" + std::to_string(zipf.Sample(rng));
        if (std::count(terms.begin(), terms.end(), t) >= 2) continue;
      }
      terms.push_back(std::move(t));
    }
    // A sparse layer of specific "entity" terms on top of the Zipf body:
    // every fifth document carries one of 32 anchor terms (df a few
    // hundred each), and a third of those also carry the NEXT anchor —
    // correlated pairs, the way entity mentions co-occur. These play the
    // user/title terms of an SQE query — the rare, high-weight atoms
    // whose hits decide the top-k, which a Zipf body alone cannot
    // produce. The pair correlation is what gives the workload the
    // classic WAND profile: the top-k is dominated by documents matching
    // TWO specific terms, so θ settles far above any single term's
    // bound and the pivot walks cursor alignments instead of stopping
    // at every posting.
    if (rng.NextBounded(5) == 0) {
      const uint64_t a = rng.NextBounded(32);
      terms.push_back("anchor" + std::to_string(a));
      if (rng.NextBounded(3) == 0) {
        terms.push_back("anchor" + std::to_string((a + 1) % 32));
      }
    }
    builder.AddDocument("prune-" + std::to_string(d), terms);
  }
  return std::move(builder).Build();
}

/// `num_queries` single-clause queries of `num_atoms` term atoms each with
/// the weight/frequency profile of an expanded SQE query:
///
///  - up to four ANCHOR atoms (the user/title terms, clause 1): specific
///    terms with short posting lists, carrying the dominant weight 2.0.
///    Queries take CONSECUTIVE anchor ids so the corpus's correlated
///    anchor pairs fall inside one query: the top-k is then dominated by
///    two-anchor documents, θ settles above any single anchor's bound,
///    and single-anchor documents are pruned without touching the tail.
///  - the rest from the index's mid-frequency band — terms ranked
///    24..24+12·A by document frequency (ties by TermId). That band is
///    what expansion actually piles onto a query: title terms of related
///    entities are content words with lists thousands of entries long,
///    not stopwords. (The very top ranks are excluded deliberately:
///    near-stopword atoms put every document in the candidate union,
///    which collapses WAND's skip targets to the next union document and
///    measures nothing but machinery overhead.) Atom i gets the expansion
///    clause weight 0.5/(1+i), the skew that makes upper-bound pruning
///    bite.
///
/// Query q takes terms at pool positions (q*17 + i*stride) mod pool so the
/// configs overlap but are not identical.
inline std::vector<retrieval::Query> MakeWideTermQueries(
    const index::InvertedIndex& index, size_t num_atoms, size_t num_queries) {
  // Anchor terms by their numeric suffix (consecutive ids are the
  // corpus's correlated pairs); expansion pool by descending df.
  std::vector<std::string> anchors;
  for (size_t a = 0; a < 32; ++a) {
    const std::string name = "anchor" + std::to_string(a);
    const text::TermId t = index.LookupTerm(name);
    if (t != text::kInvalidTermId && index.DocumentFrequency(t) >= 8) {
      anchors.push_back(name);
    }
  }
  std::vector<text::TermId> pool;
  for (text::TermId t = 0; t < index.vocabulary().size(); ++t) {
    if (index.vocabulary().TermOf(t).rfind("anchor", 0) == 0) continue;
    // Long lists only: a rare term's per-occurrence contribution rivals an
    // anchor's (log(f/μp) grows as p shrinks), which would hand the tail
    // anchor-sized bounds and defeat the point of a low-weight expansion
    // tail. Real expansion terms are entity title words — content words
    // with lists thousands of entries long.
    if (index.DocumentFrequency(t) >= 256) pool.push_back(t);
  }
  std::sort(pool.begin(), pool.end(), [&](text::TermId a, text::TermId b) {
    const uint64_t da = index.DocumentFrequency(a);
    const uint64_t db = index.DocumentFrequency(b);
    return da != db ? da > db : a < b;
  });
  const size_t skip_top = std::min<size_t>(24, pool.size() / 8);
  pool.erase(pool.begin(), pool.begin() + skip_top);
  pool.resize(std::min(pool.size(), num_atoms * 12));
  const size_t num_anchors =
      anchors.empty() ? 0 : std::min<size_t>(4, num_atoms / 2);

  std::vector<retrieval::Query> queries;
  queries.reserve(num_queries);
  const size_t stride = std::max<size_t>(1, pool.size() / (num_atoms + 1));
  for (size_t q = 0; q < num_queries; ++q) {
    retrieval::Query query;
    query.clauses.emplace_back();
    retrieval::Clause& clause = query.clauses.back();
    for (size_t j = 0; j < num_anchors; ++j) {
      clause.atoms.push_back(retrieval::Atom::Term(
          anchors[(q * 3 + j) % anchors.size()], 2.5));
    }
    for (size_t i = 0; i + num_anchors < num_atoms; ++i) {
      const text::TermId t = pool[(q * 17 + i * stride) % pool.size()];
      clause.atoms.push_back(retrieval::Atom::Term(
          std::string(index.vocabulary().TermOf(t)),
          0.25 / (1.0 + static_cast<double>(i))));
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace sqe::bench

#endif  // SQE_BENCH_WIDE_QUERIES_H_
