#include "bench/bench_util.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sqe::bench {

const synth::World& PaperWorld() {
  static const synth::World& world =
      *new synth::World(synth::World::Generate(synth::PaperWorldOptions()));
  return world;
}

DatasetRuns ComputeAllRuns(const synth::World& world,
                           const synth::DatasetSpec& spec) {
  DatasetRuns out;
  out.dataset = synth::BuildDataset(world, spec);
  synth::Dataset& ds = out.dataset;

  expansion::SqeEngineConfig config;
  config.retriever.mu = ds.retrieval_mu;
  out.engine = std::make_unique<expansion::SqeEngine>(
      &world.kb, &ds.index, ds.linker.get(), &ds.analyzer(), config);
  expansion::SqeEngine& engine = *out.engine;

  const size_t n = ds.NumQueries();
  auto reserve_all = [&](auto&... lists) { (lists.reserve(n), ...); };
  reserve_all(out.ql_q, out.ql_e_m, out.ql_e_a, out.ql_qe_m, out.ql_qe_a,
              out.ql_x, out.sqe_t, out.sqe_ts, out.sqe_s, out.sqe_ub,
              out.sqe_c_m, out.sqe_c_a, out.auto_nodes);

  Timer pipeline_timer;
  uint64_t features_t = 0, features_ts = 0, features_s = 0;

  for (size_t qi = 0; qi < n; ++qi) {
    const synth::GeneratedQuery& query = ds.query_set.queries[qi];
    const std::vector<kb::ArticleId>& manual = query.true_entities;
    std::vector<kb::ArticleId> automatic = engine.LinkQueryNodes(query.text);
    out.auto_nodes.push_back(automatic);

    using expansion::QueryParts;
    out.ql_q.push_back(engine.RunBaseline(query.text, manual,
                                          QueryParts::QOnly(),
                                          kRetrievalDepth));
    out.ql_e_m.push_back(engine.RunBaseline(query.text, manual,
                                            QueryParts::EOnly(),
                                            kRetrievalDepth));
    out.ql_e_a.push_back(engine.RunBaseline(query.text, automatic,
                                            QueryParts::EOnly(),
                                            kRetrievalDepth));
    out.ql_qe_m.push_back(engine.RunBaseline(query.text, manual,
                                             QueryParts::QAndE(),
                                             kRetrievalDepth));
    out.ql_qe_a.push_back(engine.RunBaseline(query.text, automatic,
                                             QueryParts::QAndE(),
                                             kRetrievalDepth));

    // QL_X: expansion features alone, from the T&S graph (manual nodes).
    expansion::SqeRunResult ts = engine.RunSqe(
        query.text, manual, expansion::MotifConfig::Both(), kRetrievalDepth);
    {
      retrieval::Query only_x =
          expansion::ExpandedQueryBuilder(&world.kb, &ds.analyzer(),
                                          config.query_builder)
              .Build(query.text, ts.graph, QueryParts::XOnly());
      out.ql_x.push_back(
          engine.retriever().Retrieve(only_x, kRetrievalDepth));
    }

    expansion::SqeRunResult t =
        engine.RunSqe(query.text, manual, expansion::MotifConfig::Triangular(),
                      kRetrievalDepth);
    expansion::SqeRunResult s = engine.RunSqe(
        query.text, manual, expansion::MotifConfig::Square(), kRetrievalDepth);

    out.motif_ms_t += t.graph_build_ms;
    out.motif_ms_ts += ts.graph_build_ms;
    out.motif_ms_s += s.graph_build_ms;
    features_t += t.graph.expansion_nodes.size();
    features_ts += ts.graph.expansion_nodes.size();
    features_s += s.graph.expansion_nodes.size();

    out.sqe_c_m.push_back(expansion::CombineSqeC(t.results, ts.results,
                                                 s.results, kRetrievalDepth));
    out.sqe_t.push_back(std::move(t.results));
    out.sqe_ts.push_back(std::move(ts.results));
    out.sqe_s.push_back(std::move(s.results));

    // Upper bound: ground-truth optimal query graph.
    out.sqe_ub.push_back(
        engine.RunWithGraph(query.text, query.ground_truth_graph,
                            kRetrievalDepth)
            .results);

    // Automatic SQE_C.
    expansion::SqeCRunResult c_a =
        engine.RunSqeC(query.text, automatic, kRetrievalDepth);
    out.sqe_c_a.push_back(std::move(c_a.results));
  }

  out.total_pipeline_ms = pipeline_timer.ElapsedMillis();
  if (n > 0) {
    out.avg_features_t = static_cast<double>(features_t) / n;
    out.avg_features_ts = static_cast<double>(features_ts) / n;
    out.avg_features_s = static_cast<double>(features_s) / n;
  }
  LogInfo(StrFormat("%s: all systems run in %.1fs (avg features T=%.2f "
                    "T&S=%.2f S=%.2f)",
                    ds.name.c_str(), out.total_pipeline_ms / 1e3,
                    out.avg_features_t, out.avg_features_ts,
                    out.avg_features_s));
  return out;
}

double AutoLinkingPrecision(const DatasetRuns& runs) {
  size_t linked = 0, correct = 0;
  for (size_t qi = 0; qi < runs.auto_nodes.size(); ++qi) {
    const auto& nodes = runs.auto_nodes[qi];
    if (nodes.empty()) continue;
    ++linked;
    kb::ArticleId truth =
        runs.dataset.query_set.queries[qi].true_entities.front();
    if (std::find(nodes.begin(), nodes.end(), truth) != nodes.end()) {
      ++correct;
    }
  }
  return linked == 0 ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(linked);
}

}  // namespace sqe::bench
