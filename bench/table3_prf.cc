// Reproduces Table 3 (a, b, c): pseudo-relevance feedback (Lavrenko's
// relevance model) applied to the user's query, the query entities, both,
// and composed with SQE (SQE_C/PRF), on all three datasets, with the
// percentage gain relative to the corresponding Table 2 rows.
//
// Paper shapes: PRF alone collapses to near zero at every top (its
// feedback documents are bad, so the reformulated query drifts off-topic);
// SQE_C/PRF recovers to roughly SQE_C level with small gains at most tops —
// the orthogonality claim.
#include <cstdio>

#include "bench/bench_util.h"
#include "eval/report.h"
#include "prf/relevance_model.h"

namespace {

using sqe::retrieval::ResultList;

constexpr std::array<size_t, 5> kPrfTops = {5, 10, 15, 20, 30};

double MeanPrecisionAt(const std::vector<ResultList>& runs,
                       const sqe::eval::Qrels& qrels, size_t k) {
  return sqe::eval::Mean(sqe::eval::PerQueryPrecision(runs, qrels, k));
}

void PrintRow(const char* name, const std::vector<ResultList>& runs,
              const std::vector<ResultList>& reference,
              const sqe::eval::Qrels& qrels) {
  std::printf("%-12s", name);
  for (size_t k : kPrfTops) {
    double p = MeanPrecisionAt(runs, qrels, k);
    double ref = MeanPrecisionAt(reference, qrels, k);
    double gain = ref > 0.0 ? 100.0 * (p - ref) / ref : 0.0;
    std::printf("  %.3f (%+7.2f%%)", p, gain);
  }
  std::printf("\n");
}

void RunDataset(const sqe::synth::World& world,
                const sqe::synth::DatasetSpec& spec, char label) {
  using namespace sqe;
  bench::DatasetRuns runs = bench::ComputeAllRuns(world, spec);
  synth::Dataset& ds = runs.dataset;
  expansion::SqeEngine& engine = *runs.engine;

  prf::PrfExpander prf(&engine.retriever());

  std::vector<ResultList> prf_q, prf_e, prf_qe, sqe_c_prf;
  for (size_t qi = 0; qi < ds.NumQueries(); ++qi) {
    const synth::GeneratedQuery& query = ds.query_set.queries[qi];
    const auto& manual = query.true_entities;
    using expansion::QueryParts;

    // PRF over each baseline query form.
    auto baseline_query = [&](const QueryParts& parts) {
      expansion::QueryGraph graph;
      graph.query_nodes.assign(manual.begin(), manual.end());
      return expansion::ExpandedQueryBuilder(&world.kb, &ds.analyzer())
          .Build(query.text, graph, parts);
    };
    prf_q.push_back(prf.ExpandAndRetrieve(baseline_query(QueryParts::QOnly()),
                                          bench::kRetrievalDepth));
    prf_e.push_back(prf.ExpandAndRetrieve(baseline_query(QueryParts::EOnly()),
                                          bench::kRetrievalDepth));
    prf_qe.push_back(prf.ExpandAndRetrieve(
        baseline_query(QueryParts::QAndE()), bench::kRetrievalDepth));

    // SQE_C/PRF: SQE generates the expanded query, PRF reformulates it.
    // PRF's feedback documents now come from a good ranking, so the
    // relevance model stays on topic (the orthogonality the paper shows).
    expansion::QueryGraph ts_graph =
        engine.motif_finder().BuildQueryGraph(manual,
                                              expansion::MotifConfig::Both());
    retrieval::Query expanded =
        engine.BuildExpandedQuery(query.text, ts_graph);
    prf::PrfOptions compose_options;
    compose_options.original_weight = 0.6;  // keep the SQE query as anchor
    prf::PrfExpander composing(&engine.retriever(), compose_options);
    sqe_c_prf.push_back(
        composing.ExpandAndRetrieve(expanded, bench::kRetrievalDepth));
  }

  const eval::Qrels& qrels = ds.query_set.qrels;
  std::printf("Table 3%c — %s: PRF precision (%%G vs the matching "
              "Table 2 row)\n%-12s", label, ds.name.c_str(), "");
  for (size_t k : kPrfTops) std::printf("  P@%-2zu    %%G      ", k);
  std::printf("\n");
  PrintRow("PRF_Q", prf_q, runs.ql_q, qrels);
  PrintRow("PRF_E", prf_e, runs.ql_e_m, qrels);
  PrintRow("PRF_Q&E", prf_qe, runs.ql_qe_m, qrels);
  PrintRow("SQE_C/PRF", sqe_c_prf, runs.sqe_c_m, qrels);
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  RunDataset(world, synth::ImageClefSpec(), 'a');
  RunDataset(world, synth::Chic2012Spec(), 'b');
  RunDataset(world, synth::Chic2013Spec(), 'c');
  return 0;
}
