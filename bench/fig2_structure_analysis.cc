// Reproduces Figure 2 (a, b, c): structural analysis of the ground-truth
// optimal query graphs — per cycle length (3, 4, 5):
//   (a) contribution: precision obtained using only the expansion nodes
//       that lie on cycles of that length, relative to the whole graph;
//   (b) ratio of category nodes per cycle;
//   (c) density of extra edges (parallel edges beyond the cycle minimum).
//
// Paper shapes: contributions comparable across lengths (larger slightly
// ahead), roughly a third of cycle nodes are categories, extra-edge
// density correlates with contribution.
#include <cstdio>
#include <unordered_set>

#include "analysis/structure_analyzer.h"
#include "bench/bench_util.h"
#include "eval/metrics.h"

int main() {
  using namespace sqe;
  const synth::World& world = bench::PaperWorld();
  bench::DatasetRuns runs =
      bench::ComputeAllRuns(world, synth::ImageClefSpec());
  synth::Dataset& ds = runs.dataset;
  expansion::SqeEngine& engine = *runs.engine;

  // Per cycle length: precision using only that length's expansion nodes.
  std::array<std::vector<retrieval::ResultList>, 3> by_length_runs;
  std::vector<retrieval::ResultList> full_runs;
  std::vector<analysis::StructureReport> reports;

  for (size_t qi = 0; qi < ds.NumQueries(); ++qi) {
    const synth::GeneratedQuery& query = ds.query_set.queries[qi];
    const expansion::QueryGraph& graph = query.ground_truth_graph;
    analysis::StructureReport report =
        analysis::AnalyzeQueryGraph(world.kb, graph);

    full_runs.push_back(
        engine.RunWithGraph(query.text, graph, bench::kRetrievalDepth)
            .results);

    for (size_t li = 0; li < analysis::kCycleLengths.size(); ++li) {
      // Reduce the graph to expansion nodes on >=1 cycle of this length.
      std::unordered_set<kb::ArticleId> keep(
          report.per_length[li].articles_on_cycles.begin(),
          report.per_length[li].articles_on_cycles.end());
      expansion::QueryGraph reduced;
      reduced.query_nodes = graph.query_nodes;
      for (const expansion::ExpansionNode& node : graph.expansion_nodes) {
        if (keep.contains(node.article)) {
          reduced.expansion_nodes.push_back(node);
        }
      }
      by_length_runs[li].push_back(
          engine.RunWithGraph(query.text, reduced, bench::kRetrievalDepth)
              .results);
    }
    reports.push_back(std::move(report));
  }

  analysis::StructureReport aggregate = analysis::AggregateReports(reports);
  const eval::Qrels& qrels = ds.query_set.qrels;

  // Contribution at P@10 (a representative top; the paper aggregates).
  double full_p10 = eval::Mean(eval::PerQueryPrecision(full_runs, qrels, 10));

  std::printf("Figure 2 — ground-truth query-graph structure "
              "(ImageCLEF-like, %zu graphs)\n\n", reports.size());
  std::printf("%-8s %10s %15s %12s %12s\n", "length", "cycles",
              "contribution", "cat-ratio", "extra-edges");
  for (size_t li = 0; li < analysis::kCycleLengths.size(); ++li) {
    const analysis::PerLengthStats& s = aggregate.per_length[li];
    double p10 =
        eval::Mean(eval::PerQueryPrecision(by_length_runs[li], qrels, 10));
    double contribution = full_p10 > 0.0 ? p10 / full_p10 : 0.0;
    std::printf("%-8zu %10llu %15.3f %12.3f %12.3f\n", s.cycle_length,
                static_cast<unsigned long long>(s.num_cycles), contribution,
                s.avg_category_ratio, s.avg_extra_edge_density);
  }
  std::printf("\n(paper: contributions ~0.5-0.7 and comparable across "
              "lengths; ~1/3 of cycle nodes are categories; denser cycles "
              "contribute more)\n");

  // Headline from Section 2.1: precision achievable from cycle nodes.
  std::printf("\nground-truth graphs, whole-graph precision: P@1=%.3f "
              "P@5=%.3f P@10=%.3f P@15=%.3f "
              "(paper ground truth: 0.833 / 0.624 / 0.588 / 0.547)\n",
              eval::Mean(eval::PerQueryPrecision(full_runs, qrels, 1)),
              eval::Mean(eval::PerQueryPrecision(full_runs, qrels, 5)),
              full_p10,
              eval::Mean(eval::PerQueryPrecision(full_runs, qrels, 15)));
  return 0;
}
