#include <chrono>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/hash.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sqe {
namespace {

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 12; ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, PredicateCoverage) {
  EXPECT_TRUE(Status::Corruption("c").IsCorruption());
  EXPECT_TRUE(Status::IOError("i").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("a").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("q").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("d").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_FALSE(Status::DeadlineExceeded("d").IsResourceExhausted());
  EXPECT_FALSE(Status::Cancelled("x").IsDeadlineExceeded());
}

// ---- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto pieces = SplitWhitespace("  alpha \t beta\ngamma  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "alpha");
  EXPECT_EQ(pieces[2], "gamma");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ", "), "x, y, z");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  core \t"), "core");
  EXPECT_EQ(StripWhitespace("\n\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, ToLowerAsciiLeavesNonAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD123"), "mixed123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("snapshot.bin", "snap"));
  EXPECT_FALSE(StartsWith("s", "snap"));
  EXPECT_TRUE(EndsWith("snapshot.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", "snapshot.bin"));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---- hashing ---------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(HashTest, Crc32KnownValue) {
  // Standard CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(HashTest, Crc32Streaming) {
  uint32_t whole = Crc32("hello world");
  // Streaming via the crc parameter is not simple concatenation for CRC32
  // (our API restarts each call); verify determinism instead.
  EXPECT_EQ(Crc32("hello world"), whole);
  EXPECT_NE(Crc32("hello worle"), whole);
}

TEST(HashTest, HashCombineChangesWithBothInputs) {
  uint64_t a = Fnv1a64("a"), b = Fnv1a64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
  EXPECT_NE(HashCombine(a, b), a);
}

// ---- random ----------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RandomTest, WeightedRespectsZeroAndSkew) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.NextWeighted(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (size_t n : {size_t{5}, size_t{50}, size_t{500}}) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{3}, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, SkewOrdersFrequencies) {
  const double s = GetParam();
  Rng rng(29);
  ZipfSampler sampler(20, s);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 40000; ++i) counts[sampler.Sample(rng)]++;
  // Rank 0 must be sampled at least as often as rank 19 (strictly more for
  // positive skew).
  if (s > 0.0) {
    EXPECT_GT(counts[0], counts[19]);
  }
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 40000);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSamplerTest,
                         ::testing::Values(0.0, 0.35, 1.0, 2.0));

// ---- timer -----------------------------------------------------------------

TEST(TimerTest, MonotonicNonNegative) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  double first = t.ElapsedSeconds();
  EXPECT_GE(t.ElapsedSeconds(), first);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, AccumulatingTimerSumsScopes) {
  AccumulatingTimer acc;
  {
    auto scope = acc.Measure();
  }
  {
    auto scope = acc.Measure();
  }
  EXPECT_GE(acc.TotalSeconds(), 0.0);
  acc.Add(1.5);
  EXPECT_GE(acc.TotalSeconds(), 1.5);
  acc.Reset();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

// ---- Clock -----------------------------------------------------------------

TEST(ClockTest, SystemClockAdvances) {
  const Clock* clock = Clock::System();
  Clock::TimePoint a = clock->Now();
  Clock::TimePoint b = clock->Now();
  EXPECT_GE(b, a);  // steady_clock is monotone
}

TEST(ClockTest, FakeClockOnlyMovesWhenAdvanced) {
  FakeClock clock;
  const Clock::TimePoint start = clock.Now();
  EXPECT_EQ(clock.Now(), start);  // no real time leaks in
  clock.Advance(std::chrono::milliseconds(250));
  EXPECT_EQ(clock.Now() - start, std::chrono::milliseconds(250));
  clock.AdvanceTo(start + std::chrono::seconds(2));
  EXPECT_EQ(clock.Now() - start, std::chrono::seconds(2));
}

TEST(ClockTest, FakeClockIsThreadSafe) {
  FakeClock clock;
  const Clock::TimePoint start = clock.Now();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 1000; ++i) {
        clock.Advance(std::chrono::nanoseconds(1));
        (void)clock.Now();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(clock.Now() - start, std::chrono::nanoseconds(4000));
}

// ---- BoundedLaneQueue ------------------------------------------------------

TEST(BoundedLaneQueueTest, PopOrderIsLaneThenFifo) {
  BoundedLaneQueue<int> queue(/*capacity=*/8, /*num_lanes=*/2);
  queue.TryPush(1, 100);
  queue.TryPush(0, 1);
  queue.TryPush(1, 101);
  queue.TryPush(0, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    std::optional<int> item = queue.PopBlocking();
    ASSERT_TRUE(item.has_value());
    order.push_back(*item);
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 100, 101}));
}

TEST(BoundedLaneQueueTest, CapacityIsSharedAcrossLanes) {
  BoundedLaneQueue<int> queue(2, 2);
  EXPECT_EQ(queue.TryPush(0, 1), QueuePushOutcome::kOk);
  EXPECT_EQ(queue.TryPush(1, 2), QueuePushOutcome::kOk);
  EXPECT_EQ(queue.TryPush(0, 3), QueuePushOutcome::kFull);
  EXPECT_EQ(queue.TryPush(1, 4), QueuePushOutcome::kFull);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.peak_size(), 2u);
}

TEST(BoundedLaneQueueTest, PushIfSeesDepthAndCanDecline) {
  BoundedLaneQueue<int> queue(8, 1);
  size_t depth_seen = 99;
  EXPECT_EQ(queue.PushIf(0, 1,
                         [&](size_t depth) {
                           depth_seen = depth;
                           return true;
                         }),
            QueuePushOutcome::kOk);
  EXPECT_EQ(depth_seen, 0u);
  EXPECT_EQ(queue.PushIf(0, 2,
                         [&](size_t depth) {
                           depth_seen = depth;
                           return false;
                         }),
            QueuePushOutcome::kDeclined);
  EXPECT_EQ(depth_seen, 1u);
  EXPECT_EQ(queue.size(), 1u);  // declined item never entered
}

TEST(BoundedLaneQueueTest, CloseAndDrainReturnsQueuedInPopOrder) {
  BoundedLaneQueue<int> queue(8, 2);
  queue.TryPush(1, 100);
  queue.TryPush(0, 1);
  queue.TryPush(0, 2);
  std::vector<int> drained = queue.CloseAndDrain();
  EXPECT_EQ(drained, (std::vector<int>{1, 2, 100}));
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(0, 3), QueuePushOutcome::kClosed);
  EXPECT_FALSE(queue.PopBlocking().has_value());
  // Idempotent: a second drain finds nothing.
  EXPECT_TRUE(queue.CloseAndDrain().empty());
}

TEST(BoundedLaneQueueTest, PopBlockingWakesOnCloseAcrossThreads) {
  BoundedLaneQueue<int> queue(4, 1);
  std::vector<int> popped;
  std::thread consumer([&] {
    while (std::optional<int> item = queue.PopBlocking()) {
      popped.push_back(*item);
    }
  });
  EXPECT_EQ(queue.TryPush(0, 7), QueuePushOutcome::kOk);
  queue.CloseAndDrain();  // consumer may or may not have popped 7 first
  consumer.join();
  EXPECT_LE(popped.size(), 1u);
}

}  // namespace
}  // namespace sqe
