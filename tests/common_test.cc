#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace sqe {
namespace {

// ---- Status ----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
  EXPECT_FALSE(Status::IOError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 9; ++code) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

TEST(StatusTest, PredicateCoverage) {
  EXPECT_TRUE(Status::Corruption("c").IsCorruption());
  EXPECT_TRUE(Status::IOError("i").IsIOError());
  EXPECT_TRUE(Status::InvalidArgument("a").IsInvalidArgument());
  EXPECT_FALSE(Status::OK().IsCorruption());
}

// ---- Result ----------------------------------------------------------------

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

// ---- string_util -----------------------------------------------------------

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  auto pieces = Split("a,,b,", ',');
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "");
  EXPECT_EQ(pieces[2], "b");
  EXPECT_EQ(pieces[3], "");
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  auto pieces = SplitWhitespace("  alpha \t beta\ngamma  ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "alpha");
  EXPECT_EQ(pieces[2], "gamma");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(Join(pieces, ", "), "x, y, z");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  core \t"), "core");
  EXPECT_EQ(StripWhitespace("\n\n"), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtilTest, ToLowerAsciiLeavesNonAscii) {
  EXPECT_EQ(ToLowerAscii("MiXeD123"), "mixed123");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("snapshot.bin", "snap"));
  EXPECT_FALSE(StartsWith("s", "snap"));
  EXPECT_TRUE(EndsWith("snapshot.bin", ".bin"));
  EXPECT_FALSE(EndsWith("bin", "snapshot.bin"));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "ok"), "7-ok");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---- hashing ---------------------------------------------------------------

TEST(HashTest, Fnv1aKnownValues) {
  // FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(HashTest, Crc32KnownValue) {
  // Standard CRC-32 check value for "123456789".
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(HashTest, Crc32Streaming) {
  uint32_t whole = Crc32("hello world");
  // Streaming via the crc parameter is not simple concatenation for CRC32
  // (our API restarts each call); verify determinism instead.
  EXPECT_EQ(Crc32("hello world"), whole);
  EXPECT_NE(Crc32("hello worle"), whole);
}

TEST(HashTest, HashCombineChangesWithBothInputs) {
  uint64_t a = Fnv1a64("a"), b = Fnv1a64("b");
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
  EXPECT_NE(HashCombine(a, b), a);
}

// ---- random ----------------------------------------------------------------

TEST(RandomTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RandomTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian(5.0, 2.0);
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RandomTest, WeightedRespectsZeroAndSkew) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.NextWeighted(weights)]++;
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[2], counts[1] * 5);
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (size_t n : {size_t{5}, size_t{50}, size_t{500}}) {
    for (size_t k : {size_t{0}, size_t{1}, size_t{3}, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<size_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (size_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RandomTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

class ZipfSamplerTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSamplerTest, SkewOrdersFrequencies) {
  const double s = GetParam();
  Rng rng(29);
  ZipfSampler sampler(20, s);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 40000; ++i) counts[sampler.Sample(rng)]++;
  // Rank 0 must be sampled at least as often as rank 19 (strictly more for
  // positive skew).
  if (s > 0.0) {
    EXPECT_GT(counts[0], counts[19]);
  }
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 40000);
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSamplerTest,
                         ::testing::Values(0.0, 0.35, 1.0, 2.0));

// ---- timer -----------------------------------------------------------------

TEST(TimerTest, MonotonicNonNegative) {
  Timer t;
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
  double first = t.ElapsedSeconds();
  EXPECT_GE(t.ElapsedSeconds(), first);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, AccumulatingTimerSumsScopes) {
  AccumulatingTimer acc;
  {
    auto scope = acc.Measure();
  }
  {
    auto scope = acc.Measure();
  }
  EXPECT_GE(acc.TotalSeconds(), 0.0);
  acc.Add(1.5);
  EXPECT_GE(acc.TotalSeconds(), 1.5);
  acc.Reset();
  EXPECT_EQ(acc.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace sqe
