#include <vector>

#include <gtest/gtest.h>

#include "kb/kb_builder.h"
#include "sqe/combiner.h"
#include "sqe/motif_finder.h"
#include "sqe/query_builder.h"
#include "sqe/sqe_engine.h"

namespace sqe::expansion {
namespace {

// A hand-crafted KB exercising every motif condition:
//
//   q  = "Query"        categories {C1}
//   t  = "Twin"         categories {C1, C2}, reciprocal with q  -> triangular
//   s  = "Square"       categories {C2},    reciprocal with q,
//                        C1 -> C2 subcategory                   -> square
//   w  = "OneWay"       categories {C1},    q -> w only          -> nothing
//   u  = "Unrelated"    categories {C3},    reciprocal with q    -> nothing
//   m  = "MissingCats"  categories {},      reciprocal with q    -> nothing
struct MotifKbFixture {
  kb::KnowledgeBase kb;
  kb::ArticleId q, t, s, w, u, m;
  kb::CategoryId c1, c2, c3;

  MotifKbFixture() {
    kb::KbBuilder builder;
    q = builder.AddArticle("Query");
    t = builder.AddArticle("Twin");
    s = builder.AddArticle("Square");
    w = builder.AddArticle("OneWay");
    u = builder.AddArticle("Unrelated");
    m = builder.AddArticle("MissingCats");
    c1 = builder.AddCategory("Category:C1");
    c2 = builder.AddCategory("Category:C2");
    c3 = builder.AddCategory("Category:C3");

    builder.AddMembership(q, c1);
    builder.AddMembership(t, c1);
    builder.AddMembership(t, c2);
    builder.AddMembership(s, c2);
    builder.AddMembership(w, c1);
    builder.AddMembership(u, c3);

    builder.AddReciprocalLink(q, t);
    builder.AddReciprocalLink(q, s);
    builder.AddArticleLink(q, w);
    builder.AddReciprocalLink(q, u);
    builder.AddReciprocalLink(q, m);

    builder.AddCategoryLink(c1, c2);

    kb = std::move(builder).Build();
  }
};

TEST(MotifFinderTest, TriangularRequiresReciprocityAndCategorySuperset) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  auto matches = finder.FindTriangular(f.q);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].query_node, f.q);
  EXPECT_EQ(matches[0].expansion_node, f.t);
  EXPECT_EQ(matches[0].shared_category, f.c1);
}

TEST(MotifFinderTest, SquareRequiresRelatedCategories) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  auto matches = finder.FindSquare(f.q);
  // Two squares: (q,s,C1,C2) via s={C2}, and (q,t,C1,C2) via t∋C2.
  ASSERT_EQ(matches.size(), 2u);
  bool found_s = false, found_t = false;
  for (const SquareMatch& match : matches) {
    EXPECT_EQ(match.query_category, f.c1);
    EXPECT_EQ(match.expansion_category, f.c2);
    found_s |= match.expansion_node == f.s;
    found_t |= match.expansion_node == f.t;
  }
  EXPECT_TRUE(found_s);
  EXPECT_TRUE(found_t);
}

TEST(MotifFinderTest, QueryNodeWithoutCategoriesMatchesNothing) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  EXPECT_TRUE(finder.FindTriangular(f.m).empty());
  EXPECT_TRUE(finder.FindSquare(f.m).empty());
}

TEST(MotifFinderTest, OneWayLinkNeverMatches) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  for (const auto& match : finder.FindTriangular(f.q)) {
    EXPECT_NE(match.expansion_node, f.w);
  }
  for (const auto& match : finder.FindSquare(f.q)) {
    EXPECT_NE(match.expansion_node, f.w);
  }
}

TEST(MotifFinderTest, BuildQueryGraphAggregatesCounts) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {f.q};
  QueryGraph graph = finder.BuildQueryGraph(nodes, MotifConfig::Both());

  ASSERT_EQ(graph.expansion_nodes.size(), 2u);
  // t: 1 triangle + 1 square = 2; s: 1 square.
  EXPECT_EQ(graph.expansion_nodes[0].article, f.t);
  EXPECT_EQ(graph.expansion_nodes[0].motif_count, 2u);
  EXPECT_EQ(graph.expansion_nodes[0].triangular_count, 1u);
  EXPECT_EQ(graph.expansion_nodes[0].square_count, 1u);
  EXPECT_EQ(graph.expansion_nodes[1].article, f.s);
  EXPECT_EQ(graph.expansion_nodes[1].motif_count, 1u);
  EXPECT_EQ(graph.total_motifs, 3u);
  // Categories C1 and C2 appear in matched motifs.
  EXPECT_EQ(graph.category_nodes.size(), 2u);
}

TEST(MotifFinderTest, ConfigurationSelectsMotifs) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {f.q};

  QueryGraph t_only = finder.BuildQueryGraph(nodes, MotifConfig::Triangular());
  ASSERT_EQ(t_only.expansion_nodes.size(), 1u);
  EXPECT_EQ(t_only.expansion_nodes[0].article, f.t);

  QueryGraph s_only = finder.BuildQueryGraph(nodes, MotifConfig::Square());
  EXPECT_EQ(s_only.expansion_nodes.size(), 2u);
  EXPECT_EQ(s_only.total_motifs, 2u);
}

TEST(MotifFinderTest, QueryNodesExcludedFromExpansion) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  // Both q and t as query nodes: t must not appear as an expansion node.
  std::vector<kb::ArticleId> nodes = {f.q, f.t};
  QueryGraph graph = finder.BuildQueryGraph(nodes, MotifConfig::Both());
  for (const ExpansionNode& node : graph.expansion_nodes) {
    EXPECT_NE(node.article, f.q);
    EXPECT_NE(node.article, f.t);
  }
}

TEST(MotifFinderTest, InvalidQueryNodesIgnored) {
  MotifKbFixture f;
  MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {kb::kInvalidArticle};
  QueryGraph graph = finder.BuildQueryGraph(nodes, MotifConfig::Both());
  EXPECT_TRUE(graph.expansion_nodes.empty());
}

TEST(MotifConfigTest, Names) {
  EXPECT_EQ(MotifConfig::Triangular().ToString(), "T");
  EXPECT_EQ(MotifConfig::Square().ToString(), "S");
  EXPECT_EQ(MotifConfig::Both().ToString(), "T&S");
  EXPECT_EQ(MotifKindName(MotifKind::kTriangular), "triangular");
  EXPECT_EQ(MotifKindName(MotifKind::kSquare), "square");
}

// ---- query builder -----------------------------------------------------------

TEST(QueryBuilderTest, ThreePartQueryStructure) {
  MotifKbFixture f;
  text::Analyzer analyzer;
  ExpandedQueryBuilder builder(&f.kb, &analyzer);
  MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {f.q};
  QueryGraph graph = finder.BuildQueryGraph(nodes, MotifConfig::Both());

  retrieval::Query query =
      builder.Build("photos of the query thing", graph, QueryParts::All());
  ASSERT_EQ(query.clauses.size(), 3u);
  // Clause order: user terms, entity titles, expansion titles.
  EXPECT_EQ(query.clauses[0].atoms.size(), 3u);  // photos, queri, thing
  EXPECT_EQ(query.clauses[1].atoms.size(), 1u);  // "Query" title
  EXPECT_EQ(query.clauses[2].atoms.size(), 2u);  // Twin + Square titles
  // Expansion atoms weighted by |m_a| (Twin=2, Square=1), sorted by count.
  EXPECT_DOUBLE_EQ(query.clauses[2].atoms[0].weight, 2.0);
  EXPECT_DOUBLE_EQ(query.clauses[2].atoms[1].weight, 1.0);
}

TEST(QueryBuilderTest, PartsSelectClauses) {
  MotifKbFixture f;
  text::Analyzer analyzer;
  ExpandedQueryBuilder builder(&f.kb, &analyzer);
  QueryGraph graph;
  graph.query_nodes.push_back(f.q);

  EXPECT_EQ(builder.Build("words", graph, QueryParts::QOnly()).clauses.size(),
            1u);
  EXPECT_EQ(builder.Build("words", graph, QueryParts::EOnly()).clauses.size(),
            1u);
  EXPECT_EQ(builder.Build("words", graph, QueryParts::QAndE()).clauses.size(),
            2u);
  // XOnly with no expansion nodes yields an empty query.
  EXPECT_TRUE(builder.Build("words", graph, QueryParts::XOnly()).Empty());
}

TEST(QueryBuilderTest, MaxExpansionFeaturesTruncates) {
  MotifKbFixture f;
  text::Analyzer analyzer;
  QueryBuilderOptions options;
  options.max_expansion_features = 1;
  ExpandedQueryBuilder builder(&f.kb, &analyzer, options);
  MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {f.q};
  QueryGraph graph = finder.BuildQueryGraph(nodes, MotifConfig::Both());
  retrieval::Query query = builder.Build("x", graph, QueryParts::XOnly());
  ASSERT_EQ(query.clauses.size(), 1u);
  EXPECT_EQ(query.clauses[0].atoms.size(), 1u);  // only the top-|m_a| node
}

TEST(QueryBuilderTest, MultiWordTitlesBecomePhrases) {
  kb::KbBuilder kb_builder;
  kb::ArticleId two = kb_builder.AddArticle("Cable Car");
  kb::KnowledgeBase kb = std::move(kb_builder).Build();
  text::Analyzer analyzer;
  ExpandedQueryBuilder builder(&kb, &analyzer);
  QueryGraph graph;
  graph.query_nodes.push_back(two);
  retrieval::Query query = builder.Build("", graph, QueryParts::EOnly());
  ASSERT_EQ(query.clauses.size(), 1u);
  ASSERT_EQ(query.clauses[0].atoms.size(), 1u);
  EXPECT_TRUE(query.clauses[0].atoms[0].is_phrase());
}

TEST(QueryBuilderTest, StemEqualTitlesMergeWithinClause) {
  // "Car" and "Cars" analyze to the identical term sequence {car}: their
  // atoms must merge with summed weights instead of silently splitting the
  // clause's normalized weight mass across duplicates.
  kb::KbBuilder kb_builder;
  kb::ArticleId car = kb_builder.AddArticle("Car");
  kb::ArticleId cars = kb_builder.AddArticle("Cars");
  kb::KnowledgeBase kb = std::move(kb_builder).Build();
  text::Analyzer analyzer;
  ExpandedQueryBuilder builder(&kb, &analyzer);

  QueryGraph graph;
  graph.query_nodes = {car, cars};
  graph.expansion_nodes.push_back({car, 2, 2, 0});
  graph.expansion_nodes.push_back({cars, 1, 1, 0});

  retrieval::Query entity = builder.Build("", graph, QueryParts::EOnly());
  ASSERT_EQ(entity.clauses.size(), 1u);
  ASSERT_EQ(entity.clauses[0].atoms.size(), 1u);
  EXPECT_EQ(entity.clauses[0].atoms[0].terms,
            (std::vector<std::string>{"car"}));
  EXPECT_DOUBLE_EQ(entity.clauses[0].atoms[0].weight, 2.0);  // 1.0 + 1.0

  retrieval::Query expansion = builder.Build("", graph, QueryParts::XOnly());
  ASSERT_EQ(expansion.clauses.size(), 1u);
  ASSERT_EQ(expansion.clauses[0].atoms.size(), 1u);
  EXPECT_DOUBLE_EQ(expansion.clauses[0].atoms[0].weight, 3.0);  // |m_a| 2 + 1
}

TEST(QueryBuilderTest, DistinctTitlesDoNotMerge) {
  // Guard the merge against over-reach: multi-term phrases with a shared
  // prefix term stay separate atoms.
  kb::KbBuilder kb_builder;
  kb::ArticleId cable_car = kb_builder.AddArticle("Cable Car");
  kb::ArticleId cable = kb_builder.AddArticle("Cable");
  kb::KnowledgeBase kb = std::move(kb_builder).Build();
  text::Analyzer analyzer;
  ExpandedQueryBuilder builder(&kb, &analyzer);

  QueryGraph graph;
  graph.query_nodes = {cable_car, cable};
  retrieval::Query query = builder.Build("", graph, QueryParts::EOnly());
  ASSERT_EQ(query.clauses.size(), 1u);
  EXPECT_EQ(query.clauses[0].atoms.size(), 2u);
}

// ---- combiner ------------------------------------------------------------------

retrieval::ResultList MakeResults(std::initializer_list<index::DocId> docs) {
  retrieval::ResultList out;
  double score = 100.0;
  for (index::DocId d : docs) out.push_back({d, score -= 1.0});
  return out;
}

TEST(CombinerTest, RangesFillInOrder) {
  retrieval::ResultList a = MakeResults({1, 2, 3});
  retrieval::ResultList b = MakeResults({10, 11, 12, 13});
  retrieval::ResultList c = MakeResults({20, 21});
  retrieval::ResultList combined = CombineByRankRanges(
      {{2, &a}, {5, &b}, {static_cast<size_t>(-1), &c}}, 100);
  std::vector<index::DocId> docs;
  for (const auto& sd : combined) docs.push_back(sd.doc);
  std::vector<index::DocId> expected = {1, 2, 10, 11, 12, 20, 21};
  EXPECT_EQ(docs, expected);
}

TEST(CombinerTest, DuplicatesSkippedFirstOccurrenceWins) {
  retrieval::ResultList a = MakeResults({1, 2});
  retrieval::ResultList b = MakeResults({2, 1, 3, 4});
  retrieval::ResultList combined =
      CombineByRankRanges({{2, &a}, {static_cast<size_t>(-1), &b}}, 100);
  std::vector<index::DocId> docs;
  for (const auto& sd : combined) docs.push_back(sd.doc);
  std::vector<index::DocId> expected = {1, 2, 3, 4};
  EXPECT_EQ(docs, expected);
}

TEST(CombinerTest, CapsAtK) {
  retrieval::ResultList a = MakeResults({1, 2, 3, 4, 5});
  retrieval::ResultList combined =
      CombineByRankRanges({{static_cast<size_t>(-1), &a}}, 3);
  EXPECT_EQ(combined.size(), 3u);
}

TEST(CombinerTest, ShortSegmentFallsThrough) {
  // Segment one has fewer docs than its cutoff allows: the next segment
  // continues the fill.
  retrieval::ResultList a = MakeResults({1});
  retrieval::ResultList b = MakeResults({5, 6, 7});
  retrieval::ResultList combined =
      CombineByRankRanges({{3, &a}, {static_cast<size_t>(-1), &b}}, 100);
  ASSERT_EQ(combined.size(), 4u);
  EXPECT_EQ(combined[0].doc, 1u);
  EXPECT_EQ(combined[1].doc, 5u);
}

TEST(CombinerTest, SqeCConfiguration) {
  // 1-5 from T, 6-200 from T&S, rest from S.
  retrieval::ResultList t, ts, s;
  for (index::DocId d = 0; d < 300; ++d) {
    t.push_back({d, 300.0 - d});
    ts.push_back({d + 1000, 300.0 - d});
    s.push_back({d + 2000, 300.0 - d});
  }
  retrieval::ResultList combined = CombineSqeC(t, ts, s, 250);
  ASSERT_EQ(combined.size(), 250u);
  EXPECT_LT(combined[4].doc, 1000u);    // rank 5 from T
  EXPECT_GE(combined[5].doc, 1000u);    // rank 6 from T&S
  EXPECT_LT(combined[199].doc, 2000u);  // rank 200 from T&S
  EXPECT_GE(combined[200].doc, 2000u);  // rank 201 from S
}

}  // namespace
}  // namespace sqe::expansion
