// SnapshotRegistry lifecycle and the hot-swap determinism contract.
//
// The headline harness (SwapUnderFire*) publishes snapshot epochs while the
// serving front-end is executing requests and proves the RCU story end to
// end with zero real sleeps:
//   * zero dropped responses — every submitted request resolves OK;
//   * zero mixed-epoch responses — each response carries the epoch pinned
//     at admission, and its ranking (doc ids AND score bits) equals a bare
//     engine run over that exact epoch's configuration. Epochs deliberately
//     differ in retriever smoothing, so any cross-epoch leak changes score
//     bits and fails the oracle comparison;
//   * deferred retirement closes — a superseded epoch is freed exactly when
//     its last lease drops (ASan proves the memory goes with it), and after
//     the front-end drains only the registry's current pointer is live.
//
// Epoch generations are real snapshot round-trips: each Publish gets a KB +
// index deserialized from the original's snapshot image, so the registry is
// exercised over the same load machinery production ingestion uses.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "index/inverted_index.h"
#include "kb/knowledge_base.h"
#include "retrieval/result.h"
#include "serving/frontend.h"
#include "serving/snapshot_registry.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

using expansion::RunPhase;
using serving::ServingCall;
using serving::ServingFrontend;
using serving::ServingFrontendConfig;
using serving::ServingRequest;
using serving::ServingResponse;
using serving::ServingStats;
using serving::Snapshot;
using serving::SnapshotLease;
using serving::SnapshotParts;
using serving::SnapshotRegistry;
using serving::SnapshotRegistryOptions;
using serving::SnapshotRegistryStats;

// Reusable one-shot gate for parking a worker inside a phase hook.
class Gate {
 public:
  void Open() {
    {
      MutexLock lock(&mu_);
      open_ = true;
    }
    cv_.SignalAll();
  }
  void Wait() {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this] { return open_; });
  }

 private:
  Mutex mu_{"registry_test.gate"};
  CondVar cv_;
  bool open_ SQE_GUARDED_BY(mu_) = false;
};

// Shared world + serialized snapshot images every published generation is
// deserialized from, plus per-epoch oracles. Epoch *index* here is 0-based;
// the registry's epoch numbers are 1-based publish order, so epoch number E
// serves EpochConfig(E - 1).
struct Env {
  Env()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())),
        kb_image(world.kb.SerializeToString()),
        index_image(dataset.index.SerializeToString()) {}
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  expansion::SqeEngineConfig EpochConfig(size_t epoch_index,
                                         size_t num_shards = 1) const {
    expansion::SqeEngineConfig config;
    // Distinguishable generations over one corpus: scaling the Dirichlet
    // smoothing moves every score's bits, so a response checked against
    // the wrong epoch's oracle cannot pass.
    config.retriever.mu = dataset.retrieval_mu * (1.0 + 0.5 * epoch_index);
    config.sharding.num_shards = num_shards;
    return config;
  }

  SnapshotParts Parts(size_t epoch_index, size_t num_shards = 1) const {
    auto kb = kb::KnowledgeBase::FromSnapshotString(kb_image);
    auto index = index::InvertedIndex::FromSnapshotString(index_image);
    SQE_CHECK(kb.ok() && index.ok());
    SnapshotParts parts;
    parts.kb = std::make_unique<kb::KnowledgeBase>(std::move(kb).value());
    parts.index =
        std::make_unique<index::InvertedIndex>(std::move(index).value());
    parts.engine_config = EpochConfig(epoch_index, num_shards);
    return parts;
  }

  /// Bare-engine reference rankings for one epoch configuration, computed
  /// over the original KB/index (the load-mode determinism gate proves a
  /// snapshot round-trip is bit-invisible).
  std::vector<retrieval::ResultList> Oracle(size_t epoch_index,
                                            size_t num_shards = 1) const {
    expansion::SqeEngine bare(&world.kb, &dataset.index, nullptr,
                              &dataset.analyzer(),
                              EpochConfig(epoch_index, num_shards));
    std::vector<retrieval::ResultList> rankings;
    for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
      rankings.push_back(bare.RunSqe(q.text, q.true_entities,
                                     expansion::MotifConfig::Both(), 100)
                             .results);
    }
    return rankings;
  }

  ServingRequest Request(size_t i) const {
    const auto& queries = dataset.query_set.queries;
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    ServingRequest request;
    request.text = q.text;
    request.query_nodes = q.true_entities;
    request.k = 100;
    return request;
  }
  size_t num_queries() const { return dataset.query_set.queries.size(); }

  synth::World world;
  synth::Dataset dataset;
  std::string kb_image;
  std::string index_image;
};

void ExpectSameRanking(const retrieval::ResultList& want,
                       const retrieval::ResultList& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t r = 0; r < want.size(); ++r) {
    EXPECT_EQ(want[r].doc, got[r].doc) << "rank " << r;
    EXPECT_EQ(want[r].score, got[r].score) << "rank " << r;  // exact bits
  }
}

// ---- lifecycle basics ------------------------------------------------------

TEST(RegistryTest, AcquireBeforeFirstPublishIsNull) {
  SnapshotRegistry registry;
  EXPECT_EQ(registry.Acquire(), nullptr);
  SnapshotRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.published, 0u);
  EXPECT_EQ(stats.retired, 0u);
  EXPECT_EQ(stats.current_epoch, 0u);
  EXPECT_EQ(stats.live_epochs(), 0u);
  EXPECT_EQ(stats.acquires, 1u);
}

TEST(RegistryTest, PublishRequiresKbAndIndex) {
  SnapshotRegistry registry;
  Result<uint64_t> outcome = registry.Publish(SnapshotParts{});
  ASSERT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsInvalidArgument());
  EXPECT_EQ(registry.Stats().published, 0u);
}

TEST(RegistryTest, EpochsAreMonotoneAndPinnedLeasesSurvivePublish) {
  Env env;
  SnapshotRegistry registry;

  Result<uint64_t> first = registry.Publish(env.Parts(0));
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first.value(), 1u);
  SnapshotLease lease1 = registry.Acquire();
  ASSERT_NE(lease1, nullptr);
  EXPECT_EQ(lease1->epoch(), 1u);

  Result<uint64_t> second = registry.Publish(env.Parts(1));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 2u);
  SnapshotLease lease2 = registry.Acquire();
  ASSERT_NE(lease2, nullptr);
  EXPECT_EQ(lease2->epoch(), 2u);

  // The old lease still serves its own generation, bit for bit, after the
  // swap — and the two generations' rankings provably differ.
  const std::vector<retrieval::ResultList> oracle1 = env.Oracle(0);
  const std::vector<retrieval::ResultList> oracle2 = env.Oracle(1);
  for (size_t i = 0; i < env.num_queries(); ++i) {
    ServingRequest r = env.Request(i);
    ExpectSameRanking(
        oracle1[i], lease1->engine()
                        .RunSqe(r.text, r.query_nodes, r.motifs, r.k)
                        .results);
    ExpectSameRanking(
        oracle2[i], lease2->engine()
                        .RunSqe(r.text, r.query_nodes, r.motifs, r.k)
                        .results);
  }
  bool any_score_differs = false;
  for (size_t i = 0; i < env.num_queries() && !any_score_differs; ++i) {
    for (size_t r = 0; r < oracle1[i].size() && r < oracle2[i].size(); ++r) {
      if (oracle1[i][r].score != oracle2[i][r].score) {
        any_score_differs = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_score_differs)
      << "epoch configurations must be distinguishable for mixed-epoch "
         "detection to mean anything";

  SnapshotRegistryStats stats = registry.Stats();
  EXPECT_EQ(stats.published, 2u);
  EXPECT_EQ(stats.current_epoch, 2u);
  EXPECT_EQ(stats.retired, 0u);  // lease1 still pins epoch 1
  EXPECT_EQ(stats.live_epochs(), 2u);
}

TEST(RegistryTest, RetirementFiresExactlyWhenLastLeaseDrops) {
  Env env;
  SnapshotRegistry registry;
  ASSERT_TRUE(registry.Publish(env.Parts(0)).ok());

  SnapshotLease a = registry.Acquire();
  SnapshotLease b = registry.Acquire();
  ASSERT_TRUE(registry.Publish(env.Parts(1)).ok());
  EXPECT_EQ(registry.Stats().retired, 0u);  // two leases pin epoch 1

  a.reset();
  EXPECT_EQ(registry.Stats().retired, 0u);  // one lease still pins it
  b.reset();
  EXPECT_EQ(registry.Stats().retired, 1u);  // last lease: freed right here
  EXPECT_EQ(registry.Stats().live_epochs(), 1u);

  // With no lease out, the swap itself runs the old generation's deleter
  // inline in Publish.
  ASSERT_TRUE(registry.Publish(env.Parts(2)).ok());
  EXPECT_EQ(registry.Stats().retired, 2u);
  EXPECT_EQ(registry.Stats().live_epochs(), 1u);
}

TEST(RegistryTest, LeasesKeepAGenerationUsableAfterRegistryDestruction) {
  Env env;
  SnapshotLease survivor;
  {
    SnapshotRegistryOptions options;
    options.shared_cache.enabled = true;  // the lease must keep it alive too
    SnapshotRegistry registry(options);
    ASSERT_TRUE(registry.Publish(env.Parts(0)).ok());
    survivor = registry.Acquire();
  }
  ASSERT_NE(survivor, nullptr);
  ServingRequest r = env.Request(0);
  ExpectSameRanking(env.Oracle(0)[0],
                    survivor->engine()
                        .RunSqe(r.text, r.query_nodes, r.motifs, r.k)
                        .results);
}

// ---- lease pinning at every cooperative checkpoint -------------------------

// A publish landing at any RunControl checkpoint must not change what the
// in-flight request observes: it completes on the epoch pinned at
// admission, bit for bit. Shards = 3 so the kShardSlice checkpoint fires.
TEST(RegistryTest, LeasePinsAcrossEveryPhaseCheckpoint) {
  Env env;
  const std::vector<retrieval::ResultList> oracle1 = env.Oracle(0, 3);
  const std::vector<retrieval::ResultList> oracle2 = env.Oracle(1, 3);
  for (RunPhase phase :
       {RunPhase::kPreAnalysis, RunPhase::kPreMotifTraversal,
        RunPhase::kPreRetrieval, RunPhase::kShardSlice}) {
    SCOPED_TRACE(testing::Message()
                 << "publish at " << expansion::RunPhaseName(phase));
    SnapshotRegistry registry;
    ASSERT_TRUE(registry.Publish(env.Parts(0, 3)).ok());

    FakeClock clock;
    std::atomic<bool> published{false};
    ServingFrontendConfig config;
    config.num_workers = 1;
    config.clock = &clock;
    config.phase_hook = [&](uint64_t id, RunPhase at) {
      // Publish the next generation from inside request 1's checkpoint —
      // strictly mid-flight, on the worker's own thread.
      if (id == 1 && at == phase &&
          !published.exchange(true, std::memory_order_acq_rel)) {
        ASSERT_TRUE(registry.Publish(env.Parts(1, 3)).ok());
      }
    };
    ServingFrontend frontend(&registry, config);

    std::shared_ptr<ServingCall> during = frontend.Submit(env.Request(0));
    const ServingResponse& mid = during->Wait();
    ASSERT_TRUE(mid.status.ok()) << mid.status.ToString();
    EXPECT_TRUE(published.load());
    EXPECT_EQ(mid.epoch, 1u) << "in-flight request must keep its pinned "
                                "epoch across the swap";
    ExpectSameRanking(oracle1[0], mid.result.results);

    // The next admission pins the new generation.
    std::shared_ptr<ServingCall> after = frontend.Submit(env.Request(1));
    const ServingResponse& next = after->Wait();
    ASSERT_TRUE(next.status.ok()) << next.status.ToString();
    EXPECT_EQ(next.epoch, 2u);
    ExpectSameRanking(oracle2[1], next.result.results);

    frontend.Shutdown();
    EXPECT_EQ(registry.Stats().live_epochs(), 1u);  // epoch 1 retired
  }
}

TEST(RegistryTest, SubmitBeforeFirstPublishIsRejectedAndCounted) {
  SnapshotRegistry registry;
  FakeClock clock;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.clock = &clock;
  ServingFrontend frontend(&registry, config);
  std::shared_ptr<ServingCall> call = frontend.Submit(ServingRequest{});
  const ServingResponse& response = call->Wait();
  EXPECT_TRUE(response.status.IsFailedPrecondition());
  EXPECT_EQ(response.epoch, 0u);
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.rejected_no_snapshot, 1u);
  EXPECT_EQ(stats.rejected(), 1u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
}

// ---- the headline harness: swap under fire ---------------------------------

// Deterministic swap-under-fire: one worker, FakeClock, CV gates — no real
// sleeps, no timing assumptions. Three publishes land mid-flight at known
// points:
//   * epoch 2 while request 1 is parked at its kPreMotifTraversal hook
//     (and 12 more epoch-1 requests sit in the queue behind it);
//   * epoch 3 from inside request 20's kPreRetrieval checkpoint;
//   * epoch 4 from inside request 22's kShardSlice checkpoint.
// The two trigger ids (20 and 22) are chosen so their queries are each
// first-seen within epoch 2: a repeated query would be served warm out of
// the epoch-keyed shared cache and skip the retrieval checkpoints entirely
// (ids 14..25 cover the 12 distinct queries exactly once).
// Because leases pin at admission, the expected epoch of every request is
// exactly determined: ids 1..13 were admitted before the second publish and
// must serve epoch 1; ids 14..48 were admitted after it and must serve
// epoch 2 (epochs 3 and 4 land after all admissions). Every response is
// compared to its epoch's bare-engine oracle, doc ids and score bits.
TEST(RegistryTest, SwapUnderFireIsLosslessMixFreeAndBitIdentical) {
  Env env;
  constexpr size_t kShards = 3;
  constexpr size_t kTotal = 48;
  constexpr size_t kEpoch1Boundary = 13;  // ids 1..13 pinned to epoch 1
  const std::vector<std::vector<retrieval::ResultList>> oracle = {
      env.Oracle(0, kShards), env.Oracle(1, kShards)};

  SnapshotRegistryOptions registry_options;
  registry_options.shared_cache.enabled = true;  // epoch-keyed shared cache
  SnapshotRegistry registry(registry_options);
  ASSERT_TRUE(registry.Publish(env.Parts(0, kShards)).ok());

  FakeClock clock;
  Gate blocker_entered;
  Gate release_blocker;
  std::atomic<bool> blocker_parked{false};
  std::atomic<int> publishes{0};
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.queue_capacity = kTotal + 8;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    clock.Advance(std::chrono::microseconds(100));  // virtual time only
    if (id == 1 && phase == RunPhase::kPreMotifTraversal &&
        !blocker_parked.exchange(true, std::memory_order_acq_rel)) {
      blocker_entered.Open();
      release_blocker.Wait();  // parked mid-flight while epoch 2 lands
    }
    if (id == 20 && phase == RunPhase::kPreRetrieval) {
      ASSERT_TRUE(registry.Publish(env.Parts(2, kShards)).ok());
      publishes.fetch_add(1, std::memory_order_acq_rel);
    }
    if (id == 22 && phase == RunPhase::kShardSlice &&
        publishes.load(std::memory_order_acquire) == 1) {
      ASSERT_TRUE(registry.Publish(env.Parts(3, kShards)).ok());
      publishes.fetch_add(1, std::memory_order_acq_rel);
    }
  };
  ServingFrontend frontend(&registry, config);

  std::vector<std::shared_ptr<ServingCall>> calls;
  // Request 1 starts executing and parks; 2..13 queue up behind it, all
  // pinned to epoch 1.
  for (size_t i = 0; i < kEpoch1Boundary; ++i) {
    calls.push_back(frontend.Submit(env.Request(i)));
  }
  blocker_entered.Wait();  // the worker is provably mid-flight now
  ASSERT_TRUE(registry.Publish(env.Parts(1, kShards)).ok());
  // 14..48 are admitted after the swap: pinned to epoch 2.
  for (size_t i = kEpoch1Boundary; i < kTotal; ++i) {
    calls.push_back(frontend.Submit(env.Request(i)));
  }
  release_blocker.Open();

  size_t served_epoch1 = 0, served_epoch2 = 0;
  for (size_t i = 0; i < calls.size(); ++i) {
    const ServingResponse& response = calls[i]->Wait();
    ASSERT_TRUE(response.status.ok())
        << "dropped response " << i << ": " << response.status.ToString();
    EXPECT_EQ(response.phase_reached, RunPhase::kDone);
    const uint64_t expected_epoch = i < kEpoch1Boundary ? 1u : 2u;
    ASSERT_EQ(response.epoch, expected_epoch) << "mixed-epoch response " << i;
    (response.epoch == 1u ? served_epoch1 : served_epoch2) += 1;
    ExpectSameRanking(oracle[response.epoch - 1][i % env.num_queries()],
                      response.result.results);
  }
  EXPECT_EQ(served_epoch1, kEpoch1Boundary);
  EXPECT_EQ(served_epoch2, kTotal - kEpoch1Boundary);
  EXPECT_EQ(publishes.load(), 2);  // + the gate-covered one = 3 mid-flight

  frontend.Shutdown();
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.resolved(), stats.submitted);

  // Deferred retirement closed: every lease came back when its request
  // resolved, so only the current generation (epoch 4) is still alive —
  // under ASan this also proves the retired generations' memory is gone.
  SnapshotRegistryStats registry_stats = registry.Stats();
  EXPECT_EQ(registry_stats.published, 4u);
  EXPECT_EQ(registry_stats.retired, 3u);
  EXPECT_EQ(registry_stats.live_epochs(), 1u);
  EXPECT_EQ(registry_stats.current_epoch, 4u);
}

// ---- concurrency hammer (run under TSan in CI) -----------------------------

// Non-deterministic interleavings: a publisher thread swaps generations as
// fast as it can while four workers serve and the main thread submits.
// Whatever the schedule, every OK response must match the oracle of the
// epoch it reports — the mixed-epoch check does not depend on knowing which
// epoch a request happened to pin.
TEST(RegistryTest, ConcurrentPublishAcquireHammerStaysMixFree) {
  Env env;
  constexpr size_t kEpochs = 6;
  constexpr size_t kRequests = 96;
  std::vector<std::vector<retrieval::ResultList>> oracle;
  for (size_t e = 0; e < kEpochs; ++e) oracle.push_back(env.Oracle(e));

  SnapshotRegistryOptions registry_options;
  registry_options.shared_cache.enabled = true;
  SnapshotRegistry registry(registry_options);
  ASSERT_TRUE(registry.Publish(env.Parts(0)).ok());

  ServingFrontendConfig config;
  config.num_workers = 4;
  config.queue_capacity = kRequests + 8;
  ServingFrontend frontend(&registry, config);

  std::thread publisher([&] {
    for (size_t e = 1; e < kEpochs; ++e) {
      Result<uint64_t> published = registry.Publish(env.Parts(e));
      SQE_CHECK(published.ok());
    }
  });

  std::vector<std::shared_ptr<ServingCall>> calls;
  for (size_t i = 0; i < kRequests; ++i) {
    calls.push_back(frontend.Submit(env.Request(i)));
  }
  publisher.join();

  for (size_t i = 0; i < calls.size(); ++i) {
    const ServingResponse& response = calls[i]->Wait();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    ASSERT_GE(response.epoch, 1u);
    ASSERT_LE(response.epoch, kEpochs);
    ExpectSameRanking(oracle[response.epoch - 1][i % env.num_queries()],
                      response.result.results);
  }
  frontend.Shutdown();

  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.resolved(), stats.submitted);
  SnapshotRegistryStats registry_stats = registry.Stats();
  EXPECT_EQ(registry_stats.published, kEpochs);
  EXPECT_EQ(registry_stats.live_epochs(), 1u);
  EXPECT_EQ(registry_stats.current_epoch, kEpochs);
}

// ---- the background loader --------------------------------------------------

TEST(RegistryTest, LoaderRoundTripsSnapshotFilesAndPublishes) {
  Env env;
  const std::string kb_path =
      testing::TempDir() + "/registry_test_kb.snap";
  const std::string index_path =
      testing::TempDir() + "/registry_test_index.snap";
  ASSERT_TRUE(env.world.kb.SaveToFile(kb_path).ok());
  ASSERT_TRUE(env.dataset.index.SaveToFile(index_path).ok());

  SnapshotRegistry registry;
  serving::SnapshotLoader loader(&registry);

  // Background job: Start/Wait through a real thread.
  serving::SnapshotLoader::Job job;
  job.kb_path = kb_path;
  job.index_path = index_path;
  job.build_linker = true;
  job.engine_config = env.EpochConfig(0);
  loader.Start(job);
  Result<uint64_t> published = loader.Wait();
  ASSERT_TRUE(published.ok()) << published.status().ToString();
  EXPECT_EQ(published.value(), 1u);

  SnapshotLease lease = registry.Acquire();
  ASSERT_NE(lease, nullptr);
  EXPECT_EQ(lease->kb().NumArticles(), env.world.kb.NumArticles());
  EXPECT_NE(lease->linker(), nullptr);
  ServingRequest r = env.Request(0);
  ExpectSameRanking(env.Oracle(0)[0],
                    lease->engine()
                        .RunSqe(r.text, r.query_nodes, r.motifs, r.k)
                        .results);

  // A second, synchronous job over the same files: next epoch.
  Result<uint64_t> again = loader.LoadAndPublish(job);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 2u);

  // Missing file: the error surfaces, nothing publishes.
  serving::SnapshotLoader::Job broken = job;
  broken.kb_path = kb_path + ".does-not-exist";
  loader.Start(broken);
  Result<uint64_t> failed = loader.Wait();
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(registry.Stats().published, 2u);

  std::remove(kb_path.c_str());
  std::remove(index_path.c_str());
}

}  // namespace
}  // namespace sqe
