// Cross-version snapshot load matrix: every supported (format version ×
// load mode × transport) combination must load, deep-validate, and rank
// bit-identically to the in-memory structures it was serialized from.
//
// This is the acceptance gate for the v3 zero-copy layout: a mapped load
// is only correct if it is indistinguishable from a heap load under the
// PR 2 validators AND under actual query traffic. The corruption half of
// the matrix pins the other direction — the persisted derived structures
// (docs-by-length order, sorted title/vocab orders, block-max boundaries,
// reciprocal CSR) are cross-checked on load, so a resigned snapshot with a
// stale derived block must be rejected even though every CRC is valid.
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "io/file.h"
#include "io/snapshot_format.h"
#include "kb/knowledge_base.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

// ---- shared pipeline (built once; serialization is cheap, building isn't) --

struct Pipeline {
  synth::World world;
  synth::Dataset dataset;

  Pipeline()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())) {}
};

Pipeline& SharedPipeline() {
  static Pipeline& pipeline = *new Pipeline();
  return pipeline;
}

constexpr size_t kDepth = 50;

// Order- and score-sensitive digest of the full ranking for every query in
// the shared dataset, run against the given KB + index pair. Two loads are
// "bit-identical" iff these digests match.
uint64_t RankingDigest(const kb::KnowledgeBase& kb,
                       const index::InvertedIndex& index) {
  Pipeline& p = SharedPipeline();
  expansion::SqeEngineConfig config;
  config.retriever.mu = p.dataset.retrieval_mu;
  expansion::SqeEngine engine(&kb, &index, p.dataset.linker.get(),
                              &p.dataset.analyzer(), config);
  uint64_t digest = 1469598103934665603ull;  // FNV-1a
  for (const synth::GeneratedQuery& q : p.dataset.query_set.queries) {
    auto run = engine.RunSqe(q.text, q.true_entities,
                             expansion::MotifConfig::Both(), kDepth);
    for (const retrieval::ScoredDoc& sd : run.results) {
      digest = (digest ^ sd.doc) * 1099511628211ull;
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(sd.score));
      std::memcpy(&bits, &sd.score, sizeof(bits));
      digest = (digest ^ bits) * 1099511628211ull;
    }
  }
  return digest;
}

uint64_t BaselineDigest() {
  Pipeline& p = SharedPipeline();
  static const uint64_t digest = RankingDigest(p.world.kb, p.dataset.index);
  return digest;
}

// Rebuilds `image` with `block` replaced by mutate(payload) and all CRCs
// re-signed: corruption that reaches the decoders, not the checksums.
std::string ResignBlock(const std::string& image, uint32_t magic,
                        std::string_view block,
                        const std::function<std::string(std::string)>& mutate) {
  auto reader = io::SnapshotReader::Open(image, magic);
  SQE_CHECK(reader.ok());
  io::SnapshotWriter writer(magic, reader->version());
  bool found = false;
  for (const std::string& name : reader->BlockNames()) {
    auto payload = reader->GetBlock(name);
    SQE_CHECK(payload.ok());
    std::string bytes(payload.value());
    if (name == block) {
      bytes = mutate(std::move(bytes));
      found = true;
    }
    writer.AddBlock(name, std::move(bytes));
  }
  SQE_CHECK_MSG(found, "ResignBlock: no such block");
  return writer.Serialize();
}

std::string FlipFirstByte(std::string payload) {
  SQE_CHECK(!payload.empty());
  payload[0] ^= 0x01;
  return payload;
}

// ---- load matrix: every version × mode × transport ranks identically ------

TEST(SnapshotMatrixTest, KbAllVersionsAndModesRankIdentically) {
  Pipeline& p = SharedPipeline();
  for (uint32_t version : {1u, io::kKbSnapshotVersion}) {
    SCOPED_TRACE("kb version " + std::to_string(version));
    const std::string image = p.world.kb.SerializeToString(version);
    auto heap = kb::KnowledgeBase::FromSnapshotString(image);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    EXPECT_FALSE(heap->zero_copy());
    ASSERT_TRUE(heap->Validate().ok());
    EXPECT_EQ(RankingDigest(*heap, p.dataset.index), BaselineDigest());

    if (version < io::kAlignedSnapshotVersion) continue;
    auto mapped = kb::KnowledgeBase::FromSnapshotString(
        image, io::LoadMode::kZeroCopy);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->zero_copy());
    ASSERT_TRUE(mapped->Validate().ok());
    EXPECT_EQ(RankingDigest(*mapped, p.dataset.index), BaselineDigest());
  }
}

TEST(SnapshotMatrixTest, IndexAllVersionsAndModesRankIdentically) {
  Pipeline& p = SharedPipeline();
  for (uint32_t version :
       {1u, 2u, io::kAlignedSnapshotVersion, io::kIndexSnapshotVersion}) {
    SCOPED_TRACE("index version " + std::to_string(version));
    const std::string image = p.dataset.index.SerializeToString(version);
    auto heap = index::InvertedIndex::FromSnapshotString(image);
    ASSERT_TRUE(heap.ok()) << heap.status().ToString();
    EXPECT_FALSE(heap->zero_copy());
    ASSERT_TRUE(heap->Validate().ok());
    EXPECT_EQ(RankingDigest(p.world.kb, *heap), BaselineDigest());

    if (version < io::kAlignedSnapshotVersion) continue;
    auto mapped = index::InvertedIndex::FromSnapshotString(
        image, io::LoadMode::kZeroCopy);
    ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
    EXPECT_TRUE(mapped->zero_copy());
    ASSERT_TRUE(mapped->Validate().ok());
    EXPECT_EQ(RankingDigest(p.world.kb, *mapped), BaselineDigest());
  }
}

TEST(SnapshotMatrixTest, MappedFileLoadRanksIdentically) {
  Pipeline& p = SharedPipeline();
  const std::string kb_path = "/tmp/sqe_snapshot_v3_test_kb.snap";
  const std::string idx_path = "/tmp/sqe_snapshot_v3_test_index.snap";
  ASSERT_TRUE(p.world.kb.SaveToFile(kb_path).ok());
  ASSERT_TRUE(p.dataset.index.SaveToFile(idx_path).ok());
  auto kb = kb::KnowledgeBase::FromSnapshotFile(kb_path,
                                                io::LoadMode::kZeroCopy);
  auto index = index::InvertedIndex::FromSnapshotFile(idx_path,
                                                      io::LoadMode::kZeroCopy);
  ASSERT_TRUE(kb.ok()) << kb.status().ToString();
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_TRUE(kb->zero_copy());
  EXPECT_TRUE(index->zero_copy());
  EXPECT_EQ(RankingDigest(*kb, *index), BaselineDigest());
  std::remove(kb_path.c_str());
  std::remove(idx_path.c_str());
}

// ---- mode/version mismatches ----------------------------------------------

TEST(SnapshotMatrixTest, ZeroCopyRejectsLegacyImages) {
  Pipeline& p = SharedPipeline();
  auto kb = kb::KnowledgeBase::FromSnapshotString(
      p.world.kb.SerializeToString(1), io::LoadMode::kZeroCopy);
  EXPECT_TRUE(kb.status().IsInvalidArgument()) << kb.status().ToString();
  for (uint32_t version : {1u, 2u}) {
    auto index = index::InvertedIndex::FromSnapshotString(
        p.dataset.index.SerializeToString(version), io::LoadMode::kZeroCopy);
    EXPECT_TRUE(index.status().IsInvalidArgument())
        << index.status().ToString();
  }
}

// ---- resigned stale-derived-block corruption -------------------------------
//
// Every mutated image below carries valid header, block, and directory
// CRCs; only cross-validation of the persisted derived structure against
// the primary data can catch it. Both load modes must reject it.

void ExpectKbRejected(const std::string& image, std::string_view what) {
  SCOPED_TRACE(std::string(what));
  for (io::LoadMode mode : {io::LoadMode::kHeap, io::LoadMode::kZeroCopy}) {
    auto kb = kb::KnowledgeBase::FromSnapshotString(image, mode);
    EXPECT_FALSE(kb.ok()) << "mode " << static_cast<int>(mode)
                          << " accepted a corrupt image";
  }
}

void ExpectIndexRejected(const std::string& image, std::string_view what) {
  SCOPED_TRACE(std::string(what));
  for (io::LoadMode mode : {io::LoadMode::kHeap, io::LoadMode::kZeroCopy}) {
    auto index = index::InvertedIndex::FromSnapshotString(image, mode);
    EXPECT_FALSE(index.ok()) << "mode " << static_cast<int>(mode)
                             << " accepted a corrupt image";
  }
}

TEST(SnapshotMatrixTest, ResignedStaleDerivedKbBlocksAreRejected) {
  Pipeline& p = SharedPipeline();
  const std::string image = p.world.kb.SerializeToString();
  for (std::string_view block :
       {"titles.article_order", "titles.category_order",
        "csr.reciprocal.targets", "csr.article_inlinks.offsets"}) {
    ExpectKbRejected(ResignBlock(image, io::kKbSnapshotMagic, block,
                                 FlipFirstByte),
                     block);
  }
}

TEST(SnapshotMatrixTest, ResignedStaleDerivedIndexBlocksAreRejected) {
  Pipeline& p = SharedPipeline();
  const std::string image = p.dataset.index.SerializeToString();
  for (std::string_view block :
       {"docs.by_length", "vocab.order", "post.block_last",
        "post.doc_index"}) {
    ExpectIndexRejected(ResignBlock(image, io::kIndexSnapshotMagic, block,
                                    FlipFirstByte),
                        block);
  }
}

}  // namespace
}  // namespace sqe
