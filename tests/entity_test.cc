#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "entity/entity_linker.h"
#include "entity/ner.h"
#include "entity/surface_forms.h"
#include "kb/kb_builder.h"

namespace sqe::entity {
namespace {

text::Analyzer MakeAnalyzer() { return text::Analyzer(); }

kb::KnowledgeBase MakeKb() {
  kb::KbBuilder builder;
  builder.AddArticle("Cable Car");    // id 0
  builder.AddArticle("Funicular");    // id 1
  builder.AddArticle("Banksy");       // id 2
  builder.AddArticle("Graffiti");     // id 3
  return std::move(builder).Build();
}

// ---- surface forms ------------------------------------------------------------

TEST(SurfaceFormsTest, CommonnessNormalizesAndSorts) {
  SurfaceFormDictionary dict;
  dict.Add({"cable"}, 0, 3.0);
  dict.Add({"cable"}, 1, 1.0);
  dict.Finalize();
  auto candidates = dict.Lookup(std::vector<std::string>{"cable"});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].article, 0u);
  EXPECT_NEAR(candidates[0].commonness, 0.75, 1e-12);
  EXPECT_NEAR(candidates[1].commonness, 0.25, 1e-12);
}

TEST(SurfaceFormsTest, RepeatedAddAccumulates) {
  SurfaceFormDictionary dict;
  dict.Add({"x"}, 5, 1.0);
  dict.Add({"x"}, 5, 2.0);
  dict.Add({"x"}, 6, 1.0);
  dict.Finalize();
  auto candidates = dict.Lookup(std::vector<std::string>{"x"});
  ASSERT_EQ(candidates.size(), 2u);
  EXPECT_EQ(candidates[0].article, 5u);
  EXPECT_NEAR(candidates[0].commonness, 0.75, 1e-12);
}

TEST(SurfaceFormsTest, UnknownFormEmpty) {
  SurfaceFormDictionary dict;
  dict.Add({"known"}, 1);
  dict.Finalize();
  EXPECT_TRUE(dict.Lookup(std::vector<std::string>{"unknown"}).empty());
  EXPECT_TRUE(dict.Lookup(std::vector<std::string>{}).empty());
}

TEST(SurfaceFormsTest, MultiTokenFormsAreDistinct) {
  SurfaceFormDictionary dict;
  dict.Add({"cable", "car"}, 0);
  dict.Add({"cable"}, 1);
  dict.Finalize();
  EXPECT_EQ(dict.Lookup(std::vector<std::string>{"cable", "car"})[0].article,
            0u);
  EXPECT_EQ(dict.Lookup(std::vector<std::string>{"cable"})[0].article, 1u);
  EXPECT_EQ(dict.MaxFormLength(), 2u);
  EXPECT_EQ(dict.NumForms(), 2u);
}

TEST(SurfaceFormsTest, FromKbTitlesUsesAnalyzedTitles) {
  kb::KnowledgeBase kb = MakeKb();
  text::Analyzer analyzer = MakeAnalyzer();
  SurfaceFormDictionary dict =
      SurfaceFormDictionary::FromKbTitles(kb, analyzer);
  dict.Finalize();
  // "Cable Car" analyzes to {cabl, car}.
  auto candidates = dict.Lookup(std::vector<std::string>{"cabl", "car"});
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].article, 0u);
}

// ---- NER -----------------------------------------------------------------------

TEST(NerTest, FindsCapitalizedRuns) {
  auto mentions = RecognizeMentions("photos of Cable Car near Banksy mural");
  ASSERT_EQ(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].text, "Cable Car");
  EXPECT_EQ(mentions[1].text, "Banksy");
}

TEST(NerTest, LowercaseTextYieldsNothing) {
  EXPECT_TRUE(RecognizeMentions("graffiti street art on walls").empty());
}

TEST(NerTest, RespectsMaxMentionWords) {
  NerOptions options;
  options.max_mention_words = 2;
  auto mentions = RecognizeMentions("The Golden Gate Bridge Authority", options);
  ASSERT_GE(mentions.size(), 2u);
  EXPECT_EQ(mentions[0].text, "The Golden");
}

TEST(NerTest, OffsetsPointIntoSource) {
  std::string text = "see Banksy today";
  auto mentions = RecognizeMentions(text);
  ASSERT_EQ(mentions.size(), 1u);
  EXPECT_EQ(text.substr(mentions[0].begin,
                        mentions[0].end - mentions[0].begin),
            "Banksy");
}

// ---- linker ---------------------------------------------------------------------

struct LinkerFixture {
  kb::KnowledgeBase kb = MakeKb();
  text::Analyzer analyzer = MakeAnalyzer();
  SurfaceFormDictionary dict;

  LinkerFixture() {
    dict = SurfaceFormDictionary::FromKbTitles(kb, analyzer);
    // Ambiguous alias: "lift" mostly means Funicular, sometimes Cable Car.
    dict.Add({"lift"}, 1, 4.0);
    dict.Add({"lift"}, 0, 1.0);
    // Low-confidence alias below the default threshold.
    dict.Add({"art"}, 2, 1.0);
    dict.Add({"art"}, 3, 1.0);
    dict.Finalize();
  }
};

TEST(EntityLinkerTest, LinksLongestMatchFirst) {
  LinkerFixture f;
  EntityLinker linker(&f.dict, &f.analyzer);
  auto linked = linker.Link("cable car rides");
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0].article, 0u);  // "cable car", not a shorter form
  EXPECT_EQ(linked[0].token_begin, 0u);
  EXPECT_EQ(linked[0].token_end, 2u);
}

TEST(EntityLinkerTest, DisambiguatesByCommonness) {
  LinkerFixture f;
  EntityLinker linker(&f.dict, &f.analyzer);
  auto linked = linker.Link("lift to the top");
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0].article, 1u);  // Funicular dominates "lift"
  EXPECT_NEAR(linked[0].confidence, 0.8, 1e-12);
}

TEST(EntityLinkerTest, ThresholdBlocksAmbiguousForms) {
  LinkerFixture f;
  EntityLinkerOptions options;
  options.min_commonness = 0.6;
  EntityLinker linker(&f.dict, &f.analyzer, options);
  // "art" splits 50/50: below the threshold, no link from spotting.
  auto linked = linker.LinkTokens({"art"});
  EXPECT_TRUE(linked.empty());
}

TEST(EntityLinkerTest, MultipleEntitiesInOrder) {
  LinkerFixture f;
  EntityLinker linker(&f.dict, &f.analyzer);
  auto linked = linker.Link("funicular and cable car");
  ASSERT_EQ(linked.size(), 2u);
  EXPECT_EQ(linked[0].article, 1u);
  EXPECT_EQ(linked[1].article, 0u);
}

TEST(EntityLinkerTest, NerFallbackLinksMentions) {
  LinkerFixture f;
  // Spotting finds nothing for this text (no dictionary form), but the NER
  // fallback recognizes the capitalized mention and links it exactly.
  EntityLinker linker(&f.dict, &f.analyzer);
  auto linked = linker.Link("pictures by Banksy");
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0].article, 2u);
}

TEST(EntityLinkerTest, NerFallbackCarriesTokenSpans) {
  LinkerFixture f;
  EntityLinkerOptions options;
  // Spotting cannot clear this threshold ("lift" peaks at 0.8), forcing the
  // NER fallback over the capitalized mention.
  options.min_commonness = 0.95;
  EntityLinker linker(&f.dict, &f.analyzer, options);
  auto linked = linker.Link("ride the Lift today");
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0].article, 1u);  // Funicular dominates "lift"
  // Analyzed query tokens: {ride, lift, todai} ("the" is a stopword). The
  // mention covers token 1, not the bogus [0, 0) span once emitted here.
  EXPECT_EQ(linked[0].token_begin, 1u);
  EXPECT_EQ(linked[0].token_end, 2u);
}

TEST(EntityLinkerTest, NerFallbackDeduplicatesByArticle) {
  kb::KnowledgeBase kb = MakeKb();
  text::Analyzer analyzer = MakeAnalyzer();
  SurfaceFormDictionary dict;
  dict.Add({"lift"}, 1, 4.0);  // 0.8 Funicular
  dict.Add({"lift"}, 0, 1.0);
  dict.Add({"tram"}, 1, 9.0);  // 0.9 Funicular
  dict.Add({"tram"}, 0, 1.0);
  dict.Finalize();
  EntityLinkerOptions options;
  options.min_commonness = 0.95;  // force the NER fallback for both mentions
  EntityLinker linker(&dict, &analyzer, options);
  // Both mentions resolve to Funicular: one link must come back (not the
  // duplicate pair the fallback used to emit), keeping the
  // higher-commonness "Tram" hit and its token span.
  auto linked = linker.Link("Lift beside Tram");
  ASSERT_EQ(linked.size(), 1u);
  EXPECT_EQ(linked[0].article, 1u);
  EXPECT_NEAR(linked[0].confidence, 0.9, 1e-12);
  EXPECT_EQ(linked[0].token_begin, 2u);  // tokens: {lift, besid, tram}
  EXPECT_EQ(linked[0].token_end, 3u);
}

TEST(EntityLinkerTest, NerFallbackKeepsDistinctArticles) {
  LinkerFixture f;
  EntityLinkerOptions options;
  options.min_commonness = 1.1;  // nothing can clear it: spotting never fires
  EntityLinker linker(&f.dict, &f.analyzer, options);
  // Two mentions, two distinct articles: both survive, in position order.
  auto linked = linker.Link("Banksy rides the Lift");
  ASSERT_EQ(linked.size(), 2u);
  EXPECT_EQ(linked[0].article, 2u);  // Banksy
  EXPECT_EQ(linked[0].token_begin, 0u);
  EXPECT_EQ(linked[0].token_end, 1u);
  EXPECT_EQ(linked[1].article, 1u);  // Funicular via "lift"
  EXPECT_EQ(linked[1].token_begin, 2u);  // tokens: {banksi, ride, lift}
  EXPECT_EQ(linked[1].token_end, 3u);
}

TEST(EntityLinkerTest, NothingLinkableYieldsEmpty) {
  LinkerFixture f;
  EntityLinker linker(&f.dict, &f.analyzer);
  EXPECT_TRUE(linker.Link("completely unrelated words").empty());
  EXPECT_TRUE(linker.Link("").empty());
}

}  // namespace
}  // namespace sqe::entity
