// Cache coverage: the sharded LRU container (capacity/byte eviction, LRU
// ordering, stats, concurrent hammering), SqeCache keying, and the engine
// determinism guarantee — a cache-enabled engine must produce bit-identical
// output to an uncached one, cold and warm, at every thread count. Run under
// SQE_SANITIZE=thread / address,undefined in CI to prove race-freedom.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/lru_cache.h"
#include "common/thread_pool.h"
#include "sqe/sqe_cache.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

// ---- ShardedLruCache --------------------------------------------------------

using StringCache = ShardedLruCache<std::string, int>;

LruCacheOptions TinyCache(size_t capacity, size_t max_bytes = 1u << 20) {
  LruCacheOptions options;
  options.capacity = capacity;
  options.max_bytes = max_bytes;
  options.num_shards = 1;  // single shard: eviction order is fully observable
  return options;
}

TEST(ShardedLruCacheTest, InsertLookupRoundTrip) {
  StringCache cache(TinyCache(8));
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  cache.Insert("a", 1);
  auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 1);
}

TEST(ShardedLruCacheTest, InsertReturnsResidentHandle) {
  StringCache cache(TinyCache(8));
  auto handle = cache.Insert("a", 7);
  ASSERT_NE(handle, nullptr);
  EXPECT_EQ(*handle, 7);
  EXPECT_EQ(cache.Lookup("a").get(), handle.get());
}

TEST(ShardedLruCacheTest, CapacityEvictsLeastRecentlyUsed) {
  StringCache cache(TinyCache(2));
  cache.Insert("a", 1);
  cache.Insert("b", 2);
  ASSERT_NE(cache.Lookup("a"), nullptr);  // refresh "a": "b" is now coldest
  cache.Insert("c", 3);
  EXPECT_EQ(cache.Lookup("b"), nullptr);
  EXPECT_NE(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("c"), nullptr);
  EXPECT_EQ(cache.Stats().evictions, 1u);
}

TEST(ShardedLruCacheTest, ByteBudgetEvicts) {
  // Each entry is charged ~600 bytes against a 1000-byte budget: at most
  // one fits, so the second insert evicts the first.
  StringCache cache(TinyCache(100, 1000));
  cache.Insert("a", 1, 600);
  cache.Insert("b", 2, 600);
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_NE(cache.Lookup("b"), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_LE(stats.bytes, 1000u);
}

TEST(ShardedLruCacheTest, ReinsertReplacesValueAndCharge) {
  StringCache cache(TinyCache(4, 1u << 20));
  cache.Insert("a", 1, 100);
  cache.Insert("a", 2, 200);
  auto hit = cache.Lookup("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 2);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 2u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ShardedLruCacheTest, EvictedValueSurvivesThroughHandle) {
  StringCache cache(TinyCache(1));
  auto handle = cache.Insert("a", 42);
  cache.Insert("b", 2);  // evicts "a"
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  EXPECT_EQ(*handle, 42);  // the caller's snapshot is unaffected
}

TEST(ShardedLruCacheTest, StatsCountHitsAndMisses) {
  StringCache cache(TinyCache(4));
  cache.Insert("a", 1);
  cache.Lookup("a");
  cache.Lookup("a");
  cache.Lookup("missing");
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_NEAR(stats.HitRate(), 2.0 / 3.0, 1e-12);
}

TEST(ShardedLruCacheTest, ClearDropsEntriesKeepsCounters) {
  StringCache cache(TinyCache(4));
  cache.Insert("a", 1);
  cache.Lookup("a");
  cache.Clear();
  EXPECT_EQ(cache.Lookup("a"), nullptr);
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST(ShardedLruCacheTest, ShardCountRoundsUpToPowerOfTwo) {
  LruCacheOptions options;
  options.num_shards = 5;
  ShardedLruCache<std::string, int> cache(options);
  EXPECT_EQ(cache.num_shards(), 8u);
}

TEST(ShardedLruCacheTest, ConcurrentMixedWorkloadIsRaceFree) {
  LruCacheOptions options;
  options.capacity = 64;  // small enough that eviction happens under load
  options.num_shards = 4;
  ShardedLruCache<std::string, int> cache(options);
  ThreadPool pool(4);
  constexpr size_t kOps = 4000;
  pool.ParallelFor(kOps, [&](size_t i, size_t) {
    const int id = static_cast<int>(i % 128);
    const std::string key = "k" + std::to_string(id);
    if (auto hit = cache.Lookup(key)) {
      // A key's value never changes: any hit must observe it intact.
      ASSERT_EQ(*hit, id);
    } else {
      cache.Insert(key, id);
    }
  });
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits + stats.misses, kOps);
  EXPECT_LE(stats.entries, 64u + cache.num_shards());
}

// ---- SqeCache keying --------------------------------------------------------

TEST(SqeCacheKeyTest, GraphKeyIsOrderInvariant) {
  std::vector<kb::ArticleId> ab = {1, 2}, ba = {2, 1}, abc = {1, 2, 3};
  const auto both = expansion::MotifConfig::Both();
  EXPECT_EQ(expansion::SqeCache::GraphKey(ab, both, 0),
            expansion::SqeCache::GraphKey(ba, both, 0));
  EXPECT_NE(expansion::SqeCache::GraphKey(ab, both, 0),
            expansion::SqeCache::GraphKey(abc, both, 0));
  EXPECT_NE(
      expansion::SqeCache::GraphKey(ab, both, 0),
      expansion::SqeCache::GraphKey(ab, expansion::MotifConfig::Triangular(),
                                    0));
  EXPECT_NE(
      expansion::SqeCache::GraphKey(ab, expansion::MotifConfig::Square(), 0),
      expansion::SqeCache::GraphKey(ab, expansion::MotifConfig::Triangular(),
                                    0));
}

TEST(SqeCacheKeyTest, GraphKeySeparatesEpochs) {
  std::vector<kb::ArticleId> ab = {1, 2};
  const auto both = expansion::MotifConfig::Both();
  EXPECT_EQ(expansion::SqeCache::GraphKey(ab, both, 1),
            expansion::SqeCache::GraphKey(ab, both, 1));
  EXPECT_NE(expansion::SqeCache::GraphKey(ab, both, 1),
            expansion::SqeCache::GraphKey(ab, both, 2));
  // The epoch is fixed-width binary, so adjacent epochs can never alias a
  // node-list byte pattern the way a textual prefix could.
  EXPECT_NE(expansion::SqeCache::GraphKey(ab, both, 0x0102030405060708ull),
            expansion::SqeCache::GraphKey(ab, both, 0x0102030405060709ull));
}

TEST(SqeCacheKeyTest, RunKeySeparatesEveryComponent) {
  using expansion::SqeCache;
  std::vector<std::string> terms = {"cabl", "car"};
  std::vector<std::string> other_terms = {"cabl"};
  std::vector<kb::ArticleId> ab = {1, 2}, ba = {2, 1};
  const std::string graph_key =
      SqeCache::GraphKey(ab, expansion::MotifConfig::Both(), 0);
  const std::string base = SqeCache::RunKey(terms, graph_key, ab, 100, 7, 0);
  EXPECT_EQ(SqeCache::RunKey(terms, graph_key, ab, 100, 7, 0), base);
  EXPECT_NE(SqeCache::RunKey(other_terms, graph_key, ab, 100, 7, 0), base);
  EXPECT_NE(SqeCache::RunKey(terms, graph_key, ba, 100, 7, 0), base);  // order!
  EXPECT_NE(SqeCache::RunKey(terms, graph_key, ab, 50, 7, 0), base);
  EXPECT_NE(SqeCache::RunKey(terms, graph_key, ab, 100, 8, 0), base);
  // Epoch separation holds even when the caller (incorrectly) reuses a
  // stale graph key: the run key repeats the epoch itself.
  EXPECT_NE(SqeCache::RunKey(terms, graph_key, ab, 100, 7, 1), base);
}

// ---- engine determinism -----------------------------------------------------

struct CacheEngineFixture {
  synth::World world;
  synth::Dataset dataset;
  expansion::SqeEngine uncached;
  expansion::SqeEngine cached;

  CacheEngineFixture()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())),
        uncached(&world.kb, &dataset.index, dataset.linker.get(),
                 &dataset.analyzer(), MakeConfig(dataset, false)),
        cached(&world.kb, &dataset.index, dataset.linker.get(),
               &dataset.analyzer(), MakeConfig(dataset, true)) {}

  static expansion::SqeEngineConfig MakeConfig(const synth::Dataset& ds,
                                               bool with_cache) {
    expansion::SqeEngineConfig config;
    config.retriever.mu = ds.retrieval_mu;
    config.cache.enabled = with_cache;
    return config;
  }

  std::vector<expansion::BatchQueryInput> MakeBatch() const {
    std::vector<expansion::BatchQueryInput> batch;
    for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
      batch.push_back({q.text, q.true_entities});
    }
    return batch;
  }
};

CacheEngineFixture& SharedFixture() {
  static CacheEngineFixture& fixture = *new CacheEngineFixture();
  return fixture;
}

void ExpectIdenticalRun(const expansion::SqeRunResult& got,
                        const expansion::SqeRunResult& want, size_t qi) {
  ASSERT_EQ(got.results.size(), want.results.size()) << "query " << qi;
  for (size_t r = 0; r < got.results.size(); ++r) {
    EXPECT_EQ(got.results[r].doc, want.results[r].doc)
        << "query " << qi << " rank " << r;
    EXPECT_EQ(got.results[r].score, want.results[r].score)
        << "query " << qi << " rank " << r;
  }
  EXPECT_EQ(got.graph.query_nodes, want.graph.query_nodes) << "query " << qi;
  ASSERT_EQ(got.graph.expansion_nodes.size(),
            want.graph.expansion_nodes.size())
      << "query " << qi;
  for (size_t e = 0; e < got.graph.expansion_nodes.size(); ++e) {
    EXPECT_EQ(got.graph.expansion_nodes[e].article,
              want.graph.expansion_nodes[e].article);
    EXPECT_EQ(got.graph.expansion_nodes[e].motif_count,
              want.graph.expansion_nodes[e].motif_count);
    EXPECT_EQ(got.graph.expansion_nodes[e].triangular_count,
              want.graph.expansion_nodes[e].triangular_count);
    EXPECT_EQ(got.graph.expansion_nodes[e].square_count,
              want.graph.expansion_nodes[e].square_count);
  }
  EXPECT_EQ(got.graph.total_motifs, want.graph.total_motifs);
  EXPECT_EQ(got.graph.category_nodes, want.graph.category_nodes);
  // The built query, clause by clause and atom by atom.
  ASSERT_EQ(got.query.clauses.size(), want.query.clauses.size())
      << "query " << qi;
  for (size_t c = 0; c < got.query.clauses.size(); ++c) {
    EXPECT_EQ(got.query.clauses[c].weight, want.query.clauses[c].weight);
    ASSERT_EQ(got.query.clauses[c].atoms.size(),
              want.query.clauses[c].atoms.size())
        << "query " << qi << " clause " << c;
    for (size_t a = 0; a < got.query.clauses[c].atoms.size(); ++a) {
      EXPECT_EQ(got.query.clauses[c].atoms[a].weight,
                want.query.clauses[c].atoms[a].weight);
      EXPECT_EQ(got.query.clauses[c].atoms[a].terms,
                want.query.clauses[c].atoms[a].terms);
    }
  }
}

TEST(SqeEngineCacheTest, CachedBitIdenticalToUncachedAcrossThreadCounts) {
  CacheEngineFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 4u);
  constexpr size_t kDepth = 100;
  const auto motifs = expansion::MotifConfig::Both();

  std::vector<expansion::SqeRunResult> reference =
      f.uncached.RunBatch(batch, motifs, kDepth, nullptr);

  // Cold (first pass fills), then warm (pure hits), at several thread
  // counts; every pass must match the uncached reference byte for byte.
  for (size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
    ThreadPool pool(threads);
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<expansion::SqeRunResult> got =
          f.cached.RunBatch(batch, motifs, kDepth, &pool);
      ASSERT_EQ(got.size(), reference.size());
      for (size_t qi = 0; qi < got.size(); ++qi) {
        ExpectIdenticalRun(got[qi], reference[qi], qi);
      }
    }
  }

  expansion::SqeCacheStats stats = f.cached.cache_stats();
  EXPECT_GT(stats.graph.hits, 0u);
  EXPECT_GT(stats.result.hits, 0u);
  EXPECT_GT(stats.result.insertions, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(SqeEngineCacheTest, RunSqeCMatchesUncached) {
  CacheEngineFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 2u);
  for (size_t qi = 0; qi < 2; ++qi) {
    expansion::SqeCRunResult want =
        f.uncached.RunSqeC(batch[qi].text, batch[qi].query_nodes, 100);
    // Twice: the second run is served from the cache.
    for (int pass = 0; pass < 2; ++pass) {
      expansion::SqeCRunResult got =
          f.cached.RunSqeC(batch[qi].text, batch[qi].query_nodes, 100);
      ASSERT_EQ(got.results.size(), want.results.size());
      for (size_t r = 0; r < got.results.size(); ++r) {
        EXPECT_EQ(got.results[r].doc, want.results[r].doc);
        EXPECT_EQ(got.results[r].score, want.results[r].score);
      }
      EXPECT_EQ(got.num_features_t, want.num_features_t);
      EXPECT_EQ(got.num_features_ts, want.num_features_ts);
      EXPECT_EQ(got.num_features_s, want.num_features_s);
    }
  }
}

TEST(SqeEngineCacheTest, GraphCacheSharedAcrossNodeOrderings) {
  // Same node set, different order: one graph entry serves both (the graph
  // key sorts), while the runs stay distinct and each order's output equals
  // its own uncached reference.
  CacheEngineFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 2u);
  ASSERT_FALSE(batch[0].query_nodes.empty());
  ASSERT_FALSE(batch[1].query_nodes.empty());
  // Query nodes are caller-supplied, so a two-node query can be assembled
  // from any two distinct articles of the tiny world.
  std::vector<kb::ArticleId> nodes = {batch[0].query_nodes[0],
                                      batch[1].query_nodes[0]};
  if (nodes[0] == nodes[1]) {
    nodes[1] = static_cast<kb::ArticleId>((nodes[0] + 1) %
                                          f.world.kb.NumArticles());
  }
  std::vector<kb::ArticleId> reversed = {nodes[1], nodes[0]};
  const std::string& text = batch[0].text;
  const auto motifs = expansion::MotifConfig::Both();
  expansion::SqeRunResult fwd_want = f.uncached.RunSqe(text, nodes, motifs, 100);
  expansion::SqeRunResult rev_want =
      f.uncached.RunSqe(text, reversed, motifs, 100);

  expansion::SqeRunResult fwd = f.cached.RunSqe(text, nodes, motifs, 100);
  expansion::SqeRunResult rev = f.cached.RunSqe(text, reversed, motifs, 100);
  ExpectIdenticalRun(fwd, fwd_want, 0);
  ExpectIdenticalRun(rev, rev_want, 1);
}

// ---- one shared cache across snapshot epochs --------------------------------

// Two engines with different configurations (distinct retriever smoothing,
// standing in for two ingested snapshot generations) borrow ONE cache under
// different epochs. Entries written by epoch 1 must never be served to
// epoch 2 — the first epoch-2 run is a full miss even though epoch 1 just
// cached the identical query — while within each epoch the warm hit is
// bit-identical to that epoch's own uncached reference.
TEST(SqeEngineCacheTest, SharedCacheNeverServesAcrossEpochs) {
  CacheEngineFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 2u);

  expansion::SqeCache shared(expansion::SqeCacheOptions{});
  auto epoch_config = [&](uint64_t epoch) {
    expansion::SqeEngineConfig config;
    // Epoch 2 sees a different smoothing: if it ever served an epoch-1
    // entry, the score bits would not survive the oracle comparison below.
    config.retriever.mu = f.dataset.retrieval_mu * (1.0 + 0.5 * (epoch - 1));
    config.shared_cache = &shared;
    config.cache_epoch = epoch;
    return config;
  };
  expansion::SqeEngine engine1(&f.world.kb, &f.dataset.index,
                               f.dataset.linker.get(), &f.dataset.analyzer(),
                               epoch_config(1));
  expansion::SqeEngine engine2(&f.world.kb, &f.dataset.index,
                               f.dataset.linker.get(), &f.dataset.analyzer(),
                               epoch_config(2));
  expansion::SqeEngine uncached2(&f.world.kb, &f.dataset.index,
                                 f.dataset.linker.get(),
                                 &f.dataset.analyzer(),
                                 [&] {
                                   auto config = epoch_config(2);
                                   config.shared_cache = nullptr;
                                   return config;
                                 }());

  const auto motifs = expansion::MotifConfig::Both();
  const auto& q = batch[0];

  // Epoch 1 populates the shared cache for this query.
  expansion::SqeRunResult first =
      engine1.RunSqe(q.text, q.query_nodes, motifs, 100);
  const expansion::SqeCacheStats after_epoch1 = shared.Stats();
  EXPECT_EQ(after_epoch1.result.hits, 0u);
  EXPECT_EQ(after_epoch1.result.insertions, 1u);

  // Epoch 2, same query: misses both levels (epoch-prefixed keys), computes
  // fresh, and matches its own uncached reference bit for bit — and differs
  // from epoch 1's scores, proving the miss mattered.
  expansion::SqeRunResult cold2 =
      engine2.RunSqe(q.text, q.query_nodes, motifs, 100);
  const expansion::SqeCacheStats after_cold2 = shared.Stats();
  EXPECT_EQ(after_cold2.result.hits, 0u);
  EXPECT_EQ(after_cold2.graph.hits, after_epoch1.graph.hits)
      << "epoch 2 must not hit epoch 1's graph entry";
  EXPECT_EQ(after_cold2.result.insertions, 2u);
  expansion::SqeRunResult want2 =
      uncached2.RunSqe(q.text, q.query_nodes, motifs, 100);
  ExpectIdenticalRun(cold2, want2, 0);
  ASSERT_FALSE(first.results.empty());
  ASSERT_FALSE(cold2.results.empty());
  bool any_score_differs = false;
  for (size_t r = 0; r < std::min(first.results.size(), cold2.results.size());
       ++r) {
    if (first.results[r].score != cold2.results[r].score) {
      any_score_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_score_differs);

  // Warm within-epoch repeats hit and stay bit-identical to the same
  // uncached reference.
  expansion::SqeRunResult warm2 =
      engine2.RunSqe(q.text, q.query_nodes, motifs, 100);
  ExpectIdenticalRun(warm2, want2, 0);
  const expansion::SqeCacheStats after_warm2 = shared.Stats();
  EXPECT_EQ(after_warm2.result.hits, after_cold2.result.hits + 1);

  // And epoch 1's own entry is still there, untouched by epoch 2's traffic.
  expansion::SqeRunResult warm1 =
      engine1.RunSqe(q.text, q.query_nodes, motifs, 100);
  ExpectIdenticalRun(warm1, first, 0);
  EXPECT_EQ(shared.Stats().result.hits, after_warm2.result.hits + 1);
}

}  // namespace
}  // namespace sqe
