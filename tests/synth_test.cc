#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "kb/kb_stats.h"
#include "sqe/motif_finder.h"
#include "synth/collection.h"
#include "synth/dataset.h"
#include "synth/query_gen.h"
#include "synth/wordgen.h"
#include "text/porter_stemmer.h"
#include "synth/world.h"

namespace sqe::synth {
namespace {

const World& TestWorld() {
  static const World& world =
      *new World(World::Generate(TinyWorldOptions()));
  return world;
}

// ---- word generator ----------------------------------------------------------

TEST(WordGeneratorTest, WordsAreUniqueAndDeterministic) {
  WordGenerator a(7), b(7);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    std::string wa = a.NextWord();
    EXPECT_EQ(wa, b.NextWord());
    EXPECT_TRUE(seen.insert(wa).second) << "duplicate: " << wa;
    EXPECT_GE(wa.size(), 2u);
  }
  EXPECT_EQ(a.NumGenerated(), 500u);
}

TEST(WordGeneratorTest, WordsAreStemStable) {
  // Every generated word must equal its own Porter stem so document, query
  // and title term spaces line up.
  WordGenerator gen(11);
  for (int i = 0; i < 300; ++i) {
    std::string w = gen.NextWord();
    EXPECT_EQ(text::PorterStem(w), w) << w;
  }
}

// ---- world ----------------------------------------------------------------------

TEST(WorldTest, DeterministicForSameSeed) {
  World a = World::Generate(TinyWorldOptions());
  World b = World::Generate(TinyWorldOptions());
  ASSERT_EQ(a.NumConcepts(), b.NumConcepts());
  EXPECT_EQ(a.kb.NumArticles(), b.kb.NumArticles());
  EXPECT_EQ(a.kb.NumArticleLinks(), b.kb.NumArticleLinks());
  for (size_t i = 0; i < a.NumConcepts(); i += 7) {
    EXPECT_EQ(a.concepts[i].name_terms, b.concepts[i].name_terms);
    EXPECT_EQ(a.concepts[i].group, b.concepts[i].group);
  }
}

TEST(WorldTest, ConceptsMapToArticles) {
  const World& world = TestWorld();
  for (uint32_t ci = 0; ci < world.NumConcepts(); ++ci) {
    const Concept& c = world.concepts[ci];
    EXPECT_LT(c.article, world.kb.NumArticles());
    EXPECT_EQ(world.ConceptOf(c.article), ci);
    EXPECT_FALSE(c.name_terms.empty());
    EXPECT_FALSE(c.query_alias.empty());
    EXPECT_FALSE(world.kb.CategoriesOf(c.article).empty());
  }
  EXPECT_EQ(world.ConceptOf(UINT32_MAX), UINT32_MAX);
}

TEST(WorldTest, GroupMembersShareCategoryProfiles) {
  const World& world = TestWorld();
  size_t checked = 0;
  for (const auto& members : world.group_members) {
    if (members.size() < 2) continue;
    // Group members were *created* with identical profiles; spurious-twin
    // pollution can only add categories, so the original profile of the
    // group (intersection) stays shared. Verify same cluster membership.
    for (size_t i = 1; i < members.size(); ++i) {
      EXPECT_EQ(world.concepts[members[i]].cluster,
                world.concepts[members[0]].cluster);
      EXPECT_EQ(world.concepts[members[i]].group,
                world.concepts[members[0]].group);
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(WorldTest, TriangularCarriersExist) {
  // Motif matching on the generated world must find same-group partners.
  const World& world = TestWorld();
  expansion::MotifFinder finder(&world.kb);
  size_t with_triangles = 0;
  for (uint32_t ci = 0; ci < world.NumConcepts(); ci += 3) {
    auto matches = finder.FindTriangular(world.concepts[ci].article);
    if (!matches.empty()) ++with_triangles;
  }
  EXPECT_GT(with_triangles, world.NumConcepts() / 12);
}

TEST(WorldTest, SquareCarriersExist) {
  const World& world = TestWorld();
  expansion::MotifFinder finder(&world.kb);
  size_t with_squares = 0;
  for (uint32_t ci = 0; ci < world.NumConcepts(); ci += 3) {
    if (!finder.FindSquare(world.concepts[ci].article).empty()) {
      ++with_squares;
    }
  }
  EXPECT_GT(with_squares, world.NumConcepts() / 12);
}

TEST(WorldTest, ReciprocalLinksPresent) {
  const World& world = TestWorld();
  kb::KbStats stats = kb::ComputeKbStats(world.kb);
  EXPECT_GT(stats.num_reciprocal_pairs, world.NumConcepts());
}

TEST(WorldTest, VocabulariesAreDisjointWhereRequired) {
  const World& world = TestWorld();
  std::unordered_set<std::string> english;
  for (const auto& pool : world.topic_terms) {
    english.insert(pool.begin(), pool.end());
  }
  english.insert(world.noise_terms.begin(), world.noise_terms.end());
  for (const auto& pool : world.foreign_topic_terms) {
    for (const std::string& w : pool) {
      EXPECT_FALSE(english.contains(w)) << w;
    }
  }
  for (const Concept& c : world.concepts) {
    for (const std::string& w : c.foreign_name_terms) {
      EXPECT_FALSE(english.contains(w)) << w;
    }
  }
}

// ---- collection --------------------------------------------------------------

TEST(CollectionTest, GeneratesRequestedShape) {
  const World& world = TestWorld();
  CollectionOptions options;
  options.seed = 3;
  options.num_docs = 400;
  Collection collection = GenerateCollection(world, options);
  ASSERT_EQ(collection.docs.size(), 400u);

  size_t english = 0;
  size_t indexed_docs = 0;
  for (const GeneratedDoc& doc : collection.docs) {
    EXPECT_FALSE(doc.text.empty());
    EXPECT_LT(doc.primary_concept, world.NumConcepts());
    english += doc.english ? 1 : 0;
    ++indexed_docs;
  }
  EXPECT_EQ(indexed_docs, 400u);
  // ~60% English within tolerance.
  EXPECT_GT(english, 400 * 0.45);
  EXPECT_LT(english, 400 * 0.75);

  // docs_of_concept is the exact inverse mapping.
  size_t total = 0;
  for (uint32_t c = 0; c < world.NumConcepts(); ++c) {
    for (uint32_t d : collection.docs_of_concept[c]) {
      EXPECT_EQ(collection.docs[d].primary_concept, c);
    }
    total += collection.docs_of_concept[c].size();
  }
  EXPECT_EQ(total, 400u);
}

TEST(CollectionTest, DeterministicForSameSeed) {
  const World& world = TestWorld();
  CollectionOptions options;
  options.num_docs = 50;
  Collection a = GenerateCollection(world, options);
  Collection b = GenerateCollection(world, options);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(a.docs[i].text, b.docs[i].text);
  }
}

TEST(CollectionTest, StreamingMatchesMaterializedExactly) {
  const World& world = TestWorld();
  CollectionOptions options;
  options.num_docs = 120;
  Collection materialized = GenerateCollection(world, options);
  size_t streamed = 0;
  StreamCollection(world, options, [&](GeneratedDoc doc, size_t d) {
    ASSERT_EQ(d, streamed);
    ASSERT_LT(d, materialized.docs.size());
    EXPECT_EQ(doc.external_id, materialized.docs[d].external_id);
    EXPECT_EQ(doc.primary_concept, materialized.docs[d].primary_concept);
    EXPECT_EQ(doc.english, materialized.docs[d].english);
    EXPECT_EQ(doc.text, materialized.docs[d].text);
    ++streamed;
  });
  EXPECT_EQ(streamed, materialized.docs.size());
}

TEST(CollectionTest, ExclusionLeavesConceptsUncovered) {
  const World& world = TestWorld();
  CollectionOptions options;
  options.num_docs = 500;
  options.excluded_concept_modulo = 10;
  options.excluded_concept_residue = 3;
  Collection collection = GenerateCollection(world, options);
  for (uint32_t c = 3; c < world.NumConcepts(); c += 10) {
    EXPECT_TRUE(collection.docs_of_concept[c].empty()) << c;
  }
}

TEST(CollectionTest, ConceptRangeRespected) {
  const World& world = TestWorld();
  CollectionOptions options;
  options.num_docs = 200;
  options.concept_min = 0;
  options.concept_max = static_cast<uint32_t>(world.NumConcepts() / 2);
  Collection collection = GenerateCollection(world, options);
  for (const GeneratedDoc& doc : collection.docs) {
    EXPECT_LT(doc.primary_concept, options.concept_max);
  }
}

// ---- query generation -----------------------------------------------------------

TEST(QueryGenTest, ProducesRequestedCounts) {
  const World& world = TestWorld();
  CollectionOptions coll_options;
  coll_options.num_docs = 800;
  coll_options.excluded_concept_modulo = 9;
  Collection collection = GenerateCollection(world, coll_options);

  QueryGenOptions options;
  options.num_queries = 20;
  options.num_zero_relevant = 4;
  QuerySet qs = GenerateQueries(world, collection, options);

  ASSERT_EQ(qs.queries.size(), 20u);
  EXPECT_EQ(qs.qrels.NumQueries(), 20u);
  EXPECT_EQ(qs.qrels.NumQueriesWithoutRelevant(), 4u);

  std::set<uint32_t> intents;
  for (const GeneratedQuery& q : qs.queries) {
    EXPECT_FALSE(q.text.empty());
    ASSERT_EQ(q.true_entities.size(), 1u);
    EXPECT_EQ(q.true_entities[0],
              world.concepts[q.intent_concept].article);
    intents.insert(q.intent_concept);
  }
  EXPECT_EQ(intents.size(), 20u);  // distinct intents
}

TEST(QueryGenTest, GroundTruthGraphsContainPartners) {
  const World& world = TestWorld();
  CollectionOptions coll_options;
  coll_options.num_docs = 600;
  Collection collection = GenerateCollection(world, coll_options);
  QueryGenOptions options;
  options.num_queries = 10;
  QuerySet qs = GenerateQueries(world, collection, options);

  for (const GeneratedQuery& q : qs.queries) {
    const auto& graph = q.ground_truth_graph;
    ASSERT_EQ(graph.query_nodes.size(), 1u);
    EXPECT_FALSE(graph.expansion_nodes.empty());
    for (const expansion::ExpansionNode& node : graph.expansion_nodes) {
      EXPECT_NE(node.article, graph.query_nodes[0]);
      EXPECT_GT(node.motif_count, 0u);
    }
    // Sorted by descending motif count.
    for (size_t i = 1; i < graph.expansion_nodes.size(); ++i) {
      EXPECT_GE(graph.expansion_nodes[i - 1].motif_count,
                graph.expansion_nodes[i].motif_count);
    }
  }
}

TEST(QueryGenTest, RelevanceComesFromGroundTruthConcepts) {
  const World& world = TestWorld();
  CollectionOptions coll_options;
  coll_options.num_docs = 600;
  Collection collection = GenerateCollection(world, coll_options);
  QueryGenOptions options;
  options.num_queries = 10;
  QuerySet qs = GenerateQueries(world, collection, options);

  for (size_t qi = 0; qi < qs.queries.size(); ++qi) {
    const GeneratedQuery& q = qs.queries[qi];
    std::unordered_set<uint32_t> allowed = {q.intent_concept};
    for (const auto& node : q.ground_truth_graph.expansion_nodes) {
      allowed.insert(world.ConceptOf(node.article));
    }
    for (index::DocId d : qs.qrels.RelevantDocs(qi)) {
      EXPECT_TRUE(allowed.contains(collection.docs[d].primary_concept));
    }
  }
}

// ---- dataset assembly -------------------------------------------------------------

TEST(DatasetTest, TinyDatasetIsCoherent) {
  const World& world = TestWorld();
  Dataset ds = BuildDataset(world, TinyDatasetSpec());
  EXPECT_EQ(ds.index.NumDocuments(), ds.collection.docs.size());
  EXPECT_EQ(ds.NumQueries(), 12u);
  ASSERT_NE(ds.linker, nullptr);
  // The linker resolves canonical titles to the right article.
  const Concept& c = world.concepts[ds.query_set.queries[0].intent_concept];
  auto linked = ds.linker->Link(world.kb.ArticleTitle(c.article));
  ASSERT_FALSE(linked.empty());
  EXPECT_EQ(linked[0].article, c.article);
}

TEST(DatasetTest, PaperSpecsMirrorPaperStatistics) {
  DatasetSpec clef = ImageClefSpec();
  DatasetSpec chic12 = Chic2012Spec();
  DatasetSpec chic13 = Chic2013Spec();
  EXPECT_EQ(clef.collection.num_docs, 20000u);
  EXPECT_EQ(chic12.collection.num_docs, 60000u);
  EXPECT_EQ(chic12.collection.num_docs, chic13.collection.num_docs);
  EXPECT_EQ(clef.queries.num_zero_relevant, 0u);
  EXPECT_EQ(chic12.queries.num_zero_relevant, 14u);
  EXPECT_EQ(chic13.queries.num_zero_relevant, 1u);
  // Assessor strictness ordering: CLEF most lenient, CHiC 2012 strictest.
  EXPECT_GT(clef.queries.p_triangular_relevant,
            chic13.queries.p_triangular_relevant);
  EXPECT_GT(chic13.queries.p_triangular_relevant,
            chic12.queries.p_triangular_relevant);
}

}  // namespace
}  // namespace sqe::synth
