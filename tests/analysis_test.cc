#include <gtest/gtest.h>

#include "analysis/cycle_enumerator.h"
#include "analysis/structure_analyzer.h"
#include "kb/kb_builder.h"
#include "sqe/motif_finder.h"

namespace sqe::analysis {
namespace {

// The canonical triangular motif: q <-> a reciprocal, both in category c.
struct TriangleFixture {
  kb::KnowledgeBase kb;
  kb::ArticleId q, a;
  kb::CategoryId c;

  TriangleFixture() {
    kb::KbBuilder builder;
    q = builder.AddArticle("Q");
    a = builder.AddArticle("A");
    c = builder.AddCategory("C");
    builder.AddReciprocalLink(q, a);
    builder.AddMembership(q, c);
    builder.AddMembership(a, c);
    kb = std::move(builder).Build();
  }
};

TEST(InducedSubgraphTest, EdgeMultiplicities) {
  TriangleFixture f;
  InducedSubgraph graph(f.kb, {kb::NodeRef::Article(f.q),
                               kb::NodeRef::Article(f.a),
                               kb::NodeRef::Category(f.c)});
  // q<->a: both directions = multiplicity 2.
  EXPECT_EQ(graph.EdgeMultiplicity(0, 1), 2);
  EXPECT_EQ(graph.EdgeMultiplicity(1, 0), 2);
  // memberships: multiplicity 1.
  EXPECT_EQ(graph.EdgeMultiplicity(0, 2), 1);
  EXPECT_EQ(graph.EdgeMultiplicity(1, 2), 1);
  EXPECT_EQ(graph.Neighbors(0).size(), 2u);
  EXPECT_EQ(graph.IndexOf(kb::NodeRef::Category(f.c)), 2u);
  EXPECT_EQ(graph.IndexOf(kb::NodeRef::Category(999)),
            static_cast<size_t>(-1));
}

TEST(CycleEnumeratorTest, FindsTheTriangleOnce) {
  TriangleFixture f;
  InducedSubgraph graph(f.kb, {kb::NodeRef::Article(f.q),
                               kb::NodeRef::Article(f.a),
                               kb::NodeRef::Category(f.c)});
  auto cycles = EnumerateCyclesThrough(graph, 0, 3);
  ASSERT_EQ(cycles.size(), 1u);
  const Cycle& cycle = cycles[0];
  EXPECT_EQ(cycle.Length(), 3u);
  EXPECT_EQ(cycle.NumCategoryNodes(), 1u);
  // Edges: q-a (2) + a-c (1) + c-q (1) = 4; extra density (4-3)/3.
  EXPECT_EQ(cycle.total_edges, 4u);
  EXPECT_NEAR(cycle.ExtraEdgeDensity(), 1.0 / 3.0, 1e-12);
}

TEST(CycleEnumeratorTest, SquareMotifCycle) {
  kb::KbBuilder builder;
  kb::ArticleId q = builder.AddArticle("Q");
  kb::ArticleId a = builder.AddArticle("A");
  kb::CategoryId cq = builder.AddCategory("CQ");
  kb::CategoryId ca = builder.AddCategory("CA");
  builder.AddReciprocalLink(q, a);
  builder.AddMembership(q, cq);
  builder.AddMembership(a, ca);
  builder.AddCategoryLink(cq, ca);
  kb::KnowledgeBase kb = std::move(builder).Build();

  InducedSubgraph graph(kb, {kb::NodeRef::Article(q), kb::NodeRef::Article(a),
                             kb::NodeRef::Category(cq),
                             kb::NodeRef::Category(ca)});
  auto cycles = EnumerateCyclesThrough(graph, 0, 4);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].NumCategoryNodes(), 2u);
  // Edges: q-a(2) + a-ca(1) + ca-cq(1) + cq-q(1) = 5; density (5-4)/4.
  EXPECT_EQ(cycles[0].total_edges, 5u);
  EXPECT_NEAR(cycles[0].ExtraEdgeDensity(), 0.25, 1e-12);
}

TEST(CycleEnumeratorTest, NoCycleWhenEdgeMissing) {
  kb::KbBuilder builder;
  kb::ArticleId q = builder.AddArticle("Q");
  kb::ArticleId a = builder.AddArticle("A");
  kb::CategoryId c = builder.AddCategory("C");
  builder.AddReciprocalLink(q, a);
  builder.AddMembership(q, c);  // a is NOT in c: no triangle
  kb::KnowledgeBase kb = std::move(builder).Build();
  InducedSubgraph graph(kb, {kb::NodeRef::Article(q), kb::NodeRef::Article(a),
                             kb::NodeRef::Category(c)});
  EXPECT_TRUE(EnumerateCyclesThrough(graph, 0, 3).empty());
}

TEST(CycleEnumeratorTest, CountsDistinctCyclesThroughStart) {
  // Two triangles sharing the start node: q-a-c1-q and q-a-c2-q.
  kb::KbBuilder builder;
  kb::ArticleId q = builder.AddArticle("Q");
  kb::ArticleId a = builder.AddArticle("A");
  kb::CategoryId c1 = builder.AddCategory("C1");
  kb::CategoryId c2 = builder.AddCategory("C2");
  builder.AddReciprocalLink(q, a);
  for (kb::CategoryId c : {c1, c2}) {
    builder.AddMembership(q, c);
    builder.AddMembership(a, c);
  }
  kb::KnowledgeBase kb = std::move(builder).Build();
  InducedSubgraph graph(kb, {kb::NodeRef::Article(q), kb::NodeRef::Article(a),
                             kb::NodeRef::Category(c1),
                             kb::NodeRef::Category(c2)});
  auto len3 = EnumerateCyclesThrough(graph, 0, 3);
  EXPECT_EQ(len3.size(), 2u);
  // Plus length-4 cycles q-c1-a-c2-q etc.
  auto len4 = EnumerateCyclesThrough(graph, 0, 4);
  EXPECT_EQ(len4.size(), 1u);
}

// ---- structure analyzer -----------------------------------------------------

TEST(StructureAnalyzerTest, AnalyzesMotifQueryGraph) {
  TriangleFixture f;
  expansion::MotifFinder finder(&f.kb);
  std::vector<kb::ArticleId> nodes = {f.q};
  expansion::QueryGraph graph =
      finder.BuildQueryGraph(nodes, expansion::MotifConfig::Both());
  ASSERT_EQ(graph.expansion_nodes.size(), 1u);

  StructureReport report = AnalyzeQueryGraph(f.kb, graph);
  const PerLengthStats& len3 = report.per_length[0];
  EXPECT_EQ(len3.cycle_length, 3u);
  EXPECT_EQ(len3.num_cycles, 1u);
  EXPECT_NEAR(len3.avg_category_ratio, 1.0 / 3.0, 1e-12);
  ASSERT_EQ(len3.articles_on_cycles.size(), 1u);
  EXPECT_EQ(len3.articles_on_cycles[0], f.a);
  // No length-4/5 cycles in a bare triangle.
  EXPECT_EQ(report.per_length[1].num_cycles, 0u);
  EXPECT_EQ(report.per_length[2].num_cycles, 0u);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(StructureAnalyzerTest, AggregateWeightsByCycleCount) {
  StructureReport r1, r2;
  r1.per_length[0] = {3, 2, 0.30, 0.10, {}};
  r2.per_length[0] = {3, 6, 0.50, 0.50, {}};
  StructureReport agg = AggregateReports({r1, r2});
  EXPECT_EQ(agg.per_length[0].num_cycles, 8u);
  EXPECT_NEAR(agg.per_length[0].avg_category_ratio,
              (0.30 * 2 + 0.50 * 6) / 8.0, 1e-12);
  EXPECT_NEAR(agg.per_length[0].avg_extra_edge_density,
              (0.10 * 2 + 0.50 * 6) / 8.0, 1e-12);
}

TEST(StructureAnalyzerTest, EmptyGraphYieldsZeroes) {
  TriangleFixture f;
  expansion::QueryGraph graph;
  graph.query_nodes.push_back(f.q);
  StructureReport report = AnalyzeQueryGraph(f.kb, graph);
  for (const auto& stats : report.per_length) {
    EXPECT_EQ(stats.num_cycles, 0u);
  }
}

}  // namespace
}  // namespace sqe::analysis
