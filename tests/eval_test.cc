#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/qrels.h"
#include "eval/report.h"
#include "eval/ttest.h"

namespace sqe::eval {
namespace {

retrieval::ResultList MakeResults(std::initializer_list<index::DocId> docs) {
  retrieval::ResultList out;
  double score = 100.0;
  for (index::DocId d : docs) out.push_back({d, score -= 1.0});
  return out;
}

// ---- qrels ---------------------------------------------------------------------

TEST(QrelsTest, BasicBookkeeping) {
  Qrels qrels(3);
  qrels.AddRelevant(0, 10);
  qrels.AddRelevant(0, 11);
  qrels.AddRelevant(2, 5);
  EXPECT_TRUE(qrels.IsRelevant(0, 10));
  EXPECT_FALSE(qrels.IsRelevant(0, 12));
  EXPECT_EQ(qrels.NumRelevant(0), 2u);
  EXPECT_EQ(qrels.NumRelevant(1), 0u);
  EXPECT_NEAR(qrels.AverageRelevantPerQuery(), 1.0, 1e-12);
  EXPECT_EQ(qrels.NumQueriesWithoutRelevant(), 1u);
}

// ---- precision metrics -----------------------------------------------------------

TEST(MetricsTest, PrecisionAtKCountsHitsOverK) {
  std::unordered_set<index::DocId> relevant = {1, 3, 5};
  retrieval::ResultList results = MakeResults({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 1), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 5), 0.6);
  // Short lists are padded with non-relevant (TrecEval semantics).
  EXPECT_DOUBLE_EQ(PrecisionAtK(results, relevant, 10), 0.3);
}

TEST(MetricsTest, PrecisionWithNoRelevantIsZero) {
  std::unordered_set<index::DocId> relevant;
  EXPECT_DOUBLE_EQ(PrecisionAtK(MakeResults({1, 2}), relevant, 5), 0.0);
}

TEST(MetricsTest, AveragePrecisionTextbookExample) {
  // Relevant at ranks 1 and 3 of {1,2,3}; |relevant| = 2:
  // AP = (1/1 + 2/3)/2 = 5/6.
  std::unordered_set<index::DocId> relevant = {10, 30};
  retrieval::ResultList results = MakeResults({10, 20, 30});
  EXPECT_NEAR(AveragePrecision(results, relevant), 5.0 / 6.0, 1e-12);
  EXPECT_DOUBLE_EQ(AveragePrecision(results, {}), 0.0);
}

TEST(MetricsTest, PerQueryAndMeans) {
  Qrels qrels(2);
  qrels.AddRelevant(0, 1);
  qrels.AddRelevant(1, 2);
  std::vector<retrieval::ResultList> runs = {MakeResults({1, 9}),
                                             MakeResults({9, 9})};
  auto per_query = PerQueryPrecision(runs, qrels, 1);
  ASSERT_EQ(per_query.size(), 2u);
  EXPECT_DOUBLE_EQ(per_query[0], 1.0);
  EXPECT_DOUBLE_EQ(per_query[1], 0.0);
  EXPECT_DOUBLE_EQ(Mean(per_query), 0.5);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);

  auto tops = MeanPrecisionAtTops(runs, qrels);
  EXPECT_DOUBLE_EQ(tops[0], 0.1);  // P@5: 1 hit in 5 for q0, 0 for q1

  double map = MeanAveragePrecision(runs, qrels);
  EXPECT_NEAR(map, 0.5, 1e-12);
}

// ---- t-test ----------------------------------------------------------------------

TEST(TTestTest, IncompleteBetaKnownValues) {
  // I_x(a,b) closed forms: I_x(1,1) = x; I_x(1,2) = 1-(1-x)^2... (a=1:
  // I_x(1,b) = 1-(1-x)^b).
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 1, 0.3), 0.3, 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(1, 2, 0.3), 1 - 0.49, 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(2, 1, 0.3), 0.09, 1e-10);
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 3.5, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(RegularizedIncompleteBeta(2.5, 3.5, 1.0), 1.0, 1e-12);
  // Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(RegularizedIncompleteBeta(2.0, 5.0, 0.4),
              1.0 - RegularizedIncompleteBeta(5.0, 2.0, 0.6), 1e-10);
}

TEST(TTestTest, StudentPValuesMatchTables) {
  // Two-sided critical values: t=2.262, df=9 -> p=0.05.
  EXPECT_NEAR(StudentTTwoSidedPValue(2.262, 9), 0.05, 2e-3);
  // t=1.96, df -> large approximates normal: p ~0.05 for df=1000.
  EXPECT_NEAR(StudentTTwoSidedPValue(1.962, 1000), 0.05, 2e-3);
  // t = 0 -> p = 1.
  EXPECT_NEAR(StudentTTwoSidedPValue(0.0, 10), 1.0, 1e-12);
}

TEST(TTestTest, PairedTTestHandComputed) {
  // Differences: {1, 2, 3} -> mean 2, sd 1, se = 1/sqrt(3), t = 2*sqrt(3).
  std::vector<double> treatment = {2, 4, 6};
  std::vector<double> baseline = {1, 2, 3};
  TTestResult result = PairedTTest(treatment, baseline);
  EXPECT_NEAR(result.t_statistic, 2.0 * std::sqrt(3.0), 1e-12);
  EXPECT_EQ(result.degrees_of_freedom, 2u);
  EXPECT_NEAR(result.mean_difference, 2.0, 1e-12);
  // p for t=3.464, df=2 is ~0.0742: not significant at 0.05.
  EXPECT_NEAR(result.p_value, 0.0742, 2e-3);
  EXPECT_FALSE(result.Significant());
}

TEST(TTestTest, ClearlySignificantDifference) {
  std::vector<double> treatment, baseline;
  for (int i = 0; i < 30; ++i) {
    treatment.push_back(0.5 + 0.01 * (i % 3));
    baseline.push_back(0.1 + 0.01 * (i % 3));
  }
  TTestResult result = PairedTTest(treatment, baseline);
  EXPECT_TRUE(result.Significant());
  EXPECT_GT(result.mean_difference, 0.0);
}

TEST(TTestTest, DegenerateCases) {
  // Identical samples: p = 1.
  std::vector<double> same = {0.2, 0.4, 0.6};
  EXPECT_EQ(PairedTTest(same, same).p_value, 1.0);
  // Constant non-zero difference: p = 0 (point mass off the null).
  std::vector<double> shifted = {0.3, 0.5, 0.7};
  EXPECT_EQ(PairedTTest(shifted, same).p_value, 0.0);
  // Too few pairs: p = 1.
  EXPECT_EQ(PairedTTest({1.0}, {0.0}).p_value, 1.0);
}

class TTestSymmetry : public ::testing::TestWithParam<size_t> {};

TEST_P(TTestSymmetry, SwappingSamplesNegatesT) {
  // Property: t(a,b) = -t(b,a), same p.
  std::vector<double> a, b;
  for (size_t i = 0; i < GetParam(); ++i) {
    a.push_back(0.1 * static_cast<double>(i % 7));
    b.push_back(0.05 * static_cast<double>((i * 3) % 5));
  }
  TTestResult ab = PairedTTest(a, b);
  TTestResult ba = PairedTTest(b, a);
  EXPECT_NEAR(ab.t_statistic, -ba.t_statistic, 1e-9);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TTestSymmetry,
                         ::testing::Values(5u, 10u, 50u, 200u));

// ---- report --------------------------------------------------------------------

TEST(ReportTest, DaggersOnlyForSignificantImprovement) {
  const size_t n = 40;
  Qrels qrels(n);
  std::vector<retrieval::ResultList> good(n), bad(n), equal(n);
  for (size_t q = 0; q < n; ++q) {
    qrels.AddRelevant(q, 1);
    qrels.AddRelevant(q, 2);
    good[q] = MakeResults({1, 2, 9, 9, 9});
    bad[q] = MakeResults({9, 9, 9, 1, 9});
    equal[q] = MakeResults({9, 9, 9, 1, 9});
  }
  std::vector<NamedRun> systems;
  systems.push_back({"baseline", bad, true, false});
  systems.push_back({"treatment", good, false, false});
  systems.push_back({"same", equal, false, false});
  systems.push_back({"skipped", good, false, true});

  PrecisionTable table = EvaluateTable(systems, qrels);
  EXPECT_TRUE(table.significant[1][0]);   // treatment at P@5
  EXPECT_FALSE(table.significant[2][0]);  // identical to baseline
  EXPECT_FALSE(table.significant[3][0]);  // skip_significance
  EXPECT_FALSE(table.significant[0][0]);  // baselines never dagger
  EXPECT_GT(table.means[1][0], table.means[0][0]);
  EXPECT_FALSE(table.ToString("title").empty());
}

TEST(ReportTest, PercentImprovementOverBest) {
  const size_t n = 10;
  Qrels qrels(n);
  std::vector<retrieval::ResultList> base_a(n), base_b(n), treat(n);
  for (size_t q = 0; q < n; ++q) {
    qrels.AddRelevant(q, 1);
    qrels.AddRelevant(q, 2);
    qrels.AddRelevant(q, 3);
    qrels.AddRelevant(q, 4);
    base_a[q] = MakeResults({1, 9, 9, 9, 9});        // P@5 = 0.2
    base_b[q] = MakeResults({1, 2, 9, 9, 9});        // P@5 = 0.4
    treat[q] = MakeResults({1, 2, 3, 4, 9});         // P@5 = 0.8
  }
  std::vector<NamedRun> systems;
  systems.push_back({"a", base_a, true, false});
  systems.push_back({"b", base_b, true, false});
  systems.push_back({"t", treat, false, false});
  PrecisionTable table = EvaluateTable(systems, qrels);
  auto imp = PercentImprovementOverBest(table, {0, 1}, 2);
  EXPECT_NEAR(imp[0], 100.0, 1e-9);  // 0.8 vs best baseline 0.4
}

}  // namespace
}  // namespace sqe::eval
