// The deadlock detector's contract (src/common/deadlock_detector.h): in
// debug builds, the first lock-rank violation or dynamically observed
// lock-order inversion aborts with both lock names on one line, before the
// acquisition can block. Death tests run the offending order in a forked
// child, so the parent's lock-class graph is never poisoned.
//
// Under NDEBUG the detector is compiled out entirely (release hot paths
// pay nothing), so this whole file degrades to one skipped test.
#include <thread>

#include <gtest/gtest.h>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/deadlock_detector.h"
#include "common/lock_ranks.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"

namespace sqe {
namespace {

#ifdef NDEBUG

TEST(DeadlockTest, DetectorCompiledOutInRelease) {
  GTEST_SKIP() << "deadlock detector is debug-only; nothing to test under "
                  "NDEBUG";
}

#else  // !NDEBUG

TEST(DeadlockTest, NamedMutexExposesName) {
  Mutex named{"deadlock_test.named", 7};
  EXPECT_STREQ(named.name(), "deadlock_test.named");
  Mutex unnamed;
  EXPECT_STREQ(unnamed.name(), "(unnamed)");
}

TEST(DeadlockTest, HeldStackTracksLockUnlock) {
  Mutex a{"deadlock_test.track_a"};
  Mutex b{"deadlock_test.track_b"};
  EXPECT_EQ(lockdep::HeldLockCountForTest(), 0u);
  a.Lock();
  EXPECT_EQ(lockdep::HeldLockCountForTest(), 1u);
  b.Lock();
  EXPECT_EQ(lockdep::HeldLockCountForTest(), 2u);
  // Out-of-order release is legal and tracked.
  a.Unlock();
  EXPECT_EQ(lockdep::HeldLockCountForTest(), 1u);
  b.Unlock();
  EXPECT_EQ(lockdep::HeldLockCountForTest(), 0u);
}

TEST(DeadlockTest, ConsistentOrderIsQuiet) {
  Mutex outer{"deadlock_test.quiet_outer", 1};
  Mutex inner{"deadlock_test.quiet_inner", 2};
  for (int i = 0; i < 3; ++i) {
    MutexLock a(&outer);
    MutexLock b(&inner);
  }
  // Each alone, in any order, is also fine.
  { MutexLock b(&inner); }
  { MutexLock a(&outer); }
}

TEST(DeadlockTest, EdgesAccumulateInTheClassGraph) {
  Mutex a{"deadlock_test.edge_a"};
  Mutex b{"deadlock_test.edge_b"};
  const size_t before = lockdep::RecordedEdgeCountForTest();
  {
    MutexLock la(&a);
    MutexLock lb(&b);
  }
  EXPECT_GE(lockdep::RecordedEdgeCountForTest(), before + 1);
  {
    // Same order again: no new edge.
    const size_t mid = lockdep::RecordedEdgeCountForTest();
    MutexLock la(&a);
    MutexLock lb(&b);
    EXPECT_EQ(lockdep::RecordedEdgeCountForTest(), mid);
  }
}

TEST(DeadlockTest, TryLockRecordsNoEdges) {
  Mutex a{"deadlock_test.try_a"};
  Mutex b{"deadlock_test.try_b"};
  const size_t before = lockdep::RecordedEdgeCountForTest();
  ASSERT_TRUE(a.TryLock());
  ASSERT_TRUE(b.TryLock());
  b.Unlock();
  a.Unlock();
  EXPECT_EQ(lockdep::RecordedEdgeCountForTest(), before);
}

using DeadlockDeathTest = ::testing::Test;

TEST(DeadlockDeathTest, RankViolationAbortsNamingBothMutexes) {
  EXPECT_DEATH(
      ([&] {
        Mutex outer{"deadlock_test.rank_outer", 10};
        Mutex inner{"deadlock_test.rank_inner", 20};
        MutexLock hold_inner(&inner);
        MutexLock hold_outer(&outer);  // rank 10 while holding rank 20
      }()),
      "lock-rank violation: acquiring \"deadlock_test.rank_outer\" \\(rank "
      "10\\) while holding \"deadlock_test.rank_inner\" \\(rank 20\\)");
}

TEST(DeadlockDeathTest, EqualRankAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex a{"deadlock_test.eq_a", 33};
        Mutex b{"deadlock_test.eq_b", 33};
        MutexLock la(&a);
        MutexLock lb(&b);  // equal rank: order undefined
      }()),
      "lock-rank violation");
}

TEST(DeadlockDeathTest, ObservedInversionAbortsNamingBothMutexes) {
  EXPECT_DEATH(
      ([&] {
        Mutex a{"deadlock_test.inv_a"};
        Mutex b{"deadlock_test.inv_b"};
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // records a -> b
        }
        {
          MutexLock lb(&b);
          MutexLock la(&a);  // inverted: aborts before blocking
        }
      }()),
      "lock-order inversion: acquiring \"deadlock_test.inv_a\" while "
      "holding \"deadlock_test.inv_b\"");
}

TEST(DeadlockDeathTest, TransitiveInversionAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex a{"deadlock_test.tri_a"};
        Mutex b{"deadlock_test.tri_b"};
        Mutex c{"deadlock_test.tri_c"};
        {
          MutexLock la(&a);
          MutexLock lb(&b);  // a -> b
        }
        {
          MutexLock lb(&b);
          MutexLock lc(&c);  // b -> c
        }
        {
          MutexLock lc(&c);
          MutexLock la(&a);  // closes c -> a: cycle through b
        }
      }()),
      "lock-order inversion: acquiring \"deadlock_test.tri_a\" while "
      "holding \"deadlock_test.tri_c\"");
}

TEST(DeadlockDeathTest, InversionAcrossThreadsAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex a{"deadlock_test.xthread_a"};
        Mutex b{"deadlock_test.xthread_b"};
        std::thread first([&] {
          MutexLock la(&a);
          MutexLock lb(&b);  // a -> b, recorded from another thread
        });
        first.join();
        MutexLock lb(&b);
        MutexLock la(&a);  // inverted on this thread
      }()),
      "lock-order inversion");
}

TEST(DeadlockDeathTest, SameClassNestingAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex first{"deadlock_test.same_class"};
        Mutex second{"deadlock_test.same_class"};
        MutexLock l1(&first);
        MutexLock l2(&second);  // two instances of one class
      }()),
      "two \"deadlock_test.same_class\" instances held together");
}

TEST(DeadlockDeathTest, RecursiveAcquisitionAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex a{"deadlock_test.recursive"};
        a.Lock();
        a.Lock();  // would self-deadlock; detector aborts first
      }()),
      "recursive acquisition of \"deadlock_test.recursive\"");
}

// ---- registry <-> front-end rank discipline --------------------------------

// Submit pins a snapshot lease while holding the front-end's stats lock, so
// the registry's current-pointer lock MUST rank above the front-end's. The
// inverse order — touching the front-end's lock from under the registry's —
// is the classic publish/admission deadlock, and the ranks must kill it.
TEST(DeadlockDeathTest, FrontendUnderRegistryLockAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex registry{"deadlock_test.registry", kLockRankSnapshotRegistry};
        Mutex frontend{"deadlock_test.frontend", kLockRankServingFrontend};
        MutexLock hold_registry(&registry);
        MutexLock hold_frontend(&frontend);  // 10 while holding 15
      }()),
      "lock-rank violation: acquiring \"deadlock_test.frontend\" \\(rank "
      "10\\) while holding \"deadlock_test.registry\" \\(rank 15\\)");
}

// Publish serializes on its own lock and then takes the current-pointer
// lock for the swap (12 -> 15). A path that starts a publish while already
// holding the current-pointer lock would invert that and must abort.
TEST(DeadlockDeathTest, PublishUnderRegistryLockAborts) {
  EXPECT_DEATH(
      ([&] {
        Mutex registry{"deadlock_test.pub_registry",
                       kLockRankSnapshotRegistry};
        Mutex publish{"deadlock_test.pub_publish", kLockRankSnapshotPublish};
        MutexLock hold_registry(&registry);
        MutexLock hold_publish(&publish);  // 12 while holding 15
      }()),
      "lock-rank violation: acquiring \"deadlock_test.pub_publish\" \\(rank "
      "12\\) while holding \"deadlock_test.pub_registry\" \\(rank 15\\)");
}

// The production nestings the hot-swap path actually exercises, in rank
// order, must stay quiet: admission pins a lease under the front-end lock
// (10 -> 15), a publish swaps the current pointer (12 -> 15), and dropping
// the last lease while swapping runs the retirement deleter (12 -> 15 ->
// 80).
TEST(DeadlockTest, ProductionRanksPermitAdmissionSwapAndRetirement) {
  Mutex frontend{"deadlock_test.prod_frontend", kLockRankServingFrontend};
  Mutex publish{"deadlock_test.prod_publish", kLockRankSnapshotPublish};
  Mutex registry{"deadlock_test.prod_registry", kLockRankSnapshotRegistry};
  Mutex retire{"deadlock_test.prod_retire", kLockRankRegistryRetire};
  {
    // Submit: lease acquisition under the front-end's stats lock.
    MutexLock hold_frontend(&frontend);
    MutexLock hold_registry(&registry);
  }
  {
    // Publish with no lease out: swap runs the previous generation's
    // deleter inline, bumping the retire log under both publish locks.
    MutexLock hold_publish(&publish);
    MutexLock hold_registry(&registry);
    MutexLock hold_retire(&retire);
  }
  {
    // A worker dropping the last lease at resolution: retire log only.
    MutexLock hold_retire(&retire);
  }
}

// The production rank assignments must permit the one nesting the serving
// stack actually exercises: reading an injected FakeClock inside the
// bounded queue's admission predicate.
TEST(DeadlockTest, ProductionRanksPermitQueueThenClock) {
  FakeClock clock;
  BoundedLaneQueue<int> queue(4, 2);
  auto outcome = queue.PushIf(0, 1, [&](size_t) {
    clock.Advance(std::chrono::nanoseconds(1));
    return clock.Now() >= Clock::TimePoint{};
  });
  EXPECT_EQ(outcome, QueuePushOutcome::kOk);
  // And pool latch nesting: ParallelFor bodies may touch leaf locks.
  ThreadPool pool(2);
  pool.ParallelFor(8, [&](size_t, size_t) {
    clock.Advance(std::chrono::nanoseconds(1));
  });
}

#endif  // NDEBUG

}  // namespace
}  // namespace sqe
