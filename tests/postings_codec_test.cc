// Property and regression tests for the bit-packed posting-block codec
// (index/postings_codec.h) and the packed-mode PostingList it feeds.
//
// Three layers, one contract — identical integers everywhere:
//   codec     encode/decode round trips over randomized widths, ragged
//             final blocks, and u32-boundary gap edges; the checked
//             decoder rejects every malformed shape the fuzzer probes.
//   kernels   the scalar, SSE2, and AVX2 vertical unpack tiers (and
//             whatever ActiveUnpackFn resolved to) produce the same words
//             at every width 1..32, so runtime dispatch can never change
//             a ranking bit.
//   list      a packed list loaded from a v4 snapshot answers Cursor /
//             LowerBound / Find / Materialize queries exactly like the
//             raw-mode list it was serialized from, including the
//             SeekTo backward-then-forward-across-blocks regression.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cpu_dispatch.h"
#include "common/random.h"
#include "index/inverted_index.h"
#include "index/postings.h"
#include "index/postings_codec.h"
#include "io/file.h"
#include "retrieval/query.h"
#include "retrieval/result.h"
#include "retrieval/retriever.h"
#include "retrieval/wand_retriever.h"

namespace sqe::index {
namespace {

// ---- codec round trips ------------------------------------------------------

struct Block {
  std::vector<uint32_t> docs;
  std::vector<uint32_t> freqs;
  uint32_t anchor = 0;
};

Block RandomBlock(Rng& rng, size_t n, uint32_t max_gap, uint32_t max_freq,
                  uint32_t anchor) {
  Block b;
  b.anchor = anchor;
  uint32_t next = anchor;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t doc =
        next + static_cast<uint32_t>(rng.NextBounded(max_gap + 1ull));
    b.docs.push_back(doc);
    next = doc + 1;
    b.freqs.push_back(1 + static_cast<uint32_t>(rng.NextBounded(max_freq)));
  }
  return b;
}

// Encodes the block, decodes it back through both the trusted and the
// checked decoder, and requires exact equality plus a size that matches
// the header's own arithmetic.
void ExpectRoundTrip(const Block& b) {
  const size_t n = b.docs.size();
  std::string enc;
  const size_t appended =
      codec::EncodeBlock(b.docs.data(), b.freqs.data(), n, b.anchor, &enc);
  ASSERT_EQ(appended, enc.size());
  const uint8_t* p = reinterpret_cast<const uint8_t*>(enc.data());
  EXPECT_EQ(enc.size(), codec::EncodedBlockBytes(n, p[0], p[1]));

  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  codec::DecodeBlock(p, n, b.anchor, docs, freqs);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(docs[i], b.docs[i]) << "doc " << i << " (n=" << n << ")";
    ASSERT_EQ(freqs[i], b.freqs[i]) << "freq " << i << " (n=" << n << ")";
  }

  uint32_t cdocs[codec::kBlockLen];
  uint32_t cfreqs[codec::kBlockLen];
  Status s = codec::DecodeBlockChecked(p, enc.size(), n, b.anchor, cdocs,
                                       cfreqs);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(std::memcmp(docs, cdocs, n * sizeof(uint32_t)), 0);
  EXPECT_EQ(std::memcmp(freqs, cfreqs, n * sizeof(uint32_t)), 0);

  // Single-value extraction must agree with the bulk decoder at every
  // offset (both layouts: vertical full block, horizontal ragged).
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(codec::ExtractFreqAt(p, n, i), b.freqs[i])
        << "extract " << i << " (n=" << n << ")";
  }
  ASSERT_EQ(codec::ExtractFirstDoc(p, n, b.anchor), b.docs[0]);
}

TEST(PostingsCodecTest, RoundTripRandomizedWidths) {
  Rng rng(0xC0DEC);
  const uint32_t gap_caps[] = {0,      1,       7,         255,
                               4000,   1u << 16, 1u << 20, 0x00FFFFFFu};
  // The last cap forces 32-bit freq-1 widths (mask and straddle edges).
  const uint32_t freq_caps[] = {1, 2, 9, 300, 70000, 1u << 24, 0xF0000000u};
  for (uint32_t max_gap : gap_caps) {
    for (uint32_t max_freq : freq_caps) {
      const uint32_t anchor =
          static_cast<uint32_t>(rng.NextBounded(1u << 20));
      ExpectRoundTrip(
          RandomBlock(rng, codec::kBlockLen, max_gap, max_freq, anchor));
    }
  }
}

TEST(PostingsCodecTest, RoundTripRaggedFinalBlocks) {
  Rng rng(0xBEEF);
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{17}, size_t{63},
                   size_t{100}, size_t{127}}) {
    ExpectRoundTrip(RandomBlock(rng, n, /*max_gap=*/900, /*max_freq=*/9,
                                /*anchor=*/42));
  }
}

TEST(PostingsCodecTest, DenseAllOnesBlockIsHeaderOnly) {
  // Consecutive doc ids (every gap 0) with frequency 1 everywhere: both
  // payloads pack at width 0, so the block is exactly its 2-byte header.
  Block b;
  b.anchor = 1000;
  for (size_t i = 0; i < codec::kBlockLen; ++i) {
    b.docs.push_back(1000 + static_cast<uint32_t>(i));
    b.freqs.push_back(1);
  }
  std::string enc;
  codec::EncodeBlock(b.docs.data(), b.freqs.data(), b.docs.size(), b.anchor,
                     &enc);
  EXPECT_EQ(enc.size(), codec::kBlockHeaderBytes);
  ExpectRoundTrip(b);
}

TEST(PostingsCodecTest, RoundTripU32BoundaryGaps) {
  // A single posting whose gap is the full 32-bit range...
  ExpectRoundTrip({{0xFFFFFFFFu}, {1}, 0});
  // ...and a ragged pair hugging the top of the doc-id space.
  ExpectRoundTrip({{0xFFFFFFF0u, 0xFFFFFFFEu}, {2, 1}, 0});
  // Anchored high: gap arithmetic must not wrap when the anchor itself is
  // close to the ceiling.
  ExpectRoundTrip({{0xFFFFFFFEu, 0xFFFFFFFFu}, {7, 1}, 0xFFFFFFF0u});
}

TEST(PostingsCodecTest, BitsNeededAndPayloadSizing) {
  EXPECT_EQ(codec::BitsNeeded(0), 0u);
  EXPECT_EQ(codec::BitsNeeded(1), 1u);
  EXPECT_EQ(codec::BitsNeeded(2), 2u);
  EXPECT_EQ(codec::BitsNeeded(255), 8u);
  EXPECT_EQ(codec::BitsNeeded(256), 9u);
  EXPECT_EQ(codec::BitsNeeded(0xFFFFFFFFu), 32u);
  // Full block: 16 bytes per bit of width (vertical layout).
  EXPECT_EQ(codec::PackedPayloadBytes(codec::kBlockLen, 13), 16u * 13);
  // Ragged: ceil(n * bits / 8).
  EXPECT_EQ(codec::PackedPayloadBytes(37, 5), (37u * 5 + 7) / 8);
  EXPECT_EQ(codec::PackedPayloadBytes(10, 0), 0u);
}

// ---- checked-decoder rejection surface --------------------------------------

TEST(PostingsCodecCheckedTest, RejectsTruncatedPayloads) {
  Rng rng(0x50DA);
  Block b = RandomBlock(rng, codec::kBlockLen, 900, 9, 3);
  std::string enc;
  codec::EncodeBlock(b.docs.data(), b.freqs.data(), b.docs.size(), b.anchor,
                     &enc);
  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  for (size_t len = 0; len < enc.size(); ++len) {
    EXPECT_FALSE(codec::DecodeBlockChecked(
                     reinterpret_cast<const uint8_t*>(enc.data()), len,
                     b.docs.size(), b.anchor, docs, freqs)
                     .ok())
        << "accepted truncation to " << len << " bytes";
  }
  // One extra trailing byte is a length mismatch, not slack.
  std::string padded = enc + '\0';
  EXPECT_FALSE(codec::DecodeBlockChecked(
                   reinterpret_cast<const uint8_t*>(padded.data()),
                   padded.size(), b.docs.size(), b.anchor, docs, freqs)
                   .ok());
}

TEST(PostingsCodecCheckedTest, RejectsOverwideHeaders) {
  Rng rng(0x51DE);
  Block b = RandomBlock(rng, codec::kBlockLen, 900, 9, 0);
  std::string enc;
  codec::EncodeBlock(b.docs.data(), b.freqs.data(), b.docs.size(), b.anchor,
                     &enc);
  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  for (size_t byte : {size_t{0}, size_t{1}}) {
    std::string bad = enc;
    bad[byte] = static_cast<char>(33);
    EXPECT_FALSE(codec::DecodeBlockChecked(
                     reinterpret_cast<const uint8_t*>(bad.data()), bad.size(),
                     b.docs.size(), b.anchor, docs, freqs)
                     .ok())
        << "accepted width 33 in header byte " << byte;
  }
}

TEST(PostingsCodecCheckedTest, RejectsDocIdOverflow) {
  // A block that is valid at anchor 0 must be rejected when re-anchored
  // high enough that the reconstructed ids wrap past UINT32_MAX — exactly
  // the stale-block_last shape a resigned snapshot can produce.
  Block b{{0xFFFFFFF0u}, {1}, 0};
  std::string enc;
  codec::EncodeBlock(b.docs.data(), b.freqs.data(), 1, b.anchor, &enc);
  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  const uint8_t* p = reinterpret_cast<const uint8_t*>(enc.data());
  ASSERT_TRUE(codec::DecodeBlockChecked(p, enc.size(), 1, 0, docs, freqs)
                  .ok());
  EXPECT_FALSE(codec::DecodeBlockChecked(p, enc.size(), 1, 0x100u, docs,
                                         freqs)
                   .ok());
}

TEST(PostingsCodecCheckedTest, StaleWidthZeroPayloadDecodes) {
  // Headers wider than the values require are wasteful but well-formed:
  // a hand-built {5,1} header over all-zero payloads must decode to
  // consecutive doc ids from the anchor with frequency 1 — the invariant
  // the fuzzer's stale_widths seed pins.
  constexpr size_t kN = 16;
  std::string enc;
  enc.push_back(static_cast<char>(5));
  enc.push_back(static_cast<char>(1));
  enc.append(codec::PackedPayloadBytes(kN, 5) +
                 codec::PackedPayloadBytes(kN, 1),
             '\0');
  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  Status s = codec::DecodeBlockChecked(
      reinterpret_cast<const uint8_t*>(enc.data()), enc.size(), kN, 42, docs,
      freqs);
  ASSERT_TRUE(s.ok()) << s.ToString();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(docs[i], 42u + i);
    EXPECT_EQ(freqs[i], 1u);
  }
}

// ---- kernel-tier equivalence ------------------------------------------------

TEST(PostingsCodecKernelTest, AllCompiledTiersUnpackIdentically) {
  Rng rng(0x51AD);
  for (uint32_t bits = 1; bits <= 32; ++bits) {
    // Force doc_bits == bits by making the first gap need exactly that
    // width; keep the block's doc span under 2^32.
    const uint32_t widest =
        bits == 32 ? 0xFFFFFF00u : (bits == 1 ? 1u : (1u << (bits - 1)));
    Block b;
    b.anchor = 0;
    uint32_t next = 0;
    for (size_t i = 0; i < codec::kBlockLen; ++i) {
      // Later gaps stay tiny so the block's doc span (widest + 127 gaps
      // + 127 implicit +1 steps) cannot wrap past UINT32_MAX at width 32.
      const uint32_t gap =
          i == 0 ? widest
                 : static_cast<uint32_t>(rng.NextBounded(
                       std::min<uint64_t>(widest, bits == 32 ? 1 : 512)));
      const uint32_t doc = next + gap;
      b.docs.push_back(doc);
      next = doc + 1;
      b.freqs.push_back(1);
    }
    std::string enc;
    codec::EncodeBlock(b.docs.data(), b.freqs.data(), codec::kBlockLen,
                       b.anchor, &enc);
    const uint8_t* p = reinterpret_cast<const uint8_t*>(enc.data());
    ASSERT_EQ(p[0], bits);
    const uint8_t* payload = p + codec::kBlockHeaderBytes;

    uint32_t scalar[codec::kBlockLen];
    codec::internal::UnpackVerticalScalar(payload, bits, scalar);

    uint32_t active[codec::kBlockLen];
    codec::internal::ActiveUnpackFn()(payload, bits, active);
    EXPECT_EQ(std::memcmp(scalar, active, sizeof(scalar)), 0)
        << "active tier diverges at bits=" << bits;

#if defined(__SSE2__)
    uint32_t sse2[codec::kBlockLen];
    codec::internal::UnpackVerticalSse2(payload, bits, sse2);
    EXPECT_EQ(std::memcmp(scalar, sse2, sizeof(scalar)), 0)
        << "sse2 diverges at bits=" << bits;
#endif
#if defined(__x86_64__) || defined(__i386__)
    if (HardwareSimdLevel() >= SimdLevel::kAvx2) {
      uint32_t avx2[codec::kBlockLen];
      codec::internal::UnpackVerticalAvx2(payload, bits, avx2);
      EXPECT_EQ(std::memcmp(scalar, avx2, sizeof(scalar)), 0)
          << "avx2 diverges at bits=" << bits;
    }
#endif
    ExpectRoundTrip(b);
  }
}

TEST(PostingsCodecDispatchTest, DetectedLevelNeverExceedsHardware) {
  EXPECT_LE(static_cast<int>(DetectSimdLevel()),
            static_cast<int>(HardwareSimdLevel()));
  for (SimdLevel l :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    const char* name = SimdLevelName(l);
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
  }
}

// ---- packed PostingList vs its raw source -----------------------------------

// 700 docs, every one containing "hot" (frequency cycling 1..3) plus a
// filler term, so the "hot" posting list spans 6 blocks with a ragged tail
// of 700 - 5*128 = 60 postings.
constexpr size_t kManyDocs = 700;

const InvertedIndex& RawMultiBlockIndex() {
  static const InvertedIndex& index = *new InvertedIndex([] {
    IndexBuilder builder;
    for (size_t d = 0; d < kManyDocs; ++d) {
      std::vector<std::string> tokens;
      for (size_t r = 0; r < 1 + d % 3; ++r) tokens.push_back("hot");
      tokens.push_back("filler" + std::to_string(d % 5));
      builder.AddDocument("doc-" + std::to_string(d), tokens);
    }
    return std::move(builder).Build();
  }());
  return index;
}

const InvertedIndex& PackedMultiBlockIndex() {
  static const InvertedIndex& index = *new InvertedIndex([] {
    auto loaded =
        InvertedIndex::FromSnapshotString(RawMultiBlockIndex()
                                              .SerializeToString());
    SQE_CHECK_MSG(loaded.ok(), "v4 round trip failed");
    return std::move(loaded).value();
  }());
  return index;
}

struct ListPair {
  const PostingList* raw;
  const PostingList* packed;
};

ListPair HotLists() {
  const InvertedIndex& raw = RawMultiBlockIndex();
  const InvertedIndex& packed = PackedMultiBlockIndex();
  const text::TermId t = raw.LookupTerm("hot");
  SQE_CHECK(t != text::kInvalidTermId);
  SQE_CHECK(packed.LookupTerm("hot") == t);
  return {&raw.Postings(t), &packed.Postings(t)};
}

TEST(PostingsCodecListTest, PackedListMirrorsRawSource) {
  auto [raw, packed] = HotLists();
  ASSERT_FALSE(raw->packed());
  ASSERT_TRUE(packed->packed());
  ASSERT_EQ(packed->NumDocs(), raw->NumDocs());
  ASSERT_EQ(packed->NumDocs(), kManyDocs);
  EXPECT_EQ(packed->NumBlocks(), (kManyDocs + 127) / 128);
  EXPECT_EQ(packed->CollectionFrequency(), raw->CollectionFrequency());
  EXPECT_EQ(packed->MaxFrequency(), raw->MaxFrequency());

  std::vector<DocId> docs;
  std::vector<uint32_t> freqs;
  packed->Materialize(&docs, &freqs);
  ASSERT_EQ(docs.size(), raw->NumDocs());
  for (size_t i = 0; i < raw->NumDocs(); ++i) {
    ASSERT_EQ(docs[i], raw->doc(i)) << i;
    ASSERT_EQ(freqs[i], raw->frequency(i)) << i;
  }

  // Positions survive the pos_offsets-free layout.
  PostingList::Cursor c = packed->MakeCursor();
  for (size_t i = 0; i < raw->NumDocs(); ++i, c.Next()) {
    ASSERT_FALSE(c.AtEnd());
    auto pr = raw->positions(i);
    auto pp = c.Positions();
    ASSERT_TRUE(std::equal(pr.begin(), pr.end(), pp.begin(), pp.end())) << i;
  }
  EXPECT_TRUE(c.AtEnd());
}

TEST(PostingsCodecListTest, PackedLowerBoundAndFindMatchRaw) {
  auto [raw, packed] = HotLists();
  auto raw_docs = raw->docs();
  for (DocId target = 0; target < kManyDocs + 5; target += 3) {
    const size_t expect =
        std::lower_bound(raw_docs.begin(), raw_docs.end(), target) -
        raw_docs.begin();
    EXPECT_EQ(packed->LowerBound(target), expect) << "target " << target;
  }
  EXPECT_EQ(packed->Find(0), raw->Find(0));
  EXPECT_EQ(packed->Find(389), raw->Find(389));
  EXPECT_EQ(packed->Find(kManyDocs - 1), raw->Find(kManyDocs - 1));
  EXPECT_EQ(packed->Find(kManyDocs + 10), PostingList::kNpos);
}

// The satellite regression: a cursor parked in a later block must resolve
// a *smaller* target as a no-op (never re-searching — or worse, landing —
// before its current position) and must still cross block boundaries
// correctly on the next forward seek.
TEST(PostingsCodecCursorTest, SeekBackwardThenForwardAcrossBlocks) {
  auto [raw, packed] = HotLists();
  (void)raw;
  PostingList::Cursor c = packed->MakeCursor();

  c.SeekTo(400);  // into block 3
  ASSERT_FALSE(c.AtEnd());
  EXPECT_EQ(c.Doc(), 400u);
  EXPECT_EQ(c.Frequency(), 1u + 400 % 3);

  c.SeekTo(100);  // backward target: cursor must not move
  ASSERT_FALSE(c.AtEnd());
  EXPECT_EQ(c.Doc(), 400u);

  c.SeekTo(650);  // forward again, two blocks later
  ASSERT_FALSE(c.AtEnd());
  EXPECT_EQ(c.Doc(), 650u);
  EXPECT_EQ(c.Frequency(), 1u + 650 % 3);

  // Walk over the 640-boundary... already past; walk the 650..699 tail
  // across no further boundary, then seek past the end.
  c.SeekTo(kManyDocs - 1);
  ASSERT_FALSE(c.AtEnd());
  EXPECT_EQ(c.Doc(), kManyDocs - 1);
  c.SeekTo(kManyDocs + 1);
  EXPECT_TRUE(c.AtEnd());
}

TEST(PostingsCodecCursorTest, SeeksLandExactlyOnBlockBoundaries) {
  auto [raw, packed] = HotLists();
  (void)raw;
  for (DocId target : {127u, 128u, 129u, 255u, 256u, 511u, 512u, 639u,
                       640u}) {
    PostingList::Cursor c = packed->MakeCursor();
    c.SeekTo(target);
    ASSERT_FALSE(c.AtEnd()) << target;
    EXPECT_EQ(c.Doc(), target);
    // Next() across the boundary if we sit on a block's last posting.
    c.Next();
    if (target + 1 < kManyDocs) {
      ASSERT_FALSE(c.AtEnd());
      EXPECT_EQ(c.Doc(), target + 1);
    }
  }
}

// ---- packed retrieval bit-identity ------------------------------------------
//
// The synthetic query set always carries phrase atoms, which route WAND to
// the exhaustive fallback — so the packed WAND cursor (block-decoding
// Doc()/Freq(), block-last SeekTo, shallow advances) needs its own pure
// term-query oracle check: raw-direct, v4-heap, and v4-mapped indexes must
// produce byte-identical rankings under both the exhaustive and the pruned
// scorer.
TEST(PostingsCodecWandTest, PackedPrunedMatchesRawExhaustive) {
  Rng rng(0x9A7D);
  std::vector<std::string> vocab;
  for (int t = 0; t < 20; ++t) vocab.push_back("term" + std::to_string(t));
  IndexBuilder builder;
  for (int d = 0; d < 600; ++d) {
    std::vector<std::string> tokens;
    const size_t len = 3 + rng.NextBounded(12);
    for (size_t i = 0; i < len; ++i) {
      tokens.push_back(vocab[rng.NextBounded(vocab.size())]);
    }
    builder.AddDocument("doc" + std::to_string(d), tokens);
  }
  const InvertedIndex raw = std::move(builder).Build();
  const std::string image = raw.SerializeToString();
  auto heap_or = InvertedIndex::FromSnapshotString(image);
  auto mapped_or =
      InvertedIndex::FromSnapshotString(image, io::LoadMode::kZeroCopy);
  ASSERT_TRUE(heap_or.ok()) << heap_or.status().ToString();
  ASSERT_TRUE(mapped_or.ok()) << mapped_or.status().ToString();
  ASSERT_TRUE(heap_or->Postings(raw.LookupTerm("term0")).packed());

  const retrieval::Retriever r_raw(&raw);
  const retrieval::Retriever r_heap(&heap_or.value());
  const retrieval::Retriever r_mapped(&mapped_or.value());
  const retrieval::WandRetriever w_raw(&r_raw);
  const retrieval::WandRetriever w_heap(&r_heap);
  const retrieval::WandRetriever w_mapped(&r_mapped);

  const std::vector<std::vector<std::string>> queries = {
      {"term0"},
      {"term1", "term7", "term13"},
      {"term2", "term3", "term4", "term5", "term6", "term8", "term9",
       "term10", "term11", "term12"},
      vocab,
  };
  for (const std::vector<std::string>& terms : queries) {
    const retrieval::Query q = retrieval::Query::FromTerms(terms);
    for (size_t k : {1u, 5u, 40u, 600u}) {
      SCOPED_TRACE(terms.front() + "... k=" + std::to_string(k));
      retrieval::RetrieverScratch scratch;
      const retrieval::ResultList want = r_raw.Retrieve(q, k, &scratch);
      for (const retrieval::Retriever* r : {&r_heap, &r_mapped}) {
        const retrieval::ResultList got = r->Retrieve(q, k, &scratch);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(got[i].doc, want[i].doc) << i;
          ASSERT_EQ(got[i].score, want[i].score) << i;
        }
      }
      for (const retrieval::WandRetriever* w :
           {&w_raw, &w_heap, &w_mapped}) {
        const retrieval::ResultList got = w->Retrieve(q, k, &scratch);
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(got[i].doc, want[i].doc) << i;
          ASSERT_EQ(got[i].score, want[i].score) << i;
        }
      }
    }
  }
  EXPECT_EQ(w_heap.Stats().fallbacks, 0u);
  EXPECT_EQ(w_mapped.Stats().fallbacks, 0u);
  EXPECT_GT(w_heap.Stats().block_skips + w_heap.Stats().postings_scored, 0u);
}

// ---- index-level stats ------------------------------------------------------

TEST(PostingsCodecStatsTest, StatsAgreeAcrossModesAndShowCompression) {
  const InvertedIndex::PostingsStats raw_stats =
      RawMultiBlockIndex().ComputePostingsStats();
  const InvertedIndex::PostingsStats packed_stats =
      PackedMultiBlockIndex().ComputePostingsStats();

  EXPECT_EQ(raw_stats.num_postings, packed_stats.num_postings);
  EXPECT_EQ(raw_stats.num_blocks, packed_stats.num_blocks);
  EXPECT_EQ(raw_stats.raw_bytes, packed_stats.raw_bytes);
  EXPECT_EQ(raw_stats.packed_bytes, packed_stats.packed_bytes);
  for (int w = 0; w <= 32; ++w) {
    EXPECT_EQ(raw_stats.doc_bits_blocks[w], packed_stats.doc_bits_blocks[w])
        << "doc width " << w;
    EXPECT_EQ(raw_stats.freq_bits_blocks[w],
              packed_stats.freq_bits_blocks[w])
        << "freq width " << w;
  }

  uint64_t doc_hist_total = 0, freq_hist_total = 0;
  for (int w = 0; w <= 32; ++w) {
    doc_hist_total += packed_stats.doc_bits_blocks[w];
    freq_hist_total += packed_stats.freq_bits_blocks[w];
  }
  EXPECT_EQ(doc_hist_total, packed_stats.num_blocks);
  EXPECT_EQ(freq_hist_total, packed_stats.num_blocks);

  // Dense synthetic postings compress hard; anything under 0.5x raw is the
  // acceptance target, this corpus sits far below it.
  EXPECT_LT(packed_stats.packed_bytes, raw_stats.raw_bytes / 2);
}

}  // namespace
}  // namespace sqe::index
