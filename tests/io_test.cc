#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"

namespace sqe::io {
namespace {

// ---- varint / fixed coding --------------------------------------------------

class VarintRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTrip, Encode64DecodesBack) {
  const uint64_t value = GetParam();
  std::string buf;
  PutVarint64(&buf, value);
  EXPECT_EQ(static_cast<int>(buf.size()), VarintLength(value));
  std::string_view in(buf);
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(&in, &decoded));
  EXPECT_EQ(decoded, value);
  EXPECT_TRUE(in.empty());
}

TEST_P(VarintRoundTrip, ZigZagRoundTripsBothSigns) {
  const uint64_t raw = GetParam();
  const int64_t pos = static_cast<int64_t>(raw & 0x7FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(pos)), pos);
  EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(-pos)), -pos);
}

INSTANTIATE_TEST_SUITE_P(
    Values, VarintRoundTrip,
    ::testing::Values(0ull, 1ull, 127ull, 128ull, 255ull, 300ull, 16383ull,
                      16384ull, (1ull << 21) - 1, 1ull << 21, 1ull << 32,
                      (1ull << 35) + 12345, UINT64_MAX - 1, UINT64_MAX));

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEFu);
  ASSERT_EQ(buf.size(), 4u);
  // Little-endian layout.
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0xEF);
  std::string_view in(buf);
  uint32_t v;
  ASSERT_TRUE(GetFixed32(&in, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  std::string_view in(buf);
  uint64_t v;
  ASSERT_TRUE(GetFixed64(&in, &v));
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, DecodersRejectTruncation) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
  std::string_view short32("ab");
  uint32_t v32;
  EXPECT_FALSE(GetFixed32(&short32, &v32));
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, static_cast<uint64_t>(UINT32_MAX) + 1);
  std::string_view in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in(buf);
  std::string_view a, b, c;
  ASSERT_TRUE(GetLengthPrefixed(&in, &a));
  ASSERT_TRUE(GetLengthPrefixed(&in, &b));
  ASSERT_TRUE(GetLengthPrefixed(&in, &c));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c.size(), 1000u);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, LengthPrefixedRejectsShortPayload) {
  std::string buf;
  PutVarint64(&buf, 100);  // claims 100 bytes
  buf += "only-a-few";
  std::string_view in(buf);
  std::string_view out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// ---- snapshot format --------------------------------------------------------

constexpr uint32_t kTestMagic = 0x54534E50;  // "TSNP"

TEST(SnapshotTest, WriteReadRoundTrip) {
  SnapshotWriter writer(kTestMagic, /*version=*/3);
  writer.AddBlock("alpha", "payload-one");
  writer.AddBlock("beta", std::string("\x00\x01\x02", 3));
  auto reader_or = SnapshotReader::Open(writer.Serialize(), kTestMagic);
  ASSERT_TRUE(reader_or.ok()) << reader_or.status().ToString();
  const SnapshotReader& reader = reader_or.value();
  EXPECT_EQ(reader.version(), 3u);
  auto block = reader.GetBlock("alpha");
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value(), "payload-one");
  auto names = reader.BlockNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
}

TEST(SnapshotTest, MissingBlockIsNotFound) {
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("only", "x");
  auto reader = SnapshotReader::Open(writer.Serialize(), kTestMagic);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().GetBlock("other").status().IsNotFound());
}

TEST(SnapshotTest, WrongMagicIsCorruption) {
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("b", "x");
  auto reader = SnapshotReader::Open(writer.Serialize(), kTestMagic + 1);
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(SnapshotTest, BitFlipInPayloadIsCorruption) {
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("data", "sensitive-bytes-here");
  std::string image = writer.Serialize();
  // Flip a bit inside the payload region (after magic/version/count).
  size_t pos = image.find("sensitive");
  ASSERT_NE(pos, std::string::npos);
  image[pos + 3] ^= 0x40;
  auto reader = SnapshotReader::Open(std::move(image), kTestMagic);
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(SnapshotTest, TruncationIsCorruption) {
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("data", "0123456789");
  std::string image = writer.Serialize();
  for (size_t keep : {0ul, 3ul, image.size() / 2, image.size() - 1}) {
    auto reader = SnapshotReader::Open(image.substr(0, keep), kTestMagic);
    EXPECT_FALSE(reader.ok()) << "keep=" << keep;
    EXPECT_TRUE(reader.status().IsCorruption());
  }
}

TEST(SnapshotTest, EmptySnapshotIsValid) {
  SnapshotWriter writer(kTestMagic);
  auto reader = SnapshotReader::Open(writer.Serialize(), kTestMagic);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.value().BlockNames().empty());
}

TEST(SnapshotTest, DuplicateBlockNamesRejectedOnWrite) {
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("same", "a");
  writer.AddBlock("same", "b");
  Status status = writer.WriteToFile("/tmp/sqe_dup_snapshot_test.bin");
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST(SnapshotTest, DuplicateBlockNamesRejectedAtOpen) {
  // Writer-side checks can be bypassed (Serialize has no file to refuse, a
  // hostile image never saw the writer), so Open must reject duplicates
  // itself — in both container layouts — before one CRC-valid block can
  // shadow the other at GetBlock time.
  for (uint32_t version : {1u, kAlignedSnapshotVersion}) {
    SnapshotWriter writer(kTestMagic, version);
    writer.AddBlock("same", "a");
    writer.AddBlock("same", "b");
    auto reader = SnapshotReader::Open(writer.Serialize(), kTestMagic);
    ASSERT_FALSE(reader.ok()) << "version " << version;
    EXPECT_TRUE(reader.status().IsCorruption()) << "version " << version;
    EXPECT_NE(reader.status().message().find("duplicate snapshot block"),
              std::string::npos)
        << reader.status().ToString();
  }
}

// ---- file helpers -----------------------------------------------------------

TEST(FileTest, WriteReadRoundTrip) {
  const std::string path = "/tmp/sqe_io_test_file.bin";
  std::string data = "binary\0payload";
  data.push_back('\xFF');
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), data);
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileIsIOError) {
  auto read = ReadFileToString("/tmp/definitely/not/here.bin");
  EXPECT_TRUE(read.status().IsIOError());
}

TEST(FileTest, SnapshotFileRoundTrip) {
  const std::string path = "/tmp/sqe_io_test_snapshot.bin";
  SnapshotWriter writer(kTestMagic);
  writer.AddBlock("block", "contents");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  auto reader = SnapshotReader::OpenFile(path, kTestMagic);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader.value().GetBlock("block").value(), "contents");
  std::remove(path.c_str());
}

TEST(FileTest, MappedSnapshotFileRoundTrip) {
  const std::string path = "/tmp/sqe_io_test_mapped_snapshot.bin";
  SnapshotWriter writer(kTestMagic, kAlignedSnapshotVersion);
  writer.AddBlock("block", "mapped-contents");
  ASSERT_TRUE(writer.WriteToFile(path).ok());
  // The retainer must keep the mapping alive past the reader itself.
  std::string_view payload;
  std::shared_ptr<const void> keepalive;
  {
    auto reader = SnapshotReader::OpenMapped(path, kTestMagic);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_TRUE(reader.value().is_mapped());
    EXPECT_EQ(reader.value().version(), kAlignedSnapshotVersion);
    payload = reader.value().GetBlock("block").value();
    keepalive = reader.value().retainer();
  }
  EXPECT_EQ(payload, "mapped-contents");
  std::remove(path.c_str());
}

// ---- torn-write regression --------------------------------------------------
//
// WriteStringToFile used to truncate the destination in place, so a crash
// mid-write left a torn file under the final name. These tests inject a
// failure at each stage of the temp+fsync+rename sequence and assert the
// destination still holds its previous bytes and no temp litter survives.

size_t CountTempLitter(const std::string& final_path) {
  const std::filesystem::path p(final_path);
  const std::string prefix = p.filename().string() + ".tmp.";
  size_t n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(
           p.parent_path())) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) ++n;
  }
  return n;
}

TEST(FileTest, TornWriteLeavesDestinationIntact) {
  const std::string path = "/tmp/sqe_io_test_torn.bin";
  const std::string old_data = "the previous, fully-written snapshot";
  ASSERT_TRUE(WriteStringToFile(path, old_data).ok());

  for (auto point : {testing::WriteFailurePoint::kAfterWrite,
                     testing::WriteFailurePoint::kBeforeRename}) {
    testing::SetWriteFailurePoint(point);
    Status status = WriteStringToFile(path, "torn replacement bytes");
    ASSERT_FALSE(status.ok());
    EXPECT_TRUE(status.IsIOError()) << status.ToString();
    auto read = ReadFileToString(path);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), old_data)
        << "destination mutated by a failed write";
    EXPECT_EQ(CountTempLitter(path), 0u) << "temp file left behind";
  }

  // Disarmed after firing: the next write goes through and replaces.
  ASSERT_TRUE(WriteStringToFile(path, "clean replacement").ok());
  EXPECT_EQ(ReadFileToString(path).value(), "clean replacement");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sqe::io
