#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "prf/relevance_model.h"
#include "retrieval/retriever.h"

namespace sqe::prf {
namespace {

index::InvertedIndex MakeIndex() {
  index::IndexBuilder builder;
  // A small collection with an obvious "cable" topic: feedback docs for a
  // "cable" query share the terms "railway" and "hill".
  builder.AddDocument("d0", {"cable", "railway", "hill", "hill"});
  builder.AddDocument("d1", {"cable", "railway", "transport"});
  builder.AddDocument("d2", {"cable", "hill", "railway"});
  builder.AddDocument("d3", {"graffiti", "wall", "art"});
  builder.AddDocument("d4", {"noise", "unrelated", "words"});
  return std::move(builder).Build();
}

TEST(PrfTest, RelevanceModelPicksFeedbackTerms) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfOptions options;
  options.feedback_docs = 3;
  options.expansion_terms = 3;
  PrfExpander prf(&retriever, options);

  retrieval::Query q = retrieval::Query::FromTerms({"cable"});
  retrieval::ResultList initial = retriever.Retrieve(q, 3);
  auto model = prf.EstimateRelevanceModel(q, initial);
  ASSERT_EQ(model.size(), 3u);
  // The dominant feedback terms must be from the cable docs.
  for (const WeightedTerm& wt : model) {
    EXPECT_TRUE(wt.term == "cable" || wt.term == "railway" ||
                wt.term == "hill" || wt.term == "transport")
        << wt.term;
    EXPECT_GT(wt.weight, 0.0);
  }
  // Weights are descending.
  for (size_t i = 1; i < model.size(); ++i) {
    EXPECT_GE(model[i - 1].weight, model[i].weight);
  }
}

TEST(PrfTest, ReformulatePureRmDropsOriginal) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfExpander prf(&retriever);  // original_weight = 0

  retrieval::Query q = retrieval::Query::FromTerms({"cable"});
  std::vector<WeightedTerm> model = {{"railway", 0.6}, {"hill", 0.4}};
  retrieval::Query reformulated = prf.Reformulate(q, model);
  ASSERT_EQ(reformulated.clauses.size(), 1u);
  ASSERT_EQ(reformulated.clauses[0].atoms.size(), 2u);
  EXPECT_EQ(reformulated.clauses[0].atoms[0].terms[0], "railway");
  EXPECT_DOUBLE_EQ(reformulated.clauses[0].atoms[0].weight, 0.6);
}

TEST(PrfTest, ReformulateInterpolatesWithOriginal) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfOptions options;
  options.original_weight = 0.7;
  PrfExpander prf(&retriever, options);

  retrieval::Query q = retrieval::Query::FromTerms({"cable"});
  std::vector<WeightedTerm> model = {{"railway", 1.0}};
  retrieval::Query reformulated = prf.Reformulate(q, model);
  ASSERT_EQ(reformulated.clauses.size(), 2u);
  EXPECT_NEAR(reformulated.clauses[0].weight, 0.7, 1e-12);
  EXPECT_NEAR(reformulated.clauses[1].weight, 0.3, 1e-12);
}

TEST(PrfTest, EmptyModelFallsBackToOriginal) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfExpander prf(&retriever);
  retrieval::Query q = retrieval::Query::FromTerms({"cable"});
  retrieval::Query reformulated = prf.Reformulate(q, {});
  EXPECT_EQ(reformulated.NumAtoms(), q.NumAtoms());
}

TEST(PrfTest, EstimateWithEmptyResultsIsEmpty) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfExpander prf(&retriever);
  retrieval::Query q = retrieval::Query::FromTerms({"cable"});
  EXPECT_TRUE(prf.EstimateRelevanceModel(q, {}).empty());
}

TEST(PrfTest, ExpandAndRetrieveFindsTopicNeighbors) {
  index::InvertedIndex index = MakeIndex();
  retrieval::Retriever retriever(&index);
  PrfOptions options;
  options.feedback_docs = 2;
  options.expansion_terms = 4;
  PrfExpander prf(&retriever, options);

  // PRF on "hill": feedback docs (d0, d2) contain railway and cable; the
  // reformulated query must still rank the cable-topic docs at the top.
  retrieval::Query q = retrieval::Query::FromTerms({"hill"});
  retrieval::ResultList results = prf.ExpandAndRetrieve(q, 5);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].doc <= 2) << "top doc should be a cable-topic doc";
  EXPECT_TRUE(results[1].doc <= 2);
  EXPECT_TRUE(results[2].doc <= 2);
}

TEST(PrfTest, FeedbackDocWeightsFollowScores) {
  // With two feedback docs where one scores far higher, its terms dominate
  // the relevance model.
  index::IndexBuilder builder;
  builder.AddDocument("strong", {"query", "query", "query", "alpha"});
  builder.AddDocument("weak", {"query", "beta", "filler", "filler", "filler",
                               "filler", "filler", "filler"});
  index::InvertedIndex index = std::move(builder).Build();
  retrieval::Retriever retriever(&index);
  PrfOptions options;
  options.feedback_docs = 2;
  options.expansion_terms = 10;
  PrfExpander prf(&retriever, options);

  retrieval::Query q = retrieval::Query::FromTerms({"query"});
  auto model = prf.EstimateRelevanceModel(q, retriever.Retrieve(q, 2));
  double alpha_weight = 0.0, beta_weight = 0.0;
  for (const WeightedTerm& wt : model) {
    if (wt.term == "alpha") alpha_weight = wt.weight;
    if (wt.term == "beta") beta_weight = wt.weight;
  }
  EXPECT_GT(alpha_weight, beta_weight);
}

}  // namespace
}  // namespace sqe::prf
