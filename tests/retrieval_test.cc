#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "retrieval/phrase_matcher.h"
#include "retrieval/query.h"
#include "retrieval/retriever.h"

namespace sqe::retrieval {
namespace {

index::InvertedIndex MakeIndex() {
  index::IndexBuilder builder;
  builder.AddDocument("d0", {"cable", "car", "cable", "car", "hill"});
  builder.AddDocument("d1", {"funicular", "railway", "cable"});
  builder.AddDocument("d2", {"car", "cable", "graffiti"});  // reversed order
  builder.AddDocument("d3", {"noise", "words", "only", "here"});
  return std::move(builder).Build();
}

// ---- Query structure ---------------------------------------------------------

TEST(QueryTest, FromTermsBuildsSingleClause) {
  Query q = Query::FromTerms({"a", "b"});
  ASSERT_EQ(q.clauses.size(), 1u);
  EXPECT_EQ(q.clauses[0].atoms.size(), 2u);
  EXPECT_EQ(q.NumAtoms(), 2u);
  EXPECT_FALSE(q.Empty());
  EXPECT_TRUE(Query::FromTerms({}).Empty());
}

TEST(QueryTest, ToStringRendersWeightsAndPhrases) {
  Query q;
  Clause clause;
  clause.weight = 2.0;
  clause.atoms.push_back(Atom::Term("cable"));
  clause.atoms.push_back(Atom::Phrase({"cable", "car"}, 3.0));
  q.clauses.push_back(clause);
  std::string rendered = q.ToString();
  EXPECT_NE(rendered.find("#1(cable car)"), std::string::npos);
  EXPECT_NE(rendered.find("2.000"), std::string::npos);
  EXPECT_NE(rendered.find("3.000"), std::string::npos);
}

// ---- Phrase matching -----------------------------------------------------------

TEST(PhraseMatcherTest, ExactAdjacencyOnly) {
  index::InvertedIndex index = MakeIndex();
  std::vector<text::TermId> ids = {index.LookupTerm("cable"),
                                   index.LookupTerm("car")};
  PhrasePostings pp = MatchPhrase(index, ids);
  // "cable car" occurs twice in d0, zero times in d2 ("car cable").
  ASSERT_EQ(pp.docs.size(), 1u);
  EXPECT_EQ(pp.docs[0], 0u);
  EXPECT_EQ(pp.freqs[0], 2u);
  EXPECT_EQ(pp.collection_frequency, 2u);
}

TEST(PhraseMatcherTest, MissingConstituentYieldsEmpty) {
  index::InvertedIndex index = MakeIndex();
  std::vector<text::TermId> ids = {index.LookupTerm("cable"),
                                   text::kInvalidTermId};
  PhrasePostings pp = MatchPhrase(index, ids);
  EXPECT_TRUE(pp.docs.empty());
  EXPECT_EQ(pp.collection_frequency, 0u);
}

TEST(PhraseMatcherTest, TrigramMatch) {
  index::IndexBuilder builder;
  builder.AddDocument("d0", {"a", "b", "c", "x", "a", "b", "c"});
  builder.AddDocument("d1", {"a", "b", "x", "c"});
  index::InvertedIndex index = std::move(builder).Build();
  std::vector<text::TermId> ids = {index.LookupTerm("a"),
                                   index.LookupTerm("b"),
                                   index.LookupTerm("c")};
  PhrasePostings pp = MatchPhrase(index, ids);
  ASSERT_EQ(pp.docs.size(), 1u);
  EXPECT_EQ(pp.freqs[0], 2u);
}

TEST(PhraseMatcherTest, RepeatedTermPhrase) {
  index::IndexBuilder builder;
  builder.AddDocument("d0", {"la", "la", "land"});
  index::InvertedIndex index = std::move(builder).Build();
  std::vector<text::TermId> ids = {index.LookupTerm("la"),
                                   index.LookupTerm("la")};
  PhrasePostings pp = MatchPhrase(index, ids);
  ASSERT_EQ(pp.docs.size(), 1u);
  EXPECT_EQ(pp.freqs[0], 1u);  // only positions (0,1) are adjacent
}

// ---- Scoring math ---------------------------------------------------------------

TEST(RetrieverTest, SingleTermScoreMatchesDirichletFormula) {
  index::InvertedIndex index = MakeIndex();
  RetrieverOptions options;
  options.mu = 100.0;
  Retriever retriever(&index, options);

  Query q = Query::FromTerms({"cable"});
  // tf("cable", d0)=2, |d0|=5, ctf=4, |C|=15.
  const double p_c = 4.0 / 15.0;
  const double expected =
      std::log((2.0 + options.mu * p_c) / (5.0 + options.mu));
  EXPECT_NEAR(retriever.ScoreDocument(q, 0), expected, 1e-12);

  // Non-matching doc gets pure background.
  const double bg = std::log((0.0 + options.mu * p_c) / (4.0 + options.mu));
  EXPECT_NEAR(retriever.ScoreDocument(q, 3), bg, 1e-12);
}

TEST(RetrieverTest, WeightsNormalizeAcrossClauses) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);

  // Two formulations that must be equivalent: one clause with weight 10 and
  // the same clause with weight 1 (weights normalize).
  Query q1, q2;
  {
    Clause c;
    c.weight = 10.0;
    c.atoms.push_back(Atom::Term("cable"));
    q1.clauses.push_back(c);
  }
  {
    Clause c;
    c.weight = 1.0;
    c.atoms.push_back(Atom::Term("cable"));
    q2.clauses.push_back(c);
  }
  for (index::DocId d = 0; d < 4; ++d) {
    EXPECT_NEAR(retriever.ScoreDocument(q1, d), retriever.ScoreDocument(q2, d),
                1e-12);
  }
}

TEST(RetrieverTest, TwoClauseScoreIsWeightedSum) {
  index::InvertedIndex index = MakeIndex();
  RetrieverOptions options;
  options.mu = 50.0;
  Retriever retriever(&index, options);

  Query cable = Query::FromTerms({"cable"});
  Query car = Query::FromTerms({"car"});
  Query both;
  {
    Clause c1;
    c1.weight = 3.0;
    c1.atoms.push_back(Atom::Term("cable"));
    Clause c2;
    c2.weight = 1.0;
    c2.atoms.push_back(Atom::Term("car"));
    both.clauses.push_back(c1);
    both.clauses.push_back(c2);
  }
  for (index::DocId d = 0; d < 4; ++d) {
    double expected = 0.75 * retriever.ScoreDocument(cable, d) +
                      0.25 * retriever.ScoreDocument(car, d);
    EXPECT_NEAR(retriever.ScoreDocument(both, d), expected, 1e-12);
  }
}

TEST(RetrieverTest, RetrieveRanksMatchingDocsFirst) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  ResultList results = retriever.Retrieve(Query::FromTerms({"cable"}), 4);
  ASSERT_EQ(results.size(), 4u);
  // d0 has tf 2; d1 and d2 tf 1; d3 none → last.
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_EQ(results[3].doc, 3u);
  EXPECT_GT(results[0].score, results[1].score);
}

TEST(RetrieverTest, RetrieveMatchesScoreDocument) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  Query q;
  Clause clause;
  clause.atoms.push_back(Atom::Term("cable"));
  clause.atoms.push_back(Atom::Phrase({"cable", "car"}, 2.0));
  q.clauses.push_back(clause);

  ResultList results = retriever.Retrieve(q, 4);
  for (const ScoredDoc& sd : results) {
    EXPECT_NEAR(sd.score, retriever.ScoreDocument(q, sd.doc), 1e-9);
  }
}

TEST(RetrieverTest, TiesBreakByDocId) {
  index::IndexBuilder builder;
  builder.AddDocument("a", {"same", "len"});
  builder.AddDocument("b", {"same", "len"});
  index::InvertedIndex index = std::move(builder).Build();
  Retriever retriever(&index);
  ResultList results = retriever.Retrieve(Query::FromTerms({"same"}), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].doc, 0u);
  EXPECT_EQ(results[1].doc, 1u);
}

TEST(RetrieverTest, EmptyAndUnknownQueries) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  EXPECT_TRUE(retriever.Retrieve(Query{}, 10).empty());
  // A query of only unknown terms still ranks (background only): shortest
  // docs first.
  ResultList results = retriever.Retrieve(Query::FromTerms({"zzzz"}), 4);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].doc, 1u);  // |d1| = 3 is the shortest
}

TEST(RetrieverTest, KLargerThanCollectionClamps) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  ResultList results = retriever.Retrieve(Query::FromTerms({"cable"}), 100);
  EXPECT_EQ(results.size(), 4u);
}

TEST(RetrieverTest, ZeroWeightAtomsIgnored) {
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  Query q;
  Clause clause;
  clause.atoms.push_back(Atom::Term("cable", 1.0));
  clause.atoms.push_back(Atom::Term("graffiti", 0.0));  // ignored
  q.clauses.push_back(clause);
  Query plain = Query::FromTerms({"cable"});
  for (index::DocId d = 0; d < 4; ++d) {
    EXPECT_NEAR(retriever.ScoreDocument(q, d),
                retriever.ScoreDocument(plain, d), 1e-12);
  }
}

class TopKSweepTest : public ::testing::TestWithParam<size_t> {};

TEST_P(TopKSweepTest, PrefixStability) {
  // The top-k list must be a prefix of the top-(k+n) list.
  index::InvertedIndex index = MakeIndex();
  Retriever retriever(&index);
  Query q = Query::FromTerms({"cable", "car"});
  const size_t k = GetParam();
  ResultList small = retriever.Retrieve(q, k);
  ResultList large = retriever.Retrieve(q, 4);
  ASSERT_LE(small.size(), large.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].doc, large[i].doc);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKSweepTest, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace sqe::retrieval
