#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "index/postings.h"

namespace sqe::index {
namespace {

// ---- PostingList ------------------------------------------------------------

TEST(PostingListTest, BuilderAccumulatesFrequenciesAndPositions) {
  PostingListBuilder builder;
  builder.AddOccurrence(3, 0);
  builder.AddOccurrence(3, 5);
  builder.AddOccurrence(9, 2);
  PostingList list = std::move(builder).Build();

  ASSERT_EQ(list.NumDocs(), 2u);
  EXPECT_EQ(list.CollectionFrequency(), 3u);
  EXPECT_EQ(list.doc(0), 3u);
  EXPECT_EQ(list.frequency(0), 2u);
  auto pos0 = list.positions(0);
  ASSERT_EQ(pos0.size(), 2u);
  EXPECT_EQ(pos0[0], 0u);
  EXPECT_EQ(pos0[1], 5u);
  EXPECT_EQ(list.doc(1), 9u);
  EXPECT_EQ(list.frequency(1), 1u);
  EXPECT_EQ(list.positions(1)[0], 2u);
}

TEST(PostingListTest, FindBinarySearches) {
  PostingListBuilder builder;
  for (DocId d : {2u, 4u, 8u, 16u}) builder.AddOccurrence(d, 0);
  PostingList list = std::move(builder).Build();
  EXPECT_EQ(list.Find(8), 2u);
  EXPECT_EQ(list.Find(3), PostingList::kNpos);
  EXPECT_EQ(list.Find(17), PostingList::kNpos);
}

class CursorSeekTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CursorSeekTest, SeekLandsOnFirstDocAtLeastTarget) {
  PostingListBuilder builder;
  std::vector<DocId> docs;
  for (DocId d = 0; d < 500; d += 1 + d % 7) {
    builder.AddOccurrence(d, 0);
    docs.push_back(d);
  }
  PostingList list = std::move(builder).Build();

  const DocId target = GetParam();
  auto cursor = list.MakeCursor();
  cursor.SeekTo(target);
  auto it = std::lower_bound(docs.begin(), docs.end(), target);
  if (it == docs.end()) {
    EXPECT_TRUE(cursor.AtEnd());
  } else {
    ASSERT_FALSE(cursor.AtEnd());
    EXPECT_EQ(cursor.Doc(), *it);
  }
}

INSTANTIATE_TEST_SUITE_P(Targets, CursorSeekTest,
                         ::testing::Values(0u, 1u, 7u, 100u, 250u, 499u,
                                           500u, 10000u));

TEST(CursorTest, SequentialSeeksMonotone) {
  PostingListBuilder builder;
  for (DocId d = 0; d < 100; d += 3) builder.AddOccurrence(d, 0);
  PostingList list = std::move(builder).Build();
  auto cursor = list.MakeCursor();
  DocId last = 0;
  for (DocId target : {5u, 10u, 11u, 50u, 98u}) {
    cursor.SeekTo(target);
    ASSERT_FALSE(cursor.AtEnd());
    EXPECT_GE(cursor.Doc(), target);
    EXPECT_GE(cursor.Doc(), last);
    last = cursor.Doc();
  }
}

// ---- IndexBuilder / InvertedIndex --------------------------------------------

InvertedIndex MakeSmallIndex() {
  IndexBuilder builder;
  builder.AddDocument("doc-a", {"cable", "car", "san", "francisco"});
  builder.AddDocument("doc-b", {"funicular", "railway", "cable"});
  builder.AddDocument("doc-c", {"graffiti", "wall", "art", "wall"});
  return std::move(builder).Build();
}

TEST(InvertedIndexTest, DocumentAccessors) {
  InvertedIndex index = MakeSmallIndex();
  EXPECT_EQ(index.NumDocuments(), 3u);
  EXPECT_EQ(index.DocLength(0), 4u);
  EXPECT_EQ(index.DocLength(2), 4u);
  EXPECT_EQ(index.ExternalId(1), "doc-b");
  EXPECT_EQ(index.FindDocument("doc-c"), 2u);
  EXPECT_EQ(index.FindDocument("doc-zzz"), kInvalidDoc);
  EXPECT_EQ(index.TotalTokens(), 11u);
  EXPECT_NEAR(index.AverageDocLength(), 11.0 / 3.0, 1e-12);
}

TEST(InvertedIndexTest, PostingsReflectOccurrences) {
  InvertedIndex index = MakeSmallIndex();
  text::TermId cable = index.LookupTerm("cable");
  ASSERT_NE(cable, text::kInvalidTermId);
  const PostingList& postings = index.Postings(cable);
  ASSERT_EQ(postings.NumDocs(), 2u);
  EXPECT_EQ(postings.doc(0), 0u);
  EXPECT_EQ(postings.doc(1), 1u);
  EXPECT_EQ(postings.positions(1)[0], 2u);  // "cable" at position 2 in doc-b

  text::TermId wall = index.LookupTerm("wall");
  EXPECT_EQ(index.Postings(wall).CollectionFrequency(), 2u);
  EXPECT_EQ(index.DocumentFrequency(wall), 1u);
}

TEST(InvertedIndexTest, ForwardIndexMatchesInput) {
  InvertedIndex index = MakeSmallIndex();
  auto terms = index.DocTerms(1);
  ASSERT_EQ(terms.size(), 3u);
  EXPECT_EQ(index.vocabulary().TermOf(terms[0]), "funicular");
  EXPECT_EQ(index.vocabulary().TermOf(terms[2]), "cable");
}

TEST(InvertedIndexTest, CollectionProbability) {
  InvertedIndex index = MakeSmallIndex();
  text::TermId wall = index.LookupTerm("wall");
  EXPECT_NEAR(index.CollectionProbability(wall), 2.0 / 11.0, 1e-12);
  // Unknown terms get the 1/|C| floor.
  EXPECT_NEAR(index.CollectionProbability(text::kInvalidTermId), 1.0 / 11.0,
              1e-12);
  EXPECT_NEAR(index.UnseenTermProbability(), 1.0 / 11.0, 1e-12);
}

TEST(InvertedIndexTest, EmptyIndexIsSane) {
  IndexBuilder builder;
  InvertedIndex index = std::move(builder).Build();
  EXPECT_EQ(index.NumDocuments(), 0u);
  EXPECT_EQ(index.TotalTokens(), 0u);
  EXPECT_EQ(index.AverageDocLength(), 0.0);
}

TEST(InvertedIndexTest, EmptyDocumentAllowed) {
  IndexBuilder builder;
  builder.AddDocument("empty", {});
  builder.AddDocument("full", {"term"});
  InvertedIndex index = std::move(builder).Build();
  EXPECT_EQ(index.DocLength(0), 0u);
  EXPECT_TRUE(index.DocTerms(0).empty());
  EXPECT_EQ(index.DocTerms(1).size(), 1u);
}

TEST(InvertedIndexTest, SnapshotRoundTripExact) {
  InvertedIndex index = MakeSmallIndex();
  auto loaded_or = InvertedIndex::FromSnapshotString(index.SerializeToString());
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const InvertedIndex& loaded = loaded_or.value();

  ASSERT_EQ(loaded.NumDocuments(), index.NumDocuments());
  EXPECT_EQ(loaded.TotalTokens(), index.TotalTokens());
  ASSERT_EQ(loaded.vocabulary().size(), index.vocabulary().size());
  for (size_t t = 0; t < index.vocabulary().size(); ++t) {
    text::TermId id = static_cast<text::TermId>(t);
    EXPECT_EQ(loaded.vocabulary().TermOf(id), index.vocabulary().TermOf(id));
    const PostingList& a = index.Postings(id);
    const PostingList& b = loaded.Postings(id);
    ASSERT_EQ(a.NumDocs(), b.NumDocs());
    EXPECT_EQ(a.CollectionFrequency(), b.CollectionFrequency());
    // The default snapshot version stores packed postings, so the loaded
    // list is read through the mode-agnostic cursor.
    PostingList::Cursor cb = b.MakeCursor();
    for (size_t i = 0; i < a.NumDocs(); ++i, cb.Next()) {
      ASSERT_FALSE(cb.AtEnd());
      EXPECT_EQ(a.doc(i), cb.Doc());
      EXPECT_EQ(a.frequency(i), cb.Frequency());
      auto pa = a.positions(i), pb = cb.Positions();
      EXPECT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
    }
    EXPECT_TRUE(cb.AtEnd());
  }
  for (size_t d = 0; d < index.NumDocuments(); ++d) {
    DocId doc = static_cast<DocId>(d);
    EXPECT_EQ(loaded.ExternalId(doc), index.ExternalId(doc));
    EXPECT_EQ(loaded.DocLength(doc), index.DocLength(doc));
    auto fa = index.DocTerms(doc), fb = loaded.DocTerms(doc);
    EXPECT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin(), fb.end()));
  }
}

TEST(InvertedIndexTest, CorruptSnapshotRejected) {
  InvertedIndex index = MakeSmallIndex();
  std::string image = index.SerializeToString();
  image[image.size() - 10] ^= 0x20;
  auto loaded = InvertedIndex::FromSnapshotString(std::move(image));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(InvertedIndexTest, TruncatedSnapshotRejected) {
  InvertedIndex index = MakeSmallIndex();
  std::string image = index.SerializeToString();
  auto loaded =
      InvertedIndex::FromSnapshotString(image.substr(0, image.size() / 3));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

}  // namespace
}  // namespace sqe::index
