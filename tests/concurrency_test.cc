// Concurrency coverage: the thread pool itself, the reciprocal-link CSR the
// parallel motif path relies on, and the batch pipeline's determinism
// guarantee — RunBatch over a worker pool must be byte-identical to
// sequential RunSqe. Run under SQE_SANITIZE=thread to prove race-freedom.
#include <atomic>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "kb/kb_builder.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

// ---- thread pool -----------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i, size_t worker) {
    ASSERT_LT(worker, pool.num_workers());
    hits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0u);
  EXPECT_EQ(pool.num_workers(), 1u);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i, size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // inline: no synchronization needed
  });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, SubmitRunsTasksBeforeJoin) {
  std::atomic<int> sum{0};
  {
    ThreadPool pool(2);
    for (int i = 1; i <= 10; ++i) {
      pool.Submit([&sum, i] { sum.fetch_add(i); });
    }
    // Destructor drains the queue and joins the workers.
  }
  EXPECT_EQ(sum.load(), 55);
}

TEST(ThreadPoolTest, ParallelForEmptyAndSingle) {
  ThreadPool pool(3);
  pool.ParallelFor(0, [](size_t, size_t) { FAIL(); });
  size_t count = 0;
  pool.ParallelFor(1, [&](size_t i, size_t) { count += i + 1; });
  EXPECT_EQ(count, 1u);
}

TEST(ThreadPoolTest, ParallelFor2DCoversEveryCellOnce) {
  ThreadPool pool(4);
  constexpr size_t kOuter = 13, kInner = 7;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.ParallelFor2D(kOuter, kInner, [&](size_t o, size_t i, size_t worker) {
    ASSERT_LT(o, kOuter);
    ASSERT_LT(i, kInner);
    ASSERT_LT(worker, pool.num_workers());
    hits[o * kInner + i].fetch_add(1);
  });
  for (size_t c = 0; c < hits.size(); ++c) EXPECT_EQ(hits[c].load(), 1) << c;
}

TEST(ThreadPoolTest, ParallelFor2DEmptyDimensionsRunNothing) {
  ThreadPool pool(2);
  pool.ParallelFor2D(0, 5, [](size_t, size_t, size_t) { FAIL(); });
  pool.ParallelFor2D(5, 0, [](size_t, size_t, size_t) { FAIL(); });
}

// ---- reciprocal-link CSR ---------------------------------------------------

TEST(ReciprocalCsrTest, MatchesPairwiseGroundTruthOnSynthWorld) {
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  const kb::KnowledgeBase& kb = world.kb;
  size_t total = 0;
  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    const kb::ArticleId id = static_cast<kb::ArticleId>(a);
    std::vector<kb::ArticleId> expected;
    for (kb::ArticleId b : kb.OutLinks(id)) {
      if (kb.HasLink(b, id)) expected.push_back(b);
    }
    auto got = kb.ReciprocalLinks(id);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), expected.begin(),
                           expected.end()))
        << "article " << a;
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    total += got.size();
    // Membership test agrees with the definition.
    for (kb::ArticleId b : expected) {
      EXPECT_TRUE(kb.ReciprocallyLinked(id, b));
      EXPECT_TRUE(kb.ReciprocallyLinked(b, id));
    }
  }
  EXPECT_GT(total, 0u);  // the synth world always has reciprocal pairs
}

TEST(ReciprocalCsrTest, RebuiltOnSnapshotLoad) {
  kb::KbBuilder builder;
  kb::ArticleId a = builder.AddArticle("A");
  kb::ArticleId b = builder.AddArticle("B");
  kb::ArticleId c = builder.AddArticle("C");
  builder.AddReciprocalLink(a, b);
  builder.AddArticleLink(a, c);  // one-way: must not appear
  kb::KnowledgeBase kb = std::move(builder).Build();

  auto loaded_or = kb::KnowledgeBase::FromSnapshotString(kb.SerializeToString());
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const kb::KnowledgeBase& loaded = loaded_or.value();
  ASSERT_EQ(loaded.ReciprocalLinks(a).size(), 1u);
  EXPECT_EQ(loaded.ReciprocalLinks(a)[0], b);
  ASSERT_EQ(loaded.ReciprocalLinks(b).size(), 1u);
  EXPECT_EQ(loaded.ReciprocalLinks(b)[0], a);
  EXPECT_TRUE(loaded.ReciprocalLinks(c).empty());
  EXPECT_FALSE(loaded.ReciprocallyLinked(a, c));
}

// ---- batch determinism -----------------------------------------------------

struct BatchFixture {
  synth::World world;
  synth::Dataset dataset;
  expansion::SqeEngine engine;

  BatchFixture()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())),
        engine(&world.kb, &dataset.index, dataset.linker.get(),
               &dataset.analyzer(), MakeConfig(dataset)) {}

  static expansion::SqeEngineConfig MakeConfig(const synth::Dataset& ds) {
    expansion::SqeEngineConfig config;
    config.retriever.mu = ds.retrieval_mu;
    return config;
  }

  std::vector<expansion::BatchQueryInput> MakeBatch() const {
    std::vector<expansion::BatchQueryInput> batch;
    for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
      batch.push_back({q.text, q.true_entities});
    }
    return batch;
  }
};

BatchFixture& SharedFixture() {
  static BatchFixture& fixture = *new BatchFixture();
  return fixture;
}

void ExpectIdenticalRun(const expansion::SqeRunResult& got,
                        const expansion::SqeRunResult& want, size_t qi) {
  // Results: same docs in the same order with bit-equal scores.
  ASSERT_EQ(got.results.size(), want.results.size()) << "query " << qi;
  for (size_t r = 0; r < got.results.size(); ++r) {
    EXPECT_EQ(got.results[r].doc, want.results[r].doc)
        << "query " << qi << " rank " << r;
    EXPECT_EQ(got.results[r].score, want.results[r].score)
        << "query " << qi << " rank " << r;
  }
  // Graphs: same expansion nodes, counts, and categories.
  ASSERT_EQ(got.graph.expansion_nodes.size(),
            want.graph.expansion_nodes.size());
  for (size_t e = 0; e < got.graph.expansion_nodes.size(); ++e) {
    EXPECT_EQ(got.graph.expansion_nodes[e].article,
              want.graph.expansion_nodes[e].article);
    EXPECT_EQ(got.graph.expansion_nodes[e].motif_count,
              want.graph.expansion_nodes[e].motif_count);
  }
  EXPECT_EQ(got.graph.total_motifs, want.graph.total_motifs);
  EXPECT_EQ(got.graph.category_nodes, want.graph.category_nodes);
}

TEST(RunBatchTest, ParallelIsByteIdenticalToSequential) {
  BatchFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 4u);
  constexpr size_t kDepth = 100;
  const auto motifs = expansion::MotifConfig::Both();

  // Sequential reference via the public single-query API.
  std::vector<expansion::SqeRunResult> reference;
  for (const expansion::BatchQueryInput& q : batch) {
    reference.push_back(
        f.engine.RunSqe(q.text, q.query_nodes, motifs, kDepth));
  }

  ThreadPool pool(4);
  std::vector<expansion::SqeRunResult> parallel =
      f.engine.RunBatch(batch, motifs, kDepth, &pool);

  ASSERT_EQ(parallel.size(), reference.size());
  for (size_t qi = 0; qi < parallel.size(); ++qi) {
    ExpectIdenticalRun(parallel[qi], reference[qi], qi);
  }
}

TEST(RunBatchTest, NullPoolMatchesSequential) {
  BatchFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  constexpr size_t kDepth = 50;
  const auto motifs = expansion::MotifConfig::Triangular();

  std::vector<expansion::SqeRunResult> sequential =
      f.engine.RunBatch(batch, motifs, kDepth, nullptr);
  ASSERT_EQ(sequential.size(), batch.size());
  for (size_t qi = 0; qi < batch.size(); ++qi) {
    expansion::SqeRunResult single = f.engine.RunSqe(
        batch[qi].text, batch[qi].query_nodes, motifs, kDepth);
    ExpectIdenticalRun(sequential[qi], single, qi);
  }
}

TEST(RunBatchTest, RepeatedParallelRunsAgree) {
  // Re-running the same batch must reproduce itself exactly: per-worker
  // scratch reuse may not leak state across queries.
  BatchFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  constexpr size_t kDepth = 100;
  const auto motifs = expansion::MotifConfig::Both();

  ThreadPool pool(4);
  auto first = f.engine.RunBatch(batch, motifs, kDepth, &pool);
  auto second = f.engine.RunBatch(batch, motifs, kDepth, &pool);
  ASSERT_EQ(first.size(), second.size());
  for (size_t qi = 0; qi < first.size(); ++qi) {
    ExpectIdenticalRun(second[qi], first[qi], qi);
  }
}

}  // namespace
}  // namespace sqe
