// WAND coverage: the Block-Max WAND pruned scorer must be bit-identical to
// the exhaustive Retriever for every query shape, range partition, and k —
// that is the entire contract (retrieval/wand_retriever.h). Hand-built
// small indices pin the pivot/skip edge cases; a property test sweeps
// random corpora × shard counts × k against the exhaustive oracle; and the
// engine-level tests prove the --prune configuration composes with
// sharding, pools, and the cache without changing a byte. Run under
// SQE_SANITIZE=thread / address,undefined in CI (the "Pruning determinism
// gate").
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "common/thread_pool.h"
#include "index/inverted_index.h"
#include "retrieval/query.h"
#include "retrieval/result.h"
#include "retrieval/retriever.h"
#include "retrieval/shard_router.h"
#include "retrieval/sharded_retriever.h"
#include "retrieval/wand_retriever.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

using index::DocId;
using retrieval::Atom;
using retrieval::Clause;
using retrieval::Query;
using retrieval::ResultList;
using retrieval::Retriever;
using retrieval::RetrieverOptions;
using retrieval::RetrieverScratch;
using retrieval::ShardRouter;
using retrieval::WandRetriever;
using retrieval::WandStats;

// Bit-identical comparison: same docs, same score bytes, same order.
void ExpectIdentical(const ResultList& got, const ResultList& want,
                     const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

// Exhaustive vs pruned over the full collection at one k.
void CheckQuery(const Retriever& retriever, const WandRetriever& wand,
                const Query& query, size_t k, const std::string& label) {
  RetrieverScratch s1, s2;
  ResultList want = retriever.Retrieve(query, k, &s1);
  ResultList got = wand.Retrieve(query, k, &s2);
  ExpectIdentical(got, want, label);
}

// ---- hand-built edge cases --------------------------------------------------

TEST(WandRetrieverTest, SingleAtomQueryMatchesExhaustive) {
  index::IndexBuilder builder;
  builder.AddDocument("d0", {"cable", "car", "cable"});
  builder.AddDocument("d1", {"cable"});
  builder.AddDocument("d2", {"hill", "top"});
  builder.AddDocument("d3", {"car", "car", "car", "car"});
  index::InvertedIndex index = std::move(builder).Build();
  Retriever retriever(&index);
  WandRetriever wand(&retriever);
  for (size_t k : {1u, 2u, 4u, 9u}) {
    CheckQuery(retriever, wand, Query::FromTerms({"cable"}), k,
               "single-atom k=" + std::to_string(k));
    CheckQuery(retriever, wand, Query::FromTerms({"missing"}), k,
               "unknown-term k=" + std::to_string(k));
  }
  WandStats stats = wand.Stats();
  EXPECT_GT(stats.queries, 0u);
  EXPECT_EQ(stats.fallbacks, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(WandRetrieverTest, AllEqualBlockMaximaNoBoundDiscrimination) {
  // Every frequency is 1, so term-level and block-level upper bounds are
  // identical everywhere and pruning gets no leverage from maxima — the
  // threshold alone must carry it, and results must still be exact.
  index::IndexBuilder builder;
  for (int d = 0; d < 40; ++d) {
    std::vector<std::string> words = {"alpha", "beta"};
    if (d % 2 == 0) words.push_back("gamma");
    if (d % 3 == 0) words.push_back("delta");
    words.push_back("pad" + std::to_string(d % 7));
    builder.AddDocument("d" + std::to_string(d), words);
  }
  index::InvertedIndex index = std::move(builder).Build();
  Retriever retriever(&index);
  WandRetriever wand(&retriever);
  for (size_t k : {1u, 3u, 10u, 40u, 100u}) {
    CheckQuery(retriever, wand,
               Query::FromTerms({"alpha", "gamma", "delta"}), k,
               "all-equal k=" + std::to_string(k));
  }
}

TEST(WandRetrieverTest, KGreaterThanMatchingDocs) {
  // Only 2 documents match any atom but k asks for 6: the background tail
  // must fill the remainder in exactly the exhaustive order.
  index::IndexBuilder builder;
  builder.AddDocument("m0", {"rare", "word", "here"});
  builder.AddDocument("m1", {"rare"});
  for (int d = 0; d < 5; ++d) {
    builder.AddDocument("bg" + std::to_string(d),
                        std::vector<std::string>(d + 1, "filler"));
  }
  index::InvertedIndex index = std::move(builder).Build();
  Retriever retriever(&index);
  WandRetriever wand(&retriever);
  for (size_t k : {1u, 2u, 3u, 6u, 7u, 50u}) {
    CheckQuery(retriever, wand, Query::FromTerms({"rare", "word"}), k,
               "k>=matches k=" + std::to_string(k));
  }
}

TEST(WandRetrieverTest, PhraseAtomFallsBackToExhaustive) {
  index::IndexBuilder builder;
  builder.AddDocument("d0", {"cable", "car", "cable", "car"});
  builder.AddDocument("d1", {"car", "cable"});
  builder.AddDocument("d2", {"cable", "cable", "car"});
  index::InvertedIndex index = std::move(builder).Build();
  Retriever retriever(&index);
  WandRetriever wand(&retriever);

  Query q;
  Clause clause;
  clause.atoms.push_back(Atom::Term("cable"));
  clause.atoms.push_back(Atom::Phrase({"cable", "car"}, 2.0));
  q.clauses.push_back(clause);

  const uint64_t fallbacks_before = wand.Stats().fallbacks;
  CheckQuery(retriever, wand, q, 3, "phrase-fallback");
  WandStats stats = wand.Stats();
  EXPECT_GT(stats.fallbacks, fallbacks_before);
}

TEST(WandRetrieverTest, MultiBlockListsSkipPostings) {
  // >128 postings per term forces multiple blocks. "common" appears once
  // everywhere; "spike" is frequent in a few late documents. With small k
  // the threshold rises past the flat blocks' bounds quickly, so the scorer
  // must skip postings — and still agree bit-for-bit.
  index::IndexBuilder builder;
  for (int d = 0; d < 400; ++d) {
    std::vector<std::string> words = {"common"};
    if (d % 97 == 3) {
      for (int r = 0; r < 8; ++r) words.push_back("spike");
    }
    words.push_back("len" + std::to_string(d % 11));
    builder.AddDocument("d" + std::to_string(d), words);
  }
  index::InvertedIndex index = std::move(builder).Build();
  ASSERT_GT(index.Postings(index.LookupTerm("common")).NumBlocks(), 1u);

  Retriever retriever(&index);
  WandRetriever wand(&retriever);
  for (size_t k : {1u, 5u, 10u}) {
    CheckQuery(retriever, wand, Query::FromTerms({"common", "spike"}), k,
               "multi-block k=" + std::to_string(k));
  }
  WandStats stats = wand.Stats();
  EXPECT_GT(stats.postings_total, 0u);
  EXPECT_LT(stats.postings_scored, stats.postings_total);
  EXPECT_GT(stats.SkipFraction(), 0.0);
}

// ---- property test: random corpora × shards × k -----------------------------

TEST(WandRetrieverPropertyTest, MatchesOracleAcrossCorporaShardsAndK) {
  Rng rng(20260807);
  for (int corpus = 0; corpus < 6; ++corpus) {
    // Random corpus: zipf-ish draws from a small lexicon so posting lists
    // overlap heavily and frequencies vary within and across blocks.
    const size_t vocab = 8 + rng.NextBounded(24);
    const size_t num_docs = 60 + rng.NextBounded(300);
    index::IndexBuilder builder;
    for (size_t d = 0; d < num_docs; ++d) {
      const size_t len = 2 + rng.NextBounded(24);
      std::vector<std::string> words;
      words.reserve(len);
      for (size_t w = 0; w < len; ++w) {
        // Square the draw to skew toward low term ids (frequent terms).
        const uint64_t r = rng.NextBounded(vocab * vocab);
        words.push_back("t" + std::to_string(static_cast<size_t>(
                                 r * r / (vocab * vocab * vocab))));
      }
      builder.AddDocument("d" + std::to_string(d), words);
    }
    index::InvertedIndex index = std::move(builder).Build();
    RetrieverOptions options;
    options.mu = 50.0 + static_cast<double>(rng.NextBounded(500));
    Retriever retriever(&index, options);
    WandRetriever wand(&retriever);

    for (int qi = 0; qi < 8; ++qi) {
      Query query;
      Clause clause;
      const size_t num_atoms = 1 + rng.NextBounded(20);
      for (size_t a = 0; a < num_atoms; ++a) {
        Atom atom =
            Atom::Term("t" + std::to_string(rng.NextBounded(vocab + 2)));
        atom.weight = 0.05 + 0.1 * static_cast<double>(rng.NextBounded(40));
        clause.atoms.push_back(atom);
      }
      query.clauses.push_back(clause);

      for (size_t k : {1u, 10u, 100u}) {
        RetrieverScratch scratch;
        ResultList want = retriever.Retrieve(query, k, &scratch);
        const std::string label = "corpus " + std::to_string(corpus) +
                                  " query " + std::to_string(qi) + " k=" +
                                  std::to_string(k);
        ResultList got = wand.Retrieve(query, k, &scratch);
        ExpectIdentical(got, want, label + " unsharded");

        for (size_t shards : {1u, 3u}) {
          ShardRouter router(&index, shards);
          retrieval::ResolvedQuery resolved = retriever.Resolve(query);
          std::vector<ResultList> lists(router.num_shards());
          for (size_t s = 0; s < router.num_shards(); ++s) {
            lists[s] = wand.RetrieveRange(resolved, router.shard_begin(s),
                                          router.shard_end(s),
                                          router.ShardDocsByLength(s), k,
                                          &scratch);
          }
          ResultList merged = retrieval::MergeShardTopK(lists, k);
          ExpectIdentical(merged, want,
                          label + " shards=" + std::to_string(shards));
        }
      }
    }
  }
}

// ---- engine-level composition ----------------------------------------------

struct WandEngineFixture {
  synth::World world;
  synth::Dataset dataset;

  WandEngineFixture()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())) {}

  expansion::SqeEngineConfig MakeConfig(bool prune, size_t shards,
                                        bool cache) const {
    expansion::SqeEngineConfig config;
    config.retriever.mu = dataset.retrieval_mu;
    config.pruning.enabled = prune;
    config.sharding.num_shards = shards;
    config.cache.enabled = cache;
    return config;
  }

  expansion::SqeEngine MakeEngine(bool prune, size_t shards,
                                  bool cache) const {
    return expansion::SqeEngine(&world.kb, &dataset.index,
                                dataset.linker.get(), &dataset.analyzer(),
                                MakeConfig(prune, shards, cache));
  }

  std::vector<expansion::BatchQueryInput> MakeBatch() const {
    std::vector<expansion::BatchQueryInput> batch;
    for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
      batch.push_back({q.text, q.true_entities});
    }
    return batch;
  }
};

WandEngineFixture& SharedFixture() {
  static WandEngineFixture& fixture = *new WandEngineFixture();
  return fixture;
}

TEST(SqeEnginePruningTest, PrunedBitIdenticalAcrossShardsPoolsAndCache) {
  WandEngineFixture& f = SharedFixture();
  const auto batch = f.MakeBatch();
  ASSERT_GE(batch.size(), 4u);
  constexpr size_t kDepth = 50;
  const auto motifs = expansion::MotifConfig::Both();

  expansion::SqeEngine reference_engine = f.MakeEngine(false, 1, false);
  std::vector<expansion::SqeRunResult> reference =
      reference_engine.RunBatch(batch, motifs, kDepth, nullptr);

  for (size_t shards : {size_t{1}, size_t{3}}) {
    for (bool cache : {false, true}) {
      expansion::SqeEngine pruned = f.MakeEngine(true, shards, cache);
      EXPECT_TRUE(pruned.pruning_enabled());
      for (size_t threads : {size_t{0}, size_t{3}}) {
        ThreadPool pool(threads);
        // Two passes: cache-cold then cache-warm (both no-ops when the
        // cache is off). Every pass must match the exhaustive reference.
        for (int pass = 0; pass < 2; ++pass) {
          std::vector<expansion::SqeRunResult> got =
              pruned.RunBatch(batch, motifs, kDepth, &pool);
          ASSERT_EQ(got.size(), reference.size());
          for (size_t qi = 0; qi < got.size(); ++qi) {
            const std::string label =
                "shards=" + std::to_string(shards) +
                " cache=" + std::to_string(cache) +
                " threads=" + std::to_string(threads) +
                " pass=" + std::to_string(pass) +
                " query=" + std::to_string(qi);
            ExpectIdentical(got[qi].results, reference[qi].results, label);
          }
        }
      }
      WandStats stats = pruned.wand_stats();
      EXPECT_GT(stats.queries + stats.fallbacks, 0u);
    }
  }
}

TEST(SqeEnginePruningTest, DisabledEngineReportsZeroStats) {
  WandEngineFixture& f = SharedFixture();
  expansion::SqeEngine engine = f.MakeEngine(false, 1, false);
  EXPECT_FALSE(engine.pruning_enabled());
  WandStats stats = engine.wand_stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.postings_total, 0u);
}

}  // namespace
}  // namespace sqe
