// Coverage for the deep structural validators themselves: build a valid
// KnowledgeBase / InvertedIndex, break one invariant through the test peer,
// and assert Validate() rejects it with a message that pinpoints the
// violation. Each breakage mirrors a way a snapshot could be corrupted
// without tripping CRC (buggy writer, version skew, hostile edit).
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "index/inverted_index.h"
#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"
#include "text/vocabulary.h"

namespace sqe::kb {

// Grants the validator tests raw access to the CSR internals.
struct KnowledgeBaseTestPeer {
  static std::vector<ArticleId>& link_targets(KnowledgeBase& kb) {
    return kb.article_link_targets_.vec();
  }
  static std::vector<uint64_t>& link_offsets(KnowledgeBase& kb) {
    return kb.article_link_offsets_.vec();
  }
  static std::vector<ArticleId>& reciprocal_targets(KnowledgeBase& kb) {
    return kb.reciprocal_targets_.vec();
  }
  static std::vector<uint64_t>& reciprocal_offsets(KnowledgeBase& kb) {
    return kb.reciprocal_offsets_.vec();
  }
  static std::vector<ArticleId>& inlink_sources(KnowledgeBase& kb) {
    return kb.article_inlink_sources_.vec();
  }
  static std::vector<std::string>& article_titles(KnowledgeBase& kb) {
    return kb.article_titles_.owned();
  }
};

namespace {

KnowledgeBase MakeValidKb() {
  KbBuilder builder;
  ArticleId a = builder.AddArticle("A");
  ArticleId b = builder.AddArticle("B");
  ArticleId c = builder.AddArticle("C");
  CategoryId x = builder.AddCategory("Category:X");
  CategoryId y = builder.AddCategory("Category:Y");
  builder.AddReciprocalLink(a, b);
  builder.AddArticleLink(a, c);
  builder.AddArticleLink(c, b);
  builder.AddMembership(a, x);
  builder.AddMembership(b, x);
  builder.AddMembership(c, y);
  builder.AddCategoryLink(y, x);
  return std::move(builder).Build();
}

TEST(KbValidateTest, ValidKbPasses) {
  KnowledgeBase kb = MakeValidKb();
  Status s = kb.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(KbValidateTest, UnsortedAdjacencyPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  // Article A links to {B, C} sorted; swap them so the list descends.
  auto& targets = KnowledgeBaseTestPeer::link_targets(kb);
  ASSERT_GE(targets.size(), 2u);
  std::swap(targets[0], targets[1]);
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("not strictly ascending"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("article_links"), std::string::npos)
      << s.ToString();
}

TEST(KbValidateTest, OutOfRangeTargetPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  KnowledgeBaseTestPeer::link_targets(kb).back() = 999;
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of range"), std::string::npos)
      << s.ToString();
}

TEST(KbValidateTest, NonMonotoneOffsetsPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  auto& offsets = KnowledgeBaseTestPeer::link_offsets(kb);
  ASSERT_GE(offsets.size(), 3u);
  // Make offsets dip: node 1 "starts" after it ends.
  std::swap(offsets[1], offsets[2]);
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("monotone"), std::string::npos) << s.ToString();
}

TEST(KbValidateTest, AsymmetricReciprocalCsrPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  // A<->B is the only mutual pair, so the reciprocal CSR holds B for A and
  // A for B. Claim A also reciprocates C (a one-way link in reality).
  ArticleId a = kb.FindArticle("A");
  ArticleId c = kb.FindArticle("C");
  auto& rec_targets = KnowledgeBaseTestPeer::reciprocal_targets(kb);
  auto& rec_offsets = KnowledgeBaseTestPeer::reciprocal_offsets(kb);
  rec_targets.insert(rec_targets.begin() + rec_offsets[a + 1], c);
  for (size_t i = a + 1; i < rec_offsets.size(); ++i) rec_offsets[i]++;
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("reciprocal"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("not a mutual"), std::string::npos)
      << s.ToString();
}

TEST(KbValidateTest, MissingReciprocalEntryPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  // Drop B from A's reciprocal list: the CSR now misses a mutual pair.
  ArticleId a = kb.FindArticle("A");
  auto& rec_targets = KnowledgeBaseTestPeer::reciprocal_targets(kb);
  auto& rec_offsets = KnowledgeBaseTestPeer::reciprocal_offsets(kb);
  rec_targets.erase(rec_targets.begin() + rec_offsets[a]);
  for (size_t i = a + 1; i < rec_offsets.size(); ++i) rec_offsets[i]--;
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("missing mutual neighbor"), std::string::npos)
      << s.ToString();
}

TEST(KbValidateTest, ReverseCsrDriftPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  // Repoint one inlink source at a different article: degrees stay intact
  // for neither node, so the reverse-consistency check fires.
  auto& sources = KnowledgeBaseTestPeer::inlink_sources(kb);
  ASSERT_FALSE(sources.empty());
  sources[0] = sources[0] == 0 ? 1 : 0;
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST(KbValidateTest, DuplicateTitlesPinpointed) {
  KnowledgeBase kb = MakeValidKb();
  auto& titles = KnowledgeBaseTestPeer::article_titles(kb);
  titles[1] = titles[0];  // two articles now share a title
  Status s = kb.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("title map"), std::string::npos) << s.ToString();
}

}  // namespace
}  // namespace sqe::kb

namespace sqe::index {

struct InvertedIndexTestPeer {
  static std::vector<PostingList>& postings(InvertedIndex& idx) {
    return idx.postings_;
  }
  static std::vector<uint32_t>& doc_lengths(InvertedIndex& idx) {
    return idx.doc_lengths_.vec();
  }
  static std::vector<DocId>& docs_by_length(InvertedIndex& idx) {
    return idx.docs_by_length_.vec();
  }
  static uint64_t& total_tokens(InvertedIndex& idx) {
    return idx.total_tokens_;
  }
  static std::vector<text::TermId>& doc_terms(InvertedIndex& idx) {
    return idx.doc_terms_.vec();
  }
};

namespace {

// Mutable access to a PostingList's arrays, via rebuild: posting lists are
// immutable by design, so malformed ones are constructed, not mutated.
PostingList MakePostingList(const std::vector<DocId>& docs,
                            const std::vector<std::vector<uint32_t>>& pos) {
  PostingListBuilder builder;
  for (size_t i = 0; i < docs.size(); ++i) {
    for (uint32_t p : pos[i]) builder.AddOccurrence(docs[i], p);
  }
  return std::move(builder).Build();
}

InvertedIndex MakeValidIndex() {
  IndexBuilder builder;
  builder.AddDocument("d0", {"motif", "graph", "motif"});
  builder.AddDocument("d1", {"graph", "query"});
  builder.AddDocument("d2", {"query", "motif", "wiki", "graph"});
  return std::move(builder).Build();
}

TEST(IndexValidateTest, ValidIndexPasses) {
  InvertedIndex index = MakeValidIndex();
  Status s = index.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(IndexValidateTest, OutOfRangePostingDocIdPinpointed) {
  InvertedIndex index = MakeValidIndex();
  // Replace term 0's posting list with one naming a nonexistent document.
  auto& postings = InvertedIndexTestPeer::postings(index);
  postings[0] = MakePostingList({2, 57}, {{1, 3}, {0}});
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_NE(s.message().find("out of range"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("term 0"), std::string::npos) << s.ToString();
}

TEST(IndexValidateTest, PostingForwardDisagreementPinpointed) {
  InvertedIndex index = MakeValidIndex();
  // "motif" (term 0) occurs 3 times in the forward index; hand it a posting
  // list claiming only one occurrence. Doc ids stay valid, so only the
  // cross-check can catch the drift.
  auto& postings = InvertedIndexTestPeer::postings(index);
  postings[0] = MakePostingList({0}, {{0}});
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("collection frequency"), std::string::npos)
      << s.ToString();
}

TEST(IndexValidateTest, DocLengthMismatchPinpointed) {
  InvertedIndex index = MakeValidIndex();
  uint32_t& len = InvertedIndexTestPeer::doc_lengths(index)[1];
  InvertedIndexTestPeer::total_tokens(index) += 2;  // keep the sum consistent
  len += 2;
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("doc 1 length"), std::string::npos)
      << s.ToString();
}

TEST(IndexValidateTest, TotalTokensMismatchPinpointed) {
  InvertedIndex index = MakeValidIndex();
  InvertedIndexTestPeer::total_tokens(index) += 5;
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("total tokens"), std::string::npos)
      << s.ToString();
}

TEST(IndexValidateTest, ForwardTermOutOfVocabularyPinpointed) {
  InvertedIndex index = MakeValidIndex();
  InvertedIndexTestPeer::doc_terms(index)[0] = 4096;
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of vocabulary range"), std::string::npos)
      << s.ToString();
}

TEST(IndexValidateTest, BrokenDocsByLengthOrderPinpointed) {
  InvertedIndex index = MakeValidIndex();
  auto& order = InvertedIndexTestPeer::docs_by_length(index);
  ASSERT_GE(order.size(), 2u);
  std::swap(order.front(), order.back());
  Status s = index.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("docs-by-length"), std::string::npos)
      << s.ToString();
}

// ---- PostingList::Validate in isolation -----------------------------------

TEST(PostingListValidateTest, ValidListPasses) {
  PostingList list = MakePostingList({1, 4, 9}, {{0, 2}, {1}, {5, 6, 7}});
  Status s = list.Validate(10);
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(PostingListValidateTest, DocBeyondCollectionRejected) {
  PostingList list = MakePostingList({1, 4}, {{0}, {1}});
  Status s = list.Validate(4);  // doc 4 needs num_docs >= 5
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("out of range"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace sqe::index

namespace sqe::text {

struct VocabularyTestPeer {
  static std::vector<std::string>& terms(Vocabulary& v) {
    return v.terms_.owned();
  }
  static std::unordered_map<std::string, TermId>& index(Vocabulary& v) {
    return v.index_;
  }
};

namespace {

TEST(VocabularyValidateTest, ValidVocabularyPasses) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  vocab.GetOrAdd("beta");
  Status s = vocab.Validate();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST(VocabularyValidateTest, DuplicateTermStringsPinpointed) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  vocab.GetOrAdd("beta");
  // Two ids now claim the same spelling; the map collapses to one entry.
  VocabularyTestPeer::terms(vocab)[1] = "alpha";
  VocabularyTestPeer::index(vocab).erase("beta");
  Status s = vocab.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate term strings"), std::string::npos)
      << s.ToString();
}

TEST(VocabularyValidateTest, StaleMapEntryPinpointed) {
  Vocabulary vocab;
  vocab.GetOrAdd("alpha");
  vocab.GetOrAdd("beta");
  // Swap the ids behind the map's back: lookups no longer round-trip.
  VocabularyTestPeer::index(vocab)["alpha"] = 1;
  VocabularyTestPeer::index(vocab)["beta"] = 0;
  Status s = vocab.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("round-trip"), std::string::npos)
      << s.ToString();
}

}  // namespace
}  // namespace sqe::text
