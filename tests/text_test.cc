#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "text/analyzer.h"
#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"
#include "text/vocabulary.h"

namespace sqe::text {
namespace {

// ---- tokenizer ---------------------------------------------------------------

TEST(TokenizerTest, LowercasesAndSplitsOnNonAlnum) {
  auto terms = TokenizeToTerms("Cable-Cars, in SAN Francisco!");
  std::vector<std::string> expected = {"cable", "cars", "in", "san",
                                       "francisco"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, ApostropheSplitsLikeIndri) {
  auto terms = TokenizeToTerms("user's intent");
  std::vector<std::string> expected = {"user", "s", "intent"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, DigitsAreTokens) {
  auto terms = TokenizeToTerms("CHiC 2012 & 2013");
  std::vector<std::string> expected = {"chic", "2012", "2013"};
  EXPECT_EQ(terms, expected);
}

TEST(TokenizerTest, OffsetsPointIntoSource) {
  std::string source = "ab  cd";
  auto tokens = Tokenize(source);
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].begin, 0u);
  EXPECT_EQ(tokens[0].end, 2u);
  EXPECT_EQ(tokens[1].begin, 4u);
  EXPECT_EQ(tokens[1].end, 6u);
  EXPECT_EQ(source.substr(tokens[1].begin, tokens[1].end - tokens[1].begin),
            "cd");
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! --- ???").empty());
}

// ---- stopwords ----------------------------------------------------------------

TEST(StopwordTest, CommonWordsAreStopwords) {
  for (const char* w : {"the", "a", "of", "and", "is", "was", "yourselves"}) {
    EXPECT_TRUE(IsStopword(w)) << w;
  }
}

TEST(StopwordTest, ContentWordsAreNot) {
  for (const char* w : {"cable", "graffiti", "wikipedia", "funicular", ""}) {
    EXPECT_FALSE(IsStopword(w)) << w;
  }
}

TEST(StopwordTest, ListIsSortedForBinarySearch) {
  // Indirect check: every listed count is consistent and both ends resolve.
  EXPECT_GT(StopwordCount(), 100u);
  EXPECT_TRUE(IsStopword("a"));
  EXPECT_TRUE(IsStopword("yourselves"));
}

// ---- Porter stemmer ------------------------------------------------------------

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemmerTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerTest, MatchesReferenceStems) {
  EXPECT_EQ(PorterStem(GetParam().input), GetParam().expected);
}

// Reference outputs from Porter's published algorithm (and its canonical
// vocabulary test file).
INSTANTIATE_TEST_SUITE_P(
    Vocabulary, PorterStemmerTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication", "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti", "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsPassThrough) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemmerTest, IdempotentOnStems) {
  for (const char* w : {"cat", "oper", "formal", "electr", "walk"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

// ---- analyzer -------------------------------------------------------------------

TEST(AnalyzerTest, FullPipeline) {
  Analyzer analyzer;
  auto terms = analyzer.Analyze("The cars were running in the cities");
  std::vector<std::string> expected = {"car", "run", "citi"};
  EXPECT_EQ(terms, expected);
}

TEST(AnalyzerTest, StopwordRemovalCanBeDisabled) {
  AnalyzerOptions options;
  options.remove_stopwords = false;
  options.stem = false;
  Analyzer analyzer(options);
  auto terms = analyzer.Analyze("the cars");
  std::vector<std::string> expected = {"the", "cars"};
  EXPECT_EQ(terms, expected);
}

TEST(AnalyzerTest, MinTermLengthDropsShortTerms) {
  AnalyzerOptions options;
  options.min_term_length = 3;
  Analyzer analyzer(options);
  auto terms = analyzer.Analyze("go to big cities");
  // "go" (len 2) dropped; "to" is a stopword anyway.
  std::vector<std::string> expected = {"big", "citi"};
  EXPECT_EQ(terms, expected);
}

TEST(AnalyzerTest, PhraseAnalysisKeepsOrder) {
  Analyzer analyzer;
  auto terms = analyzer.AnalyzePhrase("Cable Cars");
  std::vector<std::string> expected = {"cabl", "car"};
  EXPECT_EQ(terms, expected);
}

// ---- vocabulary -------------------------------------------------------------------

TEST(VocabularyTest, AssignsDenseIdsInInsertionOrder) {
  Vocabulary vocab;
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(vocab.GetOrAdd("beta"), 1u);
  EXPECT_EQ(vocab.GetOrAdd("alpha"), 0u);
  EXPECT_EQ(vocab.size(), 2u);
  EXPECT_EQ(vocab.TermOf(1), "beta");
}

TEST(VocabularyTest, LookupMissingReturnsInvalid) {
  Vocabulary vocab;
  vocab.GetOrAdd("present");
  EXPECT_EQ(vocab.Lookup("absent"), kInvalidTermId);
  EXPECT_EQ(vocab.Lookup("present"), 0u);
}

TEST(VocabularyTest, SurvivesMove) {
  Vocabulary vocab;
  for (int i = 0; i < 100; ++i) vocab.GetOrAdd("term" + std::to_string(i));
  Vocabulary moved = std::move(vocab);
  EXPECT_EQ(moved.Lookup("term42"), 42u);
  EXPECT_EQ(moved.TermOf(99), "term99");
}

}  // namespace
}  // namespace sqe::text
