// Property-based suites: randomized (seeded, reproducible) invariants that
// complement the example-based unit tests — round-trips, cross-checks
// against brute-force oracles, and validator sweeps over generated worlds.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "analysis/cycle_enumerator.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "serving/frontend.h"
#include "serving/snapshot_registry.h"
#include "eval/ttest.h"
#include "index/inverted_index.h"
#include "io/coding.h"
#include "io/file.h"
#include "kb/kb_builder.h"
#include "retrieval/phrase_matcher.h"
#include "retrieval/retriever.h"
#include "sqe/motif_finder.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

// ---- io: randomized round-trips ------------------------------------------------

class CodingFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodingFuzz, RandomStreamsRoundTrip) {
  Rng rng(GetParam());
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 200; ++i) {
    // Mix magnitudes: small, medium, huge.
    int shift = static_cast<int>(rng.NextBounded(64));
    uint64_t v = rng.NextU64() >> shift;
    values.push_back(v);
    io::PutVarint64(&buf, v);
  }
  std::string_view in(buf);
  for (uint64_t expected : values) {
    uint64_t v;
    ASSERT_TRUE(io::GetVarint64(&in, &v));
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST_P(CodingFuzz, RandomBytesNeverCrashDecoder) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int round = 0; round < 50; ++round) {
    std::string garbage;
    size_t len = rng.NextBounded(64);
    for (size_t i = 0; i < len; ++i) {
      garbage.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    // Decoding must either succeed or fail cleanly; no UB, no crash.
    std::string_view in(garbage);
    uint64_t v64;
    (void)io::GetVarint64(&in, &v64);
    std::string_view in2(garbage);
    std::string_view piece;
    (void)io::GetLengthPrefixed(&in2, &piece);
    auto snapshot = io::SnapshotReader::Open(garbage, 0xABCD);
    if (snapshot.ok()) {
      // Astronomically unlikely; but if parsed, blocks must be readable.
      (void)snapshot.value().BlockNames();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodingFuzz, ::testing::Values(1u, 2u, 3u));

// ---- kb: random graph round-trip + reverse-adjacency oracle ---------------------

class KbRandomGraph : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KbRandomGraph, SnapshotRoundTripAndReverseConsistency) {
  Rng rng(GetParam());
  kb::KbBuilder builder;
  const size_t num_articles = 40 + rng.NextBounded(60);
  const size_t num_categories = 10 + rng.NextBounded(20);
  for (size_t i = 0; i < num_articles; ++i) {
    builder.AddArticle("A" + std::to_string(i));
  }
  for (size_t i = 0; i < num_categories; ++i) {
    builder.AddCategory("C" + std::to_string(i));
  }
  std::set<std::pair<uint32_t, uint32_t>> links;
  for (int i = 0; i < 400; ++i) {
    auto from = static_cast<kb::ArticleId>(rng.NextBounded(num_articles));
    auto to = static_cast<kb::ArticleId>(rng.NextBounded(num_articles));
    builder.AddArticleLink(from, to);
    if (from != to) links.insert({from, to});
    builder.AddMembership(
        static_cast<kb::ArticleId>(rng.NextBounded(num_articles)),
        static_cast<kb::CategoryId>(rng.NextBounded(num_categories)));
  }
  kb::KnowledgeBase kb = std::move(builder).Build();

  // Link multiset matches the oracle exactly (dedup + self-drop applied).
  EXPECT_EQ(kb.NumArticleLinks(), links.size());
  for (const auto& [from, to] : links) {
    EXPECT_TRUE(kb.HasLink(from, to));
  }

  // Reverse adjacency is the exact transpose.
  for (size_t a = 0; a < num_articles; ++a) {
    for (kb::ArticleId to : kb.OutLinks(static_cast<kb::ArticleId>(a))) {
      auto in = kb.InLinks(to);
      EXPECT_TRUE(std::binary_search(in.begin(), in.end(),
                                     static_cast<kb::ArticleId>(a)));
    }
  }
  // Membership transpose.
  for (size_t a = 0; a < num_articles; ++a) {
    for (kb::CategoryId c : kb.CategoriesOf(static_cast<kb::ArticleId>(a))) {
      auto members = kb.ArticlesIn(c);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(),
                                     static_cast<kb::ArticleId>(a)));
    }
  }

  // Snapshot round-trip preserves the whole graph.
  auto loaded = kb::KnowledgeBase::FromSnapshotString(kb.SerializeToString());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumArticleLinks(), kb.NumArticleLinks());
  EXPECT_EQ(loaded.value().NumMemberships(), kb.NumMemberships());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KbRandomGraph,
                         ::testing::Values(11u, 22u, 33u, 44u));

// ---- index/retrieval: brute-force oracles ----------------------------------------

class RetrievalOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RetrievalOracle, PhraseMatcherAgainstBruteForce) {
  Rng rng(GetParam());
  const std::vector<std::string> vocab = {"a", "b", "c", "d", "e"};
  index::IndexBuilder builder;
  std::vector<std::vector<std::string>> docs;
  for (int d = 0; d < 60; ++d) {
    std::vector<std::string> terms;
    size_t len = 3 + rng.NextBounded(15);
    for (size_t i = 0; i < len; ++i) {
      terms.push_back(vocab[rng.NextBounded(vocab.size())]);
    }
    builder.AddDocument("d" + std::to_string(d), terms);
    docs.push_back(std::move(terms));
  }
  index::InvertedIndex index = std::move(builder).Build();

  for (int trial = 0; trial < 20; ++trial) {
    size_t n = 2 + rng.NextBounded(2);  // bigrams and trigrams
    std::vector<std::string> phrase;
    std::vector<text::TermId> ids;
    for (size_t i = 0; i < n; ++i) {
      phrase.push_back(vocab[rng.NextBounded(vocab.size())]);
      ids.push_back(index.LookupTerm(phrase.back()));
    }
    retrieval::PhrasePostings pp = retrieval::MatchPhrase(index, ids);

    // Brute force over the raw documents.
    std::map<index::DocId, uint32_t> oracle;
    for (size_t d = 0; d < docs.size(); ++d) {
      uint32_t count = 0;
      for (size_t start = 0; start + n <= docs[d].size(); ++start) {
        bool match = true;
        for (size_t i = 0; i < n; ++i) {
          if (docs[d][start + i] != phrase[i]) {
            match = false;
            break;
          }
        }
        if (match) ++count;
      }
      if (count > 0) oracle[static_cast<index::DocId>(d)] = count;
    }

    ASSERT_EQ(pp.docs.size(), oracle.size());
    for (size_t i = 0; i < pp.docs.size(); ++i) {
      EXPECT_EQ(pp.freqs[i], oracle[pp.docs[i]]);
    }
  }
}

TEST_P(RetrievalOracle, RetrieveIsExhaustiveTopK) {
  Rng rng(GetParam() ^ 0xBEEF);
  const std::vector<std::string> vocab = {"x", "y", "z", "w", "v", "u"};
  index::IndexBuilder builder;
  for (int d = 0; d < 50; ++d) {
    std::vector<std::string> terms;
    size_t len = 2 + rng.NextBounded(10);
    for (size_t i = 0; i < len; ++i) {
      terms.push_back(vocab[rng.NextBounded(vocab.size())]);
    }
    builder.AddDocument("d" + std::to_string(d), terms);
  }
  index::InvertedIndex index = std::move(builder).Build();
  retrieval::Retriever retriever(&index);

  retrieval::Query q = retrieval::Query::FromTerms({"x", "y"});
  retrieval::ResultList top = retriever.Retrieve(q, 10);
  ASSERT_EQ(top.size(), 10u);
  // Every doc outside the top-k scores no better than the k-th.
  std::set<index::DocId> in_top;
  for (const auto& sd : top) in_top.insert(sd.doc);
  double kth = top.back().score;
  for (index::DocId d = 0; d < 50; ++d) {
    if (!in_top.contains(d)) {
      EXPECT_LE(retriever.ScoreDocument(q, d), kth + 1e-12);
    }
  }
  // Scores descend.
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetrievalOracle,
                         ::testing::Values(5u, 6u, 7u));

// ---- sqe: motif validator over the generated world --------------------------------

TEST(MotifValidatorTest, EveryMatchSatisfiesTheDefinition) {
  // Post-hoc validation of the finder against the raw KB predicates, over
  // a generated world (which contains genuine carriers, noise links AND
  // spurious twins).
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  const kb::KnowledgeBase& kb = world.kb;
  expansion::MotifFinder finder(&kb);

  size_t triangles = 0, squares = 0;
  for (uint32_t ci = 0; ci < world.NumConcepts(); ci += 2) {
    kb::ArticleId q = world.concepts[ci].article;
    for (const expansion::TriangularMatch& m : finder.FindTriangular(q)) {
      ASSERT_TRUE(kb.ReciprocallyLinked(m.query_node, m.expansion_node));
      ASSERT_TRUE(kb.HasMembership(m.query_node, m.shared_category));
      ASSERT_TRUE(kb.HasMembership(m.expansion_node, m.shared_category));
      // Category superset condition.
      for (kb::CategoryId c : kb.CategoriesOf(m.query_node)) {
        ASSERT_TRUE(kb.HasMembership(m.expansion_node, c));
      }
      ++triangles;
    }
    for (const expansion::SquareMatch& m : finder.FindSquare(q)) {
      ASSERT_TRUE(kb.ReciprocallyLinked(m.query_node, m.expansion_node));
      ASSERT_TRUE(kb.HasMembership(m.query_node, m.query_category));
      ASSERT_TRUE(kb.HasMembership(m.expansion_node, m.expansion_category));
      ASSERT_NE(m.query_category, m.expansion_category);
      ASSERT_TRUE(
          kb.CategoriesRelated(m.query_category, m.expansion_category));
      ++squares;
    }
  }
  EXPECT_GT(triangles, 50u);
  EXPECT_GT(squares, 50u);
}

TEST(MotifValidatorTest, FinderIsExhaustiveAgainstBruteForce) {
  // Brute-force enumeration over all reciprocal pairs must agree with the
  // finder on which (q, a) pairs carry a triangular motif.
  synth::World world = synth::World::Generate(synth::TinyWorldOptions());
  const kb::KnowledgeBase& kb = world.kb;
  expansion::MotifFinder finder(&kb);

  for (uint32_t ci = 0; ci < std::min<size_t>(world.NumConcepts(), 60);
       ++ci) {
    kb::ArticleId q = world.concepts[ci].article;
    std::set<kb::ArticleId> found;
    for (const auto& m : finder.FindTriangular(q)) {
      found.insert(m.expansion_node);
    }
    std::set<kb::ArticleId> oracle;
    auto q_cats = kb.CategoriesOf(q);
    if (!q_cats.empty()) {
      for (size_t a = 0; a < kb.NumArticles(); ++a) {
        kb::ArticleId candidate = static_cast<kb::ArticleId>(a);
        if (candidate == q || !kb.ReciprocallyLinked(q, candidate)) continue;
        bool superset = true;
        for (kb::CategoryId c : q_cats) {
          if (!kb.HasMembership(candidate, c)) {
            superset = false;
            break;
          }
        }
        if (superset) oracle.insert(candidate);
      }
    }
    EXPECT_EQ(found, oracle) << "query concept " << ci;
  }
}

// ---- analysis: cycle enumeration vs brute force -----------------------------------

TEST(CycleOracleTest, EnumerationMatchesBruteForceOnRandomGraphs) {
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    // Random small article-only graph (undirected via reciprocal links).
    kb::KbBuilder builder;
    const size_t n = 6;
    for (size_t i = 0; i < n; ++i) builder.AddArticle("N" + std::to_string(i));
    std::vector<std::pair<size_t, size_t>> edges;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        if (rng.NextBool(0.45)) {
          builder.AddReciprocalLink(static_cast<kb::ArticleId>(i),
                                    static_cast<kb::ArticleId>(j));
          edges.emplace_back(i, j);
        }
      }
    }
    kb::KnowledgeBase kb = std::move(builder).Build();
    std::vector<kb::NodeRef> nodes;
    for (size_t i = 0; i < n; ++i) {
      nodes.push_back(kb::NodeRef::Article(static_cast<kb::ArticleId>(i)));
    }
    analysis::InducedSubgraph graph(kb, nodes);

    auto adjacent = [&](size_t a, size_t b) {
      for (const auto& [x, y] : edges) {
        if ((x == a && y == b) || (x == b && y == a)) return true;
      }
      return false;
    };

    // Brute force: count distinct 3-cycles through node 0.
    size_t oracle3 = 0;
    for (size_t a = 1; a < n; ++a) {
      for (size_t b = a + 1; b < n; ++b) {
        if (adjacent(0, a) && adjacent(a, b) && adjacent(b, 0)) ++oracle3;
      }
    }
    EXPECT_EQ(analysis::EnumerateCyclesThrough(graph, 0, 3).size(), oracle3);

    // Brute force: 4-cycles through node 0 (a != b != c, direction-deduped).
    size_t oracle4 = 0;
    for (size_t a = 1; a < n; ++a) {
      for (size_t b = 1; b < n; ++b) {
        for (size_t c = 1; c < n; ++c) {
          if (a == b || b == c || a == c) continue;
          if (a < c && adjacent(0, a) && adjacent(a, b) && adjacent(b, c) &&
              adjacent(c, 0)) {
            ++oracle4;
          }
        }
      }
    }
    EXPECT_EQ(analysis::EnumerateCyclesThrough(graph, 0, 4).size(), oracle4);
  }
}

// ---- eval: t-test vs normal approximation -----------------------------------------

TEST(TTestPropertyTest, LargeSampleMatchesNormalApproximation) {
  Rng rng(777);
  const size_t n = 2000;
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    double base = rng.NextGaussian(0.5, 0.1);
    a[i] = base + rng.NextGaussian(0.02, 0.05);
    b[i] = base;
  }
  eval::TTestResult result = eval::PairedTTest(a, b);
  // z = mean / (sd/sqrt(n)); two-sided normal p via erfc.
  double mean = 0, ss = 0;
  for (size_t i = 0; i < n; ++i) mean += a[i] - b[i];
  mean /= static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) {
    double d = (a[i] - b[i]) - mean;
    ss += d * d;
  }
  double se = std::sqrt(ss / static_cast<double>(n - 1) /
                        static_cast<double>(n));
  double z = mean / se;
  double normal_p = std::erfc(std::fabs(z) / std::sqrt(2.0));
  EXPECT_NEAR(result.p_value, normal_p, 1e-3 + normal_p * 0.05);
}

// ---- end-to-end determinism ---------------------------------------------------------

TEST(DeterminismTest, IdenticalSeedsIdenticalRankings) {
  synth::World w1 = synth::World::Generate(synth::TinyWorldOptions());
  synth::World w2 = synth::World::Generate(synth::TinyWorldOptions());
  synth::Dataset d1 = synth::BuildDataset(w1, synth::TinyDatasetSpec());
  synth::Dataset d2 = synth::BuildDataset(w2, synth::TinyDatasetSpec());

  expansion::SqeEngineConfig config;
  config.retriever.mu = d1.retrieval_mu;
  expansion::SqeEngine e1(&w1.kb, &d1.index, d1.linker.get(), &d1.analyzer(),
                          config);
  expansion::SqeEngine e2(&w2.kb, &d2.index, d2.linker.get(), &d2.analyzer(),
                          config);
  for (size_t qi = 0; qi < d1.NumQueries(); ++qi) {
    const auto& q1 = d1.query_set.queries[qi];
    const auto& q2 = d2.query_set.queries[qi];
    ASSERT_EQ(q1.text, q2.text);
    auto r1 = e1.RunSqeC(q1.text, q1.true_entities, 50);
    auto r2 = e2.RunSqeC(q2.text, q2.true_entities, 50);
    ASSERT_EQ(r1.results.size(), r2.results.size());
    for (size_t i = 0; i < r1.results.size(); ++i) {
      EXPECT_EQ(r1.results[i].doc, r2.results[i].doc);
    }
  }
}

// ---- serving: random deadlines under a FakeClock ----------------------------------

// Random corpora × shard counts × deadlines, all on virtual time: a hook
// advances the FakeClock by a random (seeded) amount at every checkpoint,
// so requests expire at interleaving-dependent places — but two invariants
// must hold regardless of which requests expire:
//   1. every completed request returns exactly the bare RunSqe ranking
//      (docs AND scores), and
//   2. completed + expired + rejected == submitted once drained — nothing
//      is lost or double-counted.
class ServingProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServingProperty, CompletedMatchBareRunAndAccountingCloses) {
  const uint64_t seed = GetParam();
  synth::WorldOptions world_options = synth::TinyWorldOptions();
  world_options.seed = seed;
  synth::World world = synth::World::Generate(world_options);
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  const auto& queries = dataset.query_set.queries;

  for (size_t shards : {size_t{1}, size_t{3}}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    expansion::SqeEngineConfig config;
    config.retriever.mu = dataset.retrieval_mu;
    config.sharding.num_shards = shards;
    expansion::SqeEngine engine(&world.kb, &dataset.index,
                                dataset.linker.get(), &dataset.analyzer(),
                                config);

    std::vector<expansion::SqeRunResult> bare;
    for (const auto& q : queries) {
      bare.push_back(engine.RunSqe(q.text, q.true_entities,
                                   expansion::MotifConfig::Both(), 100));
    }

    FakeClock clock;
    Mutex rng_mu{"property_test.rng"};
    Rng rng(seed * 7919 + shards);
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    frontend_config.clock = &clock;
    frontend_config.phase_hook = [&](uint64_t, expansion::RunPhase) {
      MutexLock lock(&rng_mu);
      clock.Advance(std::chrono::microseconds(rng.NextBounded(400)));
    };
    serving::ServingFrontend frontend(&engine, frontend_config);

    std::vector<std::shared_ptr<serving::ServingCall>> calls;
    const size_t num_requests = queries.size() * 3;
    for (size_t i = 0; i < num_requests; ++i) {
      const auto& q = queries[i % queries.size()];
      serving::ServingRequest request;
      request.text = q.text;
      request.query_nodes = q.true_entities;
      request.k = 100;
      {
        MutexLock lock(&rng_mu);
        // Thirds: infinite, tight (often expires mid-run), already expired.
        switch (rng.NextBounded(3)) {
          case 0:
            request.deadline = serving::Deadline::Infinite();
            break;
          case 1:
            request.deadline = serving::Deadline::After(
                clock,
                std::chrono::microseconds(1 + rng.NextBounded(1500)));
            break;
          default:
            request.deadline = serving::Deadline::After(
                clock, std::chrono::microseconds(0));
            break;
        }
      }
      calls.push_back(frontend.Submit(std::move(request)));
    }
    for (auto& call : calls) call->Wait();
    frontend.Shutdown();

    size_t completed = 0;
    for (size_t i = 0; i < calls.size(); ++i) {
      const serving::ServingResponse& response = calls[i]->Wait();
      if (response.status.ok()) {
        ++completed;
        const auto& expected = bare[i % queries.size()].results;
        ASSERT_EQ(response.result.results.size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          EXPECT_EQ(response.result.results[j].doc, expected[j].doc);
          EXPECT_EQ(response.result.results[j].score, expected[j].score);
        }
      } else {
        EXPECT_TRUE(response.status.IsDeadlineExceeded() ||
                    response.status.IsResourceExhausted())
            << response.status.ToString();
      }
    }
    serving::ServingStats stats = frontend.Stats();
    EXPECT_EQ(stats.submitted, num_requests);
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.completed + stats.expired + stats.rejected(),
              stats.submitted);
    EXPECT_EQ(stats.cancelled, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServingProperty,
                         ::testing::Values(101u, 202u, 303u));

// ---- registry: random publish schedules under live traffic ------------------------

// The hot-swap analogue of ServingProperty: random corpora × shard counts ×
// the same deadline thirds, plus a random *publish schedule* — snapshot
// generations are published from the main thread at rng-chosen points
// between Submits. Because leases pin at admission and publishes happen
// only between Submits, the epoch every request must serve is exactly the
// number of generations published before its Submit — deterministic per
// call, whatever the workers and deadlines do. Invariants:
//   1. every response (completed OR rejected-after-admission) reports its
//      expected epoch — no request ever observes a swap;
//   2. every completed request's ranking equals the bare-engine run for its
//      pinned epoch's configuration, docs AND score bits (epochs differ in
//      retriever smoothing, so a cross-epoch leak cannot pass);
//   3. the accounting identity closes, and after the front-end drains the
//      registry holds exactly one live generation — every superseded epoch
//      provably retired.
class RegistryProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegistryProperty, PinnedEpochsMatchPublishScheduleAndOraclesExactly) {
  const uint64_t seed = GetParam();
  synth::WorldOptions world_options = synth::TinyWorldOptions();
  world_options.seed = seed;
  synth::World world = synth::World::Generate(world_options);
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::TinyDatasetSpec());
  const auto& queries = dataset.query_set.queries;
  const std::string kb_image = world.kb.SerializeToString();
  const std::string index_image = dataset.index.SerializeToString();
  constexpr size_t kMaxEpochs = 4;

  for (size_t shards : {size_t{1}, size_t{3}}) {
    SCOPED_TRACE(testing::Message() << "shards=" << shards);
    auto epoch_config = [&](uint64_t epoch) {
      expansion::SqeEngineConfig config;
      // Distinguishable generations: smoothing scales with the epoch, so
      // every epoch's score bits differ.
      config.retriever.mu =
          dataset.retrieval_mu * (1.0 + 0.5 * static_cast<double>(epoch - 1));
      config.sharding.num_shards = shards;
      return config;
    };

    // Per-epoch bare-engine oracles over the original KB/index.
    std::vector<std::vector<retrieval::ResultList>> oracle;
    for (uint64_t e = 1; e <= kMaxEpochs; ++e) {
      expansion::SqeEngine bare(&world.kb, &dataset.index,
                                dataset.linker.get(), &dataset.analyzer(),
                                epoch_config(e));
      std::vector<retrieval::ResultList> rankings;
      for (const auto& q : queries) {
        rankings.push_back(bare.RunSqe(q.text, q.true_entities,
                                       expansion::MotifConfig::Both(), 100)
                               .results);
      }
      oracle.push_back(std::move(rankings));
    }

    serving::SnapshotRegistryOptions registry_options;
    registry_options.shared_cache.enabled = true;
    serving::SnapshotRegistry registry(registry_options);
    uint64_t published = 0;
    auto publish_next = [&] {
      auto kb = kb::KnowledgeBase::FromSnapshotString(kb_image);
      auto index = index::InvertedIndex::FromSnapshotString(index_image);
      ASSERT_TRUE(kb.ok() && index.ok());
      serving::SnapshotParts parts;
      parts.kb =
          std::make_unique<kb::KnowledgeBase>(std::move(kb).value());
      parts.index =
          std::make_unique<index::InvertedIndex>(std::move(index).value());
      parts.engine_config = epoch_config(published + 1);
      Result<uint64_t> outcome = registry.Publish(std::move(parts));
      ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      ASSERT_EQ(outcome.value(), ++published);
    };
    publish_next();  // epoch 1 before any traffic

    FakeClock clock;
    Mutex rng_mu{"property_test.registry_rng"};
    Rng rng(seed * 6271 + shards);
    serving::ServingFrontendConfig frontend_config;
    frontend_config.num_workers = 2;
    frontend_config.clock = &clock;
    frontend_config.phase_hook = [&](uint64_t, expansion::RunPhase) {
      MutexLock lock(&rng_mu);
      clock.Advance(std::chrono::microseconds(rng.NextBounded(400)));
    };
    serving::ServingFrontend frontend(&registry, frontend_config);

    std::vector<std::shared_ptr<serving::ServingCall>> calls;
    std::vector<uint64_t> expected_epoch;
    const size_t num_requests = queries.size() * 3;
    for (size_t i = 0; i < num_requests; ++i) {
      // Roughly kMaxEpochs - 1 publishes sprinkled across the run, at
      // rng-chosen Submit boundaries.
      bool publish_now;
      {
        MutexLock lock(&rng_mu);
        publish_now = published < kMaxEpochs &&
                      rng.NextBounded(num_requests / kMaxEpochs) == 0;
      }
      if (publish_now) publish_next();
      const auto& q = queries[i % queries.size()];
      serving::ServingRequest request;
      request.text = q.text;
      request.query_nodes = q.true_entities;
      request.k = 100;
      {
        MutexLock lock(&rng_mu);
        // Same thirds as ServingProperty: infinite, tight, already expired.
        switch (rng.NextBounded(3)) {
          case 0:
            request.deadline = serving::Deadline::Infinite();
            break;
          case 1:
            request.deadline = serving::Deadline::After(
                clock,
                std::chrono::microseconds(1 + rng.NextBounded(1500)));
            break;
          default:
            request.deadline = serving::Deadline::After(
                clock, std::chrono::microseconds(0));
            break;
        }
      }
      expected_epoch.push_back(published);
      calls.push_back(frontend.Submit(std::move(request)));
    }
    for (auto& call : calls) call->Wait();
    frontend.Shutdown();

    size_t completed = 0;
    for (size_t i = 0; i < calls.size(); ++i) {
      const serving::ServingResponse& response = calls[i]->Wait();
      // Every admission acquired its lease before any outcome was decided,
      // so even rejections report the pinned epoch.
      EXPECT_EQ(response.epoch, expected_epoch[i]) << "request " << i;
      if (response.status.ok()) {
        ++completed;
        const auto& expected =
            oracle[expected_epoch[i] - 1][i % queries.size()];
        ASSERT_EQ(response.result.results.size(), expected.size());
        for (size_t j = 0; j < expected.size(); ++j) {
          EXPECT_EQ(response.result.results[j].doc, expected[j].doc);
          EXPECT_EQ(response.result.results[j].score, expected[j].score);
        }
      } else {
        EXPECT_TRUE(response.status.IsDeadlineExceeded() ||
                    response.status.IsResourceExhausted())
            << response.status.ToString();
      }
    }
    serving::ServingStats stats = frontend.Stats();
    EXPECT_EQ(stats.submitted, num_requests);
    EXPECT_EQ(stats.completed, completed);
    EXPECT_EQ(stats.completed + stats.expired + stats.rejected(),
              stats.submitted);
    EXPECT_EQ(stats.rejected_no_snapshot, 0u);

    // The swap-extended accounting identity: with the front-end drained,
    // only the current generation is still pinned.
    serving::SnapshotRegistryStats registry_stats = registry.Stats();
    EXPECT_EQ(registry_stats.published, published);
    EXPECT_EQ(registry_stats.retired, published - 1);
    EXPECT_EQ(registry_stats.live_epochs(), 1u);
    EXPECT_EQ(registry_stats.current_epoch, published);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegistryProperty,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace sqe
