// Snapshot-corruption fuzzing: mutate valid KB and index snapshot images at
// seeded random offsets and assert the loaders degrade to a non-ok Status —
// never an abort, never a crash, never a silently-wrong object. Run under
// ASan+UBSan in CI (the asan-ubsan configuration), where any out-of-bounds
// decode or UB on the corruption path fails the test even if the Status
// contract happens to hold.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/inverted_index.h"
#include "index/postings.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"
#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"

namespace sqe {
namespace {

kb::KnowledgeBase MakeFuzzKb() {
  kb::KbBuilder builder;
  std::vector<kb::ArticleId> articles;
  for (int i = 0; i < 12; ++i) {
    articles.push_back(builder.AddArticle("Article_" + std::to_string(i)));
  }
  std::vector<kb::CategoryId> cats;
  for (int i = 0; i < 5; ++i) {
    cats.push_back(builder.AddCategory("Category:" + std::to_string(i)));
  }
  Rng rng(7);
  for (int e = 0; e < 40; ++e) {
    auto a = articles[rng.NextBounded(articles.size())];
    auto b = articles[rng.NextBounded(articles.size())];
    if (a != b) builder.AddArticleLink(a, b);
  }
  builder.AddReciprocalLink(articles[0], articles[1]);
  builder.AddReciprocalLink(articles[2], articles[3]);
  for (auto a : articles) {
    builder.AddMembership(a, cats[rng.NextBounded(cats.size())]);
  }
  builder.AddCategoryLink(cats[1], cats[0]);
  builder.AddCategoryLink(cats[2], cats[0]);
  return std::move(builder).Build();
}

index::InvertedIndex MakeFuzzIndex() {
  index::IndexBuilder builder;
  const std::vector<std::string> lexicon = {"motif",   "graph", "query",
                                            "wiki",    "link",  "node",
                                            "expand",  "rank",  "score"};
  Rng rng(11);
  for (int d = 0; d < 20; ++d) {
    std::vector<std::string> terms;
    size_t len = 3 + rng.NextBounded(15);
    for (size_t i = 0; i < len; ++i) {
      terms.push_back(lexicon[rng.NextBounded(lexicon.size())]);
    }
    builder.AddDocument("doc-" + std::to_string(d), terms);
  }
  return std::move(builder).Build();
}

// One seeded mutation of `image`: a byte flip, a truncation, or a short
// byte-range scramble. Returns the mutated copy.
std::string Mutate(const std::string& image, Rng& rng) {
  std::string out = image;
  switch (rng.NextBounded(3)) {
    case 0: {  // flip 1-4 random bytes
      size_t flips = 1 + rng.NextBounded(4);
      for (size_t i = 0; i < flips; ++i) {
        size_t off = rng.NextBounded(out.size());
        out[off] = static_cast<char>(out[off] ^
                                     static_cast<char>(1 + rng.NextBounded(255)));
      }
      break;
    }
    case 1: {  // truncate at a random point (possibly to empty)
      out.resize(rng.NextBounded(out.size()));
      break;
    }
    default: {  // overwrite a short range with random bytes
      size_t off = rng.NextBounded(out.size());
      size_t len = 1 + rng.NextBounded(16);
      for (size_t i = 0; i < len && off + i < out.size(); ++i) {
        out[off + i] = static_cast<char>(rng.NextBounded(256));
      }
      break;
    }
  }
  return out;
}

constexpr int kMutationsPerKind = 160;

TEST(SnapshotFuzzTest, CorruptedKbSnapshotsNeverCrash) {
  kb::KnowledgeBase original = MakeFuzzKb();
  const std::string image = original.SerializeToString();
  ASSERT_FALSE(image.empty());

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0x5EED0000 + static_cast<uint64_t>(seed));
    std::string mutated = Mutate(image, rng);
    if (mutated == image) continue;  // mutation was a no-op; nothing to test
    auto loaded = kb::KnowledgeBase::FromSnapshotString(std::move(mutated));
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    // A mutation the framing cannot distinguish from a valid file (e.g. a
    // flip inside the unchecked version varint) may still load — but then
    // the object must be fully self-consistent.
    EXPECT_TRUE(loaded.value().Validate().ok());
  }
  // The acceptance bar: at least 100 seeded mutations demonstrably return
  // a non-ok Status (CRC, framing, decode, or deep validation).
  EXPECT_GE(rejected, 100) << "too many corrupted KB snapshots loaded OK";
}

TEST(SnapshotFuzzTest, CorruptedIndexSnapshotsNeverCrash) {
  index::InvertedIndex original = MakeFuzzIndex();
  const std::string image = original.SerializeToString();
  ASSERT_FALSE(image.empty());

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0xFADED000 + static_cast<uint64_t>(seed));
    std::string mutated = Mutate(image, rng);
    if (mutated == image) continue;
    auto loaded = index::InvertedIndex::FromSnapshotString(std::move(mutated));
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    EXPECT_TRUE(loaded.value().Validate().ok());
  }
  EXPECT_GE(rejected, 100) << "too many corrupted index snapshots loaded OK";
}

// Deeper than random flips: re-sign corrupted payloads with valid CRCs so
// the mutation reaches the decoders and the Validate() layer instead of
// being caught by the checksum. This is the path a buggy writer (rather
// than bit rot) would take.
TEST(SnapshotFuzzTest, ResignedCorruptKbPayloadsAreRejectedByValidation) {
  kb::KnowledgeBase original = MakeFuzzKb();
  const std::string image = original.SerializeToString();

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0xABCD0000 + static_cast<uint64_t>(seed));
    auto reader = io::SnapshotReader::Open(image, io::kKbSnapshotMagic);
    ASSERT_TRUE(reader.ok());
    // Rebuild the snapshot with one block's payload mutated.
    std::vector<std::string> names = reader.value().BlockNames();
    size_t victim = rng.NextBounded(names.size());
    io::SnapshotWriter writer(io::kKbSnapshotMagic);
    for (size_t b = 0; b < names.size(); ++b) {
      auto block = reader.value().GetBlock(names[b]);
      ASSERT_TRUE(block.ok());
      std::string payload(block.value());
      if (b == victim && !payload.empty()) {
        size_t off = rng.NextBounded(payload.size());
        payload[off] = static_cast<char>(
            payload[off] ^ static_cast<char>(1 + rng.NextBounded(255)));
      }
      writer.AddBlock(names[b], std::move(payload));
    }
    auto loaded = kb::KnowledgeBase::FromSnapshotString(writer.Serialize());
    if (!loaded.ok()) {
      ++rejected;
    } else {
      EXPECT_TRUE(loaded.value().Validate().ok());
    }
  }
  // Most single-byte payload mutations must be caught by decode or deep
  // validation (a few can be semantically harmless, e.g. flipping a title
  // character).
  EXPECT_GE(rejected, kMutationsPerKind / 2);
}

// ---- targeted block-max corruption ------------------------------------------
//
// The "blockmax" block (snapshot v2) is derived data the pruned scorer
// trusts for skip decisions: a deflated maximum would silently drop true
// top-k documents. Every structural or value corruption of the tables —
// re-signed with a valid CRC so it reaches the decoder and Validate(), as
// a buggy writer would — must come back Status::Corruption, never a crash
// (these run under ASan+UBSan in CI) and never a loaded index.


struct BlockMaxTable {
  uint32_t max_freq = 0;
  std::vector<uint32_t> blocks;
};

std::vector<BlockMaxTable> DecodeBlockMax(std::string_view payload) {
  std::vector<BlockMaxTable> tables;
  uint64_t num_terms = 0;
  EXPECT_TRUE(io::GetVarint64(&payload, &num_terms));
  for (uint64_t t = 0; t < num_terms; ++t) {
    BlockMaxTable table;
    uint64_t num_blocks = 0;
    EXPECT_TRUE(io::GetVarint32(&payload, &table.max_freq));
    EXPECT_TRUE(io::GetVarint64(&payload, &num_blocks));
    for (uint64_t b = 0; b < num_blocks; ++b) {
      uint32_t m = 0;
      EXPECT_TRUE(io::GetVarint32(&payload, &m));
      table.blocks.push_back(m);
    }
    tables.push_back(std::move(table));
  }
  EXPECT_TRUE(payload.empty());
  return tables;
}

std::string EncodeBlockMax(uint64_t num_terms_field,
                           const std::vector<BlockMaxTable>& tables) {
  std::string out;
  io::PutVarint64(&out, num_terms_field);
  for (const BlockMaxTable& table : tables) {
    io::PutVarint32(&out, table.max_freq);
    io::PutVarint64(&out, table.blocks.size());
    for (uint32_t m : table.blocks) io::PutVarint32(&out, m);
  }
  return out;
}

// Re-signs `image` with the "blockmax" payload replaced (CRCs valid, so
// only decode + Validate stand between the corruption and a loaded index).
// An empty optional drops the block entirely.
std::string ResignWithBlockMax(const std::string& image,
                               const std::string* new_payload) {
  auto reader = io::SnapshotReader::Open(image, io::kIndexSnapshotMagic);
  EXPECT_TRUE(reader.ok());
  io::SnapshotWriter writer(io::kIndexSnapshotMagic, reader.value().version());
  for (const std::string& name : reader.value().BlockNames()) {
    if (name == "blockmax") {
      if (new_payload != nullptr) writer.AddBlock(name, *new_payload);
      continue;
    }
    auto block = reader.value().GetBlock(name);
    EXPECT_TRUE(block.ok());
    writer.AddBlock(name, std::string(block.value()));
  }
  return writer.Serialize();
}

void ExpectBlockMaxRejected(const std::string& image,
                            const std::string& payload,
                            const std::string& label) {
  auto loaded = index::InvertedIndex::FromSnapshotString(
      ResignWithBlockMax(image, &payload));
  ASSERT_FALSE(loaded.ok()) << label;
  EXPECT_TRUE(loaded.status().IsCorruption()) << label << ": "
                                              << loaded.status().ToString();
}

TEST(SnapshotFuzzTest, BlockMaxTableCorruptionsAreRejected) {
  index::InvertedIndex original = MakeFuzzIndex();
  // The varint "blockmax" block only exists in the legacy v2 container;
  // v3 persists the tables as flat arrays covered by the aligned-layout
  // fuzz paths.
  const std::string image = original.SerializeToString(2);

  auto reader = io::SnapshotReader::Open(image, io::kIndexSnapshotMagic);
  ASSERT_TRUE(reader.ok());
  auto block = reader.value().GetBlock("blockmax");
  ASSERT_TRUE(block.ok());
  const std::string clean(block.value());
  const std::vector<BlockMaxTable> tables = DecodeBlockMax(clean);
  ASSERT_FALSE(tables.empty());

  // Sanity: the re-sign round trip itself is lossless and loads fine.
  {
    auto loaded = index::InvertedIndex::FromSnapshotString(
        ResignWithBlockMax(image, &clean));
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().Validate().ok());
  }

  // Find a term whose first block's maximum exceeds 1, so deflating it
  // leaves a structurally plausible (> 0) but wrong value — the dangerous
  // direction: a pruned scorer would skip documents it must score.
  size_t deep = tables.size();
  for (size_t t = 0; t < tables.size(); ++t) {
    if (!tables[t].blocks.empty() && tables[t].blocks[0] > 1) deep = t;
  }
  ASSERT_LT(deep, tables.size()) << "fuzz corpus lacks a freq>1 posting";

  {
    std::vector<BlockMaxTable> mutated = tables;
    mutated[deep].blocks[0] -= 1;
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size(), mutated),
                           "deflated block max");
  }
  {
    std::vector<BlockMaxTable> mutated = tables;
    mutated[0].blocks[0] += 1;
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size(), mutated),
                           "inflated block max");
  }
  {
    std::vector<BlockMaxTable> mutated = tables;
    mutated[0].max_freq += 1;
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size(), mutated),
                           "term max != contained max");
  }
  {
    std::vector<BlockMaxTable> mutated = tables;
    mutated[0].blocks.push_back(1);  // table longer than the posting list
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size(), mutated),
                           "excess block entries");
  }
  {
    std::vector<BlockMaxTable> mutated = tables;
    mutated[deep].blocks.pop_back();  // table shorter than the posting list
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size(), mutated),
                           "missing block entries");
  }
  {
    // Term-count field disagrees with the postings block.
    ExpectBlockMaxRejected(image, EncodeBlockMax(tables.size() + 1, tables),
                           "term count mismatch");
  }
  {
    // Truncations at every tail offset: headers, counts, and entries all
    // cut mid-varint or mid-table. None may crash; all must be Corruption.
    for (size_t cut = 0; cut < std::min<size_t>(clean.size(), 24); ++cut) {
      ExpectBlockMaxRejected(
          image, clean.substr(0, clean.size() - 1 - cut),
          "truncated at -" + std::to_string(cut + 1));
    }
  }
  {
    std::string trailing = clean;
    trailing.push_back('\0');
    ExpectBlockMaxRejected(image, trailing, "trailing bytes");
  }
  {
    // A v2 image with the block deleted outright must fail to open the
    // block, not limp along with builder-recomputed tables.
    auto loaded = index::InvertedIndex::FromSnapshotString(
        ResignWithBlockMax(image, nullptr));
    EXPECT_FALSE(loaded.ok());
  }
}

TEST(SnapshotFuzzTest, ResignedRandomBlockMaxBytesAreRejected) {
  // Random byte-level mutations of the blockmax payload only. Validate()
  // demands exact equality with the recomputed tables, so EVERY mutation
  // that survives varint decoding must still be rejected — there is no
  // "semantically harmless" direction for derived data.
  index::InvertedIndex original = MakeFuzzIndex();
  const std::string image = original.SerializeToString(2);  // legacy layout
  auto reader = io::SnapshotReader::Open(image, io::kIndexSnapshotMagic);
  ASSERT_TRUE(reader.ok());
  auto block = reader.value().GetBlock("blockmax");
  ASSERT_TRUE(block.ok());
  const std::string clean(block.value());

  int tested = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0xB10CB10C + static_cast<uint64_t>(seed));
    std::string mutated = Mutate(clean, rng);
    if (mutated == clean) continue;
    ++tested;
    auto loaded = index::InvertedIndex::FromSnapshotString(
        ResignWithBlockMax(image, &mutated));
    EXPECT_FALSE(loaded.ok()) << "seed " << seed;
  }
  EXPECT_GE(tested, kMutationsPerKind / 2);
}

}  // namespace
}  // namespace sqe
