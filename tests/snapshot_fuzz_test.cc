// Snapshot-corruption fuzzing: mutate valid KB and index snapshot images at
// seeded random offsets and assert the loaders degrade to a non-ok Status —
// never an abort, never a crash, never a silently-wrong object. Run under
// ASan+UBSan in CI (the asan-ubsan configuration), where any out-of-bounds
// decode or UB on the corruption path fails the test even if the Status
// contract happens to hold.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "index/inverted_index.h"
#include "io/file.h"
#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"

namespace sqe {
namespace {

kb::KnowledgeBase MakeFuzzKb() {
  kb::KbBuilder builder;
  std::vector<kb::ArticleId> articles;
  for (int i = 0; i < 12; ++i) {
    articles.push_back(builder.AddArticle("Article_" + std::to_string(i)));
  }
  std::vector<kb::CategoryId> cats;
  for (int i = 0; i < 5; ++i) {
    cats.push_back(builder.AddCategory("Category:" + std::to_string(i)));
  }
  Rng rng(7);
  for (int e = 0; e < 40; ++e) {
    auto a = articles[rng.NextBounded(articles.size())];
    auto b = articles[rng.NextBounded(articles.size())];
    if (a != b) builder.AddArticleLink(a, b);
  }
  builder.AddReciprocalLink(articles[0], articles[1]);
  builder.AddReciprocalLink(articles[2], articles[3]);
  for (auto a : articles) {
    builder.AddMembership(a, cats[rng.NextBounded(cats.size())]);
  }
  builder.AddCategoryLink(cats[1], cats[0]);
  builder.AddCategoryLink(cats[2], cats[0]);
  return std::move(builder).Build();
}

index::InvertedIndex MakeFuzzIndex() {
  index::IndexBuilder builder;
  const std::vector<std::string> lexicon = {"motif",   "graph", "query",
                                            "wiki",    "link",  "node",
                                            "expand",  "rank",  "score"};
  Rng rng(11);
  for (int d = 0; d < 20; ++d) {
    std::vector<std::string> terms;
    size_t len = 3 + rng.NextBounded(15);
    for (size_t i = 0; i < len; ++i) {
      terms.push_back(lexicon[rng.NextBounded(lexicon.size())]);
    }
    builder.AddDocument("doc-" + std::to_string(d), terms);
  }
  return std::move(builder).Build();
}

// One seeded mutation of `image`: a byte flip, a truncation, or a short
// byte-range scramble. Returns the mutated copy.
std::string Mutate(const std::string& image, Rng& rng) {
  std::string out = image;
  switch (rng.NextBounded(3)) {
    case 0: {  // flip 1-4 random bytes
      size_t flips = 1 + rng.NextBounded(4);
      for (size_t i = 0; i < flips; ++i) {
        size_t off = rng.NextBounded(out.size());
        out[off] = static_cast<char>(out[off] ^
                                     static_cast<char>(1 + rng.NextBounded(255)));
      }
      break;
    }
    case 1: {  // truncate at a random point (possibly to empty)
      out.resize(rng.NextBounded(out.size()));
      break;
    }
    default: {  // overwrite a short range with random bytes
      size_t off = rng.NextBounded(out.size());
      size_t len = 1 + rng.NextBounded(16);
      for (size_t i = 0; i < len && off + i < out.size(); ++i) {
        out[off + i] = static_cast<char>(rng.NextBounded(256));
      }
      break;
    }
  }
  return out;
}

constexpr int kMutationsPerKind = 160;

TEST(SnapshotFuzzTest, CorruptedKbSnapshotsNeverCrash) {
  kb::KnowledgeBase original = MakeFuzzKb();
  const std::string image = original.SerializeToString();
  ASSERT_FALSE(image.empty());

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0x5EED0000 + static_cast<uint64_t>(seed));
    std::string mutated = Mutate(image, rng);
    if (mutated == image) continue;  // mutation was a no-op; nothing to test
    auto loaded = kb::KnowledgeBase::FromSnapshotString(std::move(mutated));
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    // A mutation the framing cannot distinguish from a valid file (e.g. a
    // flip inside the unchecked version varint) may still load — but then
    // the object must be fully self-consistent.
    EXPECT_TRUE(loaded.value().Validate().ok());
  }
  // The acceptance bar: at least 100 seeded mutations demonstrably return
  // a non-ok Status (CRC, framing, decode, or deep validation).
  EXPECT_GE(rejected, 100) << "too many corrupted KB snapshots loaded OK";
}

TEST(SnapshotFuzzTest, CorruptedIndexSnapshotsNeverCrash) {
  index::InvertedIndex original = MakeFuzzIndex();
  const std::string image = original.SerializeToString();
  ASSERT_FALSE(image.empty());

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0xFADED000 + static_cast<uint64_t>(seed));
    std::string mutated = Mutate(image, rng);
    if (mutated == image) continue;
    auto loaded = index::InvertedIndex::FromSnapshotString(std::move(mutated));
    if (!loaded.ok()) {
      ++rejected;
      continue;
    }
    EXPECT_TRUE(loaded.value().Validate().ok());
  }
  EXPECT_GE(rejected, 100) << "too many corrupted index snapshots loaded OK";
}

// Deeper than random flips: re-sign corrupted payloads with valid CRCs so
// the mutation reaches the decoders and the Validate() layer instead of
// being caught by the checksum. This is the path a buggy writer (rather
// than bit rot) would take.
TEST(SnapshotFuzzTest, ResignedCorruptKbPayloadsAreRejectedByValidation) {
  kb::KnowledgeBase original = MakeFuzzKb();
  const std::string image = original.SerializeToString();

  int rejected = 0;
  for (int seed = 0; seed < kMutationsPerKind; ++seed) {
    Rng rng(0xABCD0000 + static_cast<uint64_t>(seed));
    auto reader = io::SnapshotReader::Open(image, 0x53514B42);
    ASSERT_TRUE(reader.ok());
    // Rebuild the snapshot with one block's payload mutated.
    std::vector<std::string> names = reader.value().BlockNames();
    size_t victim = rng.NextBounded(names.size());
    io::SnapshotWriter writer(0x53514B42);
    for (size_t b = 0; b < names.size(); ++b) {
      auto block = reader.value().GetBlock(names[b]);
      ASSERT_TRUE(block.ok());
      std::string payload(block.value());
      if (b == victim && !payload.empty()) {
        size_t off = rng.NextBounded(payload.size());
        payload[off] = static_cast<char>(
            payload[off] ^ static_cast<char>(1 + rng.NextBounded(255)));
      }
      writer.AddBlock(names[b], std::move(payload));
    }
    auto loaded = kb::KnowledgeBase::FromSnapshotString(writer.Serialize());
    if (!loaded.ok()) {
      ++rejected;
    } else {
      EXPECT_TRUE(loaded.value().Validate().ok());
    }
  }
  // Most single-byte payload mutations must be caught by decode or deep
  // validation (a few can be semantically harmless, e.g. flipping a title
  // character).
  EXPECT_GE(rejected, kMutationsPerKind / 2);
}

}  // namespace
}  // namespace sqe
