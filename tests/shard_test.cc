// Shard coverage: the ShardManifest partition contract, ShardedIndex
// split/snapshot round trips, the deterministic top-k merge, the ShardRouter
// buckets, and the end-to-end determinism guarantee — a sharded engine must
// produce bit-identical output to an unsharded one at every shard count and
// thread count, cold and cache-warm. Run under SQE_SANITIZE=thread in CI
// (the "Shard determinism gate") to prove the fan-out is race-free.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "common/thread_pool.h"
#include "index/shard_manifest.h"
#include "index/sharded_index.h"
#include "retrieval/retriever.h"
#include "retrieval/shard_router.h"
#include "retrieval/sharded_retriever.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

using index::DocId;
using index::ShardManifest;
using index::ShardedIndex;

// ---- ShardManifest ----------------------------------------------------------

TEST(ShardManifestTest, BalancedCoversEveryDocExactlyOnce) {
  for (size_t num_docs : {0u, 1u, 2u, 10u, 1500u}) {
    for (size_t num_shards : {1u, 2u, 3u, 7u, 64u}) {
      ShardManifest m = ShardManifest::Balanced(num_docs, num_shards);
      ASSERT_EQ(m.num_shards(), num_shards);
      ASSERT_EQ(m.num_docs(), num_docs);
      EXPECT_TRUE(m.Validate(num_docs).ok());
      size_t total = 0;
      size_t min_size = num_docs, max_size = 0;
      for (size_t s = 0; s < m.num_shards(); ++s) {
        EXPECT_LE(m.shard_begin(s), m.shard_end(s));
        total += m.shard_size(s);
        min_size = std::min(min_size, m.shard_size(s));
        max_size = std::max(max_size, m.shard_size(s));
      }
      EXPECT_EQ(total, num_docs);
      // Balanced: sizes differ by at most one document.
      EXPECT_LE(max_size - min_size, 1u);
    }
  }
}

TEST(ShardManifestTest, ZeroShardsClampsToOne) {
  ShardManifest m = ShardManifest::Balanced(10, 0);
  EXPECT_EQ(m.num_shards(), 1u);
  EXPECT_EQ(m.shard_size(0), 10u);
}

TEST(ShardManifestTest, ShardOfAndLocalGlobalRoundTrip) {
  ShardManifest m = ShardManifest::Balanced(23, 5);
  for (DocId d = 0; d < 23; ++d) {
    size_t s = m.ShardOf(d);
    ASSERT_LT(s, m.num_shards());
    EXPECT_GE(d, m.shard_begin(s));
    EXPECT_LT(d, m.shard_end(s));
    EXPECT_EQ(m.ToGlobal(s, m.ToLocal(s, d)), d);
  }
}

TEST(ShardManifestTest, MoreShardsThanDocsLeavesEmptyShards) {
  ShardManifest m = ShardManifest::Balanced(3, 8);
  EXPECT_TRUE(m.Validate(3).ok());
  size_t empty = 0;
  for (size_t s = 0; s < m.num_shards(); ++s) {
    if (m.shard_size(s) == 0) ++empty;
  }
  EXPECT_EQ(empty, 5u);
  // Every doc still resolves to the (non-empty) shard that owns it.
  for (DocId d = 0; d < 3; ++d) {
    size_t s = m.ShardOf(d);
    EXPECT_LT(m.ToLocal(s, d), m.shard_size(s));
  }
}

TEST(ShardManifestTest, SnapshotRoundTrip) {
  ShardManifest m = ShardManifest::Balanced(123, 7);
  auto back = ShardManifest::FromSnapshotString(m.SerializeToString());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value(), m);
}

TEST(ShardManifestTest, CorruptSnapshotRejected) {
  std::string image = ShardManifest::Balanced(50, 4).SerializeToString();
  image[image.size() / 2] ^= 0x5a;
  EXPECT_FALSE(ShardManifest::FromSnapshotString(image).ok());
  EXPECT_FALSE(ShardManifest::FromSnapshotString("not a manifest").ok());
}

TEST(ShardManifestTest, ValidateRejectsBrokenBoundaries) {
  ShardManifest m;
  EXPECT_FALSE(m.Validate(0).ok());  // no shards at all
  m.starts = {0, 5, 3, 10};          // decreasing interior boundary
  EXPECT_FALSE(m.Validate(10).ok());
  m.starts = {1, 5, 10};  // not anchored at 0
  EXPECT_FALSE(m.Validate(10).ok());
  m.starts = {0, 5, 10};
  EXPECT_FALSE(m.Validate(11).ok());  // wrong total
  EXPECT_TRUE(m.Validate(10).ok());
}

// ---- ShardedIndex -----------------------------------------------------------

struct ShardDatasetFixture {
  synth::World world;
  synth::Dataset dataset;

  ShardDatasetFixture()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())) {}
};

ShardDatasetFixture& SharedDataset() {
  static ShardDatasetFixture& fixture = *new ShardDatasetFixture();
  return fixture;
}

TEST(ShardedIndexTest, SplitShardsAreValidAndCoverTheCollection) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  for (size_t num_shards : {1u, 2u, 3u, 7u}) {
    ShardedIndex sharded = ShardedIndex::Split(full, num_shards);
    ASSERT_EQ(sharded.num_shards(), num_shards);
    ASSERT_TRUE(sharded.Validate().ok());
    ASSERT_EQ(sharded.NumDocuments(), full.NumDocuments());
    uint64_t tokens = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      const index::InvertedIndex& shard = sharded.shard(s);
      tokens += shard.TotalTokens();
      // Every shard document is the full index's document under the
      // manifest mapping: same external id, same length.
      for (DocId local = 0; local < shard.NumDocuments(); ++local) {
        DocId global = sharded.manifest().ToGlobal(s, local);
        ASSERT_EQ(shard.ExternalId(local), full.ExternalId(global));
        ASSERT_EQ(shard.DocLength(local), full.DocLength(global));
      }
    }
    EXPECT_EQ(tokens, full.TotalTokens());
  }
}

TEST(ShardedIndexTest, SplitWithMoreShardsThanDocsKeepsEmptyShardsValid) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  const size_t num_shards = full.NumDocuments() + 5;
  ShardedIndex sharded = ShardedIndex::Split(full, num_shards);
  ASSERT_EQ(sharded.num_shards(), num_shards);
  EXPECT_TRUE(sharded.Validate().ok());
  size_t docs = 0, empty = 0;
  for (size_t s = 0; s < num_shards; ++s) {
    docs += sharded.shard(s).NumDocuments();
    if (sharded.shard(s).NumDocuments() == 0) ++empty;
  }
  EXPECT_EQ(docs, full.NumDocuments());
  EXPECT_EQ(empty, 5u);
}

TEST(ShardedIndexTest, DirectorySnapshotRoundTrip) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  ShardedIndex sharded = ShardedIndex::Split(full, 3);
  const std::string dir = "/tmp/sqe_shard_test_snapshot";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(sharded.SaveToDirectory(dir).ok());

  auto loaded = ShardedIndex::LoadFromDirectory(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded.value().Validate().ok());
  EXPECT_EQ(loaded.value().manifest(), sharded.manifest());
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    // Byte-identical shard images: the snapshot format is deterministic.
    EXPECT_EQ(loaded.value().shard(s).SerializeToString(),
              sharded.shard(s).SerializeToString())
        << "shard " << s;
  }
  std::filesystem::remove_all(dir);
}

TEST(ShardedIndexTest, TamperedShardFileRejectedAtLoad) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  ShardedIndex sharded = ShardedIndex::Split(full, 2);
  const std::string dir = "/tmp/sqe_shard_test_tamper";
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(sharded.SaveToDirectory(dir).ok());

  const std::string victim = dir + "/" + ShardedIndex::ShardFileName(1);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(64);
    char byte = 0x7f;
    f.write(&byte, 1);
  }
  EXPECT_FALSE(ShardedIndex::LoadFromDirectory(dir).ok());
  std::filesystem::remove_all(dir);
}

TEST(ShardedIndexTest, MissingManifestRejectedAtLoad) {
  EXPECT_FALSE(
      ShardedIndex::LoadFromDirectory("/tmp/sqe_shard_test_missing").ok());
}

// ---- MergeShardTopK ---------------------------------------------------------

retrieval::ResultList List(std::vector<retrieval::ScoredDoc> docs) {
  return docs;
}

TEST(ShardMergeTest, MergesDisjointSortedListsIntoGlobalOrder) {
  std::vector<retrieval::ResultList> lists = {
      List({{0, 5.0}, {2, 3.0}, {4, 1.0}}),
      List({{5, 4.0}, {7, 2.0}}),
  };
  retrieval::ResultList merged = retrieval::MergeShardTopK(lists, 4);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[0].doc, 0u);
  EXPECT_EQ(merged[1].doc, 5u);
  EXPECT_EQ(merged[2].doc, 2u);
  EXPECT_EQ(merged[3].doc, 7u);
}

TEST(ShardMergeTest, CrossShardTiesBreakByAscendingDocId) {
  std::vector<retrieval::ResultList> lists = {
      List({{9, 2.0}, {10, 1.0}}),
      List({{3, 2.0}}),
      List({{6, 2.0}}),
  };
  retrieval::ResultList merged = retrieval::MergeShardTopK(lists, 3);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].doc, 3u);
  EXPECT_EQ(merged[1].doc, 6u);
  EXPECT_EQ(merged[2].doc, 9u);
}

TEST(ShardMergeTest, HandlesEmptyListsAndOversizedK) {
  std::vector<retrieval::ResultList> lists = {
      List({}),
      List({{1, 1.0}}),
      List({}),
  };
  retrieval::ResultList merged = retrieval::MergeShardTopK(lists, 100);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].doc, 1u);
  EXPECT_TRUE(retrieval::MergeShardTopK({}, 10).empty());
}

// ---- ShardRouter ------------------------------------------------------------

TEST(ShardRouterTest, BucketsAreTheLengthOrderRestrictedToEachShard) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  retrieval::ShardRouter router(&full, 4);
  size_t total = 0;
  for (size_t s = 0; s < router.num_shards(); ++s) {
    auto bucket = router.ShardDocsByLength(s);
    total += bucket.size();
    ASSERT_EQ(bucket.size(),
              static_cast<size_t>(router.shard_end(s) - router.shard_begin(s)));
    for (size_t i = 0; i < bucket.size(); ++i) {
      ASSERT_GE(bucket[i], router.shard_begin(s));
      ASSERT_LT(bucket[i], router.shard_end(s));
      if (i > 0) {
        // (length asc, DocId asc): the background-tail invariant.
        uint32_t prev = full.DocLength(bucket[i - 1]);
        uint32_t cur = full.DocLength(bucket[i]);
        ASSERT_TRUE(prev < cur || (prev == cur && bucket[i - 1] < bucket[i]));
      }
    }
  }
  EXPECT_EQ(total, full.NumDocuments());
}

TEST(ShardRouterTest, StatsAccumulateUnderConcurrency) {
  const index::InvertedIndex& full = SharedDataset().dataset.index;
  retrieval::ShardRouter router(&full, 3);
  ThreadPool pool(4);
  pool.ParallelFor(64, [&router](size_t, size_t) { router.RecordQuery(3); });
  retrieval::ShardRouterStats stats = router.Stats();
  EXPECT_EQ(stats.queries_routed, 64u);
  EXPECT_EQ(stats.shard_tasks, 64u * 3);
  EXPECT_EQ(stats.merges, 64u);
  EXPECT_FALSE(stats.ToString().empty());
}

// ---- ShardedRetriever: bit-identity at the retrieval layer ------------------

void ExpectIdenticalLists(const retrieval::ResultList& got,
                          const retrieval::ResultList& want,
                          const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].doc, want[r].doc) << label << " rank " << r;
    // EQ on doubles on purpose: the contract is bit-identical, not "close".
    ASSERT_EQ(got[r].score, want[r].score) << label << " rank " << r;
  }
}

TEST(ShardedRetrieverTest, BitIdenticalToUnshardedAtEveryShardCount) {
  const ShardDatasetFixture& f = SharedDataset();
  retrieval::RetrieverOptions options;
  options.mu = f.dataset.retrieval_mu;
  retrieval::Retriever retriever(&f.dataset.index, options);

  // A mix of plain-term and phrase queries drawn from generated query text.
  std::vector<retrieval::Query> queries;
  for (size_t qi = 0; qi < 6 && qi < f.dataset.query_set.queries.size();
       ++qi) {
    const synth::GeneratedQuery& gq = f.dataset.query_set.queries[qi];
    std::vector<std::string> terms;
    for (std::string_view tok : SplitWhitespace(gq.text)) {
      terms.emplace_back(tok);
    }
    if (terms.empty()) continue;
    retrieval::Query q = retrieval::Query::FromTerms(terms);
    if (terms.size() >= 2) {
      retrieval::Clause phrase;
      phrase.weight = 0.5;
      phrase.atoms.push_back(
          retrieval::Atom::Phrase({terms[0], terms[1]}, 2.0));
      q.clauses.push_back(phrase);
    }
    queries.push_back(std::move(q));
  }
  ASSERT_FALSE(queries.empty());

  const size_t num_docs = f.dataset.index.NumDocuments();
  retrieval::RetrieverScratch reference_scratch;
  for (size_t k : {1u, 10u, 100u}) {
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      retrieval::ResultList want =
          retriever.Retrieve(queries[qi], k, &reference_scratch);
      for (size_t num_shards :
           {size_t{1}, size_t{2}, size_t{3}, size_t{7}, num_docs + 5}) {
        retrieval::ShardRouter router(&f.dataset.index, num_shards);
        retrieval::ShardedRetriever sharded(&retriever, &router);
        const std::string label = "q" + std::to_string(qi) + " k" +
                                  std::to_string(k) + " S" +
                                  std::to_string(num_shards);
        // Sequential sweep (null pool), then pooled fan-out.
        std::vector<retrieval::RetrieverScratch> scratch(4);
        ExpectIdenticalLists(
            sharded.Retrieve(queries[qi], k, nullptr,
                             std::span<retrieval::RetrieverScratch>(
                                 scratch.data(), 1)),
            want, label + " seq");
        ThreadPool pool(4);
        ExpectIdenticalLists(
            sharded.Retrieve(queries[qi], k, &pool, scratch), want,
            label + " pool");
      }
    }
  }
}

// ---- SqeEngine: end-to-end determinism --------------------------------------

expansion::SqeEngineConfig MakeEngineConfig(const synth::Dataset& ds,
                                            size_t num_shards,
                                            bool with_cache = false) {
  expansion::SqeEngineConfig config;
  config.retriever.mu = ds.retrieval_mu;
  config.sharding.num_shards = num_shards;
  config.cache.enabled = with_cache;
  return config;
}

std::vector<expansion::BatchQueryInput> MakeEngineBatch(
    const synth::Dataset& dataset) {
  std::vector<expansion::BatchQueryInput> batch;
  for (const synth::GeneratedQuery& q : dataset.query_set.queries) {
    batch.push_back({q.text, q.true_entities});
  }
  return batch;
}

void ExpectIdenticalRuns(const std::vector<expansion::SqeRunResult>& got,
                         const std::vector<expansion::SqeRunResult>& want,
                         const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t qi = 0; qi < got.size(); ++qi) {
    ExpectIdenticalLists(got[qi].results, want[qi].results,
                         label + " query " + std::to_string(qi));
  }
}

TEST(SqeEngineShardTest, ShardedEngineBitIdenticalAcrossShardAndThreadCounts) {
  const ShardDatasetFixture& f = SharedDataset();
  const auto batch = MakeEngineBatch(f.dataset);
  ASSERT_GE(batch.size(), 4u);
  constexpr size_t kDepth = 100;
  const auto motifs = expansion::MotifConfig::Both();

  expansion::SqeEngine unsharded(&f.world.kb, &f.dataset.index,
                                 f.dataset.linker.get(), &f.dataset.analyzer(),
                                 MakeEngineConfig(f.dataset, 1));
  EXPECT_FALSE(unsharded.sharded());
  const std::vector<expansion::SqeRunResult> reference =
      unsharded.RunBatch(batch, motifs, kDepth, nullptr);

  const size_t num_docs = f.dataset.index.NumDocuments();
  for (size_t num_shards :
       {size_t{2}, size_t{3}, size_t{7}, num_docs + 5}) {
    expansion::SqeEngine engine(&f.world.kb, &f.dataset.index,
                                f.dataset.linker.get(), &f.dataset.analyzer(),
                                MakeEngineConfig(f.dataset, num_shards));
    ASSERT_TRUE(engine.sharded());
    ASSERT_EQ(engine.num_shards(), num_shards);
    const std::string label = "S" + std::to_string(num_shards);

    // Batch at several pool sizes, including the null pool and an empty
    // pool (both sequential).
    ExpectIdenticalRuns(engine.RunBatch(batch, motifs, kDepth, nullptr),
                        reference, label + " null-pool");
    for (size_t threads : {size_t{0}, size_t{2}, size_t{4}}) {
      ThreadPool pool(threads);
      ExpectIdenticalRuns(engine.RunBatch(batch, motifs, kDepth, &pool),
                          reference, label + " grid t" +
                                         std::to_string(threads));
    }

    // Single-query paths: pool-less and pooled fan-out.
    ThreadPool pool(4);
    for (size_t qi = 0; qi < 3; ++qi) {
      expansion::SqeRunResult plain =
          engine.RunSqe(batch[qi].text, batch[qi].query_nodes, motifs, kDepth);
      ExpectIdenticalLists(plain.results, reference[qi].results,
                           label + " RunSqe q" + std::to_string(qi));
      expansion::SqeRunResult pooled = engine.RunSqe(
          batch[qi].text, batch[qi].query_nodes, motifs, kDepth, &pool);
      ExpectIdenticalLists(pooled.results, reference[qi].results,
                           label + " RunSqe+pool q" + std::to_string(qi));
    }
    // Router telemetry saw the fan-outs.
    retrieval::ShardRouterStats stats = engine.router_stats();
    EXPECT_GT(stats.queries_routed, 0u);
    EXPECT_GT(stats.shard_tasks, stats.queries_routed);
  }
}

TEST(SqeEngineShardTest, CacheEntriesAreShardAgnostic) {
  const ShardDatasetFixture& f = SharedDataset();
  const auto batch = MakeEngineBatch(f.dataset);
  constexpr size_t kDepth = 100;
  const auto motifs = expansion::MotifConfig::Both();

  expansion::SqeEngine uncached(&f.world.kb, &f.dataset.index,
                                f.dataset.linker.get(), &f.dataset.analyzer(),
                                MakeEngineConfig(f.dataset, 1));
  const std::vector<expansion::SqeRunResult> reference =
      uncached.RunBatch(batch, motifs, kDepth, nullptr);

  expansion::SqeEngine cached_unsharded(
      &f.world.kb, &f.dataset.index, f.dataset.linker.get(),
      &f.dataset.analyzer(), MakeEngineConfig(f.dataset, 1, true));
  expansion::SqeEngine cached_sharded(
      &f.world.kb, &f.dataset.index, f.dataset.linker.get(),
      &f.dataset.analyzer(), MakeEngineConfig(f.dataset, 4, true));

  ThreadPool pool(2);
  // Cold fill on the sharded engine, warm replays on both: every pass must
  // equal the uncached unsharded reference, proving the cache key ignores
  // the shard count and sharded-written entries serve unsharded readers.
  ExpectIdenticalRuns(cached_sharded.RunBatch(batch, motifs, kDepth, &pool),
                      reference, "sharded cold");
  ExpectIdenticalRuns(cached_sharded.RunBatch(batch, motifs, kDepth, &pool),
                      reference, "sharded warm");
  EXPECT_GT(cached_sharded.cache_stats().result.hits, 0u);

  ExpectIdenticalRuns(
      cached_unsharded.RunBatch(batch, motifs, kDepth, &pool), reference,
      "unsharded cold");
  ExpectIdenticalRuns(
      cached_unsharded.RunBatch(batch, motifs, kDepth, &pool), reference,
      "unsharded warm");
}

}  // namespace
}  // namespace sqe
