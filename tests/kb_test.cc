#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "kb/dump_loader.h"
#include "kb/kb_builder.h"
#include "kb/kb_stats.h"
#include "kb/knowledge_base.h"

namespace sqe::kb {
namespace {

KnowledgeBase MakeSmallKb() {
  KbBuilder builder;
  ArticleId cable = builder.AddArticle("Cable Car");
  ArticleId funicular = builder.AddArticle("Funicular");
  ArticleId tram = builder.AddArticle("Tram");
  CategoryId transport = builder.AddCategory("Category:Transport");
  CategoryId rail = builder.AddCategory("Category:Rail");
  builder.AddReciprocalLink(cable, funicular);
  builder.AddArticleLink(cable, tram);  // one-way
  builder.AddMembership(cable, transport);
  builder.AddMembership(funicular, transport);
  builder.AddMembership(funicular, rail);
  builder.AddCategoryLink(rail, transport);
  return std::move(builder).Build();
}

TEST(KbBuilderTest, NodeCountsAndTitleLookup) {
  KnowledgeBase kb = MakeSmallKb();
  EXPECT_EQ(kb.NumArticles(), 3u);
  EXPECT_EQ(kb.NumCategories(), 2u);
  EXPECT_EQ(kb.ArticleTitle(kb.FindArticle("Funicular")), "Funicular");
  EXPECT_EQ(kb.FindArticle("Missing"), kInvalidArticle);
  EXPECT_EQ(kb.FindCategory("Category:Rail"),
            kb.FindCategory("Category:Rail"));
  EXPECT_EQ(kb.FindCategory("Nope"), kInvalidCategory);
}

TEST(KbBuilderTest, DuplicateTitlesResolveToSameNode) {
  KbBuilder builder;
  ArticleId a = builder.AddArticle("Same");
  ArticleId b = builder.AddArticle("Same");
  EXPECT_EQ(a, b);
  EXPECT_EQ(builder.NumArticles(), 1u);
}

TEST(KbBuilderTest, DuplicateEdgesDeduplicated) {
  KbBuilder builder;
  ArticleId a = builder.AddArticle("A");
  ArticleId b = builder.AddArticle("B");
  builder.AddArticleLink(a, b);
  builder.AddArticleLink(a, b);
  builder.AddArticleLink(a, b);
  KnowledgeBase kb = std::move(builder).Build();
  EXPECT_EQ(kb.OutLinks(a).size(), 1u);
  EXPECT_EQ(kb.NumArticleLinks(), 1u);
}

TEST(KbBuilderTest, SelfLinksDropped) {
  KbBuilder builder;
  ArticleId a = builder.AddArticle("A");
  builder.AddArticleLink(a, a);
  CategoryId c = builder.AddCategory("C");
  builder.AddCategoryLink(c, c);
  KnowledgeBase kb = std::move(builder).Build();
  EXPECT_EQ(kb.NumArticleLinks(), 0u);
  EXPECT_EQ(kb.NumCategoryLinks(), 0u);
}

TEST(KnowledgeBaseTest, AdjacencyIsSorted) {
  KbBuilder builder;
  ArticleId a = builder.AddArticle("A");
  // Insert out of order.
  ArticleId z = builder.AddArticle("Z");
  ArticleId m = builder.AddArticle("M");
  ArticleId b = builder.AddArticle("B");
  builder.AddArticleLink(a, z);
  builder.AddArticleLink(a, b);
  builder.AddArticleLink(a, m);
  KnowledgeBase kb = std::move(builder).Build();
  auto out = kb.OutLinks(a);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST(KnowledgeBaseTest, EdgeExistenceChecks) {
  KnowledgeBase kb = MakeSmallKb();
  ArticleId cable = kb.FindArticle("Cable Car");
  ArticleId funicular = kb.FindArticle("Funicular");
  ArticleId tram = kb.FindArticle("Tram");
  CategoryId transport = kb.FindCategory("Category:Transport");
  CategoryId rail = kb.FindCategory("Category:Rail");

  EXPECT_TRUE(kb.HasLink(cable, funicular));
  EXPECT_TRUE(kb.HasLink(funicular, cable));
  EXPECT_TRUE(kb.ReciprocallyLinked(cable, funicular));
  EXPECT_TRUE(kb.HasLink(cable, tram));
  EXPECT_FALSE(kb.HasLink(tram, cable));
  EXPECT_FALSE(kb.ReciprocallyLinked(cable, tram));

  EXPECT_TRUE(kb.HasMembership(cable, transport));
  EXPECT_FALSE(kb.HasMembership(cable, rail));
  EXPECT_TRUE(kb.HasCategoryLink(rail, transport));
  EXPECT_FALSE(kb.HasCategoryLink(transport, rail));
  EXPECT_TRUE(kb.CategoriesRelated(rail, transport));
  EXPECT_TRUE(kb.CategoriesRelated(transport, rail));
}

TEST(KnowledgeBaseTest, ReciprocalCsrMatchesPairwiseChecks) {
  KnowledgeBase kb = MakeSmallKb();
  ArticleId cable = kb.FindArticle("Cable Car");
  ArticleId funicular = kb.FindArticle("Funicular");
  ArticleId tram = kb.FindArticle("Tram");

  // The precomputed list contains exactly the doubly-linked neighbors.
  auto recip = kb.ReciprocalLinks(cable);
  ASSERT_EQ(recip.size(), 1u);
  EXPECT_EQ(recip[0], funicular);
  EXPECT_TRUE(kb.ReciprocalLinks(tram).empty());

  // It agrees with the pairwise definition HasLink(a,b) && HasLink(b,a) for
  // every ordered pair.
  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    for (size_t b = 0; b < kb.NumArticles(); ++b) {
      ArticleId ia = static_cast<ArticleId>(a), ib = static_cast<ArticleId>(b);
      EXPECT_EQ(kb.ReciprocallyLinked(ia, ib),
                kb.HasLink(ia, ib) && kb.HasLink(ib, ia))
          << a << "->" << b;
    }
  }
}

TEST(KnowledgeBaseTest, ReverseAdjacencyConsistent) {
  KnowledgeBase kb = MakeSmallKb();
  ArticleId cable = kb.FindArticle("Cable Car");
  ArticleId tram = kb.FindArticle("Tram");
  CategoryId transport = kb.FindCategory("Category:Transport");
  CategoryId rail = kb.FindCategory("Category:Rail");

  // InLinks mirrors OutLinks.
  auto in = kb.InLinks(tram);
  ASSERT_EQ(in.size(), 1u);
  EXPECT_EQ(in[0], cable);

  // ArticlesIn mirrors CategoriesOf.
  auto members = kb.ArticlesIn(transport);
  EXPECT_EQ(members.size(), 2u);
  // ChildCategories mirrors ParentCategories.
  auto children = kb.ChildCategories(transport);
  ASSERT_EQ(children.size(), 1u);
  EXPECT_EQ(children[0], rail);
}

TEST(KnowledgeBaseTest, SnapshotRoundTripPreservesEverything) {
  KnowledgeBase kb = MakeSmallKb();
  std::string image = kb.SerializeToString();
  auto loaded_or = KnowledgeBase::FromSnapshotString(std::move(image));
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const KnowledgeBase& loaded = loaded_or.value();

  EXPECT_EQ(loaded.NumArticles(), kb.NumArticles());
  EXPECT_EQ(loaded.NumCategories(), kb.NumCategories());
  EXPECT_EQ(loaded.NumArticleLinks(), kb.NumArticleLinks());
  EXPECT_EQ(loaded.NumMemberships(), kb.NumMemberships());
  EXPECT_EQ(loaded.NumCategoryLinks(), kb.NumCategoryLinks());

  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    ArticleId id = static_cast<ArticleId>(a);
    EXPECT_EQ(loaded.ArticleTitle(id), kb.ArticleTitle(id));
    auto lhs = kb.OutLinks(id), rhs = loaded.OutLinks(id);
    EXPECT_TRUE(std::equal(lhs.begin(), lhs.end(), rhs.begin(), rhs.end()));
    auto lc = kb.CategoriesOf(id), rc = loaded.CategoriesOf(id);
    EXPECT_TRUE(std::equal(lc.begin(), lc.end(), rc.begin(), rc.end()));
    auto li = kb.InLinks(id), ri = loaded.InLinks(id);
    EXPECT_TRUE(std::equal(li.begin(), li.end(), ri.begin(), ri.end()));
  }
}

TEST(KnowledgeBaseTest, CorruptSnapshotRejected) {
  KnowledgeBase kb = MakeSmallKb();
  std::string image = kb.SerializeToString();
  image[image.size() / 2] ^= 0x08;
  auto loaded = KnowledgeBase::FromSnapshotString(std::move(image));
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(KnowledgeBaseTest, SnapshotFileRoundTrip) {
  const std::string path = "/tmp/sqe_kb_test_snapshot.bin";
  KnowledgeBase kb = MakeSmallKb();
  ASSERT_TRUE(kb.SaveToFile(path).ok());
  auto loaded = KnowledgeBase::FromSnapshotFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().NumArticles(), kb.NumArticles());
  std::remove(path.c_str());
}

// ---- dump loader -----------------------------------------------------------

constexpr char kDump[] =
    "# comment line\n"
    "article\tCable Car\n"
    "article\tFunicular\n"
    "category\tCategory:Transport\n"
    "category\tCategory:Rail\n"
    "\n"
    "alink\tCable Car\tFunicular\n"
    "alink\tFunicular\tCable Car\n"
    "member\tCable Car\tCategory:Transport\n"
    "member\tFunicular\tCategory:Rail\n"
    "sublink\tCategory:Rail\tCategory:Transport\n";

TEST(DumpLoaderTest, ParsesValidDump) {
  auto kb_or = LoadDumpFromString(kDump);
  ASSERT_TRUE(kb_or.ok()) << kb_or.status().ToString();
  const KnowledgeBase& kb = kb_or.value();
  EXPECT_EQ(kb.NumArticles(), 2u);
  EXPECT_EQ(kb.NumCategories(), 2u);
  EXPECT_TRUE(kb.ReciprocallyLinked(kb.FindArticle("Cable Car"),
                                    kb.FindArticle("Funicular")));
  EXPECT_TRUE(kb.HasCategoryLink(kb.FindCategory("Category:Rail"),
                                 kb.FindCategory("Category:Transport")));
}

TEST(DumpLoaderTest, ForwardReferencesAllowedByDefault) {
  // Edge references a node declared only implicitly.
  auto kb = LoadDumpFromString("alink\tA\tB\n");
  ASSERT_TRUE(kb.ok());
  EXPECT_EQ(kb.value().NumArticles(), 2u);
}

TEST(DumpLoaderTest, StrictModeRejectsUndeclared) {
  DumpLoaderOptions options;
  options.strict_declarations = true;
  auto kb = LoadDumpFromString("article\tA\nalink\tA\tB\n", options);
  ASSERT_FALSE(kb.ok());
  EXPECT_TRUE(kb.status().IsInvalidArgument());
}

TEST(DumpLoaderTest, MalformedLinesRejectedWithLineNumbers) {
  auto missing_field = LoadDumpFromString("article\n");
  EXPECT_TRUE(missing_field.status().IsInvalidArgument());
  EXPECT_NE(missing_field.status().message().find("line 1"),
            std::string::npos);

  auto bad_verb = LoadDumpFromString("article\tA\nbogus\tA\tB\n");
  EXPECT_TRUE(bad_verb.status().IsInvalidArgument());
  EXPECT_NE(bad_verb.status().message().find("line 2"), std::string::npos);

  auto missing_dst = LoadDumpFromString("alink\tA\n");
  EXPECT_TRUE(missing_dst.status().IsInvalidArgument());
}

TEST(DumpLoaderTest, RoundTripThroughWriter) {
  auto kb_or = LoadDumpFromString(kDump);
  ASSERT_TRUE(kb_or.ok());
  std::string dumped = WriteDumpToString(kb_or.value());
  auto reparsed = LoadDumpFromString(dumped,
                                     DumpLoaderOptions{.strict_declarations =
                                                           true});
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed.value().NumArticles(), kb_or.value().NumArticles());
  EXPECT_EQ(reparsed.value().NumArticleLinks(),
            kb_or.value().NumArticleLinks());
  EXPECT_EQ(reparsed.value().NumMemberships(),
            kb_or.value().NumMemberships());
}

// ---- stats -------------------------------------------------------------------

TEST(KbStatsTest, CountsMatchSmallKb) {
  KnowledgeBase kb = MakeSmallKb();
  KbStats stats = ComputeKbStats(kb);
  EXPECT_EQ(stats.num_articles, 3u);
  EXPECT_EQ(stats.num_categories, 2u);
  EXPECT_EQ(stats.num_article_links, 3u);  // 2 reciprocal + 1 one-way
  EXPECT_EQ(stats.num_reciprocal_pairs, 1u);
  EXPECT_EQ(stats.num_memberships, 3u);
  EXPECT_EQ(stats.num_category_links, 1u);
  EXPECT_DOUBLE_EQ(stats.avg_out_degree, 1.0);
  EXPECT_EQ(stats.num_isolated_articles, 0u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(KbStatsTest, IsolatedArticleCounted) {
  KbBuilder builder;
  builder.AddArticle("Lonely");
  ArticleId a = builder.AddArticle("A");
  ArticleId b = builder.AddArticle("B");
  builder.AddArticleLink(a, b);
  KnowledgeBase kb = std::move(builder).Build();
  EXPECT_EQ(ComputeKbStats(kb).num_isolated_articles, 1u);
}

}  // namespace
}  // namespace sqe::kb
