// End-to-end integration tests: the full generate → index → link → expand →
// retrieve → evaluate pipeline on the tiny world, asserting the paper's
// qualitative claims hold even at toy scale.
#include <cstdio>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "eval/ttest.h"
#include "prf/relevance_model.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

struct Pipeline {
  synth::World world;
  synth::Dataset dataset;
  expansion::SqeEngine engine;

  Pipeline()
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())),
        engine(&world.kb, &dataset.index, dataset.linker.get(),
               &dataset.analyzer(), MakeConfig(dataset)) {}

  static expansion::SqeEngineConfig MakeConfig(const synth::Dataset& ds) {
    expansion::SqeEngineConfig config;
    config.retriever.mu = ds.retrieval_mu;
    return config;
  }
};

Pipeline& SharedPipeline() {
  static Pipeline& pipeline = *new Pipeline();
  return pipeline;
}

constexpr size_t kDepth = 100;

std::vector<retrieval::ResultList> RunAllQueries(
    Pipeline& p, const std::function<retrieval::ResultList(
                     const synth::GeneratedQuery&)>& run) {
  std::vector<retrieval::ResultList> out;
  for (const synth::GeneratedQuery& q : p.dataset.query_set.queries) {
    out.push_back(run(q));
  }
  return out;
}

TEST(IntegrationTest, SqeBeatsPlainQueryLikelihood) {
  Pipeline& p = SharedPipeline();
  auto ql = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine.RunBaseline(q.text, q.true_entities,
                                expansion::QueryParts::QOnly(), kDepth);
  });
  auto sqe_ts = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine
        .RunSqe(q.text, q.true_entities, expansion::MotifConfig::Both(),
                kDepth)
        .results;
  });
  const eval::Qrels& qrels = p.dataset.query_set.qrels;
  double ql_p10 = eval::Mean(eval::PerQueryPrecision(ql, qrels, 10));
  double sqe_p10 = eval::Mean(eval::PerQueryPrecision(sqe_ts, qrels, 10));
  EXPECT_GT(sqe_p10, ql_p10);
}

TEST(IntegrationTest, GroundTruthUpperBoundIsAtLeastMotifGraphs) {
  Pipeline& p = SharedPipeline();
  const eval::Qrels& qrels = p.dataset.query_set.qrels;
  auto ub = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine.RunWithGraph(q.text, q.ground_truth_graph, kDepth)
        .results;
  });
  auto sqe = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine
        .RunSqe(q.text, q.true_entities, expansion::MotifConfig::Both(),
                kDepth)
        .results;
  });
  double ub_p20 = eval::Mean(eval::PerQueryPrecision(ub, qrels, 20));
  double sqe_p20 = eval::Mean(eval::PerQueryPrecision(sqe, qrels, 20));
  EXPECT_GE(ub_p20, sqe_p20 * 0.95);  // allow toy-scale wobble
}

TEST(IntegrationTest, SqeCCombinesWithoutDuplicates) {
  Pipeline& p = SharedPipeline();
  for (const synth::GeneratedQuery& q : p.dataset.query_set.queries) {
    expansion::SqeCRunResult combined =
        p.engine.RunSqeC(q.text, q.true_entities, kDepth);
    std::unordered_set<index::DocId> seen;
    for (const retrieval::ScoredDoc& sd : combined.results) {
      EXPECT_TRUE(seen.insert(sd.doc).second) << "duplicate doc in SQE_C";
    }
    EXPECT_LE(combined.results.size(), kDepth);
  }
}

TEST(IntegrationTest, TimingsAreRecorded) {
  Pipeline& p = SharedPipeline();
  const synth::GeneratedQuery& q = p.dataset.query_set.queries[0];
  expansion::SqeRunResult run = p.engine.RunSqe(
      q.text, q.true_entities, expansion::MotifConfig::Both(), kDepth);
  EXPECT_GE(run.graph_build_ms, 0.0);
  EXPECT_GE(run.retrieval_ms, 0.0);
  EXPECT_GE(run.total_ms, run.graph_build_ms);
}

TEST(IntegrationTest, PrfOnSqeBeatsPrfAlone) {
  Pipeline& p = SharedPipeline();
  const eval::Qrels& qrels = p.dataset.query_set.qrels;
  prf::PrfExpander prf_plain(&p.engine.retriever());
  prf::PrfOptions compose;
  compose.original_weight = 0.6;
  prf::PrfExpander prf_composed(&p.engine.retriever(), compose);

  auto prf_alone = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    expansion::QueryGraph graph;
    graph.query_nodes = q.true_entities;
    retrieval::Query base = p.engine.BuildExpandedQuery(q.text, graph);
    return prf_plain.ExpandAndRetrieve(base, kDepth);
  });
  auto prf_sqe = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    expansion::QueryGraph graph = p.engine.motif_finder().BuildQueryGraph(
        q.true_entities, expansion::MotifConfig::Both());
    retrieval::Query expanded = p.engine.BuildExpandedQuery(q.text, graph);
    return prf_composed.ExpandAndRetrieve(expanded, kDepth);
  });
  double alone = eval::Mean(eval::PerQueryPrecision(prf_alone, qrels, 10));
  double composed = eval::Mean(eval::PerQueryPrecision(prf_sqe, qrels, 10));
  EXPECT_GT(composed, alone);
}

TEST(IntegrationTest, AutomaticLinkingRunsEndToEnd) {
  Pipeline& p = SharedPipeline();
  size_t linked_queries = 0;
  for (const synth::GeneratedQuery& q : p.dataset.query_set.queries) {
    std::vector<kb::ArticleId> nodes = p.engine.LinkQueryNodes(q.text);
    if (!nodes.empty()) ++linked_queries;
    expansion::SqeCRunResult result = p.engine.RunSqeC(q.text, nodes, kDepth);
    // Even with no entities the pipeline degrades gracefully to QL_Q.
    EXPECT_LE(result.results.size(), kDepth);
  }
  EXPECT_GT(linked_queries, p.dataset.NumQueries() / 2);
}

TEST(IntegrationTest, SnapshotRoundTripPreservesRankings) {
  Pipeline& p = SharedPipeline();
  // Serialize both the KB and the index, reload, rebuild the engine, and
  // verify identical rankings — the persistence path end to end.
  auto kb_or =
      kb::KnowledgeBase::FromSnapshotString(p.world.kb.SerializeToString());
  ASSERT_TRUE(kb_or.ok());
  auto index_or = index::InvertedIndex::FromSnapshotString(
      p.dataset.index.SerializeToString());
  ASSERT_TRUE(index_or.ok());

  expansion::SqeEngine reloaded(&kb_or.value(), &index_or.value(), nullptr,
                                &p.dataset.analyzer(),
                                Pipeline::MakeConfig(p.dataset));
  for (size_t qi = 0; qi < 3; ++qi) {
    const synth::GeneratedQuery& q = p.dataset.query_set.queries[qi];
    auto original = p.engine.RunSqe(q.text, q.true_entities,
                                    expansion::MotifConfig::Both(), 20);
    auto replayed = reloaded.RunSqe(q.text, q.true_entities,
                                    expansion::MotifConfig::Both(), 20);
    ASSERT_EQ(original.results.size(), replayed.results.size());
    for (size_t i = 0; i < original.results.size(); ++i) {
      EXPECT_EQ(original.results[i].doc, replayed.results[i].doc);
      EXPECT_NEAR(original.results[i].score, replayed.results[i].score,
                  1e-9);
    }
  }
}

TEST(IntegrationTest, SignificanceMachineryOnRealRuns) {
  Pipeline& p = SharedPipeline();
  const eval::Qrels& qrels = p.dataset.query_set.qrels;
  auto ql = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine.RunBaseline(q.text, q.true_entities,
                                expansion::QueryParts::QOnly(), kDepth);
  });
  auto sqe = RunAllQueries(p, [&](const synth::GeneratedQuery& q) {
    return p.engine
        .RunSqe(q.text, q.true_entities, expansion::MotifConfig::Both(),
                kDepth)
        .results;
  });
  eval::TTestResult test =
      eval::PairedTTest(eval::PerQueryPrecision(sqe, qrels, 10),
                        eval::PerQueryPrecision(ql, qrels, 10));
  EXPECT_GT(test.mean_difference, 0.0);
  EXPECT_GE(test.p_value, 0.0);
  EXPECT_LE(test.p_value, 1.0);
}

}  // namespace
}  // namespace sqe
