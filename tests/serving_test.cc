// Serving front-end tests. Everything deadline-shaped runs on a FakeClock —
// time moves only when a test advances it inside a phase hook, so expiry is
// observed at an exact checkpoint with zero real sleeps. Worker scheduling
// is pinned the same way: a "blocker" request parks inside the phase hook on
// a gate, so the test controls exactly when the single worker is busy.
//
// The request ids a ServingFrontend assigns are deterministic (1, 2, ... in
// Submit order), which is what lets hooks target "the first submitted
// request" without any registration handshake.
#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/thread_annotations.h"
#include "serving/frontend.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace sqe {
namespace {

using expansion::RunPhase;
using serving::Deadline;
using serving::RequestPriority;
using serving::ServingCall;
using serving::ServingFrontend;
using serving::ServingFrontendConfig;
using serving::ServingRequest;
using serving::ServingResponse;
using serving::ServingStats;

constexpr auto kMs = [](int64_t n) {
  return std::chrono::duration_cast<Clock::Duration>(
      std::chrono::milliseconds(n));
};

// Reusable one-shot gate for parking a worker inside a phase hook.
class Gate {
 public:
  void Open() {
    {
      MutexLock lock(&mu_);
      open_ = true;
    }
    cv_.SignalAll();
  }
  void Wait() {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this] { return open_; });
  }

 private:
  Mutex mu_{"serving_test.gate"};
  CondVar cv_;
  bool open_ SQE_GUARDED_BY(mu_) = false;
};

struct Env {
  explicit Env(size_t num_shards, bool cache_enabled = false)
      : world(synth::World::Generate(synth::TinyWorldOptions())),
        dataset(synth::BuildDataset(world, synth::TinyDatasetSpec())) {
    expansion::SqeEngineConfig config;
    config.retriever.mu = dataset.retrieval_mu;
    config.cache.enabled = cache_enabled;
    config.sharding.num_shards = num_shards;
    engine = std::make_unique<expansion::SqeEngine>(
        &world.kb, &dataset.index, dataset.linker.get(), &dataset.analyzer(),
        config);
  }
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  ServingRequest Request(size_t i) const {
    const auto& queries = dataset.query_set.queries;
    const synth::GeneratedQuery& q = queries[i % queries.size()];
    ServingRequest request;
    request.text = q.text;
    request.query_nodes = q.true_entities;
    request.k = 100;
    return request;
  }
  size_t num_queries() const { return dataset.query_set.queries.size(); }

  synth::World world;
  synth::Dataset dataset;
  std::unique_ptr<expansion::SqeEngine> engine;
};

// ---- completed results are the bare engine's, bit for bit ------------------

TEST(ServingTest, CompletedResultsMatchBareEngineBitForBit) {
  for (size_t shards : {size_t{1}, size_t{4}}) {
    for (bool cache : {false, true}) {
      SCOPED_TRACE(testing::Message()
                   << "shards=" << shards << " cache=" << cache);
      Env env(shards, cache);
      std::vector<expansion::SqeRunResult> expected;
      for (size_t i = 0; i < env.num_queries(); ++i) {
        ServingRequest r = env.Request(i);
        expected.push_back(env.engine->RunSqe(
            r.text, r.query_nodes, r.motifs, r.k));
      }

      FakeClock clock;
      ServingFrontendConfig config;
      config.num_workers = 2;
      config.clock = &clock;
      ServingFrontend frontend(env.engine.get(), config);
      std::vector<std::shared_ptr<ServingCall>> calls;
      for (size_t i = 0; i < env.num_queries(); ++i) {
        calls.push_back(frontend.Submit(env.Request(i)));
      }
      for (size_t i = 0; i < calls.size(); ++i) {
        const ServingResponse& response = calls[i]->Wait();
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        EXPECT_EQ(response.phase_reached, RunPhase::kDone);
        ASSERT_EQ(response.result.results.size(),
                  expected[i].results.size());
        for (size_t j = 0; j < expected[i].results.size(); ++j) {
          EXPECT_EQ(response.result.results[j].doc,
                    expected[i].results[j].doc);
          EXPECT_EQ(response.result.results[j].score,
                    expected[i].results[j].score);
        }
      }
      frontend.Shutdown();
      ServingStats stats = frontend.Stats();
      EXPECT_EQ(stats.completed, env.num_queries());
      EXPECT_EQ(stats.resolved(), stats.submitted);
    }
  }
}

// ---- deadline expiry at every checkpoint -----------------------------------

TEST(ServingTest, DeadlineExpiresAtEachPhaseBoundary) {
  // 4 shards so the kShardSlice checkpoints exist; cache off so every run
  // takes the full pipeline.
  Env env(/*num_shards=*/4);
  for (RunPhase target :
       {RunPhase::kPreAnalysis, RunPhase::kPreMotifTraversal,
        RunPhase::kPreRetrieval, RunPhase::kShardSlice}) {
    SCOPED_TRACE(testing::Message()
                 << "target=" << expansion::RunPhaseName(target));
    FakeClock clock;
    std::atomic<bool> advanced{false};
    ServingFrontendConfig config;
    config.num_workers = 1;
    config.clock = &clock;
    config.phase_hook = [&](uint64_t, RunPhase phase) {
      // Fire exactly once, at the first checkpoint of the target kind: the
      // very next deadline check observes the expiry.
      if (phase == target && !advanced.exchange(true)) {
        clock.Advance(kMs(10));
      }
    };
    ServingFrontend frontend(env.engine.get(), config);
    ServingRequest request = env.Request(0);
    request.deadline = Deadline::After(clock, kMs(5));
    auto call = frontend.Submit(request);  // keeps the response alive
    const ServingResponse& response = call->Wait();
    EXPECT_TRUE(response.status.IsDeadlineExceeded())
        << response.status.ToString();
    EXPECT_EQ(response.phase_reached, target);
    EXPECT_TRUE(advanced.load());
    frontend.Shutdown();
    EXPECT_EQ(frontend.Stats().expired, 1u);
  }
}

TEST(ServingTest, RequestExpiredInQueueNeverRuns) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id == 1 && phase == RunPhase::kPreAnalysis) gate.Wait();
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto blocker = frontend.Submit(env.Request(0));  // id 1, parks the worker

  ServingRequest victim_request = env.Request(1);
  victim_request.deadline = Deadline::After(clock, kMs(5));
  auto victim = frontend.Submit(victim_request);  // id 2, sits in the queue
  clock.Advance(kMs(10));                         // expires while queued
  gate.Open();

  const ServingResponse& response = victim->Wait();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  // Expired at the very first checkpoint — no engine work happened.
  EXPECT_EQ(response.phase_reached, RunPhase::kPreAnalysis);
  EXPECT_TRUE(blocker->Wait().status.ok());
  frontend.Shutdown();
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

// ---- admission control -----------------------------------------------------

TEST(ServingTest, QueueFullRejectsWithResourceExhausted) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  Gate started;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.queue_capacity = 2;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id == 1 && phase == RunPhase::kPreAnalysis) {
      started.Open();
      gate.Wait();
    }
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto blocker = frontend.Submit(env.Request(0));   // in flight
  started.Wait();  // the worker holds the blocker; the queue is empty
  auto queued_a = frontend.Submit(env.Request(1));  // queue slot 1
  auto queued_b = frontend.Submit(env.Request(2));  // queue slot 2
  auto rejected = frontend.Submit(env.Request(3));  // over capacity

  const ServingResponse& response = rejected->Wait();  // already resolved
  EXPECT_TRUE(response.status.IsResourceExhausted())
      << response.status.ToString();
  EXPECT_EQ(frontend.Stats().rejected_queue_full, 1u);

  gate.Open();
  EXPECT_TRUE(blocker->Wait().status.ok());
  EXPECT_TRUE(queued_a->Wait().status.ok());
  EXPECT_TRUE(queued_b->Wait().status.ok());
  frontend.Shutdown();
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(stats.peak_queue_depth, 2u);
}

TEST(ServingTest, EstimatedWaitBeyondDeadlineRejects) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.queue_capacity = 64;
  config.clock = &clock;
  // Fixed, known estimate: each request is assumed to take 100 ms and the
  // EMA is frozen so the arithmetic below is exact.
  config.initial_service_estimate = kMs(100);
  config.adapt_service_estimate = false;
  Gate started;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id == 1 && phase == RunPhase::kPreAnalysis) {
      started.Open();
      gate.Wait();
    }
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto blocker = frontend.Submit(env.Request(0));
  started.Wait();  // worker busy with the blocker; queue depth is exact now
  // Three queued requests with no deadline: the estimated-wait test does
  // not apply to them.
  std::vector<std::shared_ptr<ServingCall>> queued;
  for (size_t i = 1; i <= 3; ++i) {
    queued.push_back(frontend.Submit(env.Request(i)));
  }
  EXPECT_EQ(frontend.Stats().admitted, 4u);

  // Depth 3, one worker -> estimated wait 3 * 100 ms = 300 ms.
  ServingRequest tight = env.Request(4);
  tight.deadline = Deadline::After(clock, kMs(150));
  auto tight_call = frontend.Submit(tight);
  const ServingResponse& rejected = tight_call->Wait();
  EXPECT_TRUE(rejected.status.IsResourceExhausted())
      << rejected.status.ToString();
  EXPECT_EQ(frontend.Stats().rejected_estimated_wait, 1u);

  ServingRequest loose = env.Request(5);
  loose.deadline = Deadline::After(clock, kMs(400));
  auto admitted = frontend.Submit(loose);
  EXPECT_EQ(frontend.Stats().admitted, 5u);

  gate.Open();
  EXPECT_TRUE(blocker->Wait().status.ok());
  for (auto& call : queued) EXPECT_TRUE(call->Wait().status.ok());
  EXPECT_TRUE(admitted->Wait().status.ok());
  frontend.Shutdown();
  EXPECT_EQ(frontend.Stats().resolved(), frontend.Stats().submitted);
}

// ---- priority lanes --------------------------------------------------------

TEST(ServingTest, InteractiveLaneDequeuesBeforeBatch) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  Mutex order_mu{"serving_test.order"};
  std::vector<uint64_t> execution_order;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (phase != RunPhase::kPreAnalysis) return;
    if (id == 1) gate.Wait();
    MutexLock lock(&order_mu);
    execution_order.push_back(id);
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto blocker = frontend.Submit(env.Request(0));  // id 1

  auto submit = [&](size_t i, RequestPriority priority) {
    ServingRequest request = env.Request(i);
    request.priority = priority;
    return frontend.Submit(request);
  };
  auto batch_a = submit(1, RequestPriority::kBatch);         // id 2
  auto inter_a = submit(2, RequestPriority::kInteractive);   // id 3
  auto batch_b = submit(3, RequestPriority::kBatch);         // id 4
  auto inter_b = submit(4, RequestPriority::kInteractive);   // id 5

  gate.Open();
  for (auto& call : {blocker, batch_a, inter_a, batch_b, inter_b}) {
    EXPECT_TRUE(call->Wait().status.ok());
  }
  frontend.Shutdown();
  // Blocker first (it was already in flight), then both interactive
  // requests in FIFO order, then both batch requests in FIFO order.
  EXPECT_EQ(execution_order, (std::vector<uint64_t>{1, 3, 5, 2, 4}));
}

// ---- cancellation ----------------------------------------------------------

TEST(ServingTest, CancelBeforeExecution) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id == 1 && phase == RunPhase::kPreAnalysis) gate.Wait();
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto blocker = frontend.Submit(env.Request(0));
  auto victim = frontend.Submit(env.Request(1));
  victim->Cancel();
  EXPECT_TRUE(victim->cancel_requested());
  gate.Open();

  const ServingResponse& response = victim->Wait();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_EQ(response.phase_reached, RunPhase::kPreAnalysis);
  EXPECT_TRUE(blocker->Wait().status.ok());
  frontend.Shutdown();
  EXPECT_EQ(frontend.Stats().cancelled, 1u);
}

TEST(ServingTest, CancelDuringExecutionStopsAtNextCheckpoint) {
  Env env(/*num_shards=*/4);
  FakeClock clock;
  Gate gate;
  std::atomic<ServingCall*> victim_ptr{nullptr};
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.clock = &clock;
  // The worker races Submit's return, so it parks at its first checkpoint
  // until the test has stored the call pointer; then it cancels itself from
  // inside its own kPreRetrieval hook — the checkpoint right after the
  // hook must observe the token.
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id != 1) return;
    if (phase == RunPhase::kPreAnalysis) gate.Wait();
    if (phase == RunPhase::kPreRetrieval) victim_ptr.load()->Cancel();
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto victim = frontend.Submit(env.Request(0));
  victim_ptr.store(victim.get());
  gate.Open();

  const ServingResponse& response = victim->Wait();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_EQ(response.phase_reached, RunPhase::kPreRetrieval);
  frontend.Shutdown();
  EXPECT_EQ(frontend.Stats().cancelled, 1u);
}

// ---- drain on shutdown -----------------------------------------------------

TEST(ServingTest, DrainOnShutdownResolvesEveryRequestExactlyOnce) {
  Env env(1);
  FakeClock clock;
  Gate gate;
  Gate started;
  ServingFrontendConfig config;
  config.num_workers = 1;
  config.queue_capacity = 16;
  config.clock = &clock;
  config.phase_hook = [&](uint64_t id, RunPhase phase) {
    if (id == 1 && phase == RunPhase::kPreAnalysis) {
      started.Open();
      gate.Wait();
    }
  };
  ServingFrontend frontend(env.engine.get(), config);
  auto in_flight = frontend.Submit(env.Request(0));  // id 1, parked
  started.Wait();  // the worker is executing it, not queue-parked
  std::vector<std::shared_ptr<ServingCall>> queued;
  for (size_t i = 1; i <= 4; ++i) {
    queued.push_back(frontend.Submit(env.Request(i)));
  }

  // Shutdown from another thread: it drains the queue immediately, then
  // blocks joining the parked worker until the gate opens.
  std::thread shutdown_thread([&] { frontend.Shutdown(); });
  for (auto& call : queued) {
    const ServingResponse& response = call->Wait();  // drained -> resolved
    EXPECT_TRUE(response.status.IsFailedPrecondition())
        << response.status.ToString();
    EXPECT_EQ(response.phase_reached, RunPhase::kPreAnalysis);
  }
  // A submit that races the drain is rejected, never silently dropped.
  auto late_call = frontend.Submit(env.Request(5));
  const ServingResponse& late = late_call->Wait();
  EXPECT_TRUE(late.status.IsFailedPrecondition()) << late.status.ToString();

  gate.Open();
  shutdown_thread.join();
  // The in-flight request was never aborted: it finished normally.
  EXPECT_TRUE(in_flight->Wait().status.ok());

  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.rejected_shutdown, 5u);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(stats.queue_depth, 0u);
  // Shutdown is idempotent.
  frontend.Shutdown();
  EXPECT_EQ(frontend.Stats().resolved(), 6u);
}

// ---- overload soak (the "Serving gate" CI step) ----------------------------

TEST(ServingOverloadTest, SoakAtTenTimesCapacity) {
  Env env(1);
  ServingFrontendConfig config;
  config.num_workers = 2;
  config.queue_capacity = 8;
  ServingFrontend frontend(env.engine.get(), config);
  const size_t kTotal = 10 * config.queue_capacity;

  std::vector<std::shared_ptr<ServingCall>> calls;
  calls.reserve(kTotal);
  for (size_t i = 0; i < kTotal; ++i) {
    calls.push_back(frontend.Submit(env.Request(i)));
  }

  // Telemetry is monotone while the front-end churns: sample until every
  // request has resolved and verify no counter ever goes backwards.
  ServingStats prev;
  while (true) {
    ServingStats now = frontend.Stats();
    EXPECT_GE(now.submitted, prev.submitted);
    EXPECT_GE(now.admitted, prev.admitted);
    EXPECT_GE(now.completed, prev.completed);
    EXPECT_GE(now.expired, prev.expired);
    EXPECT_GE(now.cancelled, prev.cancelled);
    EXPECT_GE(now.rejected(), prev.rejected());
    EXPECT_GE(now.peak_queue_depth, prev.peak_queue_depth);
    prev = now;
    if (now.resolved() == kTotal) break;
    std::this_thread::yield();
  }

  for (const auto& call : calls) {
    const ServingResponse& response = call->Wait();
    if (!response.status.ok()) {
      // No deadlines in this test, so overload rejections must be
      // ResourceExhausted — never misreported as DeadlineExceeded.
      EXPECT_TRUE(response.status.IsResourceExhausted())
          << response.status.ToString();
    }
  }
  frontend.Shutdown();  // must not deadlock
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.completed + stats.rejected(), kTotal);
  EXPECT_GE(stats.completed, 1u);  // the workers did run
  EXPECT_LE(stats.peak_queue_depth, config.queue_capacity);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// ---- concurrency hammer (run under TSan in CI) -----------------------------

TEST(ServingTest, HammerMixedSubmitCancelShutdown) {
  Env env(/*num_shards=*/2);
  ServingFrontendConfig config;
  config.num_workers = 3;
  config.queue_capacity = 8;
  ServingFrontend frontend(env.engine.get(), config);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 40;
  std::vector<std::vector<std::shared_ptr<ServingCall>>> calls(kThreads);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        ServingRequest request = env.Request(t * kPerThread + i);
        request.priority = (i % 2 == 0) ? RequestPriority::kInteractive
                                        : RequestPriority::kBatch;
        auto call = frontend.Submit(std::move(request));
        if (i % 3 == 0) call->Cancel();
        calls[t].push_back(std::move(call));
        if (t == 0 && i == kPerThread / 2) {
          frontend.Shutdown();  // concurrent with everyone else's submits
        }
      }
    });
  }
  for (std::thread& s : submitters) s.join();
  frontend.Shutdown();

  size_t resolved = 0;
  for (const auto& per_thread : calls) {
    for (const auto& call : per_thread) {
      ASSERT_TRUE(call->resolved());
      const Status& status = call->Wait().status;
      EXPECT_TRUE(status.ok() || status.IsCancelled() ||
                  status.IsResourceExhausted() ||
                  status.IsFailedPrecondition())
          << status.ToString();
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, kThreads * kPerThread);
  ServingStats stats = frontend.Stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.resolved(), stats.submitted);
  EXPECT_EQ(stats.expired, 0u);  // no deadlines in the mix
}

}  // namespace
}  // namespace sqe
