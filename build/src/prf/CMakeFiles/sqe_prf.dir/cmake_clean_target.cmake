file(REMOVE_RECURSE
  "libsqe_prf.a"
)
