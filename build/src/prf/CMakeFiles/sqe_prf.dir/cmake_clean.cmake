file(REMOVE_RECURSE
  "CMakeFiles/sqe_prf.dir/relevance_model.cc.o"
  "CMakeFiles/sqe_prf.dir/relevance_model.cc.o.d"
  "libsqe_prf.a"
  "libsqe_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
