# Empty dependencies file for sqe_prf.
# This may be replaced when dependencies are built.
