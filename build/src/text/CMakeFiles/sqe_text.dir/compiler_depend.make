# Empty compiler generated dependencies file for sqe_text.
# This may be replaced when dependencies are built.
