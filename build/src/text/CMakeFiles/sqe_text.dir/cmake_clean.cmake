file(REMOVE_RECURSE
  "CMakeFiles/sqe_text.dir/analyzer.cc.o"
  "CMakeFiles/sqe_text.dir/analyzer.cc.o.d"
  "CMakeFiles/sqe_text.dir/porter_stemmer.cc.o"
  "CMakeFiles/sqe_text.dir/porter_stemmer.cc.o.d"
  "CMakeFiles/sqe_text.dir/stopwords.cc.o"
  "CMakeFiles/sqe_text.dir/stopwords.cc.o.d"
  "CMakeFiles/sqe_text.dir/tokenizer.cc.o"
  "CMakeFiles/sqe_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/sqe_text.dir/vocabulary.cc.o"
  "CMakeFiles/sqe_text.dir/vocabulary.cc.o.d"
  "libsqe_text.a"
  "libsqe_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
