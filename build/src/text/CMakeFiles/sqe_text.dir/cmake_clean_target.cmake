file(REMOVE_RECURSE
  "libsqe_text.a"
)
