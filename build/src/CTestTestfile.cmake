# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("io")
subdirs("text")
subdirs("kb")
subdirs("index")
subdirs("retrieval")
subdirs("entity")
subdirs("sqe")
subdirs("prf")
subdirs("eval")
subdirs("synth")
subdirs("analysis")
