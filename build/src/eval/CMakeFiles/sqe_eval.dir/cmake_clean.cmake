file(REMOVE_RECURSE
  "CMakeFiles/sqe_eval.dir/metrics.cc.o"
  "CMakeFiles/sqe_eval.dir/metrics.cc.o.d"
  "CMakeFiles/sqe_eval.dir/qrels.cc.o"
  "CMakeFiles/sqe_eval.dir/qrels.cc.o.d"
  "CMakeFiles/sqe_eval.dir/report.cc.o"
  "CMakeFiles/sqe_eval.dir/report.cc.o.d"
  "CMakeFiles/sqe_eval.dir/ttest.cc.o"
  "CMakeFiles/sqe_eval.dir/ttest.cc.o.d"
  "libsqe_eval.a"
  "libsqe_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
