# Empty dependencies file for sqe_eval.
# This may be replaced when dependencies are built.
