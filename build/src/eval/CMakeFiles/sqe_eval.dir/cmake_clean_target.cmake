file(REMOVE_RECURSE
  "libsqe_eval.a"
)
