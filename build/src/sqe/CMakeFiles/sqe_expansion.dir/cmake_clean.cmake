file(REMOVE_RECURSE
  "CMakeFiles/sqe_expansion.dir/combiner.cc.o"
  "CMakeFiles/sqe_expansion.dir/combiner.cc.o.d"
  "CMakeFiles/sqe_expansion.dir/motif.cc.o"
  "CMakeFiles/sqe_expansion.dir/motif.cc.o.d"
  "CMakeFiles/sqe_expansion.dir/motif_finder.cc.o"
  "CMakeFiles/sqe_expansion.dir/motif_finder.cc.o.d"
  "CMakeFiles/sqe_expansion.dir/query_builder.cc.o"
  "CMakeFiles/sqe_expansion.dir/query_builder.cc.o.d"
  "CMakeFiles/sqe_expansion.dir/sqe_engine.cc.o"
  "CMakeFiles/sqe_expansion.dir/sqe_engine.cc.o.d"
  "libsqe_expansion.a"
  "libsqe_expansion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_expansion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
