
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqe/combiner.cc" "src/sqe/CMakeFiles/sqe_expansion.dir/combiner.cc.o" "gcc" "src/sqe/CMakeFiles/sqe_expansion.dir/combiner.cc.o.d"
  "/root/repo/src/sqe/motif.cc" "src/sqe/CMakeFiles/sqe_expansion.dir/motif.cc.o" "gcc" "src/sqe/CMakeFiles/sqe_expansion.dir/motif.cc.o.d"
  "/root/repo/src/sqe/motif_finder.cc" "src/sqe/CMakeFiles/sqe_expansion.dir/motif_finder.cc.o" "gcc" "src/sqe/CMakeFiles/sqe_expansion.dir/motif_finder.cc.o.d"
  "/root/repo/src/sqe/query_builder.cc" "src/sqe/CMakeFiles/sqe_expansion.dir/query_builder.cc.o" "gcc" "src/sqe/CMakeFiles/sqe_expansion.dir/query_builder.cc.o.d"
  "/root/repo/src/sqe/sqe_engine.cc" "src/sqe/CMakeFiles/sqe_expansion.dir/sqe_engine.cc.o" "gcc" "src/sqe/CMakeFiles/sqe_expansion.dir/sqe_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/sqe_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sqe_index.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/sqe_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/entity/CMakeFiles/sqe_entity.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sqe_text.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sqe_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
