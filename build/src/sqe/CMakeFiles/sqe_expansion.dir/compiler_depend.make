# Empty compiler generated dependencies file for sqe_expansion.
# This may be replaced when dependencies are built.
