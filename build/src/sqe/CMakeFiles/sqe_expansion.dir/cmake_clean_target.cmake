file(REMOVE_RECURSE
  "libsqe_expansion.a"
)
