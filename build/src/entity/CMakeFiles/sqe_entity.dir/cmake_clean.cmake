file(REMOVE_RECURSE
  "CMakeFiles/sqe_entity.dir/entity_linker.cc.o"
  "CMakeFiles/sqe_entity.dir/entity_linker.cc.o.d"
  "CMakeFiles/sqe_entity.dir/ner.cc.o"
  "CMakeFiles/sqe_entity.dir/ner.cc.o.d"
  "CMakeFiles/sqe_entity.dir/surface_forms.cc.o"
  "CMakeFiles/sqe_entity.dir/surface_forms.cc.o.d"
  "libsqe_entity.a"
  "libsqe_entity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_entity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
