
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/entity/entity_linker.cc" "src/entity/CMakeFiles/sqe_entity.dir/entity_linker.cc.o" "gcc" "src/entity/CMakeFiles/sqe_entity.dir/entity_linker.cc.o.d"
  "/root/repo/src/entity/ner.cc" "src/entity/CMakeFiles/sqe_entity.dir/ner.cc.o" "gcc" "src/entity/CMakeFiles/sqe_entity.dir/ner.cc.o.d"
  "/root/repo/src/entity/surface_forms.cc" "src/entity/CMakeFiles/sqe_entity.dir/surface_forms.cc.o" "gcc" "src/entity/CMakeFiles/sqe_entity.dir/surface_forms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/sqe_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sqe_text.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sqe_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
