file(REMOVE_RECURSE
  "libsqe_entity.a"
)
