# Empty dependencies file for sqe_entity.
# This may be replaced when dependencies are built.
