file(REMOVE_RECURSE
  "libsqe_io.a"
)
