# Empty dependencies file for sqe_io.
# This may be replaced when dependencies are built.
