file(REMOVE_RECURSE
  "CMakeFiles/sqe_io.dir/coding.cc.o"
  "CMakeFiles/sqe_io.dir/coding.cc.o.d"
  "CMakeFiles/sqe_io.dir/file.cc.o"
  "CMakeFiles/sqe_io.dir/file.cc.o.d"
  "libsqe_io.a"
  "libsqe_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
