file(REMOVE_RECURSE
  "libsqe_retrieval.a"
)
