# Empty dependencies file for sqe_retrieval.
# This may be replaced when dependencies are built.
