file(REMOVE_RECURSE
  "CMakeFiles/sqe_retrieval.dir/phrase_matcher.cc.o"
  "CMakeFiles/sqe_retrieval.dir/phrase_matcher.cc.o.d"
  "CMakeFiles/sqe_retrieval.dir/query.cc.o"
  "CMakeFiles/sqe_retrieval.dir/query.cc.o.d"
  "CMakeFiles/sqe_retrieval.dir/retriever.cc.o"
  "CMakeFiles/sqe_retrieval.dir/retriever.cc.o.d"
  "libsqe_retrieval.a"
  "libsqe_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
