
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kb/dump_loader.cc" "src/kb/CMakeFiles/sqe_kb.dir/dump_loader.cc.o" "gcc" "src/kb/CMakeFiles/sqe_kb.dir/dump_loader.cc.o.d"
  "/root/repo/src/kb/kb_builder.cc" "src/kb/CMakeFiles/sqe_kb.dir/kb_builder.cc.o" "gcc" "src/kb/CMakeFiles/sqe_kb.dir/kb_builder.cc.o.d"
  "/root/repo/src/kb/kb_stats.cc" "src/kb/CMakeFiles/sqe_kb.dir/kb_stats.cc.o" "gcc" "src/kb/CMakeFiles/sqe_kb.dir/kb_stats.cc.o.d"
  "/root/repo/src/kb/knowledge_base.cc" "src/kb/CMakeFiles/sqe_kb.dir/knowledge_base.cc.o" "gcc" "src/kb/CMakeFiles/sqe_kb.dir/knowledge_base.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sqe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sqe_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
