file(REMOVE_RECURSE
  "libsqe_kb.a"
)
