# Empty compiler generated dependencies file for sqe_kb.
# This may be replaced when dependencies are built.
