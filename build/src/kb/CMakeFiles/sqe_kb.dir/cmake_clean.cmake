file(REMOVE_RECURSE
  "CMakeFiles/sqe_kb.dir/dump_loader.cc.o"
  "CMakeFiles/sqe_kb.dir/dump_loader.cc.o.d"
  "CMakeFiles/sqe_kb.dir/kb_builder.cc.o"
  "CMakeFiles/sqe_kb.dir/kb_builder.cc.o.d"
  "CMakeFiles/sqe_kb.dir/kb_stats.cc.o"
  "CMakeFiles/sqe_kb.dir/kb_stats.cc.o.d"
  "CMakeFiles/sqe_kb.dir/knowledge_base.cc.o"
  "CMakeFiles/sqe_kb.dir/knowledge_base.cc.o.d"
  "libsqe_kb.a"
  "libsqe_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
