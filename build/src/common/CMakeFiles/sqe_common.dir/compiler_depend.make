# Empty compiler generated dependencies file for sqe_common.
# This may be replaced when dependencies are built.
