file(REMOVE_RECURSE
  "CMakeFiles/sqe_common.dir/hash.cc.o"
  "CMakeFiles/sqe_common.dir/hash.cc.o.d"
  "CMakeFiles/sqe_common.dir/logging.cc.o"
  "CMakeFiles/sqe_common.dir/logging.cc.o.d"
  "CMakeFiles/sqe_common.dir/random.cc.o"
  "CMakeFiles/sqe_common.dir/random.cc.o.d"
  "CMakeFiles/sqe_common.dir/status.cc.o"
  "CMakeFiles/sqe_common.dir/status.cc.o.d"
  "CMakeFiles/sqe_common.dir/string_util.cc.o"
  "CMakeFiles/sqe_common.dir/string_util.cc.o.d"
  "libsqe_common.a"
  "libsqe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
