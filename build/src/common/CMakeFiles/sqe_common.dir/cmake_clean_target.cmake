file(REMOVE_RECURSE
  "libsqe_common.a"
)
