file(REMOVE_RECURSE
  "libsqe_analysis.a"
)
