file(REMOVE_RECURSE
  "CMakeFiles/sqe_analysis.dir/cycle_enumerator.cc.o"
  "CMakeFiles/sqe_analysis.dir/cycle_enumerator.cc.o.d"
  "CMakeFiles/sqe_analysis.dir/structure_analyzer.cc.o"
  "CMakeFiles/sqe_analysis.dir/structure_analyzer.cc.o.d"
  "libsqe_analysis.a"
  "libsqe_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
