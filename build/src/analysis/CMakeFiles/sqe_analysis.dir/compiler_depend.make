# Empty compiler generated dependencies file for sqe_analysis.
# This may be replaced when dependencies are built.
