file(REMOVE_RECURSE
  "libsqe_synth.a"
)
