file(REMOVE_RECURSE
  "CMakeFiles/sqe_synth.dir/collection.cc.o"
  "CMakeFiles/sqe_synth.dir/collection.cc.o.d"
  "CMakeFiles/sqe_synth.dir/dataset.cc.o"
  "CMakeFiles/sqe_synth.dir/dataset.cc.o.d"
  "CMakeFiles/sqe_synth.dir/query_gen.cc.o"
  "CMakeFiles/sqe_synth.dir/query_gen.cc.o.d"
  "CMakeFiles/sqe_synth.dir/wordgen.cc.o"
  "CMakeFiles/sqe_synth.dir/wordgen.cc.o.d"
  "CMakeFiles/sqe_synth.dir/world.cc.o"
  "CMakeFiles/sqe_synth.dir/world.cc.o.d"
  "libsqe_synth.a"
  "libsqe_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
