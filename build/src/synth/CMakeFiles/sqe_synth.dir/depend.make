# Empty dependencies file for sqe_synth.
# This may be replaced when dependencies are built.
