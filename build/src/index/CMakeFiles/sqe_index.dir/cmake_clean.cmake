file(REMOVE_RECURSE
  "CMakeFiles/sqe_index.dir/inverted_index.cc.o"
  "CMakeFiles/sqe_index.dir/inverted_index.cc.o.d"
  "CMakeFiles/sqe_index.dir/postings.cc.o"
  "CMakeFiles/sqe_index.dir/postings.cc.o.d"
  "libsqe_index.a"
  "libsqe_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
