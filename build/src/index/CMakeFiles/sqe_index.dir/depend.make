# Empty dependencies file for sqe_index.
# This may be replaced when dependencies are built.
