file(REMOVE_RECURSE
  "libsqe_index.a"
)
