# Empty dependencies file for table4_timing.
# This may be replaced when dependencies are built.
