file(REMOVE_RECURSE
  "CMakeFiles/table4_timing.dir/table4_timing.cc.o"
  "CMakeFiles/table4_timing.dir/table4_timing.cc.o.d"
  "table4_timing"
  "table4_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
