file(REMOVE_RECURSE
  "CMakeFiles/fig6_dataset_improvement.dir/fig6_dataset_improvement.cc.o"
  "CMakeFiles/fig6_dataset_improvement.dir/fig6_dataset_improvement.cc.o.d"
  "fig6_dataset_improvement"
  "fig6_dataset_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_dataset_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
