# Empty compiler generated dependencies file for fig6_dataset_improvement.
# This may be replaced when dependencies are built.
