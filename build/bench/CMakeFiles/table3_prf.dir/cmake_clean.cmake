file(REMOVE_RECURSE
  "CMakeFiles/table3_prf.dir/table3_prf.cc.o"
  "CMakeFiles/table3_prf.dir/table3_prf.cc.o.d"
  "table3_prf"
  "table3_prf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_prf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
