# Empty compiler generated dependencies file for table3_prf.
# This may be replaced when dependencies are built.
