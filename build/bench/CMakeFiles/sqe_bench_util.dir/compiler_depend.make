# Empty compiler generated dependencies file for sqe_bench_util.
# This may be replaced when dependencies are built.
