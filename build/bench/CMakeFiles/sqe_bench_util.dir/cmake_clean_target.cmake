file(REMOVE_RECURSE
  "libsqe_bench_util.a"
)
