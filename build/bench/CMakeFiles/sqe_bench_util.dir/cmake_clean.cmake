file(REMOVE_RECURSE
  "CMakeFiles/sqe_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/sqe_bench_util.dir/bench_util.cc.o.d"
  "libsqe_bench_util.a"
  "libsqe_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
