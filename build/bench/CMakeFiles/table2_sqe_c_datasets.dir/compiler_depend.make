# Empty compiler generated dependencies file for table2_sqe_c_datasets.
# This may be replaced when dependencies are built.
