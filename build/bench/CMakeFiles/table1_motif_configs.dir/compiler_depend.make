# Empty compiler generated dependencies file for table1_motif_configs.
# This may be replaced when dependencies are built.
