file(REMOVE_RECURSE
  "CMakeFiles/table1_motif_configs.dir/table1_motif_configs.cc.o"
  "CMakeFiles/table1_motif_configs.dir/table1_motif_configs.cc.o.d"
  "table1_motif_configs"
  "table1_motif_configs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_motif_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
