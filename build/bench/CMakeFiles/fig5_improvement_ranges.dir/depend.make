# Empty dependencies file for fig5_improvement_ranges.
# This may be replaced when dependencies are built.
