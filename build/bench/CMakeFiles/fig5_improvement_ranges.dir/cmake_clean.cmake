file(REMOVE_RECURSE
  "CMakeFiles/fig5_improvement_ranges.dir/fig5_improvement_ranges.cc.o"
  "CMakeFiles/fig5_improvement_ranges.dir/fig5_improvement_ranges.cc.o.d"
  "fig5_improvement_ranges"
  "fig5_improvement_ranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_improvement_ranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
