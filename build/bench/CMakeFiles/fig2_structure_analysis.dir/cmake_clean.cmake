file(REMOVE_RECURSE
  "CMakeFiles/fig2_structure_analysis.dir/fig2_structure_analysis.cc.o"
  "CMakeFiles/fig2_structure_analysis.dir/fig2_structure_analysis.cc.o.d"
  "fig2_structure_analysis"
  "fig2_structure_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_structure_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
