# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/retrieval_test[1]_include.cmake")
include("/root/repo/build/tests/entity_test[1]_include.cmake")
include("/root/repo/build/tests/sqe_test[1]_include.cmake")
include("/root/repo/build/tests/prf_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
