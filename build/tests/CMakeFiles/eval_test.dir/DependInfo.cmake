
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval_test.cc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o" "gcc" "tests/CMakeFiles/eval_test.dir/eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/sqe_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/retrieval/CMakeFiles/sqe_retrieval.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/sqe_index.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/sqe_io.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/sqe_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sqe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
