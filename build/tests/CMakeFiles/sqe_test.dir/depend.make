# Empty dependencies file for sqe_test.
# This may be replaced when dependencies are built.
