file(REMOVE_RECURSE
  "CMakeFiles/sqe_test.dir/sqe_test.cc.o"
  "CMakeFiles/sqe_test.dir/sqe_test.cc.o.d"
  "sqe_test"
  "sqe_test.pdb"
  "sqe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
