file(REMOVE_RECURSE
  "CMakeFiles/prf_test.dir/prf_test.cc.o"
  "CMakeFiles/prf_test.dir/prf_test.cc.o.d"
  "prf_test"
  "prf_test.pdb"
  "prf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
