# Empty compiler generated dependencies file for sqe_tool.
# This may be replaced when dependencies are built.
