file(REMOVE_RECURSE
  "CMakeFiles/sqe_tool.dir/sqe_tool.cc.o"
  "CMakeFiles/sqe_tool.dir/sqe_tool.cc.o.d"
  "sqe_tool"
  "sqe_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqe_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
