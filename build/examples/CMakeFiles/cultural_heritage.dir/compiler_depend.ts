# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for cultural_heritage.
