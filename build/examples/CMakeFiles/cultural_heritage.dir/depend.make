# Empty dependencies file for cultural_heritage.
# This may be replaced when dependencies are built.
