file(REMOVE_RECURSE
  "CMakeFiles/cultural_heritage.dir/cultural_heritage.cpp.o"
  "CMakeFiles/cultural_heritage.dir/cultural_heritage.cpp.o.d"
  "cultural_heritage"
  "cultural_heritage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cultural_heritage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
