file(REMOVE_RECURSE
  "CMakeFiles/kb_explorer.dir/kb_explorer.cpp.o"
  "CMakeFiles/kb_explorer.dir/kb_explorer.cpp.o.d"
  "kb_explorer"
  "kb_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kb_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
