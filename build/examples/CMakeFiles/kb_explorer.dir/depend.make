# Empty dependencies file for kb_explorer.
# This may be replaced when dependencies are built.
