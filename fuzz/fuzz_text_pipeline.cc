// Fuzz target: the text front door — Analyzer over raw query bytes, then
// EntityLinker against a small fixed KB/surface-form dictionary.
//
// This is the path untrusted query strings actually take in serving, so it
// must hold up against arbitrary (including invalid-UTF-8) input. Invariants
// under test:
//  - the analyzer never crashes and never emits empty tokens;
//  - Dexter-path links (LinkTokens) reference real articles, carry
//    normalized confidences, and their token spans are well-formed,
//    in-bounds, ordered, and non-overlapping;
//  - the full Link() pipeline (which may take the NER fallback, whose spans
//    are heuristic) still only emits real articles with positive
//    confidence and non-empty spans.
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "entity/entity_linker.h"
#include "entity/surface_forms.h"
#include "kb/kb_builder.h"
#include "kb/knowledge_base.h"
#include "text/analyzer.h"

namespace {

using sqe::entity::EntityLinker;
using sqe::entity::LinkedEntity;
using sqe::entity::SurfaceFormDictionary;
using sqe::kb::KbBuilder;
using sqe::kb::KnowledgeBase;
using sqe::text::Analyzer;

struct Fixture {
  Fixture() {
    KbBuilder builder;
    const auto ny = builder.AddArticle("New York City");
    const auto york = builder.AddArticle("York");
    const auto jazz = builder.AddArticle("Jazz");
    const auto museum = builder.AddArticle("Museum of Modern Art");
    const auto cities = builder.AddCategory("Cities");
    builder.AddMembership(ny, cities);
    builder.AddMembership(york, cities);
    builder.AddReciprocalLink(ny, museum);
    builder.AddArticleLink(jazz, ny);
    kb = std::move(builder).Build();
    dictionary = SurfaceFormDictionary::FromKbTitles(kb, analyzer);
    dictionary.Finalize();
  }

  Analyzer analyzer;
  KnowledgeBase kb;
  SurfaceFormDictionary dictionary;
};

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  static const Fixture* fixture = new Fixture;
  const std::string_view raw(reinterpret_cast<const char*>(data), size);

  const std::vector<std::string> tokens = fixture->analyzer.Analyze(raw);
  for (const std::string& token : tokens) SQE_CHECK(!token.empty());

  const EntityLinker linker(&fixture->dictionary, &fixture->analyzer);
  const size_t num_articles = fixture->kb.NumArticles();

  // Dexter path: spans come straight from the greedy longest-match scan, so
  // the full invariant set applies.
  size_t prev_end = 0;
  for (const LinkedEntity& entity : linker.LinkTokens(tokens)) {
    SQE_CHECK(entity.article < num_articles);
    SQE_CHECK(entity.confidence > 0.0 && entity.confidence <= 1.0);
    SQE_CHECK(entity.token_begin < entity.token_end);
    SQE_CHECK(entity.token_end <= tokens.size());
    SQE_CHECK(entity.token_begin >= prev_end);  // ordered, no overlap
    prev_end = entity.token_end;
  }

  // Full pipeline, NER fallback included. Fallback spans are heuristic
  // (prefix-stability of the analyzer), so only the core guarantees hold.
  for (const LinkedEntity& entity : linker.Link(raw)) {
    SQE_CHECK(entity.article < num_articles);
    SQE_CHECK(entity.confidence > 0.0);
    SQE_CHECK(entity.token_begin < entity.token_end);
  }
  return 0;
}
