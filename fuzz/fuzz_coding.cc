// Fuzz target: the varint/fixed/length-prefixed coding substrate and the
// CRC32/snapshot framing layer underneath every snapshot format.
//
// The input's first byte selects an opcode; the rest is the byte stream to
// decode. Invariants under test:
//  - decoders never read out of bounds or crash on any input;
//  - every successful decode re-encodes to bytes that decode to the same
//    value (round-trip identity);
//  - Crc32 is chainable: Crc32(a+b) == Crc32(b, Crc32(a));
//  - SnapshotReader::Open on arbitrary bytes fails cleanly or exposes
//    blocks whose names it can re-fetch.
#include <cstdint>
#include <string>
#include <string_view>

#include "common/hash.h"
#include "common/macros.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"

namespace {

using sqe::io::GetFixed32;
using sqe::io::GetFixed64;
using sqe::io::GetLengthPrefixed;
using sqe::io::GetVarint32;
using sqe::io::GetVarint64;
using sqe::io::PutFixed32;
using sqe::io::PutFixed64;
using sqe::io::PutLengthPrefixed;
using sqe::io::PutVarint32;
using sqe::io::PutVarint64;

void RoundTripVarint32(std::string_view input) {
  uint32_t v = 0;
  if (!GetVarint32(&input, &v)) return;
  std::string out;
  PutVarint32(&out, v);
  std::string_view reread(out);
  uint32_t v2 = 0;
  SQE_CHECK(GetVarint32(&reread, &v2));
  SQE_CHECK(v2 == v);
  SQE_CHECK(reread.empty());
  SQE_CHECK(out.size() == static_cast<size_t>(sqe::io::VarintLength(v)));
}

void RoundTripVarint64(std::string_view input) {
  uint64_t v = 0;
  if (!GetVarint64(&input, &v)) return;
  std::string out;
  PutVarint64(&out, v);
  std::string_view reread(out);
  uint64_t v2 = 0;
  SQE_CHECK(GetVarint64(&reread, &v2));
  SQE_CHECK(v2 == v);
}

void RoundTripFixed(std::string_view input) {
  uint32_t v32 = 0;
  if (GetFixed32(&input, &v32)) {
    std::string out;
    PutFixed32(&out, v32);
    std::string_view reread(out);
    uint32_t back = 0;
    SQE_CHECK(GetFixed32(&reread, &back) && back == v32);
  }
  uint64_t v64 = 0;
  if (GetFixed64(&input, &v64)) {
    std::string out;
    PutFixed64(&out, v64);
    std::string_view reread(out);
    uint64_t back = 0;
    SQE_CHECK(GetFixed64(&reread, &back) && back == v64);
  }
}

void RoundTripLengthPrefixed(std::string_view input) {
  std::string_view payload;
  if (!GetLengthPrefixed(&input, &payload)) return;
  std::string out;
  PutLengthPrefixed(&out, payload);
  std::string_view reread(out);
  std::string_view payload2;
  SQE_CHECK(GetLengthPrefixed(&reread, &payload2));
  SQE_CHECK(payload2 == payload);
}

void RoundTripZigZag(std::string_view input) {
  uint64_t raw = 0;
  if (!GetVarint64(&input, &raw)) return;
  const int64_t decoded = sqe::io::ZigZagDecode64(raw);
  SQE_CHECK(sqe::io::ZigZagEncode64(decoded) == raw);
}

void CrcChaining(std::string_view input) {
  const size_t split = input.empty() ? 0 : input.front() % input.size();
  const std::string_view a = input.substr(0, split);
  const std::string_view b = input.substr(split);
  const uint32_t whole = sqe::Crc32(input);
  const uint32_t chained = sqe::Crc32(b, sqe::Crc32(a));
  SQE_CHECK(whole == chained);
}

void ProbeSnapshotReader(std::string_view input) {
  static constexpr uint32_t kMagics[] = {
      sqe::io::kKbSnapshotMagic,
      sqe::io::kIndexSnapshotMagic,
      sqe::io::kShardManifestSnapshotMagic,
  };
  for (const uint32_t magic : kMagics) {
    auto reader = sqe::io::SnapshotReader::Open(std::string(input), magic);
    if (!reader.ok()) continue;
    for (const std::string& name : reader->BlockNames()) {
      SQE_CHECK(reader->GetBlock(name).ok());
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t opcode = data[0];
  const std::string_view rest(reinterpret_cast<const char*>(data + 1),
                              size - 1);
  switch (opcode % 7) {
    case 0: RoundTripVarint32(rest); break;
    case 1: RoundTripVarint64(rest); break;
    case 2: RoundTripFixed(rest); break;
    case 3: RoundTripLengthPrefixed(rest); break;
    case 4: RoundTripZigZag(rest); break;
    case 5: CrcChaining(rest); break;
    case 6: ProbeSnapshotReader(rest); break;
  }
  return 0;
}
