// Replay driver for the fuzz harnesses on toolchains without libFuzzer.
//
// With clang and -DSQE_FUZZ=ON the harnesses link -fsanitize=fuzzer and
// libFuzzer provides main(). Everywhere else (gcc builds, the default
// ctest run) this main stands in: every argument is a corpus file or a
// directory of corpus files, each executed through LLVMFuzzerTestOneInput
// exactly once. Any crash/abort fails the run — which turns the committed
// seed corpora into permanent regression tests.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read corpus file %s\n", path.c_str());
    return 1;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (arg.native().rfind('-', 0) == 0) continue;  // libFuzzer-style flag
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: %s <corpus file or dir>... (replay mode; build "
                 "with clang and -DSQE_FUZZ=ON for coverage-guided "
                 "fuzzing)\n",
                 argv[0]);
    return 2;
  }
  std::sort(files.begin(), files.end());
  int failures = 0;
  for (const auto& f : files) failures += RunFile(f);
  std::printf("replayed %zu corpus inputs, %d unreadable\n", files.size(),
              failures);
  return failures == 0 ? 0 : 1;
}
