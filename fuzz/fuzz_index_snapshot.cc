// Fuzz target: index-side snapshot loaders — the v2 inverted-index format
// (postings + blockmax blocks) and the shard manifest.
//
// Invariant under test: arbitrary bytes either fail to load with a clean
// Status, or produce structures that pass their own deep validation. The
// PR 2 posting-decode wraparound (delta-encoded doc gaps summing past
// num_docs) lived exactly here, so its regression inputs are committed in
// this target's corpus.
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "index/inverted_index.h"
#include "index/shard_manifest.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string image(reinterpret_cast<const char*>(data), size);

  // Zero-copy probe: the mapped loader must be exactly as strict as the
  // heap loader, and its in-image spans must survive Validate's full walk.
  auto mapped = sqe::index::InvertedIndex::FromSnapshotString(
      image, sqe::io::LoadMode::kZeroCopy);
  if (mapped.ok()) {
    SQE_CHECK(mapped->Validate().ok());
  }

  auto index = sqe::index::InvertedIndex::FromSnapshotString(image);
  if (index.ok()) {
    SQE_CHECK(index->Validate().ok());
    SQE_CHECK(!index->SerializeToString().empty());
  }

  // The same bytes double as a shard-manifest probe: distinct magic, so at
  // most one of the two loaders gets past the header, but both must be
  // robust to the other's (and any) framing.
  auto manifest = sqe::index::ShardManifest::FromSnapshotString(std::move(image));
  if (manifest.ok()) {
    SQE_CHECK(manifest->Validate(manifest->num_docs()).ok());
  }
  return 0;
}
