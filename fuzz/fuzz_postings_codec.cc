// Fuzz target: the bit-packed posting-block codec (index/postings_codec.h).
//
// Input framing: data[0] selects the block length n = 1 + data[0] % 128,
// data[1..4] the little-endian gap anchor (prev_plus1), and the rest is the
// encoded block (2-byte width header + packed payloads).
//
// Invariants under test: the checked decoder either rejects with a clean
// Status or yields structurally valid postings (doc ids >= anchor and
// strictly increasing, frequencies >= 1); anything it accepts must survive
// an encode/decode round trip bit for bit; and because the encoder always
// picks minimal widths, the re-encoded block can never be longer than the
// accepted input — which exercises the stale-width class (a CRC-resigned
// header claiming wider lanes than the values need must still decode to
// the same integers it round-trips to).
#include <cstdint>
#include <cstring>
#include <string>

#include "common/macros.h"
#include "index/postings_codec.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  namespace codec = sqe::index::codec;
  if (size < 5) return 0;
  const size_t n = 1 + data[0] % codec::kBlockLen;
  uint32_t prev_plus1;
  std::memcpy(&prev_plus1, data + 1, sizeof(prev_plus1));

  uint32_t docs[codec::kBlockLen];
  uint32_t freqs[codec::kBlockLen];
  sqe::Status s =
      codec::DecodeBlockChecked(data + 5, size - 5, n, prev_plus1, docs,
                                freqs);
  if (!s.ok()) return 0;

  uint32_t prev = prev_plus1;
  for (size_t i = 0; i < n; ++i) {
    SQE_CHECK(docs[i] >= prev);
    prev = docs[i] + 1;
    SQE_CHECK(freqs[i] >= 1);
  }

  std::string reencoded;
  codec::EncodeBlock(docs, freqs, n, prev_plus1, &reencoded);
  SQE_CHECK(reencoded.size() <= size - 5);
  uint32_t docs2[codec::kBlockLen];
  uint32_t freqs2[codec::kBlockLen];
  codec::DecodeBlock(reinterpret_cast<const uint8_t*>(reencoded.data()), n,
                     prev_plus1, docs2, freqs2);
  SQE_CHECK(std::memcmp(docs, docs2, n * sizeof(uint32_t)) == 0);
  SQE_CHECK(std::memcmp(freqs, freqs2, n * sizeof(uint32_t)) == 0);
  return 0;
}
