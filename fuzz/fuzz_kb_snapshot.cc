// Fuzz target: KB snapshot loader (kb::KnowledgeBase::FromSnapshotString).
//
// Invariant under test: arbitrary bytes either fail to load with a clean
// Status, or load into a KnowledgeBase that passes its own deep Validate().
// A crash, sanitizer report, or a loaded-but-invalid KB is a bug in the
// loader's bounds/CRC checking.
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "kb/knowledge_base.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string image(reinterpret_cast<const char*>(data), size);

  // Zero-copy probe first: the mapped loader must be exactly as strict as
  // the heap loader (legacy images are rejected as InvalidArgument, aligned
  // images hit the same validation), and its spans must stay in bounds for
  // Validate's full walk.
  auto mapped = sqe::kb::KnowledgeBase::FromSnapshotString(
      image, sqe::io::LoadMode::kZeroCopy);
  if (mapped.ok()) {
    SQE_CHECK(mapped->Validate().ok());
  }

  auto loaded = sqe::kb::KnowledgeBase::FromSnapshotString(std::move(image));
  if (loaded.ok()) {
    // Anything the loader accepts must also deep-validate: the load path
    // may not be laxer than the integrity checker.
    SQE_CHECK(loaded->Validate().ok());
    // And a loaded KB must round-trip through its own writer.
    SQE_CHECK(!loaded->SerializeToString().empty());
  }
  return 0;
}
