// cultural_heritage: the CHiC-like scenario with *automatic* entity linking.
//
// The hard mode of the paper's evaluation: a larger collection (60k
// records), stricter relevance, and query nodes selected by the Dexter-like
// linker instead of manually. Shows per-query linking decisions and how
// linking errors propagate into expansion quality — the (M) vs (A) gap of
// Table 2 and Figure 6.
//
// Usage: cultural_heritage [num_queries_to_show]
#include <cstdio>
#include <cstdlib>

#include "eval/metrics.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

int main(int argc, char** argv) {
  using namespace sqe;
  const size_t show =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 8;

  std::printf("building the paper-scale world and CHiC-2013-like dataset...\n");
  synth::World world = synth::World::Generate(synth::PaperWorldOptions());
  synth::Dataset dataset = synth::BuildDataset(world, synth::Chic2013Spec());

  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  double sum_manual = 0.0, sum_auto = 0.0;
  size_t linked_correctly = 0, linked_at_all = 0;

  for (size_t qi = 0; qi < dataset.NumQueries(); ++qi) {
    const synth::GeneratedQuery& query = dataset.query_set.queries[qi];
    std::vector<kb::ArticleId> automatic = engine.LinkQueryNodes(query.text);

    bool correct = false;
    for (kb::ArticleId a : automatic) {
      if (a == query.true_entities[0]) correct = true;
    }
    if (!automatic.empty()) {
      ++linked_at_all;
      if (correct) ++linked_correctly;
    }

    expansion::SqeCRunResult manual =
        engine.RunSqeC(query.text, query.true_entities, 100);
    expansion::SqeCRunResult auto_run =
        engine.RunSqeC(query.text, automatic, 100);
    const auto& relevant = dataset.query_set.qrels.RelevantDocs(qi);
    double p10_m = eval::PrecisionAtK(manual.results, relevant, 10);
    double p10_a = eval::PrecisionAtK(auto_run.results, relevant, 10);
    sum_manual += p10_m;
    sum_auto += p10_a;

    if (qi < show) {
      std::printf("\nquery #%zu: \"%s\"\n", qi, query.text.c_str());
      std::printf("  true entity:  [%s]\n",
                  std::string(world.kb.ArticleTitle(query.true_entities[0])).c_str());
      std::printf("  auto linked: ");
      if (automatic.empty()) {
        std::printf(" (nothing linked -> falls back to the raw query)");
      }
      for (kb::ArticleId a : automatic) {
        std::printf(" [%s]%s", std::string(world.kb.ArticleTitle(a)).c_str(),
                    a == query.true_entities[0] ? "*" : "");
      }
      std::printf("\n  SQE_C (M) P@10=%.2f   SQE_C (A) P@10=%.2f\n", p10_m,
                  p10_a);
    }
  }

  const double n = static_cast<double>(dataset.NumQueries());
  std::printf("\n==== summary over %zu queries ====\n", dataset.NumQueries());
  std::printf("linking: linked %zu/%zu queries, %.1f%% of linked queries "
              "contain the true entity\n",
              linked_at_all, dataset.NumQueries(),
              100.0 * static_cast<double>(linked_correctly) /
                  static_cast<double>(linked_at_all));
  std::printf("mean P@10: SQE_C (M) = %.3f, SQE_C (A) = %.3f "
              "(A/M ratio %.0f%%; the paper reports ~82%% at P@5)\n",
              sum_manual / n, sum_auto / n,
              100.0 * sum_auto / std::max(sum_manual, 1e-9));
  return 0;
}
