// Quickstart: the smallest end-to-end SQE run.
//
// Builds a tiny synthetic world (stand-in for Wikipedia), indexes a small
// document collection, then expands and executes one query with each motif
// configuration, printing the query graph and the top results.
//
// Usage: quickstart [query_index]
#include <cstdio>
#include <cstdlib>

#include "eval/metrics.h"
#include "prf/relevance_model.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

void PrintResults(const char* label, const sqe::retrieval::ResultList& results,
                  const sqe::synth::Dataset& dataset, size_t query_index,
                  size_t show) {
  double p10 = sqe::eval::PrecisionAtK(
      results, dataset.query_set.qrels.RelevantDocs(query_index), 10);
  std::printf("%-8s P@10=%.2f  top:", label, p10);
  for (size_t i = 0; i < show && i < results.size(); ++i) {
    bool relevant = dataset.query_set.qrels.IsRelevant(query_index,
                                                       results[i].doc);
    std::printf(" %s%s", std::string(dataset.index.ExternalId(results[i].doc)).c_str(),
                relevant ? "*" : "");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const size_t query_index =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 0;

  // 1. Generate the world (KB graph) and a dataset over it.
  sqe::synth::World world =
      sqe::synth::World::Generate(sqe::synth::TinyWorldOptions());
  sqe::synth::Dataset dataset =
      sqe::synth::BuildDataset(world, sqe::synth::TinyDatasetSpec());
  std::printf("world: %zu articles, %zu categories; collection: %zu docs\n",
              world.kb.NumArticles(), world.kb.NumCategories(),
              dataset.collection.docs.size());

  // 2. Stand up the engine.
  sqe::expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  sqe::expansion::SqeEngine engine(&world.kb, &dataset.index,
                                   dataset.linker.get(), &dataset.analyzer(),
                                   config);

  if (query_index >= dataset.NumQueries()) {
    std::fprintf(stderr, "query index out of range (have %zu)\n",
                 dataset.NumQueries());
    return 1;
  }
  const sqe::synth::GeneratedQuery& query =
      dataset.query_set.queries[query_index];
  std::printf("\nquery #%zu: \"%s\"\n", query_index, query.text.c_str());
  std::printf("intent article: %s\n",
              std::string(world.kb.ArticleTitle(query.true_entities[0])).c_str());

  // 3. Entity linking (automatic) vs the manual ground truth.
  std::vector<sqe::kb::ArticleId> auto_nodes =
      engine.LinkQueryNodes(query.text);
  std::printf("auto-linked query nodes:");
  for (sqe::kb::ArticleId a : auto_nodes) {
    std::printf(" [%s]", std::string(world.kb.ArticleTitle(a)).c_str());
  }
  std::printf("\n\n");

  // 4. Expansion with each motif configuration (manual query nodes).
  for (const auto& motifs : {sqe::expansion::MotifConfig::Triangular(),
                             sqe::expansion::MotifConfig::Square(),
                             sqe::expansion::MotifConfig::Both()}) {
    sqe::expansion::SqeRunResult run =
        engine.RunSqe(query.text, query.true_entities, motifs, 10);
    std::printf("SQE_%s: %zu expansion features (%.2f ms motif matching)\n",
                motifs.ToString().c_str(), run.graph.expansion_nodes.size(),
                run.graph_build_ms);
    for (size_t i = 0; i < run.graph.expansion_nodes.size() && i < 5; ++i) {
      const auto& node = run.graph.expansion_nodes[i];
      std::printf("   |m_a|=%u  %s\n", node.motif_count,
                  std::string(world.kb.ArticleTitle(node.article)).c_str());
    }
    PrintResults(motifs.ToString().c_str(), run.results, dataset, query_index,
                 5);
  }

  // 5. Baselines and the combined SQE_C for comparison.
  std::printf("\n");
  PrintResults("QL_Q",
               engine.RunBaseline(query.text, query.true_entities,
                                  sqe::expansion::QueryParts::QOnly(), 10),
               dataset, query_index, 5);
  PrintResults("QL_Q&E",
               engine.RunBaseline(query.text, query.true_entities,
                                  sqe::expansion::QueryParts::QAndE(), 10),
               dataset, query_index, 5);
  sqe::expansion::SqeCRunResult combined =
      engine.RunSqeC(query.text, query.true_entities, 10);
  PrintResults("SQE_C", combined.results, dataset, query_index, 5);

  return 0;
}
