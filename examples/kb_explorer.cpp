// kb_explorer: inspect the knowledge-base graph and motif structure around
// an article, and exercise the dump-lite / snapshot persistence path.
//
// Usage:
//   kb_explorer                      # explore a generated world
//   kb_explorer <article title>      # explore around a specific article
//   kb_explorer --dump <path>        # load a dump-lite file instead
#include <cstdio>
#include <cstring>
#include <string>

#include "kb/dump_loader.h"
#include "kb/kb_stats.h"
#include "sqe/motif_finder.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

void ExploreArticle(const kb::KnowledgeBase& kb, kb::ArticleId article) {
  std::printf("\n[%s] (article %u)\n", std::string(kb.ArticleTitle(article)).c_str(),
              article);
  std::printf("  categories:");
  for (kb::CategoryId c : kb.CategoriesOf(article)) {
    std::printf(" {%s}", std::string(kb.CategoryTitle(c)).c_str());
  }
  std::printf("\n  out-links: %zu, in-links: %zu\n",
              kb.OutLinks(article).size(), kb.InLinks(article).size());

  expansion::MotifFinder finder(&kb);
  auto triangles = finder.FindTriangular(article);
  std::printf("  triangular motifs (%zu):\n", triangles.size());
  for (size_t i = 0; i < triangles.size() && i < 6; ++i) {
    std::printf("    %s --- %s --- {%s}\n",
                std::string(kb.ArticleTitle(article)).c_str(),
                std::string(kb.ArticleTitle(triangles[i].expansion_node)).c_str(),
                std::string(kb.CategoryTitle(triangles[i].shared_category)).c_str());
  }
  auto squares = finder.FindSquare(article);
  std::printf("  square motifs (%zu):\n", squares.size());
  for (size_t i = 0; i < squares.size() && i < 6; ++i) {
    std::printf("    %s --- %s --- {%s} --- {%s}\n",
                std::string(kb.ArticleTitle(article)).c_str(),
                std::string(kb.ArticleTitle(squares[i].expansion_node)).c_str(),
                std::string(kb.CategoryTitle(squares[i].expansion_category)).c_str(),
                std::string(kb.CategoryTitle(squares[i].query_category)).c_str());
  }

  std::vector<kb::ArticleId> nodes = {article};
  expansion::QueryGraph graph =
      finder.BuildQueryGraph(nodes, expansion::MotifConfig::Both());
  std::printf("  query graph: %zu expansion nodes, %llu motif instances\n",
              graph.expansion_nodes.size(),
              static_cast<unsigned long long>(graph.total_motifs));
  for (size_t i = 0; i < graph.expansion_nodes.size() && i < 8; ++i) {
    const auto& node = graph.expansion_nodes[i];
    std::printf("    |m_a|=%-3u (T=%u S=%u)  %s\n", node.motif_count,
                node.triangular_count, node.square_count,
                std::string(kb.ArticleTitle(node.article)).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  kb::KnowledgeBase kb;
  std::string wanted_title;

  if (argc >= 3 && std::strcmp(argv[1], "--dump") == 0) {
    auto loaded = kb::LoadDumpFromFile(argv[2]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "cannot load dump: %s\n",
                   loaded.status().ToString().c_str());
      return 1;
    }
    kb = std::move(loaded).value();
  } else {
    if (argc >= 2) wanted_title = argv[1];
    std::printf("generating a synthetic Wikipedia-like world...\n");
    synth::World world = synth::World::Generate(synth::TinyWorldOptions());
    kb = std::move(world.kb);
  }

  std::printf("%s\n", kb::ComputeKbStats(kb).ToString().c_str());

  // Round-trip through the binary snapshot to demonstrate persistence.
  const std::string snapshot_path = "/tmp/sqe_kb_explorer_snapshot.bin";
  if (kb.SaveToFile(snapshot_path).ok()) {
    auto reloaded = kb::KnowledgeBase::FromSnapshotFile(snapshot_path);
    if (reloaded.ok()) {
      std::printf("snapshot round-trip OK (%zu articles preserved)\n",
                  reloaded.value().NumArticles());
    }
    std::remove(snapshot_path.c_str());
  }

  kb::ArticleId article = 0;
  if (!wanted_title.empty()) {
    article = kb.FindArticle(wanted_title);
    if (article == kb::kInvalidArticle) {
      std::fprintf(stderr, "article '%s' not found\n", wanted_title.c_str());
      return 1;
    }
  } else {
    // Pick the article with the most motif matches for a lively demo.
    expansion::MotifFinder finder(&kb);
    size_t best = 0;
    for (kb::ArticleId a = 0; a < kb.NumArticles() && a < 400; ++a) {
      size_t n = finder.FindTriangular(a).size();
      if (n > best) {
        best = n;
        article = a;
      }
    }
  }
  ExploreArticle(kb, article);
  return 0;
}
