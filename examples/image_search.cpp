// image_search: the ImageCLEF-like scenario end to end at paper scale.
//
// Generates the full paper world and the ImageCLEF-like dataset (20k image
// metadata records, 50 queries), then walks one query through the complete
// pipeline exactly as Section 4.1 does: baselines, each motif
// configuration, the combined SQE_C, and the ground-truth upper bound —
// printing precision and the expansion features with their |m_a| weights.
//
// Usage: image_search [query_index]
#include <cstdio>
#include <cstdlib>

#include "eval/metrics.h"
#include "sqe/sqe_engine.h"
#include "synth/dataset.h"

namespace {

using namespace sqe;

void Report(const char* label, const retrieval::ResultList& results,
            const synth::Dataset& dataset, size_t query_index) {
  const auto& relevant = dataset.query_set.qrels.RelevantDocs(query_index);
  std::printf("  %-10s P@5=%.2f P@10=%.2f P@20=%.2f P@100=%.3f\n", label,
              eval::PrecisionAtK(results, relevant, 5),
              eval::PrecisionAtK(results, relevant, 10),
              eval::PrecisionAtK(results, relevant, 20),
              eval::PrecisionAtK(results, relevant, 100));
}

}  // namespace

int main(int argc, char** argv) {
  const size_t query_index =
      argc > 1 ? static_cast<size_t>(std::atoi(argv[1])) : 3;

  std::printf("building the paper-scale world and ImageCLEF-like dataset "
              "(one-time cost)...\n");
  synth::World world = synth::World::Generate(synth::PaperWorldOptions());
  synth::Dataset dataset =
      synth::BuildDataset(world, synth::ImageClefSpec());

  expansion::SqeEngineConfig config;
  config.retriever.mu = dataset.retrieval_mu;
  expansion::SqeEngine engine(&world.kb, &dataset.index, dataset.linker.get(),
                              &dataset.analyzer(), config);

  if (query_index >= dataset.NumQueries()) {
    std::fprintf(stderr, "query index out of range (have %zu)\n",
                 dataset.NumQueries());
    return 1;
  }
  const synth::GeneratedQuery& query = dataset.query_set.queries[query_index];
  std::printf("\nquery #%zu: \"%s\"\n", query_index, query.text.c_str());
  std::printf("intent: [%s], %zu relevant documents\n",
              std::string(world.kb.ArticleTitle(query.true_entities[0])).c_str(),
              dataset.query_set.qrels.NumRelevant(query_index));

  std::printf("\nbaselines (manual query nodes):\n");
  Report("QL_Q",
         engine.RunBaseline(query.text, query.true_entities,
                            expansion::QueryParts::QOnly(), 1000),
         dataset, query_index);
  Report("QL_E",
         engine.RunBaseline(query.text, query.true_entities,
                            expansion::QueryParts::EOnly(), 1000),
         dataset, query_index);
  Report("QL_Q&E",
         engine.RunBaseline(query.text, query.true_entities,
                            expansion::QueryParts::QAndE(), 1000),
         dataset, query_index);

  std::printf("\nmotif configurations:\n");
  for (const auto& motifs : {expansion::MotifConfig::Triangular(),
                             expansion::MotifConfig::Both(),
                             expansion::MotifConfig::Square()}) {
    expansion::SqeRunResult run =
        engine.RunSqe(query.text, query.true_entities, motifs, 1000);
    Report(("SQE_" + motifs.ToString()).c_str(), run.results, dataset,
           query_index);
    if (motifs.use_triangular && !motifs.use_square) {
      for (size_t i = 0; i < run.graph.expansion_nodes.size() && i < 4; ++i) {
        const auto& node = run.graph.expansion_nodes[i];
        std::printf("      |m_a|=%-3u %s\n", node.motif_count,
                    std::string(world.kb.ArticleTitle(node.article)).c_str());
      }
    }
  }

  std::printf("\ncombined strategy and bound:\n");
  expansion::SqeCRunResult combined =
      engine.RunSqeC(query.text, query.true_entities, 1000);
  Report("SQE_C", combined.results, dataset, query_index);
  Report("SQE_UB",
         engine
             .RunWithGraph(query.text, query.ground_truth_graph, 1000)
             .results,
         dataset, query_index);
  std::printf("\nexpansion time: T=%.2fms T&S=%.2fms S=%.2fms\n",
              combined.graph_build_ms_t, combined.graph_build_ms_ts,
              combined.graph_build_ms_s);
  return 0;
}
