#include "text/porter_stemmer.h"

namespace sqe::text {

namespace {

// Working buffer view over the word being stemmed. `k` is the index of the
// last character of the current stem (inclusive), following Porter's
// original exposition.
class Stemmer {
 public:
  explicit Stemmer(std::string word) : b_(std::move(word)), k_(b_.size() - 1) {}

  std::string Run() {
    if (b_.size() <= 2) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    return b_.substr(0, k_ + 1);
  }

 private:
  bool IsConsonant(size_t i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measures the number of consonant-vowel sequences in b_[0..j].
  size_t Measure(size_t j) const {
    size_t n = 0;
    size_t i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  bool HasVowelInStem(size_t j) const {
    for (size_t i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  bool DoubleConsonant(size_t j) const {
    if (j < 1) return false;
    if (b_[j] != b_[j - 1]) return false;
    return IsConsonant(j);
  }

  // cvc where the second c is not w, x or y; used to test e-restoration.
  bool CvcEnding(size_t i) const {
    if (i < 2 || !IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2))
      return false;
    char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  bool EndsWith(std::string_view s) {
    size_t len = s.size();
    if (len > k_ + 1) return false;
    if (b_.compare(k_ + 1 - len, len, s) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  void SetTo(std::string_view s) {
    b_.replace(j_ + 1, k_ - j_, s);
    k_ = j_ + s.size();
  }

  void ReplaceIfM(std::string_view s, size_t min_m = 1) {
    if (Measure(j_) >= min_m) SetTo(s);
  }

  void Step1ab() {
    // 1a: plurals.
    if (b_[k_] == 's') {
      if (EndsWith("sses")) {
        k_ -= 2;
      } else if (EndsWith("ies")) {
        SetTo("i");
      } else if (k_ >= 1 && b_[k_ - 1] != 's') {
        --k_;
      }
    }
    // 1b: -ed / -ing.
    if (EndsWith("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((EndsWith("ed") || EndsWith("ing")) && HasVowelInStem(j_)) {
      k_ = j_;
      if (EndsWith("at")) {
        SetTo("ate");
      } else if (EndsWith("bl")) {
        SetTo("ble");
      } else if (EndsWith("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && CvcEnding(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
  }

  void Step1c() {
    if (EndsWith("y") && HasVowelInStem(j_)) b_[k_] = 'i';
  }

  void Step2() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (EndsWith("ational")) { ReplaceIfM("ate"); break; }
        if (EndsWith("tional")) { ReplaceIfM("tion"); }
        break;
      case 'c':
        if (EndsWith("enci")) { ReplaceIfM("ence"); break; }
        if (EndsWith("anci")) { ReplaceIfM("ance"); }
        break;
      case 'e':
        if (EndsWith("izer")) { ReplaceIfM("ize"); }
        break;
      case 'l':
        if (EndsWith("abli")) { ReplaceIfM("able"); break; }
        if (EndsWith("alli")) { ReplaceIfM("al"); break; }
        if (EndsWith("entli")) { ReplaceIfM("ent"); break; }
        if (EndsWith("eli")) { ReplaceIfM("e"); break; }
        if (EndsWith("ousli")) { ReplaceIfM("ous"); }
        break;
      case 'o':
        if (EndsWith("ization")) { ReplaceIfM("ize"); break; }
        if (EndsWith("ation")) { ReplaceIfM("ate"); break; }
        if (EndsWith("ator")) { ReplaceIfM("ate"); }
        break;
      case 's':
        if (EndsWith("alism")) { ReplaceIfM("al"); break; }
        if (EndsWith("iveness")) { ReplaceIfM("ive"); break; }
        if (EndsWith("fulness")) { ReplaceIfM("ful"); break; }
        if (EndsWith("ousness")) { ReplaceIfM("ous"); }
        break;
      case 't':
        if (EndsWith("aliti")) { ReplaceIfM("al"); break; }
        if (EndsWith("iviti")) { ReplaceIfM("ive"); break; }
        if (EndsWith("biliti")) { ReplaceIfM("ble"); }
        break;
      default:
        break;
    }
  }

  void Step3() {
    switch (b_[k_]) {
      case 'e':
        if (EndsWith("icate")) { ReplaceIfM("ic"); break; }
        if (EndsWith("ative")) { ReplaceIfM(""); break; }
        if (EndsWith("alize")) { ReplaceIfM("al"); }
        break;
      case 'i':
        if (EndsWith("iciti")) { ReplaceIfM("ic"); }
        break;
      case 'l':
        if (EndsWith("ical")) { ReplaceIfM("ic"); break; }
        if (EndsWith("ful")) { ReplaceIfM(""); }
        break;
      case 's':
        if (EndsWith("ness")) { ReplaceIfM(""); }
        break;
      default:
        break;
    }
  }

  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (EndsWith("al")) break;
        return;
      case 'c':
        if (EndsWith("ance")) break;
        if (EndsWith("ence")) break;
        return;
      case 'e':
        if (EndsWith("er")) break;
        return;
      case 'i':
        if (EndsWith("ic")) break;
        return;
      case 'l':
        if (EndsWith("able")) break;
        if (EndsWith("ible")) break;
        return;
      case 'n':
        if (EndsWith("ant")) break;
        if (EndsWith("ement")) break;
        if (EndsWith("ment")) break;
        if (EndsWith("ent")) break;
        return;
      case 'o':
        // -ion only drops after s or t.
        if (EndsWith("ion") && j_ + 1 >= 1 &&
            (b_[j_] == 's' || b_[j_] == 't')) {
          break;
        }
        if (EndsWith("ou")) break;
        return;
      case 's':
        if (EndsWith("ism")) break;
        return;
      case 't':
        if (EndsWith("ate")) break;
        if (EndsWith("iti")) break;
        return;
      case 'u':
        if (EndsWith("ous")) break;
        return;
      case 'v':
        if (EndsWith("ive")) break;
        return;
      case 'z':
        if (EndsWith("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) k_ = j_;
  }

  void Step5() {
    // 5a: remove trailing e.
    j_ = k_;
    if (b_[k_] == 'e') {
      size_t m = Measure(k_ - 1);
      if (m > 1 || (m == 1 && !CvcEnding(k_ - 1))) --k_;
    }
    // 5b: -ll -> -l for m > 1.
    if (b_[k_] == 'l' && DoubleConsonant(k_) && Measure(k_) > 1) --k_;
  }

  std::string b_;
  size_t k_;       // last char of current word (inclusive)
  size_t j_ = 0;   // last char of stem before candidate suffix
};

}  // namespace

std::string PorterStem(std::string_view term) {
  if (term.size() <= 2) return std::string(term);
  return Stemmer(std::string(term)).Run();
}

}  // namespace sqe::text
