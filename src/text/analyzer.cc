#include "text/analyzer.h"

#include "text/porter_stemmer.h"
#include "text/stopwords.h"
#include "text/tokenizer.h"

namespace sqe::text {

std::vector<std::string> Analyzer::Analyze(std::string_view raw_text) const {
  std::vector<std::string> out;
  for (Token& token : Tokenize(raw_text)) {
    if (options_.remove_stopwords && IsStopword(token.term)) continue;
    std::string term =
        options_.stem ? PorterStem(token.term) : std::move(token.term);
    if (term.size() < options_.min_term_length) continue;
    out.push_back(std::move(term));
  }
  return out;
}

}  // namespace sqe::text
