// Standard English stopword list (the Indri/INQUERY short list).
#ifndef SQE_TEXT_STOPWORDS_H_
#define SQE_TEXT_STOPWORDS_H_

#include <string_view>

namespace sqe::text {

/// True if `term` (already lower-cased) is an English stopword.
bool IsStopword(std::string_view term);

/// Number of entries in the built-in stopword list (for tests).
size_t StopwordCount();

}  // namespace sqe::text

#endif  // SQE_TEXT_STOPWORDS_H_
