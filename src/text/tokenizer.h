// Tokenization: splits raw text into lower-cased alphanumeric tokens.
//
// Mirrors the Indri/Krovetz-style "letter-digit run" tokenizer the paper's
// experiments rely on: everything that is not [a-z0-9] separates tokens;
// tokens are ASCII-lower-cased. Offsets into the original text are kept so
// the entity linker can map spans back to the query string.
#ifndef SQE_TEXT_TOKENIZER_H_
#define SQE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqe::text {

/// A token plus its [begin, end) byte range in the source text.
struct Token {
  std::string term;   // lower-cased surface form
  size_t begin = 0;   // byte offset of first char in source
  size_t end = 0;     // one past last char in source

  friend bool operator==(const Token& a, const Token& b) {
    return a.term == b.term && a.begin == b.begin && a.end == b.end;
  }
};

/// Splits `input` into tokens. Alphanumeric runs only; apostrophes inside a
/// word ("user's") split the word ("user", "s") exactly as Indri does.
std::vector<Token> Tokenize(std::string_view input);

/// Convenience: just the lower-cased terms.
std::vector<std::string> TokenizeToTerms(std::string_view input);

}  // namespace sqe::text

#endif  // SQE_TEXT_TOKENIZER_H_
