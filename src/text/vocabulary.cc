#include "text/vocabulary.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"

namespace sqe::text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  SQE_DCHECK(!terms_.mapped());
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.owned().emplace_back(term);
  index_.emplace(terms_.owned().back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  if (!terms_.mapped()) {
    auto it = index_.find(std::string(term));
    if (it == index_.end()) return kInvalidTermId;
    return it->second;
  }
  std::span<const TermId> order = order_.span();
  auto it = std::lower_bound(order.begin(), order.end(), term,
                             [this](TermId id, std::string_view t) {
                               return terms_[id] < t;
                             });
  if (it != order.end() && terms_[*it] == term) return *it;
  return kInvalidTermId;
}

std::vector<TermId> Vocabulary::SortedOrder() const {
  std::vector<TermId> order(terms_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](TermId a, TermId b) {
    return terms_[a] < terms_[b];
  });
  return order;
}

Status Vocabulary::ValidateOrder(std::span<const TermId> order) const {
  if (order.size() != terms_.size()) {
    return Status::Corruption(
        StrFormat("vocabulary: sorted order has %zu entries for %zu terms",
                  order.size(), terms_.size()));
  }
  for (size_t k = 0; k < order.size(); ++k) {
    if (order[k] >= terms_.size()) {
      return Status::Corruption(
          StrFormat("vocabulary: sorted order entry %zu out of range", k));
    }
    if (k > 0 && !(terms_[order[k - 1]] < terms_[order[k]])) {
      return Status::Corruption(StrFormat(
          "vocabulary: sorted order not strictly ascending at rank %zu "
          "(duplicate term strings or unsorted order)",
          k));
    }
  }
  return Status::OK();
}

Status Vocabulary::AttachMapped(std::span<const uint64_t> offsets,
                                std::string_view blob,
                                std::span<const TermId> order) {
  index_.clear();
  SQE_RETURN_IF_ERROR(terms_.SetMapped(offsets, blob, "vocabulary terms"));
  SQE_RETURN_IF_ERROR(ValidateOrder(order));
  order_.SetView(order);
  return Status::OK();
}

Status Vocabulary::AssignMapped(std::span<const uint64_t> offsets,
                                std::string_view blob,
                                std::span<const TermId> order) {
  SQE_RETURN_IF_ERROR(terms_.AssignMapped(offsets, blob, "vocabulary terms"));
  // The stored order is only consulted by mapped vocabularies, but a heap
  // load still proves it correct so both load modes accept exactly the
  // same set of snapshots.
  SQE_RETURN_IF_ERROR(ValidateOrder(order));
  index_.clear();
  index_.reserve(terms_.size());
  for (size_t id = 0; id < terms_.size(); ++id) {
    index_.emplace(terms_.owned()[id], static_cast<TermId>(id));
  }
  if (index_.size() != terms_.size()) {
    return Status::Corruption("vocabulary: duplicate term strings");
  }
  return Status::OK();
}

Status Vocabulary::Validate() const {
  if (terms_.mapped()) {
    SQE_RETURN_IF_ERROR(ValidateOrder(order_.span()));
    for (size_t id = 0; id < terms_.size(); ++id) {
      if (Lookup(terms_[id]) != static_cast<TermId>(id)) {
        return Status::Corruption(StrFormat(
            "vocabulary: term id %zu ('%s') does not round-trip through the "
            "term map",
            id, std::string(terms_[id]).c_str()));
      }
    }
    return Status::OK();
  }
  if (index_.size() != terms_.size()) {
    return Status::Corruption(
        StrFormat("vocabulary: %zu distinct terms in map but %zu ids "
                  "(duplicate term strings)",
                  index_.size(), terms_.size()));
  }
  for (size_t id = 0; id < terms_.size(); ++id) {
    auto it = index_.find(terms_.owned()[id]);
    if (it == index_.end() || it->second != static_cast<TermId>(id)) {
      return Status::Corruption(StrFormat(
          "vocabulary: term id %zu ('%s') does not round-trip through the "
          "term map",
          id, terms_.owned()[id].c_str()));
    }
  }
  return Status::OK();
}

}  // namespace sqe::text
