#include "text/vocabulary.h"

#include "common/string_util.h"

namespace sqe::text {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) return kInvalidTermId;
  return it->second;
}

Status Vocabulary::Validate() const {
  if (index_.size() != terms_.size()) {
    return Status::Corruption(
        StrFormat("vocabulary: %zu distinct terms in map but %zu ids "
                  "(duplicate term strings)",
                  index_.size(), terms_.size()));
  }
  for (size_t id = 0; id < terms_.size(); ++id) {
    auto it = index_.find(terms_[id]);
    if (it == index_.end() || it->second != static_cast<TermId>(id)) {
      return Status::Corruption(StrFormat(
          "vocabulary: term id %zu ('%s') does not round-trip through the "
          "term map",
          id, terms_[id].c_str()));
    }
  }
  return Status::OK();
}

}  // namespace sqe::text
