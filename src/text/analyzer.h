// Analyzer: the tokenize → stop → stem pipeline applied identically to
// documents and queries, so index terms and query terms live in the same
// term space.
#ifndef SQE_TEXT_ANALYZER_H_
#define SQE_TEXT_ANALYZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqe::text {

/// Pipeline configuration. Defaults mirror the paper's Indri setup.
struct AnalyzerOptions {
  bool remove_stopwords = true;
  bool stem = true;
  // Terms shorter than this (after stemming) are dropped. 1 keeps everything.
  size_t min_term_length = 1;
};

/// Stateless, reusable text-analysis pipeline.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerOptions options = {}) : options_(options) {}

  /// Full pipeline: tokenize, drop stopwords, stem.
  std::vector<std::string> Analyze(std::string_view raw_text) const;

  /// Analyzes a phrase (e.g., an article title) keeping term order; used to
  /// build n-gram query nodes. Stopwords inside phrases are dropped as well
  /// (Indri's #1 operator matches the remaining terms adjacently).
  std::vector<std::string> AnalyzePhrase(std::string_view phrase) const {
    return Analyze(phrase);
  }

  const AnalyzerOptions& options() const { return options_; }

 private:
  AnalyzerOptions options_;
};

}  // namespace sqe::text

#endif  // SQE_TEXT_ANALYZER_H_
