// Vocabulary: bidirectional term <-> dense TermId mapping.
//
// Term ids are dense 32-bit integers assigned in insertion order, so they
// can index postings arrays directly. The synthetic generators, the index
// and the retrieval engine all share one Vocabulary instance per dataset.
#ifndef SQE_TEXT_VOCABULARY_H_
#define SQE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace sqe::text {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Append-only term dictionary.
class Vocabulary {
 public:
  Vocabulary() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(Vocabulary);
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Returns the id for `term`, inserting it if new.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Term string for an id. Id must be valid (debug-checked; ids on the
  /// read path come from validated postings/forward indexes).
  const std::string& TermOf(TermId id) const {
    SQE_DCHECK(id < terms_.size());
    return terms_[id];
  }

  /// Verifies the id↔term bijection: every id maps to exactly one term and
  /// looking that term up returns the same id (duplicate terms collapse the
  /// map and break the round trip). Returns Status::Corruption naming the
  /// offending id. O(size).
  Status Validate() const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// All terms, id order (for serialization).
  const std::vector<std::string>& terms() const { return terms_; }

 private:
  friend struct VocabularyTestPeer;  // validator tests build broken vocabs

  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
};

}  // namespace sqe::text

#endif  // SQE_TEXT_VOCABULARY_H_
