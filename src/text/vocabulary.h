// Vocabulary: bidirectional term <-> dense TermId mapping.
//
// Term ids are dense 32-bit integers assigned in insertion order, so they
// can index postings arrays directly. The synthetic generators, the index
// and the retrieval engine all share one Vocabulary instance per dataset.
//
// Two storage modes mirror the snapshot load modes: an owned vocabulary
// (builders, legacy and heap loads) keeps a hash map for O(1) lookup; a
// mapped vocabulary points at a string column plus a term-sorted id
// permutation inside a retained zero-copy snapshot image and looks terms
// up by binary search — nothing is decoded or allocated per term.
#ifndef SQE_TEXT_VOCABULARY_H_
#define SQE_TEXT_VOCABULARY_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/string_column.h"
#include "common/vec_or_view.h"

namespace sqe::text {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = UINT32_MAX;

/// Append-only term dictionary.
class Vocabulary {
 public:
  Vocabulary() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(Vocabulary);
  Vocabulary(Vocabulary&&) = default;
  Vocabulary& operator=(Vocabulary&&) = default;

  /// Returns the id for `term`, inserting it if new. Owned mode only.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId if absent.
  TermId Lookup(std::string_view term) const;

  /// Term string for an id. Id must be valid (debug-checked; ids on the
  /// read path come from validated postings/forward indexes). The view
  /// stays valid as long as the vocabulary (and, in mapped mode, the
  /// snapshot image retaining it) does.
  std::string_view TermOf(TermId id) const {
    SQE_DCHECK(id < terms_.size());
    return terms_[id];
  }

  /// Verifies the id↔term bijection: every id maps to exactly one term and
  /// looking that term up returns the same id (duplicate terms collapse the
  /// map — or break the sorted order's strict ascent — and either way the
  /// round trip fails). Returns Status::Corruption naming the offending
  /// id. O(size) owned, O(size log size) mapped.
  Status Validate() const;

  size_t size() const { return terms_.size(); }
  bool empty() const { return terms_.empty(); }

  /// True when the terms view a retained snapshot image.
  bool zero_copy() const { return terms_.mapped(); }

  /// Id permutation ordering terms ascending — the persistable replacement
  /// for the hash map (v3 snapshots store it; a mapped vocabulary binary-
  /// searches it). Computed on demand in owned mode.
  std::vector<TermId> SortedOrder() const;

  /// Zero-copy attach: term column and order point into a snapshot image
  /// the caller retains. Rejects a malformed column or an order that is
  /// not a strictly ascending permutation.
  Status AttachMapped(std::span<const uint64_t> offsets,
                      std::string_view blob, std::span<const TermId> order);
  /// Heap load of the same layout: copies the strings, rebuilds the hash
  /// map, and verifies the stored order. The image may be discarded after.
  Status AssignMapped(std::span<const uint64_t> offsets,
                      std::string_view blob, std::span<const TermId> order);

 private:
  friend struct VocabularyTestPeer;  // validator tests build broken vocabs

  /// Order must be a size()-long, in-range permutation along which terms
  /// strictly ascend.
  Status ValidateOrder(std::span<const TermId> order) const;

  std::unordered_map<std::string, TermId> index_;  // owned mode only
  StringColumn terms_;
  VecOrView<TermId> order_;  // mapped mode only
};

}  // namespace sqe::text

#endif  // SQE_TEXT_VOCABULARY_H_
