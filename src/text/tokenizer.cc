#include "text/tokenizer.h"

namespace sqe::text {

namespace {
inline bool IsTokenChar(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}
inline char LowerAscii(unsigned char c) {
  if (c >= 'A' && c <= 'Z') return static_cast<char>(c - 'A' + 'a');
  return static_cast<char>(c);
}
}  // namespace

std::vector<Token> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  const size_t n = input.size();
  size_t i = 0;
  while (i < n) {
    while (i < n && !IsTokenChar(static_cast<unsigned char>(input[i]))) ++i;
    if (i >= n) break;
    size_t start = i;
    std::string term;
    while (i < n && IsTokenChar(static_cast<unsigned char>(input[i]))) {
      term.push_back(LowerAscii(static_cast<unsigned char>(input[i])));
      ++i;
    }
    tokens.push_back(Token{std::move(term), start, i});
  }
  return tokens;
}

std::vector<std::string> TokenizeToTerms(std::string_view input) {
  std::vector<std::string> terms;
  for (Token& t : Tokenize(input)) {
    terms.push_back(std::move(t.term));
  }
  return terms;
}

}  // namespace sqe::text
