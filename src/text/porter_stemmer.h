// Porter stemming algorithm (Porter, 1980), the stemmer Indri applies by
// default. Full five-step implementation over lower-case ASCII terms.
#ifndef SQE_TEXT_PORTER_STEMMER_H_
#define SQE_TEXT_PORTER_STEMMER_H_

#include <string>
#include <string_view>

namespace sqe::text {

/// Stems a single lower-cased term. Terms of length <= 2 pass through.
std::string PorterStem(std::string_view term);

}  // namespace sqe::text

#endif  // SQE_TEXT_PORTER_STEMMER_H_
