#include "eval/metrics.h"

#include "common/macros.h"

namespace sqe::eval {

double PrecisionAtK(const retrieval::ResultList& results,
                    const std::unordered_set<index::DocId>& relevant,
                    size_t k) {
  SQE_CHECK(k > 0);
  size_t hits = 0;
  const size_t limit = std::min(k, results.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.contains(results[i].doc)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

double AveragePrecision(const retrieval::ResultList& results,
                        const std::unordered_set<index::DocId>& relevant) {
  if (relevant.empty()) return 0.0;
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (relevant.contains(results[i].doc)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

std::vector<double> PerQueryPrecision(
    const std::vector<retrieval::ResultList>& runs, const Qrels& qrels,
    size_t k) {
  SQE_CHECK(runs.size() == qrels.NumQueries());
  std::vector<double> out;
  out.reserve(runs.size());
  for (size_t q = 0; q < runs.size(); ++q) {
    out.push_back(PrecisionAtK(runs[q], qrels.RelevantDocs(q), k));
  }
  return out;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::array<double, kDefaultTops.size()> MeanPrecisionAtTops(
    const std::vector<retrieval::ResultList>& runs, const Qrels& qrels) {
  std::array<double, kDefaultTops.size()> out{};
  for (size_t i = 0; i < kDefaultTops.size(); ++i) {
    out[i] = Mean(PerQueryPrecision(runs, qrels, kDefaultTops[i]));
  }
  return out;
}

double MeanAveragePrecision(const std::vector<retrieval::ResultList>& runs,
                            const Qrels& qrels) {
  SQE_CHECK(runs.size() == qrels.NumQueries());
  std::vector<double> per_query;
  per_query.reserve(runs.size());
  for (size_t q = 0; q < runs.size(); ++q) {
    per_query.push_back(AveragePrecision(runs[q], qrels.RelevantDocs(q)));
  }
  return Mean(per_query);
}

}  // namespace sqe::eval
