#include "eval/qrels.h"

namespace sqe::eval {

double Qrels::AverageRelevantPerQuery() const {
  if (relevant_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& set : relevant_) total += set.size();
  return static_cast<double>(total) / static_cast<double>(relevant_.size());
}

size_t Qrels::NumQueriesWithoutRelevant() const {
  size_t n = 0;
  for (const auto& set : relevant_) {
    if (set.empty()) ++n;
  }
  return n;
}

}  // namespace sqe::eval
