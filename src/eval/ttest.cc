#include "eval/ttest.h"

#include <cmath>

#include "common/macros.h"

namespace sqe::eval {

namespace {

// Continued-fraction kernel for the incomplete beta function
// (Lentz's algorithm, as in Numerical Recipes betacf).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  SQE_CHECK(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the continued fraction directly where it converges fast, or the
  // symmetry transformation otherwise.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTTwoSidedPValue(double t, size_t df) {
  if (df == 0) return 1.0;
  const double nu = static_cast<double>(df);
  const double x = nu / (nu + t * t);
  return RegularizedIncompleteBeta(nu / 2.0, 0.5, x);
}

TTestResult PairedTTest(const std::vector<double>& treatment,
                        const std::vector<double>& baseline) {
  SQE_CHECK_MSG(treatment.size() == baseline.size(),
                "paired t-test requires equal-length samples");
  TTestResult result;
  const size_t n = treatment.size();
  if (n < 2) return result;

  double mean = 0.0;
  for (size_t i = 0; i < n; ++i) mean += treatment[i] - baseline[i];
  mean /= static_cast<double>(n);

  double ss = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = (treatment[i] - baseline[i]) - mean;
    ss += d * d;
  }
  const double variance = ss / static_cast<double>(n - 1);
  result.mean_difference = mean;
  result.degrees_of_freedom = n - 1;

  if (variance <= 0.0) {
    // All differences identical: significant iff the common difference is
    // non-zero (the t statistic diverges).
    result.t_statistic =
        mean == 0.0 ? 0.0
                    : std::copysign(std::numeric_limits<double>::infinity(),
                                    mean);
    result.p_value = mean == 0.0 ? 1.0 : 0.0;
    return result;
  }

  const double se = std::sqrt(variance / static_cast<double>(n));
  result.t_statistic = mean / se;
  result.p_value =
      StudentTTwoSidedPValue(result.t_statistic, result.degrees_of_freedom);
  return result;
}

}  // namespace sqe::eval
