#include "eval/report.h"

#include <algorithm>

#include "common/macros.h"
#include "common/string_util.h"
#include "eval/ttest.h"

namespace sqe::eval {

PrecisionTable EvaluateTable(const std::vector<NamedRun>& systems,
                             const Qrels& qrels) {
  PrecisionTable table;

  // Per-query precision matrices for significance testing.
  // per_query[row][top_index] -> vector over queries.
  std::vector<std::vector<std::vector<double>>> per_query(systems.size());
  for (size_t r = 0; r < systems.size(); ++r) {
    SQE_CHECK(systems[r].runs.size() == qrels.NumQueries());
    per_query[r].resize(kDefaultTops.size());
    for (size_t t = 0; t < kDefaultTops.size(); ++t) {
      per_query[r][t] =
          PerQueryPrecision(systems[r].runs, qrels, kDefaultTops[t]);
    }
  }

  std::vector<size_t> baseline_rows;
  for (size_t r = 0; r < systems.size(); ++r) {
    if (systems[r].is_baseline) baseline_rows.push_back(r);
  }

  for (size_t r = 0; r < systems.size(); ++r) {
    table.row_names.push_back(systems[r].name);
    std::array<double, kDefaultTops.size()> means{};
    std::array<bool, kDefaultTops.size()> sig{};
    for (size_t t = 0; t < kDefaultTops.size(); ++t) {
      means[t] = Mean(per_query[r][t]);
      if (!systems[r].is_baseline && !systems[r].skip_significance &&
          !baseline_rows.empty()) {
        bool all_significant = true;
        for (size_t b : baseline_rows) {
          TTestResult test = PairedTTest(per_query[r][t], per_query[b][t]);
          if (!(test.Significant() && test.mean_difference > 0.0)) {
            all_significant = false;
            break;
          }
        }
        sig[t] = all_significant;
      }
    }
    table.means.push_back(means);
    table.significant.push_back(sig);
  }
  return table;
}

std::string PrecisionTable::ToString(const std::string& title) const {
  std::string out = title + "\n";
  size_t name_width = 12;
  for (const std::string& n : row_names) {
    name_width = std::max(name_width, n.size() + 2);
  }
  out += StrFormat("%-*s", static_cast<int>(name_width), "");
  for (size_t top : kDefaultTops) {
    out += StrFormat("%9s", StrFormat("P@%zu", top).c_str());
  }
  out += "\n";
  for (size_t r = 0; r < row_names.size(); ++r) {
    out += StrFormat("%-*s", static_cast<int>(name_width),
                     row_names[r].c_str());
    for (size_t t = 0; t < kDefaultTops.size(); ++t) {
      std::string cell = StrFormat("%.3f%s", means[r][t],
                                   significant[r][t] ? "+" : " ");
      out += StrFormat("%9s", cell.c_str());
    }
    out += "\n";
  }
  return out;
}

std::array<double, kDefaultTops.size()> PercentImprovementOverBest(
    const PrecisionTable& table, const std::vector<size_t>& baseline_rows,
    size_t treatment_row) {
  SQE_CHECK(!baseline_rows.empty());
  SQE_CHECK(treatment_row < table.means.size());
  std::array<double, kDefaultTops.size()> out{};
  for (size_t t = 0; t < kDefaultTops.size(); ++t) {
    double best = 0.0;
    for (size_t b : baseline_rows) {
      SQE_CHECK(b < table.means.size());
      best = std::max(best, table.means[b][t]);
    }
    out[t] = best > 0.0
                 ? 100.0 * (table.means[treatment_row][t] - best) / best
                 : 0.0;
  }
  return out;
}

}  // namespace sqe::eval
