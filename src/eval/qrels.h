// Qrels: relevance judgements for a query set, TrecEval-style.
#ifndef SQE_EVAL_QRELS_H_
#define SQE_EVAL_QRELS_H_

#include <cstddef>
#include <unordered_set>
#include <vector>

#include "index/types.h"

namespace sqe::eval {

/// Binary relevance judgements indexed by dense query index.
class Qrels {
 public:
  explicit Qrels(size_t num_queries = 0) : relevant_(num_queries) {}

  void Resize(size_t num_queries) { relevant_.resize(num_queries); }
  size_t NumQueries() const { return relevant_.size(); }

  void AddRelevant(size_t query_index, index::DocId doc) {
    relevant_.at(query_index).insert(doc);
  }
  bool IsRelevant(size_t query_index, index::DocId doc) const {
    return relevant_.at(query_index).contains(doc);
  }
  size_t NumRelevant(size_t query_index) const {
    return relevant_.at(query_index).size();
  }
  const std::unordered_set<index::DocId>& RelevantDocs(
      size_t query_index) const {
    return relevant_.at(query_index);
  }

  /// Mean number of relevant documents per query (the paper quotes 68.8 /
  /// 31.32 / 50.6 for its three datasets).
  double AverageRelevantPerQuery() const;
  /// Queries with no relevant documents at all (14 in CHiC 2012, 1 in 2013).
  size_t NumQueriesWithoutRelevant() const;

 private:
  std::vector<std::unordered_set<index::DocId>> relevant_;
};

}  // namespace sqe::eval

#endif  // SQE_EVAL_QRELS_H_
