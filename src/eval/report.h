// Report: paper-style precision tables with significance daggers.
//
// Used by every bench binary to print rows in the exact shape of Tables
// 1–3: one row per system, one column per precision cutoff, with a dagger
// wherever the paired t-test against the designated baselines is
// significant at p < 0.05.
#ifndef SQE_EVAL_REPORT_H_
#define SQE_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "eval/metrics.h"
#include "eval/qrels.h"
#include "retrieval/result.h"

namespace sqe::eval {

/// One system's runs across the query set.
struct NamedRun {
  std::string name;
  std::vector<retrieval::ResultList> runs;
  /// Rows marked as baselines are what treatment rows are tested against
  /// (the paper tests SQE against all three QL baselines).
  bool is_baseline = false;
  /// Skip the significance test for this row (e.g., the upper bound).
  bool skip_significance = false;
};

/// A fully evaluated table.
struct PrecisionTable {
  std::vector<std::string> row_names;
  /// means[row][top_index], aligned with kDefaultTops.
  std::vector<std::array<double, kDefaultTops.size()>> means;
  /// significant[row][top_index]: true if the row improved over *every*
  /// baseline row with p < 0.05 (the paper's dagger condition).
  std::vector<std::array<bool, kDefaultTops.size()>> significant;

  /// Renders an aligned text table; daggers appear as '+'-suffixed cells.
  std::string ToString(const std::string& title) const;
};

/// Evaluates all runs against the qrels and tests treatments vs baselines.
PrecisionTable EvaluateTable(const std::vector<NamedRun>& systems,
                             const Qrels& qrels);

/// Percentage improvement of `treatment` over the best baseline value at
/// each cutoff (the quantity plotted in Figures 5 and 6).
std::array<double, kDefaultTops.size()> PercentImprovementOverBest(
    const PrecisionTable& table, const std::vector<size_t>& baseline_rows,
    size_t treatment_row);

}  // namespace sqe::eval

#endif  // SQE_EVAL_REPORT_H_
