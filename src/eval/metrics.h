// Retrieval metrics: precision@k (the paper's default TrecEval tops),
// average precision, and per-query matrices used by significance testing.
#ifndef SQE_EVAL_METRICS_H_
#define SQE_EVAL_METRICS_H_

#include <array>
#include <cstddef>
#include <vector>

#include "eval/qrels.h"
#include "retrieval/result.h"

namespace sqe::eval {

/// The precision cutoffs reported throughout the paper (TrecEval defaults).
inline constexpr std::array<size_t, 9> kDefaultTops = {5,   10,  15,  20, 30,
                                                       100, 200, 500, 1000};

/// Fraction of the top-k results that are relevant. Lists shorter than k
/// are padded with non-relevant (TrecEval semantics: denominator is k).
double PrecisionAtK(const retrieval::ResultList& results,
                    const std::unordered_set<index::DocId>& relevant,
                    size_t k);

/// Average precision of a ranked list (for MAP).
double AveragePrecision(const retrieval::ResultList& results,
                        const std::unordered_set<index::DocId>& relevant);

/// Per-query P@k over a batch of runs; runs.size() must equal
/// qrels.NumQueries().
std::vector<double> PerQueryPrecision(
    const std::vector<retrieval::ResultList>& runs, const Qrels& qrels,
    size_t k);

/// Mean of a vector (0 for empty).
double Mean(const std::vector<double>& values);

/// Mean P@k across queries for each cutoff in kDefaultTops.
std::array<double, kDefaultTops.size()> MeanPrecisionAtTops(
    const std::vector<retrieval::ResultList>& runs, const Qrels& qrels);

/// Mean average precision across queries.
double MeanAveragePrecision(const std::vector<retrieval::ResultList>& runs,
                            const Qrels& qrels);

}  // namespace sqe::eval

#endif  // SQE_EVAL_METRICS_H_
