// Paired Student's t-test — the significance test behind the daggers in
// Tables 1 and 2 (p < 0.05, paired over per-query precision values).
//
// The two-sided p-value is computed exactly via the regularized incomplete
// beta function: p = I_{ν/(ν+t²)}(ν/2, 1/2).
#ifndef SQE_EVAL_TTEST_H_
#define SQE_EVAL_TTEST_H_

#include <cstddef>
#include <vector>

namespace sqe::eval {

struct TTestResult {
  double t_statistic = 0.0;
  double p_value = 1.0;
  size_t degrees_of_freedom = 0;
  double mean_difference = 0.0;

  bool Significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// Paired t-test of `treatment` vs `baseline` (same length, same query
/// order). Returns p=1 when fewer than 2 pairs or zero variance with zero
/// mean difference; a non-zero mean difference with zero variance yields
/// p=0 (the distribution degenerates to a point off the null).
TTestResult PairedTTest(const std::vector<double>& treatment,
                        const std::vector<double>& baseline);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Numerical Recipes' betai/betacf). Exposed for tests.
double RegularizedIncompleteBeta(double a, double b, double x);

/// Student-t two-sided p-value for |t| with ν degrees of freedom.
double StudentTTwoSidedPValue(double t, size_t df);

}  // namespace sqe::eval

#endif  // SQE_EVAL_TTEST_H_
