// Structure analysis of query graphs (Section 2.1 / Figure 2).
//
// Given a query graph (typically a ground-truth optimal graph), this module
// enumerates the cycles of length 3, 4 and 5 through the query nodes and
// aggregates, per length: the cycle count, the ratio of category nodes and
// the extra-edge density — plus, for the contribution study, which
// expansion articles sit on at least one cycle of each length.
#ifndef SQE_ANALYSIS_STRUCTURE_ANALYZER_H_
#define SQE_ANALYSIS_STRUCTURE_ANALYZER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/cycle_enumerator.h"
#include "kb/knowledge_base.h"
#include "sqe/query_graph.h"

namespace sqe::analysis {

/// Cycle lengths the paper analyzes.
inline constexpr std::array<size_t, 3> kCycleLengths = {3, 4, 5};

struct PerLengthStats {
  size_t cycle_length = 0;
  uint64_t num_cycles = 0;
  double avg_category_ratio = 0.0;
  double avg_extra_edge_density = 0.0;
  /// Expansion articles on >= 1 cycle of this length.
  std::vector<kb::ArticleId> articles_on_cycles;
};

struct StructureReport {
  std::array<PerLengthStats, kCycleLengths.size()> per_length;
  std::string ToString() const;
};

/// Analyzes one query graph against the KB.
StructureReport AnalyzeQueryGraph(const kb::KnowledgeBase& kb,
                                  const expansion::QueryGraph& graph);

/// Aggregates reports over many query graphs (mean of per-graph ratios,
/// cycle-count-weighted for densities; unions are not taken — the per-graph
/// article sets are dropped).
StructureReport AggregateReports(const std::vector<StructureReport>& reports);

}  // namespace sqe::analysis

#endif  // SQE_ANALYSIS_STRUCTURE_ANALYZER_H_
