// Cycle enumeration over the induced KB subgraph of a query graph —
// the machinery behind the paper's Section 2.1 structural analysis.
//
// The paper treats the KB as a multigraph: consecutive cycle nodes may be
// joined by up to two edges (both hyperlink directions, or both
// subcategory directions). Cycles are node-simple closed walks through a
// designated start node; each undirected cycle is reported once.
#ifndef SQE_ANALYSIS_CYCLE_ENUMERATOR_H_
#define SQE_ANALYSIS_CYCLE_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace sqe::analysis {

/// The subgraph of the KB induced on an explicit node set, viewed as an
/// undirected multigraph.
class InducedSubgraph {
 public:
  /// Builds adjacency among `nodes` by probing the KB's edge-existence
  /// checks for every pair (node sets here are small: a query graph).
  InducedSubgraph(const kb::KnowledgeBase& kb,
                  std::vector<kb::NodeRef> nodes);

  size_t NumNodes() const { return nodes_.size(); }
  const kb::NodeRef& node(size_t i) const { return nodes_[i]; }

  /// Number of parallel edges between local node indices (0, 1 or 2).
  uint8_t EdgeMultiplicity(size_t i, size_t j) const {
    return multiplicity_[i * nodes_.size() + j];
  }
  /// Local indices adjacent to i (multiplicity >= 1).
  const std::vector<uint32_t>& Neighbors(size_t i) const {
    return neighbors_[i];
  }
  /// Local index of a node, or SIZE_MAX.
  size_t IndexOf(const kb::NodeRef& node) const;

 private:
  std::vector<kb::NodeRef> nodes_;
  std::vector<uint8_t> multiplicity_;  // dense NxN
  std::vector<std::vector<uint32_t>> neighbors_;
};

/// A cycle: node sequence starting (and implicitly ending) at the start
/// node. nodes.size() is the cycle length.
struct Cycle {
  std::vector<kb::NodeRef> nodes;
  /// Total parallel edges along consecutive pairs (>= length).
  uint32_t total_edges = 0;

  size_t Length() const { return nodes.size(); }
  size_t NumCategoryNodes() const;
  /// (total_edges − L) / L ∈ [0, 1]: the paper's "density of extra edges"
  /// (each consecutive pair can carry at most one extra parallel edge).
  double ExtraEdgeDensity() const;
};

/// All node-simple cycles of exactly `length` passing through `start`
/// (a local node index). Each undirected cycle is returned once.
std::vector<Cycle> EnumerateCyclesThrough(const InducedSubgraph& graph,
                                          size_t start, size_t length);

}  // namespace sqe::analysis

#endif  // SQE_ANALYSIS_CYCLE_ENUMERATOR_H_
