#include "analysis/cycle_enumerator.h"

#include "common/macros.h"

namespace sqe::analysis {

namespace {
uint8_t MultiplicityBetween(const kb::KnowledgeBase& kb,
                            const kb::NodeRef& a, const kb::NodeRef& b) {
  uint8_t m = 0;
  if (a.is_article() && b.is_article()) {
    if (kb.HasLink(a.id, b.id)) ++m;
    if (kb.HasLink(b.id, a.id)) ++m;
  } else if (a.is_article() && b.is_category()) {
    if (kb.HasMembership(a.id, b.id)) ++m;
  } else if (a.is_category() && b.is_article()) {
    if (kb.HasMembership(b.id, a.id)) ++m;
  } else {
    if (kb.HasCategoryLink(a.id, b.id)) ++m;
    if (kb.HasCategoryLink(b.id, a.id)) ++m;
  }
  return m;
}
}  // namespace

InducedSubgraph::InducedSubgraph(const kb::KnowledgeBase& kb,
                                 std::vector<kb::NodeRef> nodes)
    : nodes_(std::move(nodes)) {
  const size_t n = nodes_.size();
  multiplicity_.assign(n * n, 0);
  neighbors_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      uint8_t m = MultiplicityBetween(kb, nodes_[i], nodes_[j]);
      if (m > 0) {
        multiplicity_[i * n + j] = m;
        multiplicity_[j * n + i] = m;
        neighbors_[i].push_back(static_cast<uint32_t>(j));
        neighbors_[j].push_back(static_cast<uint32_t>(i));
      }
    }
  }
}

size_t InducedSubgraph::IndexOf(const kb::NodeRef& node) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == node) return i;
  }
  return static_cast<size_t>(-1);
}

size_t Cycle::NumCategoryNodes() const {
  size_t n = 0;
  for (const kb::NodeRef& node : nodes) {
    if (node.is_category()) ++n;
  }
  return n;
}

double Cycle::ExtraEdgeDensity() const {
  if (nodes.empty()) return 0.0;
  const double length = static_cast<double>(nodes.size());
  return (static_cast<double>(total_edges) - length) / length;
}

namespace {
// DFS over node-simple paths from `start` of exactly `length` hops
// returning to start. Direction duplicates are suppressed by requiring the
// second node's index to be smaller than the last node's index.
void Dfs(const InducedSubgraph& graph, size_t start, size_t length,
         std::vector<uint32_t>& path, std::vector<bool>& on_path,
         std::vector<Cycle>& out) {
  const size_t current = path.back();
  if (path.size() == length) {
    if (graph.EdgeMultiplicity(current, start) > 0 && path[1] < path.back()) {
      Cycle cycle;
      cycle.nodes.reserve(length);
      uint32_t edges = 0;
      for (size_t i = 0; i < path.size(); ++i) {
        cycle.nodes.push_back(graph.node(path[i]));
        edges += graph.EdgeMultiplicity(path[i],
                                        path[(i + 1) % path.size()]);
      }
      cycle.total_edges = edges;
      out.push_back(std::move(cycle));
    }
    return;
  }
  for (uint32_t next : graph.Neighbors(current)) {
    if (on_path[next]) continue;
    path.push_back(next);
    on_path[next] = true;
    Dfs(graph, start, length, path, on_path, out);
    on_path[next] = false;
    path.pop_back();
  }
}
}  // namespace

std::vector<Cycle> EnumerateCyclesThrough(const InducedSubgraph& graph,
                                          size_t start, size_t length) {
  SQE_CHECK(length >= 3);
  SQE_CHECK(start < graph.NumNodes());
  std::vector<Cycle> out;
  std::vector<uint32_t> path = {static_cast<uint32_t>(start)};
  std::vector<bool> on_path(graph.NumNodes(), false);
  on_path[start] = true;
  Dfs(graph, start, length, path, on_path, out);
  return out;
}

}  // namespace sqe::analysis
