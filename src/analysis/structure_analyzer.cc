#include "analysis/structure_analyzer.h"

#include <algorithm>
#include <unordered_set>

#include "common/string_util.h"

namespace sqe::analysis {

StructureReport AnalyzeQueryGraph(const kb::KnowledgeBase& kb,
                                  const expansion::QueryGraph& graph) {
  // Node set: query nodes + expansion articles + involved categories.
  std::vector<kb::NodeRef> nodes;
  for (kb::ArticleId q : graph.query_nodes) {
    nodes.push_back(kb::NodeRef::Article(q));
  }
  for (const expansion::ExpansionNode& e : graph.expansion_nodes) {
    nodes.push_back(kb::NodeRef::Article(e.article));
  }
  for (kb::CategoryId c : graph.category_nodes) {
    nodes.push_back(kb::NodeRef::Category(c));
  }
  InducedSubgraph induced(kb, std::move(nodes));

  StructureReport report;
  for (size_t li = 0; li < kCycleLengths.size(); ++li) {
    PerLengthStats& stats = report.per_length[li];
    stats.cycle_length = kCycleLengths[li];

    double ratio_sum = 0.0;
    double density_sum = 0.0;
    std::unordered_set<kb::ArticleId> on_cycles;

    for (size_t qi = 0; qi < graph.query_nodes.size(); ++qi) {
      // Query nodes were added first, so local index == qi.
      std::vector<Cycle> cycles =
          EnumerateCyclesThrough(induced, qi, kCycleLengths[li]);
      for (const Cycle& cycle : cycles) {
        ratio_sum += static_cast<double>(cycle.NumCategoryNodes()) /
                     static_cast<double>(cycle.Length());
        density_sum += cycle.ExtraEdgeDensity();
        for (const kb::NodeRef& node : cycle.nodes) {
          if (node.is_article() && node.id != graph.query_nodes[qi]) {
            on_cycles.insert(node.id);
          }
        }
      }
      stats.num_cycles += cycles.size();
    }
    if (stats.num_cycles > 0) {
      stats.avg_category_ratio =
          ratio_sum / static_cast<double>(stats.num_cycles);
      stats.avg_extra_edge_density =
          density_sum / static_cast<double>(stats.num_cycles);
    }
    stats.articles_on_cycles.assign(on_cycles.begin(), on_cycles.end());
    std::sort(stats.articles_on_cycles.begin(),
              stats.articles_on_cycles.end());
  }
  return report;
}

StructureReport AggregateReports(
    const std::vector<StructureReport>& reports) {
  StructureReport out;
  for (size_t li = 0; li < kCycleLengths.size(); ++li) {
    PerLengthStats& agg = out.per_length[li];
    agg.cycle_length = kCycleLengths[li];
    double ratio_sum = 0.0;
    double density_sum = 0.0;
    for (const StructureReport& r : reports) {
      const PerLengthStats& s = r.per_length[li];
      agg.num_cycles += s.num_cycles;
      ratio_sum += s.avg_category_ratio * static_cast<double>(s.num_cycles);
      density_sum +=
          s.avg_extra_edge_density * static_cast<double>(s.num_cycles);
    }
    if (agg.num_cycles > 0) {
      agg.avg_category_ratio =
          ratio_sum / static_cast<double>(agg.num_cycles);
      agg.avg_extra_edge_density =
          density_sum / static_cast<double>(agg.num_cycles);
    }
  }
  return out;
}

std::string StructureReport::ToString() const {
  std::string out = "cycle-length  cycles     cat-ratio  extra-edge-density\n";
  for (const PerLengthStats& s : per_length) {
    out += StrFormat("%-13zu %-10llu %-10.3f %.3f\n", s.cycle_length,
                     static_cast<unsigned long long>(s.num_cycles),
                     s.avg_category_ratio, s.avg_extra_edge_density);
  }
  return out;
}

}  // namespace sqe::analysis
