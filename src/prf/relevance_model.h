// Pseudo-relevance feedback via Lavrenko & Croft's relevance model [8],
// as adapted in Section 4.3 of the paper.
//
// The original query retrieves a ranked list; P(w|Q) is estimated as
//   P(w|Q) ∝ Σ_D P(w|D) · P(Q|D) · P(D)
// over the top feedback documents (uniform P(D)); the top-n terms by
// P(w|Q) become the expansion features of the reformulated query. With
// `original_weight` = 0 the reformulated query is the pure relevance model
// — the configuration whose collapse on poor initial rankings Table 3
// demonstrates. SQE_C/PRF feeds an SQE-expanded query in as `original`.
#ifndef SQE_PRF_RELEVANCE_MODEL_H_
#define SQE_PRF_RELEVANCE_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/macros.h"
#include "index/inverted_index.h"
#include "retrieval/query.h"
#include "retrieval/result.h"
#include "retrieval/retriever.h"

namespace sqe::prf {

struct PrfOptions {
  /// Number of top-ranked feedback documents.
  size_t feedback_docs = 10;
  /// Number of expansion terms kept ("top n concepts").
  size_t expansion_terms = 20;
  /// λ weight on the original query in the reformulation; 0 reproduces the
  /// paper's pure relevance-model adaptation.
  double original_weight = 0.0;
};

/// A term with its relevance-model probability.
struct WeightedTerm {
  std::string term;
  double weight = 0.0;
};

class PrfExpander {
 public:
  /// `retriever` must outlive the expander.
  explicit PrfExpander(const retrieval::Retriever* retriever,
                       PrfOptions options = {})
      : retriever_(retriever), options_(options) {
    SQE_CHECK(retriever != nullptr);
  }

  /// Estimates the relevance model P(w|Q) from the top feedback documents
  /// of `initial_results` and returns the top-n terms.
  std::vector<WeightedTerm> EstimateRelevanceModel(
      const retrieval::Query& original,
      const retrieval::ResultList& initial_results) const;

  /// Builds the reformulated query: RM terms (weighted by P(w|Q)), plus the
  /// original clauses scaled by `original_weight` when non-zero.
  retrieval::Query Reformulate(const retrieval::Query& original,
                               const std::vector<WeightedTerm>& model) const;

  /// Convenience: retrieve → estimate → reformulate → retrieve.
  retrieval::ResultList ExpandAndRetrieve(const retrieval::Query& original,
                                          size_t k) const;

  const PrfOptions& options() const { return options_; }

 private:
  const retrieval::Retriever* retriever_;
  PrfOptions options_;
};

}  // namespace sqe::prf

#endif  // SQE_PRF_RELEVANCE_MODEL_H_
