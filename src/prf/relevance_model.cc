#include "prf/relevance_model.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace sqe::prf {

std::vector<WeightedTerm> PrfExpander::EstimateRelevanceModel(
    const retrieval::Query& original,
    const retrieval::ResultList& initial_results) const {
  const index::InvertedIndex& idx = retriever_->index();
  const double mu = retriever_->options().mu;

  const size_t num_feedback =
      std::min(options_.feedback_docs, initial_results.size());
  if (num_feedback == 0) return {};

  // P(Q|D) from the retrieval log-likelihoods, shifted by the max for
  // numerical stability, then normalized over the feedback set.
  double max_score = initial_results[0].score;
  std::vector<double> doc_prob(num_feedback);
  double prob_total = 0.0;
  for (size_t i = 0; i < num_feedback; ++i) {
    doc_prob[i] = std::exp(initial_results[i].score - max_score);
    prob_total += doc_prob[i];
  }
  if (prob_total <= 0.0) return {};
  for (double& p : doc_prob) p /= prob_total;

  // Accumulate P(w|Q) = Σ_D P(w|D)·P(Q|D) with Dirichlet-smoothed P(w|D)
  // restricted to terms occurring in the feedback documents (terms outside
  // them receive only background mass, identical for every w, so the top-n
  // selection is unaffected).
  std::unordered_map<text::TermId, double> weight;
  (void)original;
  for (size_t i = 0; i < num_feedback; ++i) {
    index::DocId d = initial_results[i].doc;
    std::span<const text::TermId> terms = idx.DocTerms(d);
    const double doc_len = static_cast<double>(idx.DocLength(d));
    std::unordered_map<text::TermId, uint32_t> tf;
    for (text::TermId t : terms) tf[t]++;
    for (const auto& [t, count] : tf) {
      double p_w_d = (static_cast<double>(count) +
                      mu * idx.CollectionProbability(t)) /
                     (doc_len + mu);
      weight[t] += p_w_d * doc_prob[i];
    }
  }

  std::vector<std::pair<text::TermId, double>> ranked(weight.begin(),
                                                      weight.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  std::vector<WeightedTerm> model;
  const size_t n = std::min(options_.expansion_terms, ranked.size());
  model.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    model.push_back(
        WeightedTerm{std::string(idx.vocabulary().TermOf(ranked[i].first)),
                     ranked[i].second});
  }
  return model;
}

retrieval::Query PrfExpander::Reformulate(
    const retrieval::Query& original,
    const std::vector<WeightedTerm>& model) const {
  retrieval::Query out;
  if (options_.original_weight > 0.0) {
    for (const retrieval::Clause& c : original.clauses) {
      retrieval::Clause scaled = c;
      scaled.weight = c.weight * options_.original_weight;
      out.clauses.push_back(std::move(scaled));
    }
  }
  retrieval::Clause rm_clause;
  rm_clause.weight = 1.0 - options_.original_weight;
  for (const WeightedTerm& wt : model) {
    rm_clause.atoms.push_back(retrieval::Atom::Term(wt.term, wt.weight));
  }
  if (!rm_clause.atoms.empty() && rm_clause.weight > 0.0) {
    out.clauses.push_back(std::move(rm_clause));
  }
  // Degenerate cases (no model terms, or λ=1) leave only the original.
  if (out.clauses.empty()) return original;
  return out;
}

retrieval::ResultList PrfExpander::ExpandAndRetrieve(
    const retrieval::Query& original, size_t k) const {
  retrieval::ResultList initial =
      retriever_->Retrieve(original, options_.feedback_docs);
  std::vector<WeightedTerm> model =
      EstimateRelevanceModel(original, initial);
  retrieval::Query reformulated = Reformulate(original, model);
  return retriever_->Retrieve(reformulated, k);
}

}  // namespace sqe::prf
