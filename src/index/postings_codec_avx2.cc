// AVX2 vertical unpack kernel, isolated in its own translation unit so it
// can be compiled with the `avx2` target attribute while the rest of the
// build stays at the baseline ISA. Only ever called after runtime dispatch
// (common/cpu_dispatch.h) confirms the host supports AVX2.
#include "index/postings_codec.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

namespace sqe::index::codec::internal {

__attribute__((target("avx2"))) void UnpackVerticalAvx2(
    const uint8_t* payload, uint32_t bits, uint32_t* out) {
  const uint32_t m = bits >= 32 ? 0xFFFFFFFFu : (1u << bits) - 1u;
  const __m256i mask = _mm256_set1_epi32(static_cast<int>(m));
  // Two rows per iteration: the low 128-bit half decodes row r, the high
  // half row r + 1, with per-half shift counts via srlv/sllv. The carry
  // trick matches the SSE2 kernel: when a value does not span two storage
  // words the "high" load re-reads the same word and its contribution is
  // either shifted to zero (count 32) or masked away.
  for (uint32_t r = 0; r < 32; r += 2) {
    const uint32_t o0 = r * bits, o1 = o0 + bits;
    const uint32_t w0 = o0 >> 5, s0 = o0 & 31;
    const uint32_t w1 = o1 >> 5, s1 = o1 & 31;
    const uint32_t w0c = (s0 + bits > 32) ? w0 + 1 : w0;
    const uint32_t w1c = (s1 + bits > 32) ? w1 + 1 : w1;
    const __m256i lo = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(payload + size_t{w1} * 16)),
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(payload + size_t{w0} * 16)));
    const __m256i hi = _mm256_set_m128i(
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(payload + size_t{w1c} * 16)),
        _mm_loadu_si128(
            reinterpret_cast<const __m128i*>(payload + size_t{w0c} * 16)));
    const __m256i srl = _mm256_setr_epi32(
        static_cast<int>(s0), static_cast<int>(s0), static_cast<int>(s0),
        static_cast<int>(s0), static_cast<int>(s1), static_cast<int>(s1),
        static_cast<int>(s1), static_cast<int>(s1));
    const __m256i sll = _mm256_setr_epi32(
        static_cast<int>(32 - s0), static_cast<int>(32 - s0),
        static_cast<int>(32 - s0), static_cast<int>(32 - s0),
        static_cast<int>(32 - s1), static_cast<int>(32 - s1),
        static_cast<int>(32 - s1), static_cast<int>(32 - s1));
    const __m256i v = _mm256_or_si256(_mm256_srlv_epi32(lo, srl),
                                      _mm256_sllv_epi32(hi, sll));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + size_t{r} * 4),
                        _mm256_and_si256(v, mask));
  }
}

}  // namespace sqe::index::codec::internal

#endif  // x86
