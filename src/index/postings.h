// PostingList: the per-term docs/frequencies/positions structure.
//
// Doc-sorted parallel arrays. Positions are needed by the ordered-window
// (n-gram phrase) operator used for article-title expansion features.
//
// Two storage modes share the class:
//
//   raw    — docs/freqs/pos_offsets as plain arrays. Builders, legacy
//            (v1-v2) and v3 snapshot loads. Arrays either own their storage
//            or view slices of an aligned snapshot image (zero-copy).
//   packed — the v4 block bit-packed form (index/postings_codec.h): the
//            per-term byte blob of compressed 128-entry blocks plus two
//            tiny per-block tables (byte offsets and position bases). Docs
//            and freqs are decoded on access into 128-entry scratch
//            buffers; positions stay raw, but the 8-bytes-per-posting
//            pos_offsets array is gone — a posting's position slice is
//            reconstructed from its block's position base plus an in-block
//            frequency prefix sum.
//
// The block-max / block-last tables are identical in both modes and always
// raw: WAND skip decisions read only them, so a pruned scorer can jump
// whole compressed blocks without ever unpacking their payload bytes.
#ifndef SQE_INDEX_POSTINGS_H_
#define SQE_INDEX_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/vec_or_view.h"
#include "index/types.h"

namespace sqe::index {

/// Immutable posting list for one term. Entries sorted by doc id.
class PostingList {
 public:
  PostingList() = default;

  /// Postings per block-max table entry — and, in packed mode, per
  /// compressed block (codec::kBlockLen mirrors this; equality is
  /// static-asserted in postings.cc). Each block of kBlockSize consecutive
  /// postings records the maximum within-document frequency it contains,
  /// so a pruned scorer (Block-Max WAND, see retrieval/wand_retriever.h)
  /// can upper-bound a term's contribution over a doc-id span and skip
  /// whole blocks without decoding them. 128 keeps the table at <1% of the
  /// posting arrays while making a skipped block worth ~128 saved log()
  /// evaluations.
  static constexpr size_t kBlockSize = 128;

  /// True when this list stores bit-packed blocks instead of raw arrays.
  bool packed() const { return !packed_.empty(); }

  size_t NumDocs() const {
    return packed() ? packed_num_docs_ : docs_.size();
  }
  /// Total occurrences across the collection (collection term frequency).
  uint64_t CollectionFrequency() const { return total_occurrences_; }

  /// Largest within-document frequency across the whole list (0 when
  /// empty). Upper-bounds any posting's tf, so it caps the term's score
  /// contribution for WAND pivot selection.
  uint32_t MaxFrequency() const { return max_frequency_; }
  /// ceil(NumDocs / kBlockSize) entries; entry b is the maximum frequency
  /// among postings [b*kBlockSize, min((b+1)*kBlockSize, NumDocs())).
  std::span<const uint32_t> BlockMaxFrequencies() const {
    return block_max_frequencies_.span();
  }
  /// Last doc id covered by each block, as one contiguous array: entry b is
  /// doc(min((b+1)*kBlockSize, NumDocs()) - 1). Derived data, gathered at
  /// build time (and persisted in v3+ snapshots, where Validate proves
  /// them equal to a recomputation) so shallow advances are a binary
  /// search over a dense array. In packed mode this table doubles as the
  /// codec's gap anchor: block b decodes relative to entry b-1.
  std::span<const DocId> BlockLastDocs() const {
    return block_last_docs_.span();
  }
  size_t NumBlocks() const { return block_max_frequencies_.size(); }

  /// Raw-mode accessors. The retriever scores straight off these views
  /// instead of copying the list per query; they remain valid as long as
  /// the PostingList does. Empty in packed mode — callers branch on
  /// packed() and use the block decode interface below instead.
  DocId doc(size_t i) const {
    SQE_DCHECK(!packed());
    SQE_DCHECK(i < docs_.size());
    return docs_[i];
  }
  std::span<const DocId> docs() const { return docs_.span(); }
  std::span<const uint32_t> frequencies() const { return freqs_.span(); }
  uint32_t frequency(size_t i) const {
    SQE_DCHECK(!packed());
    SQE_DCHECK(i < freqs_.size());
    return freqs_[i];
  }
  /// Token positions of the i-th entry, ascending. Raw mode only (packed
  /// callers go through Cursor::Positions, which amortizes the in-block
  /// frequency prefix sum).
  std::span<const uint32_t> positions(size_t i) const {
    SQE_DCHECK(!packed());
    SQE_DCHECK(i + 1 < pos_offsets_.size());
    uint64_t begin = pos_offsets_[i];
    uint64_t end = pos_offsets_[i + 1];
    return std::span<const uint32_t>(positions_.data() + begin,
                                     positions_.data() + end);
  }

  // ---- packed-mode block interface ----------------------------------------

  /// Number of postings in block b.
  size_t BlockLength(size_t b) const {
    SQE_DCHECK(b < NumBlocks());
    const size_t begin = b * kBlockSize;
    const size_t n = NumDocs();
    return n - begin < kBlockSize ? n - begin : kBlockSize;
  }
  /// The encoded bytes of block b (header + payloads). Packed mode only.
  /// The data() pointer is what __builtin_prefetch wants.
  std::span<const uint8_t> PackedBlock(size_t b) const {
    SQE_DCHECK(packed());
    SQE_DCHECK(b < NumBlocks());
    const size_t begin = packed_block_offsets_[b];
    const size_t end = b + 1 < packed_block_offsets_.size()
                           ? packed_block_offsets_[b + 1]
                           : packed_.size();
    return packed_.span().subspan(begin, end - begin);
  }
  /// The whole packed blob (stats / serializer pass-through).
  std::span<const uint8_t> packed_bytes() const { return packed_.span(); }
  /// Per-block byte offsets into packed_bytes() (stats / serializer).
  std::span<const uint32_t> PackedBlockOffsets() const {
    return packed_block_offsets_.span();
  }
  /// Offset into the positions array of block b's first posting.
  std::span<const uint64_t> BlockPositionBases() const {
    return block_pos_base_.span();
  }
  /// The term's full positions array (shared by raw and packed modes).
  std::span<const uint32_t> all_positions() const {
    return positions_.span();
  }
  /// The gap anchor for decoding block b: 0 for the first block, else one
  /// past the previous block's last doc id.
  uint32_t BlockAnchor(size_t b) const {
    SQE_DCHECK(b < NumBlocks());
    return b == 0 ? 0 : block_last_docs_[b - 1] + 1;
  }
  /// Decodes block b into docs[0..BlockLength(b)) / freqs[...]. Packed
  /// mode only; the blocks were checked-decoded once by Validate at load,
  /// so this is the unchecked hot path.
  void DecodeBlockInto(size_t b, uint32_t* docs, uint32_t* freqs) const;
  /// The halves of DecodeBlockInto, for callers (the WAND cursors) that
  /// navigate by doc id and read frequencies only on scored blocks.
  void DecodeBlockDocsInto(size_t b, uint32_t* docs) const;
  void DecodeBlockFreqsInto(size_t b, uint32_t* freqs) const;
  /// Frequency of the posting at offset `off` within block b, extracted
  /// from the packed payload without decoding the block (codec::
  /// ExtractFreqAt). Packed mode only.
  uint32_t BlockFreqAt(size_t b, size_t off) const;
  /// First doc id of block b, extracted without decoding the block
  /// (codec::ExtractFirstDoc). Packed mode only.
  DocId BlockFirstDoc(size_t b) const;
  /// First posting index whose doc id is >= target (NumDocs() when none).
  /// Works in both modes; in packed mode decodes at most one block.
  size_t LowerBound(DocId target) const;
  /// Decodes the entire list into raw vectors (both modes; raw copies).
  /// Serializing a packed index back to a v1-v3 snapshot goes through
  /// this, as does the packed branch of the index-level validator.
  void Materialize(std::vector<DocId>* docs,
                   std::vector<uint32_t>* freqs) const;

  /// Index of `doc` in this list, or npos. O(log n); in packed mode
  /// decodes at most one block.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t Find(DocId doc) const;

  /// Deep structural validation: parallel arrays the same length, doc ids
  /// strictly increasing and < num_docs, frequencies positive and matching
  /// the position-offset deltas, positions strictly ascending per document,
  /// the collection frequency equal to the stored positions, and the
  /// block-max / block-boundary tables equal to a recomputation. In packed
  /// mode every block additionally round-trips through the checked decoder
  /// (width/length/overflow validation), so the unchecked hot-path decode
  /// never sees unvetted bytes. Returns Status::Corruption pinpointing the
  /// first violating entry.
  Status Validate(size_t num_docs) const;

  /// Cursor for doc-at-a-time traversal. Block-aware: over a packed list
  /// it decodes one block at a time into its own scratch buffers and
  /// prefetches the next block's packed bytes at each boundary crossing;
  /// over a raw list it reads the arrays in place, scratch untouched.
  class Cursor {
   public:
    explicit Cursor(const PostingList* list)
        : list_(list), packed_(list->packed()) {
      if (packed_ && list_->NumDocs() > 0) LoadBlock(0);
    }

    bool AtEnd() const { return pos_ >= list_->NumDocs(); }
    DocId Doc() const {
      SQE_DCHECK(!AtEnd());
      return packed_ ? dbuf_[pos_ - block_begin_] : list_->doc(pos_);
    }
    uint32_t Frequency() const {
      SQE_DCHECK(!AtEnd());
      if (!packed_) return list_->frequency(pos_);
      EnsureFreqs();
      return fbuf_[pos_ - block_begin_];
    }
    std::span<const uint32_t> Positions() const;
    void Next() {
      ++pos_;
      if (packed_ && pos_ - block_begin_ >= block_len_) AdvanceBlock();
    }
    /// Advances to the first entry with doc >= target. Never moves
    /// backward. Raw mode gallops from the current position; packed mode
    /// searches the block-last table *from the current block* (not from
    /// block 0 — see the backward-then-forward regression test) and
    /// decodes at most the landing block.
    void SeekTo(DocId target);

   private:
    void LoadBlock(size_t b);
    void AdvanceBlock();
    // Decodes the current block's frequency half into fbuf_ on first use;
    // LoadBlock decodes only doc ids, so a cursor that is navigated but
    // never scored never unpacks a freq payload.
    void EnsureFreqs() const;

    const PostingList* list_;
    bool packed_;
    size_t pos_ = 0;
    // Packed-mode state: the decoded window [block_begin_, block_begin_ +
    // block_len_) of posting indexes, from block cur_block_. fbuf_ holds
    // block freqs_block_ (lazily; kNpos = none decoded yet).
    size_t cur_block_ = 0;
    size_t block_begin_ = 0;
    size_t block_len_ = 0;
    mutable size_t freqs_block_ = kNpos;
    uint32_t dbuf_[kBlockSize];
    mutable uint32_t fbuf_[kBlockSize];
  };
  Cursor MakeCursor() const { return Cursor(this); }

 private:
  friend class PostingListBuilder;
  friend class InvertedIndex;  // snapshot load adopts stored tables/views

  /// Recomputes max_frequency_ and block_max_frequencies_ from freqs_.
  /// Called by the builder; the snapshot loader instead adopts the stored
  /// tables and lets Validate() prove them equal to this recomputation.
  void ComputeBlockMax();
  /// Recomputes block_last_docs_ from docs_. Called by the builder and the
  /// legacy snapshot loader (v3+ images persist the boundaries instead).
  void ComputeBlockBoundaries();
  /// The packed branch of Validate().
  Status ValidatePacked(size_t num_docs) const;

  VecOrView<DocId> docs_;
  VecOrView<uint32_t> freqs_;
  VecOrView<uint64_t> pos_offsets_;  // size docs_.size()+1 when non-empty
  VecOrView<uint32_t> positions_;
  uint64_t total_occurrences_ = 0;
  uint32_t max_frequency_ = 0;
  VecOrView<uint32_t> block_max_frequencies_;
  VecOrView<DocId> block_last_docs_;  // derived; see BlockLastDocs()

  // Packed mode (v4): the encoded block blob, per-block byte offsets into
  // it, per-block position bases, and the posting count the raw arrays
  // would have had. docs_/freqs_/pos_offsets_ stay empty in this mode.
  VecOrView<uint8_t> packed_;
  VecOrView<uint32_t> packed_block_offsets_;
  VecOrView<uint64_t> block_pos_base_;
  uint32_t packed_num_docs_ = 0;
};

/// Accumulates postings for one term during indexing. Documents must be
/// appended in ascending doc-id order (the index builder guarantees this).
class PostingListBuilder {
 public:
  /// Records one occurrence of the term at `position` in `doc`.
  void AddOccurrence(DocId doc, uint32_t position);

  PostingList Build() &&;

 private:
  PostingList list_;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_POSTINGS_H_
