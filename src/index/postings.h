// PostingList: the per-term docs/frequencies/positions structure.
//
// Doc-sorted parallel arrays. Positions are needed by the ordered-window
// (n-gram phrase) operator used for article-title expansion features.
//
// The arrays either own their storage (builders, legacy/heap loads) or
// view slices of an aligned (v3) snapshot's flattened postings regions —
// the zero-copy load mode, where the index keeps the snapshot image alive
// and each PostingList costs only its fixed-size header.
#ifndef SQE_INDEX_POSTINGS_H_
#define SQE_INDEX_POSTINGS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "common/vec_or_view.h"
#include "index/types.h"

namespace sqe::index {

/// Immutable posting list for one term. Entries sorted by doc id.
class PostingList {
 public:
  PostingList() = default;

  /// Postings per block-max table entry. Each block of kBlockSize
  /// consecutive postings records the maximum within-document frequency it
  /// contains, so a pruned scorer (Block-Max WAND, see
  /// retrieval/wand_retriever.h) can upper-bound a term's contribution over
  /// a doc-id span and skip whole blocks without decoding them. 128 keeps
  /// the table at <1% of the posting arrays while making a skipped block
  /// worth ~128 saved log() evaluations.
  static constexpr size_t kBlockSize = 128;

  size_t NumDocs() const { return docs_.size(); }
  /// Total occurrences across the collection (collection term frequency).
  uint64_t CollectionFrequency() const { return total_occurrences_; }

  /// Largest within-document frequency across the whole list (0 when
  /// empty). Upper-bounds any posting's tf, so it caps the term's score
  /// contribution for WAND pivot selection.
  uint32_t MaxFrequency() const { return max_frequency_; }
  /// ceil(NumDocs / kBlockSize) entries; entry b is the maximum frequency
  /// among postings [b*kBlockSize, min((b+1)*kBlockSize, NumDocs())). The
  /// doc-id range a block covers is read straight off docs() — block b ends
  /// at doc(min((b+1)*kBlockSize, NumDocs()) - 1) — so only the frequency
  /// maxima need storing.
  std::span<const uint32_t> BlockMaxFrequencies() const {
    return block_max_frequencies_.span();
  }
  /// Last doc id covered by each block, as one contiguous array: entry b is
  /// doc(min((b+1)*kBlockSize, NumDocs()) - 1). Derived data — reading
  /// these off docs() directly costs one scattered cache line per block
  /// crossed, which is exactly the access pattern a pruned scorer's shallow
  /// block pointer makes, so the boundaries are gathered once at build time
  /// (and persisted in v3 snapshots, where Validate proves them equal to a
  /// recomputation) and shallow advances become a binary search over a
  /// dense array.
  std::span<const DocId> BlockLastDocs() const {
    return block_last_docs_.span();
  }
  size_t NumBlocks() const { return block_max_frequencies_.size(); }

  DocId doc(size_t i) const {
    SQE_DCHECK(i < docs_.size());
    return docs_[i];
  }
  /// The full doc-id / frequency parallel arrays, ascending by doc. The
  /// retriever scores straight off these views instead of copying the list
  /// per query; they remain valid as long as the PostingList does.
  std::span<const DocId> docs() const { return docs_.span(); }
  std::span<const uint32_t> frequencies() const { return freqs_.span(); }
  uint32_t frequency(size_t i) const {
    SQE_DCHECK(i < freqs_.size());
    return freqs_[i];
  }
  /// Token positions of the i-th entry, ascending.
  std::span<const uint32_t> positions(size_t i) const {
    SQE_DCHECK(i + 1 < pos_offsets_.size());
    uint64_t begin = pos_offsets_[i];
    uint64_t end = pos_offsets_[i + 1];
    return std::span<const uint32_t>(positions_.data() + begin,
                                     positions_.data() + end);
  }

  /// Index of `doc` in this list, or npos. O(log n).
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t Find(DocId doc) const;

  /// Deep structural validation: parallel arrays the same length, doc ids
  /// strictly increasing and < num_docs, frequencies positive and matching
  /// the position-offset deltas, positions strictly ascending per document,
  /// the collection frequency equal to the stored positions, and the
  /// block-max / block-boundary tables equal to a recomputation. Returns
  /// Status::Corruption pinpointing the first violating entry.
  Status Validate(size_t num_docs) const;

  /// Cursor for doc-at-a-time traversal.
  class Cursor {
   public:
    explicit Cursor(const PostingList* list) : list_(list) {}

    bool AtEnd() const { return pos_ >= list_->NumDocs(); }
    DocId Doc() const { return list_->doc(pos_); }
    uint32_t Frequency() const { return list_->frequency(pos_); }
    std::span<const uint32_t> Positions() const {
      return list_->positions(pos_);
    }
    void Next() { ++pos_; }
    /// Advances to the first entry with doc >= target (galloping).
    void SeekTo(DocId target);

   private:
    const PostingList* list_;
    size_t pos_ = 0;
  };
  Cursor MakeCursor() const { return Cursor(this); }

 private:
  friend class PostingListBuilder;
  friend class InvertedIndex;  // snapshot load adopts stored tables/views

  /// Recomputes max_frequency_ and block_max_frequencies_ from freqs_.
  /// Called by the builder; the snapshot loader instead adopts the stored
  /// tables and lets Validate() prove them equal to this recomputation.
  void ComputeBlockMax();
  /// Recomputes block_last_docs_ from docs_. Called by the builder and the
  /// legacy snapshot loader (v3 images persist the boundaries instead).
  void ComputeBlockBoundaries();

  VecOrView<DocId> docs_;
  VecOrView<uint32_t> freqs_;
  VecOrView<uint64_t> pos_offsets_;  // size docs_.size()+1 when non-empty
  VecOrView<uint32_t> positions_;
  uint64_t total_occurrences_ = 0;
  uint32_t max_frequency_ = 0;
  VecOrView<uint32_t> block_max_frequencies_;
  VecOrView<DocId> block_last_docs_;  // derived; see BlockLastDocs()
};

/// Accumulates postings for one term during indexing. Documents must be
/// appended in ascending doc-id order (the index builder guarantees this).
class PostingListBuilder {
 public:
  /// Records one occurrence of the term at `position` in `doc`.
  void AddOccurrence(DocId doc, uint32_t position);

  PostingList Build() &&;

 private:
  PostingList list_;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_POSTINGS_H_
