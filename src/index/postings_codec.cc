#include "index/postings_codec.h"

#include <bit>
#include <cstring>

#include "common/cpu_dispatch.h"
#include "common/macros.h"
#include "common/string_util.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sqe::index::codec {
namespace {

inline uint32_t MaskFor(uint32_t bits) {
  return bits >= 32 ? 0xFFFFFFFFu : (1u << bits) - 1u;
}

// Block payloads sit at arbitrary byte offsets inside the packed blob (the
// 2-byte header shifts everything), so every word access is an unaligned
// load. memcpy compiles to a single mov on x86.
inline uint32_t LoadU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

// Horizontal LSB-first packing for the ragged final block: value i occupies
// bits [i*bits, (i+1)*bits) of the payload bit stream.
void PackHorizontal(const uint32_t* vals, size_t n, uint32_t bits,
                    std::string* out) {
  uint64_t buf = 0;
  uint32_t avail = 0;
  for (size_t i = 0; i < n; ++i) {
    buf |= static_cast<uint64_t>(vals[i]) << avail;
    avail += bits;
    while (avail >= 8) {
      out->push_back(static_cast<char>(buf & 0xFF));
      buf >>= 8;
      avail -= 8;
    }
  }
  if (avail > 0) out->push_back(static_cast<char>(buf & 0xFF));
}

void UnpackHorizontal(const uint8_t* p, size_t n, uint32_t bits,
                      uint32_t* out) {
  const uint32_t mask = MaskFor(bits);
  uint64_t buf = 0;
  uint32_t avail = 0;
  for (size_t i = 0; i < n; ++i) {
    while (avail < bits) {
      buf |= static_cast<uint64_t>(*p++) << avail;
      avail += 8;
    }
    out[i] = static_cast<uint32_t>(buf) & mask;
    buf >>= bits;
    avail -= bits;
  }
}

// Vertical layout pack: storage word w (16 bytes) holds packed word w of
// all four lanes; lane l owns values at logical indexes l, l+4, l+8, ...
void PackVertical(const uint32_t* vals, uint32_t bits, std::string* out) {
  uint32_t words[32 * 4];
  std::memset(words, 0, sizeof(uint32_t) * bits * 4);
  for (size_t i = 0; i < kBlockLen; ++i) {
    const uint32_t l = static_cast<uint32_t>(i) & 3u;
    const uint32_t r = static_cast<uint32_t>(i) >> 2;
    const uint32_t o = r * bits;
    const uint32_t w = o >> 5, s = o & 31;
    words[w * 4 + l] |= vals[i] << s;
    if (s + bits > 32) words[(w + 1) * 4 + l] |= vals[i] >> (32 - s);
  }
  out->append(reinterpret_cast<const char*>(words), size_t{16} * bits);
}

void UnpackArray(const uint8_t* payload, size_t n, uint32_t bits,
                 uint32_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return;
  }
  if (n == kBlockLen) {
    internal::ActiveUnpackFn()(payload, bits, out);
  } else {
    UnpackHorizontal(payload, n, bits, out);
  }
}

}  // namespace

uint32_t BitsNeeded(uint32_t max_value) {
  return static_cast<uint32_t>(std::bit_width(max_value));
}

size_t PackedPayloadBytes(size_t n, uint32_t bits) {
  if (bits == 0) return 0;
  if (n == kBlockLen) return size_t{16} * bits;
  return (n * bits + 7) / 8;
}

size_t EncodedBlockBytes(size_t n, uint32_t doc_bits, uint32_t freq_bits) {
  return kBlockHeaderBytes + PackedPayloadBytes(n, doc_bits) +
         PackedPayloadBytes(n, freq_bits);
}

size_t EncodeBlock(const uint32_t* docs, const uint32_t* freqs, size_t n,
                   uint32_t prev_plus1, std::string* out) {
  SQE_DCHECK(n >= 1 && n <= kBlockLen);
  uint32_t gaps[kBlockLen];
  uint32_t fm1[kBlockLen];
  // bit_width(OR of all values) == bit_width(max value): same top bit.
  uint32_t gap_or = 0;
  uint32_t freq_or = 0;
  uint32_t prev = prev_plus1;
  for (size_t i = 0; i < n; ++i) {
    SQE_DCHECK(docs[i] >= prev);
    SQE_DCHECK(freqs[i] >= 1);
    gaps[i] = docs[i] - prev;
    prev = docs[i] + 1;
    gap_or |= gaps[i];
    fm1[i] = freqs[i] - 1;
    freq_or |= fm1[i];
  }
  const uint32_t doc_bits = BitsNeeded(gap_or);
  const uint32_t freq_bits = BitsNeeded(freq_or);
  out->push_back(static_cast<char>(doc_bits));
  out->push_back(static_cast<char>(freq_bits));
  if (doc_bits != 0) {
    if (n == kBlockLen) {
      PackVertical(gaps, doc_bits, out);
    } else {
      PackHorizontal(gaps, n, doc_bits, out);
    }
  }
  if (freq_bits != 0) {
    if (n == kBlockLen) {
      PackVertical(fm1, freq_bits, out);
    } else {
      PackHorizontal(fm1, n, freq_bits, out);
    }
  }
  return EncodedBlockBytes(n, doc_bits, freq_bits);
}

void DecodeBlock(const uint8_t* packed, size_t n, uint32_t prev_plus1,
                 uint32_t* docs, uint32_t* freqs) {
  DecodeBlockDocs(packed, n, prev_plus1, docs);
  DecodeBlockFreqs(packed, n, freqs);
}

void DecodeBlockDocs(const uint8_t* packed, size_t n, uint32_t prev_plus1,
                     uint32_t* docs) {
  const uint32_t doc_bits = packed[0];
  UnpackArray(packed + kBlockHeaderBytes, n, doc_bits, docs);
  uint32_t acc = prev_plus1;
  for (size_t i = 0; i < n; ++i) {
    acc += docs[i];
    docs[i] = acc;
    ++acc;
  }
}

void DecodeBlockFreqs(const uint8_t* packed, size_t n, uint32_t* freqs) {
  const uint32_t doc_bits = packed[0];
  const uint32_t freq_bits = packed[1];
  const uint8_t* freq_payload =
      packed + kBlockHeaderBytes + PackedPayloadBytes(n, doc_bits);
  UnpackArray(freq_payload, n, freq_bits, freqs);
  for (size_t i = 0; i < n; ++i) freqs[i] += 1;
}

namespace {

// Single-value extraction from one packed payload, both layouts. One or
// two unaligned word reads (full block) or a short byte loop (ragged);
// never reads past the payload's own bytes.
uint32_t ExtractPackedValue(const uint8_t* payload, size_t n, uint32_t bits,
                            size_t i) {
  if (bits == 0) return 0;
  if (n == kBlockLen) {
    // Vertical layout: value i sits in lane i & 3 at row i >> 2; its bits
    // start at row * bits within the lane's word stream, and storage word
    // w interleaves word w of all four lanes.
    const uint32_t l = static_cast<uint32_t>(i) & 3u;
    const uint32_t o = (static_cast<uint32_t>(i) >> 2) * bits;
    const uint32_t w = o >> 5, s = o & 31;
    uint32_t v = LoadU32(payload + (size_t{w} * 4 + l) * 4) >> s;
    if (s + bits > 32) {
      v |= LoadU32(payload + (size_t{w + 1} * 4 + l) * 4) << (32 - s);
    }
    return v & MaskFor(bits);
  }
  // Ragged block, horizontal LSB-first: value i occupies payload bits
  // [i * bits, (i + 1) * bits). Byte-wise loads never reach past the
  // ceil(n * bits / 8) payload bytes that exist.
  const size_t bit = i * bits;
  const uint32_t drop = static_cast<uint32_t>(bit & 7);
  const uint8_t* p = payload + (bit >> 3);
  uint64_t buf = 0;
  uint32_t avail = 0;
  while (avail < drop + bits) {
    buf |= static_cast<uint64_t>(*p++) << avail;
    avail += 8;
  }
  return static_cast<uint32_t>(buf >> drop) & MaskFor(bits);
}

}  // namespace

uint32_t ExtractFreqAt(const uint8_t* packed, size_t n, size_t i) {
  SQE_DCHECK(i < n);
  const uint8_t* freq_payload =
      packed + kBlockHeaderBytes + PackedPayloadBytes(n, packed[0]);
  return ExtractPackedValue(freq_payload, n, packed[1], i) + 1;
}

uint32_t ExtractFirstDoc(const uint8_t* packed, size_t n,
                         uint32_t prev_plus1) {
  SQE_DCHECK(n >= 1);
  return prev_plus1 + ExtractPackedValue(packed + kBlockHeaderBytes, n,
                                         packed[0], 0);
}

Status DecodeBlockChecked(const uint8_t* packed, size_t packed_len, size_t n,
                          uint32_t prev_plus1, uint32_t* docs,
                          uint32_t* freqs) {
  if (n == 0 || n > kBlockLen) {
    return Status::Corruption(
        StrFormat("packed block: %zu entries out of range", n));
  }
  if (packed_len < kBlockHeaderBytes) {
    return Status::Corruption("packed block: truncated header");
  }
  const uint32_t doc_bits = packed[0];
  const uint32_t freq_bits = packed[1];
  if (doc_bits > 32 || freq_bits > 32) {
    return Status::Corruption(
        StrFormat("packed block: bit width %u/%u out of range",
                  (unsigned)doc_bits, (unsigned)freq_bits));
  }
  const size_t want = EncodedBlockBytes(n, doc_bits, freq_bits);
  if (packed_len != want) {
    return Status::Corruption(
        StrFormat("packed block: %zu bytes, header implies %zu", packed_len,
                  want));
  }
  const uint8_t* doc_payload = packed + kBlockHeaderBytes;
  const uint8_t* freq_payload =
      doc_payload + PackedPayloadBytes(n, doc_bits);
  UnpackArray(doc_payload, n, doc_bits, docs);
  UnpackArray(freq_payload, n, freq_bits, freqs);
  uint64_t acc = prev_plus1;
  for (size_t i = 0; i < n; ++i) {
    acc += docs[i];
    if (acc > 0xFFFFFFFFull) {
      return Status::Corruption(
          StrFormat("packed block: doc id overflows u32 at entry %zu", i));
    }
    docs[i] = static_cast<uint32_t>(acc);
    ++acc;
  }
  for (size_t i = 0; i < n; ++i) {
    if (freqs[i] == 0xFFFFFFFFu) {
      return Status::Corruption(
          StrFormat("packed block: frequency overflows u32 at entry %zu", i));
    }
    freqs[i] += 1;
  }
  return Status::OK();
}

namespace internal {

void UnpackVerticalScalar(const uint8_t* payload, uint32_t bits,
                          uint32_t* out) {
  const uint32_t mask = MaskFor(bits);
  for (uint32_t l = 0; l < 4; ++l) {
    uint32_t o = 0;
    for (uint32_t r = 0; r < 32; ++r, o += bits) {
      const uint32_t w = o >> 5, s = o & 31;
      uint32_t v = LoadU32(payload + (size_t{w} * 4 + l) * 4) >> s;
      if (s + bits > 32) {
        v |= LoadU32(payload + (size_t{w + 1} * 4 + l) * 4) << (32 - s);
      }
      out[r * 4 + l] = v & mask;
    }
  }
}

#if defined(__SSE2__)
void UnpackVerticalSse2(const uint8_t* payload, uint32_t bits,
                        uint32_t* out) {
  const __m128i mask =
      _mm_set1_epi32(static_cast<int>(MaskFor(bits)));
  uint32_t o = 0;
  for (uint32_t r = 0; r < 32; ++r, o += bits) {
    const uint32_t w = o >> 5, s = o & 31;
    // The carry word: w+1 when the value spans words, else w itself — the
    // shifted-in bits then land at or above `bits` and are masked away,
    // and a left shift by 32 (s == 0) produces zero in SIMD, so the
    // or/mask sequence is branch-free over every width.
    const uint32_t wc = (s + bits > 32) ? w + 1 : w;
    const __m128i lo = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(payload + size_t{w} * 16));
    const __m128i hi = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(payload + size_t{wc} * 16));
    __m128i v = _mm_srl_epi32(lo, _mm_cvtsi32_si128(static_cast<int>(s)));
    v = _mm_or_si128(
        v, _mm_sll_epi32(hi, _mm_cvtsi32_si128(static_cast<int>(32 - s))));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + size_t{r} * 4),
                     _mm_and_si128(v, mask));
  }
}
#endif  // __SSE2__

UnpackFn ActiveUnpackFn() {
  static const UnpackFn fn = [] {
    const SimdLevel level = DetectSimdLevel();
#if defined(__x86_64__) || defined(__i386__)
    if (level >= SimdLevel::kAvx2) return &UnpackVerticalAvx2;
#endif
#if defined(__SSE2__)
    if (level >= SimdLevel::kSse2) return &UnpackVerticalSse2;
#endif
    (void)level;
    return &UnpackVerticalScalar;
  }();
  return fn;
}

}  // namespace internal

}  // namespace sqe::index::codec
