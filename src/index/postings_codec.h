// Block bit-packed posting codec (v4 snapshots): SIMD-BP128-style fixed
// 128-lane packing with per-block widths.
//
// A posting list is cut into blocks of PostingList::kBlockSize (= 128)
// entries; each block is encoded independently as
//
//   [doc_bits: u8][freq_bits: u8][doc payload][freq payload]
//
// Doc ids are delta-gap transformed before packing: the first gap is
// relative to `prev_plus1` (0 for a term's first block, otherwise the
// previous block's last doc id + 1) and every later gap is
// doc[i] - doc[i-1] - 1, so strictly increasing ids always produce
// representable gaps and decoding re-establishes strict order by
// construction. Frequencies are stored as freq - 1 (freq >= 1 always), so
// the very common all-ones frequency block packs to zero payload bytes.
// Each payload is packed at the block's own minimal width (0..32 bits).
//
// Full blocks (exactly 128 values) use the vertical 4-lane layout SIMD
// kernels want: value i lives in lane i % 4 at row i / 4; each lane's 32
// values are packed LSB-first at `bits` per value into `bits` u32 words,
// and the four lanes' word streams are interleaved so that 16-byte storage
// word w holds word w of all four lanes. One unaligned 128-bit load plus a
// shift/or/mask then yields four decoded values per row — the scalar, SSE2
// and AVX2 kernels in postings_codec.cc all walk this identical layout and
// produce identical integers, which is what lets runtime CPU dispatch
// (common/cpu_dispatch.h) pick a kernel per host without breaking the
// bit-identical ranking contract.
//
// A ragged final block (n < 128) uses plain horizontal LSB-first packing
// into ceil(n * bits / 8) bytes and a scalar decode; it is at most one
// block per term, so it never matters for throughput.
//
// Decoders never read past the payload they are given (the vertical layout
// reads whole 16-byte storage words that all lie inside the payload), so
// views straight into an mmap'ed snapshot are safe. DecodeBlock assumes a
// block that already passed DecodeBlockChecked at load time (the
// PostingList validator runs the checked decoder over every block once);
// DecodeBlockChecked trusts nothing and is the fuzzer entry point.
#ifndef SQE_INDEX_POSTINGS_CODEC_H_
#define SQE_INDEX_POSTINGS_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace sqe::index::codec {

/// Values per full block. Kept equal to PostingList::kBlockSize (asserted
/// in postings_codec.cc) so one packed block answers one block-max entry.
inline constexpr size_t kBlockLen = 128;

/// `[doc_bits: u8][freq_bits: u8]` prefix on every block.
inline constexpr size_t kBlockHeaderBytes = 2;

/// Minimal width (0..32) that represents `max_value`.
uint32_t BitsNeeded(uint32_t max_value);

/// Payload bytes for one packed array of `n` values at `bits` per value:
/// 16 * bits for a full block (vertical layout), ceil(n * bits / 8) for a
/// ragged one.
size_t PackedPayloadBytes(size_t n, uint32_t bits);

/// Total encoded size of one block (header + both payloads).
size_t EncodedBlockBytes(size_t n, uint32_t doc_bits, uint32_t freq_bits);

/// Encodes one block of `n` (1..kBlockLen) postings — ascending absolute
/// doc ids and raw frequencies (>= 1) — and appends the encoded bytes to
/// `*out`. `prev_plus1` anchors the gap transform as described above.
/// Returns the number of bytes appended.
size_t EncodeBlock(const uint32_t* docs, const uint32_t* freqs, size_t n,
                   uint32_t prev_plus1, std::string* out);

/// Decodes one trusted block (see file comment) of `n` postings into
/// `docs[0..n)` / `freqs[0..n)`, undoing the gap and freq-1 transforms.
/// Uses the kernel tier selected by DetectSimdLevel().
void DecodeBlock(const uint8_t* packed, size_t n, uint32_t prev_plus1,
                 uint32_t* docs, uint32_t* freqs);

/// The two halves of DecodeBlock, independently callable: a WAND cursor
/// navigating by doc id decodes only the doc half of the blocks it lands
/// in and pays for the frequency half only on the (much rarer) blocks
/// whose postings it actually scores.
void DecodeBlockDocs(const uint8_t* packed, size_t n, uint32_t prev_plus1,
                     uint32_t* docs);
void DecodeBlockFreqs(const uint8_t* packed, size_t n, uint32_t* freqs);

/// Extracts the frequency of entry `i` (< n) of a trusted block without
/// unpacking anything else: one or two word reads from the freq payload
/// (frequencies, unlike gap-coded doc ids, are randomly addressable). The
/// WAND cursor reads at most a couple of frequencies from a block whose
/// docs it decoded for navigation, so materializing all 128 is waste.
uint32_t ExtractFreqAt(const uint8_t* packed, size_t n, size_t i);

/// Extracts the first doc id of a trusted block (anchor + first gap)
/// without decoding it. Skip-heavy traversal lands cursors on block
/// starts constantly, and re-sorting them needs exactly this one value.
uint32_t ExtractFirstDoc(const uint8_t* packed, size_t n,
                         uint32_t prev_plus1);

/// Untrusted-input decode: additionally verifies the widths are <= 32,
/// `packed_len` is exactly the encoded size the header implies, and the
/// reconstructed doc ids never overflow uint32. On success the outputs
/// match DecodeBlock exactly.
Status DecodeBlockChecked(const uint8_t* packed, size_t packed_len, size_t n,
                          uint32_t prev_plus1, uint32_t* docs,
                          uint32_t* freqs);

namespace internal {

/// Unpacks one full vertical-layout array (kBlockLen values at `bits` per
/// value, bits in 1..32) from `payload` into `out`. Exposed so the decode
/// micro-benchmarks and the codec tests can compare tiers directly; the
/// AVX2 variant lives in postings_codec_avx2.cc behind a target attribute
/// and must only be called when the host supports AVX2.
void UnpackVerticalScalar(const uint8_t* payload, uint32_t bits,
                          uint32_t* out);
#if defined(__SSE2__)
void UnpackVerticalSse2(const uint8_t* payload, uint32_t bits, uint32_t* out);
#endif
#if defined(__x86_64__) || defined(__i386__)
void UnpackVerticalAvx2(const uint8_t* payload, uint32_t bits, uint32_t* out);
#endif

using UnpackFn = void (*)(const uint8_t* payload, uint32_t bits,
                          uint32_t* out);

/// The vertical unpack kernel for the process's SimdLevel, resolved once.
UnpackFn ActiveUnpackFn();

}  // namespace internal

}  // namespace sqe::index::codec

#endif  // SQE_INDEX_POSTINGS_CODEC_H_
