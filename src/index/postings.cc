#include "index/postings.h"

#include <algorithm>

#include "common/string_util.h"
#include "index/postings_codec.h"

namespace sqe::index {

// One packed block answers exactly one block-max / block-last entry; the
// codec and the skip tables must agree on the block size forever.
static_assert(PostingList::kBlockSize == codec::kBlockLen,
              "packed codec block length must equal the block-max "
              "table granularity");

Status PostingList::Validate(size_t num_docs) const {
  if (packed()) return ValidatePacked(num_docs);
  if (freqs_.size() != docs_.size()) {
    return Status::Corruption(
        StrFormat("posting list: %zu docs but %zu frequencies", docs_.size(),
                  freqs_.size()));
  }
  if (docs_.empty()) {
    if (!positions_.empty() || total_occurrences_ != 0) {
      return Status::Corruption(
          "posting list: empty doc list with positions or occurrences");
    }
    if (!block_max_frequencies_.empty() || !block_last_docs_.empty() ||
        max_frequency_ != 0) {
      return Status::Corruption(
          "posting list: empty doc list with block-max entries");
    }
    return Status::OK();
  }
  if (pos_offsets_.size() != docs_.size() + 1 || pos_offsets_[0] != 0) {
    return Status::Corruption(
        StrFormat("posting list: position offsets malformed (%zu entries for "
                  "%zu docs)",
                  pos_offsets_.size(), docs_.size()));
  }
  if (pos_offsets_.back() != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: position offsets end at %llu but %zu positions",
        (unsigned long long)pos_offsets_.back(), positions_.size()));
  }
  if (total_occurrences_ != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: collection frequency %llu != %zu stored positions",
        (unsigned long long)total_occurrences_, positions_.size()));
  }
  // Block-max tables. The scoring contract (a block's recorded maximum >=
  // every contained frequency) is what makes WAND skipping exact, so the
  // check recomputes the true maxima and demands equality — an inflated
  // maximum merely weakens pruning, but a deflated one would silently drop
  // top-k documents, and either way the snapshot writer never produces it.
  const size_t want_blocks = (docs_.size() + kBlockSize - 1) / kBlockSize;
  if (block_max_frequencies_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: %zu block-max entries for %zu postings (want %zu)",
        block_max_frequencies_.size(), docs_.size(), want_blocks));
  }
  // Block boundaries are equally load-bearing: a pruned scorer's shallow
  // advance binary-searches them, so a stale boundary would skip or rescan
  // the wrong doc-id span.
  if (block_last_docs_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: %zu block-boundary entries for %zu postings "
        "(want %zu)",
        block_last_docs_.size(), docs_.size(), want_blocks));
  }
  uint32_t true_max = 0;
  for (size_t b = 0; b < want_blocks; ++b) {
    uint32_t block_max = 0;
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(begin + kBlockSize, docs_.size());
    for (size_t i = begin; i < end; ++i) {
      block_max = std::max(block_max, freqs_[i]);
    }
    if (block_max_frequencies_[b] != block_max) {
      return Status::Corruption(StrFormat(
          "posting list: block %zu max frequency %u != %u contained maximum",
          b, (unsigned)block_max_frequencies_[b], (unsigned)block_max));
    }
    if (block_last_docs_[b] != docs_[end - 1]) {
      return Status::Corruption(StrFormat(
          "posting list: block %zu last doc %u != %u actual boundary", b,
          (unsigned)block_last_docs_[b], (unsigned)docs_[end - 1]));
    }
    true_max = std::max(true_max, block_max);
  }
  if (max_frequency_ != true_max) {
    return Status::Corruption(StrFormat(
        "posting list: term max frequency %u != %u actual maximum",
        (unsigned)max_frequency_, (unsigned)true_max));
  }
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i] >= num_docs) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu doc id %u out of range (%zu "
                    "documents)",
                    i, (unsigned)docs_[i], num_docs));
    }
    if (i > 0 && docs_[i - 1] >= docs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: doc ids not strictly increasing at entry %zu "
          "(%u >= %u)",
          i, (unsigned)docs_[i - 1], (unsigned)docs_[i]));
    }
    if (freqs_[i] == 0) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu has zero frequency", i));
    }
    if (pos_offsets_[i + 1] - pos_offsets_[i] != freqs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: entry %zu frequency %u != %llu positions", i,
          (unsigned)freqs_[i],
          (unsigned long long)(pos_offsets_[i + 1] - pos_offsets_[i])));
    }
    for (uint64_t j = pos_offsets_[i] + 1; j < pos_offsets_[i + 1]; ++j) {
      if (positions_[j - 1] >= positions_[j]) {
        return Status::Corruption(StrFormat(
            "posting list: entry %zu positions not strictly ascending "
            "(%u >= %u)",
            i, (unsigned)positions_[j - 1], (unsigned)positions_[j]));
      }
    }
  }
  return Status::OK();
}

// The packed twin of the raw validator. Every encoded block goes through
// the *checked* codec decoder exactly once here, at load time — width,
// length, and overflow rejection — which is what licenses every later
// decode (cursors, scoring, Find) to use the unchecked fast path over the
// same immutable bytes. The block chain is self-anchoring: block b decodes
// relative to the stored block-last of b-1, and its own decoded last doc
// must equal the stored block-last of b, so the chain is fully determined
// by block 0's fixed anchor and any tampered table entry breaks an
// equality somewhere.
Status PostingList::ValidatePacked(size_t num_docs) const {
  if (!docs_.empty() || !freqs_.empty() || !pos_offsets_.empty()) {
    return Status::Corruption(
        "posting list: packed list carries raw arrays too");
  }
  const size_t n = packed_num_docs_;
  if (n == 0) {
    return Status::Corruption(
        "posting list: packed bytes but zero postings");
  }
  const size_t want_blocks = (n + kBlockSize - 1) / kBlockSize;
  if (block_max_frequencies_.size() != want_blocks ||
      block_last_docs_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: packed block tables %zu/%zu for %zu postings "
        "(want %zu)",
        block_max_frequencies_.size(), block_last_docs_.size(), n,
        want_blocks));
  }
  if (packed_block_offsets_.size() != want_blocks ||
      block_pos_base_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: packed offset tables %zu/%zu (want %zu)",
        packed_block_offsets_.size(), block_pos_base_.size(), want_blocks));
  }
  if (packed_block_offsets_[0] != 0) {
    return Status::Corruption(
        "posting list: packed blocks do not start at offset 0");
  }
  if (total_occurrences_ != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: collection frequency %llu != %zu stored positions",
        (unsigned long long)total_occurrences_, positions_.size()));
  }
  uint32_t dbuf[kBlockSize];
  uint32_t fbuf[kBlockSize];
  uint32_t true_max = 0;
  uint64_t pos_cursor = 0;
  for (size_t b = 0; b < want_blocks; ++b) {
    const size_t begin = packed_block_offsets_[b];
    const size_t end = b + 1 < want_blocks ? packed_block_offsets_[b + 1]
                                           : packed_.size();
    if (begin >= end || end > packed_.size()) {
      return Status::Corruption(StrFormat(
          "posting list: packed block %zu offsets not monotone "
          "(%zu..%zu of %zu)",
          b, begin, end, packed_.size()));
    }
    const size_t block_len = BlockLength(b);
    const uint32_t anchor = b == 0 ? 0 : block_last_docs_[b - 1] + 1;
    Status decoded = codec::DecodeBlockChecked(
        packed_.data() + begin, end - begin, block_len, anchor, dbuf, fbuf);
    if (!decoded.ok()) {
      return Status::Corruption(StrFormat(
          "posting list: packed block %zu: %s", b,
          decoded.ToString().c_str()));
    }
    if (dbuf[block_len - 1] != block_last_docs_[b]) {
      return Status::Corruption(StrFormat(
          "posting list: packed block %zu last doc %u != %u stored boundary",
          b, (unsigned)dbuf[block_len - 1], (unsigned)block_last_docs_[b]));
    }
    uint32_t block_max = 0;
    for (size_t i = 0; i < block_len; ++i) {
      block_max = std::max(block_max, fbuf[i]);
    }
    if (block_max_frequencies_[b] != block_max) {
      return Status::Corruption(StrFormat(
          "posting list: packed block %zu max frequency %u != %u contained "
          "maximum",
          b, (unsigned)block_max_frequencies_[b], (unsigned)block_max));
    }
    true_max = std::max(true_max, block_max);
    if (block_pos_base_[b] != pos_cursor) {
      return Status::Corruption(StrFormat(
          "posting list: packed block %zu position base %llu != %llu "
          "running total",
          b, (unsigned long long)block_pos_base_[b],
          (unsigned long long)pos_cursor));
    }
    for (size_t i = 0; i < block_len; ++i) {
      if (pos_cursor + fbuf[i] > positions_.size()) {
        return Status::Corruption(StrFormat(
            "posting list: packed block %zu positions overrun (%llu + %u > "
            "%zu)",
            b, (unsigned long long)pos_cursor, (unsigned)fbuf[i],
            positions_.size()));
      }
      for (uint64_t j = pos_cursor + 1; j < pos_cursor + fbuf[i]; ++j) {
        if (positions_[j - 1] >= positions_[j]) {
          return Status::Corruption(StrFormat(
              "posting list: packed block %zu positions not strictly "
              "ascending (%u >= %u)",
              b, (unsigned)positions_[j - 1], (unsigned)positions_[j]));
        }
      }
      pos_cursor += fbuf[i];
    }
  }
  // Within-block order and cross-block order are structural (the gap
  // transform adds at least 1 per step and each block anchors past the
  // previous boundary), so checking the final boundary bounds every doc.
  if (block_last_docs_[want_blocks - 1] >= num_docs) {
    return Status::Corruption(StrFormat(
        "posting list: packed last doc id %u out of range (%zu documents)",
        (unsigned)block_last_docs_[want_blocks - 1], num_docs));
  }
  if (max_frequency_ != true_max) {
    return Status::Corruption(StrFormat(
        "posting list: term max frequency %u != %u actual maximum",
        (unsigned)max_frequency_, (unsigned)true_max));
  }
  if (pos_cursor != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: packed frequencies sum to %llu but %zu positions",
        (unsigned long long)pos_cursor, positions_.size()));
  }
  return Status::OK();
}

void PostingList::DecodeBlockInto(size_t b, uint32_t* docs,
                                  uint32_t* freqs) const {
  SQE_DCHECK(packed());
  const std::span<const uint8_t> block = PackedBlock(b);
  codec::DecodeBlock(block.data(), BlockLength(b), BlockAnchor(b), docs,
                     freqs);
}

void PostingList::DecodeBlockDocsInto(size_t b, uint32_t* docs) const {
  SQE_DCHECK(packed());
  codec::DecodeBlockDocs(PackedBlock(b).data(), BlockLength(b),
                         BlockAnchor(b), docs);
}

void PostingList::DecodeBlockFreqsInto(size_t b, uint32_t* freqs) const {
  SQE_DCHECK(packed());
  codec::DecodeBlockFreqs(PackedBlock(b).data(), BlockLength(b), freqs);
}

uint32_t PostingList::BlockFreqAt(size_t b, size_t off) const {
  SQE_DCHECK(packed());
  return codec::ExtractFreqAt(PackedBlock(b).data(), BlockLength(b), off);
}

DocId PostingList::BlockFirstDoc(size_t b) const {
  SQE_DCHECK(packed());
  return codec::ExtractFirstDoc(PackedBlock(b).data(), BlockLength(b),
                                BlockAnchor(b));
}

size_t PostingList::LowerBound(DocId target) const {
  if (!packed()) {
    std::span<const DocId> docs = docs_.span();
    return static_cast<size_t>(
        std::lower_bound(docs.begin(), docs.end(), target) - docs.begin());
  }
  const std::span<const DocId> last = block_last_docs_.span();
  const size_t b = static_cast<size_t>(
      std::lower_bound(last.begin(), last.end(), target) - last.begin());
  if (b == last.size()) return NumDocs();
  // Every doc in block b is >= its anchor, so a target at or below the
  // anchor resolves to the block's first posting with no decode at all.
  // This is the common case for cursor setup (target 0 lands here).
  if (target <= BlockAnchor(b)) return b * kBlockSize;
  uint32_t dbuf[kBlockSize];
  DecodeBlockDocsInto(b, dbuf);
  const size_t n = BlockLength(b);
  const size_t off =
      static_cast<size_t>(std::lower_bound(dbuf, dbuf + n, target) - dbuf);
  return b * kBlockSize + off;
}

void PostingList::Materialize(std::vector<DocId>* docs,
                              std::vector<uint32_t>* freqs) const {
  const size_t n = NumDocs();
  docs->resize(n);
  freqs->resize(n);
  if (!packed()) {
    std::copy(docs_.begin(), docs_.end(), docs->begin());
    std::copy(freqs_.begin(), freqs_.end(), freqs->begin());
    return;
  }
  for (size_t b = 0; b < NumBlocks(); ++b) {
    DecodeBlockInto(b, docs->data() + b * kBlockSize,
                    freqs->data() + b * kBlockSize);
  }
}

size_t PostingList::Find(DocId doc) const {
  if (!packed()) {
    std::span<const DocId> docs = docs_.span();
    auto it = std::lower_bound(docs.begin(), docs.end(), doc);
    if (it == docs.end() || *it != doc) return kNpos;
    return static_cast<size_t>(it - docs.begin());
  }
  const std::span<const DocId> last = block_last_docs_.span();
  const size_t b = static_cast<size_t>(
      std::lower_bound(last.begin(), last.end(), doc) - last.begin());
  if (b == last.size()) return kNpos;
  uint32_t dbuf[kBlockSize];
  DecodeBlockDocsInto(b, dbuf);
  const size_t n = BlockLength(b);
  const size_t off =
      static_cast<size_t>(std::lower_bound(dbuf, dbuf + n, doc) - dbuf);
  if (off == n || dbuf[off] != doc) return kNpos;
  return b * kBlockSize + off;
}

void PostingList::Cursor::LoadBlock(size_t b) {
  cur_block_ = b;
  block_begin_ = b * kBlockSize;
  block_len_ = list_->BlockLength(b);
  list_->DecodeBlockDocsInto(b, dbuf_);
  // The very next bytes this cursor is likely to touch are the following
  // block's header; warm them while the decoded values are consumed.
  if (b + 1 < list_->NumBlocks()) {
    __builtin_prefetch(list_->PackedBlock(b + 1).data());
  }
}

void PostingList::Cursor::EnsureFreqs() const {
  if (freqs_block_ != cur_block_) {
    list_->DecodeBlockFreqsInto(cur_block_, fbuf_);
    freqs_block_ = cur_block_;
  }
}

void PostingList::Cursor::AdvanceBlock() {
  if (pos_ < list_->NumDocs()) LoadBlock(cur_block_ + 1);
}

std::span<const uint32_t> PostingList::Cursor::Positions() const {
  SQE_DCHECK(!AtEnd());
  if (!packed_) return list_->positions(pos_);
  EnsureFreqs();
  const size_t off = pos_ - block_begin_;
  uint64_t base = list_->block_pos_base_[cur_block_];
  for (size_t j = 0; j < off; ++j) base += fbuf_[j];
  const uint32_t* p = list_->positions_.data() + base;
  return std::span<const uint32_t>(p, p + fbuf_[off]);
}

void PostingList::Cursor::SeekTo(DocId target) {
  const size_t n = list_->NumDocs();
  if (pos_ >= n || Doc() >= target) return;
  if (packed_) {
    const std::span<const DocId> last = list_->BlockLastDocs();
    if (target > last[cur_block_]) {
      // Resume the block search from the current block, not from block 0:
      // a cursor that already decoded block b never re-scans the boundary
      // prefix it has passed (and never re-decodes blocks behind it).
      const size_t b = static_cast<size_t>(
          std::lower_bound(last.begin() + cur_block_ + 1, last.end(),
                           target) -
          last.begin());
      if (b == last.size()) {
        pos_ = n;
        return;
      }
      LoadBlock(b);
      pos_ = block_begin_;
    }
    // The target lands inside the current (possibly just decoded) block;
    // blocks between the old and new position were skipped undecoded.
    const size_t off = static_cast<size_t>(
        std::lower_bound(dbuf_ + (pos_ - block_begin_), dbuf_ + block_len_,
                         target) -
        dbuf_);
    pos_ = block_begin_ + off;
    return;
  }
  // Galloping search from the current position: doubling probe then binary
  // search within the bracketed range. O(log gap) per seek.
  size_t step = 1;
  size_t lo = pos_;
  size_t hi = pos_ + step;
  while (hi < n && list_->doc(hi) < target) {
    lo = hi;
    step *= 2;
    hi = pos_ + step;
  }
  hi = std::min(hi, n);
  const auto& docs = *list_;
  // Binary search in (lo, hi].
  size_t left = lo + 1, right = hi;
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (docs.doc(mid) < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  pos_ = left;
}

void PostingListBuilder::AddOccurrence(DocId doc, uint32_t position) {
  std::vector<DocId>& docs = list_.docs_.vec();
  std::vector<uint32_t>& freqs = list_.freqs_.vec();
  std::vector<uint64_t>& pos_offsets = list_.pos_offsets_.vec();
  std::vector<uint32_t>& positions = list_.positions_.vec();
  if (docs.empty() || docs.back() != doc) {
    SQE_CHECK_MSG(docs.empty() || docs.back() < doc,
                  "documents must be indexed in ascending id order");
    if (pos_offsets.empty()) pos_offsets.push_back(0);
    docs.push_back(doc);
    freqs.push_back(0);
    pos_offsets.push_back(positions.size());
  }
  freqs.back()++;
  positions.push_back(position);
  pos_offsets.back() = positions.size();
  list_.total_occurrences_++;
}

void PostingList::ComputeBlockMax() {
  max_frequency_ = 0;
  block_max_frequencies_.vec().assign(
      (docs_.size() + kBlockSize - 1) / kBlockSize, 0);
  for (size_t i = 0; i < freqs_.size(); ++i) {
    uint32_t& block_max = block_max_frequencies_.vec()[i / kBlockSize];
    block_max = std::max(block_max, freqs_[i]);
    max_frequency_ = std::max(max_frequency_, freqs_[i]);
  }
}

void PostingList::ComputeBlockBoundaries() {
  const size_t num_blocks = (docs_.size() + kBlockSize - 1) / kBlockSize;
  std::vector<DocId>& boundaries = block_last_docs_.vec();
  boundaries.resize(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    boundaries[b] = docs_[std::min((b + 1) * kBlockSize, docs_.size()) - 1];
  }
}

PostingList PostingListBuilder::Build() && {
  list_.ComputeBlockMax();
  list_.ComputeBlockBoundaries();
  return std::move(list_);
}

}  // namespace sqe::index
