#include "index/postings.h"

#include <algorithm>

namespace sqe::index {

size_t PostingList::Find(DocId doc) const {
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it == docs_.end() || *it != doc) return kNpos;
  return static_cast<size_t>(it - docs_.begin());
}

void PostingList::Cursor::SeekTo(DocId target) {
  // Galloping search from the current position: doubling probe then binary
  // search within the bracketed range. O(log gap) per seek.
  size_t n = list_->NumDocs();
  if (pos_ >= n || list_->doc(pos_) >= target) return;
  size_t step = 1;
  size_t lo = pos_;
  size_t hi = pos_ + step;
  while (hi < n && list_->doc(hi) < target) {
    lo = hi;
    step *= 2;
    hi = pos_ + step;
  }
  hi = std::min(hi, n);
  const auto& docs = *list_;
  // Binary search in (lo, hi].
  size_t left = lo + 1, right = hi;
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (docs.doc(mid) < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  pos_ = left;
}

void PostingListBuilder::AddOccurrence(DocId doc, uint32_t position) {
  if (list_.docs_.empty() || list_.docs_.back() != doc) {
    SQE_CHECK_MSG(list_.docs_.empty() || list_.docs_.back() < doc,
                  "documents must be indexed in ascending id order");
    if (list_.pos_offsets_.empty()) list_.pos_offsets_.push_back(0);
    list_.docs_.push_back(doc);
    list_.freqs_.push_back(0);
    list_.pos_offsets_.push_back(list_.positions_.size());
  }
  list_.freqs_.back()++;
  list_.positions_.push_back(position);
  list_.pos_offsets_.back() = list_.positions_.size();
  list_.total_occurrences_++;
}

PostingList PostingListBuilder::Build() && { return std::move(list_); }

}  // namespace sqe::index
