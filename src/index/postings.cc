#include "index/postings.h"

#include <algorithm>

#include "common/string_util.h"

namespace sqe::index {

Status PostingList::Validate(size_t num_docs) const {
  if (freqs_.size() != docs_.size()) {
    return Status::Corruption(
        StrFormat("posting list: %zu docs but %zu frequencies", docs_.size(),
                  freqs_.size()));
  }
  if (docs_.empty()) {
    if (!positions_.empty() || total_occurrences_ != 0) {
      return Status::Corruption(
          "posting list: empty doc list with positions or occurrences");
    }
    return Status::OK();
  }
  if (pos_offsets_.size() != docs_.size() + 1 || pos_offsets_.front() != 0) {
    return Status::Corruption(
        StrFormat("posting list: position offsets malformed (%zu entries for "
                  "%zu docs)",
                  pos_offsets_.size(), docs_.size()));
  }
  if (pos_offsets_.back() != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: position offsets end at %llu but %zu positions",
        (unsigned long long)pos_offsets_.back(), positions_.size()));
  }
  if (total_occurrences_ != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: collection frequency %llu != %zu stored positions",
        (unsigned long long)total_occurrences_, positions_.size()));
  }
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i] >= num_docs) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu doc id %u out of range (%zu "
                    "documents)",
                    i, (unsigned)docs_[i], num_docs));
    }
    if (i > 0 && docs_[i - 1] >= docs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: doc ids not strictly increasing at entry %zu "
          "(%u >= %u)",
          i, (unsigned)docs_[i - 1], (unsigned)docs_[i]));
    }
    if (freqs_[i] == 0) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu has zero frequency", i));
    }
    if (pos_offsets_[i + 1] - pos_offsets_[i] != freqs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: entry %zu frequency %u != %llu positions", i,
          (unsigned)freqs_[i],
          (unsigned long long)(pos_offsets_[i + 1] - pos_offsets_[i])));
    }
    for (uint64_t j = pos_offsets_[i] + 1; j < pos_offsets_[i + 1]; ++j) {
      if (positions_[j - 1] >= positions_[j]) {
        return Status::Corruption(StrFormat(
            "posting list: entry %zu positions not strictly ascending "
            "(%u >= %u)",
            i, (unsigned)positions_[j - 1], (unsigned)positions_[j]));
      }
    }
  }
  return Status::OK();
}

size_t PostingList::Find(DocId doc) const {
  auto it = std::lower_bound(docs_.begin(), docs_.end(), doc);
  if (it == docs_.end() || *it != doc) return kNpos;
  return static_cast<size_t>(it - docs_.begin());
}

void PostingList::Cursor::SeekTo(DocId target) {
  // Galloping search from the current position: doubling probe then binary
  // search within the bracketed range. O(log gap) per seek.
  size_t n = list_->NumDocs();
  if (pos_ >= n || list_->doc(pos_) >= target) return;
  size_t step = 1;
  size_t lo = pos_;
  size_t hi = pos_ + step;
  while (hi < n && list_->doc(hi) < target) {
    lo = hi;
    step *= 2;
    hi = pos_ + step;
  }
  hi = std::min(hi, n);
  const auto& docs = *list_;
  // Binary search in (lo, hi].
  size_t left = lo + 1, right = hi;
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (docs.doc(mid) < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  pos_ = left;
}

void PostingListBuilder::AddOccurrence(DocId doc, uint32_t position) {
  if (list_.docs_.empty() || list_.docs_.back() != doc) {
    SQE_CHECK_MSG(list_.docs_.empty() || list_.docs_.back() < doc,
                  "documents must be indexed in ascending id order");
    if (list_.pos_offsets_.empty()) list_.pos_offsets_.push_back(0);
    list_.docs_.push_back(doc);
    list_.freqs_.push_back(0);
    list_.pos_offsets_.push_back(list_.positions_.size());
  }
  list_.freqs_.back()++;
  list_.positions_.push_back(position);
  list_.pos_offsets_.back() = list_.positions_.size();
  list_.total_occurrences_++;
}

PostingList PostingListBuilder::Build() && { return std::move(list_); }

}  // namespace sqe::index
