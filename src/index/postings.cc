#include "index/postings.h"

#include <algorithm>

#include "common/string_util.h"

namespace sqe::index {

Status PostingList::Validate(size_t num_docs) const {
  if (freqs_.size() != docs_.size()) {
    return Status::Corruption(
        StrFormat("posting list: %zu docs but %zu frequencies", docs_.size(),
                  freqs_.size()));
  }
  if (docs_.empty()) {
    if (!positions_.empty() || total_occurrences_ != 0) {
      return Status::Corruption(
          "posting list: empty doc list with positions or occurrences");
    }
    if (!block_max_frequencies_.empty() || !block_last_docs_.empty() ||
        max_frequency_ != 0) {
      return Status::Corruption(
          "posting list: empty doc list with block-max entries");
    }
    return Status::OK();
  }
  if (pos_offsets_.size() != docs_.size() + 1 || pos_offsets_[0] != 0) {
    return Status::Corruption(
        StrFormat("posting list: position offsets malformed (%zu entries for "
                  "%zu docs)",
                  pos_offsets_.size(), docs_.size()));
  }
  if (pos_offsets_.back() != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: position offsets end at %llu but %zu positions",
        (unsigned long long)pos_offsets_.back(), positions_.size()));
  }
  if (total_occurrences_ != positions_.size()) {
    return Status::Corruption(StrFormat(
        "posting list: collection frequency %llu != %zu stored positions",
        (unsigned long long)total_occurrences_, positions_.size()));
  }
  // Block-max tables. The scoring contract (a block's recorded maximum >=
  // every contained frequency) is what makes WAND skipping exact, so the
  // check recomputes the true maxima and demands equality — an inflated
  // maximum merely weakens pruning, but a deflated one would silently drop
  // top-k documents, and either way the snapshot writer never produces it.
  const size_t want_blocks = (docs_.size() + kBlockSize - 1) / kBlockSize;
  if (block_max_frequencies_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: %zu block-max entries for %zu postings (want %zu)",
        block_max_frequencies_.size(), docs_.size(), want_blocks));
  }
  // Block boundaries are equally load-bearing: a pruned scorer's shallow
  // advance binary-searches them, so a stale boundary would skip or rescan
  // the wrong doc-id span.
  if (block_last_docs_.size() != want_blocks) {
    return Status::Corruption(StrFormat(
        "posting list: %zu block-boundary entries for %zu postings "
        "(want %zu)",
        block_last_docs_.size(), docs_.size(), want_blocks));
  }
  uint32_t true_max = 0;
  for (size_t b = 0; b < want_blocks; ++b) {
    uint32_t block_max = 0;
    const size_t begin = b * kBlockSize;
    const size_t end = std::min(begin + kBlockSize, docs_.size());
    for (size_t i = begin; i < end; ++i) {
      block_max = std::max(block_max, freqs_[i]);
    }
    if (block_max_frequencies_[b] != block_max) {
      return Status::Corruption(StrFormat(
          "posting list: block %zu max frequency %u != %u contained maximum",
          b, (unsigned)block_max_frequencies_[b], (unsigned)block_max));
    }
    if (block_last_docs_[b] != docs_[end - 1]) {
      return Status::Corruption(StrFormat(
          "posting list: block %zu last doc %u != %u actual boundary", b,
          (unsigned)block_last_docs_[b], (unsigned)docs_[end - 1]));
    }
    true_max = std::max(true_max, block_max);
  }
  if (max_frequency_ != true_max) {
    return Status::Corruption(StrFormat(
        "posting list: term max frequency %u != %u actual maximum",
        (unsigned)max_frequency_, (unsigned)true_max));
  }
  for (size_t i = 0; i < docs_.size(); ++i) {
    if (docs_[i] >= num_docs) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu doc id %u out of range (%zu "
                    "documents)",
                    i, (unsigned)docs_[i], num_docs));
    }
    if (i > 0 && docs_[i - 1] >= docs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: doc ids not strictly increasing at entry %zu "
          "(%u >= %u)",
          i, (unsigned)docs_[i - 1], (unsigned)docs_[i]));
    }
    if (freqs_[i] == 0) {
      return Status::Corruption(
          StrFormat("posting list: entry %zu has zero frequency", i));
    }
    if (pos_offsets_[i + 1] - pos_offsets_[i] != freqs_[i]) {
      return Status::Corruption(StrFormat(
          "posting list: entry %zu frequency %u != %llu positions", i,
          (unsigned)freqs_[i],
          (unsigned long long)(pos_offsets_[i + 1] - pos_offsets_[i])));
    }
    for (uint64_t j = pos_offsets_[i] + 1; j < pos_offsets_[i + 1]; ++j) {
      if (positions_[j - 1] >= positions_[j]) {
        return Status::Corruption(StrFormat(
            "posting list: entry %zu positions not strictly ascending "
            "(%u >= %u)",
            i, (unsigned)positions_[j - 1], (unsigned)positions_[j]));
      }
    }
  }
  return Status::OK();
}

size_t PostingList::Find(DocId doc) const {
  std::span<const DocId> docs = docs_.span();
  auto it = std::lower_bound(docs.begin(), docs.end(), doc);
  if (it == docs.end() || *it != doc) return kNpos;
  return static_cast<size_t>(it - docs.begin());
}

void PostingList::Cursor::SeekTo(DocId target) {
  // Galloping search from the current position: doubling probe then binary
  // search within the bracketed range. O(log gap) per seek.
  size_t n = list_->NumDocs();
  if (pos_ >= n || list_->doc(pos_) >= target) return;
  size_t step = 1;
  size_t lo = pos_;
  size_t hi = pos_ + step;
  while (hi < n && list_->doc(hi) < target) {
    lo = hi;
    step *= 2;
    hi = pos_ + step;
  }
  hi = std::min(hi, n);
  const auto& docs = *list_;
  // Binary search in (lo, hi].
  size_t left = lo + 1, right = hi;
  while (left < right) {
    size_t mid = left + (right - left) / 2;
    if (docs.doc(mid) < target) {
      left = mid + 1;
    } else {
      right = mid;
    }
  }
  pos_ = left;
}

void PostingListBuilder::AddOccurrence(DocId doc, uint32_t position) {
  std::vector<DocId>& docs = list_.docs_.vec();
  std::vector<uint32_t>& freqs = list_.freqs_.vec();
  std::vector<uint64_t>& pos_offsets = list_.pos_offsets_.vec();
  std::vector<uint32_t>& positions = list_.positions_.vec();
  if (docs.empty() || docs.back() != doc) {
    SQE_CHECK_MSG(docs.empty() || docs.back() < doc,
                  "documents must be indexed in ascending id order");
    if (pos_offsets.empty()) pos_offsets.push_back(0);
    docs.push_back(doc);
    freqs.push_back(0);
    pos_offsets.push_back(positions.size());
  }
  freqs.back()++;
  positions.push_back(position);
  pos_offsets.back() = positions.size();
  list_.total_occurrences_++;
}

void PostingList::ComputeBlockMax() {
  max_frequency_ = 0;
  block_max_frequencies_.vec().assign(
      (docs_.size() + kBlockSize - 1) / kBlockSize, 0);
  for (size_t i = 0; i < freqs_.size(); ++i) {
    uint32_t& block_max = block_max_frequencies_.vec()[i / kBlockSize];
    block_max = std::max(block_max, freqs_[i]);
    max_frequency_ = std::max(max_frequency_, freqs_[i]);
  }
}

void PostingList::ComputeBlockBoundaries() {
  const size_t num_blocks = (docs_.size() + kBlockSize - 1) / kBlockSize;
  std::vector<DocId>& boundaries = block_last_docs_.vec();
  boundaries.resize(num_blocks);
  for (size_t b = 0; b < num_blocks; ++b) {
    boundaries[b] = docs_[std::min((b + 1) * kBlockSize, docs_.size()) - 1];
  }
}

PostingList PostingListBuilder::Build() && {
  list_.ComputeBlockMax();
  list_.ComputeBlockBoundaries();
  return std::move(list_);
}

}  // namespace sqe::index
