#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/string_util.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"

namespace sqe::index {

void InvertedIndex::BuildDocsByLength() {
  docs_by_length_.resize(doc_lengths_.size());
  std::iota(docs_by_length_.begin(), docs_by_length_.end(), 0);
  std::sort(docs_by_length_.begin(), docs_by_length_.end(),
            [this](DocId a, DocId b) {
              if (doc_lengths_[a] != doc_lengths_[b]) {
                return doc_lengths_[a] < doc_lengths_[b];
              }
              return a < b;
            });
}

Status InvertedIndex::Validate() const {
  SQE_RETURN_IF_ERROR(vocab_.Validate());

  const size_t num_docs = doc_lengths_.size();
  if (external_ids_.size() != num_docs) {
    return Status::Corruption(
        StrFormat("index: %zu external ids for %zu documents",
                  external_ids_.size(), num_docs));
  }
  if (postings_.size() != vocab_.size()) {
    return Status::Corruption(
        StrFormat("index: %zu posting lists for %zu vocabulary terms",
                  postings_.size(), vocab_.size()));
  }

  // Forward index shape: offsets sized N+1 (a single 0 for an empty index),
  // deltas equal to the stored doc lengths, terms within the vocabulary.
  if (doc_term_offsets_.empty()) {
    if (num_docs != 0 || !doc_terms_.empty()) {
      return Status::Corruption("index: forward offsets missing");
    }
  } else {
    if (doc_term_offsets_.size() != num_docs + 1 ||
        doc_term_offsets_.front() != 0 ||
        doc_term_offsets_.back() != doc_terms_.size()) {
      return Status::Corruption(StrFormat(
          "index: forward offsets malformed (%zu entries for %zu docs, "
          "%zu terms)",
          doc_term_offsets_.size(), num_docs, doc_terms_.size()));
    }
    for (size_t d = 0; d < num_docs; ++d) {
      if (doc_term_offsets_[d] > doc_term_offsets_[d + 1]) {
        return Status::Corruption(StrFormat(
            "index: forward offsets not monotone at doc %zu", d));
      }
      if (doc_term_offsets_[d + 1] - doc_term_offsets_[d] !=
          doc_lengths_[d]) {
        return Status::Corruption(StrFormat(
            "index: doc %zu length %u != %llu forward terms", d,
            (unsigned)doc_lengths_[d],
            (unsigned long long)(doc_term_offsets_[d + 1] -
                                 doc_term_offsets_[d])));
      }
    }
  }
  for (size_t i = 0; i < doc_terms_.size(); ++i) {
    if (doc_terms_[i] >= vocab_.size()) {
      return Status::Corruption(StrFormat(
          "index: forward term at position %zu out of vocabulary range", i));
    }
  }

  // Collection statistics.
  uint64_t length_sum = 0;
  for (uint32_t len : doc_lengths_) length_sum += len;
  if (total_tokens_ != length_sum) {
    return Status::Corruption(StrFormat(
        "index: total tokens %llu != %llu sum of doc lengths",
        (unsigned long long)total_tokens_, (unsigned long long)length_sum));
  }

  // Per-term postings, cross-checked against forward-index term counts so a
  // posting list cannot silently disagree with the documents it came from.
  std::vector<uint64_t> forward_counts(vocab_.size(), 0);
  for (text::TermId t : doc_terms_) forward_counts[t]++;
  for (size_t t = 0; t < postings_.size(); ++t) {
    Status s = postings_[t].Validate(num_docs);
    if (!s.ok()) {
      return Status::Corruption(StrFormat(
          "index: term %zu ('%s'): %s", t, vocab_.TermOf(t).c_str(),
          s.message().c_str()));
    }
    if (postings_[t].CollectionFrequency() != forward_counts[t]) {
      return Status::Corruption(StrFormat(
          "index: term %zu ('%s') collection frequency %llu != %llu forward "
          "occurrences",
          t, vocab_.TermOf(t).c_str(),
          (unsigned long long)postings_[t].CollectionFrequency(),
          (unsigned long long)forward_counts[t]));
    }
    // Positions must stay inside their document.
    for (size_t i = 0; i < postings_[t].NumDocs(); ++i) {
      std::span<const uint32_t> pos = postings_[t].positions(i);
      if (!pos.empty() && pos.back() >= doc_lengths_[postings_[t].doc(i)]) {
        return Status::Corruption(StrFormat(
            "index: term %zu ('%s') doc %u position %u beyond doc length %u",
            t, vocab_.TermOf(t).c_str(), (unsigned)postings_[t].doc(i),
            (unsigned)pos.back(),
            (unsigned)doc_lengths_[postings_[t].doc(i)]));
      }
    }
  }

  // Docs-by-length order: a permutation of [0, N) sorted by (length, id).
  if (docs_by_length_.size() != num_docs) {
    return Status::Corruption(
        StrFormat("index: docs-by-length order has %zu entries for %zu docs",
                  docs_by_length_.size(), num_docs));
  }
  for (size_t i = 0; i < docs_by_length_.size(); ++i) {
    if (docs_by_length_[i] >= num_docs) {
      return Status::Corruption(StrFormat(
          "index: docs-by-length entry %zu out of range", i));
    }
    if (i > 0) {
      DocId a = docs_by_length_[i - 1], b = docs_by_length_[i];
      if (doc_lengths_[a] > doc_lengths_[b] ||
          (doc_lengths_[a] == doc_lengths_[b] && a >= b)) {
        return Status::Corruption(StrFormat(
            "index: docs-by-length order violated at entry %zu", i));
      }
    }
  }
  return Status::OK();
}

DocId InvertedIndex::FindDocument(std::string_view external_id) const {
  // External-id lookup is rare (tests, examples); linear scan keeps the
  // resident structure small. Qrels use dense DocIds directly.
  for (size_t i = 0; i < external_ids_.size(); ++i) {
    if (external_ids_[i] == external_id) return static_cast<DocId>(i);
  }
  return kInvalidDoc;
}

double InvertedIndex::UnseenTermProbability() const {
  // Indri assigns unseen terms a frequency of 1/|C|.
  return total_tokens_ == 0 ? 1e-10
                            : 1.0 / static_cast<double>(total_tokens_);
}

double InvertedIndex::CollectionProbability(text::TermId t) const {
  if (t == text::kInvalidTermId || t >= postings_.size() ||
      total_tokens_ == 0) {
    return UnseenTermProbability();
  }
  uint64_t ctf = postings_[t].CollectionFrequency();
  if (ctf == 0) return UnseenTermProbability();
  return static_cast<double>(ctf) / static_cast<double>(total_tokens_);
}

DocId IndexBuilder::AddDocument(std::string external_id,
                                const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(index_.doc_lengths_.size());
  index_.external_ids_.push_back(std::move(external_id));
  index_.doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  if (index_.doc_term_offsets_.empty()) index_.doc_term_offsets_.push_back(0);
  uint32_t position = 0;
  for (const std::string& term : terms) {
    text::TermId t = index_.vocab_.GetOrAdd(term);
    if (t >= posting_builders_.size()) posting_builders_.resize(t + 1);
    posting_builders_[t].AddOccurrence(doc, position++);
    index_.doc_terms_.push_back(t);
  }
  index_.doc_term_offsets_.push_back(index_.doc_terms_.size());
  index_.total_tokens_ += terms.size();
  return doc;
}

InvertedIndex IndexBuilder::Build() && {
  if (index_.doc_term_offsets_.empty()) index_.doc_term_offsets_.push_back(0);
  index_.postings_.reserve(posting_builders_.size());
  for (PostingListBuilder& b : posting_builders_) {
    index_.postings_.push_back(std::move(b).Build());
  }
  // Vocabulary may contain terms with no postings entry only if resize
  // lagged; pad to vocab size for safe indexing.
  index_.postings_.resize(index_.vocab_.size());
  index_.BuildDocsByLength();
#ifndef NDEBUG
  // Debug builds re-prove the construction invariants the scoring path
  // relies on; release builds trust the builder (Validate guards untrusted
  // snapshots instead).
  Status validation = index_.Validate();
  SQE_CHECK_MSG(validation.ok(), validation.ToString().c_str());
#endif
  return std::move(index_);
}

std::string InvertedIndex::SerializeToString() const {
  io::SnapshotWriter writer(io::kIndexSnapshotMagic, io::kIndexSnapshotVersion);
  std::string block;

  // Vocabulary.
  io::PutVarint64(&block, vocab_.size());
  for (const std::string& term : vocab_.terms()) {
    io::PutLengthPrefixed(&block, term);
  }
  writer.AddBlock("vocabulary", std::move(block));
  block.clear();

  // Documents: external ids + lengths.
  io::PutVarint64(&block, doc_lengths_.size());
  for (size_t i = 0; i < doc_lengths_.size(); ++i) {
    io::PutLengthPrefixed(&block, external_ids_[i]);
    io::PutVarint32(&block, doc_lengths_[i]);
  }
  writer.AddBlock("documents", std::move(block));
  block.clear();

  // Forward index (delta-free; term ids are small already).
  io::PutVarint64(&block, doc_terms_.size());
  for (text::TermId t : doc_terms_) io::PutVarint32(&block, t);
  writer.AddBlock("forward", std::move(block));
  block.clear();

  // Postings: per term, [num_docs] then per doc [doc gap][freq][pos gaps].
  io::PutVarint64(&block, postings_.size());
  for (const PostingList& pl : postings_) {
    io::PutVarint64(&block, pl.NumDocs());
    DocId prev_doc = 0;
    for (size_t i = 0; i < pl.NumDocs(); ++i) {
      io::PutVarint32(&block, pl.doc(i) - prev_doc);
      prev_doc = pl.doc(i);
      io::PutVarint32(&block, pl.frequency(i));
      uint32_t prev_pos = 0;
      for (uint32_t p : pl.positions(i)) {
        io::PutVarint32(&block, p - prev_pos);
        prev_pos = p;
      }
    }
  }
  writer.AddBlock("postings", std::move(block));
  block.clear();

  // Block-max tables (v2): per term, the list-wide max frequency and one
  // max per kBlockSize-posting block. Derived data, persisted so the
  // snapshot is self-describing for pruned scoring (a future mmap path
  // reads them in place) — Validate() proves them equal to a recomputation
  // on every load, so a tampered table is Corruption, never a wrong top-k.
  io::PutVarint64(&block, postings_.size());
  for (const PostingList& pl : postings_) {
    io::PutVarint32(&block, pl.MaxFrequency());
    std::span<const uint32_t> block_max = pl.BlockMaxFrequencies();
    io::PutVarint64(&block, block_max.size());
    for (uint32_t m : block_max) io::PutVarint32(&block, m);
  }
  writer.AddBlock("blockmax", std::move(block));

  return writer.Serialize();
}

Status InvertedIndex::SaveToFile(const std::string& path) const {
  return io::WriteStringToFile(path, SerializeToString());
}

Result<InvertedIndex> InvertedIndex::FromSnapshotString(std::string image) {
  auto reader_or =
      io::SnapshotReader::Open(std::move(image), io::kIndexSnapshotMagic);
  if (!reader_or.ok()) return reader_or.status();
  const io::SnapshotReader& reader = reader_or.value();

  InvertedIndex index;

  // Vocabulary.
  SQE_ASSIGN_OR_RETURN(std::string_view vb, reader.GetBlock("vocabulary"));
  uint64_t vocab_size;
  if (!io::GetVarint64(&vb, &vocab_size)) {
    return Status::Corruption("index vocabulary truncated");
  }
  for (uint64_t i = 0; i < vocab_size; ++i) {
    std::string_view term;
    if (!io::GetLengthPrefixed(&vb, &term)) {
      return Status::Corruption("index vocabulary term truncated");
    }
    index.vocab_.GetOrAdd(term);
  }

  // Documents.
  SQE_ASSIGN_OR_RETURN(std::string_view db, reader.GetBlock("documents"));
  uint64_t num_docs;
  if (!io::GetVarint64(&db, &num_docs)) {
    return Status::Corruption("index documents truncated");
  }
  index.doc_lengths_.reserve(num_docs);
  index.external_ids_.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    std::string_view ext;
    uint32_t len;
    if (!io::GetLengthPrefixed(&db, &ext) || !io::GetVarint32(&db, &len)) {
      return Status::Corruption("index document entry truncated");
    }
    index.external_ids_.emplace_back(ext);
    index.doc_lengths_.push_back(len);
    index.total_tokens_ += len;
  }

  // Forward index.
  SQE_ASSIGN_OR_RETURN(std::string_view fb, reader.GetBlock("forward"));
  uint64_t num_fwd;
  if (!io::GetVarint64(&fb, &num_fwd)) {
    return Status::Corruption("index forward block truncated");
  }
  index.doc_terms_.reserve(num_fwd);
  for (uint64_t i = 0; i < num_fwd; ++i) {
    uint32_t t;
    if (!io::GetVarint32(&fb, &t)) {
      return Status::Corruption("index forward term truncated");
    }
    if (t >= vocab_size) {
      return Status::Corruption("forward term id out of range");
    }
    index.doc_terms_.push_back(t);
  }
  index.doc_term_offsets_.assign(1, 0);
  {
    uint64_t acc = 0;
    for (uint64_t i = 0; i < num_docs; ++i) {
      acc += index.doc_lengths_[i];
      index.doc_term_offsets_.push_back(acc);
    }
    if (acc != num_fwd) {
      return Status::Corruption("forward index size != sum of doc lengths");
    }
  }

  // Postings.
  SQE_ASSIGN_OR_RETURN(std::string_view pb, reader.GetBlock("postings"));
  uint64_t num_terms;
  if (!io::GetVarint64(&pb, &num_terms)) {
    return Status::Corruption("index postings truncated");
  }
  if (num_terms != vocab_size) {
    return Status::Corruption("postings/vocabulary size mismatch");
  }
  index.postings_.reserve(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    PostingListBuilder builder;
    uint64_t entries;
    if (!io::GetVarint64(&pb, &entries)) {
      return Status::Corruption("posting list header truncated");
    }
    DocId doc = 0;
    for (uint64_t i = 0; i < entries; ++i) {
      uint32_t gap, freq;
      if (!io::GetVarint32(&pb, &gap) || !io::GetVarint32(&pb, &freq)) {
        return Status::Corruption("posting entry truncated");
      }
      // Widen before adding: a hostile gap could wrap uint32 and smuggle a
      // descending doc id past the range check (which would then trip the
      // builder's ascending-order SQE_CHECK — an abort on untrusted input).
      uint64_t next_doc = static_cast<uint64_t>(doc) + gap;
      if (i > 0 && gap == 0) {
        return Status::Corruption("posting doc gap zero (duplicate doc id)");
      }
      if (next_doc >= num_docs) {
        return Status::Corruption("posting doc id out of range");
      }
      doc = static_cast<DocId>(next_doc);
      if (freq == 0) return Status::Corruption("posting frequency zero");
      uint32_t pos = 0;
      for (uint32_t j = 0; j < freq; ++j) {
        uint32_t pgap;
        if (!io::GetVarint32(&pb, &pgap)) {
          return Status::Corruption("posting position truncated");
        }
        pos += pgap;
        builder.AddOccurrence(doc, pos);
      }
    }
    index.postings_.push_back(std::move(builder).Build());
  }

  // Block-max tables. v2 images carry them and must adopt the stored bytes
  // (Validate below recomputes the true maxima and rejects any mismatch);
  // v1 images predate the block and keep the builder-computed tables.
  if (reader.version() >= 2) {
    SQE_ASSIGN_OR_RETURN(std::string_view bb, reader.GetBlock("blockmax"));
    uint64_t bm_terms;
    if (!io::GetVarint64(&bb, &bm_terms)) {
      return Status::Corruption("index block-max block truncated");
    }
    if (bm_terms != num_terms) {
      return Status::Corruption("block-max/postings term count mismatch");
    }
    for (uint64_t t = 0; t < bm_terms; ++t) {
      PostingList& pl = index.postings_[t];
      uint32_t max_freq;
      uint64_t num_blocks;
      if (!io::GetVarint32(&bb, &max_freq) ||
          !io::GetVarint64(&bb, &num_blocks)) {
        return Status::Corruption("block-max table header truncated");
      }
      const size_t want_blocks =
          (pl.NumDocs() + PostingList::kBlockSize - 1) /
          PostingList::kBlockSize;
      if (num_blocks != want_blocks) {
        return Status::Corruption("block-max table size mismatch");
      }
      pl.max_frequency_ = max_freq;
      pl.block_max_frequencies_.clear();
      pl.block_max_frequencies_.reserve(want_blocks);
      for (uint64_t b = 0; b < num_blocks; ++b) {
        uint32_t m;
        if (!io::GetVarint32(&bb, &m)) {
          return Status::Corruption("block-max entry truncated");
        }
        pl.block_max_frequencies_.push_back(m);
      }
    }
    if (!bb.empty()) {
      return Status::Corruption("index block-max block has trailing bytes");
    }
  }

  index.BuildDocsByLength();

  // Deep structural validation of the final object: catches payloads that
  // pass CRC and decode (e.g. a re-signed snapshot whose postings disagree
  // with the forward index) before they can skew scores or index out of
  // bounds under the release-mode SQE_DCHECKs.
  SQE_RETURN_IF_ERROR(index.Validate());
  return index;
}

Result<InvertedIndex> InvertedIndex::FromSnapshotFile(
    const std::string& path) {
  auto image = io::ReadFileToString(path);
  if (!image.ok()) return image.status();
  return FromSnapshotString(std::move(image).value());
}

}  // namespace sqe::index
