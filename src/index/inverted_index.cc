#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "io/coding.h"
#include "io/file.h"

namespace sqe::index {

namespace {
constexpr uint32_t kIndexSnapshotMagic = 0x53514958;  // "SQIX"
}  // namespace

void InvertedIndex::BuildDocsByLength() {
  docs_by_length_.resize(doc_lengths_.size());
  std::iota(docs_by_length_.begin(), docs_by_length_.end(), 0);
  std::sort(docs_by_length_.begin(), docs_by_length_.end(),
            [this](DocId a, DocId b) {
              if (doc_lengths_[a] != doc_lengths_[b]) {
                return doc_lengths_[a] < doc_lengths_[b];
              }
              return a < b;
            });
}

DocId InvertedIndex::FindDocument(std::string_view external_id) const {
  // External-id lookup is rare (tests, examples); linear scan keeps the
  // resident structure small. Qrels use dense DocIds directly.
  for (size_t i = 0; i < external_ids_.size(); ++i) {
    if (external_ids_[i] == external_id) return static_cast<DocId>(i);
  }
  return kInvalidDoc;
}

double InvertedIndex::UnseenTermProbability() const {
  // Indri assigns unseen terms a frequency of 1/|C|.
  return total_tokens_ == 0 ? 1e-10
                            : 1.0 / static_cast<double>(total_tokens_);
}

double InvertedIndex::CollectionProbability(text::TermId t) const {
  if (t == text::kInvalidTermId || t >= postings_.size() ||
      total_tokens_ == 0) {
    return UnseenTermProbability();
  }
  uint64_t ctf = postings_[t].CollectionFrequency();
  if (ctf == 0) return UnseenTermProbability();
  return static_cast<double>(ctf) / static_cast<double>(total_tokens_);
}

DocId IndexBuilder::AddDocument(std::string external_id,
                                const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(index_.doc_lengths_.size());
  index_.external_ids_.push_back(std::move(external_id));
  index_.doc_lengths_.push_back(static_cast<uint32_t>(terms.size()));
  if (index_.doc_term_offsets_.empty()) index_.doc_term_offsets_.push_back(0);
  uint32_t position = 0;
  for (const std::string& term : terms) {
    text::TermId t = index_.vocab_.GetOrAdd(term);
    if (t >= posting_builders_.size()) posting_builders_.resize(t + 1);
    posting_builders_[t].AddOccurrence(doc, position++);
    index_.doc_terms_.push_back(t);
  }
  index_.doc_term_offsets_.push_back(index_.doc_terms_.size());
  index_.total_tokens_ += terms.size();
  return doc;
}

InvertedIndex IndexBuilder::Build() && {
  if (index_.doc_term_offsets_.empty()) index_.doc_term_offsets_.push_back(0);
  index_.postings_.reserve(posting_builders_.size());
  for (PostingListBuilder& b : posting_builders_) {
    index_.postings_.push_back(std::move(b).Build());
  }
  // Vocabulary may contain terms with no postings entry only if resize
  // lagged; pad to vocab size for safe indexing.
  index_.postings_.resize(index_.vocab_.size());
  index_.BuildDocsByLength();
  return std::move(index_);
}

std::string InvertedIndex::SerializeToString() const {
  io::SnapshotWriter writer(kIndexSnapshotMagic);
  std::string block;

  // Vocabulary.
  io::PutVarint64(&block, vocab_.size());
  for (const std::string& term : vocab_.terms()) {
    io::PutLengthPrefixed(&block, term);
  }
  writer.AddBlock("vocabulary", std::move(block));
  block.clear();

  // Documents: external ids + lengths.
  io::PutVarint64(&block, doc_lengths_.size());
  for (size_t i = 0; i < doc_lengths_.size(); ++i) {
    io::PutLengthPrefixed(&block, external_ids_[i]);
    io::PutVarint32(&block, doc_lengths_[i]);
  }
  writer.AddBlock("documents", std::move(block));
  block.clear();

  // Forward index (delta-free; term ids are small already).
  io::PutVarint64(&block, doc_terms_.size());
  for (text::TermId t : doc_terms_) io::PutVarint32(&block, t);
  writer.AddBlock("forward", std::move(block));
  block.clear();

  // Postings: per term, [num_docs] then per doc [doc gap][freq][pos gaps].
  io::PutVarint64(&block, postings_.size());
  for (const PostingList& pl : postings_) {
    io::PutVarint64(&block, pl.NumDocs());
    DocId prev_doc = 0;
    for (size_t i = 0; i < pl.NumDocs(); ++i) {
      io::PutVarint32(&block, pl.doc(i) - prev_doc);
      prev_doc = pl.doc(i);
      io::PutVarint32(&block, pl.frequency(i));
      uint32_t prev_pos = 0;
      for (uint32_t p : pl.positions(i)) {
        io::PutVarint32(&block, p - prev_pos);
        prev_pos = p;
      }
    }
  }
  writer.AddBlock("postings", std::move(block));

  return writer.Serialize();
}

Status InvertedIndex::SaveToFile(const std::string& path) const {
  return io::WriteStringToFile(path, SerializeToString());
}

Result<InvertedIndex> InvertedIndex::FromSnapshotString(std::string image) {
  auto reader_or =
      io::SnapshotReader::Open(std::move(image), kIndexSnapshotMagic);
  if (!reader_or.ok()) return reader_or.status();
  const io::SnapshotReader& reader = reader_or.value();

  InvertedIndex index;

  // Vocabulary.
  SQE_ASSIGN_OR_RETURN(std::string_view vb, reader.GetBlock("vocabulary"));
  uint64_t vocab_size;
  if (!io::GetVarint64(&vb, &vocab_size)) {
    return Status::Corruption("index vocabulary truncated");
  }
  for (uint64_t i = 0; i < vocab_size; ++i) {
    std::string_view term;
    if (!io::GetLengthPrefixed(&vb, &term)) {
      return Status::Corruption("index vocabulary term truncated");
    }
    index.vocab_.GetOrAdd(term);
  }

  // Documents.
  SQE_ASSIGN_OR_RETURN(std::string_view db, reader.GetBlock("documents"));
  uint64_t num_docs;
  if (!io::GetVarint64(&db, &num_docs)) {
    return Status::Corruption("index documents truncated");
  }
  index.doc_lengths_.reserve(num_docs);
  index.external_ids_.reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    std::string_view ext;
    uint32_t len;
    if (!io::GetLengthPrefixed(&db, &ext) || !io::GetVarint32(&db, &len)) {
      return Status::Corruption("index document entry truncated");
    }
    index.external_ids_.emplace_back(ext);
    index.doc_lengths_.push_back(len);
    index.total_tokens_ += len;
  }

  // Forward index.
  SQE_ASSIGN_OR_RETURN(std::string_view fb, reader.GetBlock("forward"));
  uint64_t num_fwd;
  if (!io::GetVarint64(&fb, &num_fwd)) {
    return Status::Corruption("index forward block truncated");
  }
  index.doc_terms_.reserve(num_fwd);
  for (uint64_t i = 0; i < num_fwd; ++i) {
    uint32_t t;
    if (!io::GetVarint32(&fb, &t)) {
      return Status::Corruption("index forward term truncated");
    }
    if (t >= vocab_size) {
      return Status::Corruption("forward term id out of range");
    }
    index.doc_terms_.push_back(t);
  }
  index.doc_term_offsets_.assign(1, 0);
  {
    uint64_t acc = 0;
    for (uint64_t i = 0; i < num_docs; ++i) {
      acc += index.doc_lengths_[i];
      index.doc_term_offsets_.push_back(acc);
    }
    if (acc != num_fwd) {
      return Status::Corruption("forward index size != sum of doc lengths");
    }
  }

  // Postings.
  SQE_ASSIGN_OR_RETURN(std::string_view pb, reader.GetBlock("postings"));
  uint64_t num_terms;
  if (!io::GetVarint64(&pb, &num_terms)) {
    return Status::Corruption("index postings truncated");
  }
  if (num_terms != vocab_size) {
    return Status::Corruption("postings/vocabulary size mismatch");
  }
  index.postings_.reserve(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    PostingListBuilder builder;
    uint64_t entries;
    if (!io::GetVarint64(&pb, &entries)) {
      return Status::Corruption("posting list header truncated");
    }
    DocId doc = 0;
    for (uint64_t i = 0; i < entries; ++i) {
      uint32_t gap, freq;
      if (!io::GetVarint32(&pb, &gap) || !io::GetVarint32(&pb, &freq)) {
        return Status::Corruption("posting entry truncated");
      }
      doc += gap;
      if (doc >= num_docs) {
        return Status::Corruption("posting doc id out of range");
      }
      if (freq == 0) return Status::Corruption("posting frequency zero");
      uint32_t pos = 0;
      for (uint32_t j = 0; j < freq; ++j) {
        uint32_t pgap;
        if (!io::GetVarint32(&pb, &pgap)) {
          return Status::Corruption("posting position truncated");
        }
        pos += pgap;
        builder.AddOccurrence(doc, pos);
      }
    }
    index.postings_.push_back(std::move(builder).Build());
  }

  index.BuildDocsByLength();
  return index;
}

Result<InvertedIndex> InvertedIndex::FromSnapshotFile(
    const std::string& path) {
  auto image = io::ReadFileToString(path);
  if (!image.ok()) return image.status();
  return FromSnapshotString(std::move(image).value());
}

}  // namespace sqe::index
