#include "index/inverted_index.h"

#include <algorithm>
#include <numeric>

#include "common/string_util.h"
#include "index/postings_codec.h"
#include "io/coding.h"

namespace sqe::index {

void InvertedIndex::BuildDocsByLength() {
  std::vector<DocId>& order = docs_by_length_.vec();
  order.resize(doc_lengths_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](DocId a, DocId b) {
    if (doc_lengths_[a] != doc_lengths_[b]) {
      return doc_lengths_[a] < doc_lengths_[b];
    }
    return a < b;
  });
}

Status InvertedIndex::Validate() const {
  SQE_RETURN_IF_ERROR(vocab_.Validate());

  const size_t num_docs = doc_lengths_.size();
  if (external_ids_.size() != num_docs) {
    return Status::Corruption(
        StrFormat("index: %zu external ids for %zu documents",
                  external_ids_.size(), num_docs));
  }
  if (postings_.size() != vocab_.size()) {
    return Status::Corruption(
        StrFormat("index: %zu posting lists for %zu vocabulary terms",
                  postings_.size(), vocab_.size()));
  }

  // Forward index shape: offsets sized N+1 (a single 0 for an empty index),
  // deltas equal to the stored doc lengths, terms within the vocabulary.
  if (doc_term_offsets_.empty()) {
    if (num_docs != 0 || !doc_terms_.empty()) {
      return Status::Corruption("index: forward offsets missing");
    }
  } else {
    if (doc_term_offsets_.size() != num_docs + 1 ||
        doc_term_offsets_[0] != 0 ||
        doc_term_offsets_.back() != doc_terms_.size()) {
      return Status::Corruption(StrFormat(
          "index: forward offsets malformed (%zu entries for %zu docs, "
          "%zu terms)",
          doc_term_offsets_.size(), num_docs, doc_terms_.size()));
    }
    for (size_t d = 0; d < num_docs; ++d) {
      if (doc_term_offsets_[d] > doc_term_offsets_[d + 1]) {
        return Status::Corruption(StrFormat(
            "index: forward offsets not monotone at doc %zu", d));
      }
      if (doc_term_offsets_[d + 1] - doc_term_offsets_[d] !=
          doc_lengths_[d]) {
        return Status::Corruption(StrFormat(
            "index: doc %zu length %u != %llu forward terms", d,
            (unsigned)doc_lengths_[d],
            (unsigned long long)(doc_term_offsets_[d + 1] -
                                 doc_term_offsets_[d])));
      }
    }
  }
  for (size_t i = 0; i < doc_terms_.size(); ++i) {
    if (doc_terms_[i] >= vocab_.size()) {
      return Status::Corruption(StrFormat(
          "index: forward term at position %zu out of vocabulary range", i));
    }
  }

  // Collection statistics.
  uint64_t length_sum = 0;
  for (uint32_t len : doc_lengths_) length_sum += len;
  if (total_tokens_ != length_sum) {
    return Status::Corruption(StrFormat(
        "index: total tokens %llu != %llu sum of doc lengths",
        (unsigned long long)total_tokens_, (unsigned long long)length_sum));
  }

  // Per-term postings, cross-checked against forward-index term counts so a
  // posting list cannot silently disagree with the documents it came from.
  std::vector<uint64_t> forward_counts(vocab_.size(), 0);
  for (text::TermId t : doc_terms_) forward_counts[t]++;
  for (size_t t = 0; t < postings_.size(); ++t) {
    Status s = postings_[t].Validate(num_docs);
    if (!s.ok()) {
      return Status::Corruption(StrFormat(
          "index: term %zu ('%s'): %s", t,
          std::string(vocab_.TermOf(t)).c_str(), s.message().c_str()));
    }
    if (postings_[t].CollectionFrequency() != forward_counts[t]) {
      return Status::Corruption(StrFormat(
          "index: term %zu ('%s') collection frequency %llu != %llu forward "
          "occurrences",
          t, std::string(vocab_.TermOf(t)).c_str(),
          (unsigned long long)postings_[t].CollectionFrequency(),
          (unsigned long long)forward_counts[t]));
    }
    // Positions must stay inside their document. Packed lists expose docs
    // and frequencies only block-wise, so walk them block by block with a
    // running cursor into the shared positions array (the per-list
    // Validate above already proved the position bases and counts line
    // up, so the cursor arithmetic here is in bounds).
    if (!postings_[t].packed()) {
      for (size_t i = 0; i < postings_[t].NumDocs(); ++i) {
        std::span<const uint32_t> pos = postings_[t].positions(i);
        if (!pos.empty() && pos.back() >= doc_lengths_[postings_[t].doc(i)]) {
          return Status::Corruption(StrFormat(
              "index: term %zu ('%s') doc %u position %u beyond doc length "
              "%u",
              t, std::string(vocab_.TermOf(t)).c_str(),
              (unsigned)postings_[t].doc(i), (unsigned)pos.back(),
              (unsigned)doc_lengths_[postings_[t].doc(i)]));
        }
      }
    } else {
      const PostingList& pl = postings_[t];
      std::span<const uint32_t> allpos = pl.all_positions();
      uint32_t dbuf[PostingList::kBlockSize];
      uint32_t fbuf[PostingList::kBlockSize];
      uint64_t pcur = 0;
      for (size_t b = 0; b < pl.NumBlocks(); ++b) {
        pl.DecodeBlockInto(b, dbuf, fbuf);
        const size_t len = pl.BlockLength(b);
        for (size_t i = 0; i < len; ++i) {
          const uint32_t last_pos = allpos[pcur + fbuf[i] - 1];
          pcur += fbuf[i];
          if (last_pos >= doc_lengths_[dbuf[i]]) {
            return Status::Corruption(StrFormat(
                "index: term %zu ('%s') doc %u position %u beyond doc "
                "length %u",
                t, std::string(vocab_.TermOf(t)).c_str(), (unsigned)dbuf[i],
                (unsigned)last_pos, (unsigned)doc_lengths_[dbuf[i]]));
          }
        }
      }
    }
  }

  // Docs-by-length order: a permutation of [0, N) sorted by (length, id).
  if (docs_by_length_.size() != num_docs) {
    return Status::Corruption(
        StrFormat("index: docs-by-length order has %zu entries for %zu docs",
                  docs_by_length_.size(), num_docs));
  }
  for (size_t i = 0; i < docs_by_length_.size(); ++i) {
    if (docs_by_length_[i] >= num_docs) {
      return Status::Corruption(StrFormat(
          "index: docs-by-length entry %zu out of range", i));
    }
    if (i > 0) {
      DocId a = docs_by_length_[i - 1], b = docs_by_length_[i];
      if (doc_lengths_[a] > doc_lengths_[b] ||
          (doc_lengths_[a] == doc_lengths_[b] && a >= b)) {
        return Status::Corruption(StrFormat(
            "index: docs-by-length order violated at entry %zu", i));
      }
    }
  }
  return Status::OK();
}

DocId InvertedIndex::FindDocument(std::string_view external_id) const {
  // External-id lookup is rare (tests, examples); linear scan keeps the
  // resident structure small. Qrels use dense DocIds directly.
  for (size_t i = 0; i < external_ids_.size(); ++i) {
    if (external_ids_[i] == external_id) return static_cast<DocId>(i);
  }
  return kInvalidDoc;
}

double InvertedIndex::UnseenTermProbability() const {
  // Indri assigns unseen terms a frequency of 1/|C|.
  return total_tokens_ == 0 ? 1e-10
                            : 1.0 / static_cast<double>(total_tokens_);
}

double InvertedIndex::CollectionProbability(text::TermId t) const {
  if (t == text::kInvalidTermId || t >= postings_.size() ||
      total_tokens_ == 0) {
    return UnseenTermProbability();
  }
  uint64_t ctf = postings_[t].CollectionFrequency();
  if (ctf == 0) return UnseenTermProbability();
  return static_cast<double>(ctf) / static_cast<double>(total_tokens_);
}

DocId IndexBuilder::AddDocument(std::string external_id,
                                const std::vector<std::string>& terms) {
  DocId doc = static_cast<DocId>(index_.doc_lengths_.size());
  index_.external_ids_.owned().push_back(std::move(external_id));
  index_.doc_lengths_.vec().push_back(static_cast<uint32_t>(terms.size()));
  if (index_.doc_term_offsets_.empty()) {
    index_.doc_term_offsets_.vec().push_back(0);
  }
  uint32_t position = 0;
  for (const std::string& term : terms) {
    text::TermId t = index_.vocab_.GetOrAdd(term);
    if (t >= posting_builders_.size()) posting_builders_.resize(t + 1);
    posting_builders_[t].AddOccurrence(doc, position++);
    index_.doc_terms_.vec().push_back(t);
  }
  index_.doc_term_offsets_.vec().push_back(index_.doc_terms_.size());
  index_.total_tokens_ += terms.size();
  return doc;
}

InvertedIndex IndexBuilder::Build() && {
  if (index_.doc_term_offsets_.empty()) {
    index_.doc_term_offsets_.vec().push_back(0);
  }
  index_.postings_.reserve(posting_builders_.size());
  for (PostingListBuilder& b : posting_builders_) {
    index_.postings_.push_back(std::move(b).Build());
  }
  // Vocabulary may contain terms with no postings entry only if resize
  // lagged; pad to vocab size for safe indexing.
  index_.postings_.resize(index_.vocab_.size());
  index_.BuildDocsByLength();
#ifndef NDEBUG
  // Debug builds re-prove the construction invariants the scoring path
  // relies on; release builds trust the builder (Validate guards untrusted
  // snapshots instead).
  Status validation = index_.Validate();
  SQE_CHECK_MSG(validation.ok(), validation.ToString().c_str());
#endif
  return std::move(index_);
}

namespace {
// v3 block helpers: raw little-endian arrays at aligned offsets.
template <typename T>
void AddArrayBlock(io::SnapshotWriter* writer, std::string_view name,
                   std::span<const T> values) {
  std::string block;
  io::AppendArray(&block, values);
  writer->AddBlock(name, std::move(block));
}

// A concatenation index table: entry t is where term t's slice begins in
// the flattened array, entry V is the array's total length.
Status CheckIndexTable(std::string_view name,
                       std::span<const uint64_t> table, uint64_t total) {
  if (table.empty() || table.front() != 0) {
    return Status::Corruption(StrFormat("%s: index table must start at 0",
                                        std::string(name).c_str()));
  }
  for (size_t i = 0; i + 1 < table.size(); ++i) {
    if (table[i] > table[i + 1]) {
      return Status::Corruption(
          StrFormat("%s: index table not monotone at term %zu",
                    std::string(name).c_str(), i));
    }
  }
  if (table.back() != total) {
    return Status::Corruption(StrFormat(
        "%s: index table ends at %llu but array has %llu elements",
        std::string(name).c_str(), (unsigned long long)table.back(),
        (unsigned long long)total));
  }
  return Status::OK();
}
}  // namespace

std::string InvertedIndex::SerializeToString(uint32_t version) const {
  SQE_CHECK_MSG(version == 1 || version == 2 ||
                    (version >= io::kAlignedSnapshotVersion &&
                     version <= io::kIndexSnapshotVersion),
                "unsupported index snapshot version");
  io::SnapshotWriter writer(io::kIndexSnapshotMagic, version);

  if (version < io::kAlignedSnapshotVersion) {
    std::string block;

    // Vocabulary.
    io::PutVarint64(&block, vocab_.size());
    for (size_t t = 0; t < vocab_.size(); ++t) {
      io::PutLengthPrefixed(&block, vocab_.TermOf(static_cast<text::TermId>(t)));
    }
    writer.AddBlock("vocabulary", std::move(block));
    block.clear();

    // Documents: external ids + lengths.
    io::PutVarint64(&block, doc_lengths_.size());
    for (size_t i = 0; i < doc_lengths_.size(); ++i) {
      io::PutLengthPrefixed(&block, external_ids_[i]);
      io::PutVarint32(&block, doc_lengths_[i]);
    }
    writer.AddBlock("documents", std::move(block));
    block.clear();

    // Forward index (delta-free; term ids are small already).
    io::PutVarint64(&block, doc_terms_.size());
    for (text::TermId t : doc_terms_) io::PutVarint32(&block, t);
    writer.AddBlock("forward", std::move(block));
    block.clear();

    // Postings: per term, [num_docs] then per doc [doc gap][freq][pos gaps].
    // Materialize() works in both storage modes, and in either one the
    // positions array is exactly the frequency-sized slices concatenated in
    // posting order, so one running cursor replaces per-entry offsets.
    io::PutVarint64(&block, postings_.size());
    std::vector<DocId> mdocs;
    std::vector<uint32_t> mfreqs;
    for (const PostingList& pl : postings_) {
      io::PutVarint64(&block, pl.NumDocs());
      pl.Materialize(&mdocs, &mfreqs);
      std::span<const uint32_t> allpos = pl.all_positions();
      uint64_t pcur = 0;
      DocId prev_doc = 0;
      for (size_t i = 0; i < mdocs.size(); ++i) {
        io::PutVarint32(&block, mdocs[i] - prev_doc);
        prev_doc = mdocs[i];
        io::PutVarint32(&block, mfreqs[i]);
        uint32_t prev_pos = 0;
        for (uint32_t j = 0; j < mfreqs[i]; ++j) {
          const uint32_t p = allpos[pcur++];
          io::PutVarint32(&block, p - prev_pos);
          prev_pos = p;
        }
      }
    }
    writer.AddBlock("postings", std::move(block));
    block.clear();

    if (version >= 2) {
      // Block-max tables (v2): per term, the list-wide max frequency and
      // one max per kBlockSize-posting block. Derived data, persisted so
      // the snapshot is self-describing for pruned scoring — Validate()
      // proves them equal to a recomputation on every load, so a tampered
      // table is Corruption, never a wrong top-k.
      io::PutVarint64(&block, postings_.size());
      for (const PostingList& pl : postings_) {
        io::PutVarint32(&block, pl.MaxFrequency());
        std::span<const uint32_t> block_max = pl.BlockMaxFrequencies();
        io::PutVarint64(&block, block_max.size());
        for (uint32_t m : block_max) io::PutVarint32(&block, m);
      }
      writer.AddBlock("blockmax", std::move(block));
    }
    return writer.Serialize();
  }

  // Aligned (v3) layout: every array raw at an aligned offset, every
  // derived structure persisted so a load decodes and rebuilds nothing.
  // Per-term variable-length data is flattened into one array per kind
  // plus a u64 concatenation index table sized V+1.
  const uint64_t meta[3] = {doc_lengths_.size(), vocab_.size(),
                            total_tokens_};
  AddArrayBlock<uint64_t>(&writer, "meta", meta);

  // Document store.
  {
    std::vector<uint64_t> offsets;
    offsets.reserve(external_ids_.size() + 1);
    offsets.push_back(0);
    std::string blob;
    for (size_t i = 0; i < external_ids_.size(); ++i) {
      blob.append(external_ids_[i]);
      offsets.push_back(blob.size());
    }
    AddArrayBlock<uint64_t>(&writer, "docs.extid_offsets", offsets);
    writer.AddBlock("docs.extid_blob", std::move(blob));
  }
  AddArrayBlock(&writer, "docs.lengths", doc_lengths_.span());
  AddArrayBlock(&writer, "docs.by_length", docs_by_length_.span());

  // Forward index.
  AddArrayBlock(&writer, "fwd.offsets", doc_term_offsets_.span());
  AddArrayBlock(&writer, "fwd.terms", doc_terms_.span());

  // Vocabulary: string column plus the term-sorted id permutation the
  // mapped lookup binary-searches (the persistable form of the hash map).
  {
    std::vector<uint64_t> offsets;
    offsets.reserve(vocab_.size() + 1);
    offsets.push_back(0);
    std::string blob;
    for (size_t t = 0; t < vocab_.size(); ++t) {
      blob.append(vocab_.TermOf(static_cast<text::TermId>(t)));
      offsets.push_back(blob.size());
    }
    AddArrayBlock<uint64_t>(&writer, "vocab.offsets", offsets);
    writer.AddBlock("vocab.blob", std::move(blob));
    AddArrayBlock<text::TermId>(&writer, "vocab.order", vocab_.SortedOrder());
  }

  // Postings, flattened. Shared between v3 and v4: the positions array,
  // the block-max/block-last tables, per-term stats, and the u64
  // concatenation index tables. v3 stores raw docs/freqs/pos_offsets
  // arrays; v4 stores the bit-packed block blob plus two tiny per-block
  // tables instead (DESIGN.md §6d).
  {
    const size_t num_terms = postings_.size();
    std::vector<uint64_t> doc_index, positions_index, block_index;
    doc_index.reserve(num_terms + 1);
    positions_index.reserve(num_terms + 1);
    block_index.reserve(num_terms + 1);
    doc_index.push_back(0);
    positions_index.push_back(0);
    block_index.push_back(0);
    std::vector<uint32_t> positions;
    std::vector<uint32_t> block_max;
    std::vector<DocId> block_last;
    std::vector<uint64_t> ctf;
    std::vector<uint32_t> maxfreq;
    ctf.reserve(num_terms);
    maxfreq.reserve(num_terms);
    uint64_t num_postings = 0;
    std::vector<DocId> mdocs;
    std::vector<uint32_t> mfreqs;

    if (version >= io::kPackedPostingsSnapshotVersion) {
      // v4: per term either pass the already-packed blocks through
      // verbatim or encode the raw arrays block by block. Per-block byte
      // offsets stay relative to the term's slice; position bases stay
      // relative to the term's positions slice — both survive slicing at
      // load unchanged.
      std::string packed_blob;
      std::vector<uint64_t> packed_index;
      packed_index.reserve(num_terms + 1);
      packed_index.push_back(0);
      std::vector<uint32_t> blockoffs;
      std::vector<uint64_t> posbase;
      for (const PostingList& pl : postings_) {
        if (pl.packed()) {
          std::span<const uint8_t> bytes = pl.packed_bytes();
          packed_blob.append(reinterpret_cast<const char*>(bytes.data()),
                             bytes.size());
          std::span<const uint32_t> bo = pl.PackedBlockOffsets();
          blockoffs.insert(blockoffs.end(), bo.begin(), bo.end());
          std::span<const uint64_t> pb = pl.BlockPositionBases();
          posbase.insert(posbase.end(), pb.begin(), pb.end());
        } else if (pl.NumDocs() > 0) {
          const size_t term_start = packed_blob.size();
          std::span<const DocId> d = pl.docs();
          std::span<const uint32_t> f = pl.frequencies();
          for (size_t b = 0; b < pl.NumBlocks(); ++b) {
            const size_t begin = b * PostingList::kBlockSize;
            blockoffs.push_back(
                static_cast<uint32_t>(packed_blob.size() - term_start));
            posbase.push_back(pl.pos_offsets_[begin]);
            codec::EncodeBlock(d.data() + begin, f.data() + begin,
                               pl.BlockLength(b),
                               b == 0 ? 0 : d[begin - 1] + 1, &packed_blob);
          }
        }
        std::span<const uint32_t> p = pl.all_positions();
        positions.insert(positions.end(), p.begin(), p.end());
        std::span<const uint32_t> bm = pl.BlockMaxFrequencies();
        block_max.insert(block_max.end(), bm.begin(), bm.end());
        std::span<const DocId> bl = pl.BlockLastDocs();
        block_last.insert(block_last.end(), bl.begin(), bl.end());
        num_postings += pl.NumDocs();
        doc_index.push_back(num_postings);
        packed_index.push_back(packed_blob.size());
        positions_index.push_back(positions.size());
        block_index.push_back(block_max.size());
        ctf.push_back(pl.CollectionFrequency());
        maxfreq.push_back(pl.MaxFrequency());
      }
      AddArrayBlock<uint64_t>(&writer, "post.doc_index", doc_index);
      writer.AddBlock("post.packed", std::move(packed_blob));
      AddArrayBlock<uint64_t>(&writer, "post.packed_index", packed_index);
      AddArrayBlock<uint32_t>(&writer, "post.blockoffs", blockoffs);
      AddArrayBlock<uint64_t>(&writer, "post.block_posbase", posbase);
      AddArrayBlock<uint64_t>(&writer, "post.positions_index",
                              positions_index);
      AddArrayBlock<uint32_t>(&writer, "post.positions", positions);
      AddArrayBlock<uint64_t>(&writer, "post.block_index", block_index);
      AddArrayBlock<uint32_t>(&writer, "post.block_max", block_max);
      AddArrayBlock<DocId>(&writer, "post.block_last", block_last);
      AddArrayBlock<uint64_t>(&writer, "post.ctf", ctf);
      AddArrayBlock<uint32_t>(&writer, "post.maxfreq", maxfreq);
      return writer.Serialize();
    }

    // v3: raw arrays. Position offsets stay relative per term (each slice
    // starts at 0), so a loaded slice works with positions() unchanged.
    // Packed sources are materialized and their offsets rebuilt as the
    // frequency prefix sums they encode.
    std::vector<uint64_t> posidx_index;
    posidx_index.reserve(num_terms + 1);
    posidx_index.push_back(0);
    std::vector<DocId> docs;
    std::vector<uint32_t> freqs;
    std::vector<uint64_t> pos_offsets;
    for (const PostingList& pl : postings_) {
      if (!pl.packed()) {
        std::span<const DocId> d = pl.docs();
        docs.insert(docs.end(), d.begin(), d.end());
        std::span<const uint32_t> f = pl.frequencies();
        freqs.insert(freqs.end(), f.begin(), f.end());
        std::span<const uint64_t> po = pl.pos_offsets_.span();
        pos_offsets.insert(pos_offsets.end(), po.begin(), po.end());
      } else {
        pl.Materialize(&mdocs, &mfreqs);
        docs.insert(docs.end(), mdocs.begin(), mdocs.end());
        freqs.insert(freqs.end(), mfreqs.begin(), mfreqs.end());
        pos_offsets.push_back(0);
        uint64_t acc = 0;
        for (uint32_t f : mfreqs) {
          acc += f;
          pos_offsets.push_back(acc);
        }
      }
      std::span<const uint32_t> p = pl.all_positions();
      positions.insert(positions.end(), p.begin(), p.end());
      std::span<const uint32_t> bm = pl.BlockMaxFrequencies();
      block_max.insert(block_max.end(), bm.begin(), bm.end());
      std::span<const DocId> bl = pl.BlockLastDocs();
      block_last.insert(block_last.end(), bl.begin(), bl.end());
      doc_index.push_back(docs.size());
      posidx_index.push_back(pos_offsets.size());
      positions_index.push_back(positions.size());
      block_index.push_back(block_max.size());
      ctf.push_back(pl.CollectionFrequency());
      maxfreq.push_back(pl.MaxFrequency());
    }
    AddArrayBlock<uint64_t>(&writer, "post.doc_index", doc_index);
    AddArrayBlock<DocId>(&writer, "post.docs", docs);
    AddArrayBlock<uint32_t>(&writer, "post.freqs", freqs);
    AddArrayBlock<uint64_t>(&writer, "post.posidx_index", posidx_index);
    AddArrayBlock<uint64_t>(&writer, "post.pos_offsets", pos_offsets);
    AddArrayBlock<uint64_t>(&writer, "post.positions_index", positions_index);
    AddArrayBlock<uint32_t>(&writer, "post.positions", positions);
    AddArrayBlock<uint64_t>(&writer, "post.block_index", block_index);
    AddArrayBlock<uint32_t>(&writer, "post.block_max", block_max);
    AddArrayBlock<DocId>(&writer, "post.block_last", block_last);
    AddArrayBlock<uint64_t>(&writer, "post.ctf", ctf);
    AddArrayBlock<uint32_t>(&writer, "post.maxfreq", maxfreq);
  }
  return writer.Serialize();
}

Status InvertedIndex::SaveToFile(const std::string& path,
                                 uint32_t version) const {
  return io::WriteStringToFile(path, SerializeToString(version));
}

InvertedIndex::PostingsStats InvertedIndex::ComputePostingsStats() const {
  PostingsStats stats;
  std::vector<DocId> mdocs;
  std::vector<uint32_t> mfreqs;
  std::string scratch;
  for (const PostingList& pl : postings_) {
    const size_t n = pl.NumDocs();
    if (n == 0) continue;
    const size_t nb = pl.NumBlocks();
    stats.num_postings += n;
    stats.num_blocks += nb;
    // v3 region: docs (u32) + freqs (u32) + pos_offsets (u64, n+1).
    stats.raw_bytes += uint64_t{n} * (sizeof(DocId) + sizeof(uint32_t)) +
                       uint64_t{n + 1} * sizeof(uint64_t);
    // v4 region: packed blob + per-block byte offset (u32) and position
    // base (u64) tables. Index tables sized per term exist in both layouts
    // and are excluded from both sides.
    stats.packed_bytes += nb * (sizeof(uint32_t) + sizeof(uint64_t));
    if (pl.packed()) {
      stats.packed_bytes += pl.packed_bytes().size();
      for (size_t b = 0; b < nb; ++b) {
        std::span<const uint8_t> blk = pl.PackedBlock(b);
        stats.doc_bits_blocks[blk[0]]++;
        stats.freq_bits_blocks[blk[1]]++;
      }
    } else {
      pl.Materialize(&mdocs, &mfreqs);
      for (size_t b = 0; b < nb; ++b) {
        const size_t begin = b * PostingList::kBlockSize;
        scratch.clear();
        codec::EncodeBlock(mdocs.data() + begin, mfreqs.data() + begin,
                           pl.BlockLength(b),
                           b == 0 ? 0 : mdocs[begin - 1] + 1, &scratch);
        stats.packed_bytes += scratch.size();
        stats.doc_bits_blocks[static_cast<uint8_t>(scratch[0])]++;
        stats.freq_bits_blocks[static_cast<uint8_t>(scratch[1])]++;
      }
    }
  }
  return stats;
}

Result<InvertedIndex> InvertedIndex::LoadLegacy(
    const io::SnapshotReader& reader) {
  InvertedIndex index;

  // Vocabulary.
  SQE_ASSIGN_OR_RETURN(std::string_view vb, reader.GetBlock("vocabulary"));
  uint64_t vocab_size;
  if (!io::GetVarint64(&vb, &vocab_size)) {
    return Status::Corruption("index vocabulary truncated");
  }
  for (uint64_t i = 0; i < vocab_size; ++i) {
    std::string_view term;
    if (!io::GetLengthPrefixed(&vb, &term)) {
      return Status::Corruption("index vocabulary term truncated");
    }
    index.vocab_.GetOrAdd(term);
  }

  // Documents.
  SQE_ASSIGN_OR_RETURN(std::string_view db, reader.GetBlock("documents"));
  uint64_t num_docs;
  if (!io::GetVarint64(&db, &num_docs)) {
    return Status::Corruption("index documents truncated");
  }
  index.doc_lengths_.vec().reserve(num_docs);
  index.external_ids_.owned().reserve(num_docs);
  for (uint64_t i = 0; i < num_docs; ++i) {
    std::string_view ext;
    uint32_t len;
    if (!io::GetLengthPrefixed(&db, &ext) || !io::GetVarint32(&db, &len)) {
      return Status::Corruption("index document entry truncated");
    }
    index.external_ids_.owned().emplace_back(ext);
    index.doc_lengths_.vec().push_back(len);
    index.total_tokens_ += len;
  }

  // Forward index.
  SQE_ASSIGN_OR_RETURN(std::string_view fb, reader.GetBlock("forward"));
  uint64_t num_fwd;
  if (!io::GetVarint64(&fb, &num_fwd)) {
    return Status::Corruption("index forward block truncated");
  }
  index.doc_terms_.vec().reserve(num_fwd);
  for (uint64_t i = 0; i < num_fwd; ++i) {
    uint32_t t;
    if (!io::GetVarint32(&fb, &t)) {
      return Status::Corruption("index forward term truncated");
    }
    if (t >= vocab_size) {
      return Status::Corruption("forward term id out of range");
    }
    index.doc_terms_.vec().push_back(t);
  }
  index.doc_term_offsets_.vec().assign(1, 0);
  {
    uint64_t acc = 0;
    for (uint64_t i = 0; i < num_docs; ++i) {
      acc += index.doc_lengths_[i];
      index.doc_term_offsets_.vec().push_back(acc);
    }
    if (acc != num_fwd) {
      return Status::Corruption("forward index size != sum of doc lengths");
    }
  }

  // Postings.
  SQE_ASSIGN_OR_RETURN(std::string_view pb, reader.GetBlock("postings"));
  uint64_t num_terms;
  if (!io::GetVarint64(&pb, &num_terms)) {
    return Status::Corruption("index postings truncated");
  }
  if (num_terms != vocab_size) {
    return Status::Corruption("postings/vocabulary size mismatch");
  }
  index.postings_.reserve(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    PostingListBuilder builder;
    uint64_t entries;
    if (!io::GetVarint64(&pb, &entries)) {
      return Status::Corruption("posting list header truncated");
    }
    DocId doc = 0;
    for (uint64_t i = 0; i < entries; ++i) {
      uint32_t gap, freq;
      if (!io::GetVarint32(&pb, &gap) || !io::GetVarint32(&pb, &freq)) {
        return Status::Corruption("posting entry truncated");
      }
      // Widen before adding: a hostile gap could wrap uint32 and smuggle a
      // descending doc id past the range check (which would then trip the
      // builder's ascending-order SQE_CHECK — an abort on untrusted input).
      uint64_t next_doc = static_cast<uint64_t>(doc) + gap;
      if (i > 0 && gap == 0) {
        return Status::Corruption("posting doc gap zero (duplicate doc id)");
      }
      if (next_doc >= num_docs) {
        return Status::Corruption("posting doc id out of range");
      }
      doc = static_cast<DocId>(next_doc);
      if (freq == 0) return Status::Corruption("posting frequency zero");
      uint32_t pos = 0;
      for (uint32_t j = 0; j < freq; ++j) {
        uint32_t pgap;
        if (!io::GetVarint32(&pb, &pgap)) {
          return Status::Corruption("posting position truncated");
        }
        pos += pgap;
        builder.AddOccurrence(doc, pos);
      }
    }
    index.postings_.push_back(std::move(builder).Build());
  }

  // Block-max tables. v2 images carry them and must adopt the stored bytes
  // (Validate recomputes the true maxima and rejects any mismatch); v1
  // images predate the block and keep the builder-computed tables.
  if (reader.version() >= 2) {
    SQE_ASSIGN_OR_RETURN(std::string_view bb, reader.GetBlock("blockmax"));
    uint64_t bm_terms;
    if (!io::GetVarint64(&bb, &bm_terms)) {
      return Status::Corruption("index block-max block truncated");
    }
    if (bm_terms != num_terms) {
      return Status::Corruption("block-max/postings term count mismatch");
    }
    for (uint64_t t = 0; t < bm_terms; ++t) {
      PostingList& pl = index.postings_[t];
      uint32_t max_freq;
      uint64_t num_blocks;
      if (!io::GetVarint32(&bb, &max_freq) ||
          !io::GetVarint64(&bb, &num_blocks)) {
        return Status::Corruption("block-max table header truncated");
      }
      const size_t want_blocks =
          (pl.NumDocs() + PostingList::kBlockSize - 1) /
          PostingList::kBlockSize;
      if (num_blocks != want_blocks) {
        return Status::Corruption("block-max table size mismatch");
      }
      pl.max_frequency_ = max_freq;
      std::vector<uint32_t>& stored = pl.block_max_frequencies_.vec();
      stored.clear();
      stored.reserve(want_blocks);
      for (uint64_t b = 0; b < num_blocks; ++b) {
        uint32_t m;
        if (!io::GetVarint32(&bb, &m)) {
          return Status::Corruption("block-max entry truncated");
        }
        stored.push_back(m);
      }
    }
    if (!bb.empty()) {
      return Status::Corruption("index block-max block has trailing bytes");
    }
  }

  index.BuildDocsByLength();
  return index;
}

Result<InvertedIndex> InvertedIndex::LoadAligned(
    const io::SnapshotReader& reader, io::LoadMode mode) {
  InvertedIndex index;
  auto require = [&](std::string_view name) -> Result<std::string_view> {
    auto block = reader.GetBlock(name);
    if (!block.ok()) {
      return Status::Corruption("index snapshot missing block: " +
                                std::string(name));
    }
    return block;
  };
  auto array_of = [&]<typename T>(std::string_view name,
                                  std::in_place_type_t<T>)
      -> Result<std::span<const T>> {
    SQE_ASSIGN_OR_RETURN(std::string_view block, require(name));
    return io::BlockAsArray<T>(block, name);
  };
  // Loads one array block into a VecOrView member: a view in zero-copy
  // mode, an owned copy in heap mode. `want` pins the element count.
  auto load = [&](std::string_view name, auto& dst, size_t want) -> Status {
    using T = typename std::remove_reference_t<decltype(dst)>::value_type;
    SQE_ASSIGN_OR_RETURN(std::span<const T> arr,
                         array_of(name, std::in_place_type<T>));
    if (want != SIZE_MAX && arr.size() != want) {
      return Status::Corruption(StrFormat("%s: %zu elements, want %zu",
                                          std::string(name).c_str(),
                                          arr.size(), want));
    }
    if (mode == io::LoadMode::kZeroCopy) {
      dst.SetView(arr);
    } else {
      dst.Assign(arr);
    }
    return Status::OK();
  };

  SQE_ASSIGN_OR_RETURN(std::span<const uint64_t> meta,
                       array_of("meta", std::in_place_type<uint64_t>));
  if (meta.size() != 3) {
    return Status::Corruption("index snapshot meta block malformed");
  }
  const uint64_t num_docs = meta[0], num_terms = meta[1];
  if (num_docs >= UINT32_MAX || num_terms >= UINT32_MAX) {
    return Status::Corruption("index snapshot count exceeds id space");
  }
  index.total_tokens_ = meta[2];

  // Vocabulary: string column + sorted-order permutation.
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> voff,
      array_of("vocab.offsets", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(std::string_view vblob, require("vocab.blob"));
  SQE_ASSIGN_OR_RETURN(
      std::span<const text::TermId> vorder,
      array_of("vocab.order", std::in_place_type<text::TermId>));
  if (voff.size() != num_terms + 1 || vorder.size() != num_terms) {
    return Status::Corruption("index snapshot vocabulary/meta mismatch");
  }
  if (mode == io::LoadMode::kZeroCopy) {
    SQE_RETURN_IF_ERROR(index.vocab_.AttachMapped(voff, vblob, vorder));
  } else {
    SQE_RETURN_IF_ERROR(index.vocab_.AssignMapped(voff, vblob, vorder));
  }

  // Document store.
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> eoff,
      array_of("docs.extid_offsets", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(std::string_view eblob, require("docs.extid_blob"));
  if (eoff.size() != num_docs + 1) {
    return Status::Corruption("index snapshot external ids/meta mismatch");
  }
  if (mode == io::LoadMode::kZeroCopy) {
    SQE_RETURN_IF_ERROR(
        index.external_ids_.SetMapped(eoff, eblob, "external ids"));
  } else {
    SQE_RETURN_IF_ERROR(
        index.external_ids_.AssignMapped(eoff, eblob, "external ids"));
  }
  SQE_RETURN_IF_ERROR(load("docs.lengths", index.doc_lengths_, num_docs));
  SQE_RETURN_IF_ERROR(
      load("docs.by_length", index.docs_by_length_, num_docs));

  // Forward index.
  SQE_RETURN_IF_ERROR(
      load("fwd.offsets", index.doc_term_offsets_, num_docs + 1));
  SQE_RETURN_IF_ERROR(load("fwd.terms", index.doc_terms_, meta[2]));

  // Postings: flattened arrays + concatenation index tables. Each table is
  // proved monotone-and-bounded here so per-term slicing is safe; the
  // per-list and cross-structure invariants are left to Validate().
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> doc_index,
      array_of("post.doc_index", std::in_place_type<uint64_t>));

  if (reader.version() >= io::kPackedPostingsSnapshotVersion) {
    // v4: the packed block blob replaces the raw docs/freqs/pos_offsets
    // arrays. The blob itself is byte-granular, so the heap path copies it
    // per term just like any other slice; the checked per-block decode
    // (widths, lengths, overflow) happens once in Validate() after load.
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint8_t> packed,
        array_of("post.packed", std::in_place_type<uint8_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint64_t> packed_index,
        array_of("post.packed_index", std::in_place_type<uint64_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint32_t> blockoffs,
        array_of("post.blockoffs", std::in_place_type<uint32_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint64_t> posbase,
        array_of("post.block_posbase", std::in_place_type<uint64_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint64_t> positions_index,
        array_of("post.positions_index", std::in_place_type<uint64_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint32_t> positions,
        array_of("post.positions", std::in_place_type<uint32_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint64_t> block_index,
        array_of("post.block_index", std::in_place_type<uint64_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint32_t> block_max,
        array_of("post.block_max", std::in_place_type<uint32_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const DocId> block_last,
        array_of("post.block_last", std::in_place_type<DocId>));
    SQE_ASSIGN_OR_RETURN(std::span<const uint64_t> ctf,
                         array_of("post.ctf", std::in_place_type<uint64_t>));
    SQE_ASSIGN_OR_RETURN(
        std::span<const uint32_t> maxfreq,
        array_of("post.maxfreq", std::in_place_type<uint32_t>));

    if (doc_index.size() != num_terms + 1 ||
        packed_index.size() != num_terms + 1 ||
        positions_index.size() != num_terms + 1 ||
        block_index.size() != num_terms + 1 || ctf.size() != num_terms ||
        maxfreq.size() != num_terms) {
      return Status::Corruption(
          "index snapshot postings tables/meta mismatch");
    }
    if (block_last.size() != block_max.size() ||
        blockoffs.size() != block_max.size() ||
        posbase.size() != block_max.size()) {
      return Status::Corruption(
          "index snapshot per-block table size mismatch");
    }
    // doc_index counts postings rather than indexing a stored array, so it
    // is checked against its own total (start-at-0 + monotone).
    SQE_RETURN_IF_ERROR(CheckIndexTable("post.doc_index", doc_index,
                                        doc_index.back()));
    SQE_RETURN_IF_ERROR(
        CheckIndexTable("post.packed_index", packed_index, packed.size()));
    SQE_RETURN_IF_ERROR(CheckIndexTable("post.positions_index",
                                        positions_index, positions.size()));
    SQE_RETURN_IF_ERROR(
        CheckIndexTable("post.block_index", block_index, block_max.size()));

    index.postings_.resize(num_terms);
    for (uint64_t t = 0; t < num_terms; ++t) {
      PostingList& pl = index.postings_[t];
      const uint64_t n = doc_index[t + 1] - doc_index[t];
      if (n > num_docs) {
        return Status::Corruption(StrFormat(
            "index snapshot term %llu posting count exceeds documents",
            (unsigned long long)t));
      }
      auto slice = [&]<typename T>(std::span<const T> arr,
                                   std::span<const uint64_t> table) {
        return arr.subspan(table[t], table[t + 1] - table[t]);
      };
      if (mode == io::LoadMode::kZeroCopy) {
        pl.packed_.SetView(slice(packed, packed_index));
        pl.packed_block_offsets_.SetView(slice(blockoffs, block_index));
        pl.block_pos_base_.SetView(slice(posbase, block_index));
        pl.positions_.SetView(slice(positions, positions_index));
        pl.block_max_frequencies_.SetView(slice(block_max, block_index));
        pl.block_last_docs_.SetView(slice(block_last, block_index));
      } else {
        pl.packed_.Assign(slice(packed, packed_index));
        pl.packed_block_offsets_.Assign(slice(blockoffs, block_index));
        pl.block_pos_base_.Assign(slice(posbase, block_index));
        pl.positions_.Assign(slice(positions, positions_index));
        pl.block_max_frequencies_.Assign(slice(block_max, block_index));
        pl.block_last_docs_.Assign(slice(block_last, block_index));
      }
      pl.packed_num_docs_ = static_cast<uint32_t>(n);
      pl.total_occurrences_ = ctf[t];
      pl.max_frequency_ = maxfreq[t];
    }

    if (mode == io::LoadMode::kZeroCopy) index.retainer_ = reader.retainer();
    return index;
  }

  SQE_ASSIGN_OR_RETURN(std::span<const DocId> docs,
                       array_of("post.docs", std::in_place_type<DocId>));
  SQE_ASSIGN_OR_RETURN(std::span<const uint32_t> freqs,
                       array_of("post.freqs", std::in_place_type<uint32_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> posidx_index,
      array_of("post.posidx_index", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> pos_offsets,
      array_of("post.pos_offsets", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> positions_index,
      array_of("post.positions_index", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint32_t> positions,
      array_of("post.positions", std::in_place_type<uint32_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint64_t> block_index,
      array_of("post.block_index", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint32_t> block_max,
      array_of("post.block_max", std::in_place_type<uint32_t>));
  SQE_ASSIGN_OR_RETURN(std::span<const DocId> block_last,
                       array_of("post.block_last", std::in_place_type<DocId>));
  SQE_ASSIGN_OR_RETURN(std::span<const uint64_t> ctf,
                       array_of("post.ctf", std::in_place_type<uint64_t>));
  SQE_ASSIGN_OR_RETURN(
      std::span<const uint32_t> maxfreq,
      array_of("post.maxfreq", std::in_place_type<uint32_t>));

  if (doc_index.size() != num_terms + 1 ||
      posidx_index.size() != num_terms + 1 ||
      positions_index.size() != num_terms + 1 ||
      block_index.size() != num_terms + 1 || ctf.size() != num_terms ||
      maxfreq.size() != num_terms) {
    return Status::Corruption("index snapshot postings tables/meta mismatch");
  }
  if (freqs.size() != docs.size()) {
    return Status::Corruption(
        "index snapshot postings docs/frequencies size mismatch");
  }
  if (block_last.size() != block_max.size()) {
    return Status::Corruption(
        "index snapshot block-max/block-boundary size mismatch");
  }
  SQE_RETURN_IF_ERROR(
      CheckIndexTable("post.doc_index", doc_index, docs.size()));
  SQE_RETURN_IF_ERROR(CheckIndexTable("post.posidx_index", posidx_index,
                                      pos_offsets.size()));
  SQE_RETURN_IF_ERROR(CheckIndexTable("post.positions_index", positions_index,
                                      positions.size()));
  SQE_RETURN_IF_ERROR(
      CheckIndexTable("post.block_index", block_index, block_max.size()));

  index.postings_.resize(num_terms);
  for (uint64_t t = 0; t < num_terms; ++t) {
    PostingList& pl = index.postings_[t];
    auto slice = [&]<typename T>(std::span<const T> arr,
                                 std::span<const uint64_t> table) {
      return arr.subspan(table[t], table[t + 1] - table[t]);
    };
    if (mode == io::LoadMode::kZeroCopy) {
      pl.docs_.SetView(slice(docs, doc_index));
      pl.freqs_.SetView(slice(freqs, doc_index));
      pl.pos_offsets_.SetView(slice(pos_offsets, posidx_index));
      pl.positions_.SetView(slice(positions, positions_index));
      pl.block_max_frequencies_.SetView(slice(block_max, block_index));
      pl.block_last_docs_.SetView(slice(block_last, block_index));
    } else {
      pl.docs_.Assign(slice(docs, doc_index));
      pl.freqs_.Assign(slice(freqs, doc_index));
      pl.pos_offsets_.Assign(slice(pos_offsets, posidx_index));
      pl.positions_.Assign(slice(positions, positions_index));
      pl.block_max_frequencies_.Assign(slice(block_max, block_index));
      pl.block_last_docs_.Assign(slice(block_last, block_index));
    }
    pl.total_occurrences_ = ctf[t];
    pl.max_frequency_ = maxfreq[t];
  }

  if (mode == io::LoadMode::kZeroCopy) index.retainer_ = reader.retainer();
  return index;
}

Result<InvertedIndex> InvertedIndex::FromReader(
    const io::SnapshotReader& reader, io::LoadMode mode) {
  if (reader.version() > io::kIndexSnapshotVersion) {
    return Status::Corruption(
        StrFormat("unsupported index snapshot version %u",
                  (unsigned)reader.version()));
  }
  if (reader.version() < io::kAlignedSnapshotVersion &&
      mode == io::LoadMode::kZeroCopy) {
    return Status::InvalidArgument(
        "zero-copy load requires an aligned (v3+) index snapshot");
  }
  Result<InvertedIndex> index =
      reader.version() >= io::kAlignedSnapshotVersion
          ? LoadAligned(reader, mode)
          : LoadLegacy(reader);
  if (!index.ok()) return index.status();

  // Deep structural validation of the final object: catches payloads that
  // pass CRC and decode (e.g. a re-signed snapshot whose postings disagree
  // with the forward index, or a stale persisted derived structure) before
  // they can skew scores or index out of bounds under the release-mode
  // SQE_DCHECKs.
  SQE_RETURN_IF_ERROR(index.value().Validate());
  return index;
}

Result<InvertedIndex> InvertedIndex::FromSnapshotString(std::string image,
                                                        io::LoadMode mode) {
  auto reader =
      io::SnapshotReader::Open(std::move(image), io::kIndexSnapshotMagic);
  if (!reader.ok()) return reader.status();
  return FromReader(reader.value(), mode);
}

Result<InvertedIndex> InvertedIndex::FromSnapshotFile(const std::string& path,
                                                      io::LoadMode mode) {
  if (mode == io::LoadMode::kZeroCopy) {
    auto reader =
        io::SnapshotReader::OpenMapped(path, io::kIndexSnapshotMagic);
    if (!reader.ok()) return reader.status();
    return FromReader(reader.value(), mode);
  }
  auto image = io::ReadFileToString(path);
  if (!image.ok()) return image.status();
  return FromSnapshotString(std::move(image).value(), mode);
}

}  // namespace sqe::index
