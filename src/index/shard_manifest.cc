#include "index/shard_manifest.h"

#include <algorithm>

#include "common/string_util.h"
#include "io/coding.h"
#include "io/file.h"
#include "io/snapshot_format.h"

namespace sqe::index {

namespace {
}  // namespace

ShardManifest ShardManifest::Balanced(size_t num_docs, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  ShardManifest manifest;
  manifest.starts.reserve(num_shards + 1);
  for (size_t s = 0; s <= num_shards; ++s) {
    manifest.starts.push_back(
        static_cast<DocId>(static_cast<uint64_t>(num_docs) * s / num_shards));
  }
  return manifest;
}

size_t ShardManifest::ShardOf(DocId global) const {
  SQE_DCHECK(global < num_docs());
  // The owner is the last shard whose begin is <= global: empty shards share
  // their boundary with the next non-empty one but can contain nothing.
  auto it = std::upper_bound(starts.begin(), starts.end(), global);
  return static_cast<size_t>(it - starts.begin()) - 1;
}

Status ShardManifest::Validate(size_t expected_num_docs) const {
  if (starts.size() < 2) {
    return Status::Corruption("shard manifest: fewer than one shard");
  }
  if (starts.front() != 0) {
    return Status::Corruption("shard manifest: first boundary not 0");
  }
  for (size_t s = 0; s + 1 < starts.size(); ++s) {
    if (starts[s] > starts[s + 1]) {
      return Status::Corruption(
          StrFormat("shard manifest: boundary %zu decreases (%u > %u)", s,
                    (unsigned)starts[s], (unsigned)starts[s + 1]));
    }
  }
  if (starts.back() != expected_num_docs) {
    return Status::Corruption(
        StrFormat("shard manifest: covers %u documents, collection has %zu",
                  (unsigned)starts.back(), expected_num_docs));
  }
  return Status::OK();
}

std::string ShardManifest::SerializeToString() const {
  io::SnapshotWriter writer(io::kShardManifestSnapshotMagic);
  std::string block;
  io::PutVarint64(&block, starts.size());
  DocId prev = 0;
  for (DocId s : starts) {
    io::PutVarint32(&block, s - prev);  // non-decreasing, so gaps are small
    prev = s;
  }
  writer.AddBlock("shards", std::move(block));
  return writer.Serialize();
}

Result<ShardManifest> ShardManifest::FromSnapshotString(std::string image) {
  auto reader_or =
      io::SnapshotReader::Open(std::move(image), io::kShardManifestSnapshotMagic);
  if (!reader_or.ok()) return reader_or.status();
  SQE_ASSIGN_OR_RETURN(std::string_view block,
                       reader_or.value().GetBlock("shards"));
  uint64_t num_starts;
  if (!io::GetVarint64(&block, &num_starts) || num_starts < 2) {
    return Status::Corruption("shard manifest header truncated");
  }
  ShardManifest manifest;
  manifest.starts.reserve(num_starts);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < num_starts; ++i) {
    uint32_t gap;
    if (!io::GetVarint32(&block, &gap)) {
      return Status::Corruption("shard manifest boundary truncated");
    }
    // Widen before adding so a hostile gap cannot wrap uint32 into a
    // boundary that decreases yet passes Validate.
    prev += gap;
    if (prev > UINT32_MAX) {
      return Status::Corruption("shard manifest boundary overflows DocId");
    }
    manifest.starts.push_back(static_cast<DocId>(prev));
  }
  SQE_RETURN_IF_ERROR(manifest.Validate(manifest.starts.back()));
  return manifest;
}

}  // namespace sqe::index
