#include "index/sharded_index.h"

#include <filesystem>

#include "common/string_util.h"
#include "io/file.h"

namespace sqe::index {

ShardedIndex ShardedIndex::Split(const InvertedIndex& full,
                                 size_t num_shards) {
  ShardedIndex sharded;
  sharded.manifest_ = ShardManifest::Balanced(full.NumDocuments(), num_shards);
  sharded.shards_.reserve(sharded.manifest_.num_shards());
  std::vector<std::string> terms;
  for (size_t s = 0; s < sharded.manifest_.num_shards(); ++s) {
    IndexBuilder builder;
    for (DocId d = sharded.manifest_.shard_begin(s);
         d < sharded.manifest_.shard_end(s); ++d) {
      terms.clear();
      for (text::TermId t : full.DocTerms(d)) {
        terms.emplace_back(full.vocabulary().TermOf(t));
      }
      builder.AddDocument(std::string(full.ExternalId(d)), terms);
    }
    sharded.shards_.push_back(std::move(builder).Build());
  }
  return sharded;
}

Status ShardedIndex::Validate() const {
  size_t total_docs = 0;
  for (const InvertedIndex& shard : shards_) {
    total_docs += shard.NumDocuments();
  }
  SQE_RETURN_IF_ERROR(manifest_.Validate(total_docs));
  if (manifest_.num_shards() != shards_.size()) {
    return Status::Corruption(
        StrFormat("sharded index: manifest names %zu shards, %zu present",
                  manifest_.num_shards(), shards_.size()));
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shards_[s].NumDocuments() != manifest_.shard_size(s)) {
      return Status::Corruption(StrFormat(
          "sharded index: shard %zu holds %zu documents, manifest says %zu",
          s, shards_[s].NumDocuments(), manifest_.shard_size(s)));
    }
    SQE_RETURN_IF_ERROR(shards_[s].Validate());
  }
  return Status::OK();
}

std::string ShardedIndex::ManifestFileName() { return "manifest.sqeshards"; }

std::string ShardedIndex::ShardFileName(size_t s) {
  return StrFormat("shard-%04zu.idx", s);
}

Status ShardedIndex::SaveToDirectory(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create shard directory " + dir + ": " +
                           ec.message());
  }
  SQE_RETURN_IF_ERROR(io::WriteStringToFile(
      dir + "/" + ManifestFileName(), manifest_.SerializeToString()));
  for (size_t s = 0; s < shards_.size(); ++s) {
    SQE_RETURN_IF_ERROR(shards_[s].SaveToFile(dir + "/" + ShardFileName(s)));
  }
  return Status::OK();
}

Result<ShardedIndex> ShardedIndex::LoadFromDirectory(const std::string& dir) {
  auto manifest_image = io::ReadFileToString(dir + "/" + ManifestFileName());
  if (!manifest_image.ok()) return manifest_image.status();
  SQE_ASSIGN_OR_RETURN(
      ShardManifest manifest,
      ShardManifest::FromSnapshotString(std::move(manifest_image).value()));

  ShardedIndex sharded;
  sharded.shards_.reserve(manifest.num_shards());
  for (size_t s = 0; s < manifest.num_shards(); ++s) {
    // FromSnapshotFile runs the deep InvertedIndex::Validate on every shard.
    auto shard = InvertedIndex::FromSnapshotFile(dir + "/" + ShardFileName(s));
    if (!shard.ok()) return shard.status();
    if (shard.value().NumDocuments() != manifest.shard_size(s)) {
      return Status::Corruption(StrFormat(
          "sharded index: shard %zu snapshot holds %zu documents, "
          "manifest says %zu",
          s, shard.value().NumDocuments(), manifest.shard_size(s)));
    }
    sharded.shards_.push_back(std::move(shard).value());
  }
  sharded.manifest_ = std::move(manifest);
  return sharded;
}

}  // namespace sqe::index
