// ShardedIndex: a document collection split into S self-contained
// InvertedIndex shards plus the ShardManifest tying local ids back to the
// global collection.
//
// Each shard is a complete, independently valid InvertedIndex over its
// contiguous global DocId range [manifest.shard_begin(s),
// manifest.shard_end(s)), with local DocIds dense from 0 — the layout a
// distributed serving tier would place one shard per node. Per-shard
// collection statistics are intentionally NOT used for scoring: Dirichlet
// smoothing must see the global collection model, which the scoring path
// (retrieval::ShardRouter over the full index) provides. The split form
// exists for persistence, inspection (sqe_tool index shard-info) and as the
// substrate for shipping shards to separate processes.
//
// Snapshot layout (SaveToDirectory / LoadFromDirectory):
//   <dir>/manifest.sqeshards   ShardManifest, CRC-protected
//   <dir>/shard-NNNN.idx       one InvertedIndex snapshot per shard
// Every shard load runs InvertedIndex::Validate (via FromSnapshotFile), and
// the manifest is cross-checked against the shards' document counts, so a
// tampered or mismatched shard file surfaces as Status::Corruption.
#ifndef SQE_INDEX_SHARDED_INDEX_H_
#define SQE_INDEX_SHARDED_INDEX_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "index/inverted_index.h"
#include "index/shard_manifest.h"

namespace sqe::index {

class ShardedIndex {
 public:
  ShardedIndex() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(ShardedIndex);
  ShardedIndex(ShardedIndex&&) = default;
  ShardedIndex& operator=(ShardedIndex&&) = default;

  /// Partitions `full` into a balanced contiguous manifest of `num_shards`
  /// (clamped to >= 1; shards beyond the document count come out empty) and
  /// re-indexes each shard's documents through IndexBuilder. O(total
  /// tokens); build/tool-time only, never on the query path.
  static ShardedIndex Split(const InvertedIndex& full, size_t num_shards);

  size_t num_shards() const { return shards_.size(); }
  const ShardManifest& manifest() const { return manifest_; }
  const InvertedIndex& shard(size_t s) const {
    SQE_DCHECK(s < shards_.size());
    return shards_[s];
  }

  /// Total documents across shards (== manifest().num_docs()).
  size_t NumDocuments() const { return manifest_.num_docs(); }

  /// Manifest/shard consistency plus InvertedIndex::Validate per shard.
  Status Validate() const;

  // ---- persistence ---------------------------------------------------------

  Status SaveToDirectory(const std::string& dir) const;
  static Result<ShardedIndex> LoadFromDirectory(const std::string& dir);

  /// Snapshot file names inside the directory (exposed for tools/tests).
  static std::string ManifestFileName();
  static std::string ShardFileName(size_t s);

 private:
  ShardManifest manifest_;
  std::vector<InvertedIndex> shards_;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_SHARDED_INDEX_H_
