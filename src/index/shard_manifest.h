// ShardManifest: the contiguous partition of a document collection into
// index shards, plus the local<->global DocId mapping it induces.
//
// Shard s owns the global DocId range [starts[s], starts[s+1]); local ids
// within a shard are dense from 0, so the mapping is a single offset. The
// manifest is the shared contract between the split snapshot layout
// (ShardedIndex), the in-process scoring router (retrieval::ShardRouter)
// and the tools that inspect partitions — all three must agree on who owns
// which document, so the manifest validates and serializes independently.
#ifndef SQE_INDEX_SHARD_MANIFEST_H_
#define SQE_INDEX_SHARD_MANIFEST_H_

#include <string>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "index/types.h"

namespace sqe::index {

struct ShardManifest {
  /// Partition boundaries, size num_shards+1: starts.front() == 0,
  /// starts.back() == num_docs, non-decreasing (empty shards are legal —
  /// a partition into more shards than documents must still be total).
  std::vector<DocId> starts;

  /// Balanced contiguous partition: shard s gets [s*N/S, (s+1)*N/S), so
  /// shard sizes differ by at most one document. num_shards is clamped to
  /// at least 1; shards beyond num_docs come out empty.
  static ShardManifest Balanced(size_t num_docs, size_t num_shards);

  size_t num_shards() const { return starts.empty() ? 0 : starts.size() - 1; }
  size_t num_docs() const { return starts.empty() ? 0 : starts.back(); }

  DocId shard_begin(size_t s) const {
    SQE_DCHECK(s < num_shards());
    return starts[s];
  }
  DocId shard_end(size_t s) const {
    SQE_DCHECK(s < num_shards());
    return starts[s + 1];
  }
  size_t shard_size(size_t s) const { return shard_end(s) - shard_begin(s); }

  /// Shard owning a global DocId (the unique non-empty shard whose range
  /// contains it). `global` must be < num_docs.
  size_t ShardOf(DocId global) const;

  DocId ToGlobal(size_t shard, DocId local) const {
    SQE_DCHECK(local < shard_size(shard));
    return shard_begin(shard) + local;
  }
  DocId ToLocal(size_t shard, DocId global) const {
    SQE_DCHECK(global >= shard_begin(shard) && global < shard_end(shard));
    return global - shard_begin(shard);
  }

  /// Structural validation: at least one shard, boundaries anchored at 0,
  /// non-decreasing, and covering exactly `expected_num_docs` documents.
  /// Returns Status::Corruption pinpointing the violation.
  Status Validate(size_t expected_num_docs) const;

  /// CRC-protected snapshot (io::SnapshotWriter block format, own magic).
  std::string SerializeToString() const;
  static Result<ShardManifest> FromSnapshotString(std::string image);

  bool operator==(const ShardManifest& other) const = default;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_SHARD_MANIFEST_H_
