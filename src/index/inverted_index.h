// InvertedIndex: the immutable retrieval index — vocabulary, document store,
// positional postings, forward index (for PRF) and collection statistics.
//
// The index plays the role Indri plays in the paper: it is the substrate the
// query-likelihood engine scores against.
#ifndef SQE_INDEX_INVERTED_INDEX_H_
#define SQE_INDEX_INVERTED_INDEX_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "index/postings.h"
#include "index/types.h"
#include "text/vocabulary.h"

namespace sqe::index {

/// Immutable positional inverted index. Create via IndexBuilder or
/// FromSnapshot*.
class InvertedIndex {
 public:
  InvertedIndex() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(InvertedIndex);
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  // ---- documents -----------------------------------------------------------

  size_t NumDocuments() const { return doc_lengths_.size(); }
  // Per-lookup bounds checks on the scoring path are debug-only: DocIds come
  // from the index's own postings, whose ranges Validate() proves at load.
  /// Number of tokens the document contained after analysis.
  uint32_t DocLength(DocId d) const {
    SQE_DCHECK(d < doc_lengths_.size());
    return doc_lengths_[d];
  }
  const std::string& ExternalId(DocId d) const {
    SQE_DCHECK(d < external_ids_.size());
    return external_ids_[d];
  }
  /// DocId for an external id, or kInvalidDoc.
  DocId FindDocument(std::string_view external_id) const;

  /// All documents ordered by (length ascending, DocId ascending).
  /// Precomputed at build/load time. In Dirichlet-smoothed QL every document
  /// matching no query atom scores background_const − log(|D| + μ), which is
  /// monotone in |D| — so this order lets the retriever's sparse top-k fill
  /// its tail from a prefix of this list instead of scoring the whole
  /// collection.
  std::span<const DocId> DocsByLength() const { return docs_by_length_; }

  /// Forward index: the analyzed token stream of a document, in order.
  /// Used by the PRF relevance model.
  std::span<const text::TermId> DocTerms(DocId d) const {
    SQE_DCHECK(d + 1 < doc_term_offsets_.size());
    return std::span<const text::TermId>(
        doc_terms_.data() + doc_term_offsets_[d],
        doc_terms_.data() + doc_term_offsets_[d + 1]);
  }

  // ---- terms ---------------------------------------------------------------

  const text::Vocabulary& vocabulary() const { return vocab_; }
  /// TermId for an analyzed term string, or kInvalidTermId.
  text::TermId LookupTerm(std::string_view term) const {
    return vocab_.Lookup(term);
  }
  const PostingList& Postings(text::TermId t) const {
    SQE_DCHECK(t < postings_.size());
    return postings_[t];
  }

  // ---- collection statistics ----------------------------------------------

  /// Total number of tokens in the collection.
  uint64_t TotalTokens() const { return total_tokens_; }
  double AverageDocLength() const {
    return NumDocuments() == 0
               ? 0.0
               : static_cast<double>(total_tokens_) /
                     static_cast<double>(NumDocuments());
  }
  /// Collection frequency of a term (occurrences across all docs).
  uint64_t CollectionFrequency(text::TermId t) const {
    return Postings(t).CollectionFrequency();
  }
  /// Number of documents containing the term.
  uint64_t DocumentFrequency(text::TermId t) const {
    return Postings(t).NumDocs();
  }
  /// Maximum-likelihood collection model P(t|C) with an epsilon floor for
  /// out-of-vocabulary terms (Indri uses 1/|C| for unseen terms).
  double CollectionProbability(text::TermId t) const;
  double UnseenTermProbability() const;

  // ---- integrity ----------------------------------------------------------

  /// Deep structural validation: vocabulary bijection, per-term posting-list
  /// invariants (strictly increasing doc ids, sorted positions), forward
  /// index consistent with doc lengths and vocabulary range, postings
  /// cross-checked against the forward index term counts, collection stats
  /// (total tokens) consistent, and the docs-by-length order a valid
  /// permutation. Returns Status::Corruption pinpointing the violation.
  /// Runs after every snapshot load; O(tokens + terms), load-time only.
  Status Validate() const;

  // ---- persistence ---------------------------------------------------------

  Status SaveToFile(const std::string& path) const;
  std::string SerializeToString() const;
  static Result<InvertedIndex> FromSnapshotFile(const std::string& path);
  static Result<InvertedIndex> FromSnapshotString(std::string image);

 private:
  friend class IndexBuilder;
  friend struct InvertedIndexTestPeer;  // validator tests build broken indexes

  void BuildDocsByLength();

  text::Vocabulary vocab_;
  std::vector<PostingList> postings_;  // indexed by TermId
  std::vector<uint32_t> doc_lengths_;
  std::vector<std::string> external_ids_;
  std::vector<uint64_t> doc_term_offsets_;  // size N+1
  std::vector<text::TermId> doc_terms_;
  std::vector<DocId> docs_by_length_;  // derived; see DocsByLength()
  uint64_t total_tokens_ = 0;
};

/// Builds an InvertedIndex from analyzed documents.
class IndexBuilder {
 public:
  IndexBuilder() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(IndexBuilder);

  /// Adds a document given its already-analyzed term stream. Returns the
  /// assigned DocId (dense, in insertion order).
  DocId AddDocument(std::string external_id,
                    const std::vector<std::string>& terms);

  /// Finalizes into an immutable index. The builder is consumed.
  InvertedIndex Build() &&;

  size_t NumDocuments() const { return index_.doc_lengths_.size(); }

 private:
  InvertedIndex index_;
  std::vector<PostingListBuilder> posting_builders_;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_INVERTED_INDEX_H_
