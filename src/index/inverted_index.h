// InvertedIndex: the immutable retrieval index — vocabulary, document store,
// positional postings, forward index (for PRF) and collection statistics.
//
// The index plays the role Indri plays in the paper: it is the substrate the
// query-likelihood engine scores against.
//
// Two load modes (io::LoadMode): a heap load decodes or copies every array
// into owned vectors; a zero-copy load of an aligned (v3) snapshot points
// the document store, forward index, vocabulary and flattened postings
// regions straight into the snapshot image, which the index retains. v3
// images persist every derived structure (docs-by-length order, block-max
// tables, block boundaries, per-term stats, the vocabulary sort order), so
// a v3 load rebuilds nothing; Validate() proves the stored derivations
// equal a recomputation instead.
#ifndef SQE_INDEX_INVERTED_INDEX_H_
#define SQE_INDEX_INVERTED_INDEX_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/string_column.h"
#include "common/vec_or_view.h"
#include "index/postings.h"
#include "index/types.h"
#include "io/file.h"
#include "io/snapshot_format.h"
#include "text/vocabulary.h"

namespace sqe::index {

/// Immutable positional inverted index. Create via IndexBuilder or
/// FromSnapshot*.
class InvertedIndex {
 public:
  InvertedIndex() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(InvertedIndex);
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  // ---- documents -----------------------------------------------------------

  size_t NumDocuments() const { return doc_lengths_.size(); }
  // Per-lookup bounds checks on the scoring path are debug-only: DocIds come
  // from the index's own postings, whose ranges Validate() proves at load.
  /// Number of tokens the document contained after analysis.
  uint32_t DocLength(DocId d) const {
    SQE_DCHECK(d < doc_lengths_.size());
    return doc_lengths_[d];
  }
  /// External (collection) id of a document. The view stays valid as long
  /// as the index (and, in zero-copy mode, the image it retains) does.
  std::string_view ExternalId(DocId d) const {
    SQE_DCHECK(d < external_ids_.size());
    return external_ids_[d];
  }
  /// DocId for an external id, or kInvalidDoc.
  DocId FindDocument(std::string_view external_id) const;

  /// All documents ordered by (length ascending, DocId ascending).
  /// Precomputed at build/load time. In Dirichlet-smoothed QL every document
  /// matching no query atom scores background_const − log(|D| + μ), which is
  /// monotone in |D| — so this order lets the retriever's sparse top-k fill
  /// its tail from a prefix of this list instead of scoring the whole
  /// collection.
  std::span<const DocId> DocsByLength() const {
    return docs_by_length_.span();
  }

  /// Forward index: the analyzed token stream of a document, in order.
  /// Used by the PRF relevance model.
  std::span<const text::TermId> DocTerms(DocId d) const {
    SQE_DCHECK(d + 1 < doc_term_offsets_.size());
    return std::span<const text::TermId>(
        doc_terms_.data() + doc_term_offsets_[d],
        doc_terms_.data() + doc_term_offsets_[d + 1]);
  }

  // ---- terms ---------------------------------------------------------------

  const text::Vocabulary& vocabulary() const { return vocab_; }
  /// TermId for an analyzed term string, or kInvalidTermId.
  text::TermId LookupTerm(std::string_view term) const {
    return vocab_.Lookup(term);
  }
  const PostingList& Postings(text::TermId t) const {
    SQE_DCHECK(t < postings_.size());
    return postings_[t];
  }

  // ---- collection statistics ----------------------------------------------

  /// Total number of tokens in the collection.
  uint64_t TotalTokens() const { return total_tokens_; }
  double AverageDocLength() const {
    return NumDocuments() == 0
               ? 0.0
               : static_cast<double>(total_tokens_) /
                     static_cast<double>(NumDocuments());
  }
  /// Collection frequency of a term (occurrences across all docs).
  uint64_t CollectionFrequency(text::TermId t) const {
    return Postings(t).CollectionFrequency();
  }
  /// Number of documents containing the term.
  uint64_t DocumentFrequency(text::TermId t) const {
    return Postings(t).NumDocs();
  }
  /// Maximum-likelihood collection model P(t|C) with an epsilon floor for
  /// out-of-vocabulary terms (Indri uses 1/|C| for unseen terms).
  double CollectionProbability(text::TermId t) const;
  double UnseenTermProbability() const;

  /// True when the bulk arrays view a retained snapshot image rather than
  /// owned heap vectors.
  bool zero_copy() const { return doc_terms_.mapped(); }

  // ---- integrity ----------------------------------------------------------

  /// Deep structural validation: vocabulary bijection, per-term posting-list
  /// invariants (strictly increasing doc ids, sorted positions, block-max
  /// and block-boundary tables equal to recomputation), forward index
  /// consistent with doc lengths and vocabulary range, postings
  /// cross-checked against the forward index term counts, collection stats
  /// (total tokens) consistent, and the docs-by-length order a valid
  /// permutation. Returns Status::Corruption pinpointing the violation.
  /// Runs after every snapshot load; O(tokens + terms), load-time only.
  Status Validate() const;

  // ---- persistence ---------------------------------------------------------

  /// Postings-region accounting for `sqe_tool index stats` and the codec
  /// bench section: per-posting/per-block bytes a raw (v3) snapshot region
  /// stores vs the packed (v4) region — computed by encoding raw lists
  /// block by block (or reading the headers of already-packed ones), so a
  /// ratio regression is observable without serializing anything.
  struct PostingsStats {
    uint64_t num_postings = 0;
    uint64_t num_blocks = 0;
    /// docs + freqs + pos_offsets arrays, as the v3 region lays them out.
    uint64_t raw_bytes = 0;
    /// packed blob + per-block offset/position-base tables (v4 layout).
    uint64_t packed_bytes = 0;
    /// Blocks per doc-gap / freq bit width (index = header byte, 0..32).
    uint64_t doc_bits_blocks[33] = {};
    uint64_t freq_bits_blocks[33] = {};
  };
  PostingsStats ComputePostingsStats() const;

  /// `version` selects the container: 1 and 2 write the legacy
  /// varint-framed layout (2 adds the block-max block), 3 the aligned
  /// zero-copy layout with raw posting arrays, kIndexSnapshotVersion (4)
  /// the aligned layout with the bit-packed postings region
  /// (index/postings_codec.h). Any source mode serializes to any version —
  /// packed lists are materialized when writing raw layouts and raw lists
  /// are block-encoded when writing v4.
  Status SaveToFile(const std::string& path,
                    uint32_t version = io::kIndexSnapshotVersion) const;
  std::string SerializeToString(
      uint32_t version = io::kIndexSnapshotVersion) const;

  /// Loads a snapshot produced by SaveToFile/SerializeToString. LoadMode
  /// kZeroCopy requires an aligned (v3+) image and keeps it alive for the
  /// index's lifetime; kHeap copies and works for every version.
  static Result<InvertedIndex> FromSnapshotFile(
      const std::string& path, io::LoadMode mode = io::LoadMode::kHeap);
  static Result<InvertedIndex> FromSnapshotString(
      std::string image, io::LoadMode mode = io::LoadMode::kHeap);

 private:
  friend class IndexBuilder;
  friend struct InvertedIndexTestPeer;  // validator tests build broken indexes

  static Result<InvertedIndex> FromReader(const io::SnapshotReader& reader,
                                          io::LoadMode mode);
  static Result<InvertedIndex> LoadLegacy(const io::SnapshotReader& reader);
  static Result<InvertedIndex> LoadAligned(const io::SnapshotReader& reader,
                                           io::LoadMode mode);

  void BuildDocsByLength();

  text::Vocabulary vocab_;
  std::vector<PostingList> postings_;  // indexed by TermId
  VecOrView<uint32_t> doc_lengths_;
  StringColumn external_ids_;
  VecOrView<uint64_t> doc_term_offsets_;  // size N+1
  VecOrView<text::TermId> doc_terms_;
  VecOrView<DocId> docs_by_length_;  // derived; see DocsByLength()
  uint64_t total_tokens_ = 0;

  // Keeps the snapshot image (mmap region or heap string) alive while any
  // of the views above — or the per-term posting views — point into it.
  std::shared_ptr<const void> retainer_;
};

/// Builds an InvertedIndex from analyzed documents.
class IndexBuilder {
 public:
  IndexBuilder() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(IndexBuilder);

  /// Adds a document given its already-analyzed term stream. Returns the
  /// assigned DocId (dense, in insertion order).
  DocId AddDocument(std::string external_id,
                    const std::vector<std::string>& terms);

  /// Finalizes into an immutable index. The builder is consumed.
  InvertedIndex Build() &&;

  size_t NumDocuments() const { return index_.doc_lengths_.size(); }

 private:
  InvertedIndex index_;
  std::vector<PostingListBuilder> posting_builders_;
};

}  // namespace sqe::index

#endif  // SQE_INDEX_INVERTED_INDEX_H_
