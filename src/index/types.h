// Identifier types for the retrieval substrate.
#ifndef SQE_INDEX_TYPES_H_
#define SQE_INDEX_TYPES_H_

#include <cstdint>

namespace sqe::index {

using DocId = uint32_t;
inline constexpr DocId kInvalidDoc = UINT32_MAX;

}  // namespace sqe::index

#endif  // SQE_INDEX_TYPES_H_
