#include "sqe/combiner.h"

#include <unordered_set>

#include "common/macros.h"
#include "index/types.h"

namespace sqe::expansion {

retrieval::ResultList CombineByRankRanges(
    const std::vector<RangeSegment>& segments, size_t k) {
  retrieval::ResultList combined;
  combined.reserve(k);
  std::unordered_set<index::DocId> seen;
  seen.reserve(k);

  size_t prev_cutoff = 0;
  for (const RangeSegment& segment : segments) {
    SQE_CHECK(segment.results != nullptr);
    SQE_CHECK_MSG(segment.cutoff > prev_cutoff,
                  "segment cutoffs must be strictly increasing");
    size_t target = std::min(segment.cutoff, k);
    for (const retrieval::ScoredDoc& sd : *segment.results) {
      if (combined.size() >= target) break;
      if (seen.insert(sd.doc).second) combined.push_back(sd);
    }
    prev_cutoff = segment.cutoff;
    if (combined.size() >= k) break;
  }
  return combined;
}

retrieval::ResultList CombineSqeC(const retrieval::ResultList& t,
                                  const retrieval::ResultList& ts,
                                  const retrieval::ResultList& s, size_t k) {
  return CombineByRankRanges(
      {
          RangeSegment{5, &t},
          RangeSegment{200, &ts},
          RangeSegment{static_cast<size_t>(-1), &s},
      },
      k);
}

}  // namespace sqe::expansion
