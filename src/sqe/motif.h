// Motif definitions (Section 2.2 of the paper).
//
// Both motifs anchor at a query node q and identify an expansion article a:
//
//  Triangular (cycle length 3): q and a are doubly linked, and a belongs to
//  at least the same exact categories as q. Every category shared with q
//  closes one triangle q — a — c — q, so the pair yields |cats(q)| motif
//  instances.
//
//  Square (cycle length 4): q and a are doubly linked, and some category of
//  q is inside some category of a, or vice versa (a subcategory edge in
//  either direction). Every such category pair closes one square
//  q — a — c_a — c_q — q.
//
// These are the two cycle shapes the ground-truth analysis singled out:
// they satisfy the ~1/3 category-node ratio and the extra-edge density
// requirements (the doubly-linked pair contributes the extra edges); length-5
// cycles are excluded for performance, exactly as in the paper.
#ifndef SQE_SQE_MOTIF_H_
#define SQE_SQE_MOTIF_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "kb/types.h"

namespace sqe::expansion {

enum class MotifKind : uint8_t { kTriangular = 0, kSquare = 1 };

std::string_view MotifKindName(MotifKind kind);

/// Which motifs participate in query-graph construction. The paper's three
/// configurations: T (triangular only), S (square only), T&S (both).
struct MotifConfig {
  bool use_triangular = true;
  bool use_square = true;

  static MotifConfig Triangular() { return {true, false}; }
  static MotifConfig Square() { return {false, true}; }
  static MotifConfig Both() { return {true, true}; }

  std::string ToString() const;
};

/// One triangular motif instance.
struct TriangularMatch {
  kb::ArticleId query_node = kb::kInvalidArticle;
  kb::ArticleId expansion_node = kb::kInvalidArticle;
  kb::CategoryId shared_category = kb::kInvalidCategory;
};

/// One square motif instance.
struct SquareMatch {
  kb::ArticleId query_node = kb::kInvalidArticle;
  kb::ArticleId expansion_node = kb::kInvalidArticle;
  kb::CategoryId query_category = kb::kInvalidCategory;
  kb::CategoryId expansion_category = kb::kInvalidCategory;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_MOTIF_H_
