#include "sqe/query_builder.h"

#include <unordered_map>

namespace sqe::expansion {

namespace {
// Turns an article title into a query atom: multi-term titles become exact
// phrases; single-term titles become plain term atoms.
bool TitleAtom(const kb::KnowledgeBase& kb, const text::Analyzer& analyzer,
               kb::ArticleId article, double weight, retrieval::Atom* out) {
  std::vector<std::string> terms =
      analyzer.AnalyzePhrase(kb.ArticleTitle(article));
  if (terms.empty()) return false;
  *out = terms.size() == 1 ? retrieval::Atom::Term(std::move(terms[0]), weight)
                           : retrieval::Atom::Phrase(std::move(terms), weight);
  return true;
}

// Appends `atom` to `clause`, merging with an earlier atom whose term
// sequence is identical: distinct articles whose titles analyze to the same
// terms (stem-equal variants) must pool their weight into one atom — as
// separate atoms their weight mass would be split by the per-clause
// normalization at scoring time instead of summed.
void AppendMergingDuplicates(retrieval::Atom atom, retrieval::Clause* clause,
                             std::unordered_map<std::string, size_t>* by_terms) {
  std::string key;
  for (size_t i = 0; i < atom.terms.size(); ++i) {
    if (i > 0) key.push_back('\x1f');  // unit separator: never in terms
    key += atom.terms[i];
  }
  auto [it, inserted] = by_terms->try_emplace(std::move(key),
                                              clause->atoms.size());
  if (inserted) {
    clause->atoms.push_back(std::move(atom));
  } else {
    clause->atoms[it->second].weight += atom.weight;
  }
}
}  // namespace

retrieval::Query ExpandedQueryBuilder::Build(std::string_view user_query,
                                             const QueryGraph& graph,
                                             const QueryParts& parts) const {
  retrieval::Query query;

  if (parts.user_query) {
    retrieval::Clause clause;
    clause.weight = options_.user_weight;
    for (std::string& term : analyzer_->Analyze(user_query)) {
      clause.atoms.push_back(retrieval::Atom::Term(std::move(term)));
    }
    if (!clause.atoms.empty()) query.clauses.push_back(std::move(clause));
  }

  if (parts.query_entities) {
    retrieval::Clause clause;
    clause.weight = options_.entity_weight;
    std::unordered_map<std::string, size_t> by_terms;
    for (kb::ArticleId q : graph.query_nodes) {
      if (q == kb::kInvalidArticle || q >= kb_->NumArticles()) continue;
      retrieval::Atom atom;
      if (TitleAtom(*kb_, *analyzer_, q, 1.0, &atom)) {
        AppendMergingDuplicates(std::move(atom), &clause, &by_terms);
      }
    }
    if (!clause.atoms.empty()) query.clauses.push_back(std::move(clause));
  }

  if (parts.expansion_features) {
    retrieval::Clause clause;
    clause.weight = options_.expansion_weight;
    size_t limit = options_.max_expansion_features == 0
                       ? graph.expansion_nodes.size()
                       : std::min(options_.max_expansion_features,
                                  graph.expansion_nodes.size());
    std::unordered_map<std::string, size_t> by_terms;
    for (size_t i = 0; i < limit; ++i) {
      const ExpansionNode& node = graph.expansion_nodes[i];
      retrieval::Atom atom;
      // Weight proportional to motif multiplicity |m_a| (Section 2.3).
      if (TitleAtom(*kb_, *analyzer_, node.article,
                    static_cast<double>(node.motif_count), &atom)) {
        AppendMergingDuplicates(std::move(atom), &clause, &by_terms);
      }
    }
    if (!clause.atoms.empty()) query.clauses.push_back(std::move(clause));
  }

  return query;
}

}  // namespace sqe::expansion
