// ExpandedQueryBuilder: assembles the paper's three-part expanded query
// (Section 2.3) and all the baseline query forms the evaluation compares.
//
//   part 1: the user's query terms                      (QL_Q alone)
//   part 2: titles of the query nodes as phrases        (QL_E alone)
//   part 3: titles of the expansion nodes as phrases,
//           weighted proportionally to |m_a|            (QL_X alone)
#ifndef SQE_SQE_QUERY_BUILDER_H_
#define SQE_SQE_QUERY_BUILDER_H_

#include <span>
#include <string>
#include <string_view>

#include "common/macros.h"
#include "kb/knowledge_base.h"
#include "retrieval/query.h"
#include "sqe/query_graph.h"
#include "text/analyzer.h"

namespace sqe::expansion {

/// Which parts participate in the final query.
struct QueryParts {
  bool user_query = true;
  bool query_entities = true;
  bool expansion_features = true;

  static QueryParts QOnly() { return {true, false, false}; }
  static QueryParts EOnly() { return {false, true, false}; }
  static QueryParts QAndE() { return {true, true, false}; }
  static QueryParts XOnly() { return {false, false, true}; }
  static QueryParts All() { return {true, true, true}; }
};

struct QueryBuilderOptions {
  /// Relative clause weights w_q : w_e : w_x. The user's query keeps the
  /// largest share — the paper stresses it is "the only query form in which
  /// we are sure the system has not introduced any error".
  double user_weight = 1.0;
  double entity_weight = 0.8;
  double expansion_weight = 0.7;
  /// Keep at most this many expansion features (highest |m_a| first);
  /// 0 = unlimited.
  size_t max_expansion_features = 0;
};

class ExpandedQueryBuilder {
 public:
  /// `kb` and `analyzer` must outlive the builder.
  ExpandedQueryBuilder(const kb::KnowledgeBase* kb,
                       const text::Analyzer* analyzer,
                       QueryBuilderOptions options = {})
      : kb_(kb), analyzer_(analyzer), options_(options) {
    SQE_CHECK(kb != nullptr && analyzer != nullptr);
  }

  /// Builds the query combining the selected parts. Title phrases come from
  /// KB article titles analyzed through the same pipeline as documents;
  /// expansion atoms are weighted by their motif multiplicity. Within the
  /// entity and expansion clauses, atoms whose titles analyze to the same
  /// term sequence are merged by summing their weights.
  retrieval::Query Build(std::string_view user_query, const QueryGraph& graph,
                         const QueryParts& parts) const;

  const QueryBuilderOptions& options() const { return options_; }

 private:
  const kb::KnowledgeBase* kb_;
  const text::Analyzer* analyzer_;
  QueryBuilderOptions options_;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_QUERY_BUILDER_H_
