// SqeCache: query-graph and query-result caching for SqeEngine.
//
// The KB and index are immutable *within a snapshot epoch*, so both levels
// of the paper's pipeline are pure functions of their key and never need
// invalidation:
//
//   graph cache   (epoch, sorted query_nodes, MotifConfig) -> expansion
//                                                             subgraph
//   result cache  (epoch, analyzed query terms, graph key, query-node
//                  order, k, engine-options digest) -> built query + top-k
//
// The epoch component is how hot-swap (serving::SnapshotRegistry) reuses one
// shared cache across snapshot generations: a new epoch's keys never collide
// with an old epoch's, so stale graph/result entries are simply never looked
// up again and die by LRU eviction — no flush, no invalidation pass, no
// coordination with in-flight readers of the old epoch. Engines that own a
// private cache use epoch 0 throughout; nothing changes for them.
//
// The graph key sorts the query nodes because motif aggregation is
// order-independent — only the `query_nodes` field of QueryGraph reflects
// caller order, so the cached GraphEntry omits it and the engine re-attaches
// the caller's order on a hit, keeping cached output bit-identical to the
// uncached path. The result key, by contrast, keeps the exact node order:
// the entity clause is built in that order and floating-point accumulation
// is not associative, so permutations may not share a result entry.
//
// Thread-safe (sharded LRU with per-shard annotated mutexes); values are
// handed out as shared_ptr<const ...> snapshots that survive eviction.
#ifndef SQE_SQE_SQE_CACHE_H_
#define SQE_SQE_SQE_CACHE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "kb/types.h"
#include "retrieval/query.h"
#include "retrieval/result.h"
#include "retrieval/retriever.h"
#include "sqe/motif.h"
#include "sqe/query_builder.h"
#include "sqe/query_graph.h"

namespace sqe::expansion {

struct SqeCacheOptions {
  /// Master switch: the engine constructs no cache (and pays zero overhead)
  /// when false, so existing callers and benches are unchanged by default.
  bool enabled = false;
  size_t graph_capacity = 4096;
  size_t graph_max_bytes = 32u << 20;
  size_t result_capacity = 8192;
  size_t result_max_bytes = 64u << 20;
  /// Shards per level (rounded up to a power of two).
  size_t num_shards = 16;
};

/// Snapshot of both cache levels' counters.
struct SqeCacheStats {
  CacheStats graph;
  CacheStats result;

  /// One-line human-readable rendering for tools and benches.
  std::string ToString() const;
};

class SqeCache {
 public:
  /// The order-independent part of a QueryGraph: everything except
  /// `query_nodes`, which the engine re-attaches in the caller's order.
  struct GraphEntry {
    std::vector<ExpansionNode> expansion_nodes;
    std::vector<kb::CategoryId> category_nodes;
    uint64_t total_motifs = 0;
  };

  /// A finished run: the built expanded query and its ranked results.
  struct RunEntry {
    retrieval::Query query;
    retrieval::ResultList results;
  };

  explicit SqeCache(const SqeCacheOptions& options);
  SQE_DISALLOW_COPY_AND_ASSIGN(SqeCache);

  // ---- keys -----------------------------------------------------------------

  /// `epoch` is the snapshot generation the keyed data was derived from
  /// (0 for engines whose KB/index never change). It prefixes both keys, so
  /// entries from different epochs can share one cache without ever serving
  /// each other's lookups.
  static std::string GraphKey(std::span<const kb::ArticleId> query_nodes,
                              const MotifConfig& motifs, uint64_t epoch);
  static std::string RunKey(std::span<const std::string> analyzed_terms,
                            const std::string& graph_key,
                            std::span<const kb::ArticleId> query_nodes,
                            size_t k, uint64_t options_digest,
                            uint64_t epoch);
  /// Digest of everything outside the per-call arguments that shapes a
  /// result: query-builder weights/limits and retriever smoothing.
  static uint64_t OptionsDigest(const QueryBuilderOptions& builder,
                                const retrieval::RetrieverOptions& retriever);

  // ---- the two cache levels -------------------------------------------------

  std::shared_ptr<const GraphEntry> LookupGraph(const std::string& key);
  /// Strips `query_nodes` from `graph` and caches the rest; returns the
  /// resident entry so the caller skips a second lookup.
  std::shared_ptr<const GraphEntry> InsertGraph(const std::string& key,
                                                QueryGraph graph);

  std::shared_ptr<const RunEntry> LookupRun(const std::string& key);
  void InsertRun(const std::string& key, RunEntry run);

  SqeCacheStats Stats() const;

 private:
  ShardedLruCache<std::string, GraphEntry> graphs_;
  ShardedLruCache<std::string, RunEntry> runs_;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_SQE_CACHE_H_
