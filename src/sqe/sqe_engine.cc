#include "sqe/sqe_engine.h"

#include "common/timer.h"

namespace sqe::expansion {

SqeEngine::SqeEngine(const kb::KnowledgeBase* kb,
                     const index::InvertedIndex* index,
                     const entity::EntityLinker* linker,
                     const text::Analyzer* analyzer, SqeEngineConfig config)
    : kb_(kb),
      index_(index),
      linker_(linker),
      analyzer_(analyzer),
      config_(config),
      motif_finder_(kb),
      query_builder_(kb, analyzer, config.query_builder),
      retriever_(index, config.retriever) {
  SQE_CHECK(kb != nullptr && index != nullptr && analyzer != nullptr);
  if (config_.cache.enabled) {
    cache_ = std::make_unique<SqeCache>(config_.cache);
    cache_options_digest_ =
        SqeCache::OptionsDigest(config_.query_builder, config_.retriever);
  }
}

std::vector<kb::ArticleId> SqeEngine::LinkQueryNodes(
    std::string_view user_query) const {
  SQE_CHECK_MSG(linker_ != nullptr,
                "automatic entity selection requires an entity linker");
  std::vector<kb::ArticleId> nodes;
  for (const entity::LinkedEntity& e : linker_->Link(user_query)) {
    nodes.push_back(e.article);
  }
  return nodes;
}

SqeRunResult SqeEngine::RunSqe(std::string_view user_query,
                               std::span<const kb::ArticleId> query_nodes,
                               const MotifConfig& motifs, size_t k) const {
  retrieval::RetrieverScratch scratch;
  return RunSqeWithScratch(user_query, query_nodes, motifs, k, &scratch);
}

SqeRunResult SqeEngine::RunSqeWithScratch(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& motifs, size_t k,
    retrieval::RetrieverScratch* scratch) const {
  if (cache_ != nullptr) {
    return RunSqeCached(user_query, query_nodes, motifs, k, scratch);
  }
  SqeRunResult out;
  Timer total;

  Timer graph_timer;
  out.graph = motif_finder_.BuildQueryGraph(query_nodes, motifs);
  out.graph_build_ms = graph_timer.ElapsedMillis();

  out.query = query_builder_.Build(user_query, out.graph, QueryParts::All());

  Timer retrieval_timer;
  out.results = retriever_.Retrieve(out.query, k, scratch);
  out.retrieval_ms = retrieval_timer.ElapsedMillis();
  out.total_ms = total.ElapsedMillis();
  return out;
}

SqeRunResult SqeEngine::RunSqeCached(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& motifs, size_t k,
    retrieval::RetrieverScratch* scratch) const {
  SqeRunResult out;
  Timer total;

  // Level 1: the expansion subgraph, keyed order-independently. A hit skips
  // motif traversal; either way the caller's node order is re-attached so
  // the assembled QueryGraph matches the uncached build exactly.
  Timer graph_timer;
  const std::string graph_key = SqeCache::GraphKey(query_nodes, motifs);
  std::shared_ptr<const SqeCache::GraphEntry> graph_entry =
      cache_->LookupGraph(graph_key);
  if (graph_entry == nullptr) {
    graph_entry = cache_->InsertGraph(
        graph_key, motif_finder_.BuildQueryGraph(query_nodes, motifs));
  }
  out.graph.query_nodes.assign(query_nodes.begin(), query_nodes.end());
  out.graph.expansion_nodes = graph_entry->expansion_nodes;
  out.graph.category_nodes = graph_entry->category_nodes;
  out.graph.total_motifs = graph_entry->total_motifs;
  out.graph_build_ms = graph_timer.ElapsedMillis();

  // Level 2: the finished run. A hit returns the stored query + ranking —
  // both byte-identical to what the miss path below produced when it filled
  // the entry — and skips query building and retrieval entirely.
  const std::string run_key =
      SqeCache::RunKey(analyzer_->Analyze(user_query), graph_key, query_nodes,
                       k, cache_options_digest_);
  if (std::shared_ptr<const SqeCache::RunEntry> run =
          cache_->LookupRun(run_key)) {
    out.query = run->query;
    out.results = run->results;
    out.total_ms = total.ElapsedMillis();
    return out;
  }

  out.query = query_builder_.Build(user_query, out.graph, QueryParts::All());
  Timer retrieval_timer;
  out.results = retriever_.Retrieve(out.query, k, scratch);
  out.retrieval_ms = retrieval_timer.ElapsedMillis();
  cache_->InsertRun(run_key, SqeCache::RunEntry{out.query, out.results});
  out.total_ms = total.ElapsedMillis();
  return out;
}

std::vector<SqeRunResult> SqeEngine::RunBatch(
    std::span<const BatchQueryInput> queries, const MotifConfig& motifs,
    size_t k, ThreadPool* pool) const {
  std::vector<SqeRunResult> results(queries.size());
  const size_t workers = pool != nullptr ? pool->num_workers() : 1;
  // One scratch per worker id, never per query: the collection-sized
  // accumulator is allocated `workers` times for the whole batch.
  std::vector<retrieval::RetrieverScratch> scratch(workers);

  auto run_one = [&](size_t i, size_t worker) {
    results[i] = RunSqeWithScratch(queries[i].text, queries[i].query_nodes,
                                   motifs, k, &scratch[worker]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.size(), run_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i, 0);
  }
  return results;
}

SqeRunResult SqeEngine::RunWithGraph(std::string_view user_query,
                                     const QueryGraph& graph,
                                     size_t k) const {
  SqeRunResult out;
  Timer total;
  out.graph = graph;
  out.query = query_builder_.Build(user_query, graph, QueryParts::All());
  Timer retrieval_timer;
  out.results = retriever_.Retrieve(out.query, k);
  out.retrieval_ms = retrieval_timer.ElapsedMillis();
  out.total_ms = total.ElapsedMillis();
  return out;
}

retrieval::ResultList SqeEngine::RunBaseline(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const QueryParts& parts, size_t k) const {
  QueryGraph graph;
  graph.query_nodes.assign(query_nodes.begin(), query_nodes.end());
  retrieval::Query query = query_builder_.Build(user_query, graph, parts);
  return retriever_.Retrieve(query, k);
}

SqeCRunResult SqeEngine::RunSqeC(std::string_view user_query,
                                 std::span<const kb::ArticleId> query_nodes,
                                 size_t k) const {
  SqeCRunResult out;
  Timer total;

  SqeRunResult t = RunSqe(user_query, query_nodes, MotifConfig::Triangular(), k);
  SqeRunResult ts = RunSqe(user_query, query_nodes, MotifConfig::Both(), k);
  SqeRunResult s = RunSqe(user_query, query_nodes, MotifConfig::Square(), k);

  out.graph_build_ms_t = t.graph_build_ms;
  out.graph_build_ms_ts = ts.graph_build_ms;
  out.graph_build_ms_s = s.graph_build_ms;
  out.num_features_t = t.graph.expansion_nodes.size();
  out.num_features_ts = ts.graph.expansion_nodes.size();
  out.num_features_s = s.graph.expansion_nodes.size();

  out.results = CombineSqeC(t.results, ts.results, s.results, k);
  out.total_ms = total.ElapsedMillis();
  return out;
}

retrieval::Query SqeEngine::BuildExpandedQuery(std::string_view user_query,
                                               const QueryGraph& graph) const {
  return query_builder_.Build(user_query, graph, QueryParts::All());
}

}  // namespace sqe::expansion
