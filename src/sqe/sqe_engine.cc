#include "sqe/sqe_engine.h"

#include "common/timer.h"

namespace sqe::expansion {

SqeEngine::SqeEngine(const kb::KnowledgeBase* kb,
                     const index::InvertedIndex* index,
                     const entity::EntityLinker* linker,
                     const text::Analyzer* analyzer, SqeEngineConfig config)
    : kb_(kb),
      index_(index),
      linker_(linker),
      analyzer_(analyzer),
      config_(config),
      motif_finder_(kb),
      query_builder_(kb, analyzer, config.query_builder),
      retriever_(index, config.retriever) {
  SQE_CHECK(kb != nullptr && index != nullptr && analyzer != nullptr);
  if (config_.pruning.enabled) {
    wand_ = std::make_unique<retrieval::WandRetriever>(&retriever_);
  }
  if (config_.shared_cache != nullptr) {
    cache_ = config_.shared_cache;
  } else if (config_.cache.enabled) {
    owned_cache_ = std::make_unique<SqeCache>(config_.cache);
    cache_ = owned_cache_.get();
  }
  if (cache_ != nullptr) {
    // Deliberately NOT part of the digest: pruning is bit-identical to
    // exhaustive scoring, so pruned and unpruned engines may share entries.
    cache_options_digest_ =
        SqeCache::OptionsDigest(config_.query_builder, config_.retriever);
  }
  if (config_.sharding.num_shards > 1) {
    router_ = std::make_unique<retrieval::ShardRouter>(
        index, config_.sharding.num_shards);
    sharded_retriever_ = std::make_unique<retrieval::ShardedRetriever>(
        &retriever_, router_.get(), wand_.get());
  }
}

std::vector<kb::ArticleId> SqeEngine::LinkQueryNodes(
    std::string_view user_query) const {
  SQE_CHECK_MSG(linker_ != nullptr,
                "automatic entity selection requires an entity linker");
  std::vector<kb::ArticleId> nodes;
  for (const entity::LinkedEntity& e : linker_->Link(user_query)) {
    nodes.push_back(e.article);
  }
  return nodes;
}

SqeEngine::PreparedRun SqeEngine::PrepareRun(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& motifs, size_t k, SqeRunResult* out) const {
  PreparedRun prep;
  if (cache_ == nullptr) {
    Timer graph_timer;
    out->graph = motif_finder_.BuildQueryGraph(query_nodes, motifs);
    out->graph_build_ms = graph_timer.ElapsedMillis();
    out->query =
        query_builder_.Build(user_query, out->graph, QueryParts::All());
    return prep;
  }

  // Level 1: the expansion subgraph, keyed order-independently. A hit skips
  // motif traversal; either way the caller's node order is re-attached so
  // the assembled QueryGraph matches the uncached build exactly.
  Timer graph_timer;
  const std::string graph_key =
      SqeCache::GraphKey(query_nodes, motifs, config_.cache_epoch);
  std::shared_ptr<const SqeCache::GraphEntry> graph_entry =
      cache_->LookupGraph(graph_key);
  if (graph_entry == nullptr) {
    graph_entry = cache_->InsertGraph(
        graph_key, motif_finder_.BuildQueryGraph(query_nodes, motifs));
  }
  out->graph.query_nodes.assign(query_nodes.begin(), query_nodes.end());
  out->graph.expansion_nodes = graph_entry->expansion_nodes;
  out->graph.category_nodes = graph_entry->category_nodes;
  out->graph.total_motifs = graph_entry->total_motifs;
  out->graph_build_ms = graph_timer.ElapsedMillis();

  // Level 2: the finished run. A hit returns the stored query + ranking —
  // both byte-identical to what the miss path produced when it filled the
  // entry (sharded or not) — and skips query building and retrieval.
  prep.run_key =
      SqeCache::RunKey(analyzer_->Analyze(user_query), graph_key, query_nodes,
                       k, cache_options_digest_, config_.cache_epoch);
  if (std::shared_ptr<const SqeCache::RunEntry> run =
          cache_->LookupRun(prep.run_key)) {
    out->query = run->query;
    out->results = run->results;
    prep.cached = true;
    return prep;
  }
  out->query = query_builder_.Build(user_query, out->graph, QueryParts::All());
  return prep;
}

retrieval::ResultList SqeEngine::RetrieveTopK(
    const retrieval::Query& query, size_t k,
    retrieval::RetrieverScratch* scratch) const {
  // Even on a sharded engine the pool-less path scans the full range: the
  // exact top-k under the total (score desc, DocId asc) order is unique, so
  // this is bit-identical to the shard sweep + merge while skipping its
  // per-shard fixed costs (subrange searches, per-shard tails). The sweep
  // path is what the pooled fan-out and the batch grid use; its equivalence
  // is asserted by the shard determinism tests. With pruning on, the WAND
  // scorer substitutes on both paths — same results, fewer decoded
  // postings.
  if (wand_ != nullptr) return wand_->Retrieve(query, k, scratch);
  return retriever_.Retrieve(query, k, scratch);
}

SqeRunResult SqeEngine::RunSqe(std::string_view user_query,
                               std::span<const kb::ArticleId> query_nodes,
                               const MotifConfig& motifs, size_t k) const {
  retrieval::RetrieverScratch scratch;
  return RunSqeWithScratch(user_query, query_nodes, motifs, k, &scratch);
}

SqeRunResult SqeEngine::RunSqe(std::string_view user_query,
                               std::span<const kb::ArticleId> query_nodes,
                               const MotifConfig& motifs, size_t k,
                               ThreadPool* pool) const {
  if (router_ == nullptr || pool == nullptr || pool->num_threads() <= 1) {
    return RunSqe(user_query, query_nodes, motifs, k);
  }
  SqeRunResult out;
  Timer total;
  PreparedRun prep = PrepareRun(user_query, query_nodes, motifs, k, &out);
  if (!prep.cached) {
    std::vector<retrieval::RetrieverScratch> scratch(pool->num_workers());
    Timer retrieval_timer;
    out.results = sharded_retriever_->Retrieve(out.query, k, pool, scratch);
    out.retrieval_ms = retrieval_timer.ElapsedMillis();
    if (cache_ != nullptr) {
      cache_->InsertRun(prep.run_key, SqeCache::RunEntry{out.query, out.results});
    }
  }
  out.total_ms = total.ElapsedMillis();
  return out;
}

Result<SqeRunResult> SqeEngine::RunSqe(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& motifs, size_t k, const RunControl& control,
    retrieval::RetrieverScratch* scratch) const {
  retrieval::RetrieverScratch local_scratch;
  if (scratch == nullptr) scratch = &local_scratch;

  SqeRunResult out;
  Timer total;
  SQE_RETURN_IF_ERROR(control.Check(RunPhase::kPreAnalysis));
  SQE_RETURN_IF_ERROR(control.Check(RunPhase::kPreMotifTraversal));
  PreparedRun prep = PrepareRun(user_query, query_nodes, motifs, k, &out);
  if (!prep.cached) {
    SQE_RETURN_IF_ERROR(control.Check(RunPhase::kPreRetrieval));
    Timer retrieval_timer;
    if (router_ != nullptr) {
      // Sequential shard sweep with a checkpoint between slices. Mirrors
      // ShardedRetriever::Retrieve(pool=null) exactly — resolve once
      // against global collection stats, score each shard's range, merge
      // under the total order — so a completed run is bit-identical to
      // every other retrieval path.
      const size_t num_shards = router_->num_shards();
      if (k > 0 && index_->NumDocuments() > 0) {
        retrieval::ResolvedQuery resolved = retriever_.Resolve(out.query);
        if (!resolved.empty()) {
          std::vector<retrieval::ResultList> shard_lists(num_shards);
          for (size_t s = 0; s < num_shards; ++s) {
            if (s > 0) {
              SQE_RETURN_IF_ERROR(control.Check(RunPhase::kShardSlice));
            }
            shard_lists[s] =
                sharded_retriever_->RetrieveShard(resolved, s, k, scratch);
          }
          router_->RecordQuery(num_shards);
          out.results = retrieval::MergeShardTopK(shard_lists, k);
        }
      }
    } else {
      out.results = RetrieveTopK(out.query, k, scratch);
    }
    out.retrieval_ms = retrieval_timer.ElapsedMillis();
    if (cache_ != nullptr) {
      cache_->InsertRun(prep.run_key, SqeCache::RunEntry{out.query, out.results});
    }
  }
  out.total_ms = total.ElapsedMillis();
  return out;
}

SqeRunResult SqeEngine::RunSqeWithScratch(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& motifs, size_t k,
    retrieval::RetrieverScratch* scratch) const {
  SqeRunResult out;
  Timer total;
  PreparedRun prep = PrepareRun(user_query, query_nodes, motifs, k, &out);
  if (!prep.cached) {
    Timer retrieval_timer;
    out.results = RetrieveTopK(out.query, k, scratch);
    out.retrieval_ms = retrieval_timer.ElapsedMillis();
    if (cache_ != nullptr) {
      cache_->InsertRun(prep.run_key, SqeCache::RunEntry{out.query, out.results});
    }
  }
  out.total_ms = total.ElapsedMillis();
  return out;
}

std::vector<SqeRunResult> SqeEngine::RunBatch(
    std::span<const BatchQueryInput> queries, const MotifConfig& motifs,
    size_t k, ThreadPool* pool) const {
  if (router_ != nullptr && pool != nullptr) {
    return RunBatchShardGrid(queries, motifs, k, pool);
  }
  std::vector<SqeRunResult> results(queries.size());
  const size_t workers = pool != nullptr ? pool->num_workers() : 1;
  // One scratch per worker id, never per query: the collection-sized
  // accumulator is allocated `workers` times for the whole batch.
  std::vector<retrieval::RetrieverScratch> scratch(workers);

  auto run_one = [&](size_t i, size_t worker) {
    results[i] = RunSqeWithScratch(queries[i].text, queries[i].query_nodes,
                                   motifs, k, &scratch[worker]);
  };
  if (pool != nullptr) {
    pool->ParallelFor(queries.size(), run_one);
  } else {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i, 0);
  }
  return results;
}

std::vector<SqeRunResult> SqeEngine::RunBatchShardGrid(
    std::span<const BatchQueryInput> queries, const MotifConfig& motifs,
    size_t k, ThreadPool* pool) const {
  const size_t num_queries = queries.size();
  const size_t num_shards = router_->num_shards();
  std::vector<SqeRunResult> results(num_queries);
  std::vector<retrieval::RetrieverScratch> scratch(pool->num_workers());

  struct QueryState {
    retrieval::ResolvedQuery resolved;
    std::string run_key;
    bool cached = false;
  };
  std::vector<QueryState> states(num_queries);
  std::vector<retrieval::ResultList> shard_lists(num_queries * num_shards);
  std::vector<double> shard_ms(num_queries * num_shards, 0.0);

  // Phase 1 — expansion, query build, atom resolution (cache consulted).
  // Each worker writes only its own query's slots; the pool's completion
  // barrier publishes them to the next phase.
  pool->ParallelFor(num_queries, [&](size_t q, size_t) {
    Timer total;
    PreparedRun prep = PrepareRun(queries[q].text, queries[q].query_nodes,
                                  motifs, k, &results[q]);
    states[q].run_key = std::move(prep.run_key);
    states[q].cached = prep.cached;
    if (!prep.cached) {
      states[q].resolved = retriever_.Resolve(results[q].query);
    }
    results[q].total_ms = total.ElapsedMillis();
  });

  // Phase 2 — the (query × shard) scoring grid: every pair is an
  // independent task, so threads fill across queries and within them.
  pool->ParallelFor2D(num_queries, num_shards,
                      [&](size_t q, size_t s, size_t worker) {
    if (states[q].cached) return;
    Timer shard_timer;
    shard_lists[q * num_shards + s] = sharded_retriever_->RetrieveShard(
        states[q].resolved, s, k, &scratch[worker]);
    shard_ms[q * num_shards + s] = shard_timer.ElapsedMillis();
  });

  // Phase 3 — deterministic merge + cache fill.
  pool->ParallelFor(num_queries, [&](size_t q, size_t) {
    if (states[q].cached) return;
    Timer merge_timer;
    results[q].results = retrieval::MergeShardTopK(
        std::span<const retrieval::ResultList>(shard_lists)
            .subspan(q * num_shards, num_shards),
        k);
    router_->RecordQuery(num_shards);
    // Grid mode has no per-query wall time; report the sequential cost
    // (shard scoring + merge), which is what the timing tables compare.
    double retrieval = merge_timer.ElapsedMillis();
    for (size_t s = 0; s < num_shards; ++s) {
      retrieval += shard_ms[q * num_shards + s];
    }
    results[q].retrieval_ms = retrieval;
    results[q].total_ms += retrieval;
    if (cache_ != nullptr) {
      cache_->InsertRun(states[q].run_key,
                        SqeCache::RunEntry{results[q].query,
                                           results[q].results});
    }
  });
  return results;
}

SqeRunResult SqeEngine::RunWithGraph(std::string_view user_query,
                                     const QueryGraph& graph,
                                     size_t k) const {
  SqeRunResult out;
  Timer total;
  out.graph = graph;
  out.query = query_builder_.Build(user_query, graph, QueryParts::All());
  Timer retrieval_timer;
  retrieval::RetrieverScratch scratch;
  out.results = RetrieveTopK(out.query, k, &scratch);
  out.retrieval_ms = retrieval_timer.ElapsedMillis();
  out.total_ms = total.ElapsedMillis();
  return out;
}

retrieval::ResultList SqeEngine::RunBaseline(
    std::string_view user_query, std::span<const kb::ArticleId> query_nodes,
    const QueryParts& parts, size_t k) const {
  QueryGraph graph;
  graph.query_nodes.assign(query_nodes.begin(), query_nodes.end());
  retrieval::Query query = query_builder_.Build(user_query, graph, parts);
  retrieval::RetrieverScratch scratch;
  return RetrieveTopK(query, k, &scratch);
}

SqeCRunResult SqeEngine::RunSqeC(std::string_view user_query,
                                 std::span<const kb::ArticleId> query_nodes,
                                 size_t k) const {
  SqeCRunResult out;
  Timer total;

  SqeRunResult t = RunSqe(user_query, query_nodes, MotifConfig::Triangular(), k);
  SqeRunResult ts = RunSqe(user_query, query_nodes, MotifConfig::Both(), k);
  SqeRunResult s = RunSqe(user_query, query_nodes, MotifConfig::Square(), k);

  out.graph_build_ms_t = t.graph_build_ms;
  out.graph_build_ms_ts = ts.graph_build_ms;
  out.graph_build_ms_s = s.graph_build_ms;
  out.num_features_t = t.graph.expansion_nodes.size();
  out.num_features_ts = ts.graph.expansion_nodes.size();
  out.num_features_s = s.graph.expansion_nodes.size();

  out.results = CombineSqeC(t.results, ts.results, s.results, k);
  out.total_ms = total.ElapsedMillis();
  return out;
}

retrieval::Query SqeEngine::BuildExpandedQuery(std::string_view user_query,
                                               const QueryGraph& graph) const {
  return query_builder_.Build(user_query, graph, QueryParts::All());
}

}  // namespace sqe::expansion
