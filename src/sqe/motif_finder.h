// MotifFinder: enumerates triangular and square motif instances around
// query nodes and assembles query graphs.
//
// Complexity per query node q: O(Σ_{a ∈ N⁺(q)} [log d(a) + |cats(q)|·log
// |cats(a)| + |cats(q)|·|cats(a)|·log d_c]) — reciprocity checks are binary
// searches in sorted CSR adjacency; category tests are sorted-set
// operations. No index structures beyond the KB itself are used, matching
// the paper's "no indexing, no parallelism" measurement setup.
#ifndef SQE_SQE_MOTIF_FINDER_H_
#define SQE_SQE_MOTIF_FINDER_H_

#include <span>
#include <vector>

#include "common/macros.h"
#include "kb/knowledge_base.h"
#include "sqe/motif.h"
#include "sqe/query_graph.h"

namespace sqe::expansion {

class MotifFinder {
 public:
  /// `kb` must outlive the finder.
  explicit MotifFinder(const kb::KnowledgeBase* kb) : kb_(kb) {
    SQE_CHECK(kb != nullptr);
  }

  /// All triangular motif instances anchored at `q`.
  std::vector<TriangularMatch> FindTriangular(kb::ArticleId q) const;

  /// All square motif instances anchored at `q`.
  std::vector<SquareMatch> FindSquare(kb::ArticleId q) const;

  /// Builds the query graph for a set of query nodes under `config`:
  /// matches motifs around every query node, aggregates ⟨a, |m_a|⟩, and
  /// drops expansion candidates that are themselves query nodes.
  QueryGraph BuildQueryGraph(std::span<const kb::ArticleId> query_nodes,
                             const MotifConfig& config) const;

  const kb::KnowledgeBase& kb() const { return *kb_; }

 private:
  const kb::KnowledgeBase* kb_;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_MOTIF_FINDER_H_
