// MotifFinder: enumerates triangular and square motif instances around
// query nodes and assembles query graphs.
//
// Complexity per query node q: O(Σ_{a ∈ N↔(q)} [|cats(q)| · (|cats(a)| +
// d_c(cats(q)))]) where N↔(q) is the precomputed reciprocal-link list —
// doubly-linked candidates are enumerated directly from the KB's
// reciprocal CSR (no per-out-link binary search), and category relatedness
// is a sorted three-way merge rather than per-pair binary searches. The
// finder is stateless and const, so batch-pipeline workers share one
// instance concurrently.
#ifndef SQE_SQE_MOTIF_FINDER_H_
#define SQE_SQE_MOTIF_FINDER_H_

#include <span>
#include <vector>

#include "common/macros.h"
#include "kb/knowledge_base.h"
#include "sqe/motif.h"
#include "sqe/query_graph.h"

namespace sqe::expansion {

class MotifFinder {
 public:
  /// `kb` must outlive the finder.
  explicit MotifFinder(const kb::KnowledgeBase* kb) : kb_(kb) {
    SQE_CHECK(kb != nullptr);
  }

  /// All triangular motif instances anchored at `q`.
  std::vector<TriangularMatch> FindTriangular(kb::ArticleId q) const;

  /// All square motif instances anchored at `q`.
  std::vector<SquareMatch> FindSquare(kb::ArticleId q) const;

  /// Builds the query graph for a set of query nodes under `config`:
  /// matches motifs around every query node, aggregates ⟨a, |m_a|⟩, and
  /// drops expansion candidates that are themselves query nodes.
  QueryGraph BuildQueryGraph(std::span<const kb::ArticleId> query_nodes,
                             const MotifConfig& config) const;

  const kb::KnowledgeBase& kb() const { return *kb_; }

 private:
  const kb::KnowledgeBase* kb_;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_MOTIF_FINDER_H_
