#include "sqe/motif.h"

namespace sqe::expansion {

std::string_view MotifKindName(MotifKind kind) {
  switch (kind) {
    case MotifKind::kTriangular:
      return "triangular";
    case MotifKind::kSquare:
      return "square";
  }
  return "?";
}

std::string MotifConfig::ToString() const {
  if (use_triangular && use_square) return "T&S";
  if (use_triangular) return "T";
  if (use_square) return "S";
  return "none";
}

}  // namespace sqe::expansion
