#include "sqe/motif_finder.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace sqe::expansion {

namespace {
// True iff sorted `sub` ⊆ sorted `super`.
bool SortedSubset(std::span<const kb::CategoryId> sub,
                  std::span<const kb::CategoryId> super) {
  size_t i = 0, j = 0;
  while (i < sub.size()) {
    while (j < super.size() && super[j] < sub[i]) ++j;
    if (j >= super.size() || super[j] != sub[i]) return false;
    ++i;
    ++j;
  }
  return true;
}
}  // namespace

std::vector<TriangularMatch> MotifFinder::FindTriangular(
    kb::ArticleId q) const {
  std::vector<TriangularMatch> matches;
  std::span<const kb::CategoryId> q_cats = kb_->CategoriesOf(q);
  // A triangle needs a shared category; a query node with no categories
  // closes no length-3 cycle through a category.
  if (q_cats.empty()) return matches;

  for (kb::ArticleId a : kb_->ReciprocalLinks(q)) {
    if (a == q) continue;
    std::span<const kb::CategoryId> a_cats = kb_->CategoriesOf(a);
    if (!SortedSubset(q_cats, a_cats)) continue;
    // Every category of q is shared; each closes one triangle.
    for (kb::CategoryId c : q_cats) {
      matches.push_back(TriangularMatch{q, a, c});
    }
  }
  return matches;
}

std::vector<SquareMatch> MotifFinder::FindSquare(kb::ArticleId q) const {
  std::vector<SquareMatch> matches;
  std::span<const kb::CategoryId> q_cats = kb_->CategoriesOf(q);
  if (q_cats.empty()) return matches;

  for (kb::ArticleId a : kb_->ReciprocalLinks(q)) {
    if (a == q) continue;
    std::span<const kb::CategoryId> a_cats = kb_->CategoriesOf(a);
    // For each query category, the squares it closes are the members of
    // a_cats related to it by a C->C edge in either direction. Both the
    // neighbor lists and a_cats are sorted, so a three-way merge finds them
    // in O(|parents| + |children| + |a_cats|) instead of the former
    // |q_cats| x |a_cats| nested loop with a binary search per pair. The
    // union walk emits each related category once, ascending — the same
    // order the nested loop produced.
    for (kb::CategoryId cq : q_cats) {
      std::span<const kb::CategoryId> up = kb_->ParentCategories(cq);
      std::span<const kb::CategoryId> down = kb_->ChildCategories(cq);
      size_t iu = 0, id = 0;
      for (kb::CategoryId ca : a_cats) {
        while (iu < up.size() && up[iu] < ca) ++iu;
        while (id < down.size() && down[id] < ca) ++id;
        if (ca == cq) continue;  // identical categories form a triangle
        bool related = (iu < up.size() && up[iu] == ca) ||
                       (id < down.size() && down[id] == ca);
        if (related) matches.push_back(SquareMatch{q, a, cq, ca});
      }
    }
  }
  return matches;
}

QueryGraph MotifFinder::BuildQueryGraph(
    std::span<const kb::ArticleId> query_nodes,
    const MotifConfig& config) const {
  QueryGraph graph;
  graph.query_nodes.assign(query_nodes.begin(), query_nodes.end());

  std::unordered_set<kb::ArticleId> query_set(query_nodes.begin(),
                                              query_nodes.end());
  std::unordered_map<kb::ArticleId, ExpansionNode> by_article;
  std::unordered_set<kb::CategoryId> categories;

  for (kb::ArticleId q : query_nodes) {
    if (q == kb::kInvalidArticle || q >= kb_->NumArticles()) continue;
    if (config.use_triangular) {
      for (const TriangularMatch& m : FindTriangular(q)) {
        if (query_set.contains(m.expansion_node)) continue;
        ExpansionNode& node = by_article[m.expansion_node];
        node.article = m.expansion_node;
        node.motif_count++;
        node.triangular_count++;
        categories.insert(m.shared_category);
        graph.total_motifs++;
      }
    }
    if (config.use_square) {
      for (const SquareMatch& m : FindSquare(q)) {
        if (query_set.contains(m.expansion_node)) continue;
        ExpansionNode& node = by_article[m.expansion_node];
        node.article = m.expansion_node;
        node.motif_count++;
        node.square_count++;
        categories.insert(m.query_category);
        categories.insert(m.expansion_category);
        graph.total_motifs++;
      }
    }
  }

  graph.expansion_nodes.reserve(by_article.size());
  for (auto& [article, node] : by_article) {
    graph.expansion_nodes.push_back(node);
  }
  std::sort(graph.expansion_nodes.begin(), graph.expansion_nodes.end(),
            [](const ExpansionNode& a, const ExpansionNode& b) {
              if (a.motif_count != b.motif_count) {
                return a.motif_count > b.motif_count;
              }
              return a.article < b.article;
            });

  graph.category_nodes.assign(categories.begin(), categories.end());
  std::sort(graph.category_nodes.begin(), graph.category_nodes.end());
  return graph;
}

}  // namespace sqe::expansion
