// QueryGraph: the subgraph of the KB containing the query nodes and the
// expansion nodes selected by motif matching, with the per-article motif
// multiplicity ⟨a, |m_a|⟩ the query builder turns into weights.
#ifndef SQE_SQE_QUERY_GRAPH_H_
#define SQE_SQE_QUERY_GRAPH_H_

#include <cstdint>
#include <vector>

#include "kb/types.h"

namespace sqe::expansion {

/// An expansion node with its motif multiplicity.
struct ExpansionNode {
  kb::ArticleId article = kb::kInvalidArticle;
  uint32_t motif_count = 0;       // |m_a|: motif instances containing a
  uint32_t triangular_count = 0;  // breakdown per motif kind
  uint32_t square_count = 0;
};

/// Result of query-graph construction for one query.
struct QueryGraph {
  std::vector<kb::ArticleId> query_nodes;
  /// Sorted by descending motif_count (ties by ascending article id).
  std::vector<ExpansionNode> expansion_nodes;
  /// Category nodes appearing in any matched motif (deduplicated); kept so
  /// structural analysis can reconstruct the full cycles.
  std::vector<kb::CategoryId> category_nodes;

  /// Total motif instances matched.
  uint64_t total_motifs = 0;

  bool HasExpansion() const { return !expansion_nodes.empty(); }
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_QUERY_GRAPH_H_
