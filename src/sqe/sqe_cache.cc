#include "sqe/sqe_cache.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "common/string_util.h"

namespace sqe::expansion {

namespace {

// Binary key building: raw little-endian id bytes are unambiguous (fixed
// width) and cheaper than decimal rendering on the hot lookup path.
void AppendU32(std::string* key, uint32_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  key->append(buf, sizeof(v));
}

void AppendU64(std::string* key, uint64_t v) {
  char buf[sizeof(v)];
  std::memcpy(buf, &v, sizeof(v));
  key->append(buf, sizeof(v));
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(v));
  return HashCombine(h, bits);
}

size_t GraphEntryCharge(const SqeCache::GraphEntry& entry) {
  return entry.expansion_nodes.size() * sizeof(ExpansionNode) +
         entry.category_nodes.size() * sizeof(kb::CategoryId) +
         sizeof(SqeCache::GraphEntry);
}

size_t RunEntryCharge(const SqeCache::RunEntry& entry) {
  size_t bytes = sizeof(SqeCache::RunEntry) +
                 entry.results.size() * sizeof(retrieval::ScoredDoc);
  for (const retrieval::Clause& clause : entry.query.clauses) {
    bytes += sizeof(retrieval::Clause);
    for (const retrieval::Atom& atom : clause.atoms) {
      bytes += sizeof(retrieval::Atom);
      for (const std::string& term : atom.terms) bytes += term.size();
    }
  }
  return bytes;
}

LruCacheOptions GraphCacheOptions(const SqeCacheOptions& options) {
  return LruCacheOptions{options.graph_capacity, options.graph_max_bytes,
                         options.num_shards};
}

LruCacheOptions RunCacheOptions(const SqeCacheOptions& options) {
  return LruCacheOptions{options.result_capacity, options.result_max_bytes,
                         options.num_shards};
}

std::string OneLevel(const char* name, const CacheStats& s) {
  return StrFormat(
      "%s: %llu hits / %llu lookups (%.1f%%), %llu inserts, %llu evictions, "
      "%zu entries, %zu KiB",
      name, static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.hits + s.misses), 100.0 * s.HitRate(),
      static_cast<unsigned long long>(s.insertions),
      static_cast<unsigned long long>(s.evictions), s.entries,
      s.bytes / 1024);
}

}  // namespace

std::string SqeCacheStats::ToString() const {
  return OneLevel("graph", graph) + " | " + OneLevel("result", result);
}

SqeCache::SqeCache(const SqeCacheOptions& options)
    : graphs_(GraphCacheOptions(options)), runs_(RunCacheOptions(options)) {}

std::string SqeCache::GraphKey(std::span<const kb::ArticleId> query_nodes,
                               const MotifConfig& motifs, uint64_t epoch) {
  std::vector<kb::ArticleId> sorted(query_nodes.begin(), query_nodes.end());
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  key.reserve(2 + sizeof(epoch) + sorted.size() * sizeof(kb::ArticleId));
  key.push_back('G');
  AppendU64(&key, epoch);
  key.push_back(static_cast<char>((motifs.use_triangular ? 1 : 0) |
                                  (motifs.use_square ? 2 : 0)));
  for (kb::ArticleId a : sorted) AppendU32(&key, a);
  return key;
}

std::string SqeCache::RunKey(std::span<const std::string> analyzed_terms,
                             const std::string& graph_key,
                             std::span<const kb::ArticleId> query_nodes,
                             size_t k, uint64_t options_digest,
                             uint64_t epoch) {
  std::string key;
  key.push_back('R');
  // The epoch is already inside graph_key; repeating it here keeps the run
  // key self-describing even if a caller ever mixes keys across caches.
  AppendU64(&key, epoch);
  AppendU64(&key, static_cast<uint64_t>(k));
  AppendU64(&key, options_digest);
  key += graph_key;
  // The exact (unsorted) node order: it fixes the entity-clause order the
  // query builder emits, which the sorted graph key deliberately erases.
  AppendU32(&key, static_cast<uint32_t>(query_nodes.size()));
  for (kb::ArticleId a : query_nodes) AppendU32(&key, a);
  for (const std::string& term : analyzed_terms) {
    key.push_back('\x1f');  // unit separator: never inside analyzed terms
    key += term;
  }
  return key;
}

uint64_t SqeCache::OptionsDigest(const QueryBuilderOptions& builder,
                                 const retrieval::RetrieverOptions& retriever) {
  uint64_t h = Fnv1a64("sqe-options-v1");
  h = MixDouble(h, builder.user_weight);
  h = MixDouble(h, builder.entity_weight);
  h = MixDouble(h, builder.expansion_weight);
  h = HashCombine(h, builder.max_expansion_features);
  h = MixDouble(h, retriever.mu);
  return h;
}

std::shared_ptr<const SqeCache::GraphEntry> SqeCache::LookupGraph(
    const std::string& key) {
  return graphs_.Lookup(key);
}

std::shared_ptr<const SqeCache::GraphEntry> SqeCache::InsertGraph(
    const std::string& key, QueryGraph graph) {
  GraphEntry entry;
  entry.expansion_nodes = std::move(graph.expansion_nodes);
  entry.category_nodes = std::move(graph.category_nodes);
  entry.total_motifs = graph.total_motifs;
  const size_t charge = GraphEntryCharge(entry);
  return graphs_.Insert(key, std::move(entry), charge);
}

std::shared_ptr<const SqeCache::RunEntry> SqeCache::LookupRun(
    const std::string& key) {
  return runs_.Lookup(key);
}

void SqeCache::InsertRun(const std::string& key, RunEntry run) {
  const size_t charge = RunEntryCharge(run);
  runs_.Insert(key, std::move(run), charge);
}

SqeCacheStats SqeCache::Stats() const {
  return SqeCacheStats{graphs_.Stats(), runs_.Stats()};
}

}  // namespace sqe::expansion
