// RunControl: cooperative deadline/cancellation checkpoints threaded
// through SqeEngine's serving run path.
//
// A controlled run checks the deadline and the cancellation token at fixed
// phase boundaries — pre-analysis, pre-motif-traversal, pre-retrieval, and
// (on a sharded engine) between per-shard RetrieveRange slices — so an
// expired or cancelled request gives its worker back at the next boundary
// instead of finishing work nobody will read. Checks read time through the
// injected Clock, which is what makes every expiry path reachable from a
// FakeClock test with zero real sleeps.
#ifndef SQE_SQE_RUN_CONTROL_H_
#define SQE_SQE_RUN_CONTROL_H_

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"

namespace sqe::expansion {

/// The checkpoints of a controlled run, in pipeline order. kPreAnalysis and
/// kPreMotifTraversal are adjacent inside the engine today (the query
/// builder analyzes lazily, after motif traversal), but they are kept as
/// distinct checkpoints: the front-end's dequeue check is kPreAnalysis, so
/// a request that expired while queued is accounted before any engine work.
enum class RunPhase : int {
  kPreAnalysis = 0,
  kPreMotifTraversal = 1,
  kPreRetrieval = 2,
  kShardSlice = 3,  // between per-shard RetrieveRange slices
  kDone = 4,        // the run completed; never passed to Check()
};

inline std::string_view RunPhaseName(RunPhase phase) {
  switch (phase) {
    case RunPhase::kPreAnalysis:
      return "pre-analysis";
    case RunPhase::kPreMotifTraversal:
      return "pre-motif-traversal";
    case RunPhase::kPreRetrieval:
      return "pre-retrieval";
    case RunPhase::kShardSlice:
      return "shard-slice";
    case RunPhase::kDone:
      return "done";
  }
  return "unknown";
}

struct RunControl {
  /// Time source for deadline checks. Null disables deadline checking
  /// (cancellation still works).
  const Clock* clock = nullptr;
  Clock::TimePoint deadline{};
  bool has_deadline = false;
  /// Cooperative cancellation token; null means not cancellable. Checked
  /// before the deadline so a cancelled-and-expired run reports Cancelled.
  const std::atomic<bool>* cancelled = nullptr;
  /// Observer invoked at every checkpoint BEFORE the cancel/deadline test.
  /// Tests use it to advance a FakeClock (or flip the token) at an exact
  /// phase boundary; the serving front-end uses it to record the phase a
  /// request died in.
  std::function<void(RunPhase)> phase_hook;

  /// OK, Cancelled, or DeadlineExceeded for the given checkpoint.
  Status Check(RunPhase phase) const {
    if (phase_hook) phase_hook(phase);
    if (cancelled != nullptr &&
        cancelled->load(std::memory_order_acquire)) {
      return Status::Cancelled("run cancelled at " +
                               std::string(RunPhaseName(phase)));
    }
    if (has_deadline && clock != nullptr && clock->Now() >= deadline) {
      return Status::DeadlineExceeded("deadline expired at " +
                                      std::string(RunPhaseName(phase)));
    }
    return Status::OK();
  }
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_RUN_CONTROL_H_
