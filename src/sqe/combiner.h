// SQE_C rank-range combination (Section 2.2.1 / 4.1).
//
// SQE_C issues several expanded queries (one per motif configuration) and
// stitches their result lists by rank ranges: the paper's configuration
// takes ranks 1–5 from SQE_T, 6–200 from SQE_T&S and 201+ from SQE_S.
#ifndef SQE_SQE_COMBINER_H_
#define SQE_SQE_COMBINER_H_

#include <cstddef>
#include <vector>

#include "retrieval/result.h"

namespace sqe::expansion {

/// One source list and the (cumulative) rank position up to which it feeds
/// the combined list. A cutoff of SIZE_MAX means "the rest".
struct RangeSegment {
  size_t cutoff = 0;  // combined list is filled from this source up to here
  const retrieval::ResultList* results = nullptr;
};

/// Combines result lists by rank ranges, skipping documents already emitted
/// by an earlier segment (first occurrence wins; its score is kept). The
/// output is capped at `k` results. Segments must have increasing cutoffs.
retrieval::ResultList CombineByRankRanges(
    const std::vector<RangeSegment>& segments, size_t k);

/// The paper's SQE_C configuration: 1–5 from `t`, 6–200 from `ts`, the rest
/// from `s`.
retrieval::ResultList CombineSqeC(const retrieval::ResultList& t,
                                  const retrieval::ResultList& ts,
                                  const retrieval::ResultList& s, size_t k);

}  // namespace sqe::expansion

#endif  // SQE_SQE_COMBINER_H_
