// SqeEngine: the public facade of the library. Ties together entity
// linking, motif-based query-graph construction, query building and
// query-likelihood retrieval — the complete pipeline of Figure 1.
#ifndef SQE_SQE_SQE_ENGINE_H_
#define SQE_SQE_SQE_ENGINE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "entity/entity_linker.h"
#include "index/inverted_index.h"
#include "kb/knowledge_base.h"
#include "retrieval/retriever.h"
#include "retrieval/shard_router.h"
#include "retrieval/sharded_retriever.h"
#include "sqe/combiner.h"
#include "sqe/motif_finder.h"
#include "sqe/query_builder.h"
#include "sqe/run_control.h"
#include "sqe/sqe_cache.h"

namespace sqe::expansion {

/// Outcome of one expansion + retrieval run, with the timing breakdown the
/// paper reports in Table 4.
struct SqeRunResult {
  QueryGraph graph;
  retrieval::Query query;
  retrieval::ResultList results;
  double graph_build_ms = 0.0;  // motif traversal time
  double retrieval_ms = 0.0;
  double total_ms = 0.0;
};

/// Outcome of the rank-range combined SQE_C run.
struct SqeCRunResult {
  retrieval::ResultList results;
  double graph_build_ms_t = 0.0;
  double graph_build_ms_ts = 0.0;
  double graph_build_ms_s = 0.0;
  double total_ms = 0.0;
  /// Expansion features introduced by each configuration.
  size_t num_features_t = 0;
  size_t num_features_ts = 0;
  size_t num_features_s = 0;
};

struct ShardingOptions {
  /// Index shards a single query's scoring is partitioned into. 1 (the
  /// default) keeps the classic unsharded path; > 1 routes retrieval
  /// through a ShardRouter so one query can score on every pool worker.
  /// Results are bit-identical at every shard count — global collection
  /// statistics are shared by all shards, each document is scored by
  /// exactly one shard with the same FP operations, and the top-k merge
  /// uses the total (score desc, DocId asc) order. Cache keys are
  /// shard-agnostic for the same reason.
  size_t num_shards = 1;
};

struct PruningOptions {
  /// Opt-in Block-Max WAND dynamic pruning (see retrieval/wand_retriever.h).
  /// Off by default: the exhaustive scorer remains the reference path.
  /// When on, every retrieval — pool-less, pooled shard fan-out, batch
  /// grid, and the serving sweep's per-shard slices — goes through the
  /// pruned scorer, whose results are bit-identical to exhaustive scoring
  /// (CI-gated), so rankings, cache entries, and cache keys are unchanged.
  /// Queries containing phrase atoms fall back to exhaustive scoring.
  bool enabled = false;
};

struct SqeEngineConfig {
  QueryBuilderOptions query_builder;
  retrieval::RetrieverOptions retriever;
  /// Opt-in dynamic pruning for wide expanded queries. Orthogonal to the
  /// cache and sharding knobs below precisely because it never changes a
  /// result byte — only how much posting data is decoded to produce it.
  PruningOptions pruning;
  /// Opt-in query-graph/result caching (see sqe/sqe_cache.h). Disabled by
  /// default: existing callers and benches pay nothing. When enabled,
  /// RunSqe/RunSqeC/RunBatch hits skip motif traversal and retrieval while
  /// staying bit-identical to the uncached path (only timing fields vary).
  SqeCacheOptions cache;
  /// Opt-in intra-query sharded scoring. Composes with the cache: entries
  /// written by a sharded engine are byte-identical to unsharded ones.
  ShardingOptions sharding;
  /// Borrowed, internally-synchronized cache shared across engines — how the
  /// snapshot registry keeps one warm cache alive across epochs. Must
  /// outlive the engine. When set it wins over `cache` (the engine owns
  /// nothing) and `cache_epoch` MUST differ between engines built over
  /// different KB/index snapshots: the epoch prefixes every key, which is
  /// the entire cross-epoch isolation story.
  SqeCache* shared_cache = nullptr;
  /// Epoch component mixed into every cache key (owned or shared cache
  /// alike). 0 for engines whose KB/index never change.
  uint64_t cache_epoch = 0;
};

/// One query of a batch run: the raw text plus its (manually selected or
/// pre-linked) query nodes.
struct BatchQueryInput {
  std::string text;
  std::vector<kb::ArticleId> query_nodes;
};

class SqeEngine {
 public:
  /// All pointers must outlive the engine. `linker` may be null if only
  /// manual entity selection is used.
  SqeEngine(const kb::KnowledgeBase* kb, const index::InvertedIndex* index,
            const entity::EntityLinker* linker,
            const text::Analyzer* analyzer, SqeEngineConfig config = {});

  // ---- entity selection ----------------------------------------------------

  /// Automatic query-node selection via the entity linker (the paper's (A)
  /// mode). Requires a linker.
  std::vector<kb::ArticleId> LinkQueryNodes(std::string_view user_query) const;

  // ---- single-configuration runs -------------------------------------------

  /// Full SQE run with one motif configuration.
  SqeRunResult RunSqe(std::string_view user_query,
                      std::span<const kb::ArticleId> query_nodes,
                      const MotifConfig& motifs, size_t k) const;

  /// Same run, but when the engine is sharded, retrieval fans out across
  /// `pool` — one scoring task per shard — cutting single-query latency on
  /// multi-core hardware. Results are bit-identical to the pool-less
  /// overload. Falls back to it when the engine is unsharded or the pool
  /// has fewer than two workers. Must not be called from inside a pool
  /// task (the shard fan-out blocks the caller).
  SqeRunResult RunSqe(std::string_view user_query,
                      std::span<const kb::ArticleId> query_nodes,
                      const MotifConfig& motifs, size_t k,
                      ThreadPool* pool) const;

  /// Cooperatively-interruptible run used by the serving front-end: checks
  /// `control` at the RunPhase boundaries (and, on a sharded engine,
  /// between per-shard RetrieveRange slices) and returns DeadlineExceeded /
  /// Cancelled without completing the run when one fires. Retrieval on a
  /// sharded engine is a sequential shard sweep on the calling thread —
  /// serving parallelism comes from running many requests at once, and the
  /// per-slice checkpoints give an expired request back to its worker in
  /// at most one shard's worth of scoring. A run that completes returns
  /// exactly what the plain RunSqe overload returns, bit for bit, and
  /// fills the cache with byte-identical entries when caching is on.
  /// `scratch` may be null (a local one is used).
  Result<SqeRunResult> RunSqe(std::string_view user_query,
                              std::span<const kb::ArticleId> query_nodes,
                              const MotifConfig& motifs, size_t k,
                              const RunControl& control,
                              retrieval::RetrieverScratch* scratch) const;

  // ---- batch runs ----------------------------------------------------------

  /// Expands and retrieves every query of the batch, distributing work
  /// across `pool` (or running sequentially when `pool` is null/empty).
  /// Safe because the engine and everything it points at are immutable:
  /// workers share the KB, index, and finder read-only and write only their
  /// own result slot and per-worker RetrieverScratch. results[i] is
  /// bit-identical to RunSqe(queries[i]...) regardless of thread count,
  /// shard count, or scheduling; only the timing fields vary.
  ///
  /// When the engine is sharded and a pool is supplied, the batch is run as
  /// three flattened phases — expand/build, a (query × shard) scoring grid,
  /// then merge — so threads split across queries AND within each query
  /// without nested fan-out. In grid mode a query's retrieval_ms is the sum
  /// of its shard scoring times plus the merge (its sequential cost), not
  /// wall time.
  std::vector<SqeRunResult> RunBatch(std::span<const BatchQueryInput> queries,
                                     const MotifConfig& motifs, size_t k,
                                     ThreadPool* pool = nullptr) const;

  /// Retrieval with a caller-provided query graph (used for the ground-truth
  /// upper bound SQE^UB).
  SqeRunResult RunWithGraph(std::string_view user_query,
                            const QueryGraph& graph, size_t k) const;

  /// Baseline runs (QL_Q, QL_E, QL_Q&E, QL_X): no motif matching; the
  /// query-graph is just the query nodes.
  retrieval::ResultList RunBaseline(std::string_view user_query,
                                    std::span<const kb::ArticleId> query_nodes,
                                    const QueryParts& parts, size_t k) const;

  // ---- the combined strategy ------------------------------------------------

  /// SQE_C: runs SQE_T, SQE_T&S and SQE_S and stitches their rankings
  /// (1–5 / 6–200 / rest).
  SqeCRunResult RunSqeC(std::string_view user_query,
                        std::span<const kb::ArticleId> query_nodes,
                        size_t k) const;

  /// Builds (but does not execute) the expanded query for a graph — used by
  /// the PRF composition, which re-retrieves with its own model.
  retrieval::Query BuildExpandedQuery(std::string_view user_query,
                                      const QueryGraph& graph) const;

  const MotifFinder& motif_finder() const { return motif_finder_; }
  const retrieval::Retriever& retriever() const { return retriever_; }
  const kb::KnowledgeBase& kb() const { return *kb_; }

  // ---- caching --------------------------------------------------------------

  bool cache_enabled() const { return cache_ != nullptr; }
  /// Counter snapshot of both cache levels; all-zero when caching is off.
  SqeCacheStats cache_stats() const {
    return cache_ != nullptr ? cache_->Stats() : SqeCacheStats{};
  }

  // ---- pruning --------------------------------------------------------------

  bool pruning_enabled() const { return wand_ != nullptr; }
  /// Pruned-scorer telemetry snapshot; all-zero when pruning is off.
  retrieval::WandStats wand_stats() const {
    return wand_ != nullptr ? wand_->Stats() : retrieval::WandStats{};
  }

  // ---- sharding -------------------------------------------------------------

  bool sharded() const { return router_ != nullptr; }
  size_t num_shards() const {
    return router_ != nullptr ? router_->num_shards() : 1;
  }
  /// Router telemetry snapshot; all-zero when sharding is off.
  retrieval::ShardRouterStats router_stats() const {
    return router_ != nullptr ? router_->Stats()
                              : retrieval::ShardRouterStats{};
  }

 private:
  /// Outcome of the pre-retrieval phase shared by all run paths: the graph
  /// (through the graph cache when enabled) and the built query are in the
  /// SqeRunResult; `cached` means the run cache already supplied the final
  /// query + results and retrieval must be skipped.
  struct PreparedRun {
    std::string run_key;  // empty when caching is off
    bool cached = false;
  };
  PreparedRun PrepareRun(std::string_view user_query,
                         std::span<const kb::ArticleId> query_nodes,
                         const MotifConfig& motifs, size_t k,
                         SqeRunResult* out) const;

  SqeRunResult RunSqeWithScratch(std::string_view user_query,
                                 std::span<const kb::ArticleId> query_nodes,
                                 const MotifConfig& motifs, size_t k,
                                 retrieval::RetrieverScratch* scratch) const;

  /// Single-scratch retrieval over the full doc range. Used by every
  /// pool-less path even when the engine is sharded: exact top-k under the
  /// total (score desc, DocId asc) order is unique, so it is bit-identical
  /// to the shard sweep + merge without its per-shard fixed costs.
  retrieval::ResultList RetrieveTopK(const retrieval::Query& query, size_t k,
                                     retrieval::RetrieverScratch* scratch)
      const;

  std::vector<SqeRunResult> RunBatchShardGrid(
      std::span<const BatchQueryInput> queries, const MotifConfig& motifs,
      size_t k, ThreadPool* pool) const;

  const kb::KnowledgeBase* kb_;
  const index::InvertedIndex* index_;
  const entity::EntityLinker* linker_;
  const text::Analyzer* analyzer_;
  SqeEngineConfig config_;
  MotifFinder motif_finder_;
  ExpandedQueryBuilder query_builder_;
  retrieval::Retriever retriever_;
  // Immutable after construction (stats counters are internally
  // synchronized); null when config_.pruning.enabled is false.
  std::unique_ptr<retrieval::WandRetriever> wand_;
  // Internally synchronized (sharded mutexes), so const engine methods may
  // use it concurrently. Owned when config_.cache.enabled and no shared
  // cache was supplied; otherwise owned_cache_ stays null and cache_ borrows
  // config_.shared_cache. Null cache_ means caching is off.
  std::unique_ptr<SqeCache> owned_cache_;
  SqeCache* cache_ = nullptr;
  uint64_t cache_options_digest_ = 0;
  // Immutable after construction (stats counters are internally
  // synchronized); null when config_.sharding.num_shards <= 1.
  std::unique_ptr<retrieval::ShardRouter> router_;
  std::unique_ptr<retrieval::ShardedRetriever> sharded_retriever_;
};

}  // namespace sqe::expansion

#endif  // SQE_SQE_SQE_ENGINE_H_
