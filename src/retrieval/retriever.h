// Retriever: Dirichlet-smoothed query-likelihood ranking over an
// InvertedIndex — the paper's retrieval model (language modeling [13] with
// inference-network-style weighted combination [16]).
//
// For a query tree with normalized atom weights ω_a:
//   log P(Q|D) = Σ_a ω_a · log[ (tf_{a,D} + μ·P(a|C)) / (|D| + μ) ]
// where an atom is a term or an exact-adjacency n-gram, and P(a|C) is the
// maximum-likelihood collection probability with Indri's 1/|C| floor for
// unseen atoms.
//
// The scoring pipeline is split in two so a sharded caller can resolve once
// and score document ranges in parallel (see shard_router.h):
//   Resolve(query)            -> ResolvedQuery   (atoms + collection stats)
//   RetrieveRange(resolved,…) -> ResultList      (top-k of one DocId range)
// Collection statistics live entirely in the ResolvedQuery, so every range
// scores against the same global Dirichlet model and per-document scores are
// bit-identical no matter how the collection is partitioned.
#ifndef SQE_RETRIEVAL_RETRIEVER_H_
#define SQE_RETRIEVAL_RETRIEVER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "index/inverted_index.h"
#include "retrieval/query.h"
#include "retrieval/result.h"

namespace sqe::retrieval {

struct RetrieverOptions {
  /// Dirichlet smoothing mass. Indri's default is 2500; the short-document
  /// collections in the paper's domain behave better with less, so dataset
  /// presets override this.
  double mu = 1000.0;
};

/// A query resolved against one index: per-atom postings and global
/// collection statistics, ready for range scoring. Produced by
/// Retriever::Resolve; move-only because term atoms view the index's
/// posting arrays in place (only phrase atoms own their postings). Must not
/// outlive the index it was resolved against.
class ResolvedQuery {
 public:
  ResolvedQuery() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(ResolvedQuery);
  ResolvedQuery(ResolvedQuery&&) = default;
  ResolvedQuery& operator=(ResolvedQuery&&) = default;

  /// True when no atom survived weight normalization; retrieval over an
  /// empty resolution returns an empty list.
  bool empty() const { return atoms_.empty(); }
  size_t num_atoms() const { return atoms_.size(); }

 private:
  friend class Retriever;
  friend class WandRetriever;

  // An atom resolved against the index: its matching docs/frequencies and
  // smoothed collection probability. `docs`/`freqs` alias the index's
  // posting arrays for plain terms and `owned_*` for phrases (vector moves
  // keep heap buffers, so moving the ResolvedQuery preserves the views).
  // When the index stores packed (v4) postings, a term atom's spans stay
  // empty and scorers decode blocks through `list` instead.
  struct ResolvedAtom {
    double weight = 0.0;  // normalized ω_a
    const index::PostingList* list = nullptr;  // term atoms only
    std::span<const index::DocId> docs;
    std::span<const uint32_t> freqs;
    std::vector<index::DocId> owned_docs;
    std::vector<uint32_t> owned_freqs;
    double collection_prob = 0.0;
    // WAND upper-bound metadata, aliasing the index's block-max tables for
    // plain terms. Phrase postings are assembled per query and carry no
    // tables; is_phrase tells the pruned scorer to fall back to exhaustive
    // scoring for the whole query.
    bool is_phrase = false;
    uint32_t max_freq = 0;
    std::span<const uint32_t> block_max_freqs;
    std::span<const index::DocId> block_last_docs;
  };

  std::vector<ResolvedAtom> atoms_;
  // Σ_a ω_a log(μ p_a): the score shared by every document matching no atom
  // (up to the per-document length normalization).
  double background_const_ = 0.0;
};

/// Reusable per-worker scoring state. One instance per concurrent caller;
/// reusing it across queries amortizes the collection-sized accumulator
/// allocation that used to be paid on every Retrieve call.
class RetrieverScratch {
 public:
  RetrieverScratch() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(RetrieverScratch);

 private:
  friend class Retriever;
  friend class WandRetriever;

  // delta_[d] is valid iff epoch_[d] == current_epoch_: bumping the epoch
  // invalidates the whole accumulator in O(1) between queries.
  std::vector<double> delta_;
  std::vector<uint32_t> epoch_;
  uint32_t current_epoch_ = 0;
  std::vector<index::DocId> touched_;
  ResultList heap_;
  // SoA contribution lane shared by the exhaustive batched accumulation
  // (kScoreBatchSize postings at a time) and WAND's per-document atom lanes.
  std::vector<double> contrib_;
};

/// Stateless scoring engine bound to one index. Thread-compatible (all
/// methods const; no shared mutable state) — concurrent callers pass their
/// own RetrieverScratch.
class Retriever {
 public:
  /// `index` must outlive the retriever.
  explicit Retriever(const index::InvertedIndex* index,
                     RetrieverOptions options = {})
      : index_(index), options_(options) {
    SQE_CHECK(index != nullptr);
  }

  /// Scores all documents and returns the top `k` by descending
  /// log-likelihood (ties broken by ascending doc id). Documents matching no
  /// atom still receive their background score, as in true QL ranking —
  /// realized sparsely: only docs touched by some atom are accumulated, and
  /// the background-only tail is filled from the index's doc-length-sorted
  /// order, whose background scores are monotone.
  ResultList Retrieve(const Query& query, size_t k) const;

  /// Same ranking, reusing caller-owned scratch. The results are identical
  /// to the scratch-less overload bit for bit; only allocations differ.
  ResultList Retrieve(const Query& query, size_t k,
                      RetrieverScratch* scratch) const;

  /// Normalizes weights and resolves every atom's postings and collection
  /// probability against the index. The result feeds RetrieveRange and must
  /// not outlive the index.
  ResolvedQuery Resolve(const Query& query) const;

  /// Top `k` among documents in the global DocId range [begin, end).
  /// `docs_by_length` must be exactly the range's documents in (length
  /// ascending, DocId ascending) order — a contiguous slice of a shard
  /// router's bucketed order, or the index's full DocsByLength() when the
  /// range is the whole collection. Per-document scores are computed by the
  /// same operations in the same order as an unpartitioned Retrieve, so
  /// result lists merged across disjoint ranges are bit-identical to the
  /// single-range ranking (see MergeShardTopK).
  ResultList RetrieveRange(const ResolvedQuery& resolved, index::DocId begin,
                           index::DocId end,
                           std::span<const index::DocId> docs_by_length,
                           size_t k, RetrieverScratch* scratch) const;

  /// log P(Q|D) for one document (used by tests and the PRF model).
  double ScoreDocument(const Query& query, index::DocId doc) const;

  const index::InvertedIndex& index() const { return *index_; }
  const RetrieverOptions& options() const { return options_; }

 private:
  const index::InvertedIndex* index_;
  RetrieverOptions options_;
};

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_RETRIEVER_H_
