#include "retrieval/wand_retriever.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/string_util.h"
#include "retrieval/score_batch.h"

namespace sqe::retrieval {

namespace {

// Skip decisions compare a score UPPER BOUND against the threshold θ, and
// are safe only when strict: a document whose bound ties θ may itself be a
// top-k member (ties break by ascending DocId, so equal-score documents are
// not interchangeable). The multiplicative slack additionally absorbs any
// non-monotone libm rounding between the bound's arithmetic and the true
// score's — it can only make pruning more conservative, never less exact.
inline double SlackedThreshold(double theta) {
  return theta - 1e-9 * (1.0 + std::fabs(theta));
}

// One atom's in-range posting traversal state. `pos`/`limit` are absolute
// positions into the atom's full posting arrays, bracketing the [begin,
// end) doc-id slice; `block` is the shallow block pointer into the full
// list's block-max table, advanced monotonically (pivot docs never
// decrease, so neither do shallow targets).
struct Cursor {
  size_t pos = 0;    // current posting (absolute)
  size_t limit = 0;  // one past the last in-range posting
  size_t block = 0;  // shallow pointer: block containing first doc >= target
  double ub = 0.0;   // term-level max contribution ω·(log(maxf+μp) − bg)
  double mu_cp = 0.0;
  double bg = 0.0;
  double weight = 0.0;
  const index::DocId* docs = nullptr;
  const uint32_t* freqs = nullptr;
  const uint32_t* block_max = nullptr;
  const index::DocId* block_last = nullptr;
  size_t num_blocks = 0;
  size_t list_size = 0;
  // Packed (v4) lists: docs/freqs above stay null and reads decode one
  // 128-posting block at a time into the scratch buffers below, on demand —
  // a block a skip decision jumps over is never unpacked, because the skip
  // machinery (ShallowAdvance/BlockUb/BlockLastDoc) reads only the raw
  // block tables.
  const index::PostingList* plist = nullptr;
  size_t blk_loaded = static_cast<size_t>(-1);  // block in blk_docs
  // First-doc memo: skip rounds park cursors on block starts, and
  // re-sorting the merge order then needs exactly one doc id — extracted
  // (anchor + first gap) for a couple of loads instead of a block decode.
  size_t first_blk = static_cast<size_t>(-1);
  index::DocId first_doc = 0;
  uint32_t blk_docs[index::PostingList::kBlockSize];

  bool AtEnd() const { return pos >= limit; }
  // Decodes pos's block's doc ids if they are not the ones in the buffer,
  // prefetching the next block's packed bytes at every crossing (the
  // decode loop ahead is predictable; the byte fetch is the stall). The
  // frequency half stays packed entirely: Freq() extracts single values
  // straight from the payload.
  void EnsureLoaded() {
    const size_t b = pos / index::PostingList::kBlockSize;
    if (b == blk_loaded) return;
    plist->DecodeBlockDocsInto(b, blk_docs);
    blk_loaded = b;
    if (b + 1 < plist->NumBlocks()) {
      __builtin_prefetch(plist->PackedBlock(b + 1).data());
    }
  }
  index::DocId FirstDocOf(size_t b) {
    if (first_blk != b) {
      first_doc = plist->BlockFirstDoc(b);
      first_blk = b;
    }
    return first_doc;
  }
  index::DocId Doc() {
    if (plist != nullptr) {
      const size_t b = pos / index::PostingList::kBlockSize;
      const size_t off = pos % index::PostingList::kBlockSize;
      if (b == blk_loaded) return blk_docs[off];
      if (off == 0) return FirstDocOf(b);
      EnsureLoaded();
      return blk_docs[off];
    }
    return docs[pos];
  }
  // A WAND walk reads one or two frequencies from a scored block, so a
  // single-value extraction from the packed payload beats materializing
  // all 128 (and drops a 512-byte scratch buffer from every cursor).
  uint32_t Freq() {
    if (plist != nullptr) {
      return plist->BlockFreqAt(pos / index::PostingList::kBlockSize,
                                pos % index::PostingList::kBlockSize);
    }
    return freqs[pos];
  }

  // Contribution memo keyed by frequency: ω·(log(f+μp) − bg) depends on the
  // posting only through its (small-integer) tf, and block maxima draw from
  // the same domain — so one lazily filled table of max_freq+1 entries
  // turns every bound log after the first occurrence of a frequency value
  // into an indexed load. Values are strictly positive, so -1 marks unset.
  std::vector<double> freq_ub;

  double ContribFor(uint32_t f) {
    double& u = freq_ub[f];
    if (u < 0.0) {
      u = weight * (std::log(static_cast<double>(f) + mu_cp) - bg);
    }
    return u;
  }

  // Last doc id covered by block b (valid for b < num_blocks), read off the
  // list's dense boundary array. Blocks span the FULL list, so the boundary
  // may lie outside the scored range; that only makes skip targets
  // conservative, never incorrect.
  index::DocId BlockLastDoc(size_t b) const { return block_last[b]; }

  // Advances the shallow pointer to the block containing the first posting
  // with doc >= target. Returns false when no such posting exists (the
  // list's contribution to any doc >= target is zero). Boundaries are dense
  // and sorted, so a far jump is a binary search over a handful of cache
  // lines instead of one scattered posting read per block crossed.
  bool ShallowAdvance(index::DocId target) {
    block = std::max(block, pos / index::PostingList::kBlockSize);
    if (block < num_blocks && block_last[block] < target) {
      block = static_cast<size_t>(
          std::lower_bound(block_last + block + 1, block_last + num_blocks,
                           target) -
          block_last);
    }
    // If the landing block survives the bound it will be decoded next;
    // start its packed bytes toward the cache while the bound is summed.
    if (plist != nullptr && block < num_blocks && block != blk_loaded) {
      __builtin_prefetch(plist->PackedBlock(block).data());
    }
    return block < num_blocks;
  }

  // ω·(log(block_max + μp) − bg): upper-bounds the atom's contribution for
  // every document inside the current shallow block, because tf <= block
  // max and the contribution is non-decreasing in tf.
  double BlockUb() { return ContribFor(block_max[block]); }

  // First posting with doc >= target within [pos, limit): galloping probe
  // then binary search, O(log gap) — same scheme as PostingList::Cursor.
  // Packed lists instead binary-search the raw block-last table FROM THE
  // CURRENT BLOCK and decode at most the landing block.
  void SeekTo(index::DocId target) {
    if (pos >= limit) return;
    if (plist != nullptr) {
      size_t b = pos / index::PostingList::kBlockSize;
      if (block_last[b] < target) {
        b = static_cast<size_t>(
            std::lower_bound(block_last + b + 1, block_last + num_blocks,
                             target) -
            block_last);
        if (b == num_blocks) {
          pos = limit;
          return;
        }
        pos = b * index::PostingList::kBlockSize;
        if (pos >= limit) {
          pos = limit;
          return;
        }
        // First-doc fast-path: a target at or below the landing block's
        // first doc id resolves to the block's first posting, and that one
        // value is extracted without decoding the block. Skip rounds land
        // here constantly (the skip target is usually one past a block
        // boundary).
        if (target <= FirstDocOf(b)) return;
        EnsureLoaded();
      } else {
        // Target lies within the current block. If the doc at pos already
        // clears the target, nothing moves — provable without a decode
        // from the block's extracted first doc (offset 0) or from the
        // anchor + offset floor (strict ascent means the doc at offset
        // `off` is at least anchor + off).
        const size_t base = b * index::PostingList::kBlockSize;
        if (b != blk_loaded) {
          const size_t off = pos - base;
          if (off == 0) {
            if (target <= FirstDocOf(b)) return;
          } else {
            const uint64_t floor =
                static_cast<uint64_t>(b == 0 ? 0 : block_last[b - 1] + 1) +
                off;
            if (target <= floor) return;
          }
        }
        EnsureLoaded();
        if (blk_docs[pos - base] >= target) return;
      }
      // The landing block's last doc is >= target, so the in-block search
      // always resolves inside it.
      const size_t base = blk_loaded * index::PostingList::kBlockSize;
      const size_t off = static_cast<size_t>(
          std::lower_bound(blk_docs + (pos - base),
                           blk_docs + plist->BlockLength(blk_loaded),
                           target) -
          blk_docs);
      pos = std::min(base + off, limit);
      return;
    }
    if (docs[pos] >= target) return;
    size_t step = 1;
    size_t lo = pos;
    size_t hi = pos + step;
    while (hi < limit && docs[hi] < target) {
      lo = hi;
      step *= 2;
      hi = pos + step;
    }
    hi = std::min(hi, limit);
    size_t left = lo + 1, right = hi;
    while (left < right) {
      size_t mid = left + (right - left) / 2;
      if (docs[mid] < target) {
        left = mid + 1;
      } else {
        right = mid;
      }
    }
    pos = left;
  }
};

}  // namespace

std::string WandStats::ToString() const {
  return StrFormat(
      "wand: queries=%llu fallbacks=%llu postings=%llu scored=%llu "
      "(%.1f%% skipped) docs_evaluated=%llu block_skips=%llu",
      (unsigned long long)queries, (unsigned long long)fallbacks,
      (unsigned long long)postings_total, (unsigned long long)postings_scored,
      100.0 * SkipFraction(), (unsigned long long)docs_evaluated,
      (unsigned long long)block_skips);
}

ResultList WandRetriever::Retrieve(const Query& query, size_t k,
                                   RetrieverScratch* scratch) const {
  const index::InvertedIndex& idx = base_->index();
  const size_t num_docs = idx.NumDocuments();
  if (k == 0 || num_docs == 0) return {};
  ResolvedQuery resolved = base_->Resolve(query);
  return RetrieveRange(resolved, 0, static_cast<index::DocId>(num_docs),
                       idx.DocsByLength(), k, scratch);
}

ResultList WandRetriever::RetrieveRange(
    const ResolvedQuery& resolved, index::DocId begin, index::DocId end,
    std::span<const index::DocId> docs_by_length, size_t k,
    RetrieverScratch* scratch) const {
  if (k == 0 || begin >= end || resolved.empty()) return {};
  // Phrase postings are assembled per query and carry no block-max tables;
  // the whole query falls back so accumulation order stays untouched.
  for (const ResolvedQuery::ResolvedAtom& a : resolved.atoms_) {
    if (a.is_phrase) {
      RecordFallback();
      return base_->RetrieveRange(resolved, begin, end, docs_by_length, k,
                                  scratch);
    }
  }
  QueryCounters counters;
  ResultList out = PrunedRange(resolved, begin, end, docs_by_length, k,
                               scratch, &counters);
  RecordPruned(counters);
  return out;
}

ResultList WandRetriever::PrunedRange(
    const ResolvedQuery& resolved, index::DocId begin, index::DocId end,
    std::span<const index::DocId> docs_by_length, size_t k,
    RetrieverScratch* scratch, QueryCounters* counters) const {
  SQE_CHECK(scratch != nullptr);
  const index::InvertedIndex& idx = base_->index();
  SQE_DCHECK(end <= idx.NumDocuments());
  SQE_DCHECK(docs_by_length.size() == end - begin);
  const size_t range_docs = end - begin;
  const double mu = base_->options().mu;
  const double background_const = resolved.background_const_;
  const size_t num_atoms = resolved.atoms_.size();

  // Cursors in atom order (evaluation gathers lanes in this order); plus
  // the doc-sorted view `active` of the not-yet-exhausted ones.
  std::vector<Cursor> cursors;
  cursors.reserve(num_atoms);
  for (const ResolvedQuery::ResolvedAtom& a : resolved.atoms_) {
    // Built in place: copying a Cursor would drag its (deliberately
    // uninitialized) decode scratch buffers along.
    Cursor& c = cursors.emplace_back();
    if (a.list != nullptr && a.list->packed()) {
      c.plist = a.list;
      c.pos = a.list->LowerBound(begin);
      c.limit = a.list->LowerBound(end);
      c.list_size = a.list->NumDocs();
    } else {
      c.pos = static_cast<size_t>(
          std::lower_bound(a.docs.begin(), a.docs.end(), begin) -
          a.docs.begin());
      c.limit = static_cast<size_t>(
          std::lower_bound(a.docs.begin() + c.pos, a.docs.end(), end) -
          a.docs.begin());
      c.docs = a.docs.data();
      c.freqs = a.freqs.data();
      c.list_size = a.docs.size();
    }
    c.mu_cp = mu * a.collection_prob;
    c.bg = std::log(c.mu_cp);
    c.weight = a.weight;
    c.block_max = a.block_max_freqs.data();
    c.block_last = a.block_last_docs.data();
    c.num_blocks = a.block_max_freqs.size();
    c.ub = a.weight *
           (std::log(static_cast<double>(a.max_freq) + c.mu_cp) - c.bg);
    c.freq_ub.assign(a.max_freq + 1, -1.0);
    counters->postings_total += c.limit - c.pos;
  }
  // Doc-sorted view of the not-yet-exhausted cursors as packed keys,
  // (doc << 16) | atom index. One flat word per cursor keeps the order
  // maintenance branch-cheap (uint64 compares, no indirection), and the
  // index in the low bits makes equal-doc runs ascend by atom order — the
  // property evaluation relies on to gather SoA lanes in exhaustive-path
  // order.
  SQE_CHECK(num_atoms < (size_t{1} << 16));
  constexpr uint64_t kAtomMask = (uint64_t{1} << 16) - 1;
  auto key_of = [&](size_t i) {
    return (static_cast<uint64_t>(cursors[i].Doc()) << 16) |
           static_cast<uint64_t>(i);
  };
  std::vector<uint64_t> order;
  order.reserve(num_atoms);
  std::vector<char> exhausted(num_atoms, 0);
  for (size_t i = 0; i < cursors.size(); ++i) {
    if (!cursors[i].AtEnd()) {
      order.push_back(key_of(i));
    } else {
      exhausted[i] = 1;  // nothing in range from the start
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<uint64_t> merge_buf(order.size());
  // Term bounds in a flat atom-indexed array: the pivot scan touches one
  // per cursor per round, and the whole array is a few cache lines — the
  // Cursor structs it would otherwise stride through are not.
  std::vector<double> ubs(num_atoms);
  for (size_t i = 0; i < cursors.size(); ++i) ubs[i] = cursors[i].ub;

  // MaxScore-style essential/non-essential split. Once θ grows past the
  // point where the lowest-bound atoms TOGETHER cannot lift a document
  // over it, those atoms stop participating in the doc-sorted merge: their
  // summed bound rides along as a constant (`nonessential_sum`) in every
  // pruning decision, and their actual postings are consulted — by a
  // forward seek — only for documents that survive all bounds. Wide
  // expanded queries are exactly where this pays: dozens of low-weight
  // tail atoms would otherwise keep every document in the candidate union
  // and cap every block skip at the next union document. θ only grows, so
  // demotion is monotone — at most num_atoms demotions per query.
  std::vector<size_t> by_ub(num_atoms);
  for (size_t i = 0; i < num_atoms; ++i) by_ub[i] = i;
  std::sort(by_ub.begin(), by_ub.end(), [&](size_t a, size_t b) {
    if (ubs[a] != ubs[b]) return ubs[a] < ubs[b];
    return a < b;
  });
  size_t next_demotion = 0;
  double nonessential_sum = 0.0;
  // Demoted atoms in demotion (= ascending-bound) order, with prefix sums
  // of their term bounds: ne_prefix[j] bounds the joint contribution of the
  // first j demoted atoms. Candidate evaluation walks this list backwards
  // (largest bound first) and stops as soon as the exact score so far plus
  // ne_prefix of the unvisited rest cannot reach θ.
  std::vector<size_t> nonessential;
  nonessential.reserve(num_atoms);
  std::vector<double> ne_prefix(1, 0.0);
  ne_prefix.reserve(num_atoms + 1);

  auto better = [](const ScoredDoc& x, const ScoredDoc& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  ResultList& heap = scratch->heap_;
  heap.clear();
  const size_t keep = std::min(k, range_docs);
  auto offer = [&](const ScoredDoc& sd) {
    if (heap.size() < keep) {
      heap.push_back(sd);
      std::push_heap(heap.begin(), heap.end(), better);
      return true;
    }
    if (!better(sd, heap.front())) return false;
    std::pop_heap(heap.begin(), heap.end(), better);
    heap.back() = sd;
    std::push_heap(heap.begin(), heap.end(), better);
    return true;
  };

  // θ is live from the start: the range's keep-th shortest document scores
  // at least background_const − log(len+μ) on background mass alone, and
  // delta(D) >= 0 means keep documents already beat that — so the k-th best
  // final score can never fall below θ0, and pruning against it before the
  // heap fills is exact.
  const double theta0 =
      background_const -
      std::log(static_cast<double>(idx.DocLength(docs_by_length[keep - 1])) +
               mu);
  double theta = theta0;
  auto update_theta = [&] {
    if (heap.size() == keep) theta = std::max(theta0, heap.front().score);
  };
  // Length part of every upper bound: the shortest document in range has
  // the largest −log(|D|+μ).
  const double base =
      background_const -
      std::log(static_cast<double>(idx.DocLength(docs_by_length[0])) + mu);

  // Per-evaluation SoA lanes, in atom order.
  std::vector<size_t> lane_atom(num_atoms);
  std::vector<uint32_t> lane_freq(num_atoms);
  std::vector<double> lane_mu_cp(num_atoms);
  std::vector<double> lane_bg(num_atoms);
  std::vector<double> lane_w(num_atoms);
  scratch->contrib_.resize(std::max(kScoreBatchSize, num_atoms));
  double* const contrib = scratch->contrib_.data();

  // Every branch of the loop moves cursors belonging to a PREFIX of the
  // doc-sorted order, and cursors only move forward — so order is restored
  // by recomputing the prefix's keys, dropping exhausted cursors, sorting
  // the (small) prefix and merging it with the untouched sorted tail.
  // O(m log m + |order|) per round instead of a full comparator sort.
  auto repair_prefix = [&](size_t m) {
    size_t w = 0;
    for (size_t i = 0; i < m; ++i) {
      const size_t ci = static_cast<size_t>(order[i] & kAtomMask);
      if (!cursors[ci].AtEnd()) {
        order[w++] = key_of(ci);
      } else {
        exhausted[ci] = 1;
      }
    }
    std::sort(order.begin(), order.begin() + w);
    const size_t merged = static_cast<size_t>(
        std::merge(order.begin(), order.begin() + w, order.begin() + m,
                   order.end(), merge_buf.begin()) -
        merge_buf.begin());
    std::copy(merge_buf.begin(), merge_buf.begin() + merged, order.begin());
    order.resize(merged);
  };

  // Demotes essential cursors (smallest bound first) while even the summed
  // demoted bounds cannot reach θ. A document seen only by demoted atoms
  // scores at most base + nonessential_sum < θs, so dropping their cursors
  // from the merge loses no candidate; every later bound adds
  // nonessential_sum back in, keeping it an upper bound for the demoted
  // atoms' true contributions.
  auto maybe_demote = [&] {
    const double theta_s = SlackedThreshold(theta);
    while (next_demotion < by_ub.size()) {
      const size_t ci = by_ub[next_demotion];
      if (exhausted[ci]) {
        ++next_demotion;
        continue;
      }
      if (base + nonessential_sum + ubs[ci] >= theta_s) break;
      nonessential_sum += ubs[ci];
      nonessential.push_back(ci);
      ne_prefix.push_back(nonessential_sum);
      ++next_demotion;
      auto it = std::find(order.begin(), order.end(), key_of(ci));
      SQE_DCHECK(it != order.end());
      order.erase(it);
    }
  };
  maybe_demote();

  while (!order.empty()) {
    const double theta_s = SlackedThreshold(theta);

    // Pivot: shortest prefix of doc-sorted cursors whose term-level bounds
    // could reach θ. No such prefix means no remaining document can.
    size_t pivot = order.size();
    double sum = nonessential_sum;
    for (size_t i = 0; i < order.size(); ++i) {
      sum += ubs[order[i] & kAtomMask];
      if (base + sum >= theta_s) {
        pivot = i;
        break;
      }
    }
    if (pivot == order.size()) break;
    const index::DocId d = static_cast<index::DocId>(order[pivot] >> 16);

    // Everything at the pivot document participates in the block bound and
    // the skip target, so a skip can never jump over a contributor.
    size_t q = pivot;
    while (q + 1 < order.size() &&
           static_cast<index::DocId>(order[q + 1] >> 16) == d) {
      ++q;
    }

    // Block-max refinement over the pivot prefix.
    double block_sum = 0.0;
    index::DocId min_boundary = std::numeric_limits<index::DocId>::max();
    for (size_t i = 0; i <= q; ++i) {
      Cursor& c = cursors[order[i] & kAtomMask];
      if (c.ShallowAdvance(d)) {
        block_sum += c.BlockUb();
        min_boundary = std::min(min_boundary, c.BlockLastDoc(c.block));
      }
    }
    if (base + nonessential_sum + block_sum < theta_s) {
      // Every document in [d, next) is covered by the blocks just bounded
      // (next stops at the earliest block boundary and at the first cursor
      // beyond the prefix), so the whole span is skipped without decoding.
      ++counters->block_skips;
      index::DocId next =
          min_boundary == std::numeric_limits<index::DocId>::max()
              ? end
              : min_boundary + 1;
      if (q + 1 < order.size()) {
        next = std::min(next,
                        static_cast<index::DocId>(order[q + 1] >> 16));
      }
      next = std::max(next, d + 1);  // progress even on degenerate bounds
      for (size_t i = 0; i <= q; ++i) {
        cursors[order[i] & kAtomMask].SeekTo(next);
      }
      repair_prefix(q + 1);
      continue;
    }

    // Evaluate d. Prefix cursors trailing the pivot (doc < d) first jump
    // straight to d: any document d' < d still ahead of us is reachable
    // only through cursors currently positioned at docs <= d' — a subset
    // of the strict prefix below the pivot, whose cumulative bound is
    // below θs by the pivot's minimality (and bounds are non-negative, so
    // subsets bound no higher) — so no such d' can enter the top-k.
    // Trailing cursors that contain d land exactly on it and contribute a
    // lane, making the lane set every atom containing d (cursors beyond q
    // sit strictly past d); sorting the lane atoms recovers atom order, so
    // the sequential-sum reduction reproduces the exhaustive accumulation
    // bit for bit.
    size_t n = 0;
    for (size_t i = 0; i <= q; ++i) {
      const size_t ci = static_cast<size_t>(order[i] & kAtomMask);
      Cursor& c = cursors[ci];
      if (c.Doc() < d) c.SeekTo(d);
      if (!c.AtEnd() && c.Doc() == d) lane_atom[n++] = ci;
    }
    SQE_DCHECK(n > 0);  // the pivot cursor itself sits on d

    // Tighter bounds now that d is pinned down, from cheapest to dearest,
    // each one folding in more exact information. IEEE multiplication and
    // addition are monotone and the ε slack absorbs libm's log rounding and
    // summation-order ulps, so bound < θs really does imply score < θ.
    //
    // (1) EXACT length normalization plus block maxima of the essential
    // atoms that actually contain d (ShallowAdvance(d) already ran for
    // every prefix cursor, so BlockUb is the right block), plus the demoted
    // atoms' summed term bounds.
    const double len_part =
        std::log(static_cast<double>(idx.DocLength(d)) + mu);
    const size_t n_essential = n;
    double lane_bound = nonessential_sum;
    for (size_t i = 0; i < n; ++i) lane_bound += cursors[lane_atom[i]].BlockUb();
    bool pruned = background_const - len_part + lane_bound < theta_s;

    // (2) EXACT essential contributions (the frequencies are already in
    // hand; one log per lane) plus the demoted atoms' summed term bounds.
    // After heavy demotion this is the bound that carries the query: block
    // maxima bound a whole 128-posting block, exact contributions bound
    // nothing away — only the demoted tail stays estimated.
    double exact = 0.0;
    if (!pruned) {
      for (size_t i = 0; i < n; ++i) {
        Cursor& c = cursors[lane_atom[i]];
        exact += c.ContribFor(c.Freq());
      }
      pruned = background_const - len_part + exact + nonessential_sum <
               theta_s;
    }

    // (3) Walk the demoted atoms largest-bound first, replacing each term
    // bound with the atom's exact contribution (a galloping forward seek —
    // surviving candidates are dense relative to the demoted lists, so the
    // gallop usually resolves within the cache line the cursor already
    // sits on; positions stay monotone so this amortizes across the
    // query). Most demoted atoms do not contain d, so each step usually
    // drops the running bound by a full term bound; ne_prefix[j] bounds
    // the unvisited rest, so the walk stops — and d is pruned — the moment
    // exact + ne_prefix[j] cannot reach θ. Cursors left unseeked simply
    // wait for the next surviving candidate.
    bool ne_dirty = false;
    if (!pruned) {
      for (size_t j = nonessential.size(); j-- > 0;) {
        const size_t ci = nonessential[j];
        Cursor& c = cursors[ci];
        c.SeekTo(d);
        if (c.AtEnd()) {
          exhausted[ci] = 1;
          ne_dirty = true;
        } else if (c.Doc() == d) {
          exact += c.ContribFor(c.Freq());
          lane_atom[n++] = ci;
        }
        if (background_const - len_part + exact + ne_prefix[j] < theta_s) {
          pruned = true;
          break;
        }
      }
    }
    if (ne_dirty) {
      // Drop exhausted atoms; their bound leaves every estimate, which only
      // tightens it. Demotion order (ascending bound) is preserved.
      size_t w = 0;
      nonessential_sum = 0.0;
      ne_prefix.resize(1);
      for (size_t j = 0; j < nonessential.size(); ++j) {
        if (exhausted[nonessential[j]]) continue;
        nonessential[w++] = nonessential[j];
        nonessential_sum += ubs[nonessential[j]];
        ne_prefix.push_back(nonessential_sum);
      }
      nonessential.resize(w);
    }
    if (pruned) {
      ++counters->block_skips;
      for (size_t i = 0; i < n_essential; ++i) ++cursors[lane_atom[i]].pos;
      repair_prefix(q + 1);
      continue;
    }

    // d survives all bounds: every atom containing d is now a lane (demoted
    // cursors all seeked to d above). Sorting the lane atoms recovers atom
    // order, so the sequential-sum reduction reproduces the exhaustive
    // accumulation bit for bit.
    std::sort(lane_atom.begin(), lane_atom.begin() + n);
    for (size_t i = 0; i < n; ++i) {
      Cursor& c = cursors[lane_atom[i]];
      lane_freq[i] = c.Freq();
      lane_mu_cp[i] = c.mu_cp;
      lane_bg[i] = c.bg;
      lane_w[i] = c.weight;
    }
    AtomContributionLanes(lane_freq.data(), lane_mu_cp.data(),
                          lane_bg.data(), lane_w.data(), n, contrib);
    const double delta = SequentialSum(contrib, n);
    const double score = background_const + delta - len_part;
    offer(ScoredDoc{d, score});
    update_theta();
    ++counters->docs_evaluated;
    counters->postings_scored += n;
    for (size_t i = 0; i < n; ++i) ++cursors[lane_atom[i]].pos;
    repair_prefix(q + 1);
    maybe_demote();
  }

  // Background tail: exactly the exhaustive path's fill, minus documents
  // with postings (their true scores were handled — evaluated or exactly
  // pruned — above; offering their background-only score here would rank
  // them under a wrong value). Background scores are non-increasing along
  // docs_by_length and equal-length runs ascend by DocId, so the first
  // rejected candidate ends the scan: every later candidate loses to it.
  auto matches_any_atom = [&](index::DocId doc) {
    for (const Cursor& c : cursors) {
      // Entries past `limit` are outside [begin, end) and entries before
      // the original slice start are < begin, so searching [0, limit) finds
      // exactly the in-range occurrences.
      if (c.plist != nullptr) {
        const size_t i = c.plist->Find(doc);
        if (i != index::PostingList::kNpos && i < c.limit) return true;
        continue;
      }
      const index::DocId* last = c.docs + c.limit;
      auto it = std::lower_bound(c.docs, last, doc);
      if (it != last && *it == doc) return true;
    }
    return false;
  };
  for (index::DocId d : docs_by_length) {
    SQE_DCHECK(d >= begin && d < end);
    const double score =
        background_const -
        std::log(static_cast<double>(idx.DocLength(d)) + mu);
    if (heap.size() == keep && !better(ScoredDoc{d, score}, heap.front())) {
      break;
    }
    if (matches_any_atom(d)) continue;
    offer(ScoredDoc{d, score});
  }

  std::sort_heap(heap.begin(), heap.end(), better);
  return ResultList(heap.begin(), heap.end());
}

WandStats WandRetriever::Stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void WandRetriever::RecordPruned(const QueryCounters& counters) const {
  MutexLock lock(&stats_mu_);
  ++stats_.queries;
  stats_.postings_total += counters.postings_total;
  stats_.postings_scored += counters.postings_scored;
  stats_.docs_evaluated += counters.docs_evaluated;
  stats_.block_skips += counters.block_skips;
}

void WandRetriever::RecordFallback() const {
  MutexLock lock(&stats_mu_);
  ++stats_.fallbacks;
}

}  // namespace sqe::retrieval
