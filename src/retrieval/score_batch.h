// Struct-of-arrays scoring kernels shared by the exhaustive and WAND-pruned
// retrieval paths.
//
// Posting decode and accumulation are restructured as contiguous lanes —
// a frequency lane in, a contribution lane out — so the surrounding loops
// touch memory sequentially and the per-element arithmetic sits in tight,
// branch-free passes the compiler can auto-vectorize. The log() lane stays
// scalar libm in every build mode: a vectorized log (libmvec, fast-math)
// rounds differently, and the retrieval contract is bit-identical scores
// across every configuration. The elementwise multiply/subtract pass after
// it is where SIMD is legal — IEEE mul/sub are exactly rounded, so a 2-lane
// SSE2 pass produces the same bytes as the scalar loop, lane for lane.
//
// The explicit SSE2 kernel is gated behind SQE_SCORING_SIMD (a CMake
// option, off by default) so the default build relies on auto-vectorization
// only; both paths are bit-identical by construction and the WAND tests run
// against whichever is compiled in.
#ifndef SQE_RETRIEVAL_SCORE_BATCH_H_
#define SQE_RETRIEVAL_SCORE_BATCH_H_

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(SQE_SCORING_SIMD) && defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace sqe::retrieval {

/// Postings decoded into the SoA lanes per accumulation batch. Sized so the
/// frequency lane, contribution lane, and the doc-id slice being scattered
/// all sit in L1 together.
inline constexpr size_t kScoreBatchSize = 256;

namespace internal {

/// out[i] = (out[i] - bg[i]) * weight[i], elementwise. Exactly-rounded IEEE
/// ops, so the SIMD and scalar variants are bit-identical per lane.
inline void FusedScaleLanes(double* out, const double* bg,
                            const double* weight, size_t n) {
#if defined(SQE_SCORING_SIMD) && defined(__SSE2__)
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d t = _mm_loadu_pd(out + i);
    t = _mm_sub_pd(t, _mm_loadu_pd(bg + i));
    t = _mm_mul_pd(t, _mm_loadu_pd(weight + i));
    _mm_storeu_pd(out + i, t);
  }
  for (; i < n; ++i) out[i] = (out[i] - bg[i]) * weight[i];
#else
  for (size_t i = 0; i < n; ++i) out[i] = (out[i] - bg[i]) * weight[i];
#endif
}

/// out[i] = (out[i] - bg) * weight with broadcast scalars.
inline void FusedScaleUniform(double* out, double bg, double weight,
                              size_t n) {
#if defined(SQE_SCORING_SIMD) && defined(__SSE2__)
  const __m128d vbg = _mm_set1_pd(bg);
  const __m128d vw = _mm_set1_pd(weight);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    __m128d t = _mm_loadu_pd(out + i);
    t = _mm_mul_pd(_mm_sub_pd(t, vbg), vw);
    _mm_storeu_pd(out + i, t);
  }
  for (; i < n; ++i) out[i] = (out[i] - bg) * weight;
#else
  for (size_t i = 0; i < n; ++i) out[i] = (out[i] - bg) * weight;
#endif
}

}  // namespace internal

/// One term, many postings: out[i] = weight * (log(freqs[i] + mu_cp) - bg).
/// The exact expression the pre-batch scalar loop computed — multiplication
/// is commutative under IEEE rounding — so accumulating these lanes in
/// posting order reproduces the historical scores bit for bit.
inline void TermContributionBatch(const uint32_t* freqs, size_t n,
                                  double weight, double mu_cp, double bg,
                                  double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::log(static_cast<double>(freqs[i]) + mu_cp);
  }
  internal::FusedScaleUniform(out, bg, weight, n);
}

/// One document, many atoms: out[i] = weight[i] * (log(freqs[i] + mu_cp[i])
/// - bg[i]). Lanes are in atom order; the caller must reduce them with a
/// sequential left-to-right sum to match the exhaustive path's per-document
/// accumulation order.
inline void AtomContributionLanes(const uint32_t* freqs, const double* mu_cp,
                                  const double* bg, const double* weight,
                                  size_t n, double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = std::log(static_cast<double>(freqs[i]) + mu_cp[i]);
  }
  internal::FusedScaleLanes(out, bg, weight, n);
}

/// Strictly left-to-right sum — the only reduction order that matches the
/// scalar accumulator the exhaustive path uses per document. Never replace
/// with a pairwise/SIMD reduction: that changes rounding.
inline double SequentialSum(const double* v, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += v[i];
  return s;
}

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_SCORE_BATCH_H_
