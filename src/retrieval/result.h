// Ranked result lists.
#ifndef SQE_RETRIEVAL_RESULT_H_
#define SQE_RETRIEVAL_RESULT_H_

#include <vector>

#include "index/types.h"

namespace sqe::retrieval {

struct ScoredDoc {
  index::DocId doc = index::kInvalidDoc;
  double score = 0.0;
};

/// Descending score; ties broken by ascending doc id for determinism.
using ResultList = std::vector<ScoredDoc>;

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_RESULT_H_
