#include "retrieval/phrase_matcher.h"

#include <algorithm>

#include "common/macros.h"

namespace sqe::retrieval {

PhrasePostings MatchPhrase(const index::InvertedIndex& index,
                           const std::vector<text::TermId>& term_ids) {
  SQE_CHECK(term_ids.size() >= 2);
  PhrasePostings out;
  for (text::TermId t : term_ids) {
    if (t == text::kInvalidTermId || index.Postings(t).NumDocs() == 0) {
      return out;  // some constituent never occurs: no matches anywhere
    }
  }

  // Drive the intersection from the rarest term to minimize seeks.
  size_t driver = 0;
  uint64_t min_docs = UINT64_MAX;
  for (size_t i = 0; i < term_ids.size(); ++i) {
    uint64_t n = index.Postings(term_ids[i]).NumDocs();
    if (n < min_docs) {
      min_docs = n;
      driver = i;
    }
  }

  std::vector<index::PostingList::Cursor> cursors;
  cursors.reserve(term_ids.size());
  for (text::TermId t : term_ids) {
    cursors.push_back(index.Postings(t).MakeCursor());
  }

  auto& drive = cursors[driver];
  while (!drive.AtEnd()) {
    index::DocId candidate = drive.Doc();
    bool all_match = true;
    for (size_t i = 0; i < cursors.size() && all_match; ++i) {
      if (i == driver) continue;
      cursors[i].SeekTo(candidate);
      if (cursors[i].AtEnd() || cursors[i].Doc() != candidate) {
        all_match = false;
        // Re-seek the driver to the blocking cursor's doc to skip ahead.
        if (!cursors[i].AtEnd()) {
          drive.SeekTo(cursors[i].Doc());
        } else {
          return out;
        }
      }
    }
    if (!all_match) continue;

    // All cursors on `candidate`; count start positions p (from term 0's
    // list) such that term i occurs at p+i for all i.
    uint32_t matches = 0;
    auto first_positions = cursors[0].Positions();
    for (uint32_t p : first_positions) {
      bool ok = true;
      for (size_t i = 1; i < cursors.size(); ++i) {
        auto pos = cursors[i].Positions();
        if (!std::binary_search(pos.begin(), pos.end(),
                                p + static_cast<uint32_t>(i))) {
          ok = false;
          break;
        }
      }
      if (ok) ++matches;
    }
    if (matches > 0) {
      out.docs.push_back(candidate);
      out.freqs.push_back(matches);
      out.collection_frequency += matches;
    }
    drive.Next();
  }
  return out;
}

}  // namespace sqe::retrieval
