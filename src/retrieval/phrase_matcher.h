// Ordered-window (#1) phrase matching over positional postings.
//
// Finds, per document, the number of exact consecutive occurrences of an
// n-gram. Collection statistics for phrases are computed on demand (Indri
// does the same for window operators) and cached by the retriever.
#ifndef SQE_RETRIEVAL_PHRASE_MATCHER_H_
#define SQE_RETRIEVAL_PHRASE_MATCHER_H_

#include <cstdint>
#include <vector>

#include "index/inverted_index.h"
#include "index/types.h"
#include "text/vocabulary.h"

namespace sqe::retrieval {

/// Per-document match count for a phrase plus its collection statistics.
struct PhrasePostings {
  std::vector<index::DocId> docs;   // ascending
  std::vector<uint32_t> freqs;      // parallel to docs
  uint64_t collection_frequency = 0;
};

/// Computes postings for the exact consecutive n-gram `term_ids` by
/// intersecting the constituent terms' positional postings. Any invalid
/// term id yields empty postings. `term_ids` must have size >= 2.
PhrasePostings MatchPhrase(const index::InvertedIndex& index,
                           const std::vector<text::TermId>& term_ids);

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_PHRASE_MATCHER_H_
