// ShardRouter: the in-process scoring-side view of a shard partition.
//
// Where index::ShardedIndex is the persistence/distribution form (real
// per-shard InvertedIndexes with local ids), the router is what the query
// path actually consults: the ShardManifest's global DocId ranges plus a
// per-shard doc-length-sorted order, bucketed out of the full index's
// DocsByLength() in one O(N) pass. Scoring stays on the FULL index — atoms
// are resolved once against global collection statistics and each shard
// scores its contiguous range via Retriever::RetrieveRange — so Dirichlet
// scores are bit-identical to the unsharded path at every shard count.
//
// The router itself is immutable after construction and therefore freely
// shared across query workers. The only mutable state is the telemetry
// counter block, which concurrent shard tasks update under `stats_mu_`
// (SQE_GUARDED_BY, checked by clang -Wthread-safety).
#ifndef SQE_RETRIEVAL_SHARD_ROUTER_H_
#define SQE_RETRIEVAL_SHARD_ROUTER_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"
#include "index/inverted_index.h"
#include "index/shard_manifest.h"

namespace sqe::retrieval {

/// Counter snapshot of the router's telemetry (see ShardRouter::Stats).
struct ShardRouterStats {
  uint64_t queries_routed = 0;  // sharded retrievals started
  uint64_t shard_tasks = 0;     // per-shard scoring tasks run
  uint64_t merges = 0;          // top-k merges performed

  std::string ToString() const;
};

class ShardRouter {
 public:
  /// Balanced partition of `index` into `num_shards` ranges (clamped to
  /// >= 1; shards beyond the document count come out empty). The index must
  /// outlive the router.
  ShardRouter(const index::InvertedIndex* index, size_t num_shards);

  /// Adopts an existing manifest (e.g. the one a ShardedIndex was saved
  /// with). The manifest must cover exactly the index's documents
  /// (SQE_CHECKed via ShardManifest::Validate).
  ShardRouter(const index::InvertedIndex* index, index::ShardManifest manifest);

  SQE_DISALLOW_COPY_AND_ASSIGN(ShardRouter);

  size_t num_shards() const { return manifest_.num_shards(); }
  const index::ShardManifest& manifest() const { return manifest_; }
  index::DocId shard_begin(size_t s) const { return manifest_.shard_begin(s); }
  index::DocId shard_end(size_t s) const { return manifest_.shard_end(s); }

  /// Shard s's documents (global ids) in (length ascending, DocId
  /// ascending) order — the slice Retriever::RetrieveRange needs for its
  /// background-tail fill. Restricting the full index's DocsByLength()
  /// order to a contiguous DocId range preserves it, so each bucket is
  /// exactly the shard-local monotone order.
  std::span<const index::DocId> ShardDocsByLength(size_t s) const {
    SQE_DCHECK(s < num_shards());
    return std::span<const index::DocId>(
        docs_by_length_.data() + bucket_offsets_[s],
        docs_by_length_.data() + bucket_offsets_[s + 1]);
  }

  // ---- telemetry -----------------------------------------------------------

  /// Called by the sharded retrieval path: one query fanned out over
  /// `shard_tasks` per-shard scorings and one merge.
  void RecordQuery(uint64_t shard_tasks) const SQE_EXCLUDES(stats_mu_);
  ShardRouterStats Stats() const SQE_EXCLUDES(stats_mu_);

 private:
  void BuildBuckets();

  const index::InvertedIndex* index_;
  index::ShardManifest manifest_;
  // All documents, bucketed by shard: bucket s is
  // docs_by_length_[bucket_offsets_[s] .. bucket_offsets_[s+1]).
  std::vector<index::DocId> docs_by_length_;
  std::vector<size_t> bucket_offsets_;  // size num_shards+1

  mutable Mutex stats_mu_{"shard_router.stats", kLockRankShardRouterStats};
  mutable ShardRouterStats stats_ SQE_GUARDED_BY(stats_mu_);
};

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_SHARD_ROUTER_H_
