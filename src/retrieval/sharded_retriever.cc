#include "retrieval/sharded_retriever.h"

#include <algorithm>

namespace sqe::retrieval {

ResultList MergeShardTopK(std::span<const ResultList> shard_lists, size_t k) {
  size_t total = 0;
  for (const ResultList& list : shard_lists) total += list.size();
  ResultList merged;
  merged.reserve(total);
  for (const ResultList& list : shard_lists) {
    SQE_DCHECK(std::is_sorted(list.begin(), list.end(),
                              [](const ScoredDoc& x, const ScoredDoc& y) {
                                if (x.score != y.score)
                                  return x.score > y.score;
                                return x.doc < y.doc;
                              }));
    merged.insert(merged.end(), list.begin(), list.end());
  }
  // S·k candidates at most: a full sort under the global total order is
  // cheaper to reason about than a k-way heap and trivially deterministic.
  std::sort(merged.begin(), merged.end(),
            [](const ScoredDoc& x, const ScoredDoc& y) {
              if (x.score != y.score) return x.score > y.score;
              return x.doc < y.doc;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

ResultList ShardedRetriever::RetrieveShard(const ResolvedQuery& resolved,
                                           size_t shard, size_t k,
                                           RetrieverScratch* scratch) const {
  if (wand_ != nullptr) {
    return wand_->RetrieveRange(resolved, router_->shard_begin(shard),
                                router_->shard_end(shard),
                                router_->ShardDocsByLength(shard), k,
                                scratch);
  }
  return retriever_->RetrieveRange(resolved, router_->shard_begin(shard),
                                   router_->shard_end(shard),
                                   router_->ShardDocsByLength(shard), k,
                                   scratch);
}

ResultList ShardedRetriever::Retrieve(const Query& query, size_t k,
                                      ThreadPool* pool,
                                      std::span<RetrieverScratch> scratch) const {
  const size_t num_shards = router_->num_shards();
  SQE_CHECK(!scratch.empty());
  if (k == 0 || retriever_->index().NumDocuments() == 0) return {};
  ResolvedQuery resolved = retriever_->Resolve(query);
  if (resolved.empty()) return {};

  std::vector<ResultList> shard_lists(num_shards);
  if (pool != nullptr && pool->num_threads() > 1 && num_shards > 1) {
    SQE_CHECK(scratch.size() >= pool->num_workers());
    pool->ParallelFor(num_shards, [&](size_t s, size_t worker) {
      shard_lists[s] = RetrieveShard(resolved, s, k, &scratch[worker]);
    });
  } else {
    for (size_t s = 0; s < num_shards; ++s) {
      shard_lists[s] = RetrieveShard(resolved, s, k, &scratch[0]);
    }
  }
  router_->RecordQuery(num_shards);
  return MergeShardTopK(shard_lists, k);
}

}  // namespace sqe::retrieval
