// WandRetriever: Block-Max WAND dynamic pruning over the exhaustive
// Retriever's Resolve/RetrieveRange split.
//
// The exhaustive path scores every posting of every atom. For the wide
// queries structural expansion produces (dozens of weighted atoms), most of
// that work goes into documents that can never reach the top-k. WAND skips
// it: cursors over the atoms' doc-sorted postings advance doc-at-a-time,
// and a document is fully scored only if the sum of its atoms' score upper
// bounds can beat the current k-th best score θ. Block-max tables (per-term
// and per-128-posting maxima stored in the index snapshot, see
// index/postings.h) tighten the bounds locally, letting the scorer skip
// whole blocks — and, through the skip target, whole doc-id spans — without
// decoding them.
//
// Pruning is EXACT, not approximate. The contract — proven by construction
// here, asserted bit-for-bit against the exhaustive oracle in
// tests/wand_test.cc, and gated in CI — is that for every (query, range,
// k, shard count, cache state) the result list is byte-identical to
// Retriever::RetrieveRange. The argument, in brief (DESIGN.md §7d has the
// full version):
//
//  1. Every document's score decomposes as bg(D) + delta(D) where
//     bg(D) = background_const − log(|D|+μ) and delta(D) ≥ 0 is the sum of
//     per-atom contributions ω_a·(log(tf+μp_a) − log(μp_a)), each ≥ 0
//     because tf ≥ 0 ⇒ log is non-decreasing. Term/block maxima therefore
//     upper-bound delta terms, and bg of the (k)-th shortest document
//     lower-bounds the eventual θ — so θ is seeded before any scoring.
//  2. A document is skipped only when its upper bound is STRICTLY below the
//     slacked threshold θ − ε(θ). Ties must be evaluated (the ranking
//     tie-breaks by ascending DocId), and the multiplicative ε absorbs any
//     non-monotone libm rounding between the bound's arithmetic and the
//     true score's.
//  3. Documents that survive pruning are scored by the SAME floating-point
//     operations in the SAME (atom) order as the exhaustive path — the
//     shared SoA kernels in score_batch.h — so the surviving candidate set
//     yields the same heap contents, and top-k of a fixed candidate set is
//     independent of visit order.
//
// Phrase atoms carry no block-max tables (their postings are assembled per
// query), so any query containing one falls back to the exhaustive scorer
// wholesale. The fall back is per-query, never per-atom: mixing pruned and
// unpruned atoms would change accumulation order.
#ifndef SQE_RETRIEVAL_WAND_RETRIEVER_H_
#define SQE_RETRIEVAL_WAND_RETRIEVER_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/lock_ranks.h"
#include "common/macros.h"
#include "common/thread_annotations.h"
#include "index/types.h"
#include "retrieval/query.h"
#include "retrieval/result.h"
#include "retrieval/retriever.h"

namespace sqe::retrieval {

/// Counter snapshot of the pruned scorer's telemetry (see
/// WandRetriever::Stats). Counters accumulate across queries and threads.
struct WandStats {
  uint64_t queries = 0;    // retrievals served by the pruned path
  uint64_t fallbacks = 0;  // retrievals routed to the exhaustive scorer
  /// Postings inside the scored range across all pruned retrievals, and how
  /// many of them were actually decoded into a document evaluation. Their
  /// ratio is the headline pruning metric: skipped = 1 − scored/total.
  uint64_t postings_total = 0;
  uint64_t postings_scored = 0;
  uint64_t docs_evaluated = 0;  // documents fully scored
  uint64_t block_skips = 0;     // shallow advances past a block-max bound

  double SkipFraction() const {
    return postings_total == 0
               ? 0.0
               : 1.0 - static_cast<double>(postings_scored) /
                           static_cast<double>(postings_total);
  }
  std::string ToString() const;
};

/// Pruned scorer bound to an exhaustive Retriever (for the index, options,
/// resolution, and the fallback path). Thread-compatible like Retriever:
/// all methods const, concurrent callers pass their own RetrieverScratch;
/// the telemetry block is the only shared mutable state (mutex-guarded).
class WandRetriever {
 public:
  /// `base` must outlive the WandRetriever.
  explicit WandRetriever(const Retriever* base) : base_(base) {
    SQE_CHECK(base != nullptr);
  }
  SQE_DISALLOW_COPY_AND_ASSIGN(WandRetriever);

  /// Drop-in for Retriever::Retrieve: top `k` over the whole collection,
  /// bit-identical to the exhaustive ranking.
  ResultList Retrieve(const Query& query, size_t k,
                      RetrieverScratch* scratch) const;

  /// Drop-in for Retriever::RetrieveRange with the same contract (contiguous
  /// [begin, end) range, `docs_by_length` exactly the range's documents in
  /// (length asc, DocId asc) order). Composes with ShardRouter /
  /// MergeShardTopK exactly as the exhaustive scorer does.
  ResultList RetrieveRange(const ResolvedQuery& resolved, index::DocId begin,
                           index::DocId end,
                           std::span<const index::DocId> docs_by_length,
                           size_t k, RetrieverScratch* scratch) const;

  const Retriever& base() const { return *base_; }
  WandStats Stats() const SQE_EXCLUDES(stats_mu_);

 private:
  // One pruned retrieval's counters, merged into stats_ at the end.
  struct QueryCounters {
    uint64_t postings_total = 0;
    uint64_t postings_scored = 0;
    uint64_t docs_evaluated = 0;
    uint64_t block_skips = 0;
  };

  ResultList PrunedRange(const ResolvedQuery& resolved, index::DocId begin,
                         index::DocId end,
                         std::span<const index::DocId> docs_by_length,
                         size_t k, RetrieverScratch* scratch,
                         QueryCounters* counters) const;

  void RecordPruned(const QueryCounters& counters) const
      SQE_EXCLUDES(stats_mu_);
  void RecordFallback() const SQE_EXCLUDES(stats_mu_);

  const Retriever* base_;
  mutable Mutex stats_mu_{"wand_retriever.stats", kLockRankWandStats};
  mutable WandStats stats_ SQE_GUARDED_BY(stats_mu_);
};

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_WAND_RETRIEVER_H_
