#include "retrieval/retriever.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "retrieval/phrase_matcher.h"
#include "retrieval/score_batch.h"

namespace sqe::retrieval {

ResolvedQuery Retriever::Resolve(const Query& query) const {
  const index::InvertedIndex& idx = *index_;

  // Normalize clause weights, then atom weights within each clause, so the
  // product weights sum to 1 across all atoms.
  double clause_total = 0.0;
  for (const Clause& c : query.clauses) {
    if (!c.atoms.empty() && c.weight > 0.0) clause_total += c.weight;
  }

  ResolvedQuery resolved;
  for (const Clause& c : query.clauses) {
    if (c.atoms.empty() || c.weight <= 0.0 || clause_total <= 0.0) continue;
    double atom_total = 0.0;
    for (const Atom& a : c.atoms) {
      if (a.weight > 0.0 && !a.terms.empty()) atom_total += a.weight;
    }
    if (atom_total <= 0.0) continue;
    for (const Atom& a : c.atoms) {
      if (a.weight <= 0.0 || a.terms.empty()) continue;
      ResolvedQuery::ResolvedAtom r;
      r.weight = (c.weight / clause_total) * (a.weight / atom_total);
      if (!a.is_phrase()) {
        text::TermId t = idx.LookupTerm(a.terms[0]);
        if (t != text::kInvalidTermId) {
          const index::PostingList& pl = idx.Postings(t);
          r.list = &pl;
          r.docs = pl.docs();
          r.freqs = pl.frequencies();
          r.max_freq = pl.MaxFrequency();
          r.block_max_freqs = pl.BlockMaxFrequencies();
          r.block_last_docs = pl.BlockLastDocs();
        }
        r.collection_prob = idx.CollectionProbability(t);
      } else {
        r.is_phrase = true;
        std::vector<text::TermId> ids;
        ids.reserve(a.terms.size());
        for (const std::string& term : a.terms) {
          ids.push_back(idx.LookupTerm(term));
        }
        PhrasePostings pp = MatchPhrase(idx, ids);
        r.owned_docs = std::move(pp.docs);
        r.owned_freqs = std::move(pp.freqs);
        r.docs = r.owned_docs;
        r.freqs = r.owned_freqs;
        double denom = static_cast<double>(std::max<uint64_t>(
            idx.TotalTokens(), 1));
        r.collection_prob =
            pp.collection_frequency > 0
                ? static_cast<double>(pp.collection_frequency) / denom
                : idx.UnseenTermProbability();
      }
      resolved.atoms_.push_back(std::move(r));
    }
  }

  // score(D) = Σ_a ω_a log(tf_aD + μ p_a) − log(|D| + μ)
  //          = background_const + delta(D) − log(|D| + μ)
  const double mu = options_.mu;
  for (const ResolvedQuery::ResolvedAtom& a : resolved.atoms_) {
    resolved.background_const_ += a.weight * std::log(mu * a.collection_prob);
  }
  return resolved;
}

ResultList Retriever::Retrieve(const Query& query, size_t k) const {
  RetrieverScratch scratch;
  return Retrieve(query, k, &scratch);
}

ResultList Retriever::Retrieve(const Query& query, size_t k,
                               RetrieverScratch* scratch) const {
  const size_t num_docs = index_->NumDocuments();
  if (k == 0 || num_docs == 0) return {};
  ResolvedQuery resolved = Resolve(query);
  return RetrieveRange(resolved, 0, static_cast<index::DocId>(num_docs),
                       index_->DocsByLength(), k, scratch);
}

ResultList Retriever::RetrieveRange(
    const ResolvedQuery& resolved, index::DocId begin, index::DocId end,
    std::span<const index::DocId> docs_by_length, size_t k,
    RetrieverScratch* scratch) const {
  SQE_CHECK(scratch != nullptr);
  const index::InvertedIndex& idx = *index_;
  const size_t num_docs = idx.NumDocuments();
  SQE_DCHECK(begin <= end && end <= num_docs);
  SQE_DCHECK(docs_by_length.size() == end - begin);
  const size_t range_docs = end - begin;
  if (k == 0 || range_docs == 0 || resolved.empty()) return {};

  const double mu = options_.mu;
  const double background_const = resolved.background_const_;

  // Sparse accumulation: only documents matching some atom get a delta
  // entry. The epoch stamp invalidates the previous query's entries without
  // clearing the arrays. The accumulator is collection-sized (global ids)
  // regardless of range, so one per-worker scratch serves every shard.
  scratch->delta_.resize(num_docs);
  scratch->epoch_.resize(num_docs);
  if (++scratch->current_epoch_ == 0) {  // wrapped: stamps are all stale
    std::fill(scratch->epoch_.begin(), scratch->epoch_.end(), 0u);
    scratch->current_epoch_ = 1;
  }
  const uint32_t epoch = scratch->current_epoch_;
  std::vector<index::DocId>& touched = scratch->touched_;
  touched.clear();
  scratch->contrib_.resize(kScoreBatchSize);
  double* const contrib = scratch->contrib_.data();
  auto scatter = [&](const index::DocId* d_arr, const double* c_arr,
                     size_t n) {
    for (size_t j = 0; j < n; ++j) {
      const index::DocId d = d_arr[j];
      if (scratch->epoch_[d] != epoch) {
        scratch->epoch_[d] = epoch;
        scratch->delta_[d] = 0.0;
        touched.push_back(d);
      }
      scratch->delta_[d] += c_arr[j];
    }
  };
  for (const ResolvedQuery::ResolvedAtom& a : resolved.atoms_) {
    const double mu_cp = mu * a.collection_prob;
    const double bg = std::log(mu_cp);
    // Postings are doc-sorted, so the range's entries are one contiguous
    // slice; every document accumulates its atoms in atom order exactly as
    // the unpartitioned path does, keeping FP results bit-identical. The
    // slice is scored in SoA batches — a contiguous frequency lane through
    // the contribution kernel, then a scatter into the sparse accumulator —
    // so the transcendental work runs over dense arrays instead of being
    // interleaved with the epoch bookkeeping. The contribution kernel is
    // elementwise and the per-document atom/doc accumulation order is
    // unchanged, so how the slice is chunked (256-posting batches below,
    // 128-posting decoded blocks in the packed branch) cannot move a bit.
    if (a.list != nullptr && a.list->packed()) {
      // Packed postings: walk whole decoded blocks, prefetching the next
      // block's packed bytes while the current one is scored.
      const index::PostingList& pl = *a.list;
      const size_t lo = pl.LowerBound(begin);
      if (lo >= pl.NumDocs()) continue;
      uint32_t dbuf[index::PostingList::kBlockSize];
      uint32_t fbuf[index::PostingList::kBlockSize];
      size_t pos = lo;
      for (size_t b = lo / index::PostingList::kBlockSize;
           b < pl.NumBlocks(); ++b) {
        if (b + 1 < pl.NumBlocks()) {
          __builtin_prefetch(pl.PackedBlock(b + 1).data());
        }
        pl.DecodeBlockInto(b, dbuf, fbuf);
        const size_t block_begin = b * index::PostingList::kBlockSize;
        const size_t len = pl.BlockLength(b);
        size_t off = pos - block_begin;
        size_t stop = len;
        const bool last = dbuf[len - 1] >= end;
        if (last) {
          stop = static_cast<size_t>(
              std::lower_bound(dbuf + off, dbuf + len, end) - dbuf);
        }
        if (stop > off) {
          TermContributionBatch(fbuf + off, stop - off, a.weight, mu_cp, bg,
                                contrib);
          static_assert(sizeof(index::DocId) == sizeof(uint32_t));
          scatter(dbuf + off, contrib, stop - off);
        }
        if (last) break;
        pos = block_begin + len;
      }
      continue;
    }
    const size_t lo = static_cast<size_t>(
        std::lower_bound(a.docs.begin(), a.docs.end(), begin) -
        a.docs.begin());
    const size_t hi = static_cast<size_t>(
        std::lower_bound(a.docs.begin() + lo, a.docs.end(), end) -
        a.docs.begin());
    for (size_t base = lo; base < hi; base += kScoreBatchSize) {
      const size_t n = std::min(kScoreBatchSize, hi - base);
      TermContributionBatch(a.freqs.data() + base, n, a.weight, mu_cp, bg,
                            contrib);
      scatter(a.docs.data() + base, contrib, n);
    }
  }

  auto better = [](const ScoredDoc& x, const ScoredDoc& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  auto final_score = [&](index::DocId d, double delta) {
    return background_const + delta -
           std::log(static_cast<double>(idx.DocLength(d)) + mu);
  };

  // Bounded top-k: `heap` is a binary heap under `better`, so its front is
  // the worst kept candidate (the element no other kept candidate loses to).
  ResultList& heap = scratch->heap_;
  heap.clear();
  const size_t keep = std::min(k, range_docs);
  auto offer = [&](const ScoredDoc& sd) {
    if (heap.size() < keep) {
      heap.push_back(sd);
      std::push_heap(heap.begin(), heap.end(), better);
      return true;
    }
    if (!better(sd, heap.front())) return false;
    std::pop_heap(heap.begin(), heap.end(), better);
    heap.back() = sd;
    std::push_heap(heap.begin(), heap.end(), better);
    return true;
  };

  for (index::DocId d : touched) {
    offer(ScoredDoc{d, final_score(d, scratch->delta_[d])});
  }

  // Untouched documents all score background_const − log(|D| + μ), which the
  // doc-length-sorted order visits in non-increasing preference (score
  // strictly falls with length; equal-length runs ascend by doc id, the
  // tie-break order). The first rejected candidate therefore ends the scan.
  // The order holds within any contiguous DocId range, so the early exit is
  // as valid per shard as it is for the whole collection.
  for (index::DocId d : docs_by_length) {
    SQE_DCHECK(d >= begin && d < end);
    if (scratch->epoch_[d] == epoch) continue;  // scored above
    // Written as background_const + 0.0 − log(...) in effect: identical to
    // the dense formula with a zero accumulator.
    if (!offer(ScoredDoc{d, final_score(d, 0.0)}) ) break;
  }

  std::sort_heap(heap.begin(), heap.end(), better);
  ResultList out(heap.begin(), heap.end());
  return out;
}

double Retriever::ScoreDocument(const Query& query, index::DocId doc) const {
  const index::InvertedIndex& idx = *index_;
  SQE_CHECK(doc < idx.NumDocuments());
  ResolvedQuery resolved = Resolve(query);
  if (resolved.empty()) return -std::numeric_limits<double>::infinity();
  const double mu = options_.mu;
  double score = -std::log(static_cast<double>(idx.DocLength(doc)) + mu);
  for (const ResolvedQuery::ResolvedAtom& a : resolved.atoms_) {
    double tf = 0.0;
    if (a.list != nullptr && a.list->packed()) {
      const size_t i = a.list->Find(doc);
      if (i != index::PostingList::kNpos) {
        uint32_t dbuf[index::PostingList::kBlockSize];
        uint32_t fbuf[index::PostingList::kBlockSize];
        a.list->DecodeBlockInto(i / index::PostingList::kBlockSize, dbuf,
                                fbuf);
        tf = static_cast<double>(fbuf[i % index::PostingList::kBlockSize]);
      }
    } else {
      auto it = std::lower_bound(a.docs.begin(), a.docs.end(), doc);
      if (it != a.docs.end() && *it == doc) {
        tf = static_cast<double>(
            a.freqs[static_cast<size_t>(it - a.docs.begin())]);
      }
    }
    score += a.weight * std::log(tf + mu * a.collection_prob);
  }
  return score;
}

}  // namespace sqe::retrieval
