#include "retrieval/retriever.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "retrieval/phrase_matcher.h"

namespace sqe::retrieval {

std::vector<Retriever::ResolvedAtom> Retriever::ResolveAtoms(
    const Query& query) const {
  const index::InvertedIndex& idx = *index_;

  // Normalize clause weights, then atom weights within each clause, so the
  // product weights sum to 1 across all atoms.
  double clause_total = 0.0;
  for (const Clause& c : query.clauses) {
    if (!c.atoms.empty() && c.weight > 0.0) clause_total += c.weight;
  }

  std::vector<ResolvedAtom> resolved;
  for (const Clause& c : query.clauses) {
    if (c.atoms.empty() || c.weight <= 0.0 || clause_total <= 0.0) continue;
    double atom_total = 0.0;
    for (const Atom& a : c.atoms) {
      if (a.weight > 0.0 && !a.terms.empty()) atom_total += a.weight;
    }
    if (atom_total <= 0.0) continue;
    for (const Atom& a : c.atoms) {
      if (a.weight <= 0.0 || a.terms.empty()) continue;
      ResolvedAtom r;
      r.weight = (c.weight / clause_total) * (a.weight / atom_total);
      if (!a.is_phrase()) {
        text::TermId t = idx.LookupTerm(a.terms[0]);
        if (t != text::kInvalidTermId) {
          const index::PostingList& pl = idx.Postings(t);
          r.docs.reserve(pl.NumDocs());
          r.freqs.reserve(pl.NumDocs());
          for (size_t i = 0; i < pl.NumDocs(); ++i) {
            r.docs.push_back(pl.doc(i));
            r.freqs.push_back(pl.frequency(i));
          }
        }
        r.collection_prob = idx.CollectionProbability(t);
      } else {
        std::vector<text::TermId> ids;
        ids.reserve(a.terms.size());
        for (const std::string& term : a.terms) {
          ids.push_back(idx.LookupTerm(term));
        }
        PhrasePostings pp = MatchPhrase(idx, ids);
        r.docs = std::move(pp.docs);
        r.freqs = std::move(pp.freqs);
        double denom = static_cast<double>(std::max<uint64_t>(
            idx.TotalTokens(), 1));
        r.collection_prob =
            pp.collection_frequency > 0
                ? static_cast<double>(pp.collection_frequency) / denom
                : idx.UnseenTermProbability();
      }
      resolved.push_back(std::move(r));
    }
  }
  return resolved;
}

ResultList Retriever::Retrieve(const Query& query, size_t k) const {
  const index::InvertedIndex& idx = *index_;
  const size_t num_docs = idx.NumDocuments();
  if (k == 0 || num_docs == 0) return {};

  std::vector<ResolvedAtom> atoms = ResolveAtoms(query);
  if (atoms.empty()) return {};

  const double mu = options_.mu;

  // score(D) = Σ_a ω_a log(tf_aD + μ p_a) − log(|D| + μ)
  //          = background_const + delta(D) − log(|D| + μ)
  double background_const = 0.0;
  for (const ResolvedAtom& a : atoms) {
    background_const += a.weight * std::log(mu * a.collection_prob);
  }

  std::vector<double> delta(num_docs, 0.0);
  for (const ResolvedAtom& a : atoms) {
    const double bg = std::log(mu * a.collection_prob);
    for (size_t i = 0; i < a.docs.size(); ++i) {
      delta[a.docs[i]] +=
          a.weight *
          (std::log(static_cast<double>(a.freqs[i]) + mu * a.collection_prob) -
           bg);
    }
  }

  ResultList all(num_docs);
  for (size_t d = 0; d < num_docs; ++d) {
    all[d].doc = static_cast<index::DocId>(d);
    all[d].score = background_const + delta[d] -
                   std::log(static_cast<double>(idx.DocLength(
                                static_cast<index::DocId>(d))) +
                            mu);
  }

  auto better = [](const ScoredDoc& x, const ScoredDoc& y) {
    if (x.score != y.score) return x.score > y.score;
    return x.doc < y.doc;
  };
  if (k < all.size()) {
    std::nth_element(all.begin(), all.begin() + static_cast<ptrdiff_t>(k),
                     all.end(), better);
    all.resize(k);
  }
  std::sort(all.begin(), all.end(), better);
  return all;
}

double Retriever::ScoreDocument(const Query& query, index::DocId doc) const {
  const index::InvertedIndex& idx = *index_;
  SQE_CHECK(doc < idx.NumDocuments());
  std::vector<ResolvedAtom> atoms = ResolveAtoms(query);
  if (atoms.empty()) return -std::numeric_limits<double>::infinity();
  const double mu = options_.mu;
  double score = -std::log(static_cast<double>(idx.DocLength(doc)) + mu);
  for (const ResolvedAtom& a : atoms) {
    auto it = std::lower_bound(a.docs.begin(), a.docs.end(), doc);
    double tf = (it != a.docs.end() && *it == doc)
                    ? static_cast<double>(
                          a.freqs[static_cast<size_t>(it - a.docs.begin())])
                    : 0.0;
    score += a.weight * std::log(tf + mu * a.collection_prob);
  }
  return score;
}

}  // namespace sqe::retrieval
