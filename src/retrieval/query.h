// Query representation: a two-level weighted belief tree, the subset of
// Indri's language the paper uses.
//
//   #weight( w_1 #weight( v_11 atom_11  v_12 atom_12 ... )
//            w_2 #weight( ... ) ... )
//
// where an atom is either a single term or an ordered n-gram phrase (#1).
// The expanded SQE query is exactly this shape: clause 1 = user's terms,
// clause 2 = query-entity title phrases, clause 3 = expansion-feature title
// phrases weighted by motif multiplicity |m_a|.
#ifndef SQE_RETRIEVAL_QUERY_H_
#define SQE_RETRIEVAL_QUERY_H_

#include <string>
#include <vector>

namespace sqe::retrieval {

/// A scoring atom: one term (terms.size()==1) or an ordered phrase that
/// matches only exact consecutive occurrences (Indri's #1 operator).
struct Atom {
  double weight = 1.0;
  std::vector<std::string> terms;  // analyzed terms

  static Atom Term(std::string term, double weight = 1.0) {
    Atom a;
    a.weight = weight;
    a.terms.push_back(std::move(term));
    return a;
  }
  static Atom Phrase(std::vector<std::string> terms, double weight = 1.0) {
    Atom a;
    a.weight = weight;
    a.terms = std::move(terms);
    return a;
  }
  bool is_phrase() const { return terms.size() > 1; }
};

/// A weighted group of atoms (an inner #weight / #combine).
struct Clause {
  double weight = 1.0;
  std::vector<Atom> atoms;
};

/// The full query: weighted combination of clauses. Weights are normalized
/// at scoring time, so callers may use any positive scale.
struct Query {
  std::vector<Clause> clauses;

  /// Single-clause query with equal term weights (a plain #combine).
  static Query FromTerms(const std::vector<std::string>& terms);

  /// Total number of atoms across clauses.
  size_t NumAtoms() const;
  bool Empty() const;

  /// Indri-like textual rendering for logging/tests.
  std::string ToString() const;
};

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_QUERY_H_
