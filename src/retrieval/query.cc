#include "retrieval/query.h"

#include "common/string_util.h"

namespace sqe::retrieval {

Query Query::FromTerms(const std::vector<std::string>& terms) {
  Query q;
  Clause clause;
  for (const std::string& t : terms) clause.atoms.push_back(Atom::Term(t));
  if (!clause.atoms.empty()) q.clauses.push_back(std::move(clause));
  return q;
}

size_t Query::NumAtoms() const {
  size_t n = 0;
  for (const Clause& c : clauses) n += c.atoms.size();
  return n;
}

bool Query::Empty() const { return NumAtoms() == 0; }

std::string Query::ToString() const {
  std::string out = "#weight(";
  for (const Clause& c : clauses) {
    out += StrFormat(" %.3f #weight(", c.weight);
    for (const Atom& a : c.atoms) {
      out += StrFormat(" %.3f ", a.weight);
      if (a.is_phrase()) {
        out += "#1(";
        out += Join(a.terms, " ");
        out += ")";
      } else {
        out += a.terms.empty() ? "<empty>" : a.terms[0];
      }
    }
    out += " )";
  }
  out += " )";
  return out;
}

}  // namespace sqe::retrieval
