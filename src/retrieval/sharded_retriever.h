// ShardedRetriever: intra-query parallel scoring over a ShardRouter
// partition, with a deterministic top-k merge.
//
// Contract: Retrieve() is bit-identical to Retriever::Retrieve over the full
// index, for every shard count and thread count. The argument:
//   1. Atoms are resolved ONCE against the full index, so every shard
//      scores with the same global collection statistics and the same
//      normalized weights.
//   2. Each document is scored by exactly one shard, by the same FP
//      operations in the same order as the unsharded path
//      (Retriever::RetrieveRange shares that code).
//   3. Each shard's top-min(k, |shard|) under the total order
//      (score desc, DocId asc) is a superset of the global top-k's members
//      from that shard, so merging the per-shard lists and truncating to k
//      reproduces the global top-k exactly. Ties cannot straddle the merge
//      ambiguously because DocIds are unique.
#ifndef SQE_RETRIEVAL_SHARDED_RETRIEVER_H_
#define SQE_RETRIEVAL_SHARDED_RETRIEVER_H_

#include <span>

#include "common/macros.h"
#include "common/thread_pool.h"
#include "retrieval/retriever.h"
#include "retrieval/shard_router.h"
#include "retrieval/wand_retriever.h"

namespace sqe::retrieval {

/// Merges per-shard result lists (each sorted by score desc, DocId asc,
/// each covering a disjoint DocId set) into the global top `k` under the
/// same order. Deterministic: depends only on the lists' contents.
ResultList MergeShardTopK(std::span<const ResultList> shard_lists, size_t k);

/// Thread-compatible facade pairing a Retriever with a ShardRouter. Both
/// must outlive it. When a WandRetriever is supplied, per-shard scoring
/// goes through the pruned path instead — legal precisely because WAND's
/// RetrieveRange is bit-identical to the exhaustive one, so contract points
/// 2 and 3 above are unchanged.
class ShardedRetriever {
 public:
  ShardedRetriever(const Retriever* retriever, const ShardRouter* router,
                   const WandRetriever* wand = nullptr)
      : retriever_(retriever), router_(router), wand_(wand) {
    SQE_CHECK(retriever != nullptr && router != nullptr);
    SQE_CHECK(wand == nullptr || &wand->base() == retriever);
  }

  /// Top-k over the whole collection, scoring shards on `pool` (all shards
  /// sequentially on the calling thread when pool is null or empty).
  /// `scratch` must provide one slot per pool worker
  /// (pool->num_workers(), or >= 1 slot for the null-pool case). Must not
  /// be called from inside a pool task — ParallelFor blocks the caller, so
  /// batch pipelines flatten (query, shard) pairs instead (see
  /// SqeEngine::RunBatch).
  ResultList Retrieve(const Query& query, size_t k, ThreadPool* pool,
                      std::span<RetrieverScratch> scratch) const;

  /// One shard's top-min(k, |shard|) for an already-resolved query — the
  /// building block batch pipelines schedule as independent tasks.
  ResultList RetrieveShard(const ResolvedQuery& resolved, size_t shard,
                           size_t k, RetrieverScratch* scratch) const;

  const Retriever& retriever() const { return *retriever_; }
  const ShardRouter& router() const { return *router_; }

 private:
  const Retriever* retriever_;
  const ShardRouter* router_;
  const WandRetriever* wand_;  // optional pruned scorer; null = exhaustive
};

}  // namespace sqe::retrieval

#endif  // SQE_RETRIEVAL_SHARDED_RETRIEVER_H_
