#include "retrieval/shard_router.h"

#include <utility>

#include "common/string_util.h"

namespace sqe::retrieval {

std::string ShardRouterStats::ToString() const {
  return StrFormat(
      "shard router: %llu queries, %llu shard tasks, %llu merges",
      (unsigned long long)queries_routed, (unsigned long long)shard_tasks,
      (unsigned long long)merges);
}

ShardRouter::ShardRouter(const index::InvertedIndex* index, size_t num_shards)
    : ShardRouter(index, index::ShardManifest::Balanced(
                             index == nullptr ? 0 : index->NumDocuments(),
                             num_shards)) {}

ShardRouter::ShardRouter(const index::InvertedIndex* index,
                         index::ShardManifest manifest)
    : index_(index), manifest_(std::move(manifest)) {
  SQE_CHECK(index != nullptr);
  Status status = manifest_.Validate(index->NumDocuments());
  SQE_CHECK_MSG(status.ok(), status.ToString().c_str());
  BuildBuckets();
}

void ShardRouter::BuildBuckets() {
  const size_t num_shards = manifest_.num_shards();
  bucket_offsets_.assign(num_shards + 1, 0);
  for (size_t s = 0; s < num_shards; ++s) {
    bucket_offsets_[s + 1] = bucket_offsets_[s] + manifest_.shard_size(s);
  }
  docs_by_length_.resize(manifest_.num_docs());
  std::vector<size_t> cursor(bucket_offsets_.begin(),
                             bucket_offsets_.end() - 1);
  // One stable pass over the global (length, DocId) order: each bucket
  // receives its shard's documents in that same order.
  for (index::DocId d : index_->DocsByLength()) {
    docs_by_length_[cursor[manifest_.ShardOf(d)]++] = d;
  }
}

void ShardRouter::RecordQuery(uint64_t shard_tasks) const {
  MutexLock lock(&stats_mu_);
  stats_.queries_routed += 1;
  stats_.shard_tasks += shard_tasks;
  stats_.merges += 1;
}

ShardRouterStats ShardRouter::Stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace sqe::retrieval
