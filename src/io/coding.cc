#include "io/coding.h"

namespace sqe::io {

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xFF);
  buf[1] = static_cast<char>((value >> 8) & 0xFF);
  buf[2] = static_cast<char>((value >> 16) & 0xFF);
  buf[3] = static_cast<char>((value >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  PutFixed32(dst, static_cast<uint32_t>(value & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(value >> 32));
}

void PutVarint32(std::string* dst, uint32_t value) {
  PutVarint64(dst, value);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), static_cast<size_t>(n));
}

void PutLengthPrefixed(std::string* dst, std::string_view value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(std::string_view* input, uint32_t* value) {
  if (input->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(std::string_view* input, uint64_t* value) {
  uint32_t lo, hi;
  if (!GetFixed32(input, &lo)) return false;
  if (!GetFixed32(input, &hi)) return false;
  *value = (static_cast<uint64_t>(hi) << 32) | lo;
  return true;
}

bool GetVarint64(std::string_view* input, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    auto byte = static_cast<unsigned char>(input->front());
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    } else {
      result |= static_cast<uint64_t>(byte) << shift;
      *value = result;
      return true;
    }
  }
  return false;  // truncated or > 10 bytes
}

bool GetVarint32(std::string_view* input, uint32_t* value) {
  uint64_t v64;
  if (!GetVarint64(input, &v64)) return false;
  if (v64 > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v64);
  return true;
}

bool GetLengthPrefixed(std::string_view* input, std::string_view* value) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = input->substr(0, len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t value) {
  int n = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++n;
  }
  return n;
}

}  // namespace sqe::io
