#include "io/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sqe::io {

namespace {
Status ErrnoError(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}
}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return ErrnoError("cannot open for mmap:", path);

  struct ::stat st;
  if (::fstat(fd, &st) != 0) {
    Status status = ErrnoError("cannot stat:", path);
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IOError("not a regular file: " + path);
  }

  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    void* data =
        ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (data == MAP_FAILED) {
      Status status = ErrnoError("cannot mmap:", path);
      ::close(fd);
      return status;
    }
    mapped.data_ = data;
  }
  // The mapping outlives the descriptor.
  ::close(fd);
  return mapped;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

}  // namespace sqe::io
