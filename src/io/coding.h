// Varint and fixed-width little-endian coding, RocksDB-style.
//
// Snapshot files (KB graphs, inverted indexes) use these primitives. All
// multi-byte values are little-endian regardless of host order.
#ifndef SQE_IO_CODING_H_
#define SQE_IO_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace sqe::io {

/// Appends a fixed 32-bit little-endian value.
void PutFixed32(std::string* dst, uint32_t value);
/// Appends a fixed 64-bit little-endian value.
void PutFixed64(std::string* dst, uint64_t value);

/// Appends a varint-encoded 32/64-bit value (LEB128, 1–5 / 1–10 bytes).
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);

/// Appends varint length followed by the raw bytes.
void PutLengthPrefixed(std::string* dst, std::string_view value);

/// ZigZag maps signed to unsigned so small magnitudes encode small.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Decoders return true on success and advance *input past the consumed
/// bytes; on failure *input is unspecified and false is returned.
bool GetFixed32(std::string_view* input, uint32_t* value);
bool GetFixed64(std::string_view* input, uint64_t* value);
bool GetVarint32(std::string_view* input, uint32_t* value);
bool GetVarint64(std::string_view* input, uint64_t* value);
bool GetLengthPrefixed(std::string_view* input, std::string_view* value);

/// Number of bytes PutVarint64 would emit.
int VarintLength(uint64_t value);

}  // namespace sqe::io

#endif  // SQE_IO_CODING_H_
