// Read-only memory-mapped file, the zero-copy substrate for aligned (v3+)
// snapshots: SnapshotReader::OpenMapped keeps one of these alive and hands
// out block payload views that point straight into the mapping, so loading
// a multi-gigabyte snapshot touches pages on demand instead of copying the
// whole image through the heap.
#ifndef SQE_IO_MMAP_FILE_H_
#define SQE_IO_MMAP_FILE_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace sqe::io {

/// An immutable byte range backed by mmap(PROT_READ). Movable, not
/// copyable; the mapping lives until destruction, independent of the file
/// descriptor (closed immediately after mapping) and of later unlinks of
/// the underlying path.
class MappedFile {
 public:
  static Result<MappedFile> Open(const std::string& path);

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  /// The whole mapped image. Empty files map to an empty view.
  std::string_view view() const {
    if (data_ == nullptr) return {};
    return std::string_view(static_cast<const char*>(data_), size_);
  }
  size_t size() const { return size_; }

 private:
  MappedFile() = default;

  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace sqe::io

#endif  // SQE_IO_MMAP_FILE_H_
