// Whole-file helpers plus a checksummed block-file format for snapshots.
//
// Two container layouts share one reader, dispatched on the version field
// (io/snapshot_format.h):
//
// Legacy layout (versions < kAlignedSnapshotVersion):
//   [magic: fixed32][format_version: varint]
//   repeated blocks: [name: length-prefixed][payload: length-prefixed]
//                    [crc32(payload): fixed32]
//   [footer magic: fixed32]
//
// Aligned layout (versions >= kAlignedSnapshotVersion, little-endian only):
//   header (one kSnapshotAlignment unit):
//     [magic: fixed32][version: u8, < 0x80][3 zero bytes]
//     [num_blocks: fixed64][directory_offset: fixed64][total_size: fixed64]
//     [crc32(header bytes 0..31): fixed32][zero padding to 64]
//   payload region: each block's raw payload at a kSnapshotAlignment-aligned
//     offset, zero padding in the gaps
//   directory (at directory_offset, aligned): per block
//     [name: length-prefixed][offset: varint64][size: varint64]
//     [crc32(payload): fixed32]
//   [crc32(directory bytes): fixed32][footer magic: fixed32]
//
// The version byte stays below 0x80 so the legacy varint parse reads the
// same value and Open can dispatch. Because payload offsets are aligned
// multiples, raw little-endian u32/u64 arrays inside blocks are readable in
// place (BlockAsArray) both from mmap regions (page-aligned) and from
// heap-allocated image strings.
//
// Readers verify every CRC and reject duplicate block names; a mismatch,
// duplicate, or truncation yields Status::Corruption, never a partial
// in-memory object. WriteStringToFile is atomic: data lands in a temp file
// in the destination directory, is fsync'ed, and is renamed over the
// destination, so a crash mid-write can never leave a torn snapshot under
// the final name.
#ifndef SQE_IO_FILE_H_
#define SQE_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sqe::io {

class MappedFile;

/// How a snapshot-backed structure materializes its arrays.
enum class LoadMode {
  /// Decode/copy into owned heap vectors. Works for every snapshot version.
  kHeap,
  /// Point spans into the snapshot image; the image is retained (mmap or
  /// heap string) for the object's lifetime. Aligned (v3+) snapshots only.
  kZeroCopy,
};

/// Reads an entire file into a string (size reserved up front via fstat).
Result<std::string> ReadFileToString(const std::string& path);

/// Atomically writes `data` to `path`, replacing any existing file: the
/// bytes are written to a temp file in the same directory, flushed and
/// fsync'ed, then renamed into place. On any failure the destination is
/// untouched and the temp file is removed.
Status WriteStringToFile(const std::string& path, std::string_view data);

namespace testing {
/// Failure injection for the torn-write regression tests: the next
/// WriteStringToFile call fails with IOError at the given point, leaving
/// on disk exactly what a crash at that instant would leave. Auto-disarms
/// after firing.
enum class WriteFailurePoint {
  kNone,
  /// After the payload bytes reach the temp file, before fsync.
  kAfterWrite,
  /// After fsync+close of the temp file, before the atomic rename.
  kBeforeRename,
};
void SetWriteFailurePoint(WriteFailurePoint point);
}  // namespace testing

/// Reinterprets an aligned-snapshot block payload as an array of trivially
/// copyable little-endian elements, in place. Fails (Corruption) on size or
/// alignment mismatch; `what` names the block in error messages.
template <typename T>
Result<std::span<const T>> BlockAsArray(std::string_view payload,
                                        std::string_view what) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (payload.size() % sizeof(T) != 0) {
    return Status::Corruption(std::string(what) +
                              ": block size is not a multiple of the "
                              "element size");
  }
  if (reinterpret_cast<uintptr_t>(payload.data()) % alignof(T) != 0) {
    return Status::Corruption(std::string(what) + ": block misaligned");
  }
  return std::span<const T>(reinterpret_cast<const T*>(payload.data()),
                            payload.size() / sizeof(T));
}

/// Appends the raw little-endian bytes of `values` to an aligned-snapshot
/// block payload under construction.
template <typename T>
void AppendArray(std::string* dst, std::span<const T> values) {
  static_assert(std::is_trivially_copyable_v<T>);
  dst->append(reinterpret_cast<const char*>(values.data()),
              values.size_bytes());
}

/// Serializes named, CRC-protected blocks into the snapshot format. The
/// version selects the container layout: versions below
/// kAlignedSnapshotVersion produce the legacy varint-framed layout,
/// versions at or above it the aligned zero-copy layout.
class SnapshotWriter {
 public:
  /// `magic` distinguishes snapshot kinds (index vs KB graph).
  explicit SnapshotWriter(uint32_t magic, uint32_t version = 1);

  /// Adds a named block. Names must be unique; enforced at WriteToFile()
  /// and by every reader at Open.
  void AddBlock(std::string_view name, std::string payload);

  /// Assembles the file image and writes it atomically to `path`.
  Status WriteToFile(const std::string& path) const;

  /// Returns the assembled in-memory image (for tests).
  std::string Serialize() const;

 private:
  std::string SerializeLegacy() const;
  std::string SerializeAligned() const;

  struct Block {
    std::string name;
    std::string payload;
  };
  uint32_t magic_;
  uint32_t version_;
  std::vector<Block> blocks_;
};

/// Parses and CRC-verifies a snapshot image. The image bytes live either
/// in a shared heap string (Open/OpenFile) or a shared mmap region
/// (OpenMapped); GetBlock views point into that storage, and retainer()
/// hands out an owning reference so zero-copy loaders can keep the bytes
/// alive after the reader itself is gone.
class SnapshotReader {
 public:
  /// Parses the image; returns Corruption on bad magic/CRC/truncation or
  /// duplicate block names.
  static Result<SnapshotReader> Open(std::string image,
                                     uint32_t expected_magic);
  static Result<SnapshotReader> OpenFile(const std::string& path,
                                         uint32_t expected_magic);
  /// Memory-maps `path` instead of reading it onto the heap. Same
  /// verification as Open; block views point into the mapping.
  static Result<SnapshotReader> OpenMapped(const std::string& path,
                                           uint32_t expected_magic);

  uint32_t version() const { return version_; }

  /// True when the image is an mmap region rather than a heap string.
  bool is_mapped() const { return mapped_file_ != nullptr; }

  /// Returns the payload of the named block, or NotFound. The view is valid
  /// while the image storage lives (this reader or any retainer()).
  Result<std::string_view> GetBlock(std::string_view name) const;

  /// Names in file order.
  std::vector<std::string> BlockNames() const;

  /// An owning handle on the image storage; zero-copy loaders store this so
  /// their spans outlive the reader.
  std::shared_ptr<const void> retainer() const;

 private:
  SnapshotReader() = default;

  Status ParseLegacy(std::string_view in);
  Status ParseAligned(std::string_view image);
  static Result<SnapshotReader> Parse(SnapshotReader reader,
                                      uint32_t expected_magic);

  std::shared_ptr<const std::string> owned_;      // heap-backed images
  std::shared_ptr<const MappedFile> mapped_file_;  // mmap-backed images
  std::string_view image_;  // whole image, pointing into the storage above
  uint32_t version_ = 0;
  struct BlockRef {
    std::string name;
    size_t offset;
    size_t size;
  };
  std::vector<BlockRef> blocks_;
};

}  // namespace sqe::io

#endif  // SQE_IO_FILE_H_
