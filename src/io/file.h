// Whole-file helpers plus a checksummed block-file format for snapshots.
//
// Snapshot layout:
//   [magic: fixed32][format_version: varint]
//   repeated blocks: [name: length-prefixed][payload: length-prefixed]
//                    [crc32(payload): fixed32]
//   [footer magic: fixed32]
//
// Readers verify every CRC; a mismatch or truncation yields
// Status::Corruption, never a partial in-memory object.
#ifndef SQE_IO_FILE_H_
#define SQE_IO_FILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace sqe::io {

/// Reads an entire file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `data` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view data);

/// Serializes named, CRC-protected blocks into the snapshot format.
class SnapshotWriter {
 public:
  /// `magic` distinguishes snapshot kinds (index vs KB graph).
  explicit SnapshotWriter(uint32_t magic, uint32_t version = 1);

  /// Adds a named block. Names must be unique; enforced at Finish().
  void AddBlock(std::string_view name, std::string payload);

  /// Assembles the file image and writes it to `path`.
  Status WriteToFile(const std::string& path) const;

  /// Returns the assembled in-memory image (for tests).
  std::string Serialize() const;

 private:
  struct Block {
    std::string name;
    std::string payload;
  };
  uint32_t magic_;
  uint32_t version_;
  std::vector<Block> blocks_;
};

/// Parses and CRC-verifies a snapshot image.
class SnapshotReader {
 public:
  /// Parses the image; returns Corruption on bad magic/CRC/truncation.
  static Result<SnapshotReader> Open(std::string image, uint32_t expected_magic);
  static Result<SnapshotReader> OpenFile(const std::string& path,
                                         uint32_t expected_magic);

  uint32_t version() const { return version_; }

  /// Returns the payload of the named block, or NotFound.
  Result<std::string_view> GetBlock(std::string_view name) const;

  /// Names in file order.
  std::vector<std::string> BlockNames() const;

 private:
  SnapshotReader() = default;

  std::string image_;  // owns all block bytes
  uint32_t version_ = 0;
  struct BlockRef {
    std::string name;
    size_t offset;
    size_t size;
  };
  std::vector<BlockRef> blocks_;
};

}  // namespace sqe::io

#endif  // SQE_IO_FILE_H_
