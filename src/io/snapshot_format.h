// The single definition point for every snapshot kind's magic number and
// format version.
//
// tools/sqe_lint.py (rule `single-magic-def`) rejects snapshot magic or
// version constants — and raw 0x5351xxxx literals — defined anywhere else
// in the tree, so a new snapshot kind or a version bump cannot silently
// fork: writers, readers, validators, tests, and fuzz corpora all read the
// same constants from here.
#ifndef SQE_IO_SNAPSHOT_FORMAT_H_
#define SQE_IO_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace sqe::io {

/// KB graph snapshots (kb::KnowledgeBase).
inline constexpr uint32_t kKbSnapshotMagic = 0x53514B42;  // "SQKB"

/// Inverted-index snapshots (index::InvertedIndex). Version 2 added the
/// "blockmax" block (per-term max frequency + per-block maxima) that the
/// Block-Max WAND pruned scorer trusts for skip decisions.
inline constexpr uint32_t kIndexSnapshotMagic = 0x53514958;  // "SQIX"
inline constexpr uint32_t kIndexSnapshotVersion = 2;

/// Shard-manifest snapshots (index::ShardManifest).
inline constexpr uint32_t kShardManifestSnapshotMagic = 0x53514D46;  // "SQMF"

/// Trailing sentinel every block file ends with (io::SnapshotWriter).
inline constexpr uint32_t kSnapshotFooterMagic = 0x53514546;  // "SQEF"

}  // namespace sqe::io

#endif  // SQE_IO_SNAPSHOT_FORMAT_H_
