// The single definition point for every snapshot kind's magic number and
// format version.
//
// tools/sqe_lint.py (rule `single-magic-def`) rejects snapshot magic or
// version constants — and raw 0x5351xxxx literals — defined anywhere else
// in the tree, so a new snapshot kind or a version bump cannot silently
// fork: writers, readers, validators, tests, and fuzz corpora all read the
// same constants from here.
#ifndef SQE_IO_SNAPSHOT_FORMAT_H_
#define SQE_IO_SNAPSHOT_FORMAT_H_

#include <cstdint>

namespace sqe::io {

/// First container version using the 64-byte-aligned zero-copy block layout
/// (see io/file.h). Versions below this use the legacy varint-framed layout;
/// versions at or above it can be opened with SnapshotReader::OpenMapped and
/// consumed directly from the mapped image.
inline constexpr uint32_t kAlignedSnapshotVersion = 3;

/// Alignment of every block payload (and the directory) in an aligned
/// snapshot: one cache line, and a multiple of alignof(uint64_t), so raw
/// little-endian u32/u64 arrays are readable in place from page-aligned
/// mmap regions and malloc-aligned strings alike.
inline constexpr uint32_t kSnapshotAlignment = 64;

/// KB graph snapshots (kb::KnowledgeBase). Version 3 moved to the aligned
/// zero-copy layout and persists the derived structures (reverse CSRs,
/// reciprocal-link CSR, sorted title orders) that versions 1-2 rebuilt on
/// every load; versions 1-2 remain loadable on the heap path.
inline constexpr uint32_t kKbSnapshotMagic = 0x53514B42;  // "SQKB"
inline constexpr uint32_t kKbSnapshotVersion = 3;

/// Inverted-index snapshots (index::InvertedIndex). Version 2 added the
/// "blockmax" block (per-term max frequency + per-block maxima) that the
/// Block-Max WAND pruned scorer trusts for skip decisions. Version 3 moved
/// to the aligned zero-copy layout and persists the derived docs-by-length
/// order, block-last-doc boundaries, and the sorted vocabulary order.
/// Version 4 replaces the raw doc/freq/position-offset posting arrays with
/// the block bit-packed codec (index/postings_codec.h, DESIGN.md §6d);
/// versions 1-3 remain loadable on their existing paths.
inline constexpr uint32_t kIndexSnapshotMagic = 0x53514958;  // "SQIX"
inline constexpr uint32_t kIndexSnapshotVersion = 4;

/// First index snapshot version whose postings region is bit-packed
/// (per-block delta-gap doc ids + freq-1 values at per-block widths). The
/// container layout is unchanged from v3 — packed bytes live in ordinary
/// aligned blocks — so v4 stays zero-copy mappable.
inline constexpr uint32_t kPackedPostingsSnapshotVersion = 4;

/// Shard-manifest snapshots (index::ShardManifest).
inline constexpr uint32_t kShardManifestSnapshotMagic = 0x53514D46;  // "SQMF"

/// Trailing sentinel every block file ends with (io::SnapshotWriter).
inline constexpr uint32_t kSnapshotFooterMagic = 0x53514546;  // "SQEF"

}  // namespace sqe::io

#endif  // SQE_IO_SNAPSHOT_FORMAT_H_
