#include "io/file.h"

#include <cstdio>
#include <set>

#include "common/hash.h"
#include "common/string_util.h"
#include "io/coding.h"
#include "io/snapshot_format.h"

namespace sqe::io {

namespace {
}  // namespace

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IOError("read error: " + path);
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  bool flush_failed = std::fclose(f) != 0;
  if (written != data.size() || flush_failed) {
    return Status::IOError("short write: " + path);
  }
  return Status::OK();
}

SnapshotWriter::SnapshotWriter(uint32_t magic, uint32_t version)
    : magic_(magic), version_(version) {}

void SnapshotWriter::AddBlock(std::string_view name, std::string payload) {
  blocks_.push_back(Block{std::string(name), std::move(payload)});
}

std::string SnapshotWriter::Serialize() const {
  std::string out;
  PutFixed32(&out, magic_);
  PutVarint32(&out, version_);
  PutVarint64(&out, blocks_.size());
  for (const Block& b : blocks_) {
    PutLengthPrefixed(&out, b.name);
    PutLengthPrefixed(&out, b.payload);
    PutFixed32(&out, sqe::Crc32(b.payload));
  }
  PutFixed32(&out, kSnapshotFooterMagic);
  return out;
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  std::set<std::string> names;
  for (const Block& b : blocks_) {
    if (!names.insert(b.name).second) {
      return Status::InvalidArgument("duplicate snapshot block: " + b.name);
    }
  }
  return WriteStringToFile(path, Serialize());
}

Result<SnapshotReader> SnapshotReader::Open(std::string image,
                                            uint32_t expected_magic) {
  SnapshotReader reader;
  reader.image_ = std::move(image);
  std::string_view in(reader.image_);

  uint32_t magic;
  if (!GetFixed32(&in, &magic)) {
    return Status::Corruption("snapshot too short for magic");
  }
  if (magic != expected_magic) {
    return Status::Corruption(
        StrFormat("bad snapshot magic: got %#x want %#x", magic,
                  expected_magic));
  }
  if (!GetVarint32(&in, &reader.version_)) {
    return Status::Corruption("snapshot missing version");
  }
  uint64_t num_blocks;
  if (!GetVarint64(&in, &num_blocks)) {
    return Status::Corruption("snapshot missing block count");
  }
  for (uint64_t i = 0; i < num_blocks; ++i) {
    std::string_view name, payload;
    if (!GetLengthPrefixed(&in, &name)) {
      return Status::Corruption("snapshot block name truncated");
    }
    if (!GetLengthPrefixed(&in, &payload)) {
      return Status::Corruption("snapshot block payload truncated: " +
                                std::string(name));
    }
    uint32_t stored_crc;
    if (!GetFixed32(&in, &stored_crc)) {
      return Status::Corruption("snapshot block crc truncated: " +
                                std::string(name));
    }
    uint32_t actual_crc = sqe::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::Corruption(
          StrFormat("snapshot block '%s' crc mismatch: stored %#x actual %#x",
                    std::string(name).c_str(), stored_crc, actual_crc));
    }
    reader.blocks_.push_back(BlockRef{
        std::string(name),
        static_cast<size_t>(payload.data() - reader.image_.data()),
        payload.size()});
  }
  uint32_t footer;
  if (!GetFixed32(&in, &footer) || footer != kSnapshotFooterMagic) {
    return Status::Corruption("snapshot footer missing or invalid");
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::OpenFile(const std::string& path,
                                                uint32_t expected_magic) {
  auto image = ReadFileToString(path);
  if (!image.ok()) return image.status();
  return Open(std::move(image).value(), expected_magic);
}

Result<std::string_view> SnapshotReader::GetBlock(
    std::string_view name) const {
  for (const BlockRef& b : blocks_) {
    if (b.name == name) {
      return std::string_view(image_).substr(b.offset, b.size);
    }
  }
  return Status::NotFound("snapshot block not found: " + std::string(name));
}

std::vector<std::string> SnapshotReader::BlockNames() const {
  std::vector<std::string> names;
  names.reserve(blocks_.size());
  for (const BlockRef& b : blocks_) names.push_back(b.name);
  return names;
}

}  // namespace sqe::io
