#include "io/file.h"

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>

#include "common/hash.h"
#include "common/macros.h"
#include "common/string_util.h"
#include "io/coding.h"
#include "io/mmap_file.h"
#include "io/snapshot_format.h"

namespace sqe::io {

namespace {

constexpr size_t kAlign = kSnapshotAlignment;
constexpr size_t kAlignedHeaderCrcOffset = 32;

size_t AlignUp(size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

testing::WriteFailurePoint g_write_failure_point =
    testing::WriteFailurePoint::kNone;

// True exactly once per armed point; disarms on fire.
bool InjectedFailureAt(testing::WriteFailurePoint point) {
  if (g_write_failure_point != point) return false;
  g_write_failure_point = testing::WriteFailurePoint::kNone;
  return true;
}

}  // namespace

namespace testing {
void SetWriteFailurePoint(WriteFailurePoint point) {
  g_write_failure_point = point;
}
}  // namespace testing

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  std::string out;
  // Reserve the full file size up front: the append loop below would
  // otherwise reallocate-and-copy logarithmically many times, which on
  // multi-GB snapshots is both slow and a 2x transient memory spike. The
  // loop stays as the source of truth for the actual size (the file may
  // change between fstat and the reads).
  struct ::stat st;
  if (::fstat(::fileno(f), &st) == 0 && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool had_error = std::ferror(f) != 0;
  std::fclose(f);
  if (had_error) return Status::IOError("read error: " + path);
  return out;
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  // Write-to-temp + fsync + rename: a crash (or ENOSPC, or an injected
  // failure) at ANY point leaves either the old file or the new file under
  // `path`, never a torn mixture. The temp file lives in the destination
  // directory so the final rename(2) stays on one filesystem and is atomic.
  static std::atomic<uint64_t> counter{0};
  std::string tmp = StrFormat(
      "%s.tmp.%d.%llu", path.c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(counter.fetch_add(1) + 1));
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open for write: " + tmp);
  }
  auto fail = [&](const std::string& message) {
    if (f != nullptr) std::fclose(f);
    std::remove(tmp.c_str());
    return Status::IOError(message);
  };

  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  if (written != data.size()) return fail("short write: " + tmp);
  if (InjectedFailureAt(testing::WriteFailurePoint::kAfterWrite)) {
    return fail("injected failure after write: " + tmp);
  }
  if (std::fflush(f) != 0) return fail("flush failed: " + tmp);
  if (::fsync(::fileno(f)) != 0) return fail("fsync failed: " + tmp);
  if (std::fclose(f) != 0) {
    f = nullptr;
    return fail("close failed: " + tmp);
  }
  f = nullptr;
  if (InjectedFailureAt(testing::WriteFailurePoint::kBeforeRename)) {
    return fail("injected failure before rename: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("rename failed: " + tmp + " -> " + path);
  }
  return Status::OK();
}

SnapshotWriter::SnapshotWriter(uint32_t magic, uint32_t version)
    : magic_(magic), version_(version) {}

void SnapshotWriter::AddBlock(std::string_view name, std::string payload) {
  blocks_.push_back(Block{std::string(name), std::move(payload)});
}

std::string SnapshotWriter::SerializeLegacy() const {
  std::string out;
  PutFixed32(&out, magic_);
  PutVarint32(&out, version_);
  PutVarint64(&out, blocks_.size());
  for (const Block& b : blocks_) {
    PutLengthPrefixed(&out, b.name);
    PutLengthPrefixed(&out, b.payload);
    PutFixed32(&out, sqe::Crc32(b.payload));
  }
  PutFixed32(&out, kSnapshotFooterMagic);
  return out;
}

std::string SnapshotWriter::SerializeAligned() const {
  // The legacy parser must read the version byte as the same varint value,
  // which caps aligned versions at 0x7f.
  SQE_CHECK_MSG(version_ >= kAlignedSnapshotVersion && version_ < 0x80,
                "aligned snapshot version out of range");

  // Lay out the payload region.
  std::vector<uint64_t> offsets;
  offsets.reserve(blocks_.size());
  uint64_t cursor = kAlign;  // header occupies the first alignment unit
  for (const Block& b : blocks_) {
    offsets.push_back(cursor);
    cursor = AlignUp(cursor + b.payload.size());
  }
  const uint64_t directory_offset = cursor;

  std::string directory;
  for (size_t i = 0; i < blocks_.size(); ++i) {
    PutLengthPrefixed(&directory, blocks_[i].name);
    PutVarint64(&directory, offsets[i]);
    PutVarint64(&directory, blocks_[i].payload.size());
    PutFixed32(&directory, sqe::Crc32(blocks_[i].payload));
  }
  const uint64_t total_size =
      directory_offset + directory.size() + /*dir crc*/ 4 + /*footer*/ 4;

  std::string out;
  out.reserve(total_size);
  PutFixed32(&out, magic_);
  out.push_back(static_cast<char>(version_));
  out.append(3, '\0');
  PutFixed64(&out, blocks_.size());
  PutFixed64(&out, directory_offset);
  PutFixed64(&out, total_size);
  PutFixed32(&out, sqe::Crc32(std::string_view(out.data(), out.size())));
  out.resize(kAlign, '\0');

  for (size_t i = 0; i < blocks_.size(); ++i) {
    out.resize(offsets[i], '\0');
    out.append(blocks_[i].payload);
  }
  out.resize(directory_offset, '\0');
  out.append(directory);
  PutFixed32(&out, sqe::Crc32(directory));
  PutFixed32(&out, kSnapshotFooterMagic);
  SQE_CHECK(out.size() == total_size);
  return out;
}

std::string SnapshotWriter::Serialize() const {
  return version_ >= kAlignedSnapshotVersion ? SerializeAligned()
                                             : SerializeLegacy();
}

Status SnapshotWriter::WriteToFile(const std::string& path) const {
  std::set<std::string> names;
  for (const Block& b : blocks_) {
    if (!names.insert(b.name).second) {
      return Status::InvalidArgument("duplicate snapshot block: " + b.name);
    }
  }
  return WriteStringToFile(path, Serialize());
}

Status SnapshotReader::ParseLegacy(std::string_view in) {
  uint64_t num_blocks;
  if (!GetVarint64(&in, &num_blocks)) {
    return Status::Corruption("snapshot missing block count");
  }
  std::set<std::string, std::less<>> names;
  for (uint64_t i = 0; i < num_blocks; ++i) {
    std::string_view name, payload;
    if (!GetLengthPrefixed(&in, &name)) {
      return Status::Corruption("snapshot block name truncated");
    }
    if (!GetLengthPrefixed(&in, &payload)) {
      return Status::Corruption("snapshot block payload truncated: " +
                                std::string(name));
    }
    uint32_t stored_crc;
    if (!GetFixed32(&in, &stored_crc)) {
      return Status::Corruption("snapshot block crc truncated: " +
                                std::string(name));
    }
    uint32_t actual_crc = sqe::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::Corruption(
          StrFormat("snapshot block '%s' crc mismatch: stored %#x actual %#x",
                    std::string(name).c_str(), stored_crc, actual_crc));
    }
    // A duplicated name would let one CRC-valid block silently shadow the
    // other at GetBlock time; reject it here, where the reader still sees
    // both.
    if (!names.insert(std::string(name)).second) {
      return Status::Corruption("duplicate snapshot block: " +
                                std::string(name));
    }
    blocks_.push_back(BlockRef{
        std::string(name),
        static_cast<size_t>(payload.data() - image_.data()), payload.size()});
  }
  uint32_t footer;
  if (!GetFixed32(&in, &footer) || footer != kSnapshotFooterMagic) {
    return Status::Corruption("snapshot footer missing or invalid");
  }
  return Status::OK();
}

Status SnapshotReader::ParseAligned(std::string_view image) {
  if constexpr (std::endian::native != std::endian::little) {
    return Status::Unimplemented(
        "aligned snapshots are little-endian only; big-endian hosts must "
        "use the heap loader on legacy snapshots");
  }
  // Arrays inside blocks are read in place; the base must carry at least
  // u64 alignment (mmap regions are page-aligned, heap strings this large
  // are allocator-aligned).
  if (reinterpret_cast<uintptr_t>(image.data()) % alignof(uint64_t) != 0) {
    return Status::InvalidArgument("snapshot image base is not 8-byte aligned");
  }
  if (image.size() < kAlign) {
    return Status::Corruption("aligned snapshot shorter than its header");
  }
  std::string_view header = image.substr(0, kAlignedHeaderCrcOffset);
  std::string_view in = image.substr(8);  // past magic + version + padding
  if (image[5] != '\0' || image[6] != '\0' || image[7] != '\0') {
    return Status::Corruption("aligned snapshot header padding not zero");
  }
  uint64_t num_blocks, directory_offset, total_size;
  uint32_t stored_header_crc;
  if (!GetFixed64(&in, &num_blocks) || !GetFixed64(&in, &directory_offset) ||
      !GetFixed64(&in, &total_size) || !GetFixed32(&in, &stored_header_crc)) {
    return Status::Corruption("aligned snapshot header truncated");
  }
  if (stored_header_crc != sqe::Crc32(header)) {
    return Status::Corruption("aligned snapshot header crc mismatch");
  }
  if (total_size != image.size()) {
    return Status::Corruption(
        StrFormat("aligned snapshot size mismatch: header says %llu, image "
                  "has %zu bytes",
                  static_cast<unsigned long long>(total_size), image.size()));
  }
  if (directory_offset < kAlign || directory_offset > image.size() ||
      directory_offset % kAlign != 0) {
    return Status::Corruption("aligned snapshot directory offset invalid");
  }
  if (num_blocks > image.size()) {
    return Status::Corruption("aligned snapshot block count implausible");
  }

  std::string_view directory_region = image.substr(directory_offset);
  std::string_view dir = directory_region;
  std::set<std::string, std::less<>> names;
  blocks_.reserve(num_blocks);
  for (uint64_t i = 0; i < num_blocks; ++i) {
    std::string_view name;
    uint64_t offset, size;
    uint32_t stored_crc;
    if (!GetLengthPrefixed(&dir, &name) || !GetVarint64(&dir, &offset) ||
        !GetVarint64(&dir, &size) || !GetFixed32(&dir, &stored_crc)) {
      return Status::Corruption("aligned snapshot directory truncated");
    }
    if (offset < kAlign || offset % kAlign != 0 ||
        offset > directory_offset || size > directory_offset - offset) {
      return Status::Corruption("aligned snapshot block '" +
                                std::string(name) + "' range invalid");
    }
    std::string_view payload = image.substr(offset, size);
    uint32_t actual_crc = sqe::Crc32(payload);
    if (stored_crc != actual_crc) {
      return Status::Corruption(
          StrFormat("snapshot block '%s' crc mismatch: stored %#x actual %#x",
                    std::string(name).c_str(), stored_crc, actual_crc));
    }
    if (!names.insert(std::string(name)).second) {
      return Status::Corruption("duplicate snapshot block: " +
                                std::string(name));
    }
    blocks_.push_back(
        BlockRef{std::string(name), static_cast<size_t>(offset),
                 static_cast<size_t>(size)});
  }
  const size_t directory_size = directory_region.size() - dir.size();
  uint32_t stored_dir_crc, footer;
  if (!GetFixed32(&dir, &stored_dir_crc) || !GetFixed32(&dir, &footer)) {
    return Status::Corruption("aligned snapshot directory tail truncated");
  }
  if (stored_dir_crc !=
      sqe::Crc32(directory_region.substr(0, directory_size))) {
    return Status::Corruption("aligned snapshot directory crc mismatch");
  }
  if (footer != kSnapshotFooterMagic) {
    return Status::Corruption("snapshot footer missing or invalid");
  }
  if (!dir.empty()) {
    return Status::Corruption("aligned snapshot has trailing bytes");
  }
  return Status::OK();
}

Result<SnapshotReader> SnapshotReader::Parse(SnapshotReader reader,
                                             uint32_t expected_magic) {
  std::string_view in = reader.image_;
  uint32_t magic;
  if (!GetFixed32(&in, &magic)) {
    return Status::Corruption("snapshot too short for magic");
  }
  if (magic != expected_magic) {
    return Status::Corruption(StrFormat("bad snapshot magic: got %#x want %#x",
                                        magic, expected_magic));
  }
  // In the aligned layout the version is a single byte below 0x80, so this
  // varint read yields the right value for both layouts.
  if (!GetVarint32(&in, &reader.version_)) {
    return Status::Corruption("snapshot missing version");
  }
  Status status = reader.version_ >= kAlignedSnapshotVersion
                      ? reader.ParseAligned(reader.image_)
                      : reader.ParseLegacy(in);
  if (!status.ok()) return status;
  return reader;
}

Result<SnapshotReader> SnapshotReader::Open(std::string image,
                                            uint32_t expected_magic) {
  SnapshotReader reader;
  reader.owned_ = std::make_shared<const std::string>(std::move(image));
  reader.image_ = *reader.owned_;
  return Parse(std::move(reader), expected_magic);
}

Result<SnapshotReader> SnapshotReader::OpenFile(const std::string& path,
                                                uint32_t expected_magic) {
  auto image = ReadFileToString(path);
  if (!image.ok()) return image.status();
  return Open(std::move(image).value(), expected_magic);
}

Result<SnapshotReader> SnapshotReader::OpenMapped(const std::string& path,
                                                  uint32_t expected_magic) {
  auto mapped = MappedFile::Open(path);
  if (!mapped.ok()) return mapped.status();
  SnapshotReader reader;
  reader.mapped_file_ =
      std::make_shared<const MappedFile>(std::move(mapped).value());
  reader.image_ = reader.mapped_file_->view();
  return Parse(std::move(reader), expected_magic);
}

Result<std::string_view> SnapshotReader::GetBlock(
    std::string_view name) const {
  for (const BlockRef& b : blocks_) {
    if (b.name == name) {
      return image_.substr(b.offset, b.size);
    }
  }
  return Status::NotFound("snapshot block not found: " + std::string(name));
}

std::vector<std::string> SnapshotReader::BlockNames() const {
  std::vector<std::string> names;
  names.reserve(blocks_.size());
  for (const BlockRef& b : blocks_) names.push_back(b.name);
  return names;
}

std::shared_ptr<const void> SnapshotReader::retainer() const {
  if (mapped_file_ != nullptr) {
    return std::shared_ptr<const void>(mapped_file_);
  }
  return std::shared_ptr<const void>(owned_);
}

}  // namespace sqe::io
