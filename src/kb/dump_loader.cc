#include "kb/dump_loader.h"

#include <vector>

#include "common/string_util.h"
#include "io/file.h"
#include "kb/kb_builder.h"

namespace sqe::kb {

namespace {

struct ParsedLine {
  std::string_view verb;
  std::vector<std::string_view> args;
  size_t line_number;
};

Status ParseError(size_t line, const std::string& what) {
  return Status::InvalidArgument(
      StrFormat("dump-lite line %zu: %s", line, what.c_str()));
}

}  // namespace

Result<KnowledgeBase> LoadDumpFromString(std::string_view text,
                                         DumpLoaderOptions options) {
  // Pass 1: collect records and declare nodes.
  KbBuilder builder;
  std::vector<ParsedLine> edge_lines;
  size_t line_number = 0;
  for (std::string_view raw_line : Split(text, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line.front() == '#') continue;
    std::vector<std::string_view> fields = Split(line, '\t');
    std::string_view verb = fields[0];
    if (verb == "article") {
      if (fields.size() != 2 || fields[1].empty()) {
        return ParseError(line_number, "expected: article<TAB>TITLE");
      }
      builder.AddArticle(fields[1]);
    } else if (verb == "category") {
      if (fields.size() != 2 || fields[1].empty()) {
        return ParseError(line_number, "expected: category<TAB>TITLE");
      }
      builder.AddCategory(fields[1]);
    } else if (verb == "alink" || verb == "member" || verb == "sublink") {
      if (fields.size() != 3 || fields[1].empty() || fields[2].empty()) {
        return ParseError(line_number,
                          "expected: " + std::string(verb) +
                              "<TAB>SRC_TITLE<TAB>DST_TITLE");
      }
      edge_lines.push_back(
          ParsedLine{verb, {fields[1], fields[2]}, line_number});
    } else {
      return ParseError(line_number,
                        "unknown record type '" + std::string(verb) + "'");
    }
  }

  // Pass 2: resolve edges.
  for (const ParsedLine& e : edge_lines) {
    auto resolve_article = [&](std::string_view title) -> Result<ArticleId> {
      ArticleId id = builder.FindArticle(title);
      if (id == kInvalidArticle) {
        if (options.strict_declarations) {
          return ParseError(e.line_number, "undeclared article '" +
                                               std::string(title) + "'");
        }
        id = builder.AddArticle(title);
      }
      return id;
    };
    auto resolve_category = [&](std::string_view title) -> Result<CategoryId> {
      CategoryId id = builder.FindCategory(title);
      if (id == kInvalidCategory) {
        if (options.strict_declarations) {
          return ParseError(e.line_number, "undeclared category '" +
                                               std::string(title) + "'");
        }
        id = builder.AddCategory(title);
      }
      return id;
    };

    if (e.verb == "alink") {
      SQE_ASSIGN_OR_RETURN(ArticleId from, resolve_article(e.args[0]));
      SQE_ASSIGN_OR_RETURN(ArticleId to, resolve_article(e.args[1]));
      builder.AddArticleLink(from, to);
    } else if (e.verb == "member") {
      SQE_ASSIGN_OR_RETURN(ArticleId article, resolve_article(e.args[0]));
      SQE_ASSIGN_OR_RETURN(CategoryId cat, resolve_category(e.args[1]));
      builder.AddMembership(article, cat);
    } else {  // sublink
      SQE_ASSIGN_OR_RETURN(CategoryId child, resolve_category(e.args[0]));
      SQE_ASSIGN_OR_RETURN(CategoryId parent, resolve_category(e.args[1]));
      builder.AddCategoryLink(child, parent);
    }
  }

  return std::move(builder).Build();
}

Result<KnowledgeBase> LoadDumpFromFile(const std::string& path,
                                       DumpLoaderOptions options) {
  auto text = io::ReadFileToString(path);
  if (!text.ok()) return text.status();
  return LoadDumpFromString(text.value(), options);
}

std::string WriteDumpToString(const KnowledgeBase& kb) {
  std::string out;
  out += "# SQE dump-lite format\n";
  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    out += "article\t";
    out += kb.ArticleTitle(static_cast<ArticleId>(a));
    out += '\n';
  }
  for (size_t c = 0; c < kb.NumCategories(); ++c) {
    out += "category\t";
    out += kb.CategoryTitle(static_cast<CategoryId>(c));
    out += '\n';
  }
  for (size_t a = 0; a < kb.NumArticles(); ++a) {
    ArticleId id = static_cast<ArticleId>(a);
    for (ArticleId to : kb.OutLinks(id)) {
      out += "alink\t";
      out += kb.ArticleTitle(id);
      out += '\t';
      out += kb.ArticleTitle(to);
      out += '\n';
    }
    for (CategoryId c : kb.CategoriesOf(id)) {
      out += "member\t";
      out += kb.ArticleTitle(id);
      out += '\t';
      out += kb.CategoryTitle(c);
      out += '\n';
    }
  }
  for (size_t c = 0; c < kb.NumCategories(); ++c) {
    CategoryId id = static_cast<CategoryId>(c);
    for (CategoryId parent : kb.ParentCategories(id)) {
      out += "sublink\t";
      out += kb.CategoryTitle(id);
      out += '\t';
      out += kb.CategoryTitle(parent);
      out += '\n';
    }
  }
  return out;
}

}  // namespace sqe::kb
