// KbBuilder: mutable accumulation of nodes and edges, finalized into an
// immutable CSR KnowledgeBase.
#ifndef SQE_KB_KB_BUILDER_H_
#define SQE_KB_KB_BUILDER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "kb/knowledge_base.h"
#include "kb/types.h"

namespace sqe::kb {

/// Accumulates a KB graph. Duplicate edges are tolerated and deduplicated at
/// Build(); self-links are dropped (Wikipedia has none of interest here).
class KbBuilder {
 public:
  KbBuilder() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(KbBuilder);

  /// Adds (or finds) an article by title; titles are unique keys.
  ArticleId AddArticle(std::string_view title);
  /// Adds (or finds) a category by title.
  CategoryId AddCategory(std::string_view title);

  /// Looks up previously added nodes; kInvalid* if absent.
  ArticleId FindArticle(std::string_view title) const;
  CategoryId FindCategory(std::string_view title) const;

  /// Directed article hyperlink. Ids must have been returned by AddArticle.
  void AddArticleLink(ArticleId from, ArticleId to);
  /// Convenience: adds both directions (a "doubly linked" pair).
  void AddReciprocalLink(ArticleId a, ArticleId b);
  /// Article belongs to category.
  void AddMembership(ArticleId article, CategoryId category);
  /// Subcategory edge child -> parent.
  void AddCategoryLink(CategoryId child, CategoryId parent);

  size_t NumArticles() const { return article_titles_.size(); }
  size_t NumCategories() const { return category_titles_.size(); }

  /// Finalizes: sorts and dedupes adjacency, builds reverse relations and
  /// title maps. The builder is consumed.
  KnowledgeBase Build() &&;

 private:
  std::vector<std::string> article_titles_;
  std::vector<std::string> category_titles_;
  std::unordered_map<std::string, ArticleId> article_ids_;
  std::unordered_map<std::string, CategoryId> category_ids_;

  std::vector<std::pair<ArticleId, ArticleId>> article_links_;
  std::vector<std::pair<ArticleId, CategoryId>> memberships_;
  std::vector<std::pair<CategoryId, CategoryId>> category_links_;
};

}  // namespace sqe::kb

#endif  // SQE_KB_KB_BUILDER_H_
