#include "kb/kb_stats.h"

#include "common/string_util.h"

namespace sqe::kb {

KbStats ComputeKbStats(const KnowledgeBase& kb) {
  KbStats stats;
  stats.num_articles = kb.NumArticles();
  stats.num_categories = kb.NumCategories();
  stats.num_article_links = kb.NumArticleLinks();
  stats.num_memberships = kb.NumMemberships();
  stats.num_category_links = kb.NumCategoryLinks();

  for (size_t i = 0; i < kb.NumArticles(); ++i) {
    ArticleId a = static_cast<ArticleId>(i);
    auto out = kb.OutLinks(a);
    stats.max_out_degree =
        std::max<uint64_t>(stats.max_out_degree, out.size());
    if (out.empty() && kb.InLinks(a).empty()) ++stats.num_isolated_articles;
    for (ArticleId b : kb.ReciprocalLinks(a)) {
      // Count each unordered reciprocal pair once (a < b side).
      if (a < b) ++stats.num_reciprocal_pairs;
    }
  }
  if (stats.num_articles > 0) {
    stats.avg_out_degree = static_cast<double>(stats.num_article_links) /
                           static_cast<double>(stats.num_articles);
    stats.avg_categories_per_article =
        static_cast<double>(stats.num_memberships) /
        static_cast<double>(stats.num_articles);
  }
  if (stats.num_categories > 0) {
    stats.avg_articles_per_category =
        static_cast<double>(stats.num_memberships) /
        static_cast<double>(stats.num_categories);
  }
  return stats;
}

std::string KbStats::ToString() const {
  return StrFormat(
      "KB: %llu articles, %llu categories, %llu article links "
      "(%llu reciprocal pairs), %llu memberships, %llu category links; "
      "avg out-degree %.2f, avg cats/article %.2f, avg articles/cat %.2f, "
      "max out-degree %llu, isolated articles %llu",
      static_cast<unsigned long long>(num_articles),
      static_cast<unsigned long long>(num_categories),
      static_cast<unsigned long long>(num_article_links),
      static_cast<unsigned long long>(num_reciprocal_pairs),
      static_cast<unsigned long long>(num_memberships),
      static_cast<unsigned long long>(num_category_links), avg_out_degree,
      avg_categories_per_article, avg_articles_per_category,
      static_cast<unsigned long long>(max_out_degree),
      static_cast<unsigned long long>(num_isolated_articles));
}

}  // namespace sqe::kb
