// Aggregate statistics over a KnowledgeBase — the numbers the paper reports
// for its Wikipedia dump (article/category/link counts) plus structural
// measures used to sanity-check the synthetic generator (reciprocal-link
// rate, degree distributions, category fan-out).
#ifndef SQE_KB_KB_STATS_H_
#define SQE_KB_KB_STATS_H_

#include <cstdint>
#include <string>

#include "kb/knowledge_base.h"

namespace sqe::kb {

struct KbStats {
  uint64_t num_articles = 0;
  uint64_t num_categories = 0;
  uint64_t num_article_links = 0;
  uint64_t num_memberships = 0;
  uint64_t num_category_links = 0;

  // A directed link a->b is "reciprocal" when b->a also exists. This counts
  // unordered reciprocal pairs.
  uint64_t num_reciprocal_pairs = 0;
  double avg_out_degree = 0.0;
  double avg_categories_per_article = 0.0;
  double avg_articles_per_category = 0.0;
  uint64_t max_out_degree = 0;
  uint64_t num_isolated_articles = 0;  // no in- or out-links

  std::string ToString() const;
};

/// Computes all statistics in one pass over the CSR arrays.
KbStats ComputeKbStats(const KnowledgeBase& kb);

}  // namespace sqe::kb

#endif  // SQE_KB_KB_STATS_H_
