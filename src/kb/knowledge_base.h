// KnowledgeBase: an immutable, CSR-packed typed graph over Wikipedia-like
// articles and categories.
//
// Built once (via KbBuilder or a snapshot) and then queried read-only by the
// motif finder, the entity linker and the structural analysis — including
// concurrently from batch-pipeline workers, since nothing mutates after
// construction. All adjacency lists are sorted, enabling O(log d)
// edge-existence checks; the doubly-linked pairs that dominate motif
// matching are additionally precomputed into a reciprocal-link CSR.
//
// Storage comes in two modes (io::LoadMode). A heap load decodes every
// array into owned vectors; a zero-copy load of an aligned (v3) snapshot
// points the same members straight into the snapshot image — mmap'ed or a
// heap string — which the KB retains for its lifetime. v3 snapshots also
// persist every derived structure (reverse CSRs, the reciprocal-link CSR,
// the title orders), so a v3 load rebuilds nothing; Validate() instead
// proves the stored derivations equal a recomputation.
#ifndef SQE_KB_KNOWLEDGE_BASE_H_
#define SQE_KB_KNOWLEDGE_BASE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "common/string_column.h"
#include "common/vec_or_view.h"
#include "io/file.h"
#include "io/snapshot_format.h"
#include "kb/types.h"

namespace sqe::kb {

class KbBuilder;

/// Immutable knowledge-base graph. Create through KbBuilder::Build() or
/// KnowledgeBase::FromSnapshot*().
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(KnowledgeBase);
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // ---- node accessors -----------------------------------------------------

  size_t NumArticles() const { return article_titles_.size(); }
  size_t NumCategories() const { return category_titles_.size(); }

  // Per-lookup bounds checks on the read path are debug-only: ids come from
  // the KB's own CSRs, whose ranges Validate() proves at load time. Views
  // stay valid as long as the KB does (they point into owned storage or the
  // retained snapshot image).
  std::string_view ArticleTitle(ArticleId a) const {
    SQE_DCHECK(a < article_titles_.size());
    return article_titles_[a];
  }
  std::string_view CategoryTitle(CategoryId c) const {
    SQE_DCHECK(c < category_titles_.size());
    return category_titles_[c];
  }

  /// Title lookup; returns kInvalid* when absent. Titles are exact-match
  /// (callers normalise case upstream if needed). O(log N) binary search
  /// over the title-sorted id permutation in both storage modes.
  ArticleId FindArticle(std::string_view title) const;
  CategoryId FindCategory(std::string_view title) const;

  // ---- adjacency ----------------------------------------------------------

  /// Outgoing article->article links, sorted ascending.
  std::span<const ArticleId> OutLinks(ArticleId a) const {
    return Slice(article_link_offsets_, article_link_targets_, a);
  }
  /// Incoming article->article links, sorted ascending.
  std::span<const ArticleId> InLinks(ArticleId a) const {
    return Slice(article_inlink_offsets_, article_inlink_sources_, a);
  }
  /// Categories the article belongs to, sorted ascending.
  std::span<const CategoryId> CategoriesOf(ArticleId a) const {
    return Slice(membership_offsets_, membership_targets_, a);
  }
  /// Articles contained in the category, sorted ascending.
  std::span<const ArticleId> ArticlesIn(CategoryId c) const {
    return Slice(cat_article_offsets_, cat_article_targets_, c);
  }
  /// Parent categories (subcategory edges child->parent), sorted ascending.
  std::span<const CategoryId> ParentCategories(CategoryId c) const {
    return Slice(cat_parent_offsets_, cat_parent_targets_, c);
  }
  /// Child categories, sorted ascending.
  std::span<const CategoryId> ChildCategories(CategoryId c) const {
    return Slice(cat_child_offsets_, cat_child_targets_, c);
  }
  /// Articles `b` with both `a`->`b` and `b`->`a` hyperlinks, sorted
  /// ascending. Precomputed at build/load time so the motif finder's
  /// doubly-linked neighbor scan costs O(mutual degree) instead of one
  /// binary search per out-link.
  std::span<const ArticleId> ReciprocalLinks(ArticleId a) const {
    return Slice(reciprocal_offsets_, reciprocal_targets_, a);
  }

  /// O(log d) edge-existence tests.
  bool HasLink(ArticleId from, ArticleId to) const;
  /// True iff both `a`->`b` and `b`->`a` hyperlinks exist ("doubly linked"
  /// in the paper's motif definitions). O(log of mutual degree) via the
  /// reciprocal-link CSR.
  bool ReciprocallyLinked(ArticleId a, ArticleId b) const;
  bool HasMembership(ArticleId article, CategoryId category) const;
  /// True iff there is a subcategory edge child->parent.
  bool HasCategoryLink(CategoryId child, CategoryId parent) const;
  /// True iff the categories are related by a C->C edge in either direction
  /// (the square motif's "one category inside the other, or vice versa").
  bool CategoriesRelated(CategoryId x, CategoryId y) const {
    return HasCategoryLink(x, y) || HasCategoryLink(y, x);
  }

  // ---- aggregate counts (the paper reports these for its dump) ------------

  size_t NumArticleLinks() const { return article_link_targets_.size(); }
  size_t NumMemberships() const { return membership_targets_.size(); }
  size_t NumCategoryLinks() const { return cat_parent_targets_.size(); }

  /// True when the bulk arrays view a retained snapshot image rather than
  /// owned heap vectors.
  bool zero_copy() const { return article_link_offsets_.mapped(); }

  // ---- integrity ----------------------------------------------------------

  /// Deep structural validation: CSR offset monotonicity, in-range targets,
  /// strictly ascending adjacency, reverse CSRs consistent with the forward
  /// relations, reciprocal CSR equal to the out∩in intersection, and the
  /// title orders strictly ascending permutations that round-trip every
  /// lookup. Returns Status::Corruption pinpointing the first violation
  /// (relation, node id, position). Runs after every snapshot load;
  /// O(V + E), load-time only — never on the query path.
  Status Validate() const;

  // ---- persistence ---------------------------------------------------------

  /// Serializes to the SQE snapshot format (CRC-protected blocks).
  /// `version` selects the container: 1 writes the legacy varint-framed
  /// layout (forward relations only; derived structures are rebuilt on
  /// load), kKbSnapshotVersion (3) the aligned zero-copy layout with every
  /// derived structure persisted.
  Status SaveToFile(const std::string& path) const;
  std::string SerializeToString(
      uint32_t version = io::kKbSnapshotVersion) const;

  /// Loads a snapshot produced by SaveToFile/SerializeToString. LoadMode
  /// kZeroCopy requires an aligned (v3+) image and keeps `image` alive for
  /// the KB's lifetime; kHeap copies and works for every version.
  static Result<KnowledgeBase> FromSnapshotFile(
      const std::string& path, io::LoadMode mode = io::LoadMode::kHeap);
  static Result<KnowledgeBase> FromSnapshotString(
      std::string image, io::LoadMode mode = io::LoadMode::kHeap);

 private:
  friend class KbBuilder;

  friend struct KnowledgeBaseTestPeer;  // validator tests build broken KBs

  template <typename T>
  static std::span<const T> Slice(const VecOrView<uint64_t>& offsets,
                                  const VecOrView<T>& targets, uint32_t id) {
    SQE_DCHECK(id + 1 < offsets.size());
    return std::span<const T>(targets.data() + offsets[id],
                              targets.data() + offsets[id + 1]);
  }

  static Result<KnowledgeBase> FromReader(const io::SnapshotReader& reader,
                                          io::LoadMode mode);
  static Result<KnowledgeBase> LoadLegacy(const io::SnapshotReader& reader);
  static Result<KnowledgeBase> LoadAligned(const io::SnapshotReader& reader,
                                           io::LoadMode mode);

  /// Sorts the id permutations behind FindArticle/FindCategory. Owned mode
  /// only; zero-copy loads adopt the stored orders instead.
  void BuildTitleOrder();
  /// Intersects each article's sorted out- and in-lists into the
  /// reciprocal-link CSR. Requires both link directions to be final. Owned
  /// mode only.
  void BuildReciprocalLinks();

  StringColumn article_titles_;
  StringColumn category_titles_;
  // Id permutations ordering titles strictly ascending; FindArticle /
  // FindCategory binary-search these (the persistable replacement for a
  // rebuilt-on-load hash map).
  VecOrView<ArticleId> article_title_order_;
  VecOrView<CategoryId> category_title_order_;

  // CSR adjacency; offsets have size N+1.
  VecOrView<uint64_t> article_link_offsets_;
  VecOrView<ArticleId> article_link_targets_;
  VecOrView<uint64_t> article_inlink_offsets_;
  VecOrView<ArticleId> article_inlink_sources_;
  VecOrView<uint64_t> membership_offsets_;
  VecOrView<CategoryId> membership_targets_;
  VecOrView<uint64_t> cat_article_offsets_;
  VecOrView<ArticleId> cat_article_targets_;
  VecOrView<uint64_t> cat_parent_offsets_;
  VecOrView<CategoryId> cat_parent_targets_;
  VecOrView<uint64_t> cat_child_offsets_;
  VecOrView<CategoryId> cat_child_targets_;
  // Derived: mutual (doubly-linked) neighbors per article.
  VecOrView<uint64_t> reciprocal_offsets_;
  VecOrView<ArticleId> reciprocal_targets_;

  // Keeps the snapshot image (mmap region or heap string) alive while any
  // of the views above point into it.
  std::shared_ptr<const void> retainer_;
};

}  // namespace sqe::kb

#endif  // SQE_KB_KNOWLEDGE_BASE_H_
