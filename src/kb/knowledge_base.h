// KnowledgeBase: an immutable, CSR-packed typed graph over Wikipedia-like
// articles and categories.
//
// Built once (via KbBuilder or a snapshot) and then queried read-only by the
// motif finder, the entity linker and the structural analysis — including
// concurrently from batch-pipeline workers, since nothing mutates after
// construction. All adjacency lists are sorted, enabling O(log d)
// edge-existence checks; the doubly-linked pairs that dominate motif
// matching are additionally precomputed into a reciprocal-link CSR.
#ifndef SQE_KB_KNOWLEDGE_BASE_H_
#define SQE_KB_KNOWLEDGE_BASE_H_

#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "common/result.h"
#include "kb/types.h"

namespace sqe::kb {

class KbBuilder;

/// Immutable knowledge-base graph. Create through KbBuilder::Build() or
/// KnowledgeBase::FromSnapshot().
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  SQE_DISALLOW_COPY_AND_ASSIGN(KnowledgeBase);
  KnowledgeBase(KnowledgeBase&&) = default;
  KnowledgeBase& operator=(KnowledgeBase&&) = default;

  // ---- node accessors -----------------------------------------------------

  size_t NumArticles() const { return article_titles_.size(); }
  size_t NumCategories() const { return category_titles_.size(); }

  // Per-lookup bounds checks on the read path are debug-only: ids come from
  // the KB's own CSRs, whose ranges Validate() proves at load time.
  const std::string& ArticleTitle(ArticleId a) const {
    SQE_DCHECK(a < article_titles_.size());
    return article_titles_[a];
  }
  const std::string& CategoryTitle(CategoryId c) const {
    SQE_DCHECK(c < category_titles_.size());
    return category_titles_[c];
  }

  /// Title lookup; returns kInvalid* when absent. Titles are exact-match
  /// (callers normalise case upstream if needed).
  ArticleId FindArticle(std::string_view title) const;
  CategoryId FindCategory(std::string_view title) const;

  // ---- adjacency ----------------------------------------------------------

  /// Outgoing article->article links, sorted ascending.
  std::span<const ArticleId> OutLinks(ArticleId a) const {
    return Slice(article_link_offsets_, article_link_targets_, a);
  }
  /// Incoming article->article links, sorted ascending.
  std::span<const ArticleId> InLinks(ArticleId a) const {
    return Slice(article_inlink_offsets_, article_inlink_sources_, a);
  }
  /// Categories the article belongs to, sorted ascending.
  std::span<const CategoryId> CategoriesOf(ArticleId a) const {
    return Slice(membership_offsets_, membership_targets_, a);
  }
  /// Articles contained in the category, sorted ascending.
  std::span<const ArticleId> ArticlesIn(CategoryId c) const {
    return Slice(cat_article_offsets_, cat_article_targets_, c);
  }
  /// Parent categories (subcategory edges child->parent), sorted ascending.
  std::span<const CategoryId> ParentCategories(CategoryId c) const {
    return Slice(cat_parent_offsets_, cat_parent_targets_, c);
  }
  /// Child categories, sorted ascending.
  std::span<const CategoryId> ChildCategories(CategoryId c) const {
    return Slice(cat_child_offsets_, cat_child_targets_, c);
  }
  /// Articles `b` with both `a`->`b` and `b`->`a` hyperlinks, sorted
  /// ascending. Precomputed at build/load time so the motif finder's
  /// doubly-linked neighbor scan costs O(mutual degree) instead of one
  /// binary search per out-link.
  std::span<const ArticleId> ReciprocalLinks(ArticleId a) const {
    return Slice(reciprocal_offsets_, reciprocal_targets_, a);
  }

  /// O(log d) edge-existence tests.
  bool HasLink(ArticleId from, ArticleId to) const;
  /// True iff both `a`->`b` and `b`->`a` hyperlinks exist ("doubly linked"
  /// in the paper's motif definitions). O(log of mutual degree) via the
  /// reciprocal-link CSR.
  bool ReciprocallyLinked(ArticleId a, ArticleId b) const;
  bool HasMembership(ArticleId article, CategoryId category) const;
  /// True iff there is a subcategory edge child->parent.
  bool HasCategoryLink(CategoryId child, CategoryId parent) const;
  /// True iff the categories are related by a C->C edge in either direction
  /// (the square motif's "one category inside the other, or vice versa").
  bool CategoriesRelated(CategoryId x, CategoryId y) const {
    return HasCategoryLink(x, y) || HasCategoryLink(y, x);
  }

  // ---- aggregate counts (the paper reports these for its dump) ------------

  size_t NumArticleLinks() const { return article_link_targets_.size(); }
  size_t NumMemberships() const { return membership_targets_.size(); }
  size_t NumCategoryLinks() const { return cat_parent_targets_.size(); }

  // ---- integrity ----------------------------------------------------------

  /// Deep structural validation: CSR offset monotonicity, in-range targets,
  /// strictly ascending adjacency, reverse CSRs consistent with the forward
  /// relations, reciprocal CSR equal to the out∩in intersection, and
  /// title-map bijection. Returns Status::Corruption pinpointing the first
  /// violation (relation, node id, position). Runs after every snapshot
  /// load; O(V + E), load-time only — never on the query path.
  Status Validate() const;

  // ---- persistence ---------------------------------------------------------

  /// Serializes to the SQE snapshot format (CRC-protected blocks).
  Status SaveToFile(const std::string& path) const;
  std::string SerializeToString() const;

  /// Loads a snapshot produced by SaveToFile/SerializeToString.
  static Result<KnowledgeBase> FromSnapshotFile(const std::string& path);
  static Result<KnowledgeBase> FromSnapshotString(std::string image);

 private:
  friend class KbBuilder;

  friend struct KnowledgeBaseTestPeer;  // validator tests build broken KBs

  template <typename T>
  static std::span<const T> Slice(const std::vector<uint64_t>& offsets,
                                  const std::vector<T>& targets, uint32_t id) {
    SQE_DCHECK(id + 1 < offsets.size());
    return std::span<const T>(targets.data() + offsets[id],
                              targets.data() + offsets[id + 1]);
  }

  void RebuildTitleMaps();
  /// Intersects each article's sorted out- and in-lists into the
  /// reciprocal-link CSR. Requires both link directions to be final.
  void BuildReciprocalLinks();

  std::vector<std::string> article_titles_;
  std::vector<std::string> category_titles_;
  std::unordered_map<std::string_view, ArticleId> article_by_title_;
  std::unordered_map<std::string_view, CategoryId> category_by_title_;

  // CSR adjacency; offsets have size N+1.
  std::vector<uint64_t> article_link_offsets_;
  std::vector<ArticleId> article_link_targets_;
  std::vector<uint64_t> article_inlink_offsets_;
  std::vector<ArticleId> article_inlink_sources_;
  std::vector<uint64_t> membership_offsets_;
  std::vector<CategoryId> membership_targets_;
  std::vector<uint64_t> cat_article_offsets_;
  std::vector<ArticleId> cat_article_targets_;
  std::vector<uint64_t> cat_parent_offsets_;
  std::vector<CategoryId> cat_parent_targets_;
  std::vector<uint64_t> cat_child_offsets_;
  std::vector<CategoryId> cat_child_targets_;
  // Derived: mutual (doubly-linked) neighbors per article.
  std::vector<uint64_t> reciprocal_offsets_;
  std::vector<ArticleId> reciprocal_targets_;
};

}  // namespace sqe::kb

#endif  // SQE_KB_KNOWLEDGE_BASE_H_
