// Dump-lite loader: parses the text interchange format SQE uses in place of
// raw Wikipedia XML/SQL dumps (see DESIGN.md §3.1).
//
// Line-oriented, tab-separated, one record per line:
//   article<TAB>TITLE
//   category<TAB>TITLE
//   alink<TAB>FROM_TITLE<TAB>TO_TITLE
//   member<TAB>ARTICLE_TITLE<TAB>CATEGORY_TITLE
//   sublink<TAB>CHILD_CATEGORY<TAB>PARENT_CATEGORY
// Blank lines and lines starting with '#' are ignored.
//
// By default edges may reference titles that have not been declared yet, as
// long as they are declared somewhere in the file (two passes). With
// `strict_declarations`, edges referencing undeclared titles are an error —
// useful for validating hand-written fixtures.
#ifndef SQE_KB_DUMP_LOADER_H_
#define SQE_KB_DUMP_LOADER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "kb/knowledge_base.h"

namespace sqe::kb {

struct DumpLoaderOptions {
  bool strict_declarations = false;
};

/// Parses dump-lite text into a KnowledgeBase.
Result<KnowledgeBase> LoadDumpFromString(std::string_view text,
                                         DumpLoaderOptions options = {});

/// Reads and parses a dump-lite file.
Result<KnowledgeBase> LoadDumpFromFile(const std::string& path,
                                       DumpLoaderOptions options = {});

/// Writes a KnowledgeBase out as dump-lite text (round-trips with the
/// loader; used by the synthetic generator to materialize datasets).
std::string WriteDumpToString(const KnowledgeBase& kb);

}  // namespace sqe::kb

#endif  // SQE_KB_DUMP_LOADER_H_
