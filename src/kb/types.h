// Core identifier types for the knowledge-base graph.
//
// Articles and categories live in separate dense id spaces, mirroring
// Wikipedia's namespace split (main vs Category:). All edge kinds the paper
// uses are modelled:
//   article -> article   hyperlink between articles
//   article -> category  category membership
//   category -> category subcategory (child -> parent)
#ifndef SQE_KB_TYPES_H_
#define SQE_KB_TYPES_H_

#include <cstdint>

namespace sqe::kb {

using ArticleId = uint32_t;
using CategoryId = uint32_t;

inline constexpr ArticleId kInvalidArticle = UINT32_MAX;
inline constexpr CategoryId kInvalidCategory = UINT32_MAX;

/// A node reference that can point at either an article or a category.
/// Used by the structural-analysis module, whose cycles mix both kinds.
struct NodeRef {
  enum class Kind : uint8_t { kArticle = 0, kCategory = 1 };
  Kind kind = Kind::kArticle;
  uint32_t id = 0;

  static NodeRef Article(ArticleId a) { return {Kind::kArticle, a}; }
  static NodeRef Category(CategoryId c) { return {Kind::kCategory, c}; }

  bool is_article() const { return kind == Kind::kArticle; }
  bool is_category() const { return kind == Kind::kCategory; }

  friend bool operator==(const NodeRef& x, const NodeRef& y) {
    return x.kind == y.kind && x.id == y.id;
  }
  friend bool operator<(const NodeRef& x, const NodeRef& y) {
    if (x.kind != y.kind) return x.kind < y.kind;
    return x.id < y.id;
  }
};

}  // namespace sqe::kb

#endif  // SQE_KB_TYPES_H_
