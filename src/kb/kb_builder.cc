#include "kb/kb_builder.h"

#include <algorithm>

namespace sqe::kb {

ArticleId KbBuilder::AddArticle(std::string_view title) {
  auto it = article_ids_.find(std::string(title));
  if (it != article_ids_.end()) return it->second;
  ArticleId id = static_cast<ArticleId>(article_titles_.size());
  article_titles_.emplace_back(title);
  article_ids_.emplace(article_titles_.back(), id);
  return id;
}

CategoryId KbBuilder::AddCategory(std::string_view title) {
  auto it = category_ids_.find(std::string(title));
  if (it != category_ids_.end()) return it->second;
  CategoryId id = static_cast<CategoryId>(category_titles_.size());
  category_titles_.emplace_back(title);
  category_ids_.emplace(category_titles_.back(), id);
  return id;
}

ArticleId KbBuilder::FindArticle(std::string_view title) const {
  auto it = article_ids_.find(std::string(title));
  return it == article_ids_.end() ? kInvalidArticle : it->second;
}

CategoryId KbBuilder::FindCategory(std::string_view title) const {
  auto it = category_ids_.find(std::string(title));
  return it == category_ids_.end() ? kInvalidCategory : it->second;
}

void KbBuilder::AddArticleLink(ArticleId from, ArticleId to) {
  SQE_CHECK(from < article_titles_.size() && to < article_titles_.size());
  if (from == to) return;
  article_links_.emplace_back(from, to);
}

void KbBuilder::AddReciprocalLink(ArticleId a, ArticleId b) {
  AddArticleLink(a, b);
  AddArticleLink(b, a);
}

void KbBuilder::AddMembership(ArticleId article, CategoryId category) {
  SQE_CHECK(article < article_titles_.size() &&
            category < category_titles_.size());
  memberships_.emplace_back(article, category);
}

void KbBuilder::AddCategoryLink(CategoryId child, CategoryId parent) {
  SQE_CHECK(child < category_titles_.size() &&
            parent < category_titles_.size());
  if (child == parent) return;
  category_links_.emplace_back(child, parent);
}

namespace {
// Packs sorted, deduped (src, dst) pairs into CSR.
template <typename Dst>
void PackCsr(std::vector<std::pair<uint32_t, Dst>>& edges, size_t num_sources,
             std::vector<uint64_t>* offsets, std::vector<Dst>* targets) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  offsets->assign(num_sources + 1, 0);
  targets->clear();
  targets->reserve(edges.size());
  for (const auto& [src, dst] : edges) {
    (*offsets)[src + 1]++;
    targets->push_back(dst);
  }
  for (size_t i = 1; i < offsets->size(); ++i) {
    (*offsets)[i] += (*offsets)[i - 1];
  }
}

template <typename Src, typename Dst>
void PackReverseCsr(const std::vector<std::pair<Src, Dst>>& fwd_edges,
                    size_t num_targets, std::vector<uint64_t>* offsets,
                    std::vector<Src>* sources) {
  std::vector<std::pair<Dst, Src>> rev;
  rev.reserve(fwd_edges.size());
  for (const auto& [s, d] : fwd_edges) rev.emplace_back(d, s);
  PackCsr(rev, num_targets, offsets, sources);
}
}  // namespace

KnowledgeBase KbBuilder::Build() && {
  KnowledgeBase kb;
  kb.article_titles_.owned() = std::move(article_titles_);
  kb.category_titles_.owned() = std::move(category_titles_);

  PackCsr(article_links_, kb.article_titles_.size(),
          &kb.article_link_offsets_.vec(), &kb.article_link_targets_.vec());
  PackCsr(memberships_, kb.article_titles_.size(),
          &kb.membership_offsets_.vec(), &kb.membership_targets_.vec());
  PackCsr(category_links_, kb.category_titles_.size(),
          &kb.cat_parent_offsets_.vec(), &kb.cat_parent_targets_.vec());

  PackReverseCsr(article_links_, kb.article_titles_.size(),
                 &kb.article_inlink_offsets_.vec(),
                 &kb.article_inlink_sources_.vec());
  PackReverseCsr(memberships_, kb.category_titles_.size(),
                 &kb.cat_article_offsets_.vec(),
                 &kb.cat_article_targets_.vec());
  PackReverseCsr(category_links_, kb.category_titles_.size(),
                 &kb.cat_child_offsets_.vec(), &kb.cat_child_targets_.vec());

  kb.BuildReciprocalLinks();
  kb.BuildTitleOrder();
#ifndef NDEBUG
  // Debug builds re-prove the construction invariants the query path relies
  // on; release builds trust the builder (Validate guards untrusted
  // snapshots instead).
  Status validation = kb.Validate();
  SQE_CHECK_MSG(validation.ok(), validation.ToString().c_str());
#endif
  return kb;
}

}  // namespace sqe::kb
